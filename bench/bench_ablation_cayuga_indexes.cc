// Ablation: the three Cayuga indexes (FR / AN / AI) on their respective
// workloads — quantifies what each index contributes to the baseline the
// paper compares against (§4.3, §5.2).
#include "bench/figure_common.h"

using namespace rumor;
using namespace rumor::bench;

namespace {

double MeasureCayugaW1(const SyntheticParams& params,
                       const CayugaEngine::Options& opts, int64_t warmup) {
  Rng rng(params.seed);
  std::vector<W1Spec> specs = DrawW1Specs(params, rng);
  Schema schema = params.MakeSchema();
  std::vector<CayugaAutomaton> automata;
  for (size_t i = 0; i < specs.size(); ++i) {
    automata.push_back(
        MakeW1Automaton("Q" + std::to_string(i), specs[i], schema));
  }
  Rng feed_rng(params.seed ^ 0xfeed);
  std::vector<Event> events =
      GenerateInterleaved(params, params.num_tuples, 0, feed_rng);
  return RunCayuga(automata, opts, events, warmup)
      .result.EventsPerSecond();
}

double MeasureCayugaW2(const SyntheticParams& params,
                       const CayugaEngine::Options& opts, int64_t warmup) {
  Rng rng(params.seed);
  std::vector<W2Spec> specs = DrawW2Specs(params, false, rng);
  Schema schema = params.MakeSchema();
  std::vector<CayugaAutomaton> automata;
  for (size_t i = 0; i < specs.size(); ++i) {
    automata.push_back(
        MakeW2Automaton("Q" + std::to_string(i), specs[i], schema));
  }
  Rng feed_rng(params.seed ^ 0xfeed);
  std::vector<Event> events =
      GenerateInterleaved(params, params.num_tuples, 0, feed_rng);
  return RunCayuga(automata, opts, events, warmup)
      .result.EventsPerSecond();
}

}  // namespace

int main() {
  Scale scale = GetScale();
  SyntheticParams w1;
  w1.num_queries = scale.full ? 10000 : 1000;
  w1.num_tuples = scale.tuples;
  SyntheticParams w2;
  w2.num_queries = scale.full ? 1000 : 100;
  w2.num_tuples = scale.full ? scale.tuples : scale.tuples / 3;

  CayugaEngine::Options all;
  CayugaEngine::Options no_fr = all;
  no_fr.fr_index = false;
  CayugaEngine::Options no_an = all;
  no_an.an_index = false;
  CayugaEngine::Options no_ai = all;
  no_ai.ai_index = false;
  CayugaEngine::Options no_merge = all;
  no_merge.merge_prefixes = false;

  std::printf("# Ablation — Cayuga indexes, Workload 1 (%d queries)\n",
              w1.num_queries);
  std::printf("%-24s %16s\n", "configuration", "events/s");
  std::printf("%-24s %16.0f\n", "all indexes",
              MeasureCayugaW1(w1, all, scale.warmup));
  std::printf("%-24s %16.0f\n", "no FR index",
              MeasureCayugaW1(w1, no_fr, scale.warmup));
  std::printf("%-24s %16.0f\n", "no AN index",
              MeasureCayugaW1(w1, no_an, scale.warmup));
  std::printf("%-24s %16.0f\n", "no state merging",
              MeasureCayugaW1(w1, no_merge, scale.warmup));

  std::printf("\n# Ablation — Cayuga AI index, Workload 2 (%d queries)\n",
              w2.num_queries);
  std::printf("%-24s %16s\n", "configuration", "events/s");
  std::printf("%-24s %16.0f\n", "all indexes",
              MeasureCayugaW2(w2, all, scale.warmup / 3));
  std::printf("%-24s %16.0f\n", "no AI index",
              MeasureCayugaW2(w2, no_ai, scale.warmup / 3));
  return 0;
}
