// Ablation: contribution of each m-rule family on Workload 1 (paper-beyond
// experiment called out in DESIGN.md). Each row disables exactly one rule
// family; "none" disables all (the naive one-m-op-per-operator plan).
#include "bench/figure_common.h"

using namespace rumor;
using namespace rumor::bench;

namespace {

double Measure(const SyntheticParams& params, const OptimizerOptions& opts,
               int64_t warmup) {
  Rng rng(params.seed);
  std::vector<W1Spec> specs = DrawW1Specs(params, rng);
  Schema schema = params.MakeSchema();
  std::vector<Query> queries;
  for (size_t i = 0; i < specs.size(); ++i) {
    queries.push_back(MakeW1Query("Q" + std::to_string(i), specs[i], schema));
  }
  Rng feed_rng(params.seed ^ 0xfeed);
  std::vector<Event> events =
      GenerateInterleaved(params, params.num_tuples, 0, feed_rng);
  return RunRumor(queries, opts, events, warmup).result.EventsPerSecond();
}

}  // namespace

int main() {
  Scale scale = GetScale();
  SyntheticParams params;
  params.num_queries = scale.full ? 10000 : 1000;
  params.num_tuples = scale.tuples;

  std::printf("# Ablation — rule families on Workload 1 (%d queries)\n",
              params.num_queries);
  std::printf("%-24s %16s\n", "configuration", "events/s");

  struct Config {
    const char* name;
    OptimizerOptions opts;
  };
  OptimizerOptions all;
  OptimizerOptions none;
  none.enable_cse = none.enable_predicate_index = none.enable_shared_aggregate =
      none.enable_shared_join = none.enable_channels = false;
  OptimizerOptions no_cse = all;
  no_cse.enable_cse = false;
  OptimizerOptions no_index = all;
  no_index.enable_predicate_index = false;
  OptimizerOptions cse_only = none;
  cse_only.enable_cse = true;

  for (const Config& c :
       {Config{"all rules", all}, Config{"no CSE (s;/sµ)", no_cse},
        Config{"no predicate index", no_index},
        Config{"CSE only", cse_only}, Config{"no rules (naive)", none}}) {
    double ev = Measure(params, c.opts, scale.warmup);
    std::printf("%-24s %16.0f\n", c.name, ev);
  }
  return 0;
}
