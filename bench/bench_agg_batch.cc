// Fig-10-style aggregation benchmark for the batched executor + incremental
// (two-stacks) MIN/MAX window aggregation: N MIN-window queries with
// distinct windows over one perfmon-like source, merged by rule sα into a
// single shared aggregation m-op.
//
// Sweeps the full (MIN/MAX implementation × dispatch mode) grid:
//   * impl     — ordered  (the legacy std::multiset maintenance, i.e. the
//                seed's event-at-a-time path) vs twostacks (HammerSlide-
//                style incremental aggregation);
//   * dispatch — event-at-a-time PushSource vs PushSourceBatch at several
//                batch sizes.
//
// Prints a table and writes BENCH_agg_batch.json (machine-readable record;
// speedups are relative to the seed configuration ordered × batch=1).
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/figure_common.h"
#include "mop/window.h"
#include "query/builder.h"
#include "workload/perfmon.h"

using namespace rumor;
using namespace rumor::bench;

namespace {

struct Cell {
  const char* impl;
  int64_t batch;  // 1 = event-at-a-time
  double events_per_sec = 0;
  int64_t outputs = 0;
};

}  // namespace

int main() {
  Scale scale = GetScale();
  const int num_queries = 20;
  const int64_t base_window = scale.full ? 600 : 200;

  PerfmonParams params;
  params.num_processes = 16;
  params.duration_seconds =
      (scale.full ? 100000 : 30000) / params.num_processes;
  auto trace = GeneratePerfmonTrace(params);
  std::vector<Event> events;
  events.reserve(trace.size());
  for (const Tuple& t : trace) events.push_back(Event{0, t});
  const int64_t warmup = static_cast<int64_t>(events.size()) / 10;

  Schema schema = PerfmonSchema();
  std::vector<Query> queries;
  for (int i = 0; i < num_queries; ++i) {
    queries.push_back(
        QueryBuilder::FromSource("CPU", schema)
            .Aggregate(AggFn::kMin, "load", {"pid"},
                       base_window + 37 * i)
            .Build("Q" + std::to_string(i)));
  }

  std::printf("# agg-batch — %d MIN-window queries (sα-merged), %" PRId64
              " events, windows %" PRId64 "..%" PRId64 "\n",
              num_queries, static_cast<int64_t>(events.size()), base_window,
              base_window + 37 * (num_queries - 1));
  std::printf("%-12s %8s %16s %10s\n", "impl", "batch", "events/s", "speedup");

  std::vector<Cell> cells;
  for (MinMaxImpl impl : {MinMaxImpl::kOrderedSet, MinMaxImpl::kTwoStacks}) {
    SharedAggEngine::SetDefaultMinMaxImpl(impl);
    const char* impl_name =
        impl == MinMaxImpl::kOrderedSet ? "ordered" : "twostacks";
    for (int64_t batch : {int64_t{1}, int64_t{16}, int64_t{64}, int64_t{256},
                          int64_t{1024}}) {
      // Best of 3 repetitions (steady-state throughput; shields the
      // recorded numbers from scheduler noise).
      Cell cell{impl_name, batch, 0, 0};
      for (int rep = 0; rep < 3; ++rep) {
        RumorRun run = batch == 1
                           ? RunRumor(queries, OptimizerOptions{}, events,
                                      warmup, {"CPU"})
                           : RunRumorBatched(queries, OptimizerOptions{},
                                             events, warmup, batch, {"CPU"});
        cell.events_per_sec =
            std::max(cell.events_per_sec, run.result.EventsPerSecond());
        cell.outputs = run.result.outputs;
      }
      cells.push_back(cell);
    }
  }
  SharedAggEngine::SetDefaultMinMaxImpl(MinMaxImpl::kTwoStacks);

  const double seed_baseline = cells[0].events_per_sec;  // ordered × batch=1
  for (const Cell& c : cells) {
    std::printf("%-12s %8" PRId64 " %16.0f %9.2fx\n", c.impl, c.batch,
                c.events_per_sec, c.events_per_sec / seed_baseline);
  }
  for (size_t i = 1; i < cells.size(); ++i) {
    RUMOR_CHECK(cells[i].outputs == cells[0].outputs)
        << "configurations disagree on output count";
  }

  JsonWriter w;
  w.BeginObject()
      .KV("bench", "agg_batch")
      .KV("num_queries", num_queries)
      .KV("events", static_cast<int64_t>(events.size()))
      .KV("baseline", "ordered impl, batch 1 (seed event-at-a-time path)");
  w.Key("rows").BeginArray();
  for (const Cell& c : cells) {
    w.BeginObject()
        .KV("impl", c.impl)
        .KV("batch", c.batch)
        .Key("events_per_sec")
        .Double(c.events_per_sec, 10)
        .Key("speedup")
        .Double(c.events_per_sec / seed_baseline, 4)
        .EndObject();
  }
  w.EndArray().EndObject();
  WriteReport("BENCH_agg_batch.json", w.str());
  return 0;
}
