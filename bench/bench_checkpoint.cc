// Checkpoint/restore benchmark: snapshot size and save/restore latency as a
// function of (a) window-state size — one grouped sliding-window aggregate
// whose live entry count tracks RANGE — and (b) standing-query count (1k and,
// under RUMOR_BENCH_SCALE=full, 100k predicate queries merged into the shared
// predicate index).
//
// Prints a table and writes BENCH_checkpoint.json. RUMOR_BENCH_TINY=1 shrinks
// both sweeps to CI-sized points (the perf-smoke job runs that mode as a
// functional checkpoint/restore cycle, not a measurement).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/stream_engine.h"
#include "bench/figure_common.h"
#include "common/json_writer.h"

using namespace rumor;
using namespace rumor::bench;

namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct Sample {
  const char* axis;   // "window" or "queries"
  int64_t x;          // window range or query count
  size_t bytes;       // snapshot size
  double save_ms;
  double restore_ms;
};

// One grouped AVG over [RANGE w] with w distinct-ts tuples live at
// checkpoint time; key cardinality w/8 keeps the group table populated too.
Sample MeasureWindowState(int64_t w) {
  StreamEngine engine;
  RUMOR_CHECK(engine.RegisterSource(
                        "S", Schema({{"k", ValueType::kInt},
                                     {"v", ValueType::kInt}}))
                  .ok());
  RUMOR_CHECK(engine
                  .AddQueryText("SELECT k, AVG(v) FROM S [RANGE " +
                                    std::to_string(w) + "] GROUP BY k",
                                "W")
                  .ok());
  RUMOR_CHECK(engine.Start().ok());
  const int64_t keys = w / 8 > 0 ? w / 8 : 1;
  for (int64_t i = 0; i < 2 * w; ++i) {  // fill past one full window
    RUMOR_CHECK(engine.Push("S", Tuple::MakeInts({i % keys, i % 997}, i)).ok());
  }
  std::string snapshot;
  auto t0 = std::chrono::steady_clock::now();
  RUMOR_CHECK(engine.Checkpoint(&snapshot).ok());
  const double save_ms = MsSince(t0);

  StreamEngine restored;
  t0 = std::chrono::steady_clock::now();
  RUMOR_CHECK(restored.Restore(snapshot).ok());
  const double restore_ms = MsSince(t0);
  return {"window", w, snapshot.size(), save_ms, restore_ms};
}

// n point-predicate queries over one source (the shared predicate index);
// state is small, so this axis isolates the per-query metadata cost (texts,
// names, counters, plan fingerprints) and restore's re-parse + merge.
Sample MeasureQueryCount(int64_t n) {
  StreamEngine engine;
  RUMOR_CHECK(engine.RegisterSource(
                        "S", Schema({{"a0", ValueType::kInt},
                                     {"a1", ValueType::kInt}}))
                  .ok());
  for (int64_t i = 0; i < n; ++i) {
    RUMOR_CHECK(engine
                    .AddQueryText("SELECT * FROM S WHERE a0 = " +
                                      std::to_string(i % 4096) +
                                      " AND a1 <= " + std::to_string(i % 97),
                                  "Q" + std::to_string(i))
                    .ok());
  }
  RUMOR_CHECK(engine.Start().ok());
  for (int64_t i = 0; i < 256; ++i) {
    RUMOR_CHECK(engine.Push("S", Tuple::MakeInts({i % 4096, i % 97}, i)).ok());
  }
  std::string snapshot;
  auto t0 = std::chrono::steady_clock::now();
  RUMOR_CHECK(engine.Checkpoint(&snapshot).ok());
  const double save_ms = MsSince(t0);

  StreamEngine restored;
  t0 = std::chrono::steady_clock::now();
  RUMOR_CHECK(restored.Restore(snapshot).ok());
  const double restore_ms = MsSince(t0);
  return {"queries", n, snapshot.size(), save_ms, restore_ms};
}

}  // namespace

int main() {
  const bool tiny = std::getenv("RUMOR_BENCH_TINY") != nullptr;
  const Scale scale = GetScale();

  std::vector<int64_t> windows =
      tiny ? std::vector<int64_t>{256, 1024}
           : std::vector<int64_t>{1000, 10000, 100000};
  std::vector<int64_t> query_counts = tiny ? std::vector<int64_t>{64, 256}
                                           : std::vector<int64_t>{1000};
  if (!tiny && scale.full) query_counts.push_back(100000);

  std::printf("# bench_checkpoint — snapshot size and save/restore latency\n");
  std::printf("%-10s %12s %14s %12s %12s\n", "axis", "x", "snapshot_B",
              "save_ms", "restore_ms");
  std::vector<Sample> samples;
  for (int64_t w : windows) samples.push_back(MeasureWindowState(w));
  for (int64_t n : query_counts) samples.push_back(MeasureQueryCount(n));
  for (const Sample& s : samples) {
    std::printf("%-10s %12lld %14zu %12.3f %12.3f\n", s.axis,
                static_cast<long long>(s.x), s.bytes, s.save_ms, s.restore_ms);
  }

  JsonWriter w;
  w.BeginObject()
      .KV("bench", "checkpoint")
      .Key("tiny")
      .Bool(tiny)
      .Key("rows")
      .BeginArray();
  for (const Sample& s : samples) {
    w.BeginObject()
        .KV("axis", s.axis)
        .Key("x")
        .Int(s.x)
        .Key("snapshot_bytes")
        .Int(static_cast<int64_t>(s.bytes))
        .Key("save_ms")
        .Double(s.save_ms)
        .Key("restore_ms")
        .Double(s.restore_ms)
        .EndObject();
  }
  w.EndArray().EndObject();
  if (!WriteReport("BENCH_checkpoint.json", w.str())) return 1;
  return 0;
}
