// Dynamic-MQO benchmark: cost of bringing query N+1 online against an
// engine already serving N queries.
//
//   incremental — StreamEngine::AddQueryText on the *running* engine: the
//     new query compiles standalone and the incremental rule passes snap it
//     onto the warm shared plan (rules/incremental.h).
//   restart     — the static alternative: build a fresh engine with all N+1
//     queries, recompile and re-optimize the whole plan, and re-prepare the
//     executor (state of the old engine would additionally be lost — not
//     charged here, so the restart column is flattered).
//
// The workload mixes the sharing families the incremental passes target:
// equality selections (one warm sσ index), same-fn aggregates with distinct
// windows (one warm sα engine), and duplicate selections (CSE). Prints
// per-add latencies and writes BENCH_dynamic_add.json; the acceptance bar
// is incremental >= 5x faster than restart at N = 64.
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "api/stream_engine.h"
#include "bench/figure_common.h"
#include "common/json_writer.h"

using namespace rumor;

namespace {

Schema CpuSchema() {
  return Schema({{"pid", ValueType::kInt}, {"load", ValueType::kInt}});
}

// Query i of the workload (mix of sσ / sα / CSE shapes).
std::string QueryRql(int i) {
  switch (i % 3) {
    case 0:
      return "SELECT * FROM CPU WHERE pid = " + std::to_string(i);
    case 1:
      return "SELECT pid, AVG(load) FROM CPU [RANGE " +
             std::to_string(100 + i) + "] GROUP BY pid";
    default:
      return "SELECT * FROM CPU WHERE load > " + std::to_string(i % 97);
  }
}

void AddQueries(StreamEngine* engine, int from, int to) {
  for (int i = from; i < to; ++i) {
    Status s = engine->AddQueryText(QueryRql(i), "Q" + std::to_string(i));
    RUMOR_CHECK(s.ok()) << s.ToString();
  }
}

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  const int kBase = 64;    // N: queries already being served
  const int kAdds = 32;    // adds measured against the running engine
  const int kTrials = 16;  // restart trials

  // The running engine: N queries, started, warmed with traffic.
  StreamEngine engine;
  RUMOR_CHECK(engine.RegisterSource("CPU", CpuSchema()).ok());
  AddQueries(&engine, 0, kBase);
  RUMOR_CHECK(engine.Start().ok());
  for (int i = 0; i < 5000; ++i) {
    RUMOR_CHECK(engine.Push("CPU", Tuple::MakeInts({i % 97, i % 101}, i))
                    .ok());
  }

  // Incremental: bring queries N..N+kAdds online one by one.
  std::vector<double> inc_seconds;
  for (int i = kBase; i < kBase + kAdds; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    Status s = engine.AddQueryText(QueryRql(i), "Q" + std::to_string(i));
    inc_seconds.push_back(SecondsSince(t0));
    RUMOR_CHECK(s.ok()) << s.ToString();
  }
  std::sort(inc_seconds.begin(), inc_seconds.end());
  const double inc_median = inc_seconds[inc_seconds.size() / 2];

  // Restart: fresh engine with N+1 queries, full compile + optimize +
  // prepare (the engine would still need its state replayed afterwards).
  std::vector<double> restart_seconds;
  for (int t = 0; t < kTrials; ++t) {
    StreamEngine fresh;
    RUMOR_CHECK(fresh.RegisterSource("CPU", CpuSchema()).ok());
    AddQueries(&fresh, 0, kBase + 1);
    auto t0 = std::chrono::steady_clock::now();
    RUMOR_CHECK(fresh.Start().ok());
    restart_seconds.push_back(SecondsSince(t0));
  }
  std::sort(restart_seconds.begin(), restart_seconds.end());
  const double restart_median = restart_seconds[restart_seconds.size() / 2];

  const double speedup = restart_median / inc_median;
  const OptimizeStats& stats = engine.optimize_stats();
  std::printf("# dynamic-add — query N+1 onto a running N=%d-query engine\n",
              kBase);
  std::printf("%-14s %14s %14s\n", "mode", "median_ms", "speedup");
  std::printf("%-14s %14.3f %14s\n", "restart", restart_median * 1e3, "1.0");
  std::printf("%-14s %14.3f %13.1fx\n", "incremental", inc_median * 1e3,
              speedup);
  std::printf("# incremental merges over %d adds: cse=%d attach=%d rules=%d\n",
              kAdds, stats.incremental_cse_merges,
              stats.incremental_attach_merges, stats.incremental_rule_merges);
  // The sharing snapshot is recomputed by CollectMetrics (the live add path
  // deliberately skips the refcount walk).
  const OptimizeStats sharing = engine.CollectMetrics().optimize;
  std::printf("# sharing quality after %d live queries: %d m-ops (%d shared, "
              "%d members), %.2f m-ops/query, %.2f members/m-op\n",
              sharing.queries, sharing.live_mops, sharing.shared_mops,
              sharing.total_members, sharing.mops_per_query(),
              sharing.members_per_mop());
  std::printf("# acceptance: incremental >= 5x restart at N=%d: %s\n", kBase,
              speedup >= 5.0 ? "PASS" : "FAIL");

  JsonWriter w;
  w.BeginObject()
      .KV("bench", "dynamic_add")
      .KV("base_queries", kBase)
      .KV("adds", kAdds)
      .Key("incremental_median_ms")
      .Double(inc_median * 1e3, 6)
      .Key("restart_median_ms")
      .Double(restart_median * 1e3, 6)
      .Key("speedup")
      .Double(speedup, 4)
      .KV("incremental_cse_merges", stats.incremental_cse_merges)
      .KV("incremental_attach_merges", stats.incremental_attach_merges)
      .KV("incremental_rule_merges", stats.incremental_rule_merges);
  w.Key("sharing")
      .BeginObject()
      .KV("queries", sharing.queries)
      .KV("live_mops", sharing.live_mops)
      .KV("shared_mops", sharing.shared_mops)
      .KV("total_members", sharing.total_members)
      .Key("mops_per_query")
      .Double(sharing.mops_per_query(), 4)
      .Key("members_per_mop")
      .Double(sharing.members_per_mop(), 4)
      .EndObject();
  w.EndObject();
  bench::WriteReport("BENCH_dynamic_add.json", w.str());
  return speedup >= 5.0 ? 0 : 1;
}
