// Figure 10(a): Workload 2 (S ;[S.a0=T.a0] T, the AI-index workload),
// normalized throughput vs the number of sequence queries.
#include "bench/figure_common.h"

using namespace rumor;
using namespace rumor::bench;

int main() {
  Scale scale = GetScale();
  PrintHeader("Figure 10(a)", "num_queries",
              "Workload 2 (;), throughput vs number of queries");
  std::vector<Row> rows;
  for (int n : {1, 10, 100, 1000, 10000}) {
    if (n > scale.max_queries) break;
    SyntheticParams params;
    params.num_queries = n;
    // This workload is much heavier (every S tuple becomes an instance);
    // keep runs bounded at quick scale.
    params.num_tuples = scale.full ? scale.tuples : scale.tuples / 3;
    Row row = MeasureW2(params, /*iterate=*/false, scale.warmup / 3);
    row.x = n;
    rows.push_back(row);
  }
  PrintRows(rows);
  return 0;
}
