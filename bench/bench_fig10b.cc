// Figure 10(b): the µ variant of Workload 2
// (S µ[S.a0=T.a0, T.a1>last.a1] T), normalized throughput vs the number of
// queries. Same trends as 10(a) with lower absolute values (µ is the more
// expensive operator).
#include "bench/figure_common.h"

using namespace rumor;
using namespace rumor::bench;

int main() {
  Scale scale = GetScale();
  PrintHeader("Figure 10(b)", "num_queries",
              "Workload 2 (µ), throughput vs number of queries");
  std::vector<Row> rows;
  for (int n : {1, 10, 100, 1000, 10000}) {
    if (n > scale.max_queries) break;
    SyntheticParams params;
    params.num_queries = n;
    params.num_tuples = scale.full ? scale.tuples : scale.tuples / 3;
    Row row = MeasureW2(params, /*iterate=*/true, scale.warmup / 3);
    row.x = n;
    rows.push_back(row);
  }
  PrintRows(rows);
  return 0;
}
