// Figure 10(c): Workload 3 — absolute throughput of the channel plan vs the
// no-channel plan as the number of queries grows (channel capacity = number
// of distinct sharable sources = number of queries, each C tuple belonging
// to all of them — the paper's optimistic setting).
#include "bench/w3_common.h"

using namespace rumor;
using namespace rumor::bench;

int main() {
  Scale scale = GetScale();
  std::printf("# Figure 10(c) — Workload 3: Seq with vs without channel, "
              "absolute throughput vs number of queries\n");
  std::printf("%-12s %20s %20s %10s\n", "num_queries", "with_channel_t/s",
              "without_channel_t/s", "ratio");
  for (int n : {1, 10, 100, 1000, 10000}) {
    if (n > scale.max_queries) break;
    int64_t rounds = std::max<int64_t>(20, scale.tuples / (n + 1));
    int64_t warmup = rounds / 10;
    W3Result with_ch =
        RunW3(n, /*capacity=*/n, /*with_channel=*/true, rounds, warmup, 42);
    W3Result without_ch =
        RunW3(n, /*capacity=*/n, /*with_channel=*/false, rounds, warmup, 42);
    std::printf("%-12d %20.0f %20.0f %10.2f\n", n,
                with_ch.logical_tuples_per_second,
                without_ch.logical_tuples_per_second,
                without_ch.logical_tuples_per_second > 0
                    ? with_ch.logical_tuples_per_second /
                          without_ch.logical_tuples_per_second
                    : 0.0);
  }
  return 0;
}
