// Figure 10(d): Workload 3 — absolute throughput vs channel capacity (the
// number of streams the channel encodes). More encoded streams => more
// logical tuples carried per channel tuple => larger savings over the
// no-channel plan.
#include "bench/w3_common.h"

using namespace rumor;
using namespace rumor::bench;

int main() {
  Scale scale = GetScale();
  std::printf("# Figure 10(d) — Workload 3: throughput vs channel "
              "capacity\n");
  std::printf("%-12s %20s %20s %10s\n", "capacity", "with_channel_t/s",
              "without_channel_t/s", "ratio");
  for (int capacity : {5, 10, 15, 20, 25}) {
    int64_t rounds = std::max<int64_t>(20, scale.tuples / (capacity + 1));
    int64_t warmup = rounds / 10;
    W3Result with_ch = RunW3(capacity, capacity, /*with_channel=*/true,
                             rounds, warmup, 42);
    W3Result without_ch = RunW3(capacity, capacity, /*with_channel=*/false,
                                rounds, warmup, 42);
    std::printf("%-12d %20.0f %20.0f %10.2f\n", capacity,
                with_ch.logical_tuples_per_second,
                without_ch.logical_tuples_per_second,
                without_ch.logical_tuples_per_second > 0
                    ? with_ch.logical_tuples_per_second /
                          without_ch.logical_tuples_per_second
                    : 0.0);
  }
  return 0;
}
