// Figure 11(a): hybrid query workload over the D1-like trace (104
// processes), sel = 0.5 — throughput vs the number of hybrid queries, with
// and without channels.
#include "bench/hybrid_common.h"

using namespace rumor;
using namespace rumor::bench;

int main() {
  Scale scale = GetScale();
  PerfmonParams params;  // 104 processes (D1)
  params.duration_seconds = scale.full ? 1000 : 250;
  std::vector<Tuple> trace = GeneratePerfmonTrace(params);
  const int64_t warmup = static_cast<int64_t>(trace.size()) / 10;

  std::printf("# Figure 11(a) — hybrid queries on D1-like trace "
              "(%d processes), sel=0.5\n",
              params.num_processes);
  std::printf("%-12s %20s %20s %10s\n", "num_queries", "with_channel_ev/s",
              "without_channel_ev/s", "ratio");
  for (int n : {5, 10, 15, 20, 25}) {
    HybridResult with_ch = RunHybrid(n, 0.5, true, trace, warmup);
    HybridResult without_ch = RunHybrid(n, 0.5, false, trace, warmup);
    std::printf("%-12d %20.0f %20.0f %10.2f\n", n,
                with_ch.events_per_second, without_ch.events_per_second,
                without_ch.events_per_second > 0
                    ? with_ch.events_per_second /
                          without_ch.events_per_second
                    : 0.0);
  }
  return 0;
}
