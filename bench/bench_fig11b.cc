// Figure 11(b): hybrid query workload, 10 queries — throughput vs the
// selectivity of the starting conditions. The paper's observation: the
// channel plan drops once (sel 0 -> 0.2) then stays flat, because the work
// per channel tuple in µ{1..n} is independent of how many starting
// conditions it satisfies; the no-channel plan keeps degrading.
#include "bench/hybrid_common.h"

using namespace rumor;
using namespace rumor::bench;

int main() {
  Scale scale = GetScale();
  PerfmonParams params;  // D1-like
  params.duration_seconds = scale.full ? 1000 : 250;
  std::vector<Tuple> trace = GeneratePerfmonTrace(params);
  const int64_t warmup = static_cast<int64_t>(trace.size()) / 10;

  std::printf("# Figure 11(b) — hybrid queries (n=10) vs starting-condition "
              "selectivity\n");
  std::printf("%-12s %20s %20s %10s\n", "sel_x100", "with_channel_ev/s",
              "without_channel_ev/s", "ratio");
  for (double sel : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    HybridResult with_ch = RunHybrid(10, sel, true, trace, warmup);
    HybridResult without_ch = RunHybrid(10, sel, false, trace, warmup);
    std::printf("%-12d %20.0f %20.0f %10.2f\n",
                static_cast<int>(sel * 100), with_ch.events_per_second,
                without_ch.events_per_second,
                without_ch.events_per_second > 0
                    ? with_ch.events_per_second /
                          without_ch.events_per_second
                    : 0.0);
  }
  return 0;
}
