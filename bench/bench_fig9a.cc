// Figure 9(a): Workload 1 (σθ1(S) ; σθ3(T), FR + AN indexes), normalized
// throughput vs the number of queries.
#include "bench/figure_common.h"

using namespace rumor;
using namespace rumor::bench;

int main() {
  Scale scale = GetScale();
  PrintHeader("Figure 9(a)", "num_queries",
              "Workload 1, throughput vs number of queries");
  std::vector<Row> rows;
  for (int n : {1, 10, 100, 1000, 10000, 100000}) {
    if (n > scale.max_queries) break;
    SyntheticParams params;
    params.num_queries = n;
    params.num_tuples = scale.tuples;
    Row row = MeasureW1(params, scale.warmup);
    row.x = n;
    rows.push_back(row);
  }
  PrintRows(rows);
  return 0;
}
