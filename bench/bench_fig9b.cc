// Figure 9(b): Workload 1, normalized throughput vs the constant domain
// size (larger domain => more selective predicates => lighter load).
#include "bench/figure_common.h"

using namespace rumor;
using namespace rumor::bench;

int main() {
  Scale scale = GetScale();
  PrintHeader("Figure 9(b)", "const_domain",
              "Workload 1, throughput vs constant domain size");
  std::vector<Row> rows;
  for (int64_t domain : {10, 100, 1000, 10000, 100000}) {
    SyntheticParams params;
    params.constant_domain = domain;
    params.num_tuples = scale.tuples;
    Row row = MeasureW1(params, scale.warmup);
    row.x = domain;
    rows.push_back(row);
  }
  PrintRows(rows);
  return 0;
}
