// Figure 9(c): Workload 1, normalized throughput vs the window length
// domain size. The paper's observation: the Cayuga ; consumes matched
// instances, so larger windows barely increase load — both systems stay
// nearly flat.
#include "bench/figure_common.h"

using namespace rumor;
using namespace rumor::bench;

int main() {
  Scale scale = GetScale();
  PrintHeader("Figure 9(c)", "window_domain",
              "Workload 1, throughput vs window length domain size");
  std::vector<Row> rows;
  for (int64_t domain : {10, 100, 1000, 10000, 100000}) {
    SyntheticParams params;
    params.window_domain = domain;
    params.num_tuples = scale.tuples;
    Row row = MeasureW1(params, scale.warmup);
    row.x = domain;
    rows.push_back(row);
  }
  PrintRows(rows);
  return 0;
}
