// Figure 9(d): Workload 1, normalized throughput vs the Zipf parameter.
// Higher skew => more identical queries => more CSE / state-merging wins
// (a factor of ~2 from 1.2 to 2.0 in the paper — modest, because the
// FR/AN indexes already absorb most of the sharing).
#include "bench/figure_common.h"

using namespace rumor;
using namespace rumor::bench;

int main() {
  Scale scale = GetScale();
  PrintHeader("Figure 9(d)", "zipf_x10",
              "Workload 1, throughput vs Zipf parameter (x-axis x10)");
  std::vector<Row> rows;
  for (double z : {1.2, 1.4, 1.6, 1.8, 2.0}) {
    SyntheticParams params;
    params.zipf_parameter = z;
    params.num_tuples = scale.tuples;
    Row row = MeasureW1(params, scale.warmup);
    row.x = static_cast<int64_t>(z * 10);
    rows.push_back(row);
  }
  PrintRows(rows);
  return 0;
}
