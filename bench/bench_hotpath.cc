// Hot-data-plane benchmark: a fig9-style predicate-index workload (N
// selection queries σ(a0 = c AND a1 <= r) over one source stream, merged by
// rule sσ into a single predicate-index m-op) pushed at several batch sizes.
//
// Sweeps dispatch batch size × data-plane mode:
//   * legacy     — vectorized predicate evaluation and the flat int-key
//                  probe disabled (Value-boxed Program::Eval + the
//                  unordered_map<Value, ...> index probe), i.e. the shape of
//                  the pre-compaction evaluation path;
//   * vectorized — typed int-register / fused-comparison evaluation + flat
//                  open-addressing int-key index probes (the default).
//
// Prints a table and writes BENCH_hotpath.json. Speedups are relative to the
// pre-PR main baseline recorded in kBaselineMain below (measured at commit
// 291d691 on the same machine, workload, and scale), which also carried the
// untoggleable costs this PR removed: shared_ptr<vector<Value>> tuple
// payloads (two allocations + atomic refcounts per tuple), a 48-byte
// string-bearing Value, per-event heap-allocated membership bit vectors, and
// per-emission task staging for consumer-less output channels.
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "api/stream_engine.h"
#include "bench/figure_common.h"
#include "common/json_writer.h"
#include "common/str_util.h"
#include "common/trace.h"
#include "mop/predicate_index_mop.h"
#include "query/builder.h"

using namespace rumor;
using namespace rumor::bench;

namespace {

constexpr int64_t kBatches[] = {1, 16, 64, 256, 1024};

// events/sec of pre-PR main (commit 291d691) on this workload at quick
// scale, event-at-a-time for batch 1 and PushSourceBatch otherwise; best of
// several repetitions.
constexpr double kBaselineMain[] = {4250376, 4657686, 4688293, 4742070,
                                    4807844};

struct Cell {
  const char* mode;
  int64_t batch;  // 1 = event-at-a-time
  double events_per_sec = 0;
  int64_t outputs = 0;
};

}  // namespace

int main() {
  Scale scale = GetScale();
  const int num_queries = 100;
  const int64_t domain = 50;
  const int64_t num_events = scale.full ? 1000000 : 300000;
  const int64_t tiny = []() {
    const char* env = std::getenv("RUMOR_BENCH_TINY");
    return env != nullptr ? std::atoll(env) : int64_t{0};
  }();

  Schema schema = Schema::MakeInts(10);
  Rng rng(7);
  std::vector<Query> queries;
  for (int i = 0; i < num_queries; ++i) {
    std::string pred = "a0 = " + std::to_string(rng.UniformInt(0, domain - 1)) +
                       " AND a1 <= " +
                       std::to_string(rng.UniformInt(0, domain - 1));
    queries.push_back(QueryBuilder::FromSource("S", schema)
                          .Select(pred)
                          .Build("Q" + std::to_string(i)));
  }

  const int64_t n = tiny > 0 ? tiny : num_events;
  std::vector<Event> events;
  events.reserve(n);
  std::vector<int64_t> attrs(10);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t& a : attrs) a = rng.UniformInt(0, domain - 1);
    events.push_back(Event{0, Tuple::MakeInts(attrs, i)});
  }
  const int64_t warm = tiny > 0 ? 0 : n / 10;

  std::printf("# hotpath — %d σ(a0=c AND a1<=r) queries (sσ-merged), %" PRId64
              " events, domain %" PRId64 "\n",
              num_queries, n, domain);
  std::printf("%-12s %8s %16s %10s\n", "mode", "batch", "events/s",
              "vs_main");

  std::vector<Cell> cells;
  for (bool vectorized : {false, true}) {
    Program::SetVectorizationEnabled(vectorized);
    PredicateIndexMop::SetFlatProbeEnabled(vectorized);
    const char* mode = vectorized ? "vectorized" : "legacy";
    for (size_t b = 0; b < std::size(kBatches); ++b) {
      const int64_t batch = kBatches[b];
      Cell cell{mode, batch, 0, 0};
      const int reps = tiny > 0 ? 1 : 3;
      for (int rep = 0; rep < reps; ++rep) {
        RumorRun run = batch == 1
                           ? RunRumor(queries, OptimizerOptions{}, events,
                                      warm, {"S"})
                           : RunRumorBatched(queries, OptimizerOptions{},
                                             events, warm, batch, {"S"});
        cell.events_per_sec =
            std::max(cell.events_per_sec, run.result.EventsPerSecond());
        cell.outputs = run.result.outputs;
      }
      cells.push_back(cell);
      std::printf("%-12s %8" PRId64 " %16.0f %9.2fx\n", cell.mode,
                  cell.batch, cell.events_per_sec,
                  cell.events_per_sec / kBaselineMain[b]);
    }
  }
  Program::SetVectorizationEnabled(true);
  PredicateIndexMop::SetFlatProbeEnabled(true);

  for (size_t i = 1; i < cells.size(); ++i) {
    RUMOR_CHECK(cells[i].outputs == cells[0].outputs)
        << "configurations disagree on output count";
  }

  // Observability demo: the same merged plan through the engine API, then
  // EXPLAIN ANALYZE + the metrics snapshot. This is where a 100-query plan
  // shows where events die (the sσ m-op's selectivity).
  {
    StreamEngine engine;
    RUMOR_CHECK(engine.RegisterSource("S", schema, /*sharable_label=*/0).ok());
    for (const Query& q : queries) {
      Query copy = q;
      RUMOR_CHECK(engine.AddQuery(std::move(copy)).ok());
    }
    RUMOR_CHECK(engine.Start().ok());
    // Chunked pushes so the invocation-sampled eval timing has invocations
    // to sample (a single whole-feed batch would be one invocation).
    const int64_t demo = std::min<int64_t>(n, 50000);
    const int64_t chunk = 256;
    std::vector<Tuple> batch_buf;
    for (int64_t i = 0; i < demo; i += chunk) {
      batch_buf.clear();
      for (int64_t j = i; j < std::min(demo, i + chunk); ++j) {
        batch_buf.push_back(events[j].tuple);
      }
      RUMOR_CHECK(engine.PushBatch("S", batch_buf).ok());
    }
    std::printf("\n# EXPLAIN ANALYZE (%" PRId64 " events)\n%s",
                demo, engine.ExplainAnalyze().c_str());
    std::printf("\n# metrics snapshot\n%s",
                engine.CollectMetrics().ToString().c_str());
  }

  // Soak demo: a short sharded run with the metrics ticker sampling a
  // throughput time series and the control-plane trace recorder on. Writes
  // BENCH_metrics_timeseries.json (the tick ring) and BENCH_trace.json
  // (Chrome trace-event JSON — open in chrome://tracing or ui.perfetto.dev
  // to see the Optimize / incremental-merge / epoch-flush spans).
  {
    Trace::Clear();
    Trace::Enable(true);
    StreamEngine soak;
    RUMOR_CHECK(soak.SetShardCount(2).ok());
    RUMOR_CHECK(soak.RegisterSource("S", schema, /*sharable_label=*/0).ok());
    for (int i = 0; i < 10; ++i) {
      Query copy = queries[i];
      RUMOR_CHECK(soak.AddQuery(std::move(copy)).ok());
    }
    RUMOR_CHECK(soak.Start().ok());  // -> Optimize span
    soak.StartMetricsTicker(std::chrono::milliseconds(2));
    const int64_t soak_events = std::min<int64_t>(n, 20000);
    const int64_t chunk = 256;
    std::vector<Tuple> batch_buf;
    for (int64_t i = 0; i < soak_events; i += chunk) {
      batch_buf.clear();
      for (int64_t j = i; j < std::min(soak_events, i + chunk); ++j) {
        batch_buf.push_back(events[j].tuple);
      }
      RUMOR_CHECK(soak.PushBatch("S", batch_buf).ok());
      if (i % (chunk * 16) == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    // A live add mid-soak -> incremental-merge span.
    RUMOR_CHECK(
        soak.AddQueryText("SELECT * FROM S WHERE a0 = 1", "Qlive").ok());
    soak.Flush();  // -> epoch-flush span
    // Let at least one more tick land after the flush.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    soak.StopMetricsTicker();
    Trace::Enable(false);

    const std::string series = soak.MetricsHistoryJson();
    RUMOR_CHECK(!soak.MetricsHistory().empty())
        << "soak produced no metrics ticks";
    WriteReport("BENCH_metrics_timeseries.json", series);
    const std::string trace = Trace::DumpChromeJson();
#if RUMOR_METRICS_ENABLED
    RUMOR_CHECK(trace.find("\"Optimize\"") != std::string::npos &&
                trace.find("ShardedExecutor::Flush") != std::string::npos)
        << "trace is missing optimizer/epoch-flush spans";
#endif
    WriteReport("BENCH_trace.json", trace);
    std::printf("# soak: %zu metrics ticks, %" PRId64 " trace spans\n",
                soak.MetricsHistory().size(), Trace::span_count());
    Trace::Clear();
  }

  // The metrics-overhead acceptance check: the vectorized batch=64 cell of
  // this (metrics ON by default) build vs the same cell of a
  // RUMOR_METRICS=OFF build, passed in via RUMOR_BENCH_METRICS_BASELINE by
  // CI's perf-smoke job. Recorded in the JSON so the overhead is auditable.
  double on_ev_per_sec = 0;
  for (const Cell& c : cells) {
    if (c.batch == 64 && std::string(c.mode) == "vectorized") {
      on_ev_per_sec = c.events_per_sec;
    }
  }
  const double metrics_off_baseline = []() {
    const char* env = std::getenv("RUMOR_BENCH_METRICS_BASELINE");
    return env != nullptr ? std::atof(env) : 0.0;
  }();

  JsonWriter w;
  w.BeginObject()
      .KV("bench", "hotpath")
      .Key("workload")
      .String(StrCat(num_queries, " sσ-merged selection queries, 10-int "
                     "schema, domain ", domain))
      .KV("events", n);
  if (tiny > 0) w.KV("tiny", true);
  w.KV("metrics_compiled_in", RUMOR_METRICS_ENABLED != 0);
  if (metrics_off_baseline > 0 && on_ev_per_sec > 0) {
    // overhead < 0.03 is the acceptance bar (batch=64, vectorized).
    w.Key("metrics_off_events_per_sec")
        .Double(metrics_off_baseline, 10)
        .Key("metrics_on_events_per_sec")
        .Double(on_ev_per_sec, 10)
        .Key("metrics_overhead")
        .Double(1.0 - on_ev_per_sec / metrics_off_baseline, 4);
  }
  w.KV("baseline",
       "pre-PR main (commit 291d691), same workload and scale");
  w.Key("baseline_rows").BeginArray();
  for (size_t b = 0; b < std::size(kBatches); ++b) {
    w.BeginObject()
        .KV("batch", kBatches[b])
        .Key("events_per_sec")
        .Double(kBaselineMain[b], 10)
        .EndObject();
  }
  w.EndArray();
  w.Key("rows").BeginArray();
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    w.BeginObject()
        .KV("mode", c.mode)
        .KV("batch", c.batch)
        .Key("events_per_sec")
        .Double(c.events_per_sec, 10)
        .Key("speedup_vs_main")
        .Double(c.events_per_sec / kBaselineMain[i % std::size(kBatches)], 4)
        .EndObject();
  }
  w.EndArray().EndObject();
  WriteReport("BENCH_hotpath.json", w.str());
  return 0;
}
