// Hot-data-plane benchmark: a fig9-style predicate-index workload (N
// selection queries σ(a0 = c AND a1 <= r) over one source stream, merged by
// rule sσ into a single predicate-index m-op) pushed at several batch sizes.
//
// Sweeps dispatch batch size × data-plane mode:
//   * legacy     — vectorized predicate evaluation and the flat int-key
//                  probe disabled (Value-boxed Program::Eval + the
//                  unordered_map<Value, ...> index probe), i.e. the shape of
//                  the pre-compaction evaluation path;
//   * vectorized — typed int-register / fused-comparison evaluation + flat
//                  open-addressing int-key index probes (the default).
//
// Prints a table and writes BENCH_hotpath.json. Speedups are relative to the
// pre-PR main baseline recorded in kBaselineMain below (measured at commit
// 291d691 on the same machine, workload, and scale), which also carried the
// untoggleable costs this PR removed: shared_ptr<vector<Value>> tuple
// payloads (two allocations + atomic refcounts per tuple), a 48-byte
// string-bearing Value, per-event heap-allocated membership bit vectors, and
// per-emission task staging for consumer-less output channels.
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/figure_common.h"
#include "mop/predicate_index_mop.h"
#include "query/builder.h"

using namespace rumor;
using namespace rumor::bench;

namespace {

constexpr int64_t kBatches[] = {1, 16, 64, 256, 1024};

// events/sec of pre-PR main (commit 291d691) on this workload at quick
// scale, event-at-a-time for batch 1 and PushSourceBatch otherwise; best of
// several repetitions.
constexpr double kBaselineMain[] = {4250376, 4657686, 4688293, 4742070,
                                    4807844};

struct Cell {
  const char* mode;
  int64_t batch;  // 1 = event-at-a-time
  double events_per_sec = 0;
  int64_t outputs = 0;
};

}  // namespace

int main() {
  Scale scale = GetScale();
  const int num_queries = 100;
  const int64_t domain = 50;
  const int64_t num_events = scale.full ? 1000000 : 300000;
  const int64_t tiny = []() {
    const char* env = std::getenv("RUMOR_BENCH_TINY");
    return env != nullptr ? std::atoll(env) : int64_t{0};
  }();

  Schema schema = Schema::MakeInts(10);
  Rng rng(7);
  std::vector<Query> queries;
  for (int i = 0; i < num_queries; ++i) {
    std::string pred = "a0 = " + std::to_string(rng.UniformInt(0, domain - 1)) +
                       " AND a1 <= " +
                       std::to_string(rng.UniformInt(0, domain - 1));
    queries.push_back(QueryBuilder::FromSource("S", schema)
                          .Select(pred)
                          .Build("Q" + std::to_string(i)));
  }

  const int64_t n = tiny > 0 ? tiny : num_events;
  std::vector<Event> events;
  events.reserve(n);
  std::vector<int64_t> attrs(10);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t& a : attrs) a = rng.UniformInt(0, domain - 1);
    events.push_back(Event{0, Tuple::MakeInts(attrs, i)});
  }
  const int64_t warm = tiny > 0 ? 0 : n / 10;

  std::printf("# hotpath — %d σ(a0=c AND a1<=r) queries (sσ-merged), %" PRId64
              " events, domain %" PRId64 "\n",
              num_queries, n, domain);
  std::printf("%-12s %8s %16s %10s\n", "mode", "batch", "events/s",
              "vs_main");

  std::vector<Cell> cells;
  for (bool vectorized : {false, true}) {
    Program::SetVectorizationEnabled(vectorized);
    PredicateIndexMop::SetFlatProbeEnabled(vectorized);
    const char* mode = vectorized ? "vectorized" : "legacy";
    for (size_t b = 0; b < std::size(kBatches); ++b) {
      const int64_t batch = kBatches[b];
      Cell cell{mode, batch, 0, 0};
      const int reps = tiny > 0 ? 1 : 3;
      for (int rep = 0; rep < reps; ++rep) {
        RumorRun run = batch == 1
                           ? RunRumor(queries, OptimizerOptions{}, events,
                                      warm, {"S"})
                           : RunRumorBatched(queries, OptimizerOptions{},
                                             events, warm, batch, {"S"});
        cell.events_per_sec =
            std::max(cell.events_per_sec, run.result.EventsPerSecond());
        cell.outputs = run.result.outputs;
      }
      cells.push_back(cell);
      std::printf("%-12s %8" PRId64 " %16.0f %9.2fx\n", cell.mode,
                  cell.batch, cell.events_per_sec,
                  cell.events_per_sec / kBaselineMain[b]);
    }
  }
  Program::SetVectorizationEnabled(true);
  PredicateIndexMop::SetFlatProbeEnabled(true);

  for (size_t i = 1; i < cells.size(); ++i) {
    RUMOR_CHECK(cells[i].outputs == cells[0].outputs)
        << "configurations disagree on output count";
  }

  FILE* json = std::fopen("BENCH_hotpath.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"bench\": \"hotpath\",\n");
    std::fprintf(json, "  \"workload\": \"%d sσ-merged selection queries, "
                       "10-int schema, domain %" PRId64 "\",\n",
                 num_queries, domain);
    std::fprintf(json, "  \"events\": %" PRId64 ",\n", n);
    if (tiny > 0) std::fprintf(json, "  \"tiny\": true,\n");
    std::fprintf(json,
                 "  \"baseline\": \"pre-PR main (commit 291d691), same "
                 "workload and scale\",\n  \"baseline_rows\": [\n");
    for (size_t b = 0; b < std::size(kBatches); ++b) {
      std::fprintf(json,
                   "    {\"batch\": %" PRId64 ", \"events_per_sec\": %.0f}%s\n",
                   kBatches[b], kBaselineMain[b],
                   b + 1 < std::size(kBatches) ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"rows\": [\n");
    for (size_t i = 0; i < cells.size(); ++i) {
      std::fprintf(json,
                   "    {\"mode\": \"%s\", \"batch\": %" PRId64
                   ", \"events_per_sec\": %.0f, \"speedup_vs_main\": %.3f}%s\n",
                   cells[i].mode, cells[i].batch, cells[i].events_per_sec,
                   cells[i].events_per_sec /
                       kBaselineMain[i % std::size(kBatches)],
                   i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("# wrote BENCH_hotpath.json\n");
  }
  return 0;
}
