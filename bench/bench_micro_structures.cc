// Micro-benchmarks for the hot data structures: membership bit vectors,
// expression evaluation (tree vs compiled program), predicate-index probes
// vs sequential evaluation, and keyed-buffer (AI-style) probes vs scans.
#include <benchmark/benchmark.h>

#include "common/bitvector.h"
#include "common/rng.h"
#include "expr/program.h"
#include "mop/predicate_index_mop.h"
#include "mop/window.h"

namespace rumor {
namespace {

void BM_BitVectorAnd(benchmark::State& state) {
  const int size = static_cast<int>(state.range(0));
  Rng rng(1);
  BitVector a(size), b(size);
  for (int i = 0; i < size; ++i) {
    if (rng.Bernoulli(0.5)) a.Set(i);
    if (rng.Bernoulli(0.5)) b.Set(i);
  }
  for (auto _ : state) {
    BitVector c = a & b;
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_BitVectorAnd)->Arg(64)->Arg(1024)->Arg(16384);

ExprPtr BuildPredicate() {
  // a0 = 5 AND a1 > 100 AND a2 + a3 < 900
  return Expr::AndAll(
      {Expr::Cmp(CmpOp::kEq, Expr::Attr(Side::kLeft, 0), Expr::ConstInt(5)),
       Expr::Cmp(CmpOp::kGt, Expr::Attr(Side::kLeft, 1),
                 Expr::ConstInt(100)),
       Expr::Cmp(CmpOp::kLt,
                 Expr::Arith(ArithOp::kAdd, Expr::Attr(Side::kLeft, 2),
                             Expr::Attr(Side::kLeft, 3)),
                 Expr::ConstInt(900))});
}

void BM_ExprTreeEval(benchmark::State& state) {
  ExprPtr e = BuildPredicate();
  Tuple t = Tuple::MakeInts({5, 200, 300, 400}, 0);
  ExprContext ctx{&t, nullptr};
  for (auto _ : state) {
    benchmark::DoNotOptimize(e->EvalBool(ctx));
  }
}
BENCHMARK(BM_ExprTreeEval);

void BM_ExprProgramEval(benchmark::State& state) {
  Program p = Program::Compile(BuildPredicate());
  Tuple t = Tuple::MakeInts({5, 200, 300, 400}, 0);
  ExprContext ctx{&t, nullptr};
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.EvalBool(ctx));
  }
}
BENCHMARK(BM_ExprProgramEval);

// The sσ payoff: probing one hash index vs evaluating n predicates.
class NullEmitter : public Emitter {
 public:
  void Emit(int, ChannelTuple) override {}
};

void BM_PredicateIndexProbe(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<SelectionDef> defs;
  for (int i = 0; i < n; ++i) {
    defs.push_back({Expr::Cmp(CmpOp::kEq, Expr::Attr(Side::kLeft, 0),
                              Expr::ConstInt(i))});
  }
  PredicateIndexMop mop(defs, OutputMode::kPerMemberPorts);
  NullEmitter sink;
  Rng rng(1);
  ChannelTuple ct{Tuple::MakeInts({rng.UniformInt(0, n - 1), 0}, 0),
                  BitVector::Singleton(0, 1)};
  for (auto _ : state) {
    mop.Process(0, ct, sink);
  }
}
BENCHMARK(BM_PredicateIndexProbe)->Arg(10)->Arg(1000)->Arg(100000);

void BM_SequentialSelections(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<SelectionMop::Member> members;
  for (int i = 0; i < n; ++i) {
    members.push_back({0, {Expr::Cmp(CmpOp::kEq, Expr::Attr(Side::kLeft, 0),
                                     Expr::ConstInt(i))}});
  }
  SelectionMop mop(members, OutputMode::kPerMemberPorts);
  NullEmitter sink;
  Rng rng(1);
  ChannelTuple ct{Tuple::MakeInts({rng.UniformInt(0, n - 1), 0}, 0),
                  BitVector::Singleton(0, 1)};
  for (auto _ : state) {
    mop.Process(0, ct, sink);
  }
}
BENCHMARK(BM_SequentialSelections)->Arg(10)->Arg(1000);

void BM_KeyedBufferIndexedProbe(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  KeyedBuffer<int> buffer(/*indexed=*/true);
  Rng rng(1);
  for (int i = 0; i < n; ++i) {
    buffer.Add(i, Value(rng.UniformInt(0, 999)), i);
  }
  Value probe(int64_t{500});
  for (auto _ : state) {
    int64_t hits = 0;
    buffer.ForCandidates(&probe, [&](int64_t, auto&) { ++hits; });
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_KeyedBufferIndexedProbe)->Arg(1000)->Arg(100000);

void BM_KeyedBufferScan(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  KeyedBuffer<int> buffer(/*indexed=*/false);
  Rng rng(1);
  for (int i = 0; i < n; ++i) {
    buffer.Add(i, Value(rng.UniformInt(0, 999)), i);
  }
  for (auto _ : state) {
    int64_t hits = 0;
    buffer.ForCandidates(nullptr, [&](int64_t, auto&) { ++hits; });
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_KeyedBufferScan)->Arg(1000)->Arg(100000);

}  // namespace
}  // namespace rumor
