// Query-scale benchmark (the acceptance bar of the indexed share-point
// work): drive StreamEngine::AddQueryText against a *running* engine up to
// N = 100k standing queries (1M with RUMOR_BENCH_QUERY_SCALE_N=1000000) and
// show that per-add latency stays flat as the standing population grows —
// the ShareIndex resolves each new query's merges with O(1) probes instead
// of rescanning the plan, so bringing query 100000 online costs the same as
// query 1000.
//
// The workload mixes the sharing families at scale: unique equality
// selections (the σ-index grows one member per query — the paper's
// "millions of subscriptions" shape), duplicate equality/range selections
// (member CSE), and same-window aggregates (exact CSE / sα attach).
//
// Reports per-add mean/p50/p99 µs over each checkpoint segment plus the
// plan's m-ops/query, writes BENCH_query_scale.json, and exits nonzero if
// the final segment's mean per-add latency exceeds 3x the first segment's
// (the flatness acceptance; CI runs a tiny N=5k variant gated against the
// committed JSON). RUMOR_BENCH_TINY=<n> caps N for smoke runs.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/stream_engine.h"
#include "bench/figure_common.h"
#include "common/json_writer.h"

using namespace rumor;

namespace {

Schema CpuSchema() {
  return Schema({{"pid", ValueType::kInt}, {"load", ValueType::kInt}});
}

// Query i of the workload. The mix is chosen so the shared plan grows O(1)
// per add (members and channels, never fresh scan targets): that isolates
// the *discovery* cost the ShareIndex is supposed to make O(1).
std::string QueryRql(int i) {
  switch (i % 4) {
    case 0:  // unique equality — new σ-index member per query
      return "SELECT * FROM CPU WHERE pid = " + std::to_string(i);
    case 1:  // duplicate equality — member CSE onto a warm index member
      return "SELECT * FROM CPU WHERE pid = " + std::to_string(i % 100);
    case 2:  // small window pool — exact CSE after the first of each shape
      return "SELECT pid, AVG(load) FROM CPU [RANGE " +
             std::to_string(8 << (i / 4 % 4)) + "] GROUP BY pid";
    default:  // duplicate range selection — member CSE
      return "SELECT * FROM CPU WHERE load > " + std::to_string(i % 50);
  }
}

// Query i of the join-heavy variant: equi-joins over two windowed sources.
// Window sizes come from a small pool, so every add resolves through the
// ShareIndex's join probes — the first query of each window shape merges as
// a new member of the shared join (rule mjoin), every repeat is an exact
// CSE hit on a warm join member. Distinct from the σ workload above, each
// probe matches against *two* input channels and a two-sided member
// signature.
std::string JoinRql(int i) {
  const int w = 8 << (i / 3 % 8);  // 8 window shapes: 8..1024
  switch (i % 3) {
    case 0:  // the one hot shape — exact CSE on a warm join member
      return "SELECT * FROM A [RANGE 64] JOIN B [RANGE 64] ON A.x = B.x";
    case 1:  // symmetric window pool
      return "SELECT * FROM A [RANGE " + std::to_string(w) +
             "] JOIN B [RANGE " + std::to_string(w) + "] ON A.x = B.x";
    default:  // asymmetric windows — exercises the two-sided signature
      return "SELECT * FROM A [RANGE 32] JOIN B [RANGE " + std::to_string(w) +
             "] ON A.x = B.x";
  }
}

struct Segment {
  int n_end = 0;            // standing queries at the checkpoint
  double mean_us = 0;
  double p50_us = 0;
  double p99_us = 0;
  int live_mops = 0;
  double mops_per_query = 0;
};

Segment Summarize(int n_end, std::vector<double>& us,
                  const StreamEngine& engine) {
  Segment s;
  s.n_end = n_end;
  std::sort(us.begin(), us.end());
  double sum = 0;
  for (double v : us) sum += v;
  s.mean_us = sum / static_cast<double>(us.size());
  s.p50_us = us[us.size() / 2];
  s.p99_us = us[us.size() * 99 / 100];
  const OptimizeStats sharing = engine.CollectMetrics().optimize;
  s.live_mops = sharing.live_mops;
  s.mops_per_query = sharing.mops_per_query();
  return s;
}

// The join-heavy variant: same measurement (per-add latency over a running
// engine) against a population of standing equi-join queries. Returns the
// two-segment summary (first half vs second half of the adds).
std::vector<Segment> RunJoinVariant(int total) {
  Schema ab = Schema({{"x", ValueType::kInt}, {"v", ValueType::kInt}});
  StreamEngine engine;
  RUMOR_CHECK(engine.RegisterSource("A", ab).ok());
  RUMOR_CHECK(engine.RegisterSource("B", ab).ok());
  RUMOR_CHECK(engine.AddQueryText(JoinRql(0), "J0").ok());
  RUMOR_CHECK(engine.Start().ok());
  // Warm both windows so merges land on joins with buffered state.
  for (int i = 0; i < 1000; ++i) {
    RUMOR_CHECK(engine.Push("A", Tuple::MakeInts({i % 37, i}, i)).ok());
    RUMOR_CHECK(engine.Push("B", Tuple::MakeInts({i % 37, -i}, i)).ok());
  }

  std::vector<Segment> segments;
  std::vector<double> us;
  for (int i = 1; i < total; ++i) {
    const std::string rql = JoinRql(i);
    const std::string name = "J" + std::to_string(i);
    auto t0 = std::chrono::steady_clock::now();
    Status s = engine.AddQueryText(rql, name);
    us.push_back(std::chrono::duration<double, std::micro>(
                     std::chrono::steady_clock::now() - t0)
                     .count());
    RUMOR_CHECK(s.ok()) << s.ToString();
    if (i + 1 == total / 2 || i + 1 == total) {
      segments.push_back(Summarize(i + 1, us, engine));
      us.clear();
    }
  }
  return segments;
}

}  // namespace

int main() {
  int total = 100000;
  if (const char* env = std::getenv("RUMOR_BENCH_QUERY_SCALE_N")) {
    total = std::atoi(env);
  }
  if (const char* env = std::getenv("RUMOR_BENCH_TINY")) {
    total = std::atoi(env);
  }
  RUMOR_CHECK(total >= 2000) << "need at least two checkpoint segments";

  // Checkpoints at each decade (plus the final N): the flatness claim is a
  // comparison of per-add latency across decades of standing queries.
  std::vector<int> checkpoints;
  for (int n = 1000; n < total; n *= 10) checkpoints.push_back(n);
  checkpoints.push_back(total);

  StreamEngine engine;
  RUMOR_CHECK(engine.RegisterSource("CPU", CpuSchema()).ok());
  RUMOR_CHECK(engine.AddQueryText(QueryRql(0), "Q0").ok());
  RUMOR_CHECK(engine.Start().ok());
  // Warm the plan with some traffic so merges land on operators with state.
  for (int i = 0; i < 2000; ++i) {
    RUMOR_CHECK(
        engine.Push("CPU", Tuple::MakeInts({i % 97, i % 101}, i)).ok());
  }

  std::vector<Segment> segments;
  std::vector<double> us;  // per-add latencies of the current segment
  size_t next = 0;
  for (int i = 1; i < total; ++i) {
    const std::string rql = QueryRql(i);
    const std::string name = "Q" + std::to_string(i);
    auto t0 = std::chrono::steady_clock::now();
    Status s = engine.AddQueryText(rql, name);
    us.push_back(std::chrono::duration<double, std::micro>(
                     std::chrono::steady_clock::now() - t0)
                     .count());
    RUMOR_CHECK(s.ok()) << s.ToString();
    if (i + 1 == checkpoints[next]) {
      segments.push_back(Summarize(i + 1, us, engine));
      us.clear();
      ++next;
    }
  }
  RUMOR_CHECK(next == checkpoints.size());

  const double flatness =
      segments.back().mean_us / segments.front().mean_us;
  const OptimizeStats& stats = engine.optimize_stats();

  // Join-heavy variant at a tenth of the σ population (joins carry windowed
  // state on both inputs; a tenth keeps the bench's runtime proportionate).
  const int join_total = std::max(500, total / 10);
  std::vector<Segment> join_segments = RunJoinVariant(join_total);
  const double join_flatness =
      join_segments.back().mean_us / join_segments.front().mean_us;

  const bool pass = flatness <= 3.0 && join_flatness <= 3.0;

  std::printf("# query-scale — per-add latency vs standing query count\n");
  std::printf("%10s %12s %12s %12s %10s %14s\n", "N", "mean_us", "p50_us",
              "p99_us", "m-ops", "m-ops/query");
  for (const Segment& s : segments) {
    std::printf("%10d %12.1f %12.1f %12.1f %10d %14.4f\n", s.n_end, s.mean_us,
                s.p50_us, s.p99_us, s.live_mops, s.mops_per_query);
  }
  std::printf("# incremental merges: cse=%d attach=%d rules=%d\n",
              stats.incremental_cse_merges, stats.incremental_attach_merges,
              stats.incremental_rule_merges);
  std::printf("# flatness (last/first segment mean): %.2fx\n", flatness);
  std::printf("# join-heavy variant — equi-join standing queries\n");
  for (const Segment& s : join_segments) {
    std::printf("%10d %12.1f %12.1f %12.1f %10d %14.4f\n", s.n_end, s.mean_us,
                s.p50_us, s.p99_us, s.live_mops, s.mops_per_query);
  }
  std::printf("# join flatness (last/first segment mean): %.2fx\n",
              join_flatness);
  std::printf("# acceptance: flatness <= 3x (both workloads): %s\n",
              pass ? "PASS" : "FAIL");

  JsonWriter w;
  w.BeginObject()
      .KV("bench", "query_scale")
      .KV("queries", total)
      .Key("flatness_ratio")
      .Double(flatness, 4)
      .KV("incremental_cse_merges", stats.incremental_cse_merges)
      .KV("incremental_attach_merges", stats.incremental_attach_merges)
      .KV("incremental_rule_merges", stats.incremental_rule_merges);
  w.Key("checkpoints").BeginArray();
  for (const Segment& s : segments) {
    w.BeginObject()
        .KV("n", s.n_end)
        .Key("mean_us")
        .Double(s.mean_us, 3)
        .Key("p50_us")
        .Double(s.p50_us, 3)
        .Key("p99_us")
        .Double(s.p99_us, 3)
        .KV("live_mops", s.live_mops)
        .Key("mops_per_query")
        .Double(s.mops_per_query, 4)
        .EndObject();
  }
  w.EndArray();
  w.KV("join_queries", join_total)
      .Key("join_flatness_ratio")
      .Double(join_flatness, 4);
  w.Key("join_checkpoints").BeginArray();
  for (const Segment& s : join_segments) {
    w.BeginObject()
        .KV("n", s.n_end)
        .Key("mean_us")
        .Double(s.mean_us, 3)
        .Key("p50_us")
        .Double(s.p50_us, 3)
        .Key("p99_us")
        .Double(s.p99_us, 3)
        .KV("live_mops", s.live_mops)
        .Key("mops_per_query")
        .Double(s.mops_per_query, 4)
        .EndObject();
  }
  w.EndArray().EndObject();
  bench::WriteReport("BENCH_query_scale.json", w.str());
  return pass ? 0 : 1;
}
