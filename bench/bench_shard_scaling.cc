// Shard-scaling benchmark: the fig9-style predicate-index workload (100
// selection queries σ(a0 = c AND a1 <= r) over one source, sσ-merged into a
// single predicate-index m-op) pushed through the partition-parallel
// ShardedExecutor at shard counts 1..max(4, hw_concurrency), against the
// plain single-threaded executor as baseline.
//
// Two workload rows per shard count:
//   * selection — the stateless σ plan; AnalyzeSharding routes the source
//     round-robin (kAny), so every worker sees 1/n of the events. The
//     embarrassingly parallel upper bound.
//   * aggregate — the σ plan plus GROUP BY a0 aggregates; the source is
//     hash-partitioned on a0 (kKey), so scaling additionally depends on key
//     skew and the per-tuple routing hash.
//
// The timed region includes the final Flush(): reported events/s covers
// full processing and ordered merge, not just enqueueing. Writes
// BENCH_shard_scaling.json with hardware_concurrency recorded — scaling
// numbers are only meaningful relative to the cores actually available
// (a 1-core host shows the machinery's overhead, not speedup).
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/figure_common.h"
#include "common/json_writer.h"
#include "common/str_util.h"
#include "query/builder.h"

using namespace rumor;
using namespace rumor::bench;

namespace {

struct Cell {
  const char* workload;
  int shards;  // 0 = single-threaded baseline executor
  double events_per_sec = 0;
  int64_t outputs = 0;
};

}  // namespace

int main() {
  Scale scale = GetScale();
  const int num_queries = 100;
  const int64_t domain = 50;
  const int64_t num_events = scale.full ? 600000 : 200000;
  const int64_t tiny = []() {
    const char* env = std::getenv("RUMOR_BENCH_TINY");
    return env != nullptr ? std::atoll(env) : int64_t{0};
  }();
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int max_shards = std::max(4, hw);

  Schema schema = Schema::MakeInts(10);
  Rng rng(7);
  std::vector<Query> selection_queries;
  for (int i = 0; i < num_queries; ++i) {
    std::string pred = "a0 = " + std::to_string(rng.UniformInt(0, domain - 1)) +
                       " AND a1 <= " +
                       std::to_string(rng.UniformInt(0, domain - 1));
    selection_queries.push_back(QueryBuilder::FromSource("S", schema)
                                    .Select(pred)
                                    .Build("Q" + std::to_string(i)));
  }
  // Same shape plus windowed GROUP BY a0 aggregates: keys the source.
  std::vector<Query> aggregate_queries = selection_queries;
  for (int i = 0; i < 20; ++i) {
    aggregate_queries.push_back(
        QueryBuilder::FromSource("S", schema)
            .Aggregate(i % 2 == 0 ? AggFn::kSum : AggFn::kAvg, "a1", {"a0"},
                       16 + 8 * (i % 4))
            .Build("G" + std::to_string(i)));
  }

  const int64_t n = tiny > 0 ? tiny : num_events;
  std::vector<Event> events;
  events.reserve(n);
  std::vector<int64_t> attrs(10);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t& a : attrs) a = rng.UniformInt(0, domain - 1);
    events.push_back(Event{0, Tuple::MakeInts(attrs, i)});
  }
  const int64_t warm = tiny > 0 ? 0 : n / 10;
  const int64_t batch = 256;

  std::printf("# shard_scaling — %d σ queries (+20 GROUP BY for the keyed "
              "row), %" PRId64 " events, batch %" PRId64
              ", hardware_concurrency %d\n",
              num_queries, n, batch, hw);
  std::printf("%-10s %8s %16s %10s\n", "workload", "shards", "events/s",
              "vs_single");

  std::vector<Cell> cells;
  struct Group {
    const char* name;
    const std::vector<Query>* queries;
  };
  const Group groups[] = {{"selection", &selection_queries},
                          {"aggregate", &aggregate_queries}};
  for (const Group& g : groups) {
    double single = 0;
    // Baseline: the plain single-threaded executor, same batched feed.
    {
      Cell cell{g.name, 0, 0, 0};
      const int reps = tiny > 0 ? 1 : 3;
      for (int rep = 0; rep < reps; ++rep) {
        RumorRun run = RunRumorBatched(*g.queries, OptimizerOptions{}, events,
                                       warm, batch, {"S"});
        cell.events_per_sec =
            std::max(cell.events_per_sec, run.result.EventsPerSecond());
        cell.outputs = run.result.outputs;
      }
      single = cell.events_per_sec;
      cells.push_back(cell);
      std::printf("%-10s %8s %16.0f %9.2fx\n", g.name, "single",
                  cell.events_per_sec, 1.0);
    }
    for (int shards = 1; shards <= max_shards; ++shards) {
      Cell cell{g.name, shards, 0, 0};
      const int reps = tiny > 0 ? 1 : 3;
      for (int rep = 0; rep < reps; ++rep) {
        RumorRun run = RunRumorSharded(*g.queries, OptimizerOptions{}, events,
                                       warm, batch, shards, {"S"});
        cell.events_per_sec =
            std::max(cell.events_per_sec, run.result.EventsPerSecond());
        cell.outputs = run.result.outputs;
      }
      cells.push_back(cell);
      std::printf("%-10s %8d %16.0f %9.2fx\n", g.name, shards,
                  cell.events_per_sec,
                  single > 0 ? cell.events_per_sec / single : 0.0);
    }
  }

  // Every configuration of a workload must agree on the output count —
  // sharding may reorder deliveries but never add or drop any.
  for (const Group& g : groups) {
    int64_t expect = -1;
    for (const Cell& c : cells) {
      if (std::string(c.workload) != g.name) continue;
      if (expect < 0) expect = c.outputs;
      RUMOR_CHECK(c.outputs == expect)
          << g.name << " shards=" << c.shards << ": " << c.outputs
          << " outputs vs " << expect;
    }
  }

  JsonWriter w;
  w.BeginObject()
      .KV("bench", "shard_scaling")
      .Key("workload")
      .String(StrCat(num_queries,
                     " sσ-merged selection queries (aggregate rows add 20 "
                     "GROUP BY a0 aggregates), 10-int schema, domain ",
                     domain))
      .KV("events", n)
      .KV("batch", batch)
      .KV("hardware_concurrency", hw)
      .KV("max_shards", max_shards);
  if (tiny > 0) w.KV("tiny", true);
  w.Key("rows").BeginArray();
  for (const Cell& c : cells) {
    w.BeginObject().KV("workload", c.workload);
    if (c.shards == 0) {
      w.KV("executor", "single-threaded");
    } else {
      w.KV("executor", "sharded").KV("shards", c.shards);
    }
    w.Key("events_per_sec")
        .Double(c.events_per_sec, 10)
        .KV("outputs", c.outputs)
        .EndObject();
  }
  w.EndArray().EndObject();
  WriteReport("BENCH_shard_scaling.json", w.str());
  return 0;
}
