// Table 3 of the paper: the synthetic-benchmark parameter defaults this
// repository uses, plus the harness scale currently in effect.
#include <cstdio>

#include "bench/figure_common.h"

int main() {
  rumor::SyntheticParams p;
  rumor::bench::Scale scale = rumor::bench::GetScale();
  std::printf("# Table 3 — synthetic benchmark parameters (defaults)\n");
  std::printf("%-44s %12d\n", "Number of queries", p.num_queries);
  std::printf("%-44s %12d\n", "Number of attributes in stream schemas",
              p.num_attributes);
  std::printf("%-44s %12lld\n", "Constant domain size",
              static_cast<long long>(p.constant_domain));
  std::printf("%-44s %12lld\n", "Window length domain size",
              static_cast<long long>(p.window_domain));
  std::printf("%-44s %12.2f\n", "Zipfian parameter", p.zipf_parameter);
  std::printf("\n# harness scale (RUMOR_BENCH_SCALE=%s)\n",
              scale.full ? "full" : "quick");
  std::printf("%-44s %12lld\n", "Events per measurement",
              static_cast<long long>(scale.tuples));
  std::printf("%-44s %12lld\n", "Warm-up events",
              static_cast<long long>(scale.warmup));
  std::printf("%-44s %12d\n", "Query-sweep cap", scale.max_queries);
  return 0;
}
