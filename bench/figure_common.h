// Shared scaffolding for the figure-reproduction benchmarks (one binary per
// paper figure). Scale is controlled by RUMOR_BENCH_SCALE:
//   quick (default) — small tuple counts / query caps, finishes in seconds;
//   full            — the paper's scale (100k+ tuples, up to 100k queries).
#ifndef RUMOR_BENCH_FIGURE_COMMON_H_
#define RUMOR_BENCH_FIGURE_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/json_writer.h"
#include "workload/harness.h"
#include "workload/workloads.h"

namespace rumor {
namespace bench {

// Writes a (JSON) report next to the working directory; all BENCH_*.json
// emitters build their document with JsonWriter and land here.
inline bool WriteReport(const char* path, const std::string& content) {
  RUMOR_CHECK(JsonLint(content)) << "invalid JSON for " << path;
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  std::printf("# wrote %s\n", path);
  return true;
}

struct Scale {
  int64_t tuples = 30000;        // events per measurement
  int64_t warmup = 3000;         // untimed warm-up events
  int max_queries = 10000;       // cap on query-count sweeps
  bool full = false;
};

inline Scale GetScale() {
  Scale s;
  const char* env = std::getenv("RUMOR_BENCH_SCALE");
  if (env != nullptr && std::strcmp(env, "full") == 0) {
    s.tuples = 100000;
    s.warmup = 10000;
    s.max_queries = 100000;
    s.full = true;
  }
  return s;
}

// Batch size for the batched-dispatch column (RUMOR_BENCH_BATCH, default
// 256). The W1/W2 feeds alternate S/T strictly, so same-stream runs are
// length 1 and the column measures the batch API's fallback overhead; see
// bench_agg_batch for a workload where batching has runs to work with.
inline int64_t GetBatchSize() {
  const char* env = std::getenv("RUMOR_BENCH_BATCH");
  if (env != nullptr) {
    int64_t v = std::atoll(env);
    if (v > 0) return v;
  }
  return 256;
}

inline void PrintHeader(const char* figure, const char* x_name,
                        const char* description) {
  std::printf("# %s — %s\n", figure, description);
  std::printf("# normalized values are relative to each system's first row "
              "(paper §5.2 methodology); rumor_batch uses "
              "PushSourceBatch(batch=%lld)\n",
              static_cast<long long>(GetBatchSize()));
  std::printf("%-12s %16s %16s %16s %12s %12s\n", x_name, "rumor_ev/s",
              "rumor_batch", "cayuga_ev/s", "rumor_norm", "cayuga_norm");
}

struct Row {
  int64_t x;
  double rumor = 0;
  double rumor_batch = 0;
  double cayuga = 0;
};

inline void PrintRows(const std::vector<Row>& rows) {
  double rumor_base = rows.empty() || rows[0].rumor == 0 ? 1 : rows[0].rumor;
  double cayuga_base =
      rows.empty() || rows[0].cayuga == 0 ? 1 : rows[0].cayuga;
  for (const Row& r : rows) {
    std::printf("%-12lld %16.0f %16.0f %16.0f %12.3f %12.3f\n",
                static_cast<long long>(r.x), r.rumor, r.rumor_batch, r.cayuga,
                r.rumor / rumor_base, r.cayuga / cayuga_base);
  }
}

// Builds matched W1 workloads (Cayuga + RUMOR) and measures both engines.
inline Row MeasureW1(const SyntheticParams& params, int64_t warmup) {
  Rng rng(params.seed);
  std::vector<W1Spec> specs = DrawW1Specs(params, rng);
  Schema schema = params.MakeSchema();

  std::vector<Query> queries;
  std::vector<CayugaAutomaton> automata;
  for (size_t i = 0; i < specs.size(); ++i) {
    std::string name = "Q" + std::to_string(i);
    queries.push_back(MakeW1Query(name, specs[i], schema));
    automata.push_back(MakeW1Automaton(name, specs[i], schema));
  }
  Rng feed_rng(params.seed ^ 0xfeed);
  std::vector<Event> events =
      GenerateInterleaved(params, params.num_tuples, 0, feed_rng);

  RumorRun rumor = RunRumor(queries, OptimizerOptions{}, events, warmup);
  RumorRun batched = RunRumorBatched(queries, OptimizerOptions{}, events,
                                     warmup, GetBatchSize());
  CayugaRun cayuga =
      RunCayuga(automata, CayugaEngine::Options{}, events, warmup);
  return Row{0, rumor.result.EventsPerSecond(),
             batched.result.EventsPerSecond(),
             cayuga.result.EventsPerSecond()};
}

// Matched W2 workloads (`iterate` selects the µ variant of Fig. 10b).
inline Row MeasureW2(const SyntheticParams& params, bool iterate,
                     int64_t warmup) {
  Rng rng(params.seed);
  std::vector<W2Spec> specs = DrawW2Specs(params, iterate, rng);
  Schema schema = params.MakeSchema();

  std::vector<Query> queries;
  std::vector<CayugaAutomaton> automata;
  for (size_t i = 0; i < specs.size(); ++i) {
    std::string name = "Q" + std::to_string(i);
    queries.push_back(MakeW2Query(name, specs[i], schema));
    automata.push_back(MakeW2Automaton(name, specs[i], schema));
  }
  Rng feed_rng(params.seed ^ 0xfeed);
  std::vector<Event> events =
      GenerateInterleaved(params, params.num_tuples, 0, feed_rng);

  RumorRun rumor = RunRumor(queries, OptimizerOptions{}, events, warmup);
  RumorRun batched = RunRumorBatched(queries, OptimizerOptions{}, events,
                                     warmup, GetBatchSize());
  CayugaRun cayuga =
      RunCayuga(automata, CayugaEngine::Options{}, events, warmup);
  return Row{0, rumor.result.EventsPerSecond(),
             batched.result.EventsPerSecond(),
             cayuga.result.EventsPerSecond()};
}

}  // namespace bench
}  // namespace rumor

#endif  // RUMOR_BENCH_FIGURE_COMMON_H_
