// Hybrid-query runner (Figures 11(a)/11(b)): the §5.3 workload — modified
// Query-2 instances over the synthetic performance-counter trace (the
// substitute for the paper's Windows datasets D1/D2) — with the channel
// rules enabled vs disabled.
#ifndef RUMOR_BENCH_HYBRID_COMMON_H_
#define RUMOR_BENCH_HYBRID_COMMON_H_

#include "bench/figure_common.h"
#include "workload/perfmon.h"

namespace rumor {
namespace bench {

struct HybridResult {
  double events_per_second = 0;
  int64_t outputs = 0;
  int live_mops = 0;
};

inline HybridResult RunHybrid(int num_queries, double sel, bool with_channel,
                              const std::vector<Tuple>& trace,
                              int64_t warmup) {
  std::vector<Query> queries;
  for (int i = 0; i < num_queries; ++i) {
    queries.push_back(MakeHybridQuery(i, sel, /*smooth_window=*/60));
  }
  Plan plan;
  auto compiled = CompileQueries(queries, &plan);
  RUMOR_CHECK(compiled.ok()) << compiled.status().ToString();
  OptimizerOptions options;
  options.enable_channels = with_channel;
  Optimize(&plan, options);

  HybridResult out;
  out.live_mops = static_cast<int>(plan.LiveMops().size());
  CountingSink sink;
  Executor exec(&plan, &sink);
  exec.Prepare();
  StreamId cpu = *plan.streams().FindSource("CPU");

  int64_t i = 0;
  const int64_t n = static_cast<int64_t>(trace.size());
  for (; i < warmup && i < n; ++i) exec.PushSource(cpu, trace[i]);
  Stopwatch timer;
  for (; i < n; ++i) exec.PushSource(cpu, trace[i]);
  ThroughputResult result;
  result.events = n - warmup;
  result.outputs = sink.total();
  result.seconds = timer.ElapsedSeconds();
  out.events_per_second = result.EventsPerSecond();
  out.outputs = result.outputs;
  return out;
}

}  // namespace bench
}  // namespace rumor

#endif  // RUMOR_BENCH_HYBRID_COMMON_H_
