// Workload 3 runner (Figures 10(c)/10(d)): channel vs no-channel plans over
// sharable sources, with the paper's §5.2 feeding protocol:
//  * with channel   — one broadcast channel tuple per round for S1..Sk,
//    plus one T tuple (the generator feeds channel C directly);
//  * without channel — a round-robin round of k identical Si tuples plus
//    one T tuple.
// Both feeds carry exactly the same logical stream content; throughput is
// reported in *logical stream tuples* per second ((k+1) per round in both
// plans) so the comparison is content-for-content fair.
#ifndef RUMOR_BENCH_W3_COMMON_H_
#define RUMOR_BENCH_W3_COMMON_H_

#include "bench/figure_common.h"

namespace rumor {
namespace bench {

struct W3Result {
  double logical_tuples_per_second = 0;
  int64_t outputs = 0;
  int live_mops = 0;
};

// `num_queries` queries; query i reads source S(i % capacity); identical
// definitions (window 1000) so the channel rule applies to each source
// group. `rounds` rounds are fed after `warmup_rounds`.
inline W3Result RunW3(int num_queries, int capacity, bool with_channel,
                      int64_t rounds, int64_t warmup_rounds, uint64_t seed) {
  SyntheticParams params;
  Schema schema = params.MakeSchema();
  std::vector<Query> queries;
  for (int i = 0; i < num_queries; ++i) {
    queries.push_back(MakeW3Query("Q" + std::to_string(i), i % capacity,
                                  /*window=*/1000, schema));
  }

  Plan plan;
  auto compiled = CompileQueries(queries, &plan);
  RUMOR_CHECK(compiled.ok()) << compiled.status().ToString();
  OptimizerOptions options;
  options.enable_channels = with_channel;
  Optimize(&plan, options);

  W3Result out;
  out.live_mops = static_cast<int>(plan.LiveMops().size());

  CountingSink sink;
  Executor exec(&plan, &sink);
  exec.Prepare();

  // Resolve the feed targets. With a single source there is no group to
  // encode (the channel rule needs >= 2 sharable streams); fall back to the
  // plain source push, which is the same plan.
  ChannelId group_channel = kInvalidChannel;
  if (with_channel && capacity >= 2) {
    auto groups = plan.SourceGroupChannels();
    RUMOR_CHECK(groups.size() == 1)
        << "channel rule did not form the source channel";
    group_channel = groups[0];
  }
  std::vector<StreamId> sources;
  for (int i = 0; i < capacity; ++i) {
    auto id = plan.streams().FindSource("S" + std::to_string(i));
    RUMOR_CHECK(id.has_value());
    sources.push_back(*id);
  }
  StreamId t_stream = *plan.streams().FindSource("T");
  const int cap =
      group_channel != kInvalidChannel
          ? plan.channel(group_channel).capacity()
          : 0;

  Rng rng(seed);
  Stopwatch timer;
  double measured_seconds = 0;
  for (int64_t r = 0; r < warmup_rounds + rounds; ++r) {
    if (r == warmup_rounds) timer.Restart();
    Timestamp ts = 2 * r;
    std::vector<int64_t> values(schema.size());
    for (auto& v : values) v = rng.UniformInt(0, 999);
    Tuple s_tuple = Tuple::MakeInts(values, ts);
    if (group_channel != kInvalidChannel) {
      exec.PushChannel(group_channel,
                       ChannelTuple{s_tuple, BitVector::AllOnes(cap)});
    } else {
      for (StreamId s : sources) exec.PushSource(s, s_tuple);
    }
    for (auto& v : values) v = rng.UniformInt(0, 999);
    exec.PushSource(t_stream, Tuple::MakeInts(values, ts + 1));
  }
  measured_seconds = timer.ElapsedSeconds();

  // Rate accounting goes through ThroughputResult (shared seconds==0 guard):
  // "events" here are logical stream tuples, (k+1) per measured round.
  ThroughputResult result;
  result.events = rounds * (capacity + 1);
  result.outputs = sink.total();
  result.seconds = measured_seconds;
  out.logical_tuples_per_second = result.EventsPerSecond();
  out.outputs = result.outputs;
  return out;
}

}  // namespace bench
}  // namespace rumor

#endif  // RUMOR_BENCH_W3_COMMON_H_
