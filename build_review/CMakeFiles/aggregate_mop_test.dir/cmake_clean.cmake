file(REMOVE_RECURSE
  "CMakeFiles/aggregate_mop_test.dir/tests/aggregate_mop_test.cc.o"
  "CMakeFiles/aggregate_mop_test.dir/tests/aggregate_mop_test.cc.o.d"
  "aggregate_mop_test"
  "aggregate_mop_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggregate_mop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
