# Empty compiler generated dependencies file for aggregate_mop_test.
# This may be replaced when dependencies are built.
