file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cayuga_indexes.dir/bench/bench_ablation_cayuga_indexes.cc.o"
  "CMakeFiles/bench_ablation_cayuga_indexes.dir/bench/bench_ablation_cayuga_indexes.cc.o.d"
  "bench_ablation_cayuga_indexes"
  "bench_ablation_cayuga_indexes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cayuga_indexes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
