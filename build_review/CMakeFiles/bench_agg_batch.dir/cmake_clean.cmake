file(REMOVE_RECURSE
  "CMakeFiles/bench_agg_batch.dir/bench/bench_agg_batch.cc.o"
  "CMakeFiles/bench_agg_batch.dir/bench/bench_agg_batch.cc.o.d"
  "bench_agg_batch"
  "bench_agg_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_agg_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
