# Empty compiler generated dependencies file for bench_agg_batch.
# This may be replaced when dependencies are built.
