file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10a.dir/bench/bench_fig10a.cc.o"
  "CMakeFiles/bench_fig10a.dir/bench/bench_fig10a.cc.o.d"
  "bench_fig10a"
  "bench_fig10a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
