# Empty compiler generated dependencies file for bench_fig10a.
# This may be replaced when dependencies are built.
