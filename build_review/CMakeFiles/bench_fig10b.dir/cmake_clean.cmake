file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10b.dir/bench/bench_fig10b.cc.o"
  "CMakeFiles/bench_fig10b.dir/bench/bench_fig10b.cc.o.d"
  "bench_fig10b"
  "bench_fig10b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
