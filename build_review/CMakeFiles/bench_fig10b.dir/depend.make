# Empty dependencies file for bench_fig10b.
# This may be replaced when dependencies are built.
