file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10c.dir/bench/bench_fig10c.cc.o"
  "CMakeFiles/bench_fig10c.dir/bench/bench_fig10c.cc.o.d"
  "bench_fig10c"
  "bench_fig10c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
