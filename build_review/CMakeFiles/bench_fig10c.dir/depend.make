# Empty dependencies file for bench_fig10c.
# This may be replaced when dependencies are built.
