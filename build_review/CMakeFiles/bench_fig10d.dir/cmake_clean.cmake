file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10d.dir/bench/bench_fig10d.cc.o"
  "CMakeFiles/bench_fig10d.dir/bench/bench_fig10d.cc.o.d"
  "bench_fig10d"
  "bench_fig10d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
