# Empty compiler generated dependencies file for bench_fig10d.
# This may be replaced when dependencies are built.
