file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9d.dir/bench/bench_fig9d.cc.o"
  "CMakeFiles/bench_fig9d.dir/bench/bench_fig9d.cc.o.d"
  "bench_fig9d"
  "bench_fig9d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
