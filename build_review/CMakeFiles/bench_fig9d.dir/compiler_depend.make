# Empty compiler generated dependencies file for bench_fig9d.
# This may be replaced when dependencies are built.
