file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_params.dir/bench/bench_table3_params.cc.o"
  "CMakeFiles/bench_table3_params.dir/bench/bench_table3_params.cc.o.d"
  "bench_table3_params"
  "bench_table3_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
