file(REMOVE_RECURSE
  "CMakeFiles/cayuga_test.dir/tests/cayuga_test.cc.o"
  "CMakeFiles/cayuga_test.dir/tests/cayuga_test.cc.o.d"
  "cayuga_test"
  "cayuga_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cayuga_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
