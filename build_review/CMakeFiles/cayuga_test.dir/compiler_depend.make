# Empty compiler generated dependencies file for cayuga_test.
# This may be replaced when dependencies are built.
