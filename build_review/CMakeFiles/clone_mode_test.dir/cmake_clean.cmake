file(REMOVE_RECURSE
  "CMakeFiles/clone_mode_test.dir/tests/clone_mode_test.cc.o"
  "CMakeFiles/clone_mode_test.dir/tests/clone_mode_test.cc.o.d"
  "clone_mode_test"
  "clone_mode_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clone_mode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
