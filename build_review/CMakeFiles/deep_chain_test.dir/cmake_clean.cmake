file(REMOVE_RECURSE
  "CMakeFiles/deep_chain_test.dir/tests/deep_chain_test.cc.o"
  "CMakeFiles/deep_chain_test.dir/tests/deep_chain_test.cc.o.d"
  "deep_chain_test"
  "deep_chain_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deep_chain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
