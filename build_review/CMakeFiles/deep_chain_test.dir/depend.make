# Empty dependencies file for deep_chain_test.
# This may be replaced when dependencies are built.
