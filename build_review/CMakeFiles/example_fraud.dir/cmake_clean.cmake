file(REMOVE_RECURSE
  "CMakeFiles/example_fraud.dir/examples/fraud.cpp.o"
  "CMakeFiles/example_fraud.dir/examples/fraud.cpp.o.d"
  "example_fraud"
  "example_fraud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fraud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
