# Empty dependencies file for example_fraud.
# This may be replaced when dependencies are built.
