file(REMOVE_RECURSE
  "CMakeFiles/example_perfmon.dir/examples/perfmon.cpp.o"
  "CMakeFiles/example_perfmon.dir/examples/perfmon.cpp.o.d"
  "example_perfmon"
  "example_perfmon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_perfmon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
