# Empty compiler generated dependencies file for example_perfmon.
# This may be replaced when dependencies are built.
