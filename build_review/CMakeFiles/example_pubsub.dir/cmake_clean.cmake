file(REMOVE_RECURSE
  "CMakeFiles/example_pubsub.dir/examples/pubsub.cpp.o"
  "CMakeFiles/example_pubsub.dir/examples/pubsub.cpp.o.d"
  "example_pubsub"
  "example_pubsub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_pubsub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
