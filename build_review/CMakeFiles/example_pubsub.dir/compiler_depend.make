# Empty compiler generated dependencies file for example_pubsub.
# This may be replaced when dependencies are built.
