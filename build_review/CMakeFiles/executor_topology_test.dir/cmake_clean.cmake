file(REMOVE_RECURSE
  "CMakeFiles/executor_topology_test.dir/tests/executor_topology_test.cc.o"
  "CMakeFiles/executor_topology_test.dir/tests/executor_topology_test.cc.o.d"
  "executor_topology_test"
  "executor_topology_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/executor_topology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
