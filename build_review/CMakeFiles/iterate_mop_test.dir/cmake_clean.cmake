file(REMOVE_RECURSE
  "CMakeFiles/iterate_mop_test.dir/tests/iterate_mop_test.cc.o"
  "CMakeFiles/iterate_mop_test.dir/tests/iterate_mop_test.cc.o.d"
  "iterate_mop_test"
  "iterate_mop_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iterate_mop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
