# Empty dependencies file for iterate_mop_test.
# This may be replaced when dependencies are built.
