file(REMOVE_RECURSE
  "CMakeFiles/join_mop_test.dir/tests/join_mop_test.cc.o"
  "CMakeFiles/join_mop_test.dir/tests/join_mop_test.cc.o.d"
  "join_mop_test"
  "join_mop_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_mop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
