# Empty dependencies file for join_mop_test.
# This may be replaced when dependencies are built.
