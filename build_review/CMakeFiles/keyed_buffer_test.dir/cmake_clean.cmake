file(REMOVE_RECURSE
  "CMakeFiles/keyed_buffer_test.dir/tests/keyed_buffer_test.cc.o"
  "CMakeFiles/keyed_buffer_test.dir/tests/keyed_buffer_test.cc.o.d"
  "keyed_buffer_test"
  "keyed_buffer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keyed_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
