# Empty compiler generated dependencies file for keyed_buffer_test.
# This may be replaced when dependencies are built.
