file(REMOVE_RECURSE
  "CMakeFiles/misc_integration_test.dir/tests/misc_integration_test.cc.o"
  "CMakeFiles/misc_integration_test.dir/tests/misc_integration_test.cc.o.d"
  "misc_integration_test"
  "misc_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/misc_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
