# Empty compiler generated dependencies file for misc_integration_test.
# This may be replaced when dependencies are built.
