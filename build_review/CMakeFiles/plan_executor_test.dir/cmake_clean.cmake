file(REMOVE_RECURSE
  "CMakeFiles/plan_executor_test.dir/tests/plan_executor_test.cc.o"
  "CMakeFiles/plan_executor_test.dir/tests/plan_executor_test.cc.o.d"
  "plan_executor_test"
  "plan_executor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
