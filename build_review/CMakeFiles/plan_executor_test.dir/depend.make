# Empty dependencies file for plan_executor_test.
# This may be replaced when dependencies are built.
