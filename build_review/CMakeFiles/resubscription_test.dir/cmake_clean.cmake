file(REMOVE_RECURSE
  "CMakeFiles/resubscription_test.dir/tests/resubscription_test.cc.o"
  "CMakeFiles/resubscription_test.dir/tests/resubscription_test.cc.o.d"
  "resubscription_test"
  "resubscription_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resubscription_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
