# Empty dependencies file for resubscription_test.
# This may be replaced when dependencies are built.
