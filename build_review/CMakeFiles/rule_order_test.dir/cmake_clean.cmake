file(REMOVE_RECURSE
  "CMakeFiles/rule_order_test.dir/tests/rule_order_test.cc.o"
  "CMakeFiles/rule_order_test.dir/tests/rule_order_test.cc.o.d"
  "rule_order_test"
  "rule_order_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_order_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
