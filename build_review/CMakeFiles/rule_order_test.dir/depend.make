# Empty dependencies file for rule_order_test.
# This may be replaced when dependencies are built.
