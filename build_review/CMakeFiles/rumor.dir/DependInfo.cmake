
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/api/stream_engine.cc" "CMakeFiles/rumor.dir/src/api/stream_engine.cc.o" "gcc" "CMakeFiles/rumor.dir/src/api/stream_engine.cc.o.d"
  "/root/repo/src/cayuga/automaton.cc" "CMakeFiles/rumor.dir/src/cayuga/automaton.cc.o" "gcc" "CMakeFiles/rumor.dir/src/cayuga/automaton.cc.o.d"
  "/root/repo/src/cayuga/engine.cc" "CMakeFiles/rumor.dir/src/cayuga/engine.cc.o" "gcc" "CMakeFiles/rumor.dir/src/cayuga/engine.cc.o.d"
  "/root/repo/src/cayuga/translator.cc" "CMakeFiles/rumor.dir/src/cayuga/translator.cc.o" "gcc" "CMakeFiles/rumor.dir/src/cayuga/translator.cc.o.d"
  "/root/repo/src/common/bitvector.cc" "CMakeFiles/rumor.dir/src/common/bitvector.cc.o" "gcc" "CMakeFiles/rumor.dir/src/common/bitvector.cc.o.d"
  "/root/repo/src/common/rng.cc" "CMakeFiles/rumor.dir/src/common/rng.cc.o" "gcc" "CMakeFiles/rumor.dir/src/common/rng.cc.o.d"
  "/root/repo/src/common/schema.cc" "CMakeFiles/rumor.dir/src/common/schema.cc.o" "gcc" "CMakeFiles/rumor.dir/src/common/schema.cc.o.d"
  "/root/repo/src/common/str_util.cc" "CMakeFiles/rumor.dir/src/common/str_util.cc.o" "gcc" "CMakeFiles/rumor.dir/src/common/str_util.cc.o.d"
  "/root/repo/src/common/tuple.cc" "CMakeFiles/rumor.dir/src/common/tuple.cc.o" "gcc" "CMakeFiles/rumor.dir/src/common/tuple.cc.o.d"
  "/root/repo/src/common/value.cc" "CMakeFiles/rumor.dir/src/common/value.cc.o" "gcc" "CMakeFiles/rumor.dir/src/common/value.cc.o.d"
  "/root/repo/src/expr/expr.cc" "CMakeFiles/rumor.dir/src/expr/expr.cc.o" "gcc" "CMakeFiles/rumor.dir/src/expr/expr.cc.o.d"
  "/root/repo/src/expr/parser_expr.cc" "CMakeFiles/rumor.dir/src/expr/parser_expr.cc.o" "gcc" "CMakeFiles/rumor.dir/src/expr/parser_expr.cc.o.d"
  "/root/repo/src/expr/program.cc" "CMakeFiles/rumor.dir/src/expr/program.cc.o" "gcc" "CMakeFiles/rumor.dir/src/expr/program.cc.o.d"
  "/root/repo/src/expr/schema_map.cc" "CMakeFiles/rumor.dir/src/expr/schema_map.cc.o" "gcc" "CMakeFiles/rumor.dir/src/expr/schema_map.cc.o.d"
  "/root/repo/src/expr/shape.cc" "CMakeFiles/rumor.dir/src/expr/shape.cc.o" "gcc" "CMakeFiles/rumor.dir/src/expr/shape.cc.o.d"
  "/root/repo/src/mop/aggregate_mop.cc" "CMakeFiles/rumor.dir/src/mop/aggregate_mop.cc.o" "gcc" "CMakeFiles/rumor.dir/src/mop/aggregate_mop.cc.o.d"
  "/root/repo/src/mop/iterate_mop.cc" "CMakeFiles/rumor.dir/src/mop/iterate_mop.cc.o" "gcc" "CMakeFiles/rumor.dir/src/mop/iterate_mop.cc.o.d"
  "/root/repo/src/mop/join_mop.cc" "CMakeFiles/rumor.dir/src/mop/join_mop.cc.o" "gcc" "CMakeFiles/rumor.dir/src/mop/join_mop.cc.o.d"
  "/root/repo/src/mop/mop.cc" "CMakeFiles/rumor.dir/src/mop/mop.cc.o" "gcc" "CMakeFiles/rumor.dir/src/mop/mop.cc.o.d"
  "/root/repo/src/mop/predicate_index_mop.cc" "CMakeFiles/rumor.dir/src/mop/predicate_index_mop.cc.o" "gcc" "CMakeFiles/rumor.dir/src/mop/predicate_index_mop.cc.o.d"
  "/root/repo/src/mop/projection_mop.cc" "CMakeFiles/rumor.dir/src/mop/projection_mop.cc.o" "gcc" "CMakeFiles/rumor.dir/src/mop/projection_mop.cc.o.d"
  "/root/repo/src/mop/selection_mop.cc" "CMakeFiles/rumor.dir/src/mop/selection_mop.cc.o" "gcc" "CMakeFiles/rumor.dir/src/mop/selection_mop.cc.o.d"
  "/root/repo/src/mop/sequence_mop.cc" "CMakeFiles/rumor.dir/src/mop/sequence_mop.cc.o" "gcc" "CMakeFiles/rumor.dir/src/mop/sequence_mop.cc.o.d"
  "/root/repo/src/mop/window.cc" "CMakeFiles/rumor.dir/src/mop/window.cc.o" "gcc" "CMakeFiles/rumor.dir/src/mop/window.cc.o.d"
  "/root/repo/src/plan/compile.cc" "CMakeFiles/rumor.dir/src/plan/compile.cc.o" "gcc" "CMakeFiles/rumor.dir/src/plan/compile.cc.o.d"
  "/root/repo/src/plan/executor.cc" "CMakeFiles/rumor.dir/src/plan/executor.cc.o" "gcc" "CMakeFiles/rumor.dir/src/plan/executor.cc.o.d"
  "/root/repo/src/plan/explain.cc" "CMakeFiles/rumor.dir/src/plan/explain.cc.o" "gcc" "CMakeFiles/rumor.dir/src/plan/explain.cc.o.d"
  "/root/repo/src/plan/metrics.cc" "CMakeFiles/rumor.dir/src/plan/metrics.cc.o" "gcc" "CMakeFiles/rumor.dir/src/plan/metrics.cc.o.d"
  "/root/repo/src/plan/plan.cc" "CMakeFiles/rumor.dir/src/plan/plan.cc.o" "gcc" "CMakeFiles/rumor.dir/src/plan/plan.cc.o.d"
  "/root/repo/src/query/builder.cc" "CMakeFiles/rumor.dir/src/query/builder.cc.o" "gcc" "CMakeFiles/rumor.dir/src/query/builder.cc.o.d"
  "/root/repo/src/query/parser.cc" "CMakeFiles/rumor.dir/src/query/parser.cc.o" "gcc" "CMakeFiles/rumor.dir/src/query/parser.cc.o.d"
  "/root/repo/src/query/query.cc" "CMakeFiles/rumor.dir/src/query/query.cc.o" "gcc" "CMakeFiles/rumor.dir/src/query/query.cc.o.d"
  "/root/repo/src/rules/channel_mapper.cc" "CMakeFiles/rumor.dir/src/rules/channel_mapper.cc.o" "gcc" "CMakeFiles/rumor.dir/src/rules/channel_mapper.cc.o.d"
  "/root/repo/src/rules/rule.cc" "CMakeFiles/rumor.dir/src/rules/rule.cc.o" "gcc" "CMakeFiles/rumor.dir/src/rules/rule.cc.o.d"
  "/root/repo/src/rules/rule_engine.cc" "CMakeFiles/rumor.dir/src/rules/rule_engine.cc.o" "gcc" "CMakeFiles/rumor.dir/src/rules/rule_engine.cc.o.d"
  "/root/repo/src/rules/rules_agg.cc" "CMakeFiles/rumor.dir/src/rules/rules_agg.cc.o" "gcc" "CMakeFiles/rumor.dir/src/rules/rules_agg.cc.o.d"
  "/root/repo/src/rules/rules_join.cc" "CMakeFiles/rumor.dir/src/rules/rules_join.cc.o" "gcc" "CMakeFiles/rumor.dir/src/rules/rules_join.cc.o.d"
  "/root/repo/src/rules/rules_select.cc" "CMakeFiles/rumor.dir/src/rules/rules_select.cc.o" "gcc" "CMakeFiles/rumor.dir/src/rules/rules_select.cc.o.d"
  "/root/repo/src/rules/sharable.cc" "CMakeFiles/rumor.dir/src/rules/sharable.cc.o" "gcc" "CMakeFiles/rumor.dir/src/rules/sharable.cc.o.d"
  "/root/repo/src/stream/channel.cc" "CMakeFiles/rumor.dir/src/stream/channel.cc.o" "gcc" "CMakeFiles/rumor.dir/src/stream/channel.cc.o.d"
  "/root/repo/src/stream/stream.cc" "CMakeFiles/rumor.dir/src/stream/stream.cc.o" "gcc" "CMakeFiles/rumor.dir/src/stream/stream.cc.o.d"
  "/root/repo/src/workload/harness.cc" "CMakeFiles/rumor.dir/src/workload/harness.cc.o" "gcc" "CMakeFiles/rumor.dir/src/workload/harness.cc.o.d"
  "/root/repo/src/workload/perfmon.cc" "CMakeFiles/rumor.dir/src/workload/perfmon.cc.o" "gcc" "CMakeFiles/rumor.dir/src/workload/perfmon.cc.o.d"
  "/root/repo/src/workload/synthetic.cc" "CMakeFiles/rumor.dir/src/workload/synthetic.cc.o" "gcc" "CMakeFiles/rumor.dir/src/workload/synthetic.cc.o.d"
  "/root/repo/src/workload/workloads.cc" "CMakeFiles/rumor.dir/src/workload/workloads.cc.o" "gcc" "CMakeFiles/rumor.dir/src/workload/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
