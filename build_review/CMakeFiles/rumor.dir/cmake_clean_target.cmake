file(REMOVE_RECURSE
  "librumor.a"
)
