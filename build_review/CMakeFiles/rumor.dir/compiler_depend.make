# Empty compiler generated dependencies file for rumor.
# This may be replaced when dependencies are built.
