# Empty dependencies file for rumor.
# This may be replaced when dependencies are built.
