file(REMOVE_RECURSE
  "CMakeFiles/selection_mop_test.dir/tests/selection_mop_test.cc.o"
  "CMakeFiles/selection_mop_test.dir/tests/selection_mop_test.cc.o.d"
  "selection_mop_test"
  "selection_mop_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selection_mop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
