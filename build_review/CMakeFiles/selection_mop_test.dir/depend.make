# Empty dependencies file for selection_mop_test.
# This may be replaced when dependencies are built.
