file(REMOVE_RECURSE
  "CMakeFiles/sequence_mop_test.dir/tests/sequence_mop_test.cc.o"
  "CMakeFiles/sequence_mop_test.dir/tests/sequence_mop_test.cc.o.d"
  "sequence_mop_test"
  "sequence_mop_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequence_mop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
