file(REMOVE_RECURSE
  "CMakeFiles/stream_channel_test.dir/tests/stream_channel_test.cc.o"
  "CMakeFiles/stream_channel_test.dir/tests/stream_channel_test.cc.o.d"
  "stream_channel_test"
  "stream_channel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
