# Empty compiler generated dependencies file for stream_channel_test.
# This may be replaced when dependencies are built.
