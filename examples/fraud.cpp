// Event-pattern detection with RQL: card-fraud style sequence queries over
// two streams — a small, card-present purchase followed within minutes by a
// large, card-absent one (classic testing-then-cashing pattern). Shows the
// text pipeline (parse -> compile -> optimize -> run) end to end, including
// a script where a later query references an earlier one.
//
//   $ ./build/examples/fraud
#include <cstdio>

#include "common/rng.h"
#include "plan/compile.h"
#include "plan/executor.h"
#include "query/parser.h"
#include "rules/rule_engine.h"

using namespace rumor;

int main() {
  Schema tx({{"card", ValueType::kInt},
             {"amount", ValueType::kInt},
             {"present", ValueType::kInt}});  // 1 = card present

  Catalog catalog;
  catalog.AddSource("POS", tx);      // point-of-sale purchases
  catalog.AddSource("ONLINE", tx);   // card-absent purchases

  auto queries = ParseScript(
      // Small in-store test purchase.
      "PROBES: SELECT * FROM POS WHERE amount < 5 AND present = 1;\n"
      // Followed within 600 s by a big online purchase on the same card.
      "FRAUD: SELECT * FROM PROBES AS P SEQ ONLINE AS O "
      "ON P.card = O.card AND O.amount > 500 WITHIN 600;",
      catalog);
  RUMOR_CHECK(queries.ok()) << queries.status().ToString();

  Plan plan;
  auto compiled = CompileQueries(queries.value(), &plan);
  RUMOR_CHECK(compiled.ok()) << compiled.status().ToString();
  Optimize(&plan);

  CollectingSink sink;
  Executor exec(&plan, &sink);
  exec.Prepare();
  StreamId pos = *plan.streams().FindSource("POS");
  StreamId online = *plan.streams().FindSource("ONLINE");

  // A hand-written scenario plus background noise.
  Rng rng(11);
  Timestamp ts = 0;
  auto noise = [&](int count) {
    for (int i = 0; i < count; ++i) {
      exec.PushSource(rng.Bernoulli(0.7) ? pos : online,
                      Tuple::MakeInts({rng.UniformInt(0, 99),
                                       rng.UniformInt(10, 400),
                                       rng.Bernoulli(0.6) ? 1 : 0},
                                      ts++));
    }
  };
  noise(100);
  exec.PushSource(pos, Tuple::MakeInts({42, 2, 1}, ts++));      // probe
  noise(20);
  exec.PushSource(online, Tuple::MakeInts({42, 900, 0}, ts++));  // cash-out
  noise(100);

  StreamId fraud_out = *plan.OutputStreamOf("FRAUD");
  const auto& alerts = sink.ForStream(fraud_out);
  std::printf("fraud alerts: %d\n", static_cast<int>(alerts.size()));
  for (const Tuple& t : alerts) {
    std::printf("  card %lld: probe %lld then %lld within window (ts %lld)\n",
                static_cast<long long>(t.at(0).AsInt()),
                static_cast<long long>(t.at(1).AsInt()),
                static_cast<long long>(t.at(4).AsInt()),
                static_cast<long long>(t.ts()));
  }
  return alerts.empty() ? 1 : 0;
}
