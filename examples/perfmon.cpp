// The paper's §4.1 motivating scenario: system performance monitoring with
// hybrid queries. A fleet of processes reports CPU load once per second;
// each registered query smooths the load (relational sliding-window
// aggregate), then hunts for monotonically increasing load ramps (event
// pattern µ) that reach a high watermark — "processes ramping up in CPU
// consumption" (paper Query 1 / Query 2).
//
//   $ ./build/examples/perfmon
#include <cstdio>
#include <map>

#include "plan/compile.h"
#include "plan/executor.h"
#include "rules/rule_engine.h"
#include "workload/perfmon.h"

using namespace rumor;

int main() {
  // A D2-like synthetic trace: 28 processes, 5 minutes at 1 Hz.
  PerfmonParams trace_params;
  trace_params.num_processes = 28;
  trace_params.duration_seconds = 300;
  trace_params.ramp_start_probability = 0.01;
  std::vector<Tuple> trace = GeneratePerfmonTrace(trace_params);
  std::printf("trace: %d processes x %lld s = %d tuples\n",
              trace_params.num_processes,
              static_cast<long long>(trace_params.duration_seconds),
              static_cast<int>(trace.size()));

  // Ten instances of the paper's Query 2: same smoothing + pattern, each
  // with its own starting condition.
  std::vector<Query> queries;
  for (int i = 0; i < 10; ++i) {
    queries.push_back(MakeHybridQuery(i, /*sel=*/0.5, /*smooth_window=*/30));
  }

  Plan plan;
  auto compiled = CompileQueries(queries, &plan);
  RUMOR_CHECK(compiled.ok()) << compiled.status().ToString();
  int before = static_cast<int>(plan.LiveMops().size());
  OptimizeStats stats = Optimize(&plan);
  std::printf("plan: %d m-ops -> %d m-ops after MQO (%s)\n", before,
              static_cast<int>(plan.LiveMops().size()),
              stats.ToString().c_str());

  CollectingSink sink;
  Executor exec(&plan, &sink);
  exec.Prepare();
  StreamId cpu = *plan.streams().FindSource("CPU");
  for (const Tuple& t : trace) exec.PushSource(cpu, t);

  // Report detected ramps: output schema is (l.pid, l.avg_load, last.pid,
  // last.avg_load); last.avg_load is the level the ramp reached.
  std::map<int64_t, int64_t> ramps_per_pid;
  int64_t total = 0;
  for (const Query& q : queries) {
    StreamId out = *plan.OutputStreamOf(q.name);
    for (const Tuple& t : sink.ForStream(out)) {
      ++ramps_per_pid[t.at(0).AsInt()];
      ++total;
    }
  }
  std::printf("\n%lld ramp extensions detected across %d queries\n",
              static_cast<long long>(total),
              static_cast<int>(queries.size()));
  std::printf("top ramping processes:\n");
  int shown = 0;
  for (const auto& [pid, count] : ramps_per_pid) {
    if (++shown > 8) break;
    std::printf("  pid %3lld : %lld pattern matches\n",
                static_cast<long long>(pid),
                static_cast<long long>(count));
  }
  return 0;
}
