// Publish/subscribe filtering at scale — the predicate-indexing use case
// (paper §2.4, [Fabret 01]): thousands of subscriptions over one feed,
// merged by rule sσ into a single predicate-index m-op. The example prints
// the plan sizes and measures the throughput difference.
//
//   $ ./build/examples/pubsub
#include <cstdio>

#include "plan/compile.h"
#include "plan/executor.h"
#include "plan/metrics.h"
#include "common/rng.h"
#include "query/builder.h"
#include "rules/rule_engine.h"

using namespace rumor;

namespace {

double Run(const std::vector<Query>& subscriptions, bool optimize,
           int events) {
  Plan plan;
  auto compiled = CompileQueries(subscriptions, &plan);
  RUMOR_CHECK(compiled.ok());
  if (optimize) Optimize(&plan);
  CountingSink sink;
  Executor exec(&plan, &sink);
  exec.Prepare();
  StreamId feed = *plan.streams().FindSource("NEWS");
  Rng rng(7);
  Stopwatch timer;
  for (int ts = 0; ts < events; ++ts) {
    exec.PushSource(feed, Tuple::MakeInts({rng.UniformInt(0, 999),
                                           rng.UniformInt(0, 99),
                                           rng.UniformInt(0, 9)},
                                          ts));
  }
  double seconds = timer.ElapsedSeconds();
  // Count per *query* (duplicate subscriptions share an output stream after
  // CSE, so a plain stream-level total would undercount).
  int64_t matches = 0;
  for (const Plan::OutputDef& def : plan.outputs()) {
    matches += sink.ForStream(def.stream);
  }
  std::printf("  %-12s: %8.0f events/s, %lld matches, %d m-ops\n",
              optimize ? "optimized" : "naive", events / seconds,
              static_cast<long long>(matches),
              static_cast<int>(plan.LiveMops().size()));
  return events / seconds;
}

}  // namespace

int main() {
  Schema news({{"topic", ValueType::kInt},
               {"region", ValueType::kInt},
               {"priority", ValueType::kInt}});

  // 5000 subscriptions: exact topic match, some with extra conditions.
  std::vector<Query> subscriptions;
  Rng rng(3);
  auto src = QueryBuilder::FromSource("NEWS", news);
  for (int i = 0; i < 5000; ++i) {
    std::string pred = "topic = " + std::to_string(rng.UniformInt(0, 999));
    if (rng.Bernoulli(0.3)) {
      pred += " AND region = " + std::to_string(rng.UniformInt(0, 99));
    }
    if (rng.Bernoulli(0.2)) {
      pred += " AND priority >= " + std::to_string(rng.UniformInt(0, 9));
    }
    subscriptions.push_back(
        src.Select(pred).Build("sub" + std::to_string(i)));
  }

  std::printf("5000 subscriptions over one feed:\n");
  double naive = Run(subscriptions, false, 20000);
  double optimized = Run(subscriptions, true, 20000);
  std::printf("predicate indexing speed-up: %.1fx\n", optimized / naive);
  return 0;
}
