// Quickstart: express a few continuous queries (fluent builder and RQL
// text), compile them into one multi-query plan, let the rule-based
// optimizer share work, and push a stream through.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "plan/compile.h"
#include "plan/executor.h"
#include "common/rng.h"
#include "query/builder.h"
#include "query/parser.h"
#include "rules/rule_engine.h"

using namespace rumor;

int main() {
  Schema sensor({{"device", ValueType::kInt},
                 {"temperature", ValueType::kInt},
                 {"humidity", ValueType::kInt}});

  // --- express queries -------------------------------------------------------
  // 1) via the fluent builder:
  Query q1 = QueryBuilder::FromSource("SENSORS", sensor)
                 .Select("device = 7")
                 .Build("device7");
  Query q2 = QueryBuilder::FromSource("SENSORS", sensor)
                 .Select("device = 42")
                 .Build("device42");
  // 2) via RQL text:
  Catalog catalog;
  catalog.AddSource("SENSORS", sensor);
  auto q3 = ParseQuery(
      "SELECT device, AVG(temperature) FROM SENSORS [RANGE 10] "
      "GROUP BY device",
      catalog);
  RUMOR_CHECK(q3.ok()) << q3.status().ToString();
  Query avg_query = q3.value();
  avg_query.name = "avg_temp";

  // --- compile + optimize ----------------------------------------------------
  Plan plan;
  auto compiled = CompileQueries({q1, q2, avg_query}, &plan);
  RUMOR_CHECK(compiled.ok()) << compiled.status().ToString();
  std::printf("compiled plan: %d m-ops\n",
              static_cast<int>(plan.LiveMops().size()));

  OptimizeStats stats = Optimize(&plan);
  std::printf("after optimization: %d m-ops  (%s)\n",
              static_cast<int>(plan.LiveMops().size()),
              stats.ToString().c_str());
  std::printf("%s\n", plan.ToString().c_str());

  // --- execute ---------------------------------------------------------------
  CollectingSink sink;
  Executor exec(&plan, &sink);
  exec.Prepare();
  StreamId sensors = *plan.streams().FindSource("SENSORS");
  Rng rng(1);
  for (int ts = 0; ts < 50; ++ts) {
    exec.PushSource(sensors,
                    Tuple::MakeInts({rng.UniformInt(0, 49),
                                     rng.UniformInt(15, 35),
                                     rng.UniformInt(20, 90)},
                                    ts));
  }

  // Batched execution: a run of consecutive tuples of one source can be
  // pushed in a single call. Results are identical to per-tuple pushes, but
  // the batch traverses each m-op of the shared plan once, which pays off
  // under heavy traffic (see bench/bench_agg_batch.cc for the sweep).
  std::vector<Tuple> batch;
  for (int ts = 50; ts < 100; ++ts) {
    batch.push_back(Tuple::MakeInts({rng.UniformInt(0, 49),
                                     rng.UniformInt(15, 35),
                                     rng.UniformInt(20, 90)},
                                    ts));
  }
  exec.PushSourceBatch(sensors, batch);

  for (const char* name : {"device7", "device42", "avg_temp"}) {
    StreamId out = *plan.OutputStreamOf(name);
    std::printf("\n%s: %d results\n", name,
                static_cast<int>(sink.ForStream(out).size()));
    int shown = 0;
    for (const Tuple& t : sink.ForStream(out)) {
      if (++shown > 3) break;
      std::printf("  %s\n", t.ToString().c_str());
    }
  }
  return 0;
}
