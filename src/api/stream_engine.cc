#include "api/stream_engine.h"

#include <algorithm>
#include <unordered_map>

#include "common/json_writer.h"
#include "common/snapshot_io.h"
#include "common/str_util.h"
#include "plan/explain.h"
#include "plan/state_snapshot.h"
#include "rules/incremental.h"

namespace rumor {

namespace {
int64_t TickerNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

// Routes output-stream tuples to the per-query handler. One stream may
// serve several (CSE-merged) queries. StreamIds are small and contiguous,
// so routes live in a dense StreamId-indexed table.
class StreamEngine::HandlerSink : public OutputSink {
 public:
  void Bind(StreamId stream, std::string query_name) {
    if (stream >= static_cast<StreamId>(routes_.size())) {
      routes_.resize(stream + 1);
    }
    // The counter is resolved once here (counts_ nodes are stable), so the
    // per-output path never hashes the query name.
    int64_t* counter = &counts_[query_name];
    routes_[stream].push_back(Route{std::move(query_name), counter});
  }
  // Stops routing to `query_name` (RemoveQuery); delivered counts persist.
  void Unbind(const std::string& query_name) {
    for (std::vector<Route>& routes : routes_) {
      routes.erase(std::remove_if(routes.begin(), routes.end(),
                                  [&](const Route& r) {
                                    return r.name == query_name;
                                  }),
                   routes.end());
    }
  }
  void SetHandler(const OutputHandler* handler) { handler_ = handler; }
  // Engine-owned running total of routed results (read by the ticker).
  void SetTotalCounter(std::atomic<int64_t>* total) { total_ = total; }

  void OnOutput(StreamId stream, const Tuple& tuple) override {
    if (stream < 0 || stream >= static_cast<StreamId>(routes_.size())) return;
    for (const Route& route : routes_[stream]) {
      ++*route.count;
      RUMOR_METRIC(total_->fetch_add(1, std::memory_order_relaxed));
      if (handler_ != nullptr && *handler_) (*handler_)(route.name, tuple);
    }
  }

  int64_t CountFor(const std::string& name) const {
    auto it = counts_.find(name);
    return it == counts_.end() ? 0 : it->second;
  }

  // Restore: carry a query's delivered total across the checkpoint (counts_
  // nodes are stable, so existing Route::count pointers stay valid).
  void SeedCount(const std::string& name, int64_t delivered) {
    counts_[name] = delivered;
  }

 private:
  struct Route {
    std::string name;
    int64_t* count;  // into counts_ (node-stable)
  };
  std::vector<std::vector<Route>> routes_;  // by StreamId
  std::unordered_map<std::string, int64_t> counts_;
  const OutputHandler* handler_ = nullptr;
  std::atomic<int64_t>* total_ = nullptr;  // set before any OnOutput
};

StreamEngine::StreamEngine(OptimizerOptions options)
    : options_(options) {}

StreamEngine::~StreamEngine() { StopMetricsTicker(); }

Status StreamEngine::RegisterSource(const std::string& name, Schema schema,
                                    int sharable_label) {
  if (catalog_.Resolve(name) != nullptr) {
    return Status::AlreadyExists(StrCat("source '", name, "' exists"));
  }
  sources_.push_back({name, schema, sharable_label});
  catalog_.AddSource(name, std::move(schema), sharable_label);
  return Status::OK();
}

Status StreamEngine::SetShardCount(int n) {
  if (n < 1) return Status::InvalidArgument("shard count must be >= 1");
  if (started()) {
    return Status::Internal("SetShardCount must be called before Start()");
  }
  shard_count_ = n;
  return Status::OK();
}

int StreamEngine::FindQuery(const std::string& name) const {
  // Case-insensitive, matching Catalog resolution — otherwise two queries
  // differing only in case would collide in the catalog, and removing one
  // would strip the other's entry.
  auto it = query_index_.find(ToLower(name));
  return it == query_index_.end() ? -1 : it->second;
}

Status StreamEngine::AddQuery(Query query) {
  return AddQueryWithText(std::move(query), "");
}

Status StreamEngine::AddQueryWithText(Query query, std::string text) {
  if (query.root == nullptr) {
    return Status::InvalidArgument("query has no body");
  }
  if (FindQuery(query.name) >= 0) {
    return Status::AlreadyExists(
        StrCat("query '", query.name, "' already exists"));
  }
  if (started()) return AddQueryLive(std::move(query), std::move(text));
  catalog_.AddQuery(query);
  query_index_[ToLower(query.name)] = static_cast<int>(queries_.size());
  queries_.push_back(std::move(query));
  query_texts_.push_back(std::move(text));
  return Status::OK();
}

Status StreamEngine::AddQueryText(const std::string& rql,
                                  const std::string& name) {
  auto parsed = ParseQuery(rql, catalog_);
  if (!parsed.ok()) return parsed.status();
  Query query = std::move(parsed).value();
  if (!name.empty()) query.name = name;
  return AddQueryWithText(std::move(query), rql);
}

Status StreamEngine::AddScript(const std::string& rql) {
  std::vector<std::string> texts;
  auto parsed = ParseScript(rql, catalog_, &texts);
  if (!parsed.ok()) return parsed.status();
  for (size_t i = 0; i < parsed.value().size(); ++i) {
    RUMOR_RETURN_IF_ERROR(
        AddQueryWithText(std::move(parsed.value()[i]), std::move(texts[i])));
  }
  return Status::OK();
}

Status StreamEngine::AddQueryLive(Query query, std::string text) {
  if (sharded_ != nullptr) {
    if (sharded_->busy()) {
      return Status::Internal("cannot add queries from inside a push");
    }
    // Quiesce-merge-resume: the compile + incremental merge runs once per
    // shard ON that shard's worker thread (replicas stay identical because
    // the sequence is deterministic), so backfill tuples land on the arena
    // of the thread that owns them.
    std::vector<IncrementalMergeStats> merged(sharded_->num_shards());
    Status st = sharded_->MutateShards(
        [&](int shard, Plan& plan, Executor& exec) -> Status {
          Plan::Marker marker = plan.Mark();
          auto compiled = CompileQuery(query, &plan);
          if (!compiled.ok()) {
            plan.RollbackTo(marker);
            return compiled.status();
          }
          // Each shard probes its own replica's share index (replicas and
          // indexes stay identical because the merge is deterministic).
          ShareIndex* index = shard < static_cast<int>(shard_indexes_.size())
                                  ? shard_indexes_[shard].get()
                                  : nullptr;
          merged[shard] =
              index != nullptr
                  ? MergeNewQueryIndexed(&plan, index, marker.num_mops,
                                         options_)
                  : MergeNewQuery(&plan, options_);
          exec.Refresh();
          return Status::OK();
        });
    if (!st.ok()) return st;
    stats_.dynamic_adds += 1;
    stats_.incremental_cse_merges += merged[0].cse_merges;
    stats_.incremental_attach_merges += merged[0].attach_merges;
    stats_.incremental_rule_merges += merged[0].rule_merges;
    auto out = sharded_->plan(0).OutputStreamOf(query.name);
    RUMOR_CHECK(out.has_value());
    sink_->Bind(*out, query.name);
    RefreshSourceIds();
    catalog_.AddQuery(query);
    query_index_[ToLower(query.name)] = static_cast<int>(queries_.size());
    queries_.push_back(std::move(query));
    query_texts_.push_back(std::move(text));
    return Status::OK();
  }
  if (executor_->busy()) {
    return Status::Internal("cannot add queries from inside a push");
  }
  // Compile the new query standalone into the live plan; roll every
  // half-lowered m-op/channel/stream back if compilation fails midway.
  Plan::Marker marker = plan_.Mark();
  auto compiled = CompileQuery(query, &plan_);
  if (!compiled.ok()) {
    plan_.RollbackTo(marker);
    return compiled.status();
  }
  // Incrementally merge the new subplan onto warm shared operators: O(1)
  // share-index probes per fresh m-op in the default configuration, the
  // whole-plan scan oracle otherwise.
  IncrementalMergeStats merged =
      share_index_ != nullptr
          ? MergeNewQueryIndexed(&plan_, share_index_.get(), marker.num_mops,
                                 options_)
          : MergeNewQuery(&plan_, options_);
  stats_.dynamic_adds += 1;
  stats_.incremental_cse_merges += merged.cse_merges;
  stats_.incremental_attach_merges += merged.attach_merges;
  stats_.incremental_rule_merges += merged.rule_merges;
  // Sharing-quality fields of stats_ are NOT refreshed here: the refcount
  // walk is O(queries × plan) and this path is latency-critical (the
  // bench_dynamic_add bar). CollectMetrics() recomputes them on demand.

  auto out = plan_.OutputStreamOf(query.name);
  RUMOR_CHECK(out.has_value());
  sink_->Bind(*out, query.name);
  executor_->Refresh();  // validates the plan
  RefreshSourceIds();
  catalog_.AddQuery(query);
  query_index_[ToLower(query.name)] = static_cast<int>(queries_.size());
  queries_.push_back(std::move(query));
  query_texts_.push_back(std::move(text));
  return Status::OK();
}

Status StreamEngine::RemoveQuery(const std::string& name) {
  int index = FindQuery(name);
  if (index < 0) {
    return Status::NotFound(StrCat("no query named '", name, "'"));
  }
  // The lookup is case-insensitive; the plan and sink know the query by its
  // registered spelling.
  const std::string canonical = queries_[index].name;
  if (sharded_ != nullptr) {
    if (sharded_->busy()) {
      return Status::Internal("cannot remove queries from inside a push");
    }
    std::vector<PruneStats> pruned(sharded_->num_shards());
    Status st = sharded_->MutateShards(
        [&](int shard, Plan& plan, Executor& exec) -> Status {
          RUMOR_CHECK(plan.UnmarkOutput(canonical));
          pruned[shard] = PruneUnreachable(&plan);
          // Keep the share index current (O(delta)) so a long removal run
          // cannot outgrow the plan's event log between adds.
          if (shard < static_cast<int>(shard_indexes_.size()) &&
              shard_indexes_[shard] != nullptr) {
            shard_indexes_[shard]->Sync();
          }
          exec.Refresh();
          return Status::OK();
        });
    if (!st.ok()) return st;
    sink_->Unbind(canonical);
    stats_.dynamic_removes += 1;
    stats_.pruned_mops += pruned[0].removed_mops;
    stats_.pruned_members +=
        pruned[0].pruned_index_members + pruned[0].deactivated_members;
  } else if (started()) {
    if (executor_->busy()) {
      return Status::Internal("cannot remove queries from inside a push");
    }
    RUMOR_CHECK(plan_.UnmarkOutput(canonical));
    sink_->Unbind(canonical);
    // Reference-counted unsharing: tear down exactly what no surviving
    // query reaches.
    PruneStats pruned = PruneUnreachable(&plan_);
    // Keep the share index current (O(delta)) so a long removal run cannot
    // outgrow the plan's event log between adds.
    if (share_index_ != nullptr) share_index_->Sync();
    stats_.dynamic_removes += 1;
    stats_.pruned_mops += pruned.removed_mops;
    stats_.pruned_members +=
        pruned.pruned_index_members + pruned.deactivated_members;
    executor_->Refresh();  // validates the plan
  }
  queries_.erase(queries_.begin() + index);
  query_texts_.erase(query_texts_.begin() + index);
  catalog_.Remove(canonical);
  // Shift the name index in place (values only — no rehash of the
  // surviving names).
  query_index_.erase(ToLower(canonical));
  for (auto& [unused_name, i] : query_index_) {
    if (i > index) --i;
  }
  return Status::OK();
}

Status StreamEngine::Start() {
  if (started()) return Status::Internal("engine already started");
  if (queries_.empty()) return Status::InvalidArgument("no queries added");
  if (shard_count_ > 1) {
    sink_ = std::make_unique<HandlerSink>();
    sink_->SetHandler(&handler_);
    sink_->SetTotalCounter(&outputs_total_);
    ShardedExecutor::Options sharded_options;
    sharded_options.num_shards = shard_count_;
    sharded_options.metrics = metrics_options_;
    // Each worker compiles + optimizes its own replica from the shared
    // query list (read-only here; both passes are deterministic, so replica
    // ids line up across shards).
    PlanFactory factory = [this](Plan* plan, OptimizeStats* stats) -> Status {
      auto replica = CompileQueries(queries_, plan);
      if (!replica.ok()) return replica.status();
      *stats = Optimize(plan, options_);
      return Status::OK();
    };
    sharded_ = std::make_unique<ShardedExecutor>(
        sharded_options, std::move(factory),
        static_cast<OutputSink*>(sink_.get()));
    Status st = sharded_->Prepare();
    if (!st.ok()) {
      sharded_.reset();
      sink_.reset();
      return st;
    }
    stats_ = sharded_->optimize_stats();
    if (options_.use_share_index) {
      // One persistent share index per replica, built on the worker thread
      // that owns the plan; live adds probe it instead of scanning.
      shard_indexes_.resize(sharded_->num_shards());
      Status ist = sharded_->MutateShards(
          [this](int shard, Plan& plan, Executor&) -> Status {
            shard_indexes_[shard] = std::make_unique<ShareIndex>(&plan);
            return Status::OK();
          });
      RUMOR_CHECK(ist.ok());
    }
    for (const Plan::OutputDef& def : sharded_->plan(0).outputs()) {
      sink_->Bind(def.stream, def.query_name);
    }
    RefreshSourceIds();
    return Status::OK();
  }
  auto compiled = CompileQueries(queries_, &plan_);
  if (!compiled.ok()) return compiled.status();
  if (options_.use_share_index) {
    share_index_ = std::make_unique<ShareIndex>(&plan_);
  }
  stats_ = Optimize(&plan_, options_, share_index_.get());

  sink_ = std::make_unique<HandlerSink>();
  sink_->SetHandler(&handler_);
  sink_->SetTotalCounter(&outputs_total_);
  for (const Plan::OutputDef& def : plan_.outputs()) {
    sink_->Bind(def.stream, def.query_name);
  }
  executor_ = std::make_unique<Executor>(&plan_, sink_.get());
  executor_->SetMetricsOptions(metrics_options_);
  executor_->Prepare();
  RefreshSourceIds();
  return Status::OK();
}

const Plan& StreamEngine::ActivePlan() const {
  return sharded_ != nullptr ? sharded_->plan(0) : plan_;
}

void StreamEngine::RefreshSourceIds() {
  const Plan& plan = ActivePlan();
  // The table is keyed on the source set only, and sources are never
  // removed — skip the O(streams) rescan unless a new source appeared
  // (most live adds read already-known sources).
  if (static_cast<int>(source_ids_.size()) == plan.streams().num_sources()) {
    return;
  }
  source_ids_.clear();
  for (StreamId s : plan.streams().Sources()) {
    source_ids_.push_back({plan.streams().Get(s).name, s});
  }
}

Result<StreamId> StreamEngine::FindSourceId(const std::string& source) const {
  if (!started()) return Status::Internal("call Start() first");
  for (const auto& [name, id] : source_ids_) {
    if (name == source) return id;
  }
  return Status::NotFound(
      StrCat("source '", source, "' is not read by any query"));
}

Status StreamEngine::Push(const std::string& source, const Tuple& tuple) {
  auto id = FindSourceId(source);
  if (!id.ok()) return id.status();
  if (sharded_ != nullptr) {
    if (sharded_->busy()) {
      return Status::Internal(
          "re-entrant push from an output handler is unsupported when "
          "sharded");
    }
    sharded_->PushSource(id.value(), tuple);
  } else {
    executor_->PushSource(id.value(), tuple);
  }
  RUMOR_METRIC(push_calls_.fetch_add(1, std::memory_order_relaxed));
  RUMOR_METRIC(tuples_pushed_.fetch_add(1, std::memory_order_relaxed));
  return Status::OK();
}

Status StreamEngine::PushBatch(const std::string& source,
                               std::span<const Tuple> tuples) {
  auto id = FindSourceId(source);
  if (!id.ok()) return id.status();
  if (sharded_ != nullptr) {
    if (sharded_->busy()) {
      return Status::Internal(
          "re-entrant push from an output handler is unsupported when "
          "sharded");
    }
    sharded_->PushSourceBatch(id.value(), tuples);
  } else {
    executor_->PushSourceBatch(id.value(), tuples);
  }
  RUMOR_METRIC(push_calls_.fetch_add(1, std::memory_order_relaxed));
  RUMOR_METRIC(tuples_pushed_.fetch_add(
      static_cast<int64_t>(tuples.size()), std::memory_order_relaxed));
  return Status::OK();
}

void StreamEngine::Flush() {
  if (sharded_ != nullptr) sharded_->Flush();
}

// --- durability ---------------------------------------------------------------

Status StreamEngine::Checkpoint(std::string* out) const {
  if (!started()) {
    return Status::Internal("checkpoint requires a started engine");
  }
  if (executor_ != nullptr && executor_->busy()) {
    return Status::Internal("cannot checkpoint from inside a push");
  }
  if (sharded_ != nullptr && sharded_->busy()) {
    return Status::Internal("cannot checkpoint from inside a push");
  }
  for (size_t i = 0; i < queries_.size(); ++i) {
    if (query_texts_[i].empty()) {
      return Status::InvalidArgument(
          StrCat("query '", queries_[i].name,
                 "' was added as a logical object; checkpoint requires "
                 "queries added from RQL text (AddQueryText/AddScript)"));
    }
  }

  SnapshotBuilder builder;
  {
    SnapshotWriter w;
    w.U32(static_cast<uint32_t>(sharded_ != nullptr
                                    ? sharded_->num_shards()
                                    : 1));
    w.I64(push_calls_.load(std::memory_order_relaxed));
    w.I64(tuples_pushed_.load(std::memory_order_relaxed));
    w.I64(outputs_total_.load(std::memory_order_relaxed));
    builder.AddSection(SnapshotSection::kEngine, w.Take());
  }
  {
    SnapshotWriter w;
    w.U32(static_cast<uint32_t>(sources_.size()));
    for (const RegisteredSource& src : sources_) {
      w.Str(src.name);
      w.I64(src.sharable_label);
      w.U32(static_cast<uint32_t>(src.schema.size()));
      for (const Attribute& attr : src.schema.attributes()) {
        w.Str(attr.name);
        w.U8(static_cast<uint8_t>(attr.type));
      }
    }
    builder.AddSection(SnapshotSection::kSources, w.Take());
  }
  {
    SnapshotWriter w;
    w.U32(static_cast<uint32_t>(queries_.size()));
    for (size_t i = 0; i < queries_.size(); ++i) {
      w.Str(queries_[i].name);
      w.Str(query_texts_[i]);
      w.I64(OutputCount(queries_[i].name));
    }
    builder.AddSection(SnapshotSection::kQueries, w.Take());
  }
  if (sharded_ != nullptr) {
    // One state section per shard, serialized ON each worker thread via the
    // quiesce path — the same synchronization AddQuery/RemoveQuery use, so
    // checkpoints interleave safely with query churn and pushes.
    std::vector<std::string> payloads(sharded_->num_shards());
    Status st = sharded_->MutateShards(
        [&](int shard, Plan& plan, Executor&) -> Status {
          auto payload = SavePlanState(plan);
          if (!payload.ok()) return payload.status();
          payloads[shard] = std::move(payload).value();
          return Status::OK();
        });
    if (!st.ok()) return st;
    for (std::string& payload : payloads) {
      builder.AddSection(SnapshotSection::kState, std::move(payload));
    }
  } else {
    auto payload = SavePlanState(plan_);
    if (!payload.ok()) return payload.status();
    builder.AddSection(SnapshotSection::kState, std::move(payload).value());
  }
  *out = builder.Take();
  return Status::OK();
}

Status StreamEngine::CheckpointToFile(const std::string& path) const {
  std::string bytes;
  RUMOR_RETURN_IF_ERROR(Checkpoint(&bytes));
  return WriteFileBytes(path, bytes);
}

Status StreamEngine::Restore(std::string_view snapshot) {
  if (started()) {
    return Status::Internal("restore requires a not-yet-started engine");
  }
  if (!queries_.empty() || !sources_.empty()) {
    return Status::Internal("restore requires an empty engine");
  }

  // Stage 1: decode and validate the whole snapshot before touching any
  // engine state — a corrupt snapshot must leave the engine fully usable.
  std::vector<SnapshotSectionView> sections;
  RUMOR_RETURN_IF_ERROR(ParseSnapshot(snapshot, &sections));
  const SnapshotSectionView* engine_section = nullptr;
  const SnapshotSectionView* sources_section = nullptr;
  const SnapshotSectionView* queries_section = nullptr;
  std::vector<std::string_view> state_sections;
  for (const SnapshotSectionView& s : sections) {
    switch (s.id) {
      case SnapshotSection::kEngine: engine_section = &s; break;
      case SnapshotSection::kSources: sources_section = &s; break;
      case SnapshotSection::kQueries: queries_section = &s; break;
      case SnapshotSection::kState: state_sections.push_back(s.payload);
        break;
    }
  }
  if (engine_section == nullptr || sources_section == nullptr ||
      queries_section == nullptr || state_sections.empty()) {
    return Status::InvalidArgument("snapshot is missing required sections");
  }

  uint32_t saved_shards = 0;
  int64_t saved_push_calls = 0, saved_tuples = 0, saved_outputs = 0;
  {
    SnapshotReader r(engine_section->payload);
    RUMOR_RETURN_IF_ERROR(r.U32(&saved_shards));
    RUMOR_RETURN_IF_ERROR(r.I64(&saved_push_calls));
    RUMOR_RETURN_IF_ERROR(r.I64(&saved_tuples));
    RUMOR_RETURN_IF_ERROR(r.I64(&saved_outputs));
  }
  if (saved_shards != state_sections.size()) {
    return Status::InvalidArgument(
        StrCat("snapshot declares ", saved_shards, " shards but carries ",
               state_sections.size(), " state sections"));
  }

  std::vector<RegisteredSource> sources;
  {
    SnapshotReader r(sources_section->payload);
    uint32_t n = 0;
    RUMOR_RETURN_IF_ERROR(r.U32(&n));
    for (uint32_t i = 0; i < n; ++i) {
      RegisteredSource src;
      RUMOR_RETURN_IF_ERROR(r.Str(&src.name));
      int64_t label = 0;
      RUMOR_RETURN_IF_ERROR(r.I64(&label));
      src.sharable_label = static_cast<int>(label);
      uint32_t attrs = 0;
      RUMOR_RETURN_IF_ERROR(r.U32(&attrs));
      std::vector<Attribute> attributes;
      for (uint32_t a = 0; a < attrs; ++a) {
        Attribute attr;
        RUMOR_RETURN_IF_ERROR(r.Str(&attr.name));
        uint8_t type = 0;
        RUMOR_RETURN_IF_ERROR(r.U8(&type));
        if (type > static_cast<uint8_t>(ValueType::kBool)) {
          return Status::InvalidArgument("unknown attribute type");
        }
        attr.type = static_cast<ValueType>(type);
        attributes.push_back(std::move(attr));
      }
      src.schema = Schema(std::move(attributes));
      sources.push_back(std::move(src));
    }
  }

  struct SavedQuery {
    std::string name;
    std::string text;
    int64_t delivered = 0;
  };
  std::vector<SavedQuery> saved_queries;
  {
    SnapshotReader r(queries_section->payload);
    uint32_t n = 0;
    RUMOR_RETURN_IF_ERROR(r.U32(&n));
    for (uint32_t i = 0; i < n; ++i) {
      SavedQuery q;
      RUMOR_RETURN_IF_ERROR(r.Str(&q.name));
      RUMOR_RETURN_IF_ERROR(r.Str(&q.text));
      RUMOR_RETURN_IF_ERROR(r.I64(&q.delivered));
      saved_queries.push_back(std::move(q));
    }
  }
  if (saved_queries.empty()) {
    return Status::InvalidArgument("snapshot contains no queries");
  }

  std::vector<std::vector<MopState>> shard_states(state_sections.size());
  for (size_t s = 0; s < state_sections.size(); ++s) {
    RUMOR_RETURN_IF_ERROR(
        ParsePlanState(state_sections[s], &shard_states[s]));
  }
  auto merged_or = MergeShardStates(std::move(shard_states));
  if (!merged_or.ok()) return merged_or.status();
  const std::vector<MopState> merged = std::move(merged_or).value();

  // Stage 2: rebuild the engine — sources, queries (replaying the
  // incremental merge onto this engine's shard count), then the plan(s).
  for (RegisteredSource& src : sources) {
    RUMOR_RETURN_IF_ERROR(
        RegisterSource(src.name, std::move(src.schema), src.sharable_label));
  }
  for (const SavedQuery& q : saved_queries) {
    RUMOR_RETURN_IF_ERROR(AddQueryText(q.text, q.name));
  }
  RUMOR_RETURN_IF_ERROR(Start());

  // Stage 3: load the merged state image into the fresh plan(s). Every
  // shard replica receives the full image ("lazy shedding"): partitioned
  // routing only ever feeds a shard the keys it owns, so foreign-key state
  // sits inert and ages out of the windows.
  if (sharded_ != nullptr) {
    RUMOR_RETURN_IF_ERROR(sharded_->MutateShards(
        [&](int, Plan& plan, Executor&) -> Status {
          return LoadPlanState(plan, merged);
        }));
  } else {
    RUMOR_RETURN_IF_ERROR(LoadPlanState(plan_, merged));
  }

  // Stage 4: carry the observable counters across the crash.
  push_calls_.store(saved_push_calls, std::memory_order_relaxed);
  tuples_pushed_.store(saved_tuples, std::memory_order_relaxed);
  outputs_total_.store(saved_outputs, std::memory_order_relaxed);
  for (const SavedQuery& q : saved_queries) {
    sink_->SeedCount(q.name, q.delivered);
  }
  return Status::OK();
}

Status StreamEngine::RestoreFromFile(const std::string& path) {
  std::string bytes;
  RUMOR_RETURN_IF_ERROR(ReadFileBytes(path, &bytes));
  return Restore(bytes);
}

int64_t StreamEngine::OutputCount(const std::string& query_name) const {
  return sink_ == nullptr ? 0 : sink_->CountFor(query_name);
}

std::string StreamEngine::Explain() const {
  if (sharded_ == nullptr) return ExplainPlan(plan_);
  sharded_->Flush();
  return ExplainPlan(sharded_->plan(0)) +
         sharded_->sharding().ToString(sharded_->plan(0));
}

std::string StreamEngine::ExplainAnalyze() const {
  // Sharded: replicas carry identical structure; shard 0's counters stand in
  // (CollectMetrics aggregates across all shards).
  if (sharded_ != nullptr) sharded_->Flush();
  std::string out = rumor::ExplainAnalyze(ActivePlan());
  const LatencyHistogram* latency =
      sharded_ != nullptr
          ? &sharded_->merge_latency()
          : (executor_ != nullptr ? &executor_->output_latency() : nullptr);
  if (latency != nullptr && latency->count() > 0) {
    out += StrCat("latency (ingress->sink, sampled): ", latency->Summary(),
                  "\n");
  }
  const ShareIndex* index =
      sharded_ != nullptr
          ? (shard_indexes_.empty() ? nullptr : shard_indexes_[0].get())
          : share_index_.get();
  if (index != nullptr) {
    const ShareIndex::Stats s = index->GetStats();
    out += StrCat("share index: exact=", s.exact_entries,
                  " member=", s.member_entries,
                  " index_targets=", s.index_target_entries,
                  " sel_singles=", s.sel_single_entries,
                  " agg_targets=", s.agg_target_entries, " bytes≈",
                  s.approx_bytes, "\n");
  }
  return out;
}

namespace {
void FillShareIndexStats(const ShareIndex* index, EngineMetrics* em) {
  if (index == nullptr) return;
  const ShareIndex::Stats s = index->GetStats();
  em->share_index.present = true;
  em->share_index.exact_entries = s.exact_entries;
  em->share_index.member_entries = s.member_entries;
  em->share_index.index_target_entries = s.index_target_entries;
  em->share_index.sel_single_entries = s.sel_single_entries;
  em->share_index.agg_target_entries = s.agg_target_entries;
  em->share_index.posting_entries = s.posting_entries;
  em->share_index.approx_bytes = s.approx_bytes;
}
}  // namespace

EngineMetrics StreamEngine::CollectMetrics() const {
  if (sharded_ != nullptr) {
    sharded_->Flush();
    EngineMetrics em = CollectEngineMetrics(sharded_->plan(0), stats_, 0);
    em.shards = sharded_->num_shards();
    em.shard_rows = sharded_->ShardRows();
    // End-to-end latency: push call to ordered-merge delivery, recorded on
    // the control thread.
    em.latency = sharded_->merge_latency();
    // Shard 0's share index stands in (replicas stay identical); workers are
    // quiesced by the Flush above.
    FillShareIndexStats(
        shard_indexes_.empty() ? nullptr : shard_indexes_[0].get(), &em);
    // Per-m-op rows: sum every replica's counters by m-op id. Data-plane
    // counters: sum each worker's published snapshot plus this (control)
    // thread's own, which pays for the ordered-merge decode.
    DataPlaneCounters totals = DataPlaneCounters::Capture();
    int64_t deliveries = 0;
    for (const EngineMetrics::ShardRow& row : em.shard_rows) {
      if (row.shard > 0) AccumulateShardPlan(&em, sharded_->plan(row.shard));
      totals += row.counters;
      deliveries += row.deliveries;
    }
    em.deliveries = deliveries;
    SetDataPlaneCounters(&em, totals);
    em.queries = num_queries();
    for (const Query& q : queries_) {
      em.query_rows.push_back({q.name, OutputCount(q.name)});
    }
    return em;
  }
  EngineMetrics em = CollectEngineMetrics(
      plan_, stats_, executor_ != nullptr ? executor_->deliveries() : 0);
  if (executor_ != nullptr) em.latency = executor_->output_latency();
  FillShareIndexStats(share_index_.get(), &em);
  // Only the engine knows live query names and delivered counts; a raw-plan
  // caller gets empty query_rows.
  em.queries = num_queries();
  for (const Query& q : queries_) {
    em.query_rows.push_back({q.name, OutputCount(q.name)});
  }
  return em;
}

void StreamEngine::SetMetricsOptions(const MetricsOptions& options) {
  metrics_options_ = options;
  if (executor_ != nullptr) executor_->SetMetricsOptions(options);
}

void StreamEngine::StartMetricsTicker(std::chrono::milliseconds interval,
                                      size_t history_capacity) {
  StopMetricsTicker();
  {
    std::lock_guard<std::mutex> lock(history_mu_);
    history_cap_ = history_capacity == 0 ? 1 : history_capacity;
  }
  {
    // Under the mutex: the new thread reads ticker_stop_ under ticker_mu_,
    // and an unsynchronized reset here raced a concurrent StopMetricsTicker
    // (the stop flag could be overwritten after the stopper set it, leaving
    // the previous ticker unjoined and spinning at engine destruction).
    std::lock_guard<std::mutex> lock(ticker_mu_);
    ticker_stop_ = false;
  }
  ticker_ = std::thread([this, interval] {
    std::unique_lock<std::mutex> lock(ticker_mu_);
    for (;;) {
      if (ticker_cv_.wait_for(lock, interval,
                              [this] { return ticker_stop_; })) {
        return;
      }
      MetricsTick tick;
      tick.t_ns = TickerNowNs();
      tick.push_calls = push_calls_.load(std::memory_order_relaxed);
      tick.tuples_pushed = tuples_pushed_.load(std::memory_order_relaxed);
      tick.outputs = outputs_total_.load(std::memory_order_relaxed);
      std::lock_guard<std::mutex> hist(history_mu_);
      history_.push_back(tick);
      while (history_.size() > history_cap_) history_.pop_front();
    }
  });
}

void StreamEngine::StopMetricsTicker() {
  {
    std::lock_guard<std::mutex> lock(ticker_mu_);
    ticker_stop_ = true;
  }
  ticker_cv_.notify_all();
  if (ticker_.joinable()) ticker_.join();
}

std::vector<StreamEngine::MetricsTick> StreamEngine::MetricsHistory() const {
  std::lock_guard<std::mutex> lock(history_mu_);
  return {history_.begin(), history_.end()};
}

std::string StreamEngine::MetricsHistoryJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("ticks").BeginArray();
  for (const MetricsTick& t : MetricsHistory()) {
    w.BeginObject()
        .KV("t_ns", t.t_ns)
        .KV("push_calls", t.push_calls)
        .KV("tuples_pushed", t.tuples_pushed)
        .KV("outputs", t.outputs)
        .EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

}  // namespace rumor
