#include "api/stream_engine.h"

#include <unordered_map>

#include "common/str_util.h"
#include "plan/explain.h"

namespace rumor {

// Routes output-stream tuples to the per-query handler. One stream may
// serve several (CSE-merged) queries.
class StreamEngine::HandlerSink : public OutputSink {
 public:
  void Bind(StreamId stream, std::string query_name) {
    routes_[stream].push_back(std::move(query_name));
  }
  void SetHandler(const OutputHandler* handler) { handler_ = handler; }

  void OnOutput(StreamId stream, const Tuple& tuple) override {
    auto it = routes_.find(stream);
    if (it == routes_.end()) return;
    for (const std::string& name : it->second) {
      ++counts_[name];
      if (handler_ != nullptr && *handler_) (*handler_)(name, tuple);
    }
  }

  int64_t CountFor(const std::string& name) const {
    auto it = counts_.find(name);
    return it == counts_.end() ? 0 : it->second;
  }

 private:
  std::unordered_map<StreamId, std::vector<std::string>> routes_;
  std::unordered_map<std::string, int64_t> counts_;
  const OutputHandler* handler_ = nullptr;
};

StreamEngine::StreamEngine(OptimizerOptions options)
    : options_(options) {}

StreamEngine::~StreamEngine() = default;

Status StreamEngine::RegisterSource(const std::string& name, Schema schema,
                                    int sharable_label) {
  if (started()) return Status::Internal("engine already started");
  if (catalog_.Resolve(name) != nullptr) {
    return Status::AlreadyExists(StrCat("source '", name, "' exists"));
  }
  catalog_.AddSource(name, std::move(schema), sharable_label);
  return Status::OK();
}

Status StreamEngine::AddQuery(Query query) {
  if (started()) return Status::Internal("engine already started");
  if (query.root == nullptr) {
    return Status::InvalidArgument("query has no body");
  }
  catalog_.AddQuery(query);
  queries_.push_back(std::move(query));
  return Status::OK();
}

Status StreamEngine::AddQueryText(const std::string& rql,
                                  const std::string& name) {
  auto parsed = ParseQuery(rql, catalog_);
  if (!parsed.ok()) return parsed.status();
  Query query = std::move(parsed).value();
  if (!name.empty()) query.name = name;
  return AddQuery(std::move(query));
}

Status StreamEngine::AddScript(const std::string& rql) {
  auto parsed = ParseScript(rql, catalog_);
  if (!parsed.ok()) return parsed.status();
  for (Query& q : parsed.value()) {
    RUMOR_RETURN_IF_ERROR(AddQuery(std::move(q)));
  }
  return Status::OK();
}

Status StreamEngine::Start() {
  if (started()) return Status::Internal("engine already started");
  if (queries_.empty()) return Status::InvalidArgument("no queries added");
  auto compiled = CompileQueries(queries_, &plan_);
  if (!compiled.ok()) return compiled.status();
  stats_ = Optimize(&plan_, options_);

  sink_ = std::make_unique<HandlerSink>();
  sink_->SetHandler(&handler_);
  for (const Plan::OutputDef& def : plan_.outputs()) {
    sink_->Bind(def.stream, def.query_name);
  }
  executor_ = std::make_unique<Executor>(&plan_, sink_.get());
  executor_->Prepare();
  for (StreamId s : plan_.streams().Sources()) {
    source_ids_.push_back({plan_.streams().Get(s).name, s});
  }
  return Status::OK();
}

Result<StreamId> StreamEngine::FindSourceId(const std::string& source) const {
  if (!started()) return Status::Internal("call Start() first");
  for (const auto& [name, id] : source_ids_) {
    if (name == source) return id;
  }
  return Status::NotFound(
      StrCat("source '", source, "' is not read by any query"));
}

Status StreamEngine::Push(const std::string& source, const Tuple& tuple) {
  auto id = FindSourceId(source);
  if (!id.ok()) return id.status();
  executor_->PushSource(id.value(), tuple);
  return Status::OK();
}

Status StreamEngine::PushBatch(const std::string& source,
                               std::span<const Tuple> tuples) {
  auto id = FindSourceId(source);
  if (!id.ok()) return id.status();
  executor_->PushSourceBatch(id.value(), tuples);
  return Status::OK();
}

int64_t StreamEngine::OutputCount(const std::string& query_name) const {
  return sink_ == nullptr ? 0 : sink_->CountFor(query_name);
}

std::string StreamEngine::Explain() const {
  return ExplainPlan(plan_);
}

}  // namespace rumor
