// StreamEngine — the one-stop public API of the library: register sources,
// add continuous queries (logical objects or RQL text), Start() to compile
// and rule-optimize the combined plan, then push tuples and receive per-
// query results through a callback.
//
//   StreamEngine engine;
//   engine.RegisterSource("CPU", Schema({{"pid", kInt}, {"load", kInt}}));
//   engine.AddScript(
//       "SMOOTHED: SELECT pid, AVG(load) FROM CPU [RANGE 60] GROUP BY pid;"
//       "HOT: SELECT * FROM SMOOTHED WHERE avg_load > 90;");
//   engine.SetOutputHandler([](const std::string& q, const Tuple& t) { ... });
//   engine.Start();
//   engine.Push("CPU", Tuple::MakeInts({1, 95}, 0));
//
// The query set is *dynamic*: AddQuery/AddQueryText/AddScript stay legal
// after Start() — the new query is compiled standalone and incrementally
// merged into the running shared plan (rules/incremental.h), snapping onto
// warm shared operators (predicate indexes, shared aggregation windows,
// CSE'd subtrees) without disturbing their state. RemoveQuery() tears down
// exactly the operators no surviving query reaches (reference-counted
// unsharing). A dynamically added query starts observing tuples from the
// moment it is added; where it shares a warm operator it additionally
// inherits that operator's in-window history (e.g. a backfilled shared
// aggregate), exactly as if it had been running all along.
#ifndef RUMOR_API_STREAM_ENGINE_H_
#define RUMOR_API_STREAM_ENGINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "plan/compile.h"
#include "plan/engine_metrics.h"
#include "plan/executor.h"
#include "plan/sharded_executor.h"
#include "query/parser.h"
#include "rules/rule_engine.h"
#include "rules/share_index.h"

namespace rumor {

class StreamEngine {
 public:
  explicit StreamEngine(OptimizerOptions options = OptimizerOptions());
  ~StreamEngine();  // defined in the .cc (HandlerSink is incomplete here)

  // Engine lifecycle: configuring (before Start) or running (after).
  enum class State { kConfiguring, kRunning };
  State state() const {
    return started() ? State::kRunning : State::kConfiguring;
  }

  // Partition-parallel execution: run the shared plan on `n` worker threads
  // (plan/sharded_executor.h). n == 1 (the default) keeps the original
  // single-threaded executor — byte-identical behavior, zero new overhead.
  // With n > 1, Start() spawns one plan replica + worker per shard and
  // Push/PushBatch route tuples by the AnalyzeSharding table; the output
  // handler still runs on the pushing thread, with outputs merged in
  // epoch-major, shard-minor order (per-key order on partitioned routes is
  // exactly the single-threaded order). Must be called before Start().
  Status SetShardCount(int n);
  int shard_count() const { return shard_count_; }

  // --- setup ------------------------------------------------------------------
  // Registers an input stream; `sharable_label` marks base-case-2 sharable
  // sources (same non-negative label). Legal in both states (a query added
  // later may read a newly registered source).
  Status RegisterSource(const std::string& name, Schema schema,
                        int sharable_label = -1);
  // Adds a logical query (from QueryBuilder / the translator / ...). Query
  // names must be unique among live queries. After Start() the query is
  // merged into the running plan (see file comment); it is illegal to call
  // this from inside an output handler.
  Status AddQuery(Query query);
  // Parses and adds one RQL query; `name` overrides the statement name.
  Status AddQueryText(const std::string& rql, const std::string& name = "");
  // Parses a ';'-separated RQL script; later statements may reference
  // earlier ones by name. After Start() the statements are added one by
  // one; on a mid-script error the earlier statements stay added.
  Status AddScript(const std::string& rql);
  // Removes a query by name (either state). Running-plan removal unshares
  // reference-counted operators: m-ops still reached by surviving queries
  // stay warm and untouched, everything else is torn down and its channels
  // garbage-collected. Illegal from inside an output handler.
  Status RemoveQuery(const std::string& name);

  // Called for every query result: (query name, output tuple).
  using OutputHandler = std::function<void(const std::string&, const Tuple&)>;
  void SetOutputHandler(OutputHandler handler) {
    handler_ = std::move(handler);
  }

  // Compiles all queries into one plan, runs the m-rule optimizer, and
  // prepares execution. Queries may still be added/removed afterwards.
  Status Start();

  // --- runtime (after Start) -------------------------------------------------
  // Pushes one tuple into a source stream (timestamps non-decreasing).
  Status Push(const std::string& source, const Tuple& tuple);

  // Pushes a run of consecutive tuples of one source in a single call.
  // Every query receives the same results in the same order as per-tuple
  // Push calls — only the interleaving of the output handler *across
  // different queries* may differ within a batch — and the batch traverses
  // each operator of the shared plan once, amortizing dispatch overhead
  // (the executor falls back to per-tuple dispatch on plan shapes where
  // batching could reorder stateful work).
  Status PushBatch(const std::string& source, std::span<const Tuple> tuples);

  // Blocks until every pushed tuple is fully processed and every output
  // delivered to the handler. No-op in single-threaded mode, where Push
  // already returns only after full propagation.
  void Flush();

  // --- durability (checkpoint/restore) ---------------------------------------
  // Serializes the running engine into the versioned snapshot format
  // (common/snapshot_io.h): registered sources, the live query set (as RQL
  // text, in add order), engine counters, and the operator state of every
  // stateful m-op — window logs, aggregation accumulators, join buffers,
  // partial-match stores. Sharded engines quiesce and save one state
  // section per shard. Requires Start(); every live query must have been
  // added from RQL text (AddQueryText/AddScript — restore re-parses it), and
  // the call must not come from inside an output handler.
  Status Checkpoint(std::string* out) const;
  Status CheckpointToFile(const std::string& path) const;
  // Rebuilds this (fresh: not started, no queries added) engine from a
  // snapshot: re-registers the saved sources, re-adds the saved queries —
  // replaying the incremental merge, so the restored shared plan may be
  // shaped differently — starts the engine, and loads the saved operator
  // state into the matching members (matched by structural fingerprint,
  // plan/fingerprint.h). The snapshot is fully validated before any engine
  // state is touched. The restored engine may run any shard count (call
  // SetShardCount first): a sharded checkpoint is merged into one logical
  // image and re-partitioned onto the new layout.
  Status Restore(std::string_view snapshot);
  Status RestoreFromFile(const std::string& path);

  // --- observability -----------------------------------------------------------
  bool started() const { return executor_ != nullptr || sharded_ != nullptr; }
  int num_queries() const { return static_cast<int>(queries_.size()); }
  // Cumulative: Start()-time merge counts plus the dynamic_* /
  // incremental_* fields maintained by live AddQuery/RemoveQuery.
  const OptimizeStats& optimize_stats() const { return stats_; }
  // Total results delivered per query name (persists across RemoveQuery).
  int64_t OutputCount(const std::string& query_name) const;
  // EXPLAIN-style plan report (includes runtime counters after pushes;
  // reflects the current plan of a running engine, including live merges).
  std::string Explain() const;
  // EXPLAIN ANALYZE: the plan annotated with live per-m-op metrics — query
  // reach, tuples in/out, selectivity, batches, sampled per-tuple cost.
  std::string ExplainAnalyze() const;
  // Full engine snapshot: sharing quality + optimizer history + per-m-op and
  // per-query counters + data-plane fast-path efficacy. Serialize with
  // ToString() / ToJson().
  EngineMetrics CollectMetrics() const;
  // Tunes metric collection (currently: eval-timing sample period). Cheap
  // counters are always on (unless compiled out via RUMOR_METRICS=OFF);
  // only the sampled wall-clocking is governed by this knob. Legal in both
  // states; applied to the executor at Start() if called before it.
  void SetMetricsOptions(const MetricsOptions& options);
  const MetricsOptions& metrics_options() const { return metrics_options_; }

  // --- metrics ticker (time series) ------------------------------------------
  // One sample of the engine's cheap throughput counters. Counters are
  // cumulative since Start(); rates are differences between ticks.
  struct MetricsTick {
    int64_t t_ns = 0;           // steady-clock sample time
    int64_t push_calls = 0;     // Push/PushBatch invocations
    int64_t tuples_pushed = 0;  // source tuples accepted
    int64_t outputs = 0;        // results delivered to the handler
  };
  // Starts a background sampler appending one MetricsTick per `interval`
  // into a bounded ring (oldest ticks drop past `history_capacity`). The
  // sampler reads only the engine's published atomic counters — it never
  // walks the plan, so it cannot race the data plane. Restarting replaces
  // the previous ticker; the destructor stops it. Counters are zero under
  // -DRUMOR_METRICS=OFF (the ticker itself still runs).
  void StartMetricsTicker(std::chrono::milliseconds interval,
                          size_t history_capacity = 512);
  void StopMetricsTicker();
  // Snapshot of the ring, oldest first.
  std::vector<MetricsTick> MetricsHistory() const;
  // The ring as a JSON time series: {"ticks": [{t_ns, push_calls, ...}]}.
  std::string MetricsHistoryJson() const;

  // --- testing hooks -----------------------------------------------------------
  // The live share-point index (single-threaded mode; nullptr before Start
  // or when options.use_share_index is off) and the plan it indexes. The
  // churn stress compares the index against a from-scratch rebuild.
  const ShareIndex* share_index_for_testing() const {
    return share_index_.get();
  }
  Plan* mutable_plan_for_testing() { return &plan_; }

 private:
  class HandlerSink;

  // Index of the live query named `name` in queries_, or -1.
  int FindQuery(const std::string& name) const;
  // Stream id of a registered source, or NotFound / not-started errors.
  Result<StreamId> FindSourceId(const std::string& source) const;
  // Shared implementation of the Add* methods; `text` is the query's RQL
  // source ("" for logical-object adds, which a checkpoint then rejects).
  Status AddQueryWithText(Query query, std::string text);
  // Compiles + incrementally merges a query into the running plan.
  Status AddQueryLive(Query query, std::string text);
  // Re-derives the source name -> stream id table from the plan.
  void RefreshSourceIds();
  // The plan queries run against: shard 0's replica when sharded (callers
  // must quiesce first), the engine-owned plan otherwise.
  const Plan& ActivePlan() const;

  OptimizerOptions options_;
  MetricsOptions metrics_options_;
  Catalog catalog_;
  std::vector<Query> queries_;
  // RQL source of queries_[i] ("" when added as a logical object); restore
  // re-parses these, so Checkpoint requires them to be non-empty.
  std::vector<std::string> query_texts_;
  // Every RegisterSource call, in order (the catalog keeps no iterable
  // source list, and a source may be registered before any query reads it).
  struct RegisteredSource {
    std::string name;
    Schema schema;
    int sharable_label = -1;
  };
  std::vector<RegisteredSource> sources_;
  // Lowercase query name -> index in queries_. O(1) FindQuery — a linear
  // rescan per Add/Remove was quadratic over large standing populations.
  std::unordered_map<std::string, int> query_index_;
  OutputHandler handler_;

  Plan plan_;
  // Persistent share-point index over plan_, built at Start() and kept in
  // sync from the plan's mutation log; every live AddQuery resolves its
  // merges through it (rules/share_index.h). Sharded mode keeps one per
  // shard replica instead. Null when options_.use_share_index is off (the
  // scan-based oracle path).
  std::unique_ptr<ShareIndex> share_index_;
  std::vector<std::unique_ptr<ShareIndex>> shard_indexes_;
  OptimizeStats stats_;
  std::unique_ptr<HandlerSink> sink_;
  std::unique_ptr<Executor> executor_;
  // Declared after sink_ so workers are joined (and all pending outputs
  // merged) before the sink they deliver into is destroyed.
  int shard_count_ = 1;
  std::unique_ptr<ShardedExecutor> sharded_;
  // Source name -> stream id (resolved at Start / refreshed on live adds).
  std::vector<std::pair<std::string, StreamId>> source_ids_;

  // Published throughput counters (relaxed atomics: written by the pushing
  // thread, read by the ticker). The sink bumps outputs_total_ per routed
  // result.
  std::atomic<int64_t> push_calls_{0};
  std::atomic<int64_t> tuples_pushed_{0};
  std::atomic<int64_t> outputs_total_{0};

  // Ticker thread + bounded tick ring.
  std::thread ticker_;
  std::mutex ticker_mu_;  // guards ticker_stop_ (cv wait)
  std::condition_variable ticker_cv_;
  bool ticker_stop_ = false;
  mutable std::mutex history_mu_;
  std::deque<MetricsTick> history_;
  size_t history_cap_ = 512;
};

}  // namespace rumor

#endif  // RUMOR_API_STREAM_ENGINE_H_
