// StreamEngine — the one-stop public API of the library: register sources,
// add continuous queries (logical objects or RQL text), Start() to compile
// and rule-optimize the combined plan, then push tuples and receive per-
// query results through a callback.
//
//   StreamEngine engine;
//   engine.RegisterSource("CPU", Schema({{"pid", kInt}, {"load", kInt}}));
//   engine.AddScript(
//       "SMOOTHED: SELECT pid, AVG(load) FROM CPU [RANGE 60] GROUP BY pid;"
//       "HOT: SELECT * FROM SMOOTHED WHERE avg_load > 90;");
//   engine.SetOutputHandler([](const std::string& q, const Tuple& t) { ... });
//   engine.Start();
//   engine.Push("CPU", Tuple::MakeInts({1, 95}, 0));
#ifndef RUMOR_API_STREAM_ENGINE_H_
#define RUMOR_API_STREAM_ENGINE_H_

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "plan/compile.h"
#include "plan/executor.h"
#include "query/parser.h"
#include "rules/rule_engine.h"

namespace rumor {

class StreamEngine {
 public:
  explicit StreamEngine(OptimizerOptions options = OptimizerOptions());
  ~StreamEngine();  // defined in the .cc (HandlerSink is incomplete here)

  // --- setup (before Start) --------------------------------------------------
  // Registers an input stream; `sharable_label` marks base-case-2 sharable
  // sources (same non-negative label).
  Status RegisterSource(const std::string& name, Schema schema,
                        int sharable_label = -1);
  // Adds a logical query (from QueryBuilder / the translator / ...).
  Status AddQuery(Query query);
  // Parses and adds one RQL query; `name` overrides the statement name.
  Status AddQueryText(const std::string& rql, const std::string& name = "");
  // Parses a ';'-separated RQL script; later statements may reference
  // earlier ones by name.
  Status AddScript(const std::string& rql);

  // Called for every query result: (query name, output tuple).
  using OutputHandler = std::function<void(const std::string&, const Tuple&)>;
  void SetOutputHandler(OutputHandler handler) {
    handler_ = std::move(handler);
  }

  // Compiles all queries into one plan, runs the m-rule optimizer, and
  // prepares execution. No queries may be added afterwards.
  Status Start();

  // --- runtime (after Start) -------------------------------------------------
  // Pushes one tuple into a source stream (timestamps non-decreasing).
  Status Push(const std::string& source, const Tuple& tuple);

  // Pushes a run of consecutive tuples of one source in a single call.
  // Every query receives the same results in the same order as per-tuple
  // Push calls — only the interleaving of the output handler *across
  // different queries* may differ within a batch — and the batch traverses
  // each operator of the shared plan once, amortizing dispatch overhead
  // (the executor falls back to per-tuple dispatch on plan shapes where
  // batching could reorder stateful work).
  Status PushBatch(const std::string& source, std::span<const Tuple> tuples);

  // --- observability -----------------------------------------------------------
  bool started() const { return executor_ != nullptr; }
  int num_queries() const { return static_cast<int>(queries_.size()); }
  const OptimizeStats& optimize_stats() const { return stats_; }
  // Total results delivered per query name.
  int64_t OutputCount(const std::string& query_name) const;
  // EXPLAIN-style plan report (includes runtime counters after pushes).
  std::string Explain() const;

 private:
  class HandlerSink;

  // Stream id of a registered source, or NotFound / not-started errors.
  Result<StreamId> FindSourceId(const std::string& source) const;

  OptimizerOptions options_;
  Catalog catalog_;
  std::vector<Query> queries_;
  OutputHandler handler_;

  Plan plan_;
  OptimizeStats stats_;
  std::unique_ptr<HandlerSink> sink_;
  std::unique_ptr<Executor> executor_;
  // Source name -> stream id (resolved at Start).
  std::vector<std::pair<std::string, StreamId>> source_ids_;
};

}  // namespace rumor

#endif  // RUMOR_API_STREAM_ENGINE_H_
