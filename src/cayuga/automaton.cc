#include "cayuga/automaton.h"

#include "common/hash.h"

namespace rumor {

uint64_t CayugaStage::Signature() const {
  uint64_t h = Mix64(static_cast<uint64_t>(kind));
  h = HashCombine(h, HashBytes(stream));
  h = HashCombine(h, PredicateSignature(match));
  h = HashCombine(h, PredicateSignature(rebind));
  h = HashCombine(h, static_cast<uint64_t>(window));
  return h;
}

CayugaAutomaton& CayugaAutomaton::AddStage(CayugaStage stage,
                                           Schema event_schema) {
  const Schema& in =
      stages_.empty() ? start_schema_ : output_schema();
  input_schemas_.push_back(in);
  // Both state kinds produce concat(instance, event); µ names the event
  // part `last.` to mirror the RUMOR Iterate schema.
  const char* rp = stage.kind == CayugaStateKind::kIterate ? "last." : "r.";
  Schema out = Schema::Concat(in, event_schema, "l.", rp);
  event_schemas_.push_back(std::move(event_schema));
  stages_.push_back(std::move(stage));
  output_schemas_.push_back(std::move(out));
  return *this;
}

const Schema& CayugaAutomaton::output_schema() const {
  RUMOR_CHECK(!output_schemas_.empty()) << "automaton has no stages";
  return output_schemas_.back();
}

}  // namespace rumor
