// Cayuga-style automata (paper §4.2, [Demers 06/07]) — the baseline event
// engine RUMOR is evaluated against.
//
// An automaton is a linear chain: a *start edge* subscribing to a stream
// with a predicate θ1 (the forward edge out of the start state), followed by
// one or more *pattern states*, each subscribing to a stream with a match
// predicate, an optional rebind predicate (µ states), and a duration bound.
// The instance entering stage k is the output of stage k-1 (the start edge
// produces the start event itself, optionally through a schema map).
//
// Semantics per state (deterministic variant — identical to the RUMOR
// SequenceMop/IterateMop contracts, so the two engines are output-equivalent
// and the comparison of §5.2 is apples-to-apples):
//  * kSequence: event matching (match ∧ window) emits concat(instance,
//    event) to the next stage and CONSUMES the instance; non-matching events
//    leave it; it expires after `window`.
//  * kIterate: instance state is (entry ⊕ last); a matching event that
//    satisfies the rebind predicate replaces `last`, emits the updated
//    concatenation downstream, and keeps the instance; a matching event
//    failing the rebind predicate kills it; others leave it.
//
// This captures exactly the automaton fragment the paper's experiments
// exercise (Workloads 1-2 and the pattern half of the hybrid queries); the
// general Cayuga model (arbitrary DAGs, non-deterministic duplication,
// resubscription) is out of scope and documented in DESIGN.md §7.
#ifndef RUMOR_CAYUGA_AUTOMATON_H_
#define RUMOR_CAYUGA_AUTOMATON_H_

#include <string>
#include <vector>

#include "common/schema.h"
#include "expr/expr.h"

namespace rumor {

enum class CayugaStateKind : uint8_t { kSequence, kIterate };

struct CayugaStage {
  CayugaStateKind kind = CayugaStateKind::kSequence;
  std::string stream;      // second-input stream of this state
  // Predicate over (left = instance, right = event). For kIterate the left
  // side is the (entry ⊕ last) concatenation.
  ExprPtr match;
  ExprPtr rebind;          // kIterate only
  int64_t window = 0;      // event.ts - entry.ts bound; 0 = unbounded

  // Definition signature (identity for prefix merging).
  uint64_t Signature() const;
};

class CayugaAutomaton {
 public:
  CayugaAutomaton(std::string name, std::string start_stream,
                  Schema start_schema, ExprPtr start_predicate)
      : name_(std::move(name)),
        start_stream_(std::move(start_stream)),
        start_schema_(std::move(start_schema)),
        start_predicate_(std::move(start_predicate)) {}

  // Appends a pattern state; `event_schema` is the stage stream's schema.
  // Returns *this for chaining.
  CayugaAutomaton& AddStage(CayugaStage stage, Schema event_schema);

  // Resubscription (paper §4.3): instead of firing the query handler, the
  // automaton's final matches are re-published as events of stream `name`,
  // which other automata may subscribe to. Cayuga needs this two-automaton
  // construction for non-left-associative patterns like S1;(S2;S3); RUMOR
  // plans express them directly (the paper's inlining advantage).
  CayugaAutomaton& RepublishAs(std::string name) {
    output_stream_ = std::move(name);
    return *this;
  }
  const std::string& output_stream() const { return output_stream_; }

  const std::string& name() const { return name_; }
  const std::string& start_stream() const { return start_stream_; }
  const Schema& start_schema() const { return start_schema_; }
  const ExprPtr& start_predicate() const { return start_predicate_; }
  int num_stages() const { return static_cast<int>(stages_.size()); }
  const CayugaStage& stage(int i) const { return stages_[i]; }
  const Schema& stage_event_schema(int i) const { return event_schemas_[i]; }
  // Instance schema entering stage i (output schema of stage i-1).
  const Schema& stage_input_schema(int i) const { return input_schemas_[i]; }
  // Schema of the automaton's final output.
  const Schema& output_schema() const;

 private:
  std::string name_;
  std::string start_stream_;
  Schema start_schema_;
  ExprPtr start_predicate_;
  std::string output_stream_;  // empty = deliver to the query handler
  std::vector<CayugaStage> stages_;
  std::vector<Schema> event_schemas_;
  std::vector<Schema> input_schemas_;
  std::vector<Schema> output_schemas_;
};

}  // namespace rumor

#endif  // RUMOR_CAYUGA_AUTOMATON_H_
