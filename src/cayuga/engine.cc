#include "cayuga/engine.h"

#include "common/hash.h"

namespace rumor {

CayugaEngine::CayugaEngine(Options options) : options_(options) {}

int CayugaEngine::InternStream(const std::string& name) {
  for (size_t i = 0; i < stream_names_.size(); ++i) {
    if (stream_names_[i] == name) return static_cast<int>(i);
  }
  stream_names_.push_back(name);
  tables_.emplace_back();
  return static_cast<int>(stream_names_.size()) - 1;
}

size_t CayugaEngine::live_instances() const {
  size_t n = 0;
  for (const Node& node : nodes_) n += node.instances.live_size();
  return n;
}

namespace {

// Identity of the whole automaton: start edge + every stage definition +
// schemas. Two automata share state only when these match — the plan-level
// CSE granularity (s;/sµ), which keeps instance consumption sound across
// queries (see DESIGN.md §7) and mirrors what the RUMOR side shares.
uint64_t AutomatonSignature(const CayugaAutomaton& a) {
  uint64_t sig = Mix64(HashBytes(a.start_stream()));
  sig = HashCombine(sig, PredicateSignature(a.start_predicate()));
  sig = HashCombine(sig, a.start_schema().Signature());
  // Republishing automata must not share final states with handler-bound
  // ones.
  sig = HashCombine(sig, HashBytes(a.output_stream()));
  for (int k = 0; k < a.num_stages(); ++k) {
    sig = HashCombine(sig, a.stage(k).Signature());
    sig = HashCombine(sig, a.stage_event_schema(k).Signature());
  }
  return sig;
}

}  // namespace

int CayugaEngine::FindOrCreateNode(const CayugaAutomaton& a, int stage_index,
                                   int target) {
  const CayugaStage& stage = a.stage(stage_index);
  uint64_t sig = HashCombine(Mix64(AutomatonSignature(a)),
                             static_cast<uint64_t>(stage_index) + 0x51ed);
  if (!options_.merge_prefixes) {
    // Unique salt defeats sharing (ablation mode).
    sig = HashCombine(sig, nodes_.size() + 1);
  }
  auto it = node_registry_.find(sig);
  if (it != node_registry_.end()) return it->second;

  Node node;
  node.kind = stage.kind;
  node.stream = InternStream(stage.stream);
  node.window = stage.window;
  node.match = Program::Compile(stage.match);
  node.rebind = Program::Compile(stage.rebind);
  node.shape = AnalyzeJoin(stage.match);
  // AN candidate: an event-side const equality in the non-equi residual.
  SelectionShape an =
      AnalyzeSelectionOnSide(stage.match, Side::kRight);
  node.an_eq = an.equality;
  node.left_size = a.stage_input_schema(stage_index).size();
  node.right_size = a.stage_event_schema(stage_index).size();
  node.target = target;
  node.signature = sig;
  node.instances =
      KeyedBuffer<Instance>(options_.ai_index && !node.shape.equi.empty());

  int id = static_cast<int>(nodes_.size());
  nodes_.push_back(std::move(node));
  node_registry_[sig] = id;

  StreamTable& table = tables_[nodes_[id].stream];
  if (options_.an_index && nodes_[id].an_eq.has_value()) {
    table.an_index[nodes_[id].an_eq->attr][nodes_[id].an_eq->constant]
        .push_back(id);
  } else {
    table.scan_nodes.push_back(id);
  }
  return id;
}

int CayugaEngine::AddAutomaton(const CayugaAutomaton& a) {
  RUMOR_CHECK(a.num_stages() >= 1) << "automaton needs >= 1 pattern state";
  const int query_id = num_queries_++;

  // Build the chain back to front; identical automata resolve to the same
  // nodes (state merging, Fig. 7/8) and identical queries accumulate on the
  // final node.
  int target = -1;
  for (int k = a.num_stages() - 1; k >= 0; --k) {
    target = FindOrCreateNode(a, k, target);
    if (k == a.num_stages() - 1) {
      if (a.output_stream().empty()) {
        nodes_[target].queries.push_back(query_id);
      } else {
        // Resubscription: final matches re-enter as events (paper §4.3).
        nodes_[target].republish_stream = InternStream(a.output_stream());
      }
    }
  }

  // Start edge.
  StartEdge edge;
  edge.stream = InternStream(a.start_stream());
  edge.predicate = Program::Compile(a.start_predicate());
  SelectionShape shape = AnalyzeSelection(a.start_predicate());
  edge.eq = shape.equality;
  edge.target = target;
  edge.signature = HashCombine(Mix64(0xed6e), AutomatonSignature(a));
  if (!options_.merge_prefixes) {
    edge.signature = HashCombine(edge.signature, start_edges_.size() + 1);
  }
  if (auto it = start_edge_registry_.find(edge.signature);
      it != start_edge_registry_.end()) {
    return query_id;  // fully shared with an existing automaton
  }
  int edge_id = static_cast<int>(start_edges_.size());
  start_edges_.push_back(std::move(edge));
  start_edge_registry_[start_edges_[edge_id].signature] = edge_id;

  StreamTable& table = tables_[start_edges_[edge_id].stream];
  if (options_.fr_index && start_edges_[edge_id].eq.has_value()) {
    table.fr_index[start_edges_[edge_id].eq->attr]
                  [start_edges_[edge_id].eq->constant]
                      .push_back(edge_id);
  } else {
    table.scan_start_edges.push_back(edge_id);
  }
  return query_id;
}

void CayugaEngine::EnterNode(int node_id, const Tuple& state, Timestamp ts) {
  Node& node = nodes_[node_id];
  Tuple instance_state = state;
  if (node.kind == CayugaStateKind::kIterate) {
    // (entry ⊕ last), last initialised from the entry when arities match.
    std::vector<Value> values;
    values.reserve(node.left_size + node.right_size);
    values.insert(values.end(), state.values().begin(),
                  state.values().end());
    if (node.right_size == node.left_size) {
      values.insert(values.end(), state.values().begin(),
                    state.values().end());
    } else {
      values.insert(values.end(), node.right_size, Value());
    }
    instance_state = Tuple::Make(std::move(values), ts);
  }
  Value key;
  if (node.instances.indexed()) {
    key = instance_state.at(node.shape.equi[0].left_attr);
  }
  node.instances.Add(Instance{std::move(instance_state)}, key, ts);
  ++stats_.instances_created;
}

void CayugaEngine::AdvanceInstance(Node& node, const Tuple& output) {
  if (node.target == -1) {
    if (node.republish_stream >= 0) {
      // Resubscription: matches become events of the intermediate stream.
      // Strict temporal ordering (instances only match strictly later
      // events) keeps the recursion acyclic.
      DispatchEvent(node.republish_stream, output);
      return;
    }
    ++stats_.outputs;
    if (handler_) {
      for (int q : node.queries) handler_(q, output);
    }
    return;
  }
  EnterNode(node.target, output, output.ts());
}

void CayugaEngine::ProcessNode(int node_id, const Tuple& event) {
  Node& node = nodes_[node_id];
  if (node.window > 0) {
    node.instances.ExpireBefore(event.ts() - node.window);
  }
  if (node.instances.live_size() == 0) return;  // active-state check
  Value key;
  const Value* key_ptr = nullptr;
  if (node.instances.indexed()) {
    key = event.at(node.shape.equi[0].right_attr);
    key_ptr = &key;
  }
  node.instances.ForCandidates(key_ptr, [&](int64_t abs, auto& slot) {
    Instance& inst = slot.item;
    if (slot.ts >= event.ts()) return;  // strict temporal order
    ExprContext ctx{&inst.state, &event};
    if (!node.match.EvalBool(ctx)) return;
    if (node.kind == CayugaStateKind::kSequence) {
      Tuple output = ConcatTuples(inst.state, event, event.ts());
      node.instances.Kill(abs);  // consume-on-match
      AdvanceInstance(node, output);
      return;
    }
    // kIterate.
    if (!node.rebind.EvalBool(ctx)) {
      node.instances.Kill(abs);  // run broken
      return;
    }
    std::vector<Value> values;
    values.reserve(node.left_size + node.right_size);
    for (int k = 0; k < node.left_size; ++k) {
      values.push_back(inst.state.at(k));
    }
    values.insert(values.end(), event.values().begin(),
                  event.values().end());
    Tuple updated = Tuple::Make(std::move(values), event.ts());
    AdvanceInstance(node, updated);
    inst.state = std::move(updated);
  });
}

void CayugaEngine::OnEvent(const std::string& stream, const Tuple& event) {
  ++stats_.events;
  int sid = -1;
  for (size_t i = 0; i < stream_names_.size(); ++i) {
    if (stream_names_[i] == stream) {
      sid = static_cast<int>(i);
      break;
    }
  }
  if (sid < 0) return;  // stream with no subscribers
  DispatchEvent(sid, event);
}

void CayugaEngine::DispatchEvent(int sid, const Tuple& event) {
  StreamTable& table = tables_[sid];

  // Pattern states first (an event cannot match an instance it creates —
  // strict temporal order makes the order immaterial, but this mirrors the
  // push order of the RUMOR executor).
  for (auto& [attr, by_const] : table.an_index) {
    auto it = by_const.find(event.at(attr));
    if (it == by_const.end()) continue;
    for (int node_id : it->second) ProcessNode(node_id, event);
  }
  for (int node_id : table.scan_nodes) ProcessNode(node_id, event);

  // Start edges (FR index + sequential rest).
  auto fire = [&](const StartEdge& edge) {
    ExprContext ctx{&event, nullptr};
    if (!edge.predicate.EvalBool(ctx)) return;
    EnterNode(edge.target, event, event.ts());
  };
  for (auto& [attr, by_const] : table.fr_index) {
    auto it = by_const.find(event.at(attr));
    if (it == by_const.end()) continue;
    for (int edge_id : it->second) fire(start_edges_[edge_id]);
  }
  for (int edge_id : table.scan_start_edges) fire(start_edges_[edge_id]);
}

}  // namespace rumor
