// CayugaEngine — the automaton-based baseline event engine, with the three
// Cayuga MQO techniques the paper translates into RUMOR (§4.3):
//
//  * prefix state merging — automata are merged into a forest; states with
//    the same definition *and the same continuation* are shared (identical
//    queries share everything down to the final state, which accumulates
//    the query ids to fire);
//  * FR index — start-edge predicates of the form `event.attr = const` are
//    hash-indexed per stream; a new event probes the index instead of
//    evaluating every start edge;
//  * AN index — pattern states whose match predicate carries an
//    `event.attr = const` conjunct are hash-indexed per stream, so an event
//    only visits states it can possibly advance (active-node pruning);
//  * AI index — a state's instances are hash-indexed by the left attribute
//    of an `instance.attr = event.attr` match conjunct.
//
// Each optimization is individually switchable, which the benchmark harness
// uses for ablations.
#ifndef RUMOR_CAYUGA_ENGINE_H_
#define RUMOR_CAYUGA_ENGINE_H_

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cayuga/automaton.h"
#include "expr/program.h"
#include "expr/shape.h"
#include "mop/window.h"

namespace rumor {

class CayugaEngine {
 public:
  struct Options {
    bool fr_index = true;
    bool an_index = true;
    bool ai_index = true;
    bool merge_prefixes = true;
  };

  struct Stats {
    int64_t events = 0;
    int64_t outputs = 0;
    int64_t instances_created = 0;
  };

  explicit CayugaEngine(Options options);
  CayugaEngine() : CayugaEngine(Options{}) {}

  // Registers an automaton (prefix-merged into the forest); returns its
  // query id.
  int AddAutomaton(const CayugaAutomaton& automaton);

  // Called for every final-state match: (query id, output tuple).
  void SetOutputHandler(std::function<void(int, const Tuple&)> handler) {
    handler_ = std::move(handler);
  }

  // Feeds one event; timestamps must be non-decreasing across calls.
  void OnEvent(const std::string& stream, const Tuple& event);

  const Stats& stats() const { return stats_; }
  int num_queries() const { return num_queries_; }
  // Forest size (observability: prefix merging shrinks these).
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_start_edges() const { return static_cast<int>(start_edges_.size()); }
  size_t live_instances() const;

 private:
  struct Instance {
    Tuple state;  // ;: the entering instance; µ: (entry ⊕ last) concat
  };

  // One automaton state in the merged forest.
  struct Node {
    CayugaStateKind kind;
    int stream = -1;
    int64_t window = 0;
    Program match;
    Program rebind;
    JoinShape shape;                          // AI: equi pairs of match
    std::optional<IndexableEquality> an_eq;   // AN: event-side const equality
    int left_size = 0;
    int right_size = 0;
    int target = -1;                 // next node; -1 = final
    std::vector<int> queries;        // final only
    int republish_stream = -1;       // final only: resubscription target
    KeyedBuffer<Instance> instances;
    uint64_t signature = 0;          // definition + continuation identity

    Node() : instances(false) {}
  };

  struct StartEdge {
    int stream = -1;
    Program predicate;
    std::optional<IndexableEquality> eq;  // FR key
    int target = -1;
    uint64_t signature = 0;
  };

  int InternStream(const std::string& name);
  int FindOrCreateNode(const CayugaAutomaton& a, int stage_index, int target);
  void EnterNode(int node_id, const Tuple& instance_state, Timestamp ts);
  void AdvanceInstance(Node& node, const Tuple& output);
  void ProcessNode(int node_id, const Tuple& event);
  void DispatchEvent(int stream, const Tuple& event);

  Options options_;
  std::function<void(int, const Tuple&)> handler_;
  Stats stats_;
  int num_queries_ = 0;

  std::vector<std::string> stream_names_;
  std::vector<Node> nodes_;
  std::vector<StartEdge> start_edges_;
  std::unordered_map<uint64_t, int> node_registry_;       // sig -> node
  std::unordered_map<uint64_t, int> start_edge_registry_; // sig -> edge

  // Per stream dispatch tables.
  struct StreamTable {
    // FR index: attr -> (const -> start edge ids); plus unindexed edges.
    std::unordered_map<int, std::unordered_map<Value, std::vector<int>>>
        fr_index;
    std::vector<int> scan_start_edges;
    // AN index: attr -> (const -> node ids); plus unindexed nodes.
    std::unordered_map<int, std::unordered_map<Value, std::vector<int>>>
        an_index;
    std::vector<int> scan_nodes;
  };
  std::vector<StreamTable> tables_;
};

}  // namespace rumor

#endif  // RUMOR_CAYUGA_ENGINE_H_
