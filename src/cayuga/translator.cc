#include "cayuga/translator.h"

namespace rumor {

Query TranslateAutomaton(const CayugaAutomaton& a) {
  // Start state: source + forward-edge selection (Fig. 5: q1 -> σθ1).
  QueryNodePtr node =
      QueryNode::Source(a.start_stream(), a.start_schema());
  if (a.start_predicate() != nullptr) {
    node = QueryNode::Select(node, a.start_predicate());
  }

  // Each pattern state becomes a ; or µ operator reading the previous
  // stage's output and the state's input stream.
  for (int k = 0; k < a.num_stages(); ++k) {
    const CayugaStage& stage = a.stage(k);
    QueryNodePtr event =
        QueryNode::Source(stage.stream, a.stage_event_schema(k));
    if (stage.kind == CayugaStateKind::kSequence) {
      node = QueryNode::Sequence(node, event, stage.match, stage.window);
    } else {
      node = QueryNode::IterateSplit(node, event, stage.match, stage.rebind,
                                     stage.window);
    }
  }
  return Query{a.name(), node};
}

}  // namespace rumor
