// Automaton → query-plan translation (paper §4.2, Fig. 5): the bridge that
// lets RUMOR optimize event-engine queries with the same m-rules as
// relational ones.
//
//   * the start state's forward edge (θ1, F1) becomes σθ1 (and πF1 when a
//     schema map is present — our automata use identity maps);
//   * a state with a filter edge but no rebind edge becomes a ; operator;
//   * a state with filter and rebind edges becomes a µ operator;
//   * the final forward edge's output stream is the query's output.
//
// The translated Query then flows through the ordinary pipeline:
// CompileQueries → Optimize (where sσ reproduces the FR/AN indexes, the
// hash-keyed instance stores reproduce the AI index, and CSE reproduces
// prefix state merging).
#ifndef RUMOR_CAYUGA_TRANSLATOR_H_
#define RUMOR_CAYUGA_TRANSLATOR_H_

#include "cayuga/automaton.h"
#include "query/query.h"

namespace rumor {

// Translates `automaton` into a logical RUMOR query.
Query TranslateAutomaton(const CayugaAutomaton& automaton);

}  // namespace rumor

#endif  // RUMOR_CAYUGA_TRANSLATOR_H_
