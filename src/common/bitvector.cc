#include "common/bitvector.h"

#include <sstream>

namespace rumor {

bool BitVector::Any() const {
  const uint64_t* w = words();
  for (int i = 0; i < num_words(); ++i) {
    if (w[i] != 0) return true;
  }
  return false;
}

int BitVector::Count() const {
  const uint64_t* w = words();
  int n = 0;
  for (int i = 0; i < num_words(); ++i) n += __builtin_popcountll(w[i]);
  return n;
}

bool BitVector::Contains(const BitVector& other) const {
  RUMOR_DCHECK(size_ == other.size_);
  const uint64_t* a = words();
  const uint64_t* b = other.words();
  for (int i = 0; i < num_words(); ++i) {
    if ((b[i] & ~a[i]) != 0) return false;
  }
  return true;
}

bool BitVector::Intersects(const BitVector& other) const {
  RUMOR_DCHECK(size_ == other.size_);
  const uint64_t* a = words();
  const uint64_t* b = other.words();
  for (int i = 0; i < num_words(); ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

BitVector& BitVector::operator&=(const BitVector& other) {
  RUMOR_DCHECK(size_ == other.size_);
  uint64_t* a = words();
  const uint64_t* b = other.words();
  for (int i = 0; i < num_words(); ++i) a[i] &= b[i];
  return *this;
}

BitVector& BitVector::operator|=(const BitVector& other) {
  RUMOR_DCHECK(size_ == other.size_);
  uint64_t* a = words();
  const uint64_t* b = other.words();
  for (int i = 0; i < num_words(); ++i) a[i] |= b[i];
  return *this;
}

BitVector& BitVector::Subtract(const BitVector& other) {
  RUMOR_DCHECK(size_ == other.size_);
  uint64_t* a = words();
  const uint64_t* b = other.words();
  for (int i = 0; i < num_words(); ++i) a[i] &= ~b[i];
  return *this;
}

std::vector<int> BitVector::ToIndexes() const {
  std::vector<int> out;
  out.reserve(Count());
  ForEach([&out](int i) { out.push_back(i); });
  return out;
}

uint64_t BitVector::Hash() const {
  uint64_t h = Mix64(static_cast<uint64_t>(size_));
  const uint64_t* w = words();
  for (int i = 0; i < num_words(); ++i) h = HashCombine(h, w[i]);
  return h;
}

std::string BitVector::ToString() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  ForEach([&](int i) {
    if (!first) os << ",";
    os << i;
    first = false;
  });
  os << "}";
  return os.str();
}

}  // namespace rumor
