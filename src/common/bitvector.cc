#include "common/bitvector.h"

#include <sstream>

namespace rumor {

bool BitVector::Any() const {
  for (uint64_t w : words_) {
    if (w != 0) return true;
  }
  return false;
}

int BitVector::Count() const {
  int n = 0;
  for (uint64_t w : words_) n += __builtin_popcountll(w);
  return n;
}

bool BitVector::Contains(const BitVector& other) const {
  RUMOR_DCHECK(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((other.words_[i] & ~words_[i]) != 0) return false;
  }
  return true;
}

bool BitVector::Intersects(const BitVector& other) const {
  RUMOR_DCHECK(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

BitVector& BitVector::operator&=(const BitVector& other) {
  RUMOR_DCHECK(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

BitVector& BitVector::operator|=(const BitVector& other) {
  RUMOR_DCHECK(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

BitVector& BitVector::Subtract(const BitVector& other) {
  RUMOR_DCHECK(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

std::vector<int> BitVector::ToIndexes() const {
  std::vector<int> out;
  out.reserve(Count());
  ForEach([&out](int i) { out.push_back(i); });
  return out;
}

uint64_t BitVector::Hash() const {
  uint64_t h = Mix64(static_cast<uint64_t>(size_));
  for (uint64_t w : words_) h = HashCombine(h, w);
  return h;
}

std::string BitVector::ToString() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  ForEach([&](int i) {
    if (!first) os << ",";
    os << i;
    first = false;
  });
  os << "}";
  return os.str();
}

}  // namespace rumor
