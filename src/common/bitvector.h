// BitVector: dynamic bitset used for channel membership components (paper
// §3.1: "the membership component is implemented by a bit vector").
//
// Memberships are overwhelmingly small (capacity-1 channels everywhere a
// plain stream flows), and every ChannelTuple hop copies one — so vectors of
// up to 128 bits are stored inline with no heap allocation (two words cover
// every workload in the paper's evaluation, including 100-member predicate
// indexes); larger vectors spill to a heap array.
#ifndef RUMOR_COMMON_BITVECTOR_H_
#define RUMOR_COMMON_BITVECTOR_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"

namespace rumor {

class BitVector {
 public:
  BitVector() = default;
  // All-zero vector with `size` addressable bits.
  explicit BitVector(int size) : size_(size) {
    if (size_ > kInlineBits) heap_.assign(num_words(), 0);
  }

  // Vector with exactly bit `index` set, sized to hold it.
  static BitVector Singleton(int index, int size) {
    BitVector bv(size);
    bv.Set(index);
    return bv;
  }
  // All-ones vector of `size` bits.
  static BitVector AllOnes(int size) {
    BitVector bv(size);
    uint64_t* w = bv.words();
    for (int i = 0; i < bv.num_words(); ++i) w[i] = ~0ull;
    bv.ClearPadding();
    return bv;
  }

  int size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Set(int i) {
    RUMOR_DCHECK(i >= 0 && i < size_);
    words()[i >> 6] |= 1ull << (i & 63);
  }
  void Reset(int i) {
    RUMOR_DCHECK(i >= 0 && i < size_);
    words()[i >> 6] &= ~(1ull << (i & 63));
  }
  bool Test(int i) const {
    RUMOR_DCHECK(i >= 0 && i < size_);
    return (words()[i >> 6] >> (i & 63)) & 1;
  }

  // True if any bit is set.
  bool Any() const;
  // True if no bit is set.
  bool None() const { return !Any(); }
  // Number of set bits.
  int Count() const;
  // True if every set bit of `other` is also set here.
  bool Contains(const BitVector& other) const;
  // True if the intersection is non-empty.
  bool Intersects(const BitVector& other) const;

  // Grows (or shrinks) to `new_size` addressable bits, preserving the values
  // of surviving bits; new bits are zero. Used when a warm shared m-op gains
  // a member and retained entries must widen their membership.
  void Resize(int new_size) {
    if (new_size == size_) return;
    if (new_size > kInlineBits) {
      std::vector<uint64_t> grown((new_size + 63) >> 6, 0);
      const uint64_t* w = words();
      const int copy_words =
          std::min(num_words(), static_cast<int>(grown.size()));
      for (int i = 0; i < copy_words; ++i) grown[i] = w[i];
      heap_ = std::move(grown);
    } else {
      if (size_ > kInlineBits) {
        for (int i = 0; i < kInlineWords; ++i) {
          inline_words_[i] =
              i < static_cast<int>(heap_.size()) ? heap_[i] : 0;
        }
        heap_.clear();
      }
      // Zero the inline words past the new extent: ClearPadding only masks
      // the partial last word, and stale bits beyond it would otherwise
      // resurrect as phantom members on a later re-grow.
      for (int i = (new_size + 63) >> 6; i < kInlineWords; ++i) {
        inline_words_[i] = 0;
      }
    }
    size_ = new_size;
    ClearPadding();
  }

  // Re-targets this vector to `new_size` all-zero bits, reusing the heap
  // buffer's capacity — the recycled-scratch primitive of the batched data
  // plane (per-batch match masks allocate nothing in the steady state).
  void AssignZero(int new_size) {
    if (new_size > kInlineBits) {
      heap_.assign((new_size + 63) >> 6, 0);
    } else {
      for (int i = 0; i < kInlineWords; ++i) inline_words_[i] = 0;
    }
    size_ = new_size;
  }

  // In-place boolean algebra; operands must have equal size.
  BitVector& operator&=(const BitVector& other);
  BitVector& operator|=(const BitVector& other);
  // Clears bits set in `other` (set difference).
  BitVector& Subtract(const BitVector& other);

  friend BitVector operator&(BitVector a, const BitVector& b) {
    a &= b;
    return a;
  }
  friend BitVector operator|(BitVector a, const BitVector& b) {
    a |= b;
    return a;
  }

  // Calls `fn(index)` for every set bit in ascending order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    const uint64_t* w = words();
    for (int i = 0; i < num_words(); ++i) {
      uint64_t bits = w[i];
      while (bits) {
        int bit = __builtin_ctzll(bits);
        fn(i * 64 + bit);
        bits &= bits - 1;
      }
    }
  }

  // Indices of all set bits.
  std::vector<int> ToIndexes() const;

  bool operator==(const BitVector& other) const {
    if (size_ != other.size_) return false;
    const uint64_t* a = words();
    const uint64_t* b = other.words();
    for (int i = 0; i < num_words(); ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  }
  bool operator!=(const BitVector& other) const { return !(*this == other); }

  // Hash consistent with operator==; usable as a fragment key (shared
  // fragment aggregation keys state by membership set).
  uint64_t Hash() const;

  // e.g. "{0,3,7}".
  std::string ToString() const;

 private:
  static constexpr int kInlineWords = 2;
  static constexpr int kInlineBits = 64 * kInlineWords;

  int num_words() const { return (size_ + 63) >> 6; }
  uint64_t* words() {
    return size_ <= kInlineBits ? inline_words_ : heap_.data();
  }
  const uint64_t* words() const {
    return size_ <= kInlineBits ? inline_words_ : heap_.data();
  }

  void ClearPadding() {
    int tail = size_ & 63;
    if (tail != 0 && num_words() > 0) {
      words()[num_words() - 1] &= (1ull << tail) - 1;
    }
  }

  int size_ = 0;
  uint64_t inline_words_[kInlineWords] = {0, 0};  // storage, size_ <= 128
  std::vector<uint64_t> heap_;                    // storage when size_ > 128
};

}  // namespace rumor

template <>
struct std::hash<rumor::BitVector> {
  size_t operator()(const rumor::BitVector& b) const { return b.Hash(); }
};

#endif  // RUMOR_COMMON_BITVECTOR_H_
