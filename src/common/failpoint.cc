#include "common/failpoint.h"

#if RUMOR_FAILPOINTS_ENABLED

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string_view>
#include <unordered_map>

#include "common/hash.h"

namespace rumor {
namespace failpoint {

namespace {

struct Spec {
  enum class Mode : uint8_t { kAlways, kAfterN, kProb };
  Mode mode = Mode::kAlways;
  int64_t after_n = 0;     // kAfterN: hits to skip before the one firing
  double probability = 0;  // kProb
  uint64_t rng = 0;        // kProb: per-site splitmix64 state
  int64_t hits = 0;
  bool fired = false;      // kAfterN is one-shot
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, Spec> sites;
};

// Fast path: sites armed right now. One relaxed load decides whether Hit
// must take the registry mutex at all.
std::atomic<int> g_armed{0};

Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

// splitmix64 step: deterministic per-site uniform stream for kProb.
uint64_t NextRandom(uint64_t* state) {
  *state += 0x9e3779b97f4a7c15ull;
  return Mix64(*state);
}

bool ParseSpec(std::string_view mode, Spec* out) {
  if (mode == "always") {
    out->mode = Spec::Mode::kAlways;
    return true;
  }
  if (mode.rfind("after(", 0) == 0 && mode.back() == ')') {
    char* end = nullptr;
    const std::string n(mode.substr(6, mode.size() - 7));
    const int64_t v = std::strtoll(n.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || v < 0) return false;
    out->mode = Spec::Mode::kAfterN;
    out->after_n = v;
    return true;
  }
  if (mode.rfind("prob(", 0) == 0 && mode.back() == ')') {
    const std::string body(mode.substr(5, mode.size() - 6));
    const size_t comma = body.find(',');
    if (comma == std::string::npos) return false;
    char* end = nullptr;
    const std::string p_str = body.substr(0, comma);
    const std::string seed_str = body.substr(comma + 1);
    const double p = std::strtod(p_str.c_str(), &end);
    if (end == nullptr || *end != '\0' || p < 0.0 || p > 1.0) return false;
    const uint64_t seed = std::strtoull(seed_str.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') return false;
    out->mode = Spec::Mode::kProb;
    out->probability = p;
    out->rng = seed;
    return true;
  }
  return false;
}

// Parses RUMOR_FAILPOINTS="a=after(3);b=prob(0.5,42)" into the registry.
void LoadFromEnv(Registry& r) {
  const char* env = std::getenv("RUMOR_FAILPOINTS");
  if (env == nullptr || *env == '\0') return;
  std::string_view rest(env);
  while (!rest.empty()) {
    const size_t semi = rest.find(';');
    std::string_view item =
        semi == std::string_view::npos ? rest : rest.substr(0, semi);
    rest = semi == std::string_view::npos ? std::string_view()
                                          : rest.substr(semi + 1);
    const size_t eq = item.find('=');
    if (eq == std::string_view::npos) continue;
    Spec spec;
    if (!ParseSpec(item.substr(eq + 1), &spec)) continue;
    r.sites[std::string(item.substr(0, eq))] = spec;
    g_armed.fetch_add(1, std::memory_order_relaxed);
  }
}

std::once_flag g_env_once;

void EnsureEnvLoaded(Registry& r) {
  std::call_once(g_env_once, [&r] { LoadFromEnv(r); });
}

}  // namespace

bool Hit(const char* site) {
  if (g_armed.load(std::memory_order_relaxed) == 0) {
    // Nothing armed programmatically yet — but the environment may arm
    // sites; load it once so env-only runs work without any Set call.
    static const bool env_checked = [] {
      Registry& r = registry();
      std::lock_guard<std::mutex> lock(r.mu);
      EnsureEnvLoaded(r);
      return true;
    }();
    (void)env_checked;
    if (g_armed.load(std::memory_order_relaxed) == 0) return false;
  }
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(site);
  if (it == r.sites.end()) return false;
  Spec& spec = it->second;
  ++spec.hits;
  switch (spec.mode) {
    case Spec::Mode::kAlways:
      return true;
    case Spec::Mode::kAfterN:
      if (spec.fired || spec.hits <= spec.after_n) return false;
      spec.fired = true;
      return true;
    case Spec::Mode::kProb: {
      const uint64_t x = NextRandom(&spec.rng);
      // Map to [0, 1): 53 mantissa bits keep the conversion exact.
      const double u = static_cast<double>(x >> 11) * 0x1.0p-53;
      return u < spec.probability;
    }
  }
  return false;
}

bool Set(const std::string& site, const std::string& mode) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  EnsureEnvLoaded(r);
  if (mode == "off") {
    if (r.sites.erase(site) > 0) {
      g_armed.fetch_sub(1, std::memory_order_relaxed);
    }
    return true;
  }
  Spec spec;
  if (!ParseSpec(mode, &spec)) return false;
  auto [it, inserted] = r.sites.insert_or_assign(site, spec);
  (void)it;
  if (inserted) g_armed.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void Clear(const std::string& site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  EnsureEnvLoaded(r);
  if (r.sites.erase(site) > 0) {
    g_armed.fetch_sub(1, std::memory_order_relaxed);
  }
}

void ClearAll() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  EnsureEnvLoaded(r);
  g_armed.fetch_sub(static_cast<int>(r.sites.size()),
                    std::memory_order_relaxed);
  r.sites.clear();
}

int64_t HitCount(const std::string& site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.hits;
}

}  // namespace failpoint
}  // namespace rumor

#endif  // RUMOR_FAILPOINTS_ENABLED
