// Deterministic fault injection. A *failpoint* is a named site in the code
// that normally does nothing; tests (or the RUMOR_FAILPOINTS environment
// variable) arm a site with a trigger mode, and the next qualifying hit
// makes RUMOR_FAILPOINT(...) return true so the site can take its failure
// path — a torn snapshot write, a short read, a flipped bit, a forced
// slow-path allocation.
//
//   RUMOR_FAILPOINT("snapshot/write-torn")       // in the code under test
//
//   failpoint::Set("snapshot/write-torn", "after(2)");  // in the test
//   failpoint::ClearAll();
//
// Trigger modes (all deterministic):
//   "off"          — disarmed (same as Clear)
//   "always"       — fires on every hit
//   "after(N)"     — skips N hits, fires exactly once on hit N+1
//   "prob(P,SEED)" — fires on each hit with probability P, driven by a
//                    per-site splitmix64 stream seeded with SEED (the same
//                    seed always yields the same firing pattern)
//
// Environment activation: RUMOR_FAILPOINTS="site=mode;site2=mode2" is read
// once on first use. Programmatic Set/Clear override the environment.
//
// Cost: one relaxed atomic load per hit while no site is armed; compiled
// out entirely (constant false, zero code) by -DRUMOR_FAILPOINTS=OFF.
#ifndef RUMOR_COMMON_FAILPOINT_H_
#define RUMOR_COMMON_FAILPOINT_H_

#include <cstdint>
#include <string>

#ifndef RUMOR_FAILPOINTS_ENABLED
#define RUMOR_FAILPOINTS_ENABLED 1
#endif

namespace rumor {
namespace failpoint {

#if RUMOR_FAILPOINTS_ENABLED

// True if the armed trigger for `site` fires on this hit. Thread-safe.
bool Hit(const char* site);

// Arms `site` with a mode string (see file comment). Returns false on an
// unparsable mode. Overrides any environment-armed mode for the site.
bool Set(const std::string& site, const std::string& mode);
// Disarms one site / every site (also wipes environment-armed sites).
void Clear(const std::string& site);
void ClearAll();
// Total RUMOR_FAILPOINT evaluations of `site` since it was last armed.
int64_t HitCount(const std::string& site);

#else  // RUMOR_FAILPOINTS_ENABLED

inline bool Hit(const char*) { return false; }
inline bool Set(const std::string&, const std::string&) { return false; }
inline void Clear(const std::string&) {}
inline void ClearAll() {}
inline int64_t HitCount(const std::string&) { return 0; }

#endif  // RUMOR_FAILPOINTS_ENABLED

}  // namespace failpoint
}  // namespace rumor

// The per-site hook. Reads as a condition: if (RUMOR_FAILPOINT("x")) {...}.
#if RUMOR_FAILPOINTS_ENABLED
#define RUMOR_FAILPOINT(site) (::rumor::failpoint::Hit(site))
#else
#define RUMOR_FAILPOINT(site) (false)
#endif

#endif  // RUMOR_COMMON_FAILPOINT_H_
