// FlatInt64Map: a minimal open-addressing hash map from int64 keys to small
// non-negative int32 payloads (bucket ids), used on probe-per-tuple hot
// paths (predicate indexes) in place of unordered_map<Value, ...> — one
// Mix64, a power-of-two mask, and a short linear probe over a dense array,
// instead of library hashing, modulo, and node chasing.
//
// Insert-only (the m-rule targets only ever add members); no erase, no
// iteration. Not a general-purpose container.
#ifndef RUMOR_COMMON_FLAT_MAP_H_
#define RUMOR_COMMON_FLAT_MAP_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"

namespace rumor {

class FlatInt64Map {
 public:
  FlatInt64Map() = default;

  // Inserts key -> value, overwriting an existing mapping. `value` must be
  // >= 0 (negative payloads are reserved for "empty").
  void Insert(int64_t key, int32_t value) {
    RUMOR_DCHECK(value >= 0);
    if ((size_ + 1) * 4 >= capacity() * 3) Grow();
    Slot* slot = FindSlot(slots_.data(), capacity(), key);
    if (slot->value < 0) ++size_;
    slot->key = key;
    slot->value = value;
  }

  // Returns the mapped value, or -1 when absent.
  int32_t Find(int64_t key) const {
    if (slots_.empty()) return -1;
    const Slot* slot = FindSlot(slots_.data(), capacity(), key);
    return slot->value;
  }

  size_t size() const { return size_; }
  // Heap footprint of the slot array (memory accounting).
  int64_t ApproxBytes() const {
    return static_cast<int64_t>(slots_.size() * sizeof(Slot));
  }
  void clear() {
    slots_.clear();
    size_ = 0;
  }

 private:
  struct Slot {
    int64_t key = 0;
    int32_t value = -1;  // -1 = empty
  };

  size_t capacity() const { return slots_.size(); }

  template <typename S>
  static S* FindSlot(S* slots, size_t capacity, int64_t key) {
    const size_t mask = capacity - 1;
    size_t i = Mix64(static_cast<uint64_t>(key)) & mask;
    while (slots[i].value >= 0 && slots[i].key != key) i = (i + 1) & mask;
    return &slots[i];
  }

  void Grow() {
    const size_t new_capacity = capacity() == 0 ? 16 : capacity() * 2;
    std::vector<Slot> grown(new_capacity);
    for (const Slot& s : slots_) {
      if (s.value < 0) continue;
      Slot* slot = FindSlot(grown.data(), new_capacity, s.key);
      *slot = s;
    }
    slots_ = std::move(grown);
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
};

}  // namespace rumor

#endif  // RUMOR_COMMON_FLAT_MAP_H_
