// Hash helpers shared across the library (value hashing, structural
// signatures for the sharable-stream analysis, channel fragment keys).
#ifndef RUMOR_COMMON_HASH_H_
#define RUMOR_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace rumor {

// 64-bit mix (splitmix64 finalizer); good avalanche for cheap keys.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Combines a new 64-bit value into a running hash seed.
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return Mix64(seed ^ (v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2)));
}

// FNV-1a over a byte string; used for hashing names in signatures.
inline uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace rumor

#endif  // RUMOR_COMMON_HASH_H_
