#include "common/histogram.h"

#include <bit>
#include <cstdio>

namespace rumor {

namespace {

// "812ns" / "3.1us" / "42ms" / "1.2s" — compact for report rows.
void AppendNs(std::string* out, int64_t ns) {
  char buf[32];
  if (ns < 1000) {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns));
  } else if (ns < 1000000) {
    std::snprintf(buf, sizeof(buf), "%.1fus", ns / 1e3);
  } else if (ns < 1000000000) {
    std::snprintf(buf, sizeof(buf), "%.1fms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", ns / 1e9);
  }
  out->append(buf);
}

}  // namespace

LatencyHistogram::~LatencyHistogram() {
  delete buckets_.load(std::memory_order_acquire);
}

LatencyHistogram::LatencyHistogram(const LatencyHistogram& other) {
  Merge(other);
}

LatencyHistogram& LatencyHistogram::operator=(const LatencyHistogram& other) {
  if (this == &other) return *this;
  Clear();
  Merge(other);
  return *this;
}

LatencyHistogram::LatencyHistogram(LatencyHistogram&& other) noexcept {
  buckets_.store(other.buckets_.exchange(nullptr, std::memory_order_acq_rel),
                 std::memory_order_release);
  count_.store(other.count_.exchange(0), std::memory_order_relaxed);
  sum_.store(other.sum_.exchange(0), std::memory_order_relaxed);
  min_.store(other.min_.exchange(INT64_MAX), std::memory_order_relaxed);
  max_.store(other.max_.exchange(0), std::memory_order_relaxed);
}

LatencyHistogram& LatencyHistogram::operator=(
    LatencyHistogram&& other) noexcept {
  if (this == &other) return *this;
  delete buckets_.exchange(
      other.buckets_.exchange(nullptr, std::memory_order_acq_rel),
      std::memory_order_acq_rel);
  count_.store(other.count_.exchange(0), std::memory_order_relaxed);
  sum_.store(other.sum_.exchange(0), std::memory_order_relaxed);
  min_.store(other.min_.exchange(INT64_MAX), std::memory_order_relaxed);
  max_.store(other.max_.exchange(0), std::memory_order_relaxed);
  return *this;
}

int LatencyHistogram::BucketOf(int64_t v) {
  if (v < 0) v = 0;
  if (v < kSubBuckets) return static_cast<int>(v);
  const int exp = 63 - std::countl_zero(static_cast<uint64_t>(v));
  if (exp > kMaxExp) return kNumBuckets - 1;
  const int sub =
      static_cast<int>((v >> (exp - kSubBits)) & (kSubBuckets - 1));
  return kSubBuckets + (exp - kSubBits) * kSubBuckets + sub;
}

int64_t LatencyHistogram::BucketUpperBound(int b) {
  if (b < kSubBuckets) return b;
  const int rel = b - kSubBuckets;
  const int exp = kSubBits + rel / kSubBuckets;
  const int sub = rel % kSubBuckets;
  const int64_t step = int64_t{1} << (exp - kSubBits);
  return (int64_t{1} << exp) + (sub + 1) * step - 1;
}

LatencyHistogram::Buckets* LatencyHistogram::GetOrCreate() {
  Buckets* b = buckets_.load(std::memory_order_acquire);
  if (b != nullptr) return b;
  Buckets* fresh = new Buckets();
  for (auto& slot : fresh->b) slot.store(0, std::memory_order_relaxed);
  if (buckets_.compare_exchange_strong(b, fresh, std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
    return fresh;
  }
  delete fresh;  // another thread won the race
  return b;
}

void LatencyHistogram::Record(int64_t v, int64_t n) {
  if (n <= 0) return;
  if (v < 0) v = 0;
  Buckets* b = GetOrCreate();
  b->b[BucketOf(v)].fetch_add(n, std::memory_order_relaxed);
  count_.fetch_add(n, std::memory_order_relaxed);
  sum_.fetch_add(v * n, std::memory_order_relaxed);
  int64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.count() == 0) return;
  const Buckets* ob = other.buckets_.load(std::memory_order_acquire);
  if (ob != nullptr) {
    Buckets* b = GetOrCreate();
    for (int i = 0; i < kNumBuckets; ++i) {
      const int64_t n = ob->b[i].load(std::memory_order_relaxed);
      if (n != 0) b->b[i].fetch_add(n, std::memory_order_relaxed);
    }
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
  const int64_t omin = other.min_.load(std::memory_order_relaxed);
  int64_t cur = min_.load(std::memory_order_relaxed);
  while (omin < cur &&
         !min_.compare_exchange_weak(cur, omin, std::memory_order_relaxed)) {
  }
  const int64_t omax = other.max();
  cur = max_.load(std::memory_order_relaxed);
  while (omax > cur &&
         !max_.compare_exchange_weak(cur, omax, std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::Clear() {
  Buckets* b = buckets_.load(std::memory_order_acquire);
  if (b != nullptr) {
    for (auto& slot : b->b) slot.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(INT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

int64_t LatencyHistogram::Percentile(double q) const {
  const int64_t total = count();
  if (total <= 0) return 0;
  const Buckets* b = buckets_.load(std::memory_order_acquire);
  if (b == nullptr) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  int64_t target = static_cast<int64_t>(q * static_cast<double>(total) + 0.5);
  if (target < 1) target = 1;
  if (target > total) target = total;
  int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += b->b[i].load(std::memory_order_relaxed);
    if (seen >= target) {
      const int64_t upper = BucketUpperBound(i);
      const int64_t mx = max();
      return upper < mx ? upper : mx;
    }
  }
  return max();
}

std::string LatencyHistogram::Summary() const {
  std::string out;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "count=%lld mean=",
                static_cast<long long>(count()));
  out.append(buf);
  AppendNs(&out, static_cast<int64_t>(mean()));
  out.append(" p50=");
  AppendNs(&out, p50());
  out.append(" p90=");
  AppendNs(&out, p90());
  out.append(" p99=");
  AppendNs(&out, p99());
  out.append(" p999=");
  AppendNs(&out, p999());
  out.append(" max=");
  AppendNs(&out, max());
  return out;
}

}  // namespace rumor
