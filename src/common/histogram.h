// LatencyHistogram — a mergeable HDR-style log-bucketed histogram for
// non-negative int64 samples (nanoseconds throughout this codebase).
//
// Bucketing: values below 2^kSubBits land in exact unit buckets; above
// that, each power-of-two octave is split into 2^kSubBits linear
// sub-buckets, so the relative quantization error of any reported
// percentile is bounded by 2^-kSubBits (6.25% with the default 4 bits).
// The bucket array is sized for values up to ~2^42 ns (~73 min); larger
// samples clamp into the top bucket.
//
// Recording is wait-free and thread-safe: buckets and the count/sum/min/max
// scalars are relaxed atomics (recording sites in this engine are *sampled*
// — one in MetricsOptions::sample_every_n invocations — so the atomic cost
// never sits on the per-event hot path). Reads (Percentile, Merge, copies)
// are racy-but-consistent-enough snapshots; callers wanting exact totals
// quiesce first, as with every other counter in the engine.
//
// The bucket array is allocated lazily on the first Record/Merge, so an
// unused histogram (every MopMetrics embeds one) costs one pointer. The
// class stays fully functional under -DRUMOR_METRICS=OFF — it is a plain
// utility like JsonWriter; only the engine's *recording sites* compile out.
#ifndef RUMOR_COMMON_HISTOGRAM_H_
#define RUMOR_COMMON_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace rumor {

class LatencyHistogram {
 public:
  // 16 sub-buckets per octave => <= 6.25% relative quantization error.
  static constexpr int kSubBits = 4;
  static constexpr int kSubBuckets = 1 << kSubBits;
  // Highest representable exponent; values >= 2^(kMaxExp+1) clamp.
  static constexpr int kMaxExp = 42;
  static constexpr int kNumBuckets =
      kSubBuckets + (kMaxExp - kSubBits + 1) * kSubBuckets;

  LatencyHistogram() = default;
  ~LatencyHistogram();
  LatencyHistogram(const LatencyHistogram& other);
  LatencyHistogram& operator=(const LatencyHistogram& other);
  LatencyHistogram(LatencyHistogram&& other) noexcept;
  LatencyHistogram& operator=(LatencyHistogram&& other) noexcept;

  // Records `n` occurrences of `v` (negative values clamp to 0).
  void Record(int64_t v, int64_t n = 1);
  // Adds every sample of `other` into this histogram.
  void Merge(const LatencyHistogram& other);
  void Clear();

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  // Smallest / largest recorded sample (0 when empty).
  int64_t min() const {
    const int64_t m = min_.load(std::memory_order_relaxed);
    return m == INT64_MAX ? 0 : m;
  }
  int64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const {
    const int64_t c = count();
    return c > 0 ? static_cast<double>(sum()) / c : 0.0;
  }

  // Value at quantile `q` in [0, 1] (0.5 = median). Returns the upper bound
  // of the bucket holding the q-th sample, clamped to max(); 0 when empty.
  int64_t Percentile(double q) const;
  int64_t p50() const { return Percentile(0.50); }
  int64_t p90() const { return Percentile(0.90); }
  int64_t p99() const { return Percentile(0.99); }
  int64_t p999() const { return Percentile(0.999); }

  // "count=12 mean=3.1us p50=2.9us p90=5us p99=8us p999=8us max=8.2us".
  std::string Summary() const;

  // Bucket index of `v` and the (inclusive) upper bound value of bucket `b`
  // — exposed for the boundary unit tests.
  static int BucketOf(int64_t v);
  static int64_t BucketUpperBound(int b);

 private:
  struct Buckets {
    std::atomic<int64_t> b[kNumBuckets];
  };

  // Returns the bucket array, allocating it on first use (thread-safe CAS
  // publication; the loser frees its copy).
  Buckets* GetOrCreate();

  std::atomic<Buckets*> buckets_{nullptr};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{INT64_MAX};
  std::atomic<int64_t> max_{0};
};

}  // namespace rumor

#endif  // RUMOR_COMMON_HISTOGRAM_H_
