#include "common/json_writer.h"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace rumor {

void JsonWriter::AppendIndent(size_t depth) {
  if (indent_ <= 0) return;
  out_.push_back('\n');
  out_.append(depth * static_cast<size_t>(indent_), ' ');
}

void JsonWriter::NextElement() {
  if (stack_.empty()) return;  // top-level single value
  Frame& frame = stack_.back();
  if (frame.count > 0) out_.push_back(',');
  ++frame.count;
  AppendIndent(stack_.size());
}

void JsonWriter::BeginValue() {
  if (after_key_) {
    after_key_ = false;
    return;  // the key already positioned us
  }
  RUMOR_DCHECK(stack_.empty() || !stack_.back().is_object)
      << "object members need a Key()";
  NextElement();
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  RUMOR_DCHECK(!stack_.empty() && stack_.back().is_object && !after_key_)
      << "Key() outside an object";
  NextElement();
  out_.push_back('"');
  AppendEscaped(key);
  out_.append(indent_ > 0 ? "\": " : "\":");
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginObject() {
  BeginValue();
  out_.push_back('{');
  stack_.push_back(Frame{true, 0});
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  RUMOR_DCHECK(!stack_.empty() && stack_.back().is_object && !after_key_);
  const bool empty = stack_.back().count == 0;
  stack_.pop_back();
  if (!empty) AppendIndent(stack_.size());
  out_.push_back('}');
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeginValue();
  out_.push_back('[');
  stack_.push_back(Frame{false, 0});
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  RUMOR_DCHECK(!stack_.empty() && !stack_.back().is_object);
  const bool empty = stack_.back().count == 0;
  stack_.pop_back();
  if (!empty) AppendIndent(stack_.size());
  out_.push_back(']');
  return *this;
}

void JsonWriter::AppendEscaped(std::string_view s) {
  for (unsigned char c : s) {
    switch (c) {
      case '"': out_.append("\\\""); break;
      case '\\': out_.append("\\\\"); break;
      case '\n': out_.append("\\n"); break;
      case '\r': out_.append("\\r"); break;
      case '\t': out_.append("\\t"); break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_.append(buf);
        } else {
          out_.push_back(static_cast<char>(c));  // UTF-8 passes through
        }
    }
  }
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeginValue();
  out_.push_back('"');
  AppendEscaped(value);
  out_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeginValue();
  out_.append(std::to_string(value));
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeginValue();
  out_.append(value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeginValue();
  out_.append("null");
  return *this;
}

JsonWriter& JsonWriter::Double(double value, int precision) {
  if (!std::isfinite(value)) return Null();
  BeginValue();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
  out_.append(buf);
  // `%g` may produce a bare integer ("3"), which is still valid JSON.
  return *this;
}

std::string JsonWriter::str() const {
  RUMOR_DCHECK(stack_.empty() && !after_key_)
      << "unclosed JSON scopes (" << stack_.size() << " open)";
  return out_ + "\n";
}

// --- JsonLint ----------------------------------------------------------------

namespace {

// Recursive-descent syntax checker over raw bytes. Strings accept any byte
// >= 0x20 (UTF-8 passes through unvalidated, matching the writer).
class Linter {
 public:
  explicit Linter(std::string_view text) : text_(text) {}

  bool Run(std::string* error) {
    SkipWs();
    if (!Value() || (SkipWs(), pos_ != text_.size())) {
      if (error != nullptr) {
        *error = "invalid JSON at byte " + std::to_string(pos_);
      }
      return false;
    }
    return true;
  }

 private:
  bool Eof() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  bool Consume(char c) {
    if (Eof() || Peek() != c) return false;
    ++pos_;
    return true;
  }
  void SkipWs() {
    while (!Eof() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\n' ||
                      Peek() == '\r')) {
      ++pos_;
    }
  }
  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool String() {
    if (!Consume('"')) return false;
    while (!Eof()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_++]);
      if (c == '"') return true;
      if (c == '\\') {
        if (Eof()) return false;
        const char e = text_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (Eof() || !std::isxdigit(static_cast<unsigned char>(
                             text_[pos_++]))) {
              return false;
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      } else if (c < 0x20) {
        return false;  // raw control character
      }
    }
    return false;  // unterminated
  }

  bool Digits() {
    size_t start = pos_;
    while (!Eof() && Peek() >= '0' && Peek() <= '9') ++pos_;
    return pos_ > start;
  }

  bool Number() {
    Consume('-');
    if (Consume('0')) {
      // no leading zeros
    } else if (!Digits()) {
      return false;
    }
    if (Consume('.') && !Digits()) return false;
    if (!Eof() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!Eof() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (!Digits()) return false;
    }
    return true;
  }

  bool Value() {
    if (Eof()) return false;
    switch (Peek()) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    Consume('{');
    SkipWs();
    if (Consume('}')) return true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Consume(':')) return false;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Consume('}')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool Array() {
    Consume('[');
    SkipWs();
    if (Consume(']')) return true;
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Consume(']')) return true;
      if (!Consume(',')) return false;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

bool JsonLint(std::string_view text, std::string* error) {
  return Linter(text).Run(error);
}

}  // namespace rumor
