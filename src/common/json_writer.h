// Minimal JSON emission (and a syntax checker) — no external dependency.
// JsonWriter produces pretty-printed, valid JSON documents; it is the one
// place that knows about escaping and number formatting, so the metrics
// snapshot (EngineMetrics::ToJson) and the BENCH_*.json emitters agree on
// the format instead of each hand-rolling printf JSON.
//
//   JsonWriter w;
//   w.BeginObject()
//       .Key("bench").String("hotpath")
//       .Key("rows").BeginArray()
//           .BeginObject().Key("batch").Int(64).EndObject()
//       .EndArray()
//   .EndObject();
//   w.str();  // the finished document
#ifndef RUMOR_COMMON_JSON_WRITER_H_
#define RUMOR_COMMON_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rumor {

class JsonWriter {
 public:
  // `indent` spaces per nesting level; 0 emits compact single-line JSON.
  explicit JsonWriter(int indent = 2) : indent_(indent) {}

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Object member key; must be followed by exactly one value.
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();
  // `%.*g` with `precision` significant digits; NaN/inf become null (JSON
  // has no representation for them).
  JsonWriter& Double(double value, int precision = 6);

  // Convenience: Key + value in one call.
  JsonWriter& KV(std::string_view key, std::string_view value) {
    return Key(key).String(value);
  }
  JsonWriter& KV(std::string_view key, const char* value) {
    return Key(key).String(value);
  }
  JsonWriter& KV(std::string_view key, int64_t value) {
    return Key(key).Int(value);
  }
  JsonWriter& KV(std::string_view key, int value) {
    return Key(key).Int(value);
  }
  JsonWriter& KV(std::string_view key, double value) {
    return Key(key).Double(value);
  }
  JsonWriter& KV(std::string_view key, bool value) {
    return Key(key).Bool(value);
  }

  // The document so far. Complete (all scopes closed) once every Begin* has
  // its End*; a trailing newline is appended for file friendliness.
  std::string str() const;

 private:
  // Comma/newline/indent bookkeeping before a value or key is emitted.
  void NextElement();
  void BeginValue();
  void AppendEscaped(std::string_view s);
  void AppendIndent(size_t depth);

  struct Frame {
    bool is_object;
    int count;  // elements emitted so far
  };

  std::string out_;
  std::vector<Frame> stack_;
  bool after_key_ = false;
  int indent_;
};

// Validates that `text` is one complete JSON value (the round-trip check for
// everything this writer emits). On failure returns false and, if `error` is
// non-null, a message naming the byte offset.
bool JsonLint(std::string_view text, std::string* error = nullptr);

}  // namespace rumor

#endif  // RUMOR_COMMON_JSON_WRITER_H_
