// Minimal CHECK/LOG facility. The library is exception-free on hot paths;
// invariant violations abort with a source location and message.
#ifndef RUMOR_COMMON_LOGGING_H_
#define RUMOR_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace rumor {
namespace internal_logging {

// Accumulates a message and aborts the process when destroyed.
// Used only via the RUMOR_CHECK* macros below.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << " CHECK failed: " << condition << " ";
  }
  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;
  [[noreturn]] ~FatalMessage() {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace rumor

// Aborts with a diagnostic when `condition` is false. Additional context can
// be streamed: RUMOR_CHECK(n > 0) << "n was " << n;
#define RUMOR_CHECK(condition)                                      \
  if (!(condition))                                                 \
  ::rumor::internal_logging::FatalMessage(__FILE__, __LINE__,       \
                                          #condition)               \
      .stream()

#define RUMOR_CHECK_EQ(a, b) RUMOR_CHECK((a) == (b))
#define RUMOR_CHECK_NE(a, b) RUMOR_CHECK((a) != (b))
#define RUMOR_CHECK_LT(a, b) RUMOR_CHECK((a) < (b))
#define RUMOR_CHECK_LE(a, b) RUMOR_CHECK((a) <= (b))
#define RUMOR_CHECK_GT(a, b) RUMOR_CHECK((a) > (b))
#define RUMOR_CHECK_GE(a, b) RUMOR_CHECK((a) >= (b))

// Debug-only check; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define RUMOR_DCHECK(condition) RUMOR_CHECK(true || (condition))
#else
#define RUMOR_DCHECK(condition) RUMOR_CHECK(condition)
#endif

#endif  // RUMOR_COMMON_LOGGING_H_
