// Runtime-metrics plumbing shared by the whole engine: the compile-out
// switch, the per-m-op counter block, and the sampling knob.
//
// Every hot-path counter in the engine is a plain (non-atomic) increment —
// the data plane runs one engine per thread (see the Tuple threading
// contract) — and is wrapped in RUMOR_METRIC(...) so that configuring with
// -DRUMOR_METRICS=OFF compiles the whole observability layer out. Timing is
// never per-event: the executor samples one m-op invocation in
// MetricsOptions::sample_every_n and extrapolates.
#ifndef RUMOR_COMMON_METRICS_H_
#define RUMOR_COMMON_METRICS_H_

#include <cstdint>

#include "common/histogram.h"

// Defined to 0 by CMake when RUMOR_METRICS=OFF; default is compiled in.
#ifndef RUMOR_METRICS_ENABLED
#define RUMOR_METRICS_ENABLED 1
#endif

// `if constexpr` rather than `#if`: the counter statement always
// type-checks (no unused-variable warnings in the OFF build) and the
// compiler removes it entirely when metrics are compiled out.
#define RUMOR_METRIC(stmt)                 \
  do {                                     \
    if constexpr (RUMOR_METRICS_ENABLED) { \
      stmt;                                \
    }                                      \
  } while (0)

namespace rumor {

// Per-m-op runtime counters, maintained by the executor (tuples/batches) and
// the m-op implementations (outputs). Cheap enough to stay on by default;
// `eval_ns` covers only the sampled invocations, so cost per tuple is
// estimated as eval_ns / sampled_tuples.
struct MopMetrics {
  int64_t tuples_in = 0;   // tuples delivered to any input port
  int64_t tuples_out = 0;  // tuples emitted (per-member fan-out counted)
  int64_t batches = 0;     // ProcessBatch invocations
  int64_t sampled_evals = 0;   // invocations that were wall-clock timed
  int64_t sampled_tuples = 0;  // tuples covered by the timed invocations
  int64_t eval_ns = 0;         // wall time across the timed invocations
  // Distribution of per-invocation wall times over the timed sample (the
  // same measurements eval_ns sums). Unused histograms cost one pointer.
  LatencyHistogram eval_hist;

  // Output selectivity: emitted tuples per delivered tuple. Can exceed 1 for
  // fan-out m-ops (per-member ports, joins).
  double selectivity() const {
    return tuples_in > 0 ? static_cast<double>(tuples_out) / tuples_in : 0.0;
  }
  // Estimated processing cost per delivered tuple, from the timed sample.
  double ns_per_tuple() const {
    return sampled_tuples > 0 ? static_cast<double>(eval_ns) / sampled_tuples
                              : 0.0;
  }
  void Reset() { *this = MopMetrics{}; }
};

// Tuning for the runtime metrics layer.
struct MetricsOptions {
  // Wall-clock one in N m-op invocations (deliveries on the per-tuple path,
  // ProcessBatch calls on the batched path). <= 0 disables timing; counters
  // are unaffected. The default keeps the clock off the per-event path.
  int sample_every_n = 64;
};

}  // namespace rumor

#endif  // RUMOR_COMMON_METRICS_H_
