#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"

namespace rumor {

namespace {

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // Seed the state with splitmix64 as recommended by the xoshiro authors.
  uint64_t x = seed;
  for (auto& s : s_) {
    x += 0x9e3779b97f4a7c15ull;
    s = Mix64(x);
  }
}

uint64_t Rng::Next() {
  uint64_t result = RotL(s_[1] * 5, 7) * 9;
  uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = RotL(s_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  RUMOR_DCHECK(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v;
  do {
    v = Next();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % range);
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

ZipfGenerator::ZipfGenerator(int64_t n, double z) : n_(n), z_(z) {
  RUMOR_CHECK(n >= 1) << "Zipf domain must be non-empty";
  RUMOR_CHECK(z > 0.0) << "Zipf parameter must be positive";
  cdf_.resize(n);
  double sum = 0.0;
  for (int64_t k = 1; k <= n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k), z);
    cdf_[k - 1] = sum;
  }
  for (double& c : cdf_) c /= sum;
}

int64_t ZipfGenerator::SampleRank(Rng& rng) const {
  double u = rng.UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  int64_t rank = (it - cdf_.begin()) + 1;
  return std::min(rank, n_);
}

int64_t ZipfGenerator::Sample(Rng& rng) const {
  return n_ + 1 - SampleRank(rng);
}

}  // namespace rumor
