// Deterministic random number generation for workloads and property tests.
// All experiments are reproducible from a 64-bit seed.
//
// The Zipf sampler implements the paper's §5.1 convention: values are drawn
// from {1..n} with a Zipf(z) rank distribution *favouring large values*
// ("a window of length 1000 is most likely to be chosen"), i.e. the most
// probable value is n, the second most probable n-1, and so on.
#ifndef RUMOR_COMMON_RNG_H_
#define RUMOR_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace rumor {

// xoshiro256** — fast, high-quality, deterministic PRNG.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t Next();
  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);
  // Uniform double in [0, 1).
  double UniformDouble();
  // Bernoulli with probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

 private:
  uint64_t s_[4];
};

// Zipf sampler over {1..n}, P(rank k) ∝ 1/k^z. `Sample` maps rank k to the
// value n+1-k so rank 1 (most likely) yields the largest value, matching the
// paper's workload generator. Sampling is O(log n) by binary search over the
// precomputed CDF; construction is O(n).
class ZipfGenerator {
 public:
  // `n` ≥ 1 is the domain size, `z` > 0 the skew ("Zipfian parameter",
  // default 1.5 in Table 3).
  ZipfGenerator(int64_t n, double z);

  // A value in [1, n], biased toward n.
  int64_t Sample(Rng& rng) const;
  // A value in [1, n], biased toward 1 (plain Zipf by rank).
  int64_t SampleRank(Rng& rng) const;

  int64_t n() const { return n_; }
  double z() const { return z_; }

 private:
  int64_t n_;
  double z_;
  std::vector<double> cdf_;  // cdf_[k-1] = P(rank <= k)
};

}  // namespace rumor

#endif  // RUMOR_COMMON_RNG_H_
