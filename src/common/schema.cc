#include "common/schema.h"

#include <sstream>

#include "common/hash.h"

namespace rumor {

Schema::Schema(std::vector<Attribute> attributes)
    : attributes_(std::move(attributes)) {}

Schema Schema::MakeInts(int n, const std::string& prefix) {
  std::vector<Attribute> attrs;
  attrs.reserve(n);
  for (int i = 0; i < n; ++i) {
    attrs.push_back({prefix + std::to_string(i), ValueType::kInt});
  }
  return Schema(std::move(attrs));
}

std::optional<int> Schema::IndexOf(const std::string& name) const {
  for (int i = 0; i < size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return std::nullopt;
}

Schema Schema::Concat(const Schema& left, const Schema& right,
                      const std::string& lp, const std::string& rp) {
  std::vector<Attribute> attrs;
  attrs.reserve(left.size() + right.size());
  for (const Attribute& a : left.attributes()) {
    attrs.push_back({lp + a.name, a.type});
  }
  for (const Attribute& a : right.attributes()) {
    attrs.push_back({rp + a.name, a.type});
  }
  return Schema(std::move(attrs));
}

uint64_t Schema::Signature() const {
  uint64_t h = Mix64(attributes_.size());
  for (const Attribute& a : attributes_) {
    h = HashCombine(h, HashBytes(a.name));
    h = HashCombine(h, static_cast<uint64_t>(a.type));
  }
  return h;
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "(";
  for (int i = 0; i < size(); ++i) {
    if (i > 0) os << ", ";
    os << attributes_[i].name << ":" << ValueTypeName(attributes_[i].type);
  }
  os << ")";
  return os.str();
}

}  // namespace rumor
