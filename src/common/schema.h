// Schema: ordered list of named, typed attributes. Every stream and channel
// has a schema; the timestamp is carried separately on the tuple (the paper's
// required `ts` attribute) and is not part of the schema.
#ifndef RUMOR_COMMON_SCHEMA_H_
#define RUMOR_COMMON_SCHEMA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/value.h"

namespace rumor {

struct Attribute {
  std::string name;
  ValueType type = ValueType::kInt;

  bool operator==(const Attribute& other) const {
    return name == other.name && type == other.type;
  }
};

// Immutable-by-convention attribute list with name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attributes);

  // Convenience: n int attributes named `prefix0..prefix{n-1}` (the paper's
  // synthetic schema uses a0..a9).
  static Schema MakeInts(int n, const std::string& prefix = "a");

  int size() const { return static_cast<int>(attributes_.size()); }
  const Attribute& attribute(int i) const { return attributes_[i]; }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  // Index of attribute `name`, or nullopt.
  std::optional<int> IndexOf(const std::string& name) const;

  // True if both schemas have identical attribute lists. Channels require
  // union-compatible (here: identical) schemas; the paper's padding/renaming
  // step is performed by SchemaMap projections before channel formation.
  bool CompatibleWith(const Schema& other) const {
    return attributes_ == other.attributes_;
  }

  // Schema of the concatenation used by join/sequence results: attributes of
  // `left` prefixed with `lp`, then attributes of `right` prefixed with `rp`.
  static Schema Concat(const Schema& left, const Schema& right,
                       const std::string& lp = "l.",
                       const std::string& rp = "r.");

  // Structural 64-bit signature (names + types, order-sensitive).
  uint64_t Signature() const;

  // e.g. "(a0:int, a1:int)".
  std::string ToString() const;

  bool operator==(const Schema& other) const {
    return attributes_ == other.attributes_;
  }

 private:
  std::vector<Attribute> attributes_;
};

}  // namespace rumor

#endif  // RUMOR_COMMON_SCHEMA_H_
