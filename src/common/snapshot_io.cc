#include "common/snapshot_io.h"

#include <bit>
#include <cstdio>
#include <cstring>

#include "common/failpoint.h"
#include "common/str_util.h"

namespace rumor {

namespace {

struct Crc32Table {
  uint32_t t[256];
  constexpr Crc32Table() : t{} {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
  }
};
constexpr Crc32Table kCrcTable;

}  // namespace

uint32_t Crc32(std::string_view bytes) {
  uint32_t c = 0xFFFFFFFFu;
  for (unsigned char b : bytes) {
    c = kCrcTable.t[(c ^ b) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// --- SnapshotWriter -----------------------------------------------------------

void SnapshotWriter::U32(uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  buf_.append(b, 4);
}

void SnapshotWriter::U64(uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  buf_.append(b, 8);
}

void SnapshotWriter::F64(double v) { U64(std::bit_cast<uint64_t>(v)); }

void SnapshotWriter::Str(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

void SnapshotWriter::WriteValue(const Value& v) {
  U8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      I64(v.AsInt());
      break;
    case ValueType::kDouble:
      F64(v.AsDouble());
      break;
    case ValueType::kString:
      // By content: interned pointers are process-local.
      Str(v.AsString());
      break;
    case ValueType::kBool:
      U8(v.AsBool() ? 1 : 0);
      break;
  }
}

// --- SnapshotReader -----------------------------------------------------------

Status SnapshotReader::Need(size_t n) {
  if (pos_ + n > data_.size()) {
    return Status::InvalidArgument(
        StrCat("snapshot payload truncated: need ", n, " bytes at offset ",
               pos_, ", have ", data_.size() - pos_));
  }
  return Status::OK();
}

Status SnapshotReader::U8(uint8_t* out) {
  RUMOR_RETURN_IF_ERROR(Need(1));
  *out = static_cast<uint8_t>(data_[pos_++]);
  return Status::OK();
}

Status SnapshotReader::U32(uint32_t* out) {
  RUMOR_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  *out = v;
  return Status::OK();
}

Status SnapshotReader::U64(uint64_t* out) {
  RUMOR_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  *out = v;
  return Status::OK();
}

Status SnapshotReader::I64(int64_t* out) {
  uint64_t v = 0;
  RUMOR_RETURN_IF_ERROR(U64(&v));
  *out = static_cast<int64_t>(v);
  return Status::OK();
}

Status SnapshotReader::F64(double* out) {
  uint64_t v = 0;
  RUMOR_RETURN_IF_ERROR(U64(&v));
  *out = std::bit_cast<double>(v);
  return Status::OK();
}

Status SnapshotReader::Str(std::string* out) {
  uint32_t len = 0;
  RUMOR_RETURN_IF_ERROR(U32(&len));
  RUMOR_RETURN_IF_ERROR(Need(len));
  out->assign(data_.data() + pos_, len);
  pos_ += len;
  return Status::OK();
}

Status SnapshotReader::ReadValue(Value* out) {
  uint8_t tag = 0;
  RUMOR_RETURN_IF_ERROR(U8(&tag));
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      *out = Value();
      return Status::OK();
    case ValueType::kInt: {
      int64_t v = 0;
      RUMOR_RETURN_IF_ERROR(I64(&v));
      *out = Value(v);
      return Status::OK();
    }
    case ValueType::kDouble: {
      double v = 0;
      RUMOR_RETURN_IF_ERROR(F64(&v));
      *out = Value(v);
      return Status::OK();
    }
    case ValueType::kString: {
      std::string s;
      RUMOR_RETURN_IF_ERROR(Str(&s));
      *out = Value(s);
      return Status::OK();
    }
    case ValueType::kBool: {
      uint8_t v = 0;
      RUMOR_RETURN_IF_ERROR(U8(&v));
      *out = Value(v != 0);
      return Status::OK();
    }
  }
  return Status::InvalidArgument(
      StrCat("snapshot holds unknown value tag ", static_cast<int>(tag)));
}

// --- snapshot container -------------------------------------------------------

SnapshotBuilder::SnapshotBuilder() {
  out_.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  SnapshotWriter w;
  w.U32(kSnapshotVersion);
  out_ += w.Take();
}

void SnapshotBuilder::AddSection(SnapshotSection id, std::string payload) {
  SnapshotWriter w;
  w.U32(static_cast<uint32_t>(id));
  w.U64(payload.size());
  w.U32(Crc32(payload));
  out_ += w.Take();
  out_ += payload;
}

Status ParseSnapshot(std::string_view bytes,
                     std::vector<SnapshotSectionView>* out) {
  constexpr size_t kHeaderSize = sizeof(kSnapshotMagic) + 4;
  if (bytes.size() < kHeaderSize) {
    return Status::InvalidArgument(
        StrCat("snapshot too small (", bytes.size(),
               " bytes) to hold a header"));
  }
  if (std::memcmp(bytes.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) !=
      0) {
    return Status::InvalidArgument("snapshot magic mismatch: not a RUMOR "
                                   "snapshot");
  }
  SnapshotReader header(bytes.substr(sizeof(kSnapshotMagic), 4));
  uint32_t version = 0;
  RUMOR_RETURN_IF_ERROR(header.U32(&version));
  if (version != kSnapshotVersion) {
    return Status::InvalidArgument(
        StrCat("snapshot format version ", version, " is not supported (",
               "this build reads version ", kSnapshotVersion, ")"));
  }

  std::vector<SnapshotSectionView> sections;
  size_t pos = kHeaderSize;
  while (pos < bytes.size()) {
    constexpr size_t kFrame = 4 + 8 + 4;
    if (bytes.size() - pos < kFrame) {
      return Status::InvalidArgument(
          StrCat("snapshot truncated inside a section frame at offset ",
                 pos));
    }
    SnapshotReader frame(bytes.substr(pos, kFrame));
    uint32_t id = 0, crc = 0;
    uint64_t len = 0;
    RUMOR_RETURN_IF_ERROR(frame.U32(&id));
    RUMOR_RETURN_IF_ERROR(frame.U64(&len));
    RUMOR_RETURN_IF_ERROR(frame.U32(&crc));
    pos += kFrame;
    if (bytes.size() - pos < len) {
      return Status::InvalidArgument(
          StrCat("snapshot truncated: section ", id, " declares ", len,
                 " payload bytes, only ", bytes.size() - pos, " remain"));
    }
    std::string_view payload = bytes.substr(pos, len);
    const uint32_t actual = Crc32(payload);
    if (actual != crc) {
      return Status::InvalidArgument(
          StrCat("snapshot section ", id, " checksum mismatch (stored ", crc,
                 ", computed ", actual, ") — snapshot is corrupted"));
    }
    sections.push_back(
        SnapshotSectionView{static_cast<SnapshotSection>(id), payload});
    pos += len;
  }
  *out = std::move(sections);
  return Status::OK();
}

// --- file IO ------------------------------------------------------------------

Status WriteFileBytes(const std::string& path, std::string_view bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal(StrCat("cannot open '", path, "' for writing"));
  }
  size_t to_write = bytes.size();
  if (RUMOR_FAILPOINT("snapshot/write-torn")) {
    to_write /= 2;  // simulate a crash mid-write: only half the bytes land
  }
  const size_t written =
      to_write == 0 ? 0 : std::fwrite(bytes.data(), 1, to_write, f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != bytes.size() || !close_ok) {
    return Status::Internal(
        StrCat("short write to '", path, "': ", written, " of ",
               bytes.size(), " bytes"));
  }
  return Status::OK();
}

Status ReadFileBytes(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound(StrCat("cannot open '", path, "' for reading"));
  }
  std::string data;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.append(buf, n);
  }
  std::fclose(f);
  if (RUMOR_FAILPOINT("snapshot/read-short")) {
    data.resize(data.size() / 2);  // simulate a short read
  }
  if (RUMOR_FAILPOINT("snapshot/read-flip") && !data.empty()) {
    data[data.size() / 2] ^= 0x10;  // simulate media corruption
  }
  *out = std::move(data);
  return Status::OK();
}

}  // namespace rumor
