// Versioned binary snapshot format + reader/writer primitives.
//
// Layout of a snapshot:
//
//   header:   magic "RUMRSNAP" (8 bytes) | u32 format version
//   sections: u32 section id | u64 payload length | u32 CRC32(payload) |
//             payload bytes ... repeated until end of buffer
//
// Section payloads are opaque byte strings built with SnapshotWriter and
// decoded with SnapshotReader (little-endian fixed-width integers,
// length-prefixed strings). Every section is independently checksummed, so
// truncation, torn writes, and bit flips are detected before any decoded
// state is applied.
//
// The CRC is the standard reflected CRC-32 (polynomial 0xEDB88320),
// hand-rolled here to keep the library dependency-free.
#ifndef RUMOR_COMMON_SNAPSHOT_IO_H_
#define RUMOR_COMMON_SNAPSHOT_IO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace rumor {

// CRC-32 (IEEE, reflected) of `bytes`.
uint32_t Crc32(std::string_view bytes);

inline constexpr char kSnapshotMagic[8] = {'R', 'U', 'M', 'R',
                                           'S', 'N', 'A', 'P'};
inline constexpr uint32_t kSnapshotVersion = 1;

// Well-known section ids of the engine snapshot.
enum class SnapshotSection : uint32_t {
  kEngine = 1,   // counters, shard layout of the checkpoint
  kSources = 2,  // registered source streams (name, schema, label)
  kQueries = 3,  // live query set (name, RQL text) in add order
  kState = 4,    // per-m-op operator state; one section per shard
};

// Append-only little-endian encoder for one section payload (or a whole
// snapshot via the section helpers).
class SnapshotWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  // Doubles round-trip bit-exactly (the shared aggregation dsum depends on
  // it): the raw IEEE-754 bits travel as a u64.
  void F64(double v);
  void Str(std::string_view s);  // u32 length + bytes
  void WriteValue(const Value& v);

  const std::string& bytes() const { return buf_; }
  std::string Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

// Sequential little-endian decoder over a byte string. Every accessor
// returns a Status error instead of reading past the end, so a truncated
// or corrupted payload fails cleanly.
class SnapshotReader {
 public:
  explicit SnapshotReader(std::string_view bytes) : data_(bytes) {}

  Status U8(uint8_t* out);
  Status U32(uint32_t* out);
  Status U64(uint64_t* out);
  Status I64(int64_t* out);
  Status F64(double* out);
  Status Str(std::string* out);
  Status ReadValue(Value* out);

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status Need(size_t n);
  std::string_view data_;
  size_t pos_ = 0;
};

// --- snapshot container -------------------------------------------------------

// Assembles a whole snapshot: header + checksummed sections.
class SnapshotBuilder {
 public:
  SnapshotBuilder();
  // Appends one section (id + length + CRC + payload).
  void AddSection(SnapshotSection id, std::string payload);
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

struct SnapshotSectionView {
  SnapshotSection id;
  std::string_view payload;
};

// Validates the header, every section frame, and every section CRC. On
// success fills `out` with views into `bytes` (which must outlive them).
// Any malformed byte — bad magic, unknown version, truncated frame,
// checksum mismatch — yields a descriptive error and an untouched `out`.
Status ParseSnapshot(std::string_view bytes,
                     std::vector<SnapshotSectionView>* out);

// --- file IO ------------------------------------------------------------------
// Whole-file read/write used by CheckpointToFile/RestoreFromFile. Both are
// failpoint-instrumented so recovery paths can be exercised:
//   "snapshot/write-torn"  — the write stops half way (torn write)
//   "snapshot/read-short"  — the read drops the trailing half (short read)
//   "snapshot/read-flip"   — one bit of the read buffer is flipped
Status WriteFileBytes(const std::string& path, std::string_view bytes);
Status ReadFileBytes(const std::string& path, std::string* out);

}  // namespace rumor

#endif  // RUMOR_COMMON_SNAPSHOT_IO_H_
