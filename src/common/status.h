// Status / Result<T>: exception-free error propagation for fallible
// operations that are not programming errors (parse failures, invalid query
// specifications). Programming errors use RUMOR_CHECK instead.
#ifndef RUMOR_COMMON_STATUS_H_
#define RUMOR_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/logging.h"

namespace rumor {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kUnimplemented,
  kInternal,
};

// Returns a short human-readable name for `code` ("OK", "InvalidArgument"...).
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kUnimplemented: return "Unimplemented";
    case StatusCode::kInternal: return "Internal";
  }
  return "Unknown";
}

// Value-semantic success/error indicator with an error message.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Returns "OK" or "<CodeName>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T> holds either a T or a non-OK Status.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    RUMOR_CHECK(!std::get<Status>(data_).ok())
        << "Result constructed from OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const T& value() const& {
    RUMOR_CHECK(ok()) << status().ToString();
    return std::get<T>(data_);
  }
  T& value() & {
    RUMOR_CHECK(ok()) << status().ToString();
    return std::get<T>(data_);
  }
  T&& value() && {
    RUMOR_CHECK(ok()) << status().ToString();
    return std::get<T>(std::move(data_));
  }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(data_);
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace rumor

// Propagates a non-OK status to the caller.
#define RUMOR_RETURN_IF_ERROR(expr)          \
  do {                                       \
    ::rumor::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (0)

#endif  // RUMOR_COMMON_STATUS_H_
