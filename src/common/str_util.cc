#include "common/str_util.h"

#include <cctype>

namespace rumor {

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(c));
  return out;
}

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

}  // namespace rumor
