// Small string helpers (no std::format in libstdc++ 12).
#ifndef RUMOR_COMMON_STR_UTIL_H_
#define RUMOR_COMMON_STR_UTIL_H_

#include <sstream>
#include <string>
#include <vector>

namespace rumor {

// Concatenates the stream renderings of all arguments.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

// True if `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

// Lowercase ASCII copy.
std::string ToLower(const std::string& s);

// Copy of `s` with leading/trailing ASCII whitespace removed.
std::string Trim(const std::string& s);

}  // namespace rumor

#endif  // RUMOR_COMMON_STR_UTIL_H_
