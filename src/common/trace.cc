#include "common/trace.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <vector>

#include "common/json_writer.h"

namespace rumor {

namespace {

// Per-thread span ring. The mutex serializes Record against Clear/Dump from
// other threads; spans are control-plane-rare, so contention is nil.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<Trace::Span> spans;  // ring of capacity kMaxSpansPerThread
  int next = 0;   // ring write cursor
  int count = 0;  // live spans (<= kMaxSpansPerThread)
  int tid = 0;    // small stable id for the trace's tid field
};

struct Registry {
  std::mutex mu;
  // shared_ptr so buffers of exited threads stay dumpable.
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  int next_tid = 1;
};

Registry& GetRegistry() {
  static Registry* r = new Registry();  // leaked: dumps may run at exit
  return *r;
}

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    Registry& reg = GetRegistry();
    std::lock_guard<std::mutex> lock(reg.mu);
    b->tid = reg.next_tid++;
    reg.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

// Time origin for the dump's microsecond timestamps: first Enable(true).
std::atomic<int64_t> g_base_ns{0};

}  // namespace

std::atomic<bool> Trace::enabled_{false};

int64_t Trace::NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Trace::Enable(bool on) {
  if (on) {
    int64_t expected = 0;
    g_base_ns.compare_exchange_strong(expected, NowNs(),
                                      std::memory_order_relaxed);
  }
  enabled_.store(on, std::memory_order_relaxed);
}

void Trace::Record(const char* name, int64_t start_ns, int64_t end_ns) {
  ThreadBuffer& tb = LocalBuffer();
  std::lock_guard<std::mutex> lock(tb.mu);
  if (tb.spans.empty()) tb.spans.resize(kMaxSpansPerThread);
  tb.spans[tb.next] = Span{name, start_ns, end_ns};
  tb.next = (tb.next + 1) % kMaxSpansPerThread;
  if (tb.count < kMaxSpansPerThread) ++tb.count;
}

void Trace::Clear() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> rlock(reg.mu);
  for (auto& b : reg.buffers) {
    std::lock_guard<std::mutex> lock(b->mu);
    b->next = 0;
    b->count = 0;
  }
}

int64_t Trace::span_count() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> rlock(reg.mu);
  int64_t total = 0;
  for (auto& b : reg.buffers) {
    std::lock_guard<std::mutex> lock(b->mu);
    total += b->count;
  }
  return total;
}

std::string Trace::DumpChromeJson() {
  struct Row {
    Span span;
    int tid;
  };
  std::vector<Row> rows;
  {
    Registry& reg = GetRegistry();
    std::lock_guard<std::mutex> rlock(reg.mu);
    for (auto& b : reg.buffers) {
      std::lock_guard<std::mutex> lock(b->mu);
      // Oldest-first: the ring's tail starts at `next` once it has wrapped.
      const int start = b->count < kMaxSpansPerThread ? 0 : b->next;
      for (int i = 0; i < b->count; ++i) {
        rows.push_back(
            Row{b->spans[(start + i) % kMaxSpansPerThread], b->tid});
      }
    }
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.span.start_ns < b.span.start_ns;
  });

  const int64_t base = g_base_ns.load(std::memory_order_relaxed);
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents").BeginArray();
  for (const Row& r : rows) {
    int64_t rel = r.span.start_ns - base;
    if (rel < 0) rel = 0;
    int64_t dur = r.span.end_ns - r.span.start_ns;
    if (dur < 0) dur = 0;
    w.BeginObject()
        .KV("name", r.span.name)
        .KV("ph", "X")
        .Key("ts")
        .Double(static_cast<double>(rel) / 1e3, 15)
        .Key("dur")
        .Double(static_cast<double>(dur) / 1e3, 15)
        .KV("pid", 1)
        .KV("tid", r.tid)
        .EndObject();
  }
  w.EndArray();
  w.KV("displayTimeUnit", "ns");
  w.EndObject();
  return w.str();
}

}  // namespace rumor
