// Trace — a process-wide span recorder for the control plane, dumped as
// Chrome trace-event JSON (open in chrome://tracing or ui.perfetto.dev).
//
// Spans mark *control-plane* work — Optimize, incremental merge,
// quiesce-merge-resume, epoch flush — never per-event data-plane work, so
// recording cost is irrelevant next to the traced operation. When tracing is
// disabled (the default) RUMOR_TRACE_SPAN costs one relaxed atomic load;
// under -DRUMOR_METRICS=OFF it compiles out entirely.
//
// Each thread records into its own ring buffer (the newest kMaxSpansPerThread
// spans are kept); buffers are registered globally and survive thread exit,
// so a dump after sharded workers join still contains their spans.
//
//   Trace::Enable(true);
//   { RUMOR_TRACE_SPAN("Optimize"); ... }
//   std::string json = Trace::DumpChromeJson();  // write to a .json file
#ifndef RUMOR_COMMON_TRACE_H_
#define RUMOR_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/metrics.h"

namespace rumor {

class Trace {
 public:
  // Newest spans kept per thread; older ones are overwritten.
  static constexpr int kMaxSpansPerThread = 4096;

  struct Span {
    const char* name;  // must be a string literal (stored by pointer)
    int64_t start_ns;
    int64_t end_ns;
  };

  static void Enable(bool on);
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  // Drops every recorded span (buffers of exited threads included).
  static void Clear();
  // Total spans currently buffered across all threads.
  static int64_t span_count();
  // Chrome trace-event JSON: {"traceEvents":[{name, ph:"X", ts, dur, pid,
  // tid}, ...]} with ts/dur in microseconds relative to the first Enable.
  static std::string DumpChromeJson();

  // Appends a completed span to the calling thread's ring. Used by
  // ScopedTraceSpan; callable directly for spans that cannot be scoped.
  static void Record(const char* name, int64_t start_ns, int64_t end_ns);
  static int64_t NowNs();

 private:
  static std::atomic<bool> enabled_;
};

// RAII span: samples the clock only when tracing was enabled at entry.
class ScopedTraceSpan {
 public:
  explicit ScopedTraceSpan(const char* name) {
    if (Trace::enabled()) {
      name_ = name;
      start_ = Trace::NowNs();
    }
  }
  ~ScopedTraceSpan() {
    if (name_ != nullptr) Trace::Record(name_, start_, Trace::NowNs());
  }
  ScopedTraceSpan(const ScopedTraceSpan&) = delete;
  ScopedTraceSpan& operator=(const ScopedTraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  int64_t start_ = 0;
};

#if RUMOR_METRICS_ENABLED
#define RUMOR_TRACE_CAT2(a, b) a##b
#define RUMOR_TRACE_CAT(a, b) RUMOR_TRACE_CAT2(a, b)
// Opens a span covering the rest of the enclosing scope.
#define RUMOR_TRACE_SPAN(name) \
  ::rumor::ScopedTraceSpan RUMOR_TRACE_CAT(rumor_trace_span_, __LINE__)(name)
#else
#define RUMOR_TRACE_SPAN(name) \
  do {                         \
  } while (0)
#endif

}  // namespace rumor

#endif  // RUMOR_COMMON_TRACE_H_
