#include "common/tuple.h"

#include <new>
#include <sstream>

#include "common/failpoint.h"
#include "common/hash.h"
#include "common/metrics.h"

namespace rumor {

namespace {

// Heap footprint of one payload block of `width` values.
constexpr int64_t BlockBytes(uint32_t width) {
  return static_cast<int64_t>(sizeof(internal::PayloadHeader) +
                              width * sizeof(Value));
}

// Thread-exit guard: retires the thread's default arena so pooled blocks are
// freed deterministically, while blocks still held by longer-lived tuples
// keep the arena alive until their last release.
internal::PayloadHeader* NewBlock(uint32_t width, TupleArena* arena) {
  void* mem = ::operator new(sizeof(internal::PayloadHeader) +
                             width * sizeof(Value));
  auto* block = static_cast<internal::PayloadHeader*>(mem);
  block->refs = 1;
  block->size = width;
  block->arena = arena;
  return block;
}

void DeleteBlock(internal::PayloadHeader* block) {
  ::operator delete(static_cast<void*>(block));
}

}  // namespace

class TupleArenaExitGuard {
 public:
  explicit TupleArenaExitGuard(TupleArena* arena) : arena_(arena) {}
  ~TupleArenaExitGuard() { arena_->Retire(); }
  TupleArena* arena() const { return arena_; }

 private:
  TupleArena* arena_;
};

TupleArena* TupleArena::Default() {
  static thread_local TupleArenaExitGuard guard(new TupleArena);
  return guard.arena();
}

TupleArena::~TupleArena() {
  RUMOR_DCHECK(outstanding_ == 0)
      << "arena destroyed with " << outstanding_ << " live payload blocks";
  FreePooled();
}

void TupleArena::FreePooled() {
  for (std::vector<internal::PayloadHeader*>& list : free_) {
    for (internal::PayloadHeader* block : list) DeleteBlock(block);
    list.clear();
  }
  pooled_ = 0;
  bytes_pooled_ = 0;
}

void TupleArena::Retire() {
  FreePooled();
  if (outstanding_ == 0) {
    delete this;
  } else {
    retired_ = true;  // the last Release deletes
  }
}

#ifndef NDEBUG
namespace {
uint64_t CurrentThreadToken() {
  static thread_local char token;
  return reinterpret_cast<uint64_t>(&token);
}
}  // namespace

void TupleArena::CheckThread() {
  if (owner_thread_ == 0) owner_thread_ = CurrentThreadToken();
  RUMOR_DCHECK(owner_thread_ == CurrentThreadToken())
      << "TupleArena used from a second thread; tuples must not cross "
         "threads (see the Tuple threading contract)";
}
#endif

internal::PayloadHeader* TupleArena::Allocate(uint32_t width) {
#ifndef NDEBUG
  CheckThread();
#endif
  ++outstanding_;
  ++requests_;
  RUMOR_METRIC(bytes_outstanding_ += BlockBytes(width));
  // Failpoint: force the slow heap path (pool-bypass) to exercise the
  // allocation fallback under fault injection.
  if (!RUMOR_FAILPOINT("arena/alloc") && width < free_.size() &&
      !free_[width].empty()) {
    internal::PayloadHeader* block = free_[width].back();
    free_[width].pop_back();
    --pooled_;
    RUMOR_METRIC(bytes_pooled_ -= BlockBytes(width));
    block->refs = 1;
    return block;
  }
  ++allocations_;
  return NewBlock(width, this);
}

void TupleArena::Release(internal::PayloadHeader* block) {
#ifndef NDEBUG
  CheckThread();
#endif
  --outstanding_;
  RUMOR_METRIC(bytes_outstanding_ -= BlockBytes(block->size));
  if (retired_) {
    DeleteBlock(block);
    if (outstanding_ == 0) delete this;
    return;
  }
  const uint32_t width = block->size;
  if (width > kMaxPooledWidth) {
    DeleteBlock(block);
    return;
  }
  if (free_.size() <= width) free_.resize(width + 1);
  if (free_[width].size() >= kMaxPooledPerWidth) {
    DeleteBlock(block);  // burst drain: don't pin peak memory forever
    return;
  }
  free_[width].push_back(block);
  ++pooled_;
  RUMOR_METRIC(bytes_pooled_ += BlockBytes(width));
}

Tuple Tuple::MakeInts(const std::vector<int64_t>& ints, Timestamp ts) {
  Value* out = nullptr;
  Tuple t = MakeUninit(ints.size(), ts, &out);
  for (size_t i = 0; i < ints.size(); ++i) out[i] = Value(ints[i]);
  return t;
}

bool Tuple::ContentEquals(const Tuple& other) const {
  if (ts_ != other.ts_) return false;
  if (payload_ == other.payload_) return true;
  if (payload_ == nullptr || other.payload_ == nullptr) return false;
  if (size() != other.size()) return false;
  for (int i = 0; i < size(); ++i) {
    if (at(i) != other.at(i)) return false;
  }
  return true;
}

uint64_t Tuple::ContentHash() const {
  uint64_t h = Mix64(static_cast<uint64_t>(ts_));
  for (const Value& v : values()) h = HashCombine(h, v.Hash());
  return h;
}

std::string Tuple::ToString() const {
  std::ostringstream os;
  os << "[ts=" << ts_ << "|";
  for (int i = 0; i < size(); ++i) {
    os << (i ? ", " : " ") << at(i).ToString();
  }
  os << "]";
  return os.str();
}

Tuple ConcatTuples(const Tuple& left, const Tuple& right, Timestamp ts) {
  const size_t ln = left.values().size(), rn = right.values().size();
  Value* out = nullptr;
  Tuple t = Tuple::MakeUninit(ln + rn, ts, &out);
  if (ln > 0) {
    __builtin_memcpy(out, left.values().data(), ln * sizeof(Value));
  }
  if (rn > 0) {
    __builtin_memcpy(out + ln, right.values().data(), rn * sizeof(Value));
  }
  return t;
}

}  // namespace rumor
