#include "common/tuple.h"

#include <sstream>

#include "common/hash.h"

namespace rumor {

Tuple Tuple::MakeInts(const std::vector<int64_t>& ints, Timestamp ts) {
  std::vector<Value> values;
  values.reserve(ints.size());
  for (int64_t v : ints) values.emplace_back(v);
  return Make(std::move(values), ts);
}

bool Tuple::ContentEquals(const Tuple& other) const {
  if (ts_ != other.ts_) return false;
  if (payload_ == other.payload_) return true;
  if (!payload_ || !other.payload_) return false;
  return *payload_ == *other.payload_;
}

uint64_t Tuple::ContentHash() const {
  uint64_t h = Mix64(static_cast<uint64_t>(ts_));
  if (payload_) {
    for (const Value& v : *payload_) h = HashCombine(h, v.Hash());
  }
  return h;
}

std::string Tuple::ToString() const {
  std::ostringstream os;
  os << "[ts=" << ts_ << "|";
  for (int i = 0; i < size(); ++i) {
    os << (i ? ", " : " ") << at(i).ToString();
  }
  os << "]";
  return os.str();
}

Tuple ConcatTuples(const Tuple& left, const Tuple& right, Timestamp ts) {
  std::vector<Value> values;
  values.reserve(left.size() + right.size());
  if (!left.empty()) {
    values.insert(values.end(), left.values().begin(), left.values().end());
  }
  if (!right.empty()) {
    values.insert(values.end(), right.values().begin(), right.values().end());
  }
  return Tuple::Make(std::move(values), ts);
}

}  // namespace rumor
