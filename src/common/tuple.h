// Tuple: an immutable, cheaply-copyable stream tuple — a shared payload of
// attribute values plus a timestamp. Sharing the payload is what makes
// channel encoding pay off space-wise: one payload can represent the "same"
// tuple on many streams.
//
// Representation: the payload is a single heap block (16-byte header +
// Value[width]), reference-counted intrusively and recycled through a
// TupleArena freelist — one pointer bump per copy and zero allocations per
// event in the steady state, vs the two allocations plus atomic refcounts of
// the former shared_ptr<const vector<Value>> payload.
//
// Threading contract: refcounts are plain (non-atomic) and arenas are
// single-threaded — the data plane runs one engine (executor) per thread,
// and tuples must not be shared across threads. Tuple::Make allocates from
// the calling thread's default arena (TupleArena::Default()), so every
// engine on a thread shares one pool; parallel executors get per-thread
// pools for free.
#ifndef RUMOR_COMMON_TUPLE_H_
#define RUMOR_COMMON_TUPLE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/schema.h"
#include "common/value.h"

namespace rumor {

using Timestamp = int64_t;

class TupleArena;

namespace internal {

// Header of a payload block; the Value array follows immediately.
struct PayloadHeader {
  uint32_t refs;
  uint32_t size;      // number of values
  TupleArena* arena;  // where the block returns on last release

  Value* values() { return reinterpret_cast<Value*>(this + 1); }
  const Value* values() const {
    return reinterpret_cast<const Value*>(this + 1);
  }
};
static_assert(sizeof(PayloadHeader) == 16);
static_assert(alignof(PayloadHeader) >= alignof(Value));

}  // namespace internal

// Pool of payload blocks, freelisted by width (schema sizes are small, so a
// direct width-indexed freelist table gives an O(1) schema-width-specialized
// fast path). Not thread-safe; see the Tuple threading contract above.
//
// Lifetime: blocks released after their arena is retired are freed directly,
// and a retired arena self-deletes once its last outstanding block returns —
// so the per-thread default arena can be torn down at thread exit without
// dangling live tuples (e.g. tuples stored in statics destroyed later).
class TupleArena {
 public:
  TupleArena() = default;
  TupleArena(const TupleArena&) = delete;
  TupleArena& operator=(const TupleArena&) = delete;
  // A stack/member arena must outlive every tuple allocated from it.
  ~TupleArena();

  // The calling thread's arena (created on first use, retired at thread
  // exit). This is what Tuple::Make allocates from.
  static TupleArena* Default();

  internal::PayloadHeader* Allocate(uint32_t width);
  void Release(internal::PayloadHeader* block);

  // Blocks handed out and not yet released.
  int64_t outstanding() const { return outstanding_; }
  // Blocks currently parked on the freelists.
  int64_t pooled() const { return pooled_; }
  // Total heap allocations performed (cache-miss measure for benchmarks;
  // steady-state processing should not grow this).
  int64_t allocations() const { return allocations_; }
  // Total Allocate calls; requests not served from a freelist hit the heap.
  int64_t requests() const { return requests_; }
  // Freelist-recycled allocations and their share of all requests — the
  // "allocation-free steady state" measure.
  int64_t recycled() const { return requests_ - allocations_; }
  double recycle_hit_rate() const {
    return requests_ > 0 ? static_cast<double>(recycled()) / requests_ : 0.0;
  }
  // Payload bytes (header + values) in blocks handed out and not yet
  // released / parked on the freelists. Zero under -DRUMOR_METRICS=OFF.
  int64_t bytes_outstanding() const { return bytes_outstanding_; }
  int64_t bytes_pooled() const { return bytes_pooled_; }

 private:
  friend class TupleArenaExitGuard;

  // Frees pooled blocks and marks the arena dead; self-deletes when no
  // blocks are outstanding (otherwise the last Release does).
  void Retire();
  void FreePooled();

  // Widths above this are not pooled (allocated and freed directly).
  static constexpr uint32_t kMaxPooledWidth = 64;
  // Freelist cap per width: beyond this, released blocks are freed, so a
  // one-time burst (a large window draining) cannot pin peak memory
  // forever. 4096 blocks of the widest pooled payload ≈ 4 MB per width.
  static constexpr size_t kMaxPooledPerWidth = 4096;

  std::vector<std::vector<internal::PayloadHeader*>> free_;  // by width
  int64_t outstanding_ = 0;
  int64_t pooled_ = 0;
  int64_t allocations_ = 0;
  int64_t requests_ = 0;
  int64_t bytes_outstanding_ = 0;
  int64_t bytes_pooled_ = 0;
  bool retired_ = false;
#ifndef NDEBUG
  // Guards the single-threaded contract: allocate/release off the owning
  // thread would silently corrupt the non-atomic refcounts and freelists,
  // so debug builds fail deterministically instead.
  void CheckThread();
  uint64_t owner_thread_ = 0;  // 0 = unclaimed
#endif
};

class Tuple {
 public:
  Tuple() = default;
  ~Tuple() {
    if (payload_ != nullptr) Unref();
  }
  Tuple(const Tuple& other) : payload_(other.payload_), ts_(other.ts_) {
    if (payload_ != nullptr) ++payload_->refs;
  }
  Tuple(Tuple&& other) noexcept : payload_(other.payload_), ts_(other.ts_) {
    other.payload_ = nullptr;
  }
  Tuple& operator=(const Tuple& other) {
    if (other.payload_ != nullptr) ++other.payload_->refs;
    if (payload_ != nullptr) Unref();
    payload_ = other.payload_;
    ts_ = other.ts_;
    return *this;
  }
  Tuple& operator=(Tuple&& other) noexcept {
    std::swap(payload_, other.payload_);
    ts_ = other.ts_;
    return *this;
  }

  // Builds a tuple owning a fresh payload (pooled via the thread arena).
  static Tuple Make(const Value* values, size_t n, Timestamp ts) {
    Tuple t(TupleArena::Default()->Allocate(static_cast<uint32_t>(n)), ts);
    // Trivially copyable: one memcpy, no per-Value construction.
    if (n > 0) {
      __builtin_memcpy(t.payload_->values(), values, n * sizeof(Value));
    }
    return t;
  }
  static Tuple Make(const std::vector<Value>& values, Timestamp ts) {
    return Make(values.data(), values.size(), ts);
  }
  // Convenience for all-int payloads (the benchmark schema): fills the block
  // in place, no intermediate vector<Value>.
  static Tuple MakeInts(const std::vector<int64_t>& ints, Timestamp ts);

  // Allocates an uninitialized payload of `n` values; the caller must fill
  // *out_values[0..n) before the tuple is read (concat/projection builders).
  static Tuple MakeUninit(size_t n, Timestamp ts, Value** out_values) {
    Tuple t(TupleArena::Default()->Allocate(static_cast<uint32_t>(n)), ts);
    *out_values = t.payload_->values();
    return t;
  }

  Timestamp ts() const { return ts_; }
  int size() const {
    return payload_ != nullptr ? static_cast<int>(payload_->size) : 0;
  }
  const Value& at(int i) const {
    RUMOR_DCHECK(payload_ != nullptr && i >= 0 && i < size())
        << "index " << i;
    return payload_->values()[i];
  }
  std::span<const Value> values() const {
    return payload_ != nullptr
               ? std::span<const Value>(payload_->values(), payload_->size)
               : std::span<const Value>();
  }
  // Payload identity (shared-payload checks); null for the empty tuple.
  const Value* payload() const {
    return payload_ != nullptr ? payload_->values() : nullptr;
  }
  bool empty() const { return payload_ == nullptr; }

  // Returns a tuple with the same payload but a new timestamp.
  Tuple WithTimestamp(Timestamp ts) const {
    Tuple t(*this);
    t.ts_ = ts;
    return t;
  }

  // Content equality: same timestamp and same attribute values.
  bool ContentEquals(const Tuple& other) const;

  // Hash of (ts, values); consistent with ContentEquals.
  uint64_t ContentHash() const;

  // e.g. "[ts=3| 1, 2, "x"]".
  std::string ToString() const;

 private:
  Tuple(internal::PayloadHeader* payload, Timestamp ts)
      : payload_(payload), ts_(ts) {}

  void Unref() {
    if (--payload_->refs == 0) payload_->arena->Release(payload_);
  }

  internal::PayloadHeader* payload_ = nullptr;
  Timestamp ts_ = 0;
};

// Concatenates left and right payloads (join/sequence result content).
// The result timestamp is `ts` (callers pass max(l.ts, r.ts) per the
// documented operator semantics).
Tuple ConcatTuples(const Tuple& left, const Tuple& right, Timestamp ts);

}  // namespace rumor

#endif  // RUMOR_COMMON_TUPLE_H_
