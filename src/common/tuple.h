// Tuple: an immutable, cheaply-copyable stream tuple — a shared payload of
// attribute values plus a timestamp. Sharing the payload is what makes
// channel encoding pay off space-wise: one payload can represent the "same"
// tuple on many streams.
#ifndef RUMOR_COMMON_TUPLE_H_
#define RUMOR_COMMON_TUPLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/schema.h"
#include "common/value.h"

namespace rumor {

using Timestamp = int64_t;

// Shared, immutable attribute storage.
using TuplePayload = std::shared_ptr<const std::vector<Value>>;

class Tuple {
 public:
  Tuple() : ts_(0) {}
  Tuple(TuplePayload payload, Timestamp ts)
      : payload_(std::move(payload)), ts_(ts) {}

  // Builds a tuple owning a fresh payload.
  static Tuple Make(std::vector<Value> values, Timestamp ts) {
    return Tuple(std::make_shared<const std::vector<Value>>(std::move(values)),
                 ts);
  }
  // Convenience for all-int payloads (the benchmark schema).
  static Tuple MakeInts(const std::vector<int64_t>& ints, Timestamp ts);

  Timestamp ts() const { return ts_; }
  int size() const {
    return payload_ ? static_cast<int>(payload_->size()) : 0;
  }
  const Value& at(int i) const {
    RUMOR_DCHECK(payload_ && i >= 0 && i < size()) << "index " << i;
    return (*payload_)[i];
  }
  const std::vector<Value>& values() const {
    RUMOR_DCHECK(payload_ != nullptr);
    return *payload_;
  }
  const TuplePayload& payload() const { return payload_; }
  bool empty() const { return payload_ == nullptr; }

  // Returns a tuple with the same payload but a new timestamp.
  Tuple WithTimestamp(Timestamp ts) const { return Tuple(payload_, ts); }

  // Content equality: same timestamp and same attribute values.
  bool ContentEquals(const Tuple& other) const;

  // Hash of (ts, values); consistent with ContentEquals.
  uint64_t ContentHash() const;

  // e.g. "[ts=3| 1, 2, "x"]".
  std::string ToString() const;

 private:
  TuplePayload payload_;
  Timestamp ts_;
};

// Concatenates left and right payloads (join/sequence result content).
// The result timestamp is `ts` (callers pass max(l.ts, r.ts) per the
// documented operator semantics).
Tuple ConcatTuples(const Tuple& left, const Tuple& right, Timestamp ts);

}  // namespace rumor

#endif  // RUMOR_COMMON_TUPLE_H_
