#include "common/value.h"

#include <cmath>
#include <mutex>
#include <sstream>
#include <unordered_map>

namespace rumor {

const StringRep* InternString(std::string_view s) {
  // Keyed by a view into each rep's own string: reps are heap-allocated and
  // never freed, so the views stay valid. The table is deliberately leaked
  // (reps are handed out as raw pointers with process lifetime).
  struct Table {
    std::mutex mu;
    std::unordered_map<std::string_view, const StringRep*> map;
  };
  static Table* table = new Table;
  std::lock_guard<std::mutex> lock(table->mu);
  auto it = table->map.find(s);
  if (it != table->map.end()) return it->second;
  auto* rep = new StringRep{HashBytes(s), std::string(s)};
  table->map.emplace(std::string_view(rep->str), rep);
  return rep;
}

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull: return "null";
    case ValueType::kInt: return "int";
    case ValueType::kDouble: return "double";
    case ValueType::kString: return "string";
    case ValueType::kBool: return "bool";
  }
  return "?";
}

double Value::ToNumeric() const {
  switch (type_) {
    case ValueType::kInt: return static_cast<double>(int_);
    case ValueType::kDouble: return double_;
    case ValueType::kBool: return bool_ ? 1.0 : 0.0;
    default:
      RUMOR_CHECK(false) << "non-numeric value " << ToString();
      return 0.0;
  }
}

int Value::Compare(const Value& other) const {
  // Numeric values compare numerically regardless of int/double/bool tag.
  if (IsNumeric() && other.IsNumeric()) {
    if (type_ == ValueType::kInt && other.type_ == ValueType::kInt) {
      if (int_ < other.int_) return -1;
      if (int_ > other.int_) return 1;
      return 0;
    }
    double a = ToNumeric(), b = other.ToNumeric();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (type_ != other.type_) {
    return static_cast<int>(type_) < static_cast<int>(other.type_) ? -1 : 1;
  }
  switch (type_) {
    case ValueType::kNull: return 0;
    case ValueType::kString:
      return str_ == other.str_ ? 0 : str_->str.compare(other.str_->str);
    default: return 0;  // unreachable: numeric handled above
  }
}

uint64_t Value::Hash() const {
  switch (type_) {
    case ValueType::kNull:
      return Mix64(0x6e756c6c);  // "null"
    case ValueType::kInt:
      return Mix64(static_cast<uint64_t>(int_));
    case ValueType::kBool:
      return Mix64(bool_ ? 1u : 0u);
    case ValueType::kDouble: {
      // Hash doubles that are integral the same as the equal int so that
      // Hash() is consistent with the numeric Compare().
      if (std::nearbyint(double_) == double_ &&
          std::abs(double_) < 9.0e18) {
        return Mix64(static_cast<uint64_t>(static_cast<int64_t>(double_)));
      }
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(double_));
      __builtin_memcpy(&bits, &double_, sizeof(bits));
      return Mix64(bits);
    }
    case ValueType::kString:
      return str_->hash;
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type_) {
    case ValueType::kNull: return "null";
    case ValueType::kInt: return std::to_string(int_);
    case ValueType::kBool: return bool_ ? "true" : "false";
    case ValueType::kDouble: {
      std::ostringstream os;
      os << double_;
      return os.str();
    }
    case ValueType::kString: return "\"" + str_->str + "\"";
  }
  return "?";
}

namespace {

bool BothInt(const Value& a, const Value& b) {
  return a.type() == ValueType::kInt && b.type() == ValueType::kInt;
}

}  // namespace

Value ValueAdd(const Value& a, const Value& b) {
  if (BothInt(a, b)) return Value(a.AsInt() + b.AsInt());
  return Value(a.ToNumeric() + b.ToNumeric());
}

Value ValueSub(const Value& a, const Value& b) {
  if (BothInt(a, b)) return Value(a.AsInt() - b.AsInt());
  return Value(a.ToNumeric() - b.ToNumeric());
}

Value ValueMul(const Value& a, const Value& b) {
  if (BothInt(a, b)) return Value(a.AsInt() * b.AsInt());
  return Value(a.ToNumeric() * b.ToNumeric());
}

Value ValueDiv(const Value& a, const Value& b) {
  if (BothInt(a, b)) {
    RUMOR_CHECK(b.AsInt() != 0) << "integer division by zero";
    return Value(a.AsInt() / b.AsInt());
  }
  return Value(a.ToNumeric() / b.ToNumeric());
}

Value ValueMod(const Value& a, const Value& b) {
  RUMOR_CHECK(BothInt(a, b)) << "modulo requires integer operands";
  RUMOR_CHECK(b.AsInt() != 0) << "modulo by zero";
  return Value(a.AsInt() % b.AsInt());
}

}  // namespace rumor
