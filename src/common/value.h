// Value: the dynamically-typed attribute value used in stream tuples.
// The benchmark workloads of the paper use integer attributes only, but the
// library supports int64, double, and string attributes so realistic
// monitoring schemas (process names, counter labels) can be expressed.
#ifndef RUMOR_COMMON_VALUE_H_
#define RUMOR_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/hash.h"
#include "common/logging.h"

namespace rumor {

enum class ValueType : uint8_t {
  kNull = 0,
  kInt = 1,
  kDouble = 2,
  kString = 3,
  kBool = 4,
};

// Returns the lowercase name of a type ("int", "double", ...).
const char* ValueTypeName(ValueType type);

// A small tagged union. Ints/doubles/bools are stored inline; strings use
// std::string. Values are totally ordered within a type; cross-type numeric
// comparisons (int vs double) promote to double, everything else compares by
// type tag first (a stable, documented order used by test oracles).
class Value {
 public:
  Value() : type_(ValueType::kNull), int_(0) {}
  explicit Value(int64_t v) : type_(ValueType::kInt), int_(v) {}
  explicit Value(int v) : type_(ValueType::kInt), int_(v) {}
  explicit Value(double v) : type_(ValueType::kDouble), double_(v) {}
  explicit Value(bool v) : type_(ValueType::kBool), bool_(v) {}
  explicit Value(std::string v)
      : type_(ValueType::kString), int_(0), string_(std::move(v)) {}
  explicit Value(const char* v)
      : type_(ValueType::kString), int_(0), string_(v) {}

  static Value Null() { return Value(); }

  ValueType type() const { return type_; }
  bool is_null() const { return type_ == ValueType::kNull; }

  int64_t AsInt() const {
    RUMOR_DCHECK(type_ == ValueType::kInt) << "not an int";
    return int_;
  }
  double AsDouble() const {
    RUMOR_DCHECK(type_ == ValueType::kDouble) << "not a double";
    return double_;
  }
  bool AsBool() const {
    RUMOR_DCHECK(type_ == ValueType::kBool) << "not a bool";
    return bool_;
  }
  const std::string& AsString() const {
    RUMOR_DCHECK(type_ == ValueType::kString) << "not a string";
    return string_;
  }

  // Numeric view: int/double/bool coerced to double; CHECKs otherwise.
  double ToNumeric() const;

  // True if the value is numeric (int, double, or bool).
  bool IsNumeric() const {
    return type_ == ValueType::kInt || type_ == ValueType::kDouble ||
           type_ == ValueType::kBool;
  }

  // Total order across all values; see class comment for cross-type rules.
  // Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  // Stable 64-bit hash consistent with operator== (numeric values that
  // compare equal hash equal).
  uint64_t Hash() const;

  // Human-readable rendering, e.g. `42`, `3.5`, `"foo"`, `null`.
  std::string ToString() const;

 private:
  ValueType type_;
  union {
    int64_t int_;
    double double_;
    bool bool_;
  };
  std::string string_;  // engaged only for kString
};

// Arithmetic on values with numeric promotion. Integer op integer stays
// integer (division by zero CHECKs); any double operand promotes to double.
Value ValueAdd(const Value& a, const Value& b);
Value ValueSub(const Value& a, const Value& b);
Value ValueMul(const Value& a, const Value& b);
Value ValueDiv(const Value& a, const Value& b);
Value ValueMod(const Value& a, const Value& b);

}  // namespace rumor

template <>
struct std::hash<rumor::Value> {
  size_t operator()(const rumor::Value& v) const { return v.Hash(); }
};

#endif  // RUMOR_COMMON_VALUE_H_
