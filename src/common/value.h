// Value: the dynamically-typed attribute value used in stream tuples.
// The benchmark workloads of the paper use integer attributes only, but the
// library supports int64, double, and string attributes so realistic
// monitoring schemas (process names, counter labels) can be expressed.
//
// Representation: a 16-byte tagged union. Ints, doubles, and bools are
// stored inline; strings are a pointer to an immutable, process-interned
// StringRep (content + precomputed hash). Interning makes Value trivially
// copyable and trivially destructible — vector<Value> payloads are dense
// memcpy-able blocks, equality of equal strings is a pointer compare, and
// hashing never touches string bytes. Interned strings live for the process
// lifetime, so memory is bounded by the number of *distinct* strings ever
// seen — appropriate for the enum-like string attributes of monitoring
// schemas (process names, labels), not for unbounded-cardinality payloads.
// The intern table is thread-safe (one mutex, taken only at string Value
// construction, never on the compare/hash/copy paths); if construction of
// string values ever becomes a contended hot path, shard the table.
#ifndef RUMOR_COMMON_VALUE_H_
#define RUMOR_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>

#include "common/hash.h"
#include "common/logging.h"

namespace rumor {

enum class ValueType : uint8_t {
  kNull = 0,
  kInt = 1,
  kDouble = 2,
  kString = 3,
  kBool = 4,
};

// Returns the lowercase name of a type ("int", "double", ...).
const char* ValueTypeName(ValueType type);

// Immutable interned string storage. Reps are canonical: two Values carry
// the same StringRep pointer iff their strings are byte-identical.
struct StringRep {
  uint64_t hash;    // HashBytes(str), precomputed
  std::string str;  // immutable after interning
};

// Returns the canonical rep for `s` (process-wide table; reps are never
// freed). Thread-safe; the lookup cost is paid at Value construction, not
// on the compare/hash hot paths.
const StringRep* InternString(std::string_view s);

// A small tagged union; see the file comment for the representation.
// Values are totally ordered within a type; cross-type numeric comparisons
// (int vs double) promote to double, everything else compares by type tag
// first (a stable, documented order used by test oracles).
class Value {
 public:
  Value() : type_(ValueType::kNull), int_(0) {}
  explicit Value(int64_t v) : type_(ValueType::kInt), int_(v) {}
  explicit Value(int v) : type_(ValueType::kInt), int_(v) {}
  explicit Value(double v) : type_(ValueType::kDouble), double_(v) {}
  explicit Value(bool v) : type_(ValueType::kBool), bool_(v) {}
  explicit Value(std::string_view v)
      : type_(ValueType::kString), str_(InternString(v)) {}
  explicit Value(const std::string& v)
      : Value(std::string_view(v)) {}
  explicit Value(const char* v) : Value(std::string_view(v)) {}

  static Value Null() { return Value(); }

  ValueType type() const { return type_; }
  bool is_null() const { return type_ == ValueType::kNull; }

  int64_t AsInt() const {
    RUMOR_DCHECK(type_ == ValueType::kInt) << "not an int";
    return int_;
  }
  double AsDouble() const {
    RUMOR_DCHECK(type_ == ValueType::kDouble) << "not a double";
    return double_;
  }
  bool AsBool() const {
    RUMOR_DCHECK(type_ == ValueType::kBool) << "not a bool";
    return bool_;
  }
  const std::string& AsString() const {
    RUMOR_DCHECK(type_ == ValueType::kString) << "not a string";
    return str_->str;
  }

  // Unchecked raw int access for the typed evaluation fast path; the caller
  // must have verified type() == kInt.
  int64_t AsIntUnchecked() const { return int_; }

  // Numeric view: int/double/bool coerced to double; CHECKs otherwise.
  double ToNumeric() const;

  // True if the value is numeric (int, double, or bool).
  bool IsNumeric() const {
    return type_ == ValueType::kInt || type_ == ValueType::kDouble ||
           type_ == ValueType::kBool;
  }

  // Total order across all values; see class comment for cross-type rules.
  // Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const {
    // Same-tag inline cases resolve without the Compare switch; interned
    // strings compare by pointer.
    if (type_ == other.type_) {
      switch (type_) {
        case ValueType::kNull: return true;
        case ValueType::kInt: return int_ == other.int_;
        case ValueType::kBool: return bool_ == other.bool_;
        case ValueType::kString: return str_ == other.str_;
        case ValueType::kDouble: break;  // NaN/-0.0: defer to Compare
      }
    }
    return Compare(other) == 0;
  }
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  // Stable 64-bit hash consistent with operator== (numeric values that
  // compare equal hash equal).
  uint64_t Hash() const;

  // Human-readable rendering, e.g. `42`, `3.5`, `"foo"`, `null`.
  std::string ToString() const;

 private:
  ValueType type_;
  union {
    int64_t int_;
    double double_;
    bool bool_;
    const StringRep* str_;  // interned; never null when engaged
  };
};

// The data plane depends on these: payload blocks are recycled raw and
// copied with memcpy, with no per-Value construction or destruction.
static_assert(sizeof(Value) <= 16, "Value must stay a compact 16 bytes");
static_assert(std::is_trivially_copyable_v<Value>);
static_assert(std::is_trivially_destructible_v<Value>);

// Arithmetic on values with numeric promotion. Integer op integer stays
// integer (division by zero CHECKs); any double operand promotes to double.
Value ValueAdd(const Value& a, const Value& b);
Value ValueSub(const Value& a, const Value& b);
Value ValueMul(const Value& a, const Value& b);
Value ValueDiv(const Value& a, const Value& b);
Value ValueMod(const Value& a, const Value& b);

}  // namespace rumor

template <>
struct std::hash<rumor::Value> {
  size_t operator()(const rumor::Value& v) const { return v.Hash(); }
};

#endif  // RUMOR_COMMON_VALUE_H_
