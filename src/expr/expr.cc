#include "expr/expr.h"

#include <sstream>

#include "common/hash.h"

namespace rumor {

namespace {

const char* ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd: return "+";
    case ArithOp::kSub: return "-";
    case ArithOp::kMul: return "*";
    case ArithOp::kDiv: return "/";
    case ArithOp::kMod: return "%";
  }
  return "?";
}

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

}  // namespace

// Allocation happens inside the static factories, which may access the
// private constructor.
#define RUMOR_NEW_EXPR() std::shared_ptr<Expr>(new Expr())

ExprPtr Expr::Const(Value v) {
  auto e = RUMOR_NEW_EXPR();
  e->kind_ = ExprKind::kConst;
  e->const_ = std::move(v);
  return e;
}

ExprPtr Expr::Attr(Side side, int index, std::string name) {
  auto e = RUMOR_NEW_EXPR();
  e->kind_ = ExprKind::kAttr;
  e->side_ = side;
  e->attr_index_ = index;
  e->attr_name_ = std::move(name);
  return e;
}

ExprPtr Expr::Ts(Side side) {
  auto e = RUMOR_NEW_EXPR();
  e->kind_ = ExprKind::kTs;
  e->side_ = side;
  return e;
}

ExprPtr Expr::Arith(ArithOp op, ExprPtr l, ExprPtr r) {
  auto e = RUMOR_NEW_EXPR();
  e->kind_ = ExprKind::kArith;
  e->arith_op_ = op;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::Cmp(CmpOp op, ExprPtr l, ExprPtr r) {
  auto e = RUMOR_NEW_EXPR();
  e->kind_ = ExprKind::kCmp;
  e->cmp_op_ = op;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::And(ExprPtr l, ExprPtr r) {
  auto e = RUMOR_NEW_EXPR();
  e->kind_ = ExprKind::kAnd;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::Or(ExprPtr l, ExprPtr r) {
  auto e = RUMOR_NEW_EXPR();
  e->kind_ = ExprKind::kOr;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::Not(ExprPtr c) {
  auto e = RUMOR_NEW_EXPR();
  e->kind_ = ExprKind::kNot;
  e->children_ = {std::move(c)};
  return e;
}

ExprPtr Expr::AndAll(const std::vector<ExprPtr>& terms) {
  ExprPtr acc;
  for (const ExprPtr& t : terms) {
    if (t == nullptr) continue;
    acc = acc ? And(acc, t) : t;
  }
  return acc;
}

bool Expr::IsTrivallyTrue(const ExprPtr& e) {
  if (e == nullptr) return true;
  return e->kind_ == ExprKind::kConst &&
         e->const_.type() == ValueType::kBool && e->const_.AsBool();
}

Value Expr::Eval(const ExprContext& ctx) const {
  switch (kind_) {
    case ExprKind::kConst:
      return const_;
    case ExprKind::kAttr: {
      const Tuple* t = side_ == Side::kLeft ? ctx.left : ctx.right;
      RUMOR_DCHECK(t != nullptr) << "unbound side in " << ToString();
      return t->at(attr_index_);
    }
    case ExprKind::kTs: {
      const Tuple* t = side_ == Side::kLeft ? ctx.left : ctx.right;
      RUMOR_DCHECK(t != nullptr) << "unbound side in " << ToString();
      return Value(t->ts());
    }
    case ExprKind::kArith: {
      Value l = children_[0]->Eval(ctx);
      Value r = children_[1]->Eval(ctx);
      switch (arith_op_) {
        case ArithOp::kAdd: return ValueAdd(l, r);
        case ArithOp::kSub: return ValueSub(l, r);
        case ArithOp::kMul: return ValueMul(l, r);
        case ArithOp::kDiv: return ValueDiv(l, r);
        case ArithOp::kMod: return ValueMod(l, r);
      }
      return Value();
    }
    case ExprKind::kCmp: {
      Value l = children_[0]->Eval(ctx);
      Value r = children_[1]->Eval(ctx);
      int c = l.Compare(r);
      switch (cmp_op_) {
        case CmpOp::kEq: return Value(c == 0);
        case CmpOp::kNe: return Value(c != 0);
        case CmpOp::kLt: return Value(c < 0);
        case CmpOp::kLe: return Value(c <= 0);
        case CmpOp::kGt: return Value(c > 0);
        case CmpOp::kGe: return Value(c >= 0);
      }
      return Value();
    }
    case ExprKind::kAnd:
      if (!children_[0]->EvalBool(ctx)) return Value(false);
      return Value(children_[1]->EvalBool(ctx));
    case ExprKind::kOr:
      if (children_[0]->EvalBool(ctx)) return Value(true);
      return Value(children_[1]->EvalBool(ctx));
    case ExprKind::kNot:
      return Value(!children_[0]->EvalBool(ctx));
  }
  return Value();
}

bool Expr::EvalBool(const ExprContext& ctx) const {
  Value v = Eval(ctx);
  RUMOR_CHECK(v.type() == ValueType::kBool)
      << "predicate did not evaluate to bool: " << ToString();
  return v.AsBool();
}

bool Expr::Equals(const Expr& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case ExprKind::kConst:
      if (const_.type() != other.const_.type()) return false;
      if (const_ != other.const_) return false;
      break;
    case ExprKind::kAttr:
      if (side_ != other.side_ || attr_index_ != other.attr_index_)
        return false;
      break;
    case ExprKind::kTs:
      if (side_ != other.side_) return false;
      break;
    case ExprKind::kArith:
      if (arith_op_ != other.arith_op_) return false;
      break;
    case ExprKind::kCmp:
      if (cmp_op_ != other.cmp_op_) return false;
      break;
    default:
      break;
  }
  if (children_.size() != other.children_.size()) return false;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->Equals(*other.children_[i])) return false;
  }
  return true;
}

uint64_t Expr::Signature() const {
  uint64_t h = Mix64(static_cast<uint64_t>(kind_));
  switch (kind_) {
    case ExprKind::kConst:
      h = HashCombine(h, static_cast<uint64_t>(const_.type()));
      h = HashCombine(h, const_.Hash());
      break;
    case ExprKind::kAttr:
      h = HashCombine(h, static_cast<uint64_t>(side_));
      h = HashCombine(h, static_cast<uint64_t>(attr_index_));
      break;
    case ExprKind::kTs:
      h = HashCombine(h, static_cast<uint64_t>(side_));
      break;
    case ExprKind::kArith:
      h = HashCombine(h, static_cast<uint64_t>(arith_op_));
      break;
    case ExprKind::kCmp:
      h = HashCombine(h, static_cast<uint64_t>(cmp_op_));
      break;
    default:
      break;
  }
  for (const ExprPtr& c : children_) h = HashCombine(h, c->Signature());
  return h;
}

ValueType Expr::InferType(const Schema& left, const Schema* right) const {
  switch (kind_) {
    case ExprKind::kConst:
      return const_.type();
    case ExprKind::kAttr: {
      const Schema* s = side_ == Side::kLeft ? &left : right;
      RUMOR_CHECK(s != nullptr) << "no schema for side in " << ToString();
      RUMOR_CHECK(attr_index_ >= 0 && attr_index_ < s->size())
          << "attribute index out of range in " << ToString();
      return s->attribute(attr_index_).type;
    }
    case ExprKind::kTs:
      return ValueType::kInt;
    case ExprKind::kArith: {
      ValueType a = children_[0]->InferType(left, right);
      ValueType b = children_[1]->InferType(left, right);
      if (a == ValueType::kInt && b == ValueType::kInt) return ValueType::kInt;
      return ValueType::kDouble;
    }
    case ExprKind::kCmp:
    case ExprKind::kAnd:
    case ExprKind::kOr:
    case ExprKind::kNot:
      return ValueType::kBool;
  }
  return ValueType::kNull;
}

std::string Expr::ToString() const {
  std::ostringstream os;
  switch (kind_) {
    case ExprKind::kConst:
      os << const_.ToString();
      break;
    case ExprKind::kAttr:
      os << (side_ == Side::kLeft ? "l." : "r.");
      if (!attr_name_.empty()) {
        os << attr_name_;
      } else {
        os << "a" << attr_index_;
      }
      break;
    case ExprKind::kTs:
      os << (side_ == Side::kLeft ? "l.ts" : "r.ts");
      break;
    case ExprKind::kArith:
      os << "(" << children_[0]->ToString() << " " << ArithOpName(arith_op_)
         << " " << children_[1]->ToString() << ")";
      break;
    case ExprKind::kCmp:
      os << "(" << children_[0]->ToString() << " " << CmpOpName(cmp_op_)
         << " " << children_[1]->ToString() << ")";
      break;
    case ExprKind::kAnd:
      os << "(" << children_[0]->ToString() << " AND "
         << children_[1]->ToString() << ")";
      break;
    case ExprKind::kOr:
      os << "(" << children_[0]->ToString() << " OR "
         << children_[1]->ToString() << ")";
      break;
    case ExprKind::kNot:
      os << "(NOT " << children_[0]->ToString() << ")";
      break;
  }
  return os.str();
}

bool ExprEquals(const ExprPtr& a, const ExprPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) {
    return Expr::IsTrivallyTrue(a) && Expr::IsTrivallyTrue(b);
  }
  return a->Equals(*b);
}

}  // namespace rumor
