// Expression trees over a (left, right) pair of tuples.
//
// Selections and schema maps on a single stream use only the left side.
// Join, sequence (;) and iterate (µ) predicates reference both sides; for µ
// rebind predicates the left side is the partially-built automaton *instance*
// (the paper's `last`), the right side the incoming event.
//
// Expressions are immutable and shared (ExprPtr). Structural equality and
// 64-bit signatures implement the "same definition" tests that m-rule
// conditions rely on (paper §2.3, §3.2).
#ifndef RUMOR_EXPR_EXPR_H_
#define RUMOR_EXPR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/tuple.h"
#include "common/value.h"

namespace rumor {

enum class Side : uint8_t { kLeft = 0, kRight = 1 };

enum class ExprKind : uint8_t {
  kConst,
  kAttr,   // attribute reference (side, index)
  kTs,     // timestamp reference (side)
  kArith,  // binary arithmetic
  kCmp,    // binary comparison -> bool
  kAnd,    // binary logical and (short-circuit)
  kOr,     // binary logical or (short-circuit)
  kNot,    // unary logical not
};

enum class ArithOp : uint8_t { kAdd, kSub, kMul, kDiv, kMod };
enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

// Evaluation context: tuples may be null when a side is absent (e.g. a
// selection predicate only binds the left side).
struct ExprContext {
  const Tuple* left = nullptr;
  const Tuple* right = nullptr;
};

class Expr {
 public:
  // --- factories -----------------------------------------------------------
  static ExprPtr Const(Value v);
  static ExprPtr ConstInt(int64_t v) { return Const(Value(v)); }
  static ExprPtr ConstBool(bool v) { return Const(Value(v)); }
  // `name` is for display only; evaluation uses the index.
  static ExprPtr Attr(Side side, int index, std::string name = "");
  static ExprPtr Ts(Side side);
  static ExprPtr Arith(ArithOp op, ExprPtr l, ExprPtr r);
  static ExprPtr Cmp(CmpOp op, ExprPtr l, ExprPtr r);
  static ExprPtr And(ExprPtr l, ExprPtr r);
  static ExprPtr Or(ExprPtr l, ExprPtr r);
  static ExprPtr Not(ExprPtr e);
  // Conjunction of all `terms` (nullptr/"true" when empty).
  static ExprPtr AndAll(const std::vector<ExprPtr>& terms);

  // --- accessors -----------------------------------------------------------
  ExprKind kind() const { return kind_; }
  const Value& const_value() const { return const_; }
  Side side() const { return side_; }
  int attr_index() const { return attr_index_; }
  const std::string& attr_name() const { return attr_name_; }
  ArithOp arith_op() const { return arith_op_; }
  CmpOp cmp_op() const { return cmp_op_; }
  int num_children() const { return static_cast<int>(children_.size()); }
  const ExprPtr& child(int i) const { return children_[i]; }

  // --- evaluation ----------------------------------------------------------
  // Tree-walking evaluation (the reference semantics; see Program for the
  // compiled form used on hot paths). AND/OR short-circuit.
  Value Eval(const ExprContext& ctx) const;
  // Evaluates and coerces to bool; non-bool results CHECK.
  bool EvalBool(const ExprContext& ctx) const;

  // --- structure -----------------------------------------------------------
  // Deep structural equality (definition identity for m-rules).
  bool Equals(const Expr& other) const;
  // Hash consistent with Equals.
  uint64_t Signature() const;
  // Result type given the input schemas (`right` may be null).
  ValueType InferType(const Schema& left, const Schema* right) const;
  // e.g. "(l.a0 = 5 AND r.a1 > l.a2)".
  std::string ToString() const;

  // True for a null or constant-true predicate (used for residuals).
  static bool IsTrivallyTrue(const ExprPtr& e);

 private:
  Expr() = default;

  ExprKind kind_ = ExprKind::kConst;
  Value const_;
  Side side_ = Side::kLeft;
  int attr_index_ = -1;
  std::string attr_name_;
  ArithOp arith_op_ = ArithOp::kAdd;
  CmpOp cmp_op_ = CmpOp::kEq;
  std::vector<ExprPtr> children_;
};

// Evaluates a possibly-null predicate: null means "true".
inline bool EvalPredicate(const ExprPtr& pred, const ExprContext& ctx) {
  return pred == nullptr || pred->EvalBool(ctx);
}

// Signature of a possibly-null predicate (0 for null).
inline uint64_t PredicateSignature(const ExprPtr& pred) {
  return pred ? pred->Signature() : 0;
}

// Deep equality of possibly-null predicates.
bool ExprEquals(const ExprPtr& a, const ExprPtr& b);

}  // namespace rumor

#endif  // RUMOR_EXPR_EXPR_H_
