#include "expr/parser_expr.h"

#include <cctype>

#include "common/str_util.h"

namespace rumor {

std::vector<ExprBinding> ExprParseContext::EffectiveBindings() const {
  if (!bindings.empty()) return bindings;
  std::vector<ExprBinding> out;
  if (left != nullptr) {
    if (left_aliases.empty()) {
      out.push_back({"", Side::kLeft, left, 0});
    }
    for (const std::string& a : left_aliases) {
      out.push_back({a, Side::kLeft, left, 0});
    }
  }
  if (right != nullptr) {
    if (right_aliases.empty()) {
      out.push_back({"", Side::kRight, right, 0});
    }
    for (const std::string& a : right_aliases) {
      out.push_back({a, Side::kRight, right, 0});
    }
  }
  return out;
}

Result<std::vector<Token>> Tokenize(const std::string& text) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.position = static_cast<int>(i);
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(text[j])) ||
                       text[j] == '_')) {
        ++j;
      }
      tok.kind = TokenKind::kIdent;
      tok.text = text.substr(i, j - i);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool is_float = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(text[j]))) ++j;
      if (j < n && text[j] == '.' && j + 1 < n &&
          std::isdigit(static_cast<unsigned char>(text[j + 1]))) {
        is_float = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(text[j]))) ++j;
      }
      std::string num = text.substr(i, j - i);
      if (is_float) {
        tok.kind = TokenKind::kFloat;
        tok.float_value = std::stod(num);
      } else {
        tok.kind = TokenKind::kInt;
        tok.int_value = std::stoll(num);
      }
      tok.text = num;
      i = j;
    } else if (c == '\'' || c == '"') {
      size_t j = i + 1;
      while (j < n && text[j] != c) ++j;
      if (j >= n) {
        return Status::InvalidArgument(
            StrCat("unterminated string at offset ", i));
      }
      tok.kind = TokenKind::kString;
      tok.text = text.substr(i + 1, j - i - 1);
      i = j + 1;
    } else {
      // Two-character operators first.
      std::string two = text.substr(i, 2);
      if (two == "!=" || two == "<=" || two == ">=" || two == "<>") {
        tok.kind = TokenKind::kSymbol;
        tok.text = two == "<>" ? "!=" : two;
        i += 2;
      } else {
        static const std::string kSingles = "()=<>+-*/%,.;[]:";
        if (kSingles.find(c) == std::string::npos) {
          return Status::InvalidArgument(
              StrCat("unexpected character '", std::string(1, c),
                     "' at offset ", i));
        }
        tok.kind = TokenKind::kSymbol;
        tok.text = std::string(1, c);
        ++i;
      }
    }
    tokens.push_back(std::move(tok));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.position = static_cast<int>(n);
  tokens.push_back(end);
  return tokens;
}

namespace {

bool IsKeyword(const Token& t, const char* kw) {
  return t.kind == TokenKind::kIdent && ToLower(t.text) == ToLower(kw);
}

bool IsSymbol(const Token& t, const char* s) {
  return t.kind == TokenKind::kSymbol && t.text == s;
}

// Recursive-descent parser over a token span.
class ExprParser {
 public:
  ExprParser(const std::vector<Token>& tokens, size_t* pos,
             const ExprParseContext& ctx)
      : tokens_(tokens), pos_(pos), ctx_(ctx) {}

  Result<ExprPtr> ParseOr() {
    auto l = ParseAnd();
    if (!l.ok()) return l;
    ExprPtr acc = std::move(l).value();
    while (IsKeyword(Peek(), "or")) {
      Advance();
      auto r = ParseAnd();
      if (!r.ok()) return r;
      acc = Expr::Or(acc, std::move(r).value());
    }
    return acc;
  }

 private:
  const Token& Peek() const { return tokens_[*pos_]; }
  void Advance() { ++*pos_; }

  Status Error(const std::string& msg) const {
    return Status::InvalidArgument(
        StrCat(msg, " at offset ", Peek().position, " (near '", Peek().text,
               "')"));
  }

  Result<ExprPtr> ParseAnd() {
    auto l = ParseUnary();
    if (!l.ok()) return l;
    ExprPtr acc = std::move(l).value();
    while (IsKeyword(Peek(), "and")) {
      Advance();
      auto r = ParseUnary();
      if (!r.ok()) return r;
      acc = Expr::And(acc, std::move(r).value());
    }
    return acc;
  }

  Result<ExprPtr> ParseUnary() {
    if (IsKeyword(Peek(), "not")) {
      Advance();
      auto c = ParseUnary();
      if (!c.ok()) return c;
      return Expr::Not(std::move(c).value());
    }
    return ParseCmp();
  }

  Result<ExprPtr> ParseCmp() {
    auto l = ParseAdd();
    if (!l.ok()) return l;
    const Token& t = Peek();
    CmpOp op;
    if (IsSymbol(t, "=")) {
      op = CmpOp::kEq;
    } else if (IsSymbol(t, "!=")) {
      op = CmpOp::kNe;
    } else if (IsSymbol(t, "<")) {
      op = CmpOp::kLt;
    } else if (IsSymbol(t, "<=")) {
      op = CmpOp::kLe;
    } else if (IsSymbol(t, ">")) {
      op = CmpOp::kGt;
    } else if (IsSymbol(t, ">=")) {
      op = CmpOp::kGe;
    } else {
      return l;
    }
    Advance();
    auto r = ParseAdd();
    if (!r.ok()) return r;
    return Expr::Cmp(op, std::move(l).value(), std::move(r).value());
  }

  Result<ExprPtr> ParseAdd() {
    auto l = ParseMul();
    if (!l.ok()) return l;
    ExprPtr acc = std::move(l).value();
    while (IsSymbol(Peek(), "+") || IsSymbol(Peek(), "-")) {
      ArithOp op = Peek().text == "+" ? ArithOp::kAdd : ArithOp::kSub;
      Advance();
      auto r = ParseMul();
      if (!r.ok()) return r;
      acc = Expr::Arith(op, acc, std::move(r).value());
    }
    return acc;
  }

  Result<ExprPtr> ParseMul() {
    auto l = ParseAtom();
    if (!l.ok()) return l;
    ExprPtr acc = std::move(l).value();
    while (IsSymbol(Peek(), "*") || IsSymbol(Peek(), "/") ||
           IsSymbol(Peek(), "%")) {
      ArithOp op = Peek().text == "*"
                       ? ArithOp::kMul
                       : (Peek().text == "/" ? ArithOp::kDiv : ArithOp::kMod);
      Advance();
      auto r = ParseAtom();
      if (!r.ok()) return r;
      acc = Expr::Arith(op, acc, std::move(r).value());
    }
    return acc;
  }

  Result<ExprPtr> ParseAtom() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kInt: {
        int64_t v = t.int_value;
        Advance();
        return Expr::ConstInt(v);
      }
      case TokenKind::kFloat: {
        double v = t.float_value;
        Advance();
        return Expr::Const(Value(v));
      }
      case TokenKind::kString: {
        std::string v = t.text;
        Advance();
        return Expr::Const(Value(std::move(v)));
      }
      case TokenKind::kSymbol:
        if (t.text == "(") {
          Advance();
          auto e = ParseOr();
          if (!e.ok()) return e;
          if (!IsSymbol(Peek(), ")")) return Error("expected ')'");
          Advance();
          return e;
        }
        if (t.text == "-") {  // unary minus
          Advance();
          auto e = ParseAtom();
          if (!e.ok()) return e;
          return Expr::Arith(ArithOp::kSub, Expr::ConstInt(0),
                             std::move(e).value());
        }
        return Error("expected expression");
      case TokenKind::kIdent: {
        if (IsKeyword(t, "true")) {
          Advance();
          return Expr::ConstBool(true);
        }
        if (IsKeyword(t, "false")) {
          Advance();
          return Expr::ConstBool(false);
        }
        std::string first = t.text;
        Advance();
        std::string attr = first;
        bool qualified = false;
        if (IsSymbol(Peek(), ".")) {
          Advance();
          if (Peek().kind != TokenKind::kIdent) {
            return Error("expected attribute name after '.'");
          }
          attr = Peek().text;
          qualified = true;
          Advance();
        }
        return Resolve(qualified ? first : "", attr);
      }
      default:
        return Error("unexpected end of expression");
    }
  }

  // Resolves [qualifier.]attr to an Attr/Ts node via the binding list.
  Result<ExprPtr> Resolve(const std::string& qualifier,
                          const std::string& attr) {
    const std::vector<ExprBinding> bindings = ctx_.EffectiveBindings();
    auto make = [&](const ExprBinding& b) -> Result<ExprPtr> {
      if (ToLower(attr) == "ts") return Expr::Ts(b.side);
      auto idx = b.schema->IndexOf(attr);
      if (!idx.has_value()) {
        return Status::NotFound(StrCat("unknown attribute '", attr,
                                       "' in binding '", b.alias, "'"));
      }
      return Expr::Attr(b.side, b.offset + *idx, attr);
    };
    if (!qualifier.empty()) {
      for (const ExprBinding& b : bindings) {
        if (ToLower(b.alias) == ToLower(qualifier)) return make(b);
      }
      // Fallback: schemas derived from concatenations name attributes with
      // embedded dots (e.g. "last.a3"); try the joined spelling.
      const std::string joined = qualifier + "." + attr;
      for (const ExprBinding& b : bindings) {
        if (auto idx = b.schema->IndexOf(joined)) {
          return Expr::Attr(b.side, b.offset + *idx, joined);
        }
      }
      return Status::NotFound(
          StrCat("unknown stream qualifier '", qualifier, "'"));
    }
    // Bare name: first binding that knows the attribute wins.
    for (const ExprBinding& b : bindings) {
      if (ToLower(attr) == "ts") return Expr::Ts(b.side);
      if (b.schema->IndexOf(attr).has_value()) return make(b);
    }
    return Status::NotFound(StrCat("unknown attribute '", attr, "'"));
  }

  const std::vector<Token>& tokens_;
  size_t* pos_;
  const ExprParseContext& ctx_;
};

}  // namespace

Result<ExprPtr> ParseExprTokens(const std::vector<Token>& tokens, size_t* pos,
                                const ExprParseContext& ctx) {
  ExprParser parser(tokens, pos, ctx);
  return parser.ParseOr();
}

Result<ExprPtr> ParseExpr(const std::string& text,
                          const ExprParseContext& ctx) {
  auto tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  size_t pos = 0;
  auto e = ParseExprTokens(tokens.value(), &pos, ctx);
  if (!e.ok()) return e;
  if (tokens.value()[pos].kind != TokenKind::kEnd) {
    return Status::InvalidArgument(
        StrCat("trailing input at offset ", tokens.value()[pos].position));
  }
  return e;
}

}  // namespace rumor
