// Textual expression syntax + the lexer shared with the RQL query parser.
//
//   expr  := or ;  or := and (OR and)* ;  and := unary (AND unary)*
//   unary := NOT unary | cmp
//   cmp   := add ((= | != | < | <= | > | >=) add)?
//   add   := mul ((+|-) mul)* ;  mul := atom ((*|/|%) atom)*
//   atom  := int | float | 'string' | TRUE | FALSE | '(' expr ')' | ref
//   ref   := [qualifier '.'] attr        (attr may be `ts`)
//
// Qualifiers resolve through ExprParseContext aliases, e.g. `S.a0 = T.a0`
// with S aliased to the left side and T to the right, or `last.a1 < a1` in a
// µ rebind predicate (`last` = left = the partial match instance). Bare
// names resolve against the left schema first, then the right.
#ifndef RUMOR_EXPR_PARSER_EXPR_H_
#define RUMOR_EXPR_PARSER_EXPR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "expr/expr.h"

namespace rumor {

enum class TokenKind : uint8_t {
  kEnd,
  kIdent,
  kInt,
  kFloat,
  kString,
  kSymbol,  // one of ( ) , . = != < <= > >= + - * / % ; [ ]
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     // identifier / symbol spelling / string body
  int64_t int_value = 0;
  double float_value = 0.0;
  int position = 0;     // byte offset, for error messages
};

// Splits `text` into tokens; returns InvalidArgument on bad characters or
// unterminated strings.
Result<std::vector<Token>> Tokenize(const std::string& text);

// A named view into one side's schema with an attribute-index offset.
// Offsets support composite tuples: a µ instance is the concatenation of the
// start event and the last event, so the alias `last` binds to the right-hand
// part of the instance via offset = |start schema|.
struct ExprBinding {
  std::string alias;  // case-insensitive qualifier, e.g. "S", "T", "last"
  Side side = Side::kLeft;
  const Schema* schema = nullptr;
  int offset = 0;  // added to resolved attribute indexes
};

// Name-resolution context for expression parsing. Either set `bindings`
// explicitly, or use the simple left/right fields (which are translated into
// bindings internally). Bare names resolve against bindings in order.
struct ExprParseContext {
  const Schema* left = nullptr;
  const Schema* right = nullptr;
  std::vector<std::string> left_aliases;   // case-insensitive
  std::vector<std::string> right_aliases;
  std::vector<ExprBinding> bindings;  // when non-empty, takes precedence

  // The effective binding list (explicit bindings, or derived from
  // left/right).
  std::vector<ExprBinding> EffectiveBindings() const;
};

// Parses a complete expression (entire string must be consumed).
Result<ExprPtr> ParseExpr(const std::string& text,
                          const ExprParseContext& ctx);

// Parses an expression from a token stream starting at *pos; leaves *pos at
// the first unconsumed token. Used by the query parser.
Result<ExprPtr> ParseExprTokens(const std::vector<Token>& tokens, size_t* pos,
                                const ExprParseContext& ctx);

}  // namespace rumor

#endif  // RUMOR_EXPR_PARSER_EXPR_H_
