#include "expr/program.h"

#include <sstream>

namespace rumor {

Program Program::Compile(const ExprPtr& expr) {
  Program p;
  if (expr == nullptr) {
    p.constants_.push_back(Value(true));
    p.code_.push_back({OpCode::kPushConst, Side::kLeft, 0});
  } else {
    p.Emit(expr);
  }
  p.stack_.reserve(16);
  return p;
}

void Program::Emit(const ExprPtr& e) {
  switch (e->kind()) {
    case ExprKind::kConst: {
      constants_.push_back(e->const_value());
      code_.push_back({OpCode::kPushConst, Side::kLeft,
                       static_cast<int32_t>(constants_.size() - 1)});
      return;
    }
    case ExprKind::kAttr:
      code_.push_back({OpCode::kPushAttr, e->side(),
                       static_cast<int32_t>(e->attr_index())});
      return;
    case ExprKind::kTs:
      code_.push_back({OpCode::kPushTs, e->side(), 0});
      return;
    case ExprKind::kArith: {
      Emit(e->child(0));
      Emit(e->child(1));
      OpCode op = OpCode::kAdd;
      switch (e->arith_op()) {
        case ArithOp::kAdd: op = OpCode::kAdd; break;
        case ArithOp::kSub: op = OpCode::kSub; break;
        case ArithOp::kMul: op = OpCode::kMul; break;
        case ArithOp::kDiv: op = OpCode::kDiv; break;
        case ArithOp::kMod: op = OpCode::kMod; break;
      }
      code_.push_back({op, Side::kLeft, 0});
      return;
    }
    case ExprKind::kCmp: {
      Emit(e->child(0));
      Emit(e->child(1));
      OpCode op = OpCode::kAdd;
      switch (e->cmp_op()) {
        case CmpOp::kEq: op = OpCode::kEq; break;
        case CmpOp::kNe: op = OpCode::kNe; break;
        case CmpOp::kLt: op = OpCode::kLt; break;
        case CmpOp::kLe: op = OpCode::kLe; break;
        case CmpOp::kGt: op = OpCode::kGt; break;
        case CmpOp::kGe: op = OpCode::kGe; break;
      }
      code_.push_back({op, Side::kLeft, 0});
      return;
    }
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      Emit(e->child(0));
      OpCode jmp = e->kind() == ExprKind::kAnd ? OpCode::kJumpIfFalsePeek
                                               : OpCode::kJumpIfTruePeek;
      size_t patch = code_.size();
      code_.push_back({jmp, Side::kLeft, 0});
      Emit(e->child(1));
      code_[patch].arg = static_cast<int32_t>(code_.size());
      return;
    }
    case ExprKind::kNot:
      Emit(e->child(0));
      code_.push_back({OpCode::kNot, Side::kLeft, 0});
      return;
  }
}

Value Program::Eval(const ExprContext& ctx) const {
  std::vector<Value>& st = stack_;
  st.clear();
  size_t pc = 0;
  const size_t n = code_.size();
  while (pc < n) {
    const Instruction& ins = code_[pc];
    switch (ins.op) {
      case OpCode::kPushConst:
        st.push_back(constants_[ins.arg]);
        ++pc;
        break;
      case OpCode::kPushAttr: {
        const Tuple* t = ins.side == Side::kLeft ? ctx.left : ctx.right;
        RUMOR_DCHECK(t != nullptr);
        st.push_back(t->at(ins.arg));
        ++pc;
        break;
      }
      case OpCode::kPushTs: {
        const Tuple* t = ins.side == Side::kLeft ? ctx.left : ctx.right;
        RUMOR_DCHECK(t != nullptr);
        st.push_back(Value(t->ts()));
        ++pc;
        break;
      }
      case OpCode::kJumpIfFalsePeek: {
        RUMOR_DCHECK(!st.empty());
        const Value& top = st.back();
        RUMOR_CHECK(top.type() == ValueType::kBool);
        if (!top.AsBool()) {
          pc = static_cast<size_t>(ins.arg);
        } else {
          st.pop_back();
          ++pc;
        }
        break;
      }
      case OpCode::kJumpIfTruePeek: {
        RUMOR_DCHECK(!st.empty());
        const Value& top = st.back();
        RUMOR_CHECK(top.type() == ValueType::kBool);
        if (top.AsBool()) {
          pc = static_cast<size_t>(ins.arg);
        } else {
          st.pop_back();
          ++pc;
        }
        break;
      }
      case OpCode::kNot: {
        RUMOR_DCHECK(!st.empty());
        Value v = st.back();
        st.pop_back();
        RUMOR_CHECK(v.type() == ValueType::kBool);
        st.push_back(Value(!v.AsBool()));
        ++pc;
        break;
      }
      default: {
        RUMOR_DCHECK(st.size() >= 2);
        Value b = std::move(st.back());
        st.pop_back();
        Value a = std::move(st.back());
        st.pop_back();
        switch (ins.op) {
          case OpCode::kAdd: st.push_back(ValueAdd(a, b)); break;
          case OpCode::kSub: st.push_back(ValueSub(a, b)); break;
          case OpCode::kMul: st.push_back(ValueMul(a, b)); break;
          case OpCode::kDiv: st.push_back(ValueDiv(a, b)); break;
          case OpCode::kMod: st.push_back(ValueMod(a, b)); break;
          case OpCode::kEq: st.push_back(Value(a.Compare(b) == 0)); break;
          case OpCode::kNe: st.push_back(Value(a.Compare(b) != 0)); break;
          case OpCode::kLt: st.push_back(Value(a.Compare(b) < 0)); break;
          case OpCode::kLe: st.push_back(Value(a.Compare(b) <= 0)); break;
          case OpCode::kGt: st.push_back(Value(a.Compare(b) > 0)); break;
          case OpCode::kGe: st.push_back(Value(a.Compare(b) >= 0)); break;
          default: RUMOR_CHECK(false) << "bad opcode";
        }
        ++pc;
        break;
      }
    }
  }
  RUMOR_CHECK(st.size() == 1) << "program left " << st.size() << " values";
  return st.back();
}

bool Program::EvalBool(const ExprContext& ctx) const {
  Value v = Eval(ctx);
  RUMOR_CHECK(v.type() == ValueType::kBool) << "program result not bool";
  return v.AsBool();
}

std::string Program::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < code_.size(); ++i) {
    const Instruction& ins = code_[i];
    os << i << ": op=" << static_cast<int>(ins.op)
       << " side=" << static_cast<int>(ins.side) << " arg=" << ins.arg
       << "\n";
  }
  return os.str();
}

}  // namespace rumor
