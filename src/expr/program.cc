#include "expr/program.h"

#include <sstream>

namespace rumor {

namespace {

// Process-wide fast-path switch (ablation benchmarks / equivalence tests).
bool g_vectorization_enabled = true;

EvalScratch& ThreadScratch() {
  static thread_local EvalScratch scratch;
  return scratch;
}

}  // namespace

void Program::SetVectorizationEnabled(bool enabled) {
  g_vectorization_enabled = enabled;
}

bool Program::vectorization_enabled() { return g_vectorization_enabled; }

Program Program::Compile(const ExprPtr& expr) {
  Program p;
  if (expr == nullptr) {
    p.constants_.push_back(Value(true));
    p.code_.push_back({OpCode::kPushConst, Side::kLeft, 0});
  } else {
    p.Emit(expr);
  }
  if (g_vectorization_enabled) p.Specialize();
  return p;
}

void Program::Emit(const ExprPtr& e) {
  switch (e->kind()) {
    case ExprKind::kConst: {
      constants_.push_back(e->const_value());
      code_.push_back({OpCode::kPushConst, Side::kLeft,
                       static_cast<int32_t>(constants_.size() - 1)});
      return;
    }
    case ExprKind::kAttr:
      code_.push_back({OpCode::kPushAttr, e->side(),
                       static_cast<int32_t>(e->attr_index())});
      return;
    case ExprKind::kTs:
      code_.push_back({OpCode::kPushTs, e->side(), 0});
      return;
    case ExprKind::kArith: {
      Emit(e->child(0));
      Emit(e->child(1));
      OpCode op = OpCode::kAdd;
      switch (e->arith_op()) {
        case ArithOp::kAdd: op = OpCode::kAdd; break;
        case ArithOp::kSub: op = OpCode::kSub; break;
        case ArithOp::kMul: op = OpCode::kMul; break;
        case ArithOp::kDiv: op = OpCode::kDiv; break;
        case ArithOp::kMod: op = OpCode::kMod; break;
      }
      code_.push_back({op, Side::kLeft, 0});
      return;
    }
    case ExprKind::kCmp: {
      Emit(e->child(0));
      Emit(e->child(1));
      OpCode op = OpCode::kAdd;
      switch (e->cmp_op()) {
        case CmpOp::kEq: op = OpCode::kEq; break;
        case CmpOp::kNe: op = OpCode::kNe; break;
        case CmpOp::kLt: op = OpCode::kLt; break;
        case CmpOp::kLe: op = OpCode::kLe; break;
        case CmpOp::kGt: op = OpCode::kGt; break;
        case CmpOp::kGe: op = OpCode::kGe; break;
      }
      code_.push_back({op, Side::kLeft, 0});
      return;
    }
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      Emit(e->child(0));
      OpCode jmp = e->kind() == ExprKind::kAnd ? OpCode::kJumpIfFalsePeek
                                               : OpCode::kJumpIfTruePeek;
      size_t patch = code_.size();
      code_.push_back({jmp, Side::kLeft, 0});
      Emit(e->child(1));
      code_[patch].arg = static_cast<int32_t>(code_.size());
      return;
    }
    case ExprKind::kNot:
      Emit(e->child(0));
      code_.push_back({OpCode::kNot, Side::kLeft, 0});
      return;
  }
}

void Program::Specialize() {
  // Abstract kinds for the compile-time type simulation. Bools are lowered
  // to int64 0/1 at runtime; the simulation only tracks bool-ness where the
  // generic evaluator enforces it (kNot, jumps, and the final EvalBool
  // coercion all CHECK for kBool).
  enum class Kind : uint8_t { kInt, kBool };
  struct Join {  // expected stack state at a jump target
    int depth;
  };

  int_constants_.clear();
  int_constants_.reserve(constants_.size());
  for (const Value& c : constants_) {
    if (c.type() == ValueType::kInt) {
      int_constants_.push_back(c.AsInt());
    } else if (c.type() == ValueType::kBool) {
      int_constants_.push_back(c.AsBool() ? 1 : 0);
    } else {
      return;  // double/string/null constant: stay generic
    }
  }

  std::vector<Kind> sim;
  // One expected-join record per pc (depth, -1 = none). Join points arise
  // only from short-circuit jumps; both paths arrive with the same depth and
  // a bool on top, which the simulation verifies.
  std::vector<int> join_depth(code_.size() + 1, -1);
  for (size_t pc = 0; pc < code_.size(); ++pc) {
    if (join_depth[pc] >= 0) {
      if (static_cast<int>(sim.size()) != join_depth[pc]) return;
      if (sim.empty() || sim.back() != Kind::kBool) return;
    }
    const Instruction& ins = code_[pc];
    switch (ins.op) {
      case OpCode::kPushConst:
        sim.push_back(constants_[ins.arg].type() == ValueType::kBool
                          ? Kind::kBool
                          : Kind::kInt);
        break;
      case OpCode::kPushAttr:  // int assumed; guarded per tuple at runtime
      case OpCode::kPushTs:
        sim.push_back(Kind::kInt);
        break;
      case OpCode::kAdd:
      case OpCode::kSub:
      case OpCode::kMul:
      case OpCode::kDiv:
      case OpCode::kMod: {
        // Generic semantics keep int op int in int64; a bool operand would
        // promote to double, which the typed path cannot represent.
        if (sim.size() < 2) return;
        Kind b = sim.back();
        sim.pop_back();
        Kind a = sim.back();
        if (a != Kind::kInt || b != Kind::kInt) return;
        sim.back() = Kind::kInt;
        break;
      }
      case OpCode::kEq:
      case OpCode::kNe:
      case OpCode::kLt:
      case OpCode::kLe:
      case OpCode::kGt:
      case OpCode::kGe:
        // int/bool operands in any mix compare numerically; lowering bools
        // to 0/1 int64 preserves the ordering exactly.
        if (sim.size() < 2) return;
        sim.pop_back();
        sim.back() = Kind::kBool;
        break;
      case OpCode::kNot:
        if (sim.empty() || sim.back() != Kind::kBool) return;
        break;
      case OpCode::kJumpIfFalsePeek:
      case OpCode::kJumpIfTruePeek: {
        if (sim.empty() || sim.back() != Kind::kBool) return;
        const size_t target = static_cast<size_t>(ins.arg);
        if (target <= pc || target > code_.size()) return;
        // Taken path keeps the bool top; record the expected join state.
        if (target < join_depth.size()) {
          join_depth[target] = static_cast<int>(sim.size());
        }
        sim.pop_back();  // fall-through pops
        break;
      }
    }
    if (static_cast<int>(sim.size()) > kMaxTypedDepth) return;
  }
  if (sim.size() != 1 || sim.back() != Kind::kBool) return;
  int_specialized_ = true;

  // Fused shape: exactly [PushAttr(left), PushConst, cmp].
  if (code_.size() == 3 && code_[0].op == OpCode::kPushAttr &&
      code_[0].side == Side::kLeft && code_[1].op == OpCode::kPushConst &&
      code_[2].op >= OpCode::kEq && code_[2].op <= OpCode::kGe) {
    simple_cmp_ = true;
    simple_attr_ = code_[0].arg;
    simple_op_ = code_[2].op;
    simple_const_ = int_constants_[code_[1].arg];
  }
}

Value Program::Eval(const ExprContext& ctx, EvalScratch& scratch) const {
  return EvalGeneric(ctx, scratch);
}

Value Program::Eval(const ExprContext& ctx) const {
  return EvalGeneric(ctx, ThreadScratch());
}

Value Program::EvalGeneric(const ExprContext& ctx,
                           EvalScratch& scratch) const {
  std::vector<Value>& st = scratch.stack;
  st.clear();
  size_t pc = 0;
  const size_t n = code_.size();
  while (pc < n) {
    const Instruction& ins = code_[pc];
    switch (ins.op) {
      case OpCode::kPushConst:
        st.push_back(constants_[ins.arg]);
        ++pc;
        break;
      case OpCode::kPushAttr: {
        const Tuple* t = ins.side == Side::kLeft ? ctx.left : ctx.right;
        RUMOR_DCHECK(t != nullptr);
        st.push_back(t->at(ins.arg));
        ++pc;
        break;
      }
      case OpCode::kPushTs: {
        const Tuple* t = ins.side == Side::kLeft ? ctx.left : ctx.right;
        RUMOR_DCHECK(t != nullptr);
        st.push_back(Value(t->ts()));
        ++pc;
        break;
      }
      case OpCode::kJumpIfFalsePeek: {
        RUMOR_DCHECK(!st.empty());
        const Value& top = st.back();
        RUMOR_CHECK(top.type() == ValueType::kBool);
        if (!top.AsBool()) {
          pc = static_cast<size_t>(ins.arg);
        } else {
          st.pop_back();
          ++pc;
        }
        break;
      }
      case OpCode::kJumpIfTruePeek: {
        RUMOR_DCHECK(!st.empty());
        const Value& top = st.back();
        RUMOR_CHECK(top.type() == ValueType::kBool);
        if (top.AsBool()) {
          pc = static_cast<size_t>(ins.arg);
        } else {
          st.pop_back();
          ++pc;
        }
        break;
      }
      case OpCode::kNot: {
        RUMOR_DCHECK(!st.empty());
        Value v = st.back();
        st.pop_back();
        RUMOR_CHECK(v.type() == ValueType::kBool);
        st.push_back(Value(!v.AsBool()));
        ++pc;
        break;
      }
      default: {
        RUMOR_DCHECK(st.size() >= 2);
        Value b = st.back();
        st.pop_back();
        Value a = st.back();
        st.pop_back();
        switch (ins.op) {
          case OpCode::kAdd: st.push_back(ValueAdd(a, b)); break;
          case OpCode::kSub: st.push_back(ValueSub(a, b)); break;
          case OpCode::kMul: st.push_back(ValueMul(a, b)); break;
          case OpCode::kDiv: st.push_back(ValueDiv(a, b)); break;
          case OpCode::kMod: st.push_back(ValueMod(a, b)); break;
          case OpCode::kEq: st.push_back(Value(a.Compare(b) == 0)); break;
          case OpCode::kNe: st.push_back(Value(a.Compare(b) != 0)); break;
          case OpCode::kLt: st.push_back(Value(a.Compare(b) < 0)); break;
          case OpCode::kLe: st.push_back(Value(a.Compare(b) <= 0)); break;
          case OpCode::kGt: st.push_back(Value(a.Compare(b) > 0)); break;
          case OpCode::kGe: st.push_back(Value(a.Compare(b) >= 0)); break;
          default: RUMOR_CHECK(false) << "bad opcode";
        }
        ++pc;
        break;
      }
    }
  }
  RUMOR_CHECK(st.size() == 1) << "program left " << st.size() << " values";
  return st.back();
}

bool Program::EvalBoolGeneric(const ExprContext& ctx) const {
  RUMOR_METRIC(++internal::tl_program_counters.generic);
  Value v = EvalGeneric(ctx, ThreadScratch());
  RUMOR_CHECK(v.type() == ValueType::kBool) << "program result not bool";
  return v.AsBool();
}

bool Program::EvalBoolTyped(const Tuple* left, const Tuple* right,
                            bool* result) const {
  int64_t st[kMaxTypedDepth];
  int sp = 0;
  size_t pc = 0;
  const size_t n = code_.size();
  const Instruction* code = code_.data();
  while (pc < n) {
    const Instruction& ins = code[pc];
    switch (ins.op) {
      case OpCode::kPushConst:
        st[sp++] = int_constants_[ins.arg];
        ++pc;
        break;
      case OpCode::kPushAttr: {
        const Tuple* t = ins.side == Side::kLeft ? left : right;
        RUMOR_DCHECK(t != nullptr);
        const Value& v = t->at(ins.arg);
        if (v.type() != ValueType::kInt) {
          RUMOR_METRIC(++internal::tl_program_counters.typed_fallbacks);
          return false;  // generic fallback
        }
        st[sp++] = v.AsIntUnchecked();
        ++pc;
        break;
      }
      case OpCode::kPushTs: {
        const Tuple* t = ins.side == Side::kLeft ? left : right;
        RUMOR_DCHECK(t != nullptr);
        st[sp++] = t->ts();
        ++pc;
        break;
      }
      case OpCode::kJumpIfFalsePeek:
        if (st[sp - 1] == 0) {
          pc = static_cast<size_t>(ins.arg);
        } else {
          --sp;
          ++pc;
        }
        break;
      case OpCode::kJumpIfTruePeek:
        if (st[sp - 1] != 0) {
          pc = static_cast<size_t>(ins.arg);
        } else {
          --sp;
          ++pc;
        }
        break;
      case OpCode::kNot:
        st[sp - 1] = st[sp - 1] == 0 ? 1 : 0;
        ++pc;
        break;
      default: {
        const int64_t b = st[--sp];
        int64_t& a = st[sp - 1];
        switch (ins.op) {
          case OpCode::kAdd: a = a + b; break;
          case OpCode::kSub: a = a - b; break;
          case OpCode::kMul: a = a * b; break;
          case OpCode::kDiv:
            RUMOR_CHECK(b != 0) << "integer division by zero";
            a = a / b;
            break;
          case OpCode::kMod:
            RUMOR_CHECK(b != 0) << "modulo by zero";
            a = a % b;
            break;
          case OpCode::kEq: a = a == b ? 1 : 0; break;
          case OpCode::kNe: a = a != b ? 1 : 0; break;
          case OpCode::kLt: a = a < b ? 1 : 0; break;
          case OpCode::kLe: a = a <= b ? 1 : 0; break;
          case OpCode::kGt: a = a > b ? 1 : 0; break;
          case OpCode::kGe: a = a >= b ? 1 : 0; break;
          default: RUMOR_CHECK(false) << "bad opcode";
        }
        ++pc;
        break;
      }
    }
  }
  *result = st[sp - 1] != 0;
  RUMOR_METRIC(++internal::tl_program_counters.typed);
  return true;
}

void Program::EvalBoolBatch(const ChannelTuple* tuples, size_t n,
                            BitVector& matches) const {
  matches.AssignZero(static_cast<int>(n));
  if (simple_cmp_) {
    for (size_t i = 0; i < n; ++i) {
      const Value& v = tuples[i].tuple.at(simple_attr_);
      bool m;
      if (v.type() == ValueType::kInt) {
        RUMOR_METRIC(++internal::tl_program_counters.fused);
        m = CompareSimple(v.AsIntUnchecked());
      } else {
        m = EvalBoolGeneric(ExprContext{&tuples[i].tuple, nullptr});
      }
      if (m) matches.Set(static_cast<int>(i));
    }
    return;
  }
  if (int_specialized_) {
    for (size_t i = 0; i < n; ++i) {
      bool m;
      if (!EvalBoolTyped(&tuples[i].tuple, nullptr, &m)) {
        m = EvalBoolGeneric(ExprContext{&tuples[i].tuple, nullptr});
      }
      if (m) matches.Set(static_cast<int>(i));
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    if (EvalBoolGeneric(ExprContext{&tuples[i].tuple, nullptr})) {
      matches.Set(static_cast<int>(i));
    }
  }
}

void Program::EvalBoolBatchGated(const ChannelTuple* tuples, size_t n,
                                 int slot, BitVector& matches) const {
  matches.AssignZero(static_cast<int>(n));
  for (size_t i = 0; i < n; ++i) {
    if (!tuples[i].membership.Test(slot)) continue;
    if (EvalBool(ExprContext{&tuples[i].tuple, nullptr})) {
      matches.Set(static_cast<int>(i));
    }
  }
}

std::string Program::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < code_.size(); ++i) {
    const Instruction& ins = code_[i];
    os << i << ": op=" << static_cast<int>(ins.op)
       << " side=" << static_cast<int>(ins.side) << " arg=" << ins.arg
       << "\n";
  }
  return os.str();
}

}  // namespace rumor
