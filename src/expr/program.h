// Program: expressions compiled to a flat postfix instruction sequence with
// short-circuit jumps. Hot operators (predicate index residuals, join and
// pattern predicates) evaluate Programs instead of walking trees; both forms
// have identical semantics (property-tested).
#ifndef RUMOR_EXPR_PROGRAM_H_
#define RUMOR_EXPR_PROGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "expr/expr.h"

namespace rumor {

enum class OpCode : uint8_t {
  kPushConst,   // push constants_[arg]
  kPushAttr,    // push tuple(side)[arg]
  kPushTs,      // push tuple(side).ts
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kNot,
  // Short-circuit jumps: if top of stack is false/true, jump to arg (keeping
  // the top as the result); otherwise pop and fall through.
  kJumpIfFalsePeek,
  kJumpIfTruePeek,
};

struct Instruction {
  OpCode op;
  Side side = Side::kLeft;
  int32_t arg = 0;
};

class Program {
 public:
  Program() = default;

  // Compiles `expr`; a null expr compiles to a constant-true program.
  static Program Compile(const ExprPtr& expr);

  // Evaluates against `ctx`. The scratch stack is reused across calls.
  Value Eval(const ExprContext& ctx) const;
  // Evaluates and coerces to bool (CHECKs on non-bool results).
  bool EvalBool(const ExprContext& ctx) const;

  int size() const { return static_cast<int>(code_.size()); }
  bool empty() const { return code_.empty(); }
  std::string ToString() const;

 private:
  void Emit(const ExprPtr& expr);

  std::vector<Instruction> code_;
  std::vector<Value> constants_;
  mutable std::vector<Value> stack_;  // scratch; Programs are not shared
                                      // across threads
};

}  // namespace rumor

#endif  // RUMOR_EXPR_PROGRAM_H_
