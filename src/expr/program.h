// Program: expressions compiled to a flat postfix instruction sequence with
// short-circuit jumps. Hot operators (predicate index residuals, join and
// pattern predicates) evaluate Programs instead of walking trees; both forms
// have identical semantics (property-tested).
//
// Threading contract: a Program is immutable after Compile and carries no
// mutable state — one Program may be shared by any number of threads. Each
// evaluation needs scratch space; callers either pass an explicit
// EvalScratch (parallel executors: one per thread) or use the convenience
// overloads, which borrow a thread_local scratch.
//
// Fast paths (selected automatically at Compile):
//  * int-typed register evaluation — when the program provably computes a
//    boolean over int attributes and int/bool constants (type-simulated at
//    compile time), EvalBool runs on a raw int64 stack with no Value
//    boxing. A per-attribute runtime tag check guards the proof (the shape
//    analysis cannot see schemas); a non-int attribute falls back to the
//    generic evaluator for that tuple, so semantics are byte-identical.
//  * fused single-comparison — programs of the shape `attr <op> const-int`
//    skip interpreter dispatch entirely in EvalBoolBatch.
#ifndef RUMOR_EXPR_PROGRAM_H_
#define RUMOR_EXPR_PROGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitvector.h"
#include "common/metrics.h"
#include "expr/expr.h"
#include "stream/channel.h"

namespace rumor {

// Fast-path efficacy counters for boolean predicate evaluation, summed over
// every Program on the thread (Programs are immutable and shared, so the
// counters live beside the thread's EvalScratch rather than in the Program).
// `typed_fallbacks` counts typed evaluations that bailed to the generic
// evaluator on a non-int attribute (those evals are also in `generic`).
struct ProgramCounters {
  int64_t fused = 0;    // fused attr-op-const comparisons
  int64_t typed = 0;    // int64-register evaluations that completed
  int64_t generic = 0;  // Value-stack boolean evaluations
  int64_t typed_fallbacks = 0;

  int64_t total() const { return fused + typed + generic; }
  // Share of boolean evaluations served without Value boxing.
  double vectorized_share() const {
    const int64_t t = total();
    return t > 0 ? static_cast<double>(fused + typed) / t : 0.0;
  }
};

namespace internal {
inline thread_local ProgramCounters tl_program_counters;
}  // namespace internal

enum class OpCode : uint8_t {
  kPushConst,   // push constants_[arg]
  kPushAttr,    // push tuple(side)[arg]
  kPushTs,      // push tuple(side).ts
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kNot,
  // Short-circuit jumps: if top of stack is false/true, jump to arg (keeping
  // the top as the result); otherwise pop and fall through.
  kJumpIfFalsePeek,
  kJumpIfTruePeek,
};

struct Instruction {
  OpCode op;
  Side side = Side::kLeft;
  int32_t arg = 0;
};

// Reusable evaluation scratch; one per evaluating thread.
struct EvalScratch {
  std::vector<Value> stack;
};

class Program {
 public:
  Program() = default;

  // Compiles `expr`; a null expr compiles to a constant-true program.
  static Program Compile(const ExprPtr& expr);

  // Evaluates against `ctx` using the caller's scratch.
  Value Eval(const ExprContext& ctx, EvalScratch& scratch) const;
  // Convenience overload borrowing a thread_local scratch.
  Value Eval(const ExprContext& ctx) const;

  // Evaluates and coerces to bool (CHECKs on non-bool results). Takes the
  // fused-comparison or typed int register path when the program is
  // int-specialized and the referenced attributes are ints at runtime.
  bool EvalBool(const ExprContext& ctx) const {
    if (simple_cmp_) {
      const Value& v = ctx.left->at(simple_attr_);
      if (v.type() == ValueType::kInt) {
        RUMOR_METRIC(++internal::tl_program_counters.fused);
        return CompareSimple(v.AsIntUnchecked());
      }
    } else if (int_specialized_) {
      bool result;
      if (EvalBoolTyped(ctx.left, ctx.right, &result)) return result;
    }
    return EvalBoolGeneric(ctx);
  }

  // Batch evaluation of a left-side (selection-style) predicate: sets
  // matches bit i iff the program is true for tuples[i].tuple. `matches` is
  // resized to n and cleared first.
  void EvalBoolBatch(const ChannelTuple* tuples, size_t n,
                     BitVector& matches) const;
  // As above, but tuples whose membership bit `slot` is unset are skipped
  // (bit stays 0) without evaluating — exactly the per-tuple gating of the
  // scalar m-op paths, so evaluation side effects (division CHECKs) match.
  void EvalBoolBatchGated(const ChannelTuple* tuples, size_t n, int slot,
                          BitVector& matches) const;

  // True when the typed int fast path is compiled in (observability/tests).
  bool int_specialized() const { return int_specialized_; }

  // This thread's fast-path efficacy counters (see ProgramCounters).
  static const ProgramCounters& counters() {
    return internal::tl_program_counters;
  }
  static void ResetCounters() { internal::tl_program_counters = {}; }

  // Disables the typed/fused fast paths process-wide (ablation benchmarks
  // and equivalence tests; production leaves them on). Affects programs
  // compiled afterwards.
  static void SetVectorizationEnabled(bool enabled);
  static bool vectorization_enabled();

  int size() const { return static_cast<int>(code_.size()); }
  bool empty() const { return code_.empty(); }
  std::string ToString() const;

 private:
  void Emit(const ExprPtr& expr);
  // Type-simulates the code over (attrs: int, ts: int) and records the
  // int-typed plan if the simulation proves a bool result; also detects the
  // fused single-comparison shape.
  void Specialize();

  Value EvalGeneric(const ExprContext& ctx, EvalScratch& scratch) const;
  bool EvalBoolGeneric(const ExprContext& ctx) const;
  bool CompareSimple(int64_t a) const {
    switch (simple_op_) {
      case OpCode::kEq: return a == simple_const_;
      case OpCode::kNe: return a != simple_const_;
      case OpCode::kLt: return a < simple_const_;
      case OpCode::kLe: return a <= simple_const_;
      case OpCode::kGt: return a > simple_const_;
      default: return a >= simple_const_;
    }
  }
  // Typed evaluation; returns false (caller must fall back) when a
  // referenced attribute is not an int at runtime.
  bool EvalBoolTyped(const Tuple* left, const Tuple* right,
                     bool* result) const;

  std::vector<Instruction> code_;
  std::vector<Value> constants_;

  // --- typed fast path (immutable after Compile) ---------------------------
  static constexpr int kMaxTypedDepth = 32;
  bool int_specialized_ = false;
  std::vector<int64_t> int_constants_;  // constants_ lowered; bools as 0/1

  // Fused `attr <op> const` form (implies int_specialized_).
  bool simple_cmp_ = false;
  int simple_attr_ = 0;
  OpCode simple_op_ = OpCode::kEq;
  int64_t simple_const_ = 0;
};

}  // namespace rumor

#endif  // RUMOR_EXPR_PROGRAM_H_
