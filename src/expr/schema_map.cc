#include "expr/schema_map.h"

#include <sstream>

#include "common/hash.h"

namespace rumor {

SchemaMap& SchemaMap::Add(std::string name, ExprPtr expr) {
  names_.push_back(std::move(name));
  exprs_.push_back(std::move(expr));
  return *this;
}

SchemaMap SchemaMap::Identity(const Schema& schema) {
  SchemaMap map;
  for (int i = 0; i < schema.size(); ++i) {
    map.Add(schema.attribute(i).name,
            Expr::Attr(Side::kLeft, i, schema.attribute(i).name));
  }
  return map;
}

SchemaMap SchemaMap::Project(const Schema& schema,
                             const std::vector<int>& indexes) {
  SchemaMap map;
  for (int i : indexes) {
    RUMOR_CHECK(i >= 0 && i < schema.size()) << "bad projection index " << i;
    map.Add(schema.attribute(i).name,
            Expr::Attr(Side::kLeft, i, schema.attribute(i).name));
  }
  return map;
}

SchemaMap SchemaMap::ConcatSides(const Schema& left, const Schema& right,
                                 const std::string& lp,
                                 const std::string& rp) {
  SchemaMap map;
  for (int i = 0; i < left.size(); ++i) {
    map.Add(lp + left.attribute(i).name,
            Expr::Attr(Side::kLeft, i, left.attribute(i).name));
  }
  for (int i = 0; i < right.size(); ++i) {
    map.Add(rp + right.attribute(i).name,
            Expr::Attr(Side::kRight, i, right.attribute(i).name));
  }
  return map;
}

Schema SchemaMap::OutputSchema(const Schema& left, const Schema* right) const {
  std::vector<Attribute> attrs;
  attrs.reserve(exprs_.size());
  for (size_t i = 0; i < exprs_.size(); ++i) {
    attrs.push_back({names_[i], exprs_[i]->InferType(left, right)});
  }
  return Schema(std::move(attrs));
}

Tuple SchemaMap::Apply(const ExprContext& ctx, Timestamp ts) const {
  std::vector<Value> values;
  values.reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) values.push_back(e->Eval(ctx));
  return Tuple::Make(std::move(values), ts);
}

bool SchemaMap::Equals(const SchemaMap& other) const {
  if (names_ != other.names_) return false;
  if (exprs_.size() != other.exprs_.size()) return false;
  for (size_t i = 0; i < exprs_.size(); ++i) {
    if (!exprs_[i]->Equals(*other.exprs_[i])) return false;
  }
  return true;
}

uint64_t SchemaMap::Signature() const {
  uint64_t h = Mix64(exprs_.size());
  for (size_t i = 0; i < exprs_.size(); ++i) {
    h = HashCombine(h, HashBytes(names_[i]));
    h = HashCombine(h, exprs_[i]->Signature());
  }
  return h;
}

std::string SchemaMap::ToString() const {
  std::ostringstream os;
  os << "{";
  for (size_t i = 0; i < exprs_.size(); ++i) {
    if (i > 0) os << ", ";
    os << names_[i] << " := " << exprs_[i]->ToString();
  }
  os << "}";
  return os.str();
}

}  // namespace rumor
