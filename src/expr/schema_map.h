// SchemaMap: the paper's schema map function F (Cayuga forward/rebind edge
// formulas, and the SQL-SELECT-style projection operator π). A schema map is
// an ordered list of named output expressions over the (left, right) context;
// it can rename, project, and compute new attributes.
#ifndef RUMOR_EXPR_SCHEMA_MAP_H_
#define RUMOR_EXPR_SCHEMA_MAP_H_

#include <string>
#include <vector>

#include "common/schema.h"
#include "common/tuple.h"
#include "expr/expr.h"

namespace rumor {

class SchemaMap {
 public:
  SchemaMap() = default;

  // Adds output attribute `name` computed by `expr`; returns *this for
  // chaining.
  SchemaMap& Add(std::string name, ExprPtr expr);

  // Identity over the left input schema.
  static SchemaMap Identity(const Schema& schema);
  // Projection of the given left-side attribute indexes.
  static SchemaMap Project(const Schema& schema,
                           const std::vector<int>& indexes);
  // Concatenation of both sides, names prefixed (join/sequence output map).
  static SchemaMap ConcatSides(const Schema& left, const Schema& right,
                               const std::string& lp = "l.",
                               const std::string& rp = "r.");

  int size() const { return static_cast<int>(exprs_.size()); }
  bool empty() const { return exprs_.empty(); }
  const std::vector<ExprPtr>& exprs() const { return exprs_; }
  const std::vector<std::string>& names() const { return names_; }

  // Output schema given input schemas (`right` may be null).
  Schema OutputSchema(const Schema& left, const Schema* right = nullptr) const;

  // Applies the map; output timestamp is `ts`.
  Tuple Apply(const ExprContext& ctx, Timestamp ts) const;

  // Definition identity (used by m-rules).
  bool Equals(const SchemaMap& other) const;
  uint64_t Signature() const;
  std::string ToString() const;

 private:
  std::vector<std::string> names_;
  std::vector<ExprPtr> exprs_;
};

}  // namespace rumor

#endif  // RUMOR_EXPR_SCHEMA_MAP_H_
