#include "expr/shape.h"

namespace rumor {

void FlattenConjuncts(const ExprPtr& pred, std::vector<ExprPtr>* out) {
  if (pred == nullptr) return;
  if (pred->kind() == ExprKind::kAnd) {
    FlattenConjuncts(pred->child(0), out);
    FlattenConjuncts(pred->child(1), out);
    return;
  }
  out->push_back(pred);
}

bool ReferencesSide(const ExprPtr& e, Side side) {
  if (e == nullptr) return false;
  if ((e->kind() == ExprKind::kAttr || e->kind() == ExprKind::kTs) &&
      e->side() == side) {
    return true;
  }
  for (int i = 0; i < e->num_children(); ++i) {
    if (ReferencesSide(e->child(i), side)) return true;
  }
  return false;
}

namespace {

// Matches `attr-ref-on-side = const` (either operand order); returns the
// equality if so.
std::optional<IndexableEquality> MatchConstEquality(const ExprPtr& e,
                                                    Side side) {
  if (e == nullptr || e->kind() != ExprKind::kCmp ||
      e->cmp_op() != CmpOp::kEq) {
    return std::nullopt;
  }
  const ExprPtr& l = e->child(0);
  const ExprPtr& r = e->child(1);
  auto attr_const = [&](const ExprPtr& a,
                        const ExprPtr& c) -> std::optional<IndexableEquality> {
    if (a->kind() == ExprKind::kAttr && a->side() == side &&
        c->kind() == ExprKind::kConst) {
      return IndexableEquality{a->attr_index(), c->const_value()};
    }
    return std::nullopt;
  };
  if (auto m = attr_const(l, r)) return m;
  return attr_const(r, l);
}

// Matches `left.attr = right.attr` (either operand order).
std::optional<EquiPair> MatchEquiPair(const ExprPtr& e) {
  if (e == nullptr || e->kind() != ExprKind::kCmp ||
      e->cmp_op() != CmpOp::kEq) {
    return std::nullopt;
  }
  const ExprPtr& l = e->child(0);
  const ExprPtr& r = e->child(1);
  if (l->kind() != ExprKind::kAttr || r->kind() != ExprKind::kAttr) {
    return std::nullopt;
  }
  if (l->side() == Side::kLeft && r->side() == Side::kRight) {
    return EquiPair{l->attr_index(), r->attr_index()};
  }
  if (l->side() == Side::kRight && r->side() == Side::kLeft) {
    return EquiPair{r->attr_index(), l->attr_index()};
  }
  return std::nullopt;
}

}  // namespace

SelectionShape AnalyzeSelectionOnSide(const ExprPtr& pred, Side side) {
  SelectionShape shape;
  std::vector<ExprPtr> conjuncts;
  FlattenConjuncts(pred, &conjuncts);
  std::vector<ExprPtr> rest;
  for (const ExprPtr& c : conjuncts) {
    if (!shape.equality.has_value()) {
      if (auto m = MatchConstEquality(c, side)) {
        shape.equality = m;
        continue;
      }
    }
    rest.push_back(c);
  }
  shape.residual = Expr::AndAll(rest);
  return shape;
}

SelectionShape AnalyzeSelection(const ExprPtr& pred) {
  return AnalyzeSelectionOnSide(pred, Side::kLeft);
}

JoinShape AnalyzeJoin(const ExprPtr& pred) {
  JoinShape shape;
  std::vector<ExprPtr> conjuncts;
  FlattenConjuncts(pred, &conjuncts);
  std::vector<ExprPtr> rest;
  for (const ExprPtr& c : conjuncts) {
    if (auto m = MatchEquiPair(c)) {
      shape.equi.push_back(*m);
    } else {
      rest.push_back(c);
    }
  }
  shape.residual = Expr::AndAll(rest);
  return shape;
}

}  // namespace rumor
