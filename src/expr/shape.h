// Predicate shape analysis: the static inspection m-rules and optimized
// m-ops rely on.
//
//  * AnalyzeSelection: splits a selection predicate into an indexable
//    `attr = constant` equality plus a residual — the hash-index form of
//    predicate indexing (paper §2.4, rule sσ; Cayuga's FR/AN indexes §4.3).
//  * AnalyzeJoin: extracts conjunctive `left.attr = right.attr` equalities
//    plus a residual — the hashable form used by join state and by the
//    AI-index equivalent inside ;/µ m-ops.
#ifndef RUMOR_EXPR_SHAPE_H_
#define RUMOR_EXPR_SHAPE_H_

#include <optional>
#include <vector>

#include "expr/expr.h"

namespace rumor {

// An `a[attr] = constant` conjunct on the left input.
struct IndexableEquality {
  int attr = -1;
  Value constant;
};

struct SelectionShape {
  // First `attr = const` conjunct found, if any.
  std::optional<IndexableEquality> equality;
  // Conjunction of the remaining conjuncts; nullptr when none.
  ExprPtr residual;
};

// Decomposes `pred` (over the left side only). A null `pred` yields
// {nullopt, nullptr}.
SelectionShape AnalyzeSelection(const ExprPtr& pred);

// Like AnalyzeSelection but extracting an `attr = const` conjunct on the
// given side of a two-sided predicate (the Cayuga AN index analyses the
// event side of a pattern predicate).
SelectionShape AnalyzeSelectionOnSide(const ExprPtr& pred, Side side);

// A `left.attr = right.attr` equality conjunct.
struct EquiPair {
  int left_attr = -1;
  int right_attr = -1;

  bool operator==(const EquiPair& other) const {
    return left_attr == other.left_attr && right_attr == other.right_attr;
  }
};

struct JoinShape {
  std::vector<EquiPair> equi;
  ExprPtr residual;  // nullptr when none
};

// Decomposes a two-sided predicate into hashable equi-pairs + residual.
JoinShape AnalyzeJoin(const ExprPtr& pred);

// Flattens nested ANDs into a conjunct list (single-element for non-AND).
void FlattenConjuncts(const ExprPtr& pred, std::vector<ExprPtr>* out);

// True if the expression references the given side anywhere.
bool ReferencesSide(const ExprPtr& e, Side side);

}  // namespace rumor

#endif  // RUMOR_EXPR_SHAPE_H_
