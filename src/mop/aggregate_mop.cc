#include "mop/aggregate_mop.h"

#include <algorithm>

#include "mop/mop_state.h"

namespace rumor {

MopType AggregateMop::TypeFor(Sharing sharing) {
  switch (sharing) {
    case Sharing::kIsolated: return MopType::kAggregate;
    case Sharing::kShared: return MopType::kSharedAggregate;
    case Sharing::kFragment: return MopType::kFragmentAggregate;
  }
  return MopType::kAggregate;
}

AggregateMop::AggregateMop(std::vector<Member> members, Sharing sharing,
                           OutputMode mode)
    : Mop(TypeFor(sharing), /*num_inputs=*/1,
          /*num_outputs=*/mode == OutputMode::kChannel
              ? 1
              : static_cast<int>(members.size())),
      members_(std::move(members)),
      sharing_(sharing),
      mode_(mode) {
  RUMOR_CHECK(!members_.empty());
  if (sharing_ == Sharing::kIsolated) {
    for (const Member& m : members_) {
      engines_.push_back(std::make_unique<SharedAggEngine>(
          std::vector<AggMemberSpec>{m.spec}));
    }
  } else {
    std::vector<AggMemberSpec> specs;
    for (int i = 0; i < num_members(); ++i) {
      const Member& m = members_[i];
      if (sharing_ == Sharing::kShared) {
        RUMOR_CHECK(m.input_slot == members_[0].input_slot)
            << "sα members must read the same stream";
      } else {  // kFragment: member i <-> channel slot i
        RUMOR_CHECK(m.input_slot == i)
            << "cα member " << i << " must read channel slot " << i;
        RUMOR_CHECK(m.spec.Signature() == members_[0].spec.Signature())
            << "cα members must have identical definitions";
      }
      specs.push_back(m.spec);
    }
    engines_.push_back(std::make_unique<SharedAggEngine>(std::move(specs)));
  }
  // Channel-mode output is only meaningful when member outputs can carry a
  // shared payload; aggregates emit member-specific values, so members map
  // to singleton memberships in channel mode. We still allow it for wiring
  // uniformity.
}

size_t AggregateMop::log_size() const {
  size_t n = 0;
  for (const auto& e : engines_) {
    if (e != nullptr) n += e->log_size();
  }
  return n;
}

bool AggregateMop::CanAttach(const Member& m) const {
  if (mode_ != OutputMode::kPerMemberPorts) return false;
  // Fragment members correspond to channel slots; a late member has no slot.
  if (sharing_ == Sharing::kFragment) return false;
  // An isolated multi-member m-op has no shared engine to join; a lone
  // isolated member converts in place (its engine *is* a 1-member shared
  // engine).
  if (sharing_ == Sharing::kIsolated &&
      (num_members() != 1 || engines_[0] == nullptr)) {
    return false;
  }
  const Member& first = members_[0];
  return m.input_slot == first.input_slot && m.spec.fn == first.spec.fn &&
         m.spec.attr == first.spec.attr && m.spec.window > 0;
}

AggregateMop::AttachResult AggregateMop::AttachMember(const Member& m) {
  RUMOR_CHECK(CanAttach(m));
  if (sharing_ == Sharing::kIsolated) {
    sharing_ = Sharing::kShared;
    set_type(MopType::kSharedAggregate);
  }
  int slot = engines_[0]->FindInactiveMember();
  if (slot >= 0) {
    members_[slot] = m;
    engines_[0]->ReuseMember(slot, m.spec);
    return {slot, true};
  }
  members_.push_back(m);
  engines_[0]->AddMember(m.spec);
  set_num_outputs(num_outputs() + 1);
  return {num_members() - 1, false};
}

void AggregateMop::DeactivateMember(int i) {
  RUMOR_DCHECK(i >= 0 && i < num_members());
  if (sharing_ == Sharing::kIsolated) {
    engines_[i].reset();
  } else {
    engines_[0]->DeactivateMember(i);
  }
}

bool AggregateMop::member_active(int i) const {
  RUMOR_DCHECK(i >= 0 && i < num_members());
  return sharing_ == Sharing::kIsolated ? engines_[i] != nullptr
                                        : engines_[0]->member_active(i);
}

void AggregateMop::Process(int input_port, const ChannelTuple& ct,
                           Emitter& out) {
  RUMOR_DCHECK(input_port == 0);
  (void)input_port;
  ProcessOne(ct, [&](int member, Tuple result) {
    if (mode_ == OutputMode::kChannel) {
      out.Emit(0, ChannelTuple{std::move(result),
                               BitVector::Singleton(member, num_members())});
    } else {
      out.Emit(member,
               ChannelTuple{std::move(result), BitVector::Singleton(0, 1)});
    }
    CountOut();
  });
}

void AggregateMop::ProcessBatch(int input_port, const ChannelTuple* tuples,
                                size_t n, Emitter& out) {
  RUMOR_DCHECK(input_port == 0);
  (void)input_port;
  const std::function<void(int, Tuple)> emit = [&](int member, Tuple result) {
    if (mode_ == OutputMode::kChannel) {
      out.Emit(0, ChannelTuple{std::move(result),
                               BitVector::Singleton(member, num_members())});
    } else {
      out.Emit(member,
               ChannelTuple{std::move(result), BitVector::Singleton(0, 1)});
    }
    CountOut();
  };
  for (size_t i = 0; i < n; ++i) ProcessOne(tuples[i], emit);
}

bool AggregateMop::SaveState(MopState* out) const {
  out->kind = MopState::Kind::kAggregate;
  out->shared_state = sharing_ != Sharing::kIsolated;
  out->member_active.resize(num_members());
  for (int i = 0; i < num_members(); ++i) {
    out->member_active[i] = member_active(i) ? 1 : 0;
  }
  out->engines.clear();
  if (sharing_ == Sharing::kIsolated) {
    for (int i = 0; i < num_members(); ++i) {
      if (engines_[i] == nullptr) continue;  // deactivated member
      AggEngineState es;
      es.slots = {i};
      engines_[i]->ExtractState(&es);
      out->engines.push_back(std::move(es));
    }
  } else {
    AggEngineState es;
    es.slots.resize(num_members());
    for (int i = 0; i < num_members(); ++i) es.slots[i] = i;
    engines_[0]->ExtractState(&es);
    out->engines.push_back(std::move(es));
  }
  return true;
}

namespace {

// Locates the saved engine and engine-member index serving saved m-op
// member `s`.
bool FindSavedEngineMember(const MopState& src, int s,
                           const AggEngineState** engine, int* idx) {
  for (const AggEngineState& e : src.engines) {
    for (size_t k = 0; k < e.slots.size(); ++k) {
      if (e.slots[k] == s) {
        *engine = &e;
        *idx = static_cast<int>(k);
        return true;
      }
    }
  }
  return false;
}

// Builds one AggEngineState whose engine-member r carries the state of
// `sources[r]` = (saved engine, engine-member index), for restored engines
// whose members were saved across several engines. Entries are merged in
// timestamp order (per member the relative order within its origin engine —
// the FIFO discipline replay depends on — is preserved).
AggEngineState MergeSavedEngines(
    const std::vector<std::pair<const AggEngineState*, int>>& sources) {
  AggEngineState merged;
  const int n = static_cast<int>(sources.size());
  std::vector<const AggEngineState*> engines;
  for (const auto& [e, idx] : sources) {
    if (e != nullptr &&
        std::find(engines.begin(), engines.end(), e) == engines.end()) {
      engines.push_back(e);
    }
  }
  std::vector<size_t> pos(engines.size(), 0);
  for (;;) {
    int best = -1;
    for (size_t k = 0; k < engines.size(); ++k) {
      if (pos[k] >= engines[k]->entries.size()) continue;
      if (best < 0 || engines[k]->entries[pos[k]].ts <
                          engines[best]->entries[pos[best]].ts) {
        best = static_cast<int>(k);
      }
    }
    if (best < 0) break;
    const AggLogEntry& e = engines[best]->entries[pos[best]++];
    AggLogEntry out = e;
    out.membership = BitVector(n);
    for (int r = 0; r < n; ++r) {
      const auto& [src_engine, src_idx] = sources[r];
      if (src_engine == engines[best] && src_idx < e.membership.size() &&
          e.membership.Test(src_idx)) {
        out.membership.Set(r);
      }
    }
    if (out.membership.None()) continue;
    merged.entries.push_back(std::move(out));
  }
  merged.members.resize(n);
  for (int r = 0; r < n; ++r) {
    const auto& [src_engine, src_idx] = sources[r];
    if (src_engine != nullptr &&
        src_idx < static_cast<int>(src_engine->members.size())) {
      merged.members[r].groups = src_engine->members[src_idx].groups;
    }
  }
  return merged;
}

}  // namespace

Status AggregateMop::LoadState(const MopState& src,
                               const MopStateBinding& binding) {
  if (src.kind != MopState::Kind::kAggregate) {
    return Status::Internal("aggregate m-op handed non-aggregate state");
  }
  if (binding.saved_slot.size() != static_cast<size_t>(num_members())) {
    return Status::Internal("aggregate state binding size mismatch");
  }
  if (sharing_ == Sharing::kIsolated) {
    for (int r = 0; r < num_members(); ++r) {
      const int s = binding.saved_slot[r];
      if (s < 0 || engines_[r] == nullptr) continue;
      const AggEngineState* engine = nullptr;
      int idx = -1;
      if (!FindSavedEngineMember(src, s, &engine, &idx)) {
        return Status::InvalidArgument(
            "snapshot lacks saved aggregate state for a matched member");
      }
      RUMOR_RETURN_IF_ERROR(engines_[r]->LoadState(*engine, {idx}));
    }
    return Status::OK();
  }
  if (sharing_ != Sharing::kShared) {
    return Status::Unimplemented(
        "restored plans build isolated or sα aggregates only");
  }
  // Shared engine: resolve every member's saved source, then load in one
  // shot (merging saved engines when the sources are spread across several).
  std::vector<std::pair<const AggEngineState*, int>> sources(
      num_members(), {nullptr, -1});
  const AggEngineState* common = nullptr;
  bool single_engine = true;
  std::vector<int> direct(num_members(), -1);
  for (int r = 0; r < num_members(); ++r) {
    const int s = binding.saved_slot[r];
    if (s < 0) continue;
    const AggEngineState* engine = nullptr;
    int idx = -1;
    if (!FindSavedEngineMember(src, s, &engine, &idx)) {
      return Status::InvalidArgument(
          "snapshot lacks saved aggregate state for a matched member");
    }
    sources[r] = {engine, idx};
    direct[r] = idx;
    if (common == nullptr) common = engine;
    if (engine != common) single_engine = false;
  }
  if (common == nullptr) return Status::OK();  // nothing to restore
  if (single_engine) {
    return engines_[0]->LoadState(*common, direct);
  }
  AggEngineState merged = MergeSavedEngines(sources);
  std::vector<int> identity(num_members());
  for (int r = 0; r < num_members(); ++r) {
    identity[r] = sources[r].first == nullptr ? -1 : r;
  }
  return engines_[0]->LoadState(merged, identity);
}

template <typename EmitFn>
void AggregateMop::ProcessOne(const ChannelTuple& ct, const EmitFn& emit) {
  if (sharing_ == Sharing::kIsolated) {
    for (int i = 0; i < num_members(); ++i) {
      if (engines_[i] == nullptr) continue;  // deactivated member
      if (!ct.membership.Test(members_[i].input_slot)) continue;
      BitVector one = BitVector::AllOnes(1);
      engines_[i]->Process(ct.tuple, one, [&](int, Tuple result) {
        emit(i, std::move(result));
      });
    }
    return;
  }

  BitVector membership(num_members());
  if (sharing_ == Sharing::kShared) {
    // All members read the same stream: the tuple applies to everyone.
    if (!ct.membership.Test(members_[0].input_slot)) return;
    membership = BitVector::AllOnes(num_members());
  } else {
    // Fragment mode: member i <-> input slot i.
    RUMOR_DCHECK(ct.membership.size() == num_members());
    membership = ct.membership;
  }
  engines_[0]->Process(ct.tuple, membership, emit);
}

}  // namespace rumor
