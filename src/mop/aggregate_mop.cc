#include "mop/aggregate_mop.h"

namespace rumor {

MopType AggregateMop::TypeFor(Sharing sharing) {
  switch (sharing) {
    case Sharing::kIsolated: return MopType::kAggregate;
    case Sharing::kShared: return MopType::kSharedAggregate;
    case Sharing::kFragment: return MopType::kFragmentAggregate;
  }
  return MopType::kAggregate;
}

AggregateMop::AggregateMop(std::vector<Member> members, Sharing sharing,
                           OutputMode mode)
    : Mop(TypeFor(sharing), /*num_inputs=*/1,
          /*num_outputs=*/mode == OutputMode::kChannel
              ? 1
              : static_cast<int>(members.size())),
      members_(std::move(members)),
      sharing_(sharing),
      mode_(mode) {
  RUMOR_CHECK(!members_.empty());
  if (sharing_ == Sharing::kIsolated) {
    for (const Member& m : members_) {
      engines_.push_back(std::make_unique<SharedAggEngine>(
          std::vector<AggMemberSpec>{m.spec}));
    }
  } else {
    std::vector<AggMemberSpec> specs;
    for (int i = 0; i < num_members(); ++i) {
      const Member& m = members_[i];
      if (sharing_ == Sharing::kShared) {
        RUMOR_CHECK(m.input_slot == members_[0].input_slot)
            << "sα members must read the same stream";
      } else {  // kFragment: member i <-> channel slot i
        RUMOR_CHECK(m.input_slot == i)
            << "cα member " << i << " must read channel slot " << i;
        RUMOR_CHECK(m.spec.Signature() == members_[0].spec.Signature())
            << "cα members must have identical definitions";
      }
      specs.push_back(m.spec);
    }
    engines_.push_back(std::make_unique<SharedAggEngine>(std::move(specs)));
  }
  // Channel-mode output is only meaningful when member outputs can carry a
  // shared payload; aggregates emit member-specific values, so members map
  // to singleton memberships in channel mode. We still allow it for wiring
  // uniformity.
}

size_t AggregateMop::log_size() const {
  size_t n = 0;
  for (const auto& e : engines_) {
    if (e != nullptr) n += e->log_size();
  }
  return n;
}

bool AggregateMop::CanAttach(const Member& m) const {
  if (mode_ != OutputMode::kPerMemberPorts) return false;
  // Fragment members correspond to channel slots; a late member has no slot.
  if (sharing_ == Sharing::kFragment) return false;
  // An isolated multi-member m-op has no shared engine to join; a lone
  // isolated member converts in place (its engine *is* a 1-member shared
  // engine).
  if (sharing_ == Sharing::kIsolated &&
      (num_members() != 1 || engines_[0] == nullptr)) {
    return false;
  }
  const Member& first = members_[0];
  return m.input_slot == first.input_slot && m.spec.fn == first.spec.fn &&
         m.spec.attr == first.spec.attr && m.spec.window > 0;
}

AggregateMop::AttachResult AggregateMop::AttachMember(const Member& m) {
  RUMOR_CHECK(CanAttach(m));
  if (sharing_ == Sharing::kIsolated) {
    sharing_ = Sharing::kShared;
    set_type(MopType::kSharedAggregate);
  }
  int slot = engines_[0]->FindInactiveMember();
  if (slot >= 0) {
    members_[slot] = m;
    engines_[0]->ReuseMember(slot, m.spec);
    return {slot, true};
  }
  members_.push_back(m);
  engines_[0]->AddMember(m.spec);
  set_num_outputs(num_outputs() + 1);
  return {num_members() - 1, false};
}

void AggregateMop::DeactivateMember(int i) {
  RUMOR_DCHECK(i >= 0 && i < num_members());
  if (sharing_ == Sharing::kIsolated) {
    engines_[i].reset();
  } else {
    engines_[0]->DeactivateMember(i);
  }
}

bool AggregateMop::member_active(int i) const {
  RUMOR_DCHECK(i >= 0 && i < num_members());
  return sharing_ == Sharing::kIsolated ? engines_[i] != nullptr
                                        : engines_[0]->member_active(i);
}

void AggregateMop::Process(int input_port, const ChannelTuple& ct,
                           Emitter& out) {
  RUMOR_DCHECK(input_port == 0);
  (void)input_port;
  ProcessOne(ct, [&](int member, Tuple result) {
    if (mode_ == OutputMode::kChannel) {
      out.Emit(0, ChannelTuple{std::move(result),
                               BitVector::Singleton(member, num_members())});
    } else {
      out.Emit(member,
               ChannelTuple{std::move(result), BitVector::Singleton(0, 1)});
    }
    CountOut();
  });
}

void AggregateMop::ProcessBatch(int input_port, const ChannelTuple* tuples,
                                size_t n, Emitter& out) {
  RUMOR_DCHECK(input_port == 0);
  (void)input_port;
  const std::function<void(int, Tuple)> emit = [&](int member, Tuple result) {
    if (mode_ == OutputMode::kChannel) {
      out.Emit(0, ChannelTuple{std::move(result),
                               BitVector::Singleton(member, num_members())});
    } else {
      out.Emit(member,
               ChannelTuple{std::move(result), BitVector::Singleton(0, 1)});
    }
    CountOut();
  };
  for (size_t i = 0; i < n; ++i) ProcessOne(tuples[i], emit);
}

template <typename EmitFn>
void AggregateMop::ProcessOne(const ChannelTuple& ct, const EmitFn& emit) {
  if (sharing_ == Sharing::kIsolated) {
    for (int i = 0; i < num_members(); ++i) {
      if (engines_[i] == nullptr) continue;  // deactivated member
      if (!ct.membership.Test(members_[i].input_slot)) continue;
      BitVector one = BitVector::AllOnes(1);
      engines_[i]->Process(ct.tuple, one, [&](int, Tuple result) {
        emit(i, std::move(result));
      });
    }
    return;
  }

  BitVector membership(num_members());
  if (sharing_ == Sharing::kShared) {
    // All members read the same stream: the tuple applies to everyone.
    if (!ct.membership.Test(members_[0].input_slot)) return;
    membership = BitVector::AllOnes(num_members());
  } else {
    // Fragment mode: member i <-> input slot i.
    RUMOR_DCHECK(ct.membership.size() == num_members());
    membership = ct.membership;
  }
  engines_[0]->Process(ct.tuple, membership, emit);
}

}  // namespace rumor
