// Sliding-window aggregation m-ops, in three sharing modes:
//
//  * kIsolated  — reference: every member keeps its own window state.
//  * kShared    — target of rule sα [Zhang 05]: members read the same
//    stream with the same aggregate function/attribute but possibly
//    different group-by specifications and window lengths; one shared entry
//    log with per-member expiry cursors serves all of them.
//  * kFragment  — target of rule cα [Krishnamurthy 06]: same-definition
//    members whose inputs are encoded in one channel (member i = slot i);
//    each log entry carries the tuple's membership and contributes only to
//    the members it belongs to (fragment sharing).
//
// Emission contract (all modes): per input tuple and member, the updated
// aggregate of that tuple's group over entries with ts in (t - window, t].
#ifndef RUMOR_MOP_AGGREGATE_MOP_H_
#define RUMOR_MOP_AGGREGATE_MOP_H_

#include <memory>
#include <vector>

#include "mop/mop.h"
#include "mop/window.h"

namespace rumor {

class AggregateMop : public Mop {
 public:
  enum class Sharing : uint8_t { kIsolated, kShared, kFragment };

  struct Member {
    int input_slot = 0;
    AggMemberSpec spec;
  };

  AggregateMop(std::vector<Member> members, Sharing sharing, OutputMode mode);

  int num_members() const override {
    return static_cast<int>(members_.size());
  }
  uint64_t MemberSignature(int i) const override {
    return members_[i].spec.Signature();
  }
  const Member& member(int i) const { return members_[i]; }
  Sharing sharing() const { return sharing_; }
  OutputMode output_mode() const { return mode_; }

  // --- dynamic membership (online query churn) -------------------------------
  // True if `m` can be absorbed as a new member without disturbing warm
  // state: per-member-ports output, same fn/attr/input_slot, and this m-op
  // is either the sα target or a lone isolated member (which converts to an
  // sα target in place, reusing its warm engine).
  bool CanAttach(const Member& m) const;
  // Absorbs `m` (CanAttach must hold), backfilling its state from the
  // retained log. A deactivated member slot is reused when one exists —
  // add/remove churn does not grow the member set without bound — in which
  // case the slot's output port keeps its existing channel binding and the
  // caller routes the new query onto that channel; otherwise the output
  // ports grow by one and the caller binds the new port.
  struct AttachResult {
    int member = -1;
    bool reused_slot = false;
  };
  AttachResult AttachMember(const Member& m);
  // Deactivates a member whose query was removed; its port stays bound but
  // the member no longer computes or emits, and its state is released.
  void DeactivateMember(int i);
  bool member_active(int i) const;

  // Size of the shared entry log (for tests/ablation; isolated mode sums
  // per-member logs).
  size_t log_size() const;

  int64_t StateBytes() const override {
    int64_t b = 0;
    for (const auto& engine : engines_) {
      if (engine != nullptr) b += engine->ApproxBytes();
    }
    return b;
  }

  void Process(int input_port, const ChannelTuple& tuple,
               Emitter& out) override;
  // Batched path: type-erases the emission closure once per batch instead
  // of once per tuple (the engines themselves are inherently per-tuple —
  // every input advances expiry cursors and emits updated aggregates).
  void ProcessBatch(int input_port, const ChannelTuple* tuples, size_t n,
                    Emitter& out) override;

  bool SaveState(MopState* out) const override;
  Status LoadState(const MopState& src,
                   const MopStateBinding& binding) override;

 private:
  static MopType TypeFor(Sharing sharing);

  // `emit` is any (int member, Tuple result) callable; a std::function
  // lvalue passes through to the engines without re-wrapping.
  template <typename EmitFn>
  void ProcessOne(const ChannelTuple& tuple, const EmitFn& emit);

  std::vector<Member> members_;
  Sharing sharing_;
  OutputMode mode_;
  // kIsolated: one single-member engine per member; otherwise one shared
  // engine for all members.
  std::vector<std::unique_ptr<SharedAggEngine>> engines_;
};

}  // namespace rumor

#endif  // RUMOR_MOP_AGGREGATE_MOP_H_
