#include "mop/iterate_mop.h"

#include "mop/mop_state.h"

namespace rumor {

MopType IterateMop::TypeFor(Sharing sharing) {
  switch (sharing) {
    case Sharing::kIsolated: return MopType::kIterate;
    case Sharing::kShared: return MopType::kSharedIterate;
    case Sharing::kChannel: return MopType::kChannelIterate;
  }
  return MopType::kIterate;
}

IterateMop::IterateMop(std::vector<Member> members, Sharing sharing,
                       OutputMode mode)
    : Mop(TypeFor(sharing), /*num_inputs=*/2,
          /*num_outputs=*/mode == OutputMode::kChannel
              ? 1
              : static_cast<int>(members.size())),
      members_(std::move(members)),
      sharing_(sharing),
      mode_(mode) {
  RUMOR_CHECK(!members_.empty());
  const Member& first = members_[0];
  const int n = sharing_ == Sharing::kIsolated ? num_members() : 1;
  for (int i = 0; i < n; ++i) {
    const Member& m = members_[i];
    match_programs_.push_back(Program::Compile(m.def.match));
    rebind_programs_.push_back(Program::Compile(m.def.rebind));
    shapes_.push_back(AnalyzeJoin(m.def.match));
    stores_.push_back(std::make_unique<Store>(!shapes_.back().equi.empty()));
  }
  indexed_ = !shapes_[0].equi.empty();
  if (sharing_ != Sharing::kIsolated) {
    for (int i = 0; i < num_members(); ++i) {
      const Member& m = members_[i];
      RUMOR_CHECK(m.def.Signature() == first.def.Signature())
          << "shared µ members must have identical definitions";
      RUMOR_CHECK(m.right_slot == first.right_slot)
          << "shared µ members must read the same event stream";
      if (sharing_ == Sharing::kShared) {
        RUMOR_CHECK(m.left_slot == first.left_slot)
            << "sµ members must read the same left stream";
      } else {
        RUMOR_CHECK(m.left_slot == i)
            << "cµ member " << i << " must read left channel slot " << i;
      }
    }
  }
}

size_t IterateMop::instance_count() const {
  size_t n = 0;
  for (const auto& s : stores_) n += s->live_size();
  return n;
}

Tuple IterateMop::MakeInitialConcat(const Tuple& start,
                                    const IterateDef& def) const {
  RUMOR_DCHECK(start.size() == def.left_size);
  std::vector<Value> values;
  values.reserve(def.left_size + def.right_size);
  values.insert(values.end(), start.values().begin(), start.values().end());
  if (def.right_size == def.left_size) {
    // `last` starts out as the start event itself.
    values.insert(values.end(), start.values().begin(),
                  start.values().end());
  } else {
    values.insert(values.end(), def.right_size, Value());
  }
  return Tuple::Make(std::move(values), start.ts());
}

bool IterateMop::SaveState(MopState* out) const {
  out->kind = MopState::Kind::kIterate;
  out->shared_state = sharing_ != Sharing::kIsolated;
  out->member_filtered = out->shared_state;
  out->member_active.assign(num_members(), 1);
  out->stores.clear();
  for (const auto& store : stores_) {
    // The slot keeps the start timestamp; the concat's own timestamp (which
    // rebinds advance) travels inside the tuple record.
    out->stores.push_back(ExtractLiveSlots(
        *store, [](const Instance& inst) -> const Tuple& {
          return inst.concat;
        }));
  }
  return true;
}

Status IterateMop::LoadState(const MopState& src,
                             const MopStateBinding& binding) {
  if (src.kind != MopState::Kind::kIterate) {
    return Status::Internal("iterate m-op handed non-iterate state");
  }
  if (sharing_ != Sharing::kIsolated) {
    return Status::Unimplemented(
        "restored plans build isolated iterates only (sµ/cµ are batch "
        "rules)");
  }
  if (binding.saved_slot.size() != static_cast<size_t>(num_members())) {
    return Status::Internal("iterate state binding size mismatch");
  }
  for (int r = 0; r < num_members(); ++r) {
    const int s = binding.saved_slot[r];
    if (s < 0) continue;
    const bool filter = src.shared_state && src.member_filtered;
    const int store_idx = src.shared_state ? 0 : s;
    if (store_idx >= static_cast<int>(src.stores.size())) {
      return Status::InvalidArgument(
          "snapshot iterate state lacks the matched member's store");
    }
    for (const BufferSlotState& slot : src.stores[store_idx].slots) {
      if (filter && !StateSlotHasMember(slot, s)) continue;
      stores_[r]->Add(
          Instance{Tuple::Make(slot.tuple.values, slot.tuple.ts),
                   BitVector::Singleton(0, 1)},
          slot.key, slot.ts);
    }
  }
  return Status::OK();
}

void IterateMop::Process(int input_port, const ChannelTuple& ct,
                         Emitter& out) {
  if (input_port == 0) {
    ProcessLeft(ct);
  } else {
    RUMOR_DCHECK(input_port == 1);
    ProcessRight(ct, out);
  }
}

void IterateMop::ProcessLeft(const ChannelTuple& ct) {
  const Tuple& t = ct.tuple;
  if (sharing_ == Sharing::kIsolated) {
    for (int i = 0; i < num_members(); ++i) {
      if (!ct.membership.Test(members_[i].left_slot)) continue;
      Tuple concat = MakeInitialConcat(t, members_[i].def);
      Value key;
      if (!shapes_[i].equi.empty()) {
        key = concat.at(shapes_[i].equi[0].left_attr);
      }
      stores_[i]->Add(Instance{std::move(concat), BitVector::Singleton(0, 1)},
                      key, t.ts());
    }
    return;
  }
  BitVector membership =
      sharing_ == Sharing::kShared
          ? (ct.membership.Test(members_[0].left_slot)
                 ? BitVector::AllOnes(num_members())
                 : BitVector(num_members()))
          : ct.membership;
  if (membership.None()) return;
  Tuple concat = MakeInitialConcat(t, members_[0].def);
  Value key;
  if (indexed_) key = concat.at(shapes_[0].equi[0].left_attr);
  stores_[0]->Add(Instance{std::move(concat), std::move(membership)}, key,
                  t.ts());
}

void IterateMop::ProcessRight(const ChannelTuple& ct, Emitter& out) {
  const Tuple& e = ct.tuple;
  auto run = [&](int idx, const Member& m) {
    Store& store = *stores_[idx];
    const IterateDef& def = m.def;
    if (def.window > 0) store.ExpireBefore(e.ts() - def.window);
    Value key;
    const Value* key_ptr = nullptr;
    if (!shapes_[idx].equi.empty()) {
      key = e.at(shapes_[idx].equi[0].right_attr);
      key_ptr = &key;
    }
    store.ForCandidates(key_ptr, [&](int64_t abs, auto& slot) {
      Instance& inst = slot.item;
      if (slot.ts >= e.ts()) return;  // start must precede the event
      ExprContext ctx{&inst.concat, &e};
      if (!match_programs_[idx].EvalBool(ctx)) return;  // irrelevant event
      if (!rebind_programs_[idx].EvalBool(ctx)) {
        store.Kill(abs);  // run broken
        return;
      }
      // Rebind: replace the last-part with the event, emit the new concat.
      std::vector<Value> values;
      values.reserve(def.left_size + def.right_size);
      for (int k = 0; k < def.left_size; ++k) {
        values.push_back(inst.concat.at(k));
      }
      values.insert(values.end(), e.values().begin(), e.values().end());
      Tuple updated = Tuple::Make(std::move(values), e.ts());
      if (sharing_ == Sharing::kIsolated) {
        EmitForMembers(mode_, BitVector::Singleton(idx, num_members()),
                       updated, out);
        CountOut();
      } else if (sharing_ == Sharing::kShared) {
        EmitForMembers(mode_, BitVector::AllOnes(num_members()), updated,
                       out);
        CountOut(mode_ == OutputMode::kChannel ? 1 : num_members());
      } else {
        EmitForMembers(mode_, inst.membership, updated, out);
        CountOut(mode_ == OutputMode::kChannel ? 1
                                               : inst.membership.Count());
      }
      inst.concat = std::move(updated);
    });
  };

  if (sharing_ == Sharing::kIsolated) {
    for (int i = 0; i < num_members(); ++i) {
      if (!ct.membership.Test(members_[i].right_slot)) continue;
      run(i, members_[i]);
    }
    return;
  }
  if (!ct.membership.Test(members_[0].right_slot)) return;
  run(0, members_[0]);
}

}  // namespace rumor
