// Cayuga iterate (µ) m-ops — paper §4.2/§4.4.
//
// Semantics of one µ member (the deterministic variant used throughout this
// library; see DESIGN.md §7): a left tuple creates an *instance* whose state
// is the concatenation (start ⊕ last). The last-part is initialised from the
// start tuple when the two schemas have equal arity (the common case: "the
// last input event that contributes to the pattern" is initially the start
// event), and with nulls otherwise. For an incoming right event e and
// instance i (with i.start.ts < e.ts and e.ts - i.start.ts <= window):
//
//   if match(i, e) holds:
//     if rebind(i, e) holds: the last-part is replaced by e, the updated
//         concatenation is emitted with ts = e.ts, and the instance lives on
//         (the run grows);
//     else: the instance dies (the run is broken — e.g. monotonicity
//         violated);
//   else: the instance is left untouched (the event is irrelevant to it).
//
// `match` is the conjunct group referencing only the start part; `rebind`
// the group referencing the last-part (see SplitIteratePredicate). Stop
// conditions are downstream selections on the emitted concatenations.
//
// Sharing modes mirror SequenceMop: kIsolated (reference), kShared (sµ /
// prefix merging), kChannel (cµ — instances carry channel memberships; the
// Fig. 6(c) strategy). An `start.attr = event.attr` match conjunct
// hash-indexes the store (AI index analogue); the key lives in the start
// part and is stable across rebinds.
#ifndef RUMOR_MOP_ITERATE_MOP_H_
#define RUMOR_MOP_ITERATE_MOP_H_

#include <memory>
#include <vector>

#include "expr/program.h"
#include "expr/shape.h"
#include "mop/mop.h"
#include "mop/window.h"

namespace rumor {

struct IterateDef {
  ExprPtr match;    // over (instance concat, event); start-part conjuncts
  ExprPtr rebind;   // over (instance concat, event); last-part conjuncts
  int64_t window = 0;  // bound on event.ts - start.ts; 0 = unbounded
  int left_size = 0;   // |start schema|
  int right_size = 0;  // |event schema|

  uint64_t Signature() const {
    uint64_t h = Mix64(PredicateSignature(match));
    h = HashCombine(h, PredicateSignature(rebind));
    h = HashCombine(h, static_cast<uint64_t>(window));
    h = HashCombine(h, static_cast<uint64_t>(left_size));
    h = HashCombine(h, static_cast<uint64_t>(right_size));
    return h;
  }
};

class IterateMop : public Mop {
 public:
  enum class Sharing : uint8_t { kIsolated, kShared, kChannel };

  struct Member {
    int left_slot = 0;
    int right_slot = 0;
    IterateDef def;
  };

  // Input port 0 = left (instance-creating) channel, port 1 = events.
  IterateMop(std::vector<Member> members, Sharing sharing, OutputMode mode);

  int num_members() const override {
    return static_cast<int>(members_.size());
  }
  uint64_t MemberSignature(int i) const override {
    return members_[i].def.Signature();
  }
  const Member& member(int i) const { return members_[i]; }
  Sharing sharing() const { return sharing_; }
  bool indexed() const { return indexed_; }
  size_t instance_count() const;

  void Process(int input_port, const ChannelTuple& tuple,
               Emitter& out) override;

  bool SaveState(MopState* out) const override;
  Status LoadState(const MopState& src,
                   const MopStateBinding& binding) override;

 private:
  struct Instance {
    Tuple concat;  // start ⊕ last
    BitVector membership;
  };
  using Store = KeyedBuffer<Instance>;

  static MopType TypeFor(Sharing sharing);
  Tuple MakeInitialConcat(const Tuple& start, const IterateDef& def) const;
  void ProcessLeft(const ChannelTuple& ct);
  void ProcessRight(const ChannelTuple& ct, Emitter& out);

  std::vector<Member> members_;
  Sharing sharing_;
  OutputMode mode_;
  std::vector<Program> match_programs_;
  std::vector<Program> rebind_programs_;
  std::vector<JoinShape> shapes_;  // of the match predicate
  bool indexed_ = false;
  std::vector<std::unique_ptr<Store>> stores_;
};

}  // namespace rumor

#endif  // RUMOR_MOP_ITERATE_MOP_H_
