#include "mop/join_mop.h"

#include <algorithm>

#include "mop/mop_state.h"

namespace rumor {

MopType JoinMop::TypeFor(Sharing sharing) {
  switch (sharing) {
    case Sharing::kIsolated: return MopType::kJoin;
    case Sharing::kShared: return MopType::kSharedJoin;
    case Sharing::kPrecision: return MopType::kPrecisionJoin;
  }
  return MopType::kJoin;
}

BitVector JoinMop::WindowRouting::MembersCovering(int64_t age,
                                                  int num_members) const {
  // First rank whose window covers the age; all larger windows cover too.
  auto it = std::lower_bound(sorted_windows.begin(), sorted_windows.end(),
                             age);
  size_t rank = it - sorted_windows.begin();
  if (rank >= suffix_members.size()) return BitVector(num_members);
  return suffix_members[rank];
}

JoinMop::JoinMop(std::vector<Member> members, Sharing sharing,
                 OutputMode mode)
    : Mop(TypeFor(sharing), /*num_inputs=*/2,
          /*num_outputs=*/mode == OutputMode::kChannel
              ? 1
              : static_cast<int>(members.size())),
      members_(std::move(members)),
      sharing_(sharing),
      mode_(mode) {
  RUMOR_CHECK(!members_.empty());
  const Member& first = members_[0];

  if (sharing_ == Sharing::kIsolated) {
    for (const Member& m : members_) {
      programs_.push_back(Program::Compile(m.def.predicate));
      shapes_.push_back(AnalyzeJoin(m.def.predicate));
      bool idx = !shapes_.back().equi.empty();
      states_.push_back(std::make_unique<MemberState>(idx));
    }
    indexed_ = !shapes_[0].equi.empty();
    return;
  }

  // Shared modes: one predicate, one state.
  for (int i = 0; i < num_members(); ++i) {
    const Member& m = members_[i];
    if (sharing_ == Sharing::kShared) {
      RUMOR_CHECK(ExprEquals(m.def.predicate, first.def.predicate))
          << "s⋈ members must share the join predicate";
      RUMOR_CHECK(m.left_slot == first.left_slot &&
                  m.right_slot == first.right_slot)
          << "s⋈ members must read the same streams";
    } else {
      RUMOR_CHECK(m.def.Signature() == first.def.Signature())
          << "c⋈ members must have identical definitions";
      RUMOR_CHECK(m.left_slot == i && m.right_slot == i)
          << "c⋈ member " << i << " must read channel slot " << i;
    }
    max_left_window_ = std::max(max_left_window_, m.def.left_window);
    max_right_window_ = std::max(max_right_window_, m.def.right_window);
  }
  program_ = Program::Compile(first.def.predicate);
  shape_ = AnalyzeJoin(first.def.predicate);
  indexed_ = !shape_.equi.empty();
  states_.push_back(std::make_unique<MemberState>(indexed_));

  if (sharing_ == Sharing::kShared) {
    auto build_routing = [this](bool left) {
      WindowRouting routing;
      std::vector<std::pair<int64_t, int>> by_window;
      for (int i = 0; i < num_members(); ++i) {
        by_window.push_back({left ? members_[i].def.left_window
                                  : members_[i].def.right_window,
                             i});
      }
      std::sort(by_window.begin(), by_window.end());
      routing.sorted_windows.resize(by_window.size());
      routing.suffix_members.assign(by_window.size(),
                                    BitVector(num_members()));
      BitVector acc(num_members());
      for (int k = static_cast<int>(by_window.size()) - 1; k >= 0; --k) {
        acc.Set(by_window[k].second);
        routing.sorted_windows[k] = by_window[k].first;
        routing.suffix_members[k] = acc;
      }
      return routing;
    };
    left_routing_ = build_routing(/*left=*/true);
    right_routing_ = build_routing(/*left=*/false);
  }
}

bool JoinMop::SaveState(MopState* out) const {
  out->kind = MopState::Kind::kJoin;
  out->shared_state = sharing_ != Sharing::kIsolated;
  // s⋈ routes matches by window age — its one shared buffer belongs to
  // every member wholesale; c⋈ slots belong to the members in their stored
  // membership.
  out->member_filtered = sharing_ == Sharing::kPrecision;
  out->member_active.assign(num_members(), 1);
  out->left.clear();
  out->right.clear();
  for (const auto& state : states_) {
    const auto tuple_of = [](const StoredTuple& st) -> const Tuple& {
      return st.tuple;
    };
    out->left.push_back(ExtractLiveSlots(state->left.buffer, tuple_of));
    out->right.push_back(ExtractLiveSlots(state->right.buffer, tuple_of));
  }
  return true;
}

Status JoinMop::LoadState(const MopState& src, const MopStateBinding& binding) {
  if (src.kind != MopState::Kind::kJoin) {
    return Status::Internal("join m-op handed non-join state");
  }
  if (sharing_ != Sharing::kIsolated) {
    return Status::Unimplemented(
        "restored plans build isolated joins only (s⋈/c⋈ are batch rules)");
  }
  if (binding.saved_slot.size() != static_cast<size_t>(num_members()) ||
      binding.input_capacities.size() < 2) {
    return Status::Internal("join state binding size mismatch");
  }
  for (int r = 0; r < num_members(); ++r) {
    const int s = binding.saved_slot[r];
    if (s < 0) continue;
    const BufferState* left = nullptr;
    const BufferState* right = nullptr;
    bool filter = false;
    if (!src.shared_state) {
      if (s >= static_cast<int>(src.left.size()) ||
          s >= static_cast<int>(src.right.size())) {
        return Status::InvalidArgument(
            "snapshot join state lacks the matched member's buffers");
      }
      left = &src.left[s];
      right = &src.right[s];
    } else {
      if (src.left.empty() || src.right.empty()) {
        return Status::InvalidArgument(
            "snapshot shared-join state holds no buffers");
      }
      left = &src.left[0];
      right = &src.right[0];
      filter = src.member_filtered;
    }
    // The restored member stores the membership the live path would: the
    // tuple's slot on the restored input channel. (Stored memberships are
    // inert in isolated mode; they matter only if a later batch re-optimize
    // ever precision-merges this m-op.)
    const BitVector left_membership = BitVector::Singleton(
        members_[r].left_slot, binding.input_capacities[0]);
    const BitVector right_membership = BitVector::Singleton(
        members_[r].right_slot, binding.input_capacities[1]);
    MemberState& st = *states_[r];
    // A shared source buffer can hold tuples outside this member's window
    // (another saved member's window was wider); that superset is harmless —
    // ExpireBefore runs ahead of every probe.
    for (const BufferSlotState& slot : left->slots) {
      if (filter && !StateSlotHasMember(slot, s)) continue;
      st.left.buffer.Add(
          StoredTuple{Tuple::Make(slot.tuple.values, slot.tuple.ts),
                      left_membership},
          slot.key, slot.ts);
    }
    for (const BufferSlotState& slot : right->slots) {
      if (filter && !StateSlotHasMember(slot, s)) continue;
      st.right.buffer.Add(
          StoredTuple{Tuple::Make(slot.tuple.values, slot.tuple.ts),
                      right_membership},
          slot.key, slot.ts);
    }
  }
  return Status::OK();
}

void JoinMop::EmitMatch(const BitVector& members, const Tuple& left,
                        const Tuple& right, Emitter& out) {
  if (members.None()) return;
  Tuple result =
      ConcatTuples(left, right, std::max(left.ts(), right.ts()));
  EmitForMembers(mode_, members, result, out);
  CountOut(mode_ == OutputMode::kChannel ? 1 : members.Count());
}

void JoinMop::Process(int input_port, const ChannelTuple& ct, Emitter& out) {
  RUMOR_DCHECK(input_port == 0 || input_port == 1);
  if (sharing_ == Sharing::kIsolated) {
    ProcessIsolated(input_port, ct, out);
  } else {
    ProcessSharedOrPrecision(input_port, ct, out);
  }
}

void JoinMop::ProcessIsolated(int port, const ChannelTuple& ct,
                              Emitter& out) {
  const bool from_left = port == 0;
  const Tuple& t = ct.tuple;
  for (int i = 0; i < num_members(); ++i) {
    const Member& m = members_[i];
    const int slot = from_left ? m.left_slot : m.right_slot;
    if (!ct.membership.Test(slot)) continue;
    MemberState& st = *states_[i];
    const JoinShape& shape = shapes_[i];
    KeyedBuffer<StoredTuple>& store = from_left ? st.left.buffer
                                                : st.right.buffer;
    KeyedBuffer<StoredTuple>& probe = from_left ? st.right.buffer
                                                : st.left.buffer;
    // Partner tuples older than the window cannot match this or any later
    // arrival (timestamps are non-decreasing).
    const int64_t partner_window =
        from_left ? m.def.right_window : m.def.left_window;
    probe.ExpireBefore(t.ts() - partner_window);

    Value probe_key, store_key;
    const Value* probe_key_ptr = nullptr;
    if (!shape.equi.empty()) {
      const EquiPair& ep = shape.equi[0];
      probe_key = t.at(from_left ? ep.left_attr : ep.right_attr);
      store_key = probe_key;
      probe_key_ptr = &probe_key;
    }
    BitVector self(num_members());
    self.Set(i);
    probe.ForCandidates(probe_key_ptr, [&](int64_t, auto& slot_ref) {
      const Tuple& other = slot_ref.item.tuple;
      const Tuple& l = from_left ? t : other;
      const Tuple& r = from_left ? other : t;
      ExprContext ctx{&l, &r};
      if (programs_[i].EvalBool(ctx)) EmitMatch(self, l, r, out);
    });
    store.Add(StoredTuple{t, ct.membership}, store_key, t.ts());
  }
}

void JoinMop::ProcessSharedOrPrecision(int port, const ChannelTuple& ct,
                                       Emitter& out) {
  const bool from_left = port == 0;
  const Tuple& t = ct.tuple;
  MemberState& st = *states_[0];
  KeyedBuffer<StoredTuple>& store = from_left ? st.left.buffer
                                              : st.right.buffer;
  KeyedBuffer<StoredTuple>& probe = from_left ? st.right.buffer
                                              : st.left.buffer;
  const int64_t partner_window =
      from_left ? max_right_window_ : max_left_window_;
  probe.ExpireBefore(t.ts() - partner_window);

  Value key;
  const Value* key_ptr = nullptr;
  if (indexed_) {
    const EquiPair& ep = shape_.equi[0];
    key = t.at(from_left ? ep.left_attr : ep.right_attr);
    key_ptr = &key;
  }

  probe.ForCandidates(key_ptr, [&](int64_t, auto& slot_ref) {
    const StoredTuple& stored = slot_ref.item;
    const Tuple& l = from_left ? t : stored.tuple;
    const Tuple& r = from_left ? stored.tuple : t;
    ExprContext ctx{&l, &r};
    if (!program_.EvalBool(ctx)) return;
    BitVector members(num_members());
    if (sharing_ == Sharing::kShared) {
      const int64_t age = t.ts() - stored.tuple.ts();
      // The stored tuple must lie inside the member's window for the side
      // it was stored on.
      members = from_left
                    ? right_routing_.MembersCovering(age, num_members())
                    : left_routing_.MembersCovering(age, num_members());
    } else {  // kPrecision: AND of the two membership components
      members = stored.membership & ct.membership;
    }
    EmitMatch(members, l, r, out);
  });
  store.Add(StoredTuple{t, ct.membership}, key, t.ts());
}

}  // namespace rumor
