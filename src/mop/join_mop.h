// Sliding-window join m-ops, in three sharing modes:
//
//  * kIsolated  — reference: per-member symmetric hash join state.
//  * kShared    — target of rule s⋈ [Hammad 03]: members read the same two
//    streams with the same predicate but different window lengths; one
//    shared state serves all members, and each match is routed to exactly
//    the members whose windows cover the partner tuple's age (computed with
//    sorted windows + precomputed suffix member sets).
//  * kPrecision — target of rule c⋈ [Krishnamurthy 04] (precision sharing):
//    same-definition members whose left/right inputs are encoded in
//    channels (member i = slot i on both sides); stored tuples carry
//    memberships and a match belongs to the AND of the two memberships.
//
// Match semantics (all modes): tuples l, r join iff predicate(l, r) holds,
// r.ts - l.ts <= left_window when l arrived first, and l.ts - r.ts <=
// right_window when r arrived first. Output tuple = concat(l, r) with
// ts = max(l.ts, r.ts). An `attr_l = attr_r` conjunct, when present, is used
// as the hash key of both states.
#ifndef RUMOR_MOP_JOIN_MOP_H_
#define RUMOR_MOP_JOIN_MOP_H_

#include <memory>
#include <vector>

#include "expr/program.h"
#include "expr/shape.h"
#include "mop/mop.h"
#include "mop/window.h"

namespace rumor {

struct JoinDef {
  ExprPtr predicate;
  int64_t left_window = 0;
  int64_t right_window = 0;

  uint64_t Signature() const {
    uint64_t h = Mix64(PredicateSignature(predicate));
    h = HashCombine(h, static_cast<uint64_t>(left_window));
    h = HashCombine(h, static_cast<uint64_t>(right_window));
    return h;
  }
  // Predicate-only signature (s⋈ allows different windows).
  uint64_t PredicateOnlySignature() const {
    return Mix64(PredicateSignature(predicate));
  }
};

class JoinMop : public Mop {
 public:
  enum class Sharing : uint8_t { kIsolated, kShared, kPrecision };

  struct Member {
    int left_slot = 0;
    int right_slot = 0;
    JoinDef def;
  };

  // Input port 0 = left channel, port 1 = right channel.
  JoinMop(std::vector<Member> members, Sharing sharing, OutputMode mode);

  int num_members() const override {
    return static_cast<int>(members_.size());
  }
  uint64_t MemberSignature(int i) const override {
    return members_[i].def.Signature();
  }
  const Member& member(int i) const { return members_[i]; }
  Sharing sharing() const { return sharing_; }
  bool indexed() const { return indexed_; }

  void Process(int input_port, const ChannelTuple& tuple,
               Emitter& out) override;

  bool SaveState(MopState* out) const override;
  Status LoadState(const MopState& src,
                   const MopStateBinding& binding) override;

  int64_t StateBytes() const override {
    int64_t b = 0;
    for (const auto& state : states_) {
      if (state == nullptr) continue;
      b += state->left.buffer.ApproxBytes() +
           state->right.buffer.ApproxBytes();
    }
    return b;
  }

 private:
  struct StoredTuple {
    Tuple tuple;
    BitVector membership;  // meaningful for kPrecision
  };
  struct SideState {
    KeyedBuffer<StoredTuple> buffer;
    explicit SideState(bool indexed) : buffer(indexed) {}
  };
  struct MemberState {
    SideState left;
    SideState right;
    MemberState(bool indexed) : left(indexed), right(indexed) {}
  };

  static MopType TypeFor(Sharing sharing);
  void ProcessIsolated(int port, const ChannelTuple& ct, Emitter& out);
  void ProcessSharedOrPrecision(int port, const ChannelTuple& ct,
                                Emitter& out);
  void EmitMatch(const BitVector& members, const Tuple& left,
                 const Tuple& right, Emitter& out);

  std::vector<Member> members_;
  Sharing sharing_;
  OutputMode mode_;
  Program program_;                 // shared modes: the common predicate
  std::vector<Program> programs_;   // isolated mode: per member
  JoinShape shape_;                 // of members_[0] (shared modes)
  std::vector<JoinShape> shapes_;   // isolated mode
  bool indexed_ = false;
  // kIsolated: one state per member; shared modes: states_[0].
  std::vector<std::unique_ptr<MemberState>> states_;
  // kShared: member indexes sorted by window, and for each rank the set of
  // members whose window is >= the rank's window (suffix sets).
  struct WindowRouting {
    std::vector<int64_t> sorted_windows;   // ascending
    std::vector<BitVector> suffix_members;  // [k] = members with window >=
                                            // sorted_windows[k]
    // Members whose window covers `age` (age >= 0).
    BitVector MembersCovering(int64_t age, int num_members) const;
  };
  WindowRouting left_routing_;   // keyed by member.left_window
  WindowRouting right_routing_;  // keyed by member.right_window
  int64_t max_left_window_ = 0;
  int64_t max_right_window_ = 0;
};

}  // namespace rumor

#endif  // RUMOR_MOP_JOIN_MOP_H_
