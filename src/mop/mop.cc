#include "mop/mop.h"

#include "common/str_util.h"

namespace rumor {

const char* MopTypeName(MopType type) {
  switch (type) {
    case MopType::kSelection: return "σ";
    case MopType::kProjection: return "π";
    case MopType::kAggregate: return "α";
    case MopType::kJoin: return "⋈";
    case MopType::kSequence: return ";";
    case MopType::kIterate: return "µ";
    case MopType::kPredicateIndex: return "σ-index";
    case MopType::kChannelSelect: return "cσ";
    case MopType::kChannelProject: return "cπ";
    case MopType::kSharedAggregate: return "sα";
    case MopType::kFragmentAggregate: return "cα";
    case MopType::kSharedJoin: return "s⋈";
    case MopType::kPrecisionJoin: return "c⋈";
    case MopType::kSharedSequence: return "s;";
    case MopType::kChannelSequence: return "c;";
    case MopType::kSharedIterate: return "sµ";
    case MopType::kChannelIterate: return "cµ";
    case MopType::kZip: return "zip";
  }
  return "?";
}

std::string Mop::name() const {
  return StrCat(MopTypeName(type_), "#", id_, "[", num_members(), "]");
}

Status Mop::LoadState(const MopState&, const MopStateBinding&) {
  return Status::Unimplemented(
      StrCat("m-op ", name(), " does not carry restorable state"));
}

void EmitForMembers(OutputMode mode, const BitVector& members,
                    const Tuple& tuple, Emitter& out) {
  if (members.None()) return;
  if (mode == OutputMode::kChannel) {
    out.Emit(0, ChannelTuple{tuple, members});
    return;
  }
  members.ForEach([&](int member) {
    out.Emit(member, ChannelTuple{tuple, BitVector::Singleton(0, 1)});
  });
}

}  // namespace rumor
