// The physical multi-operator (m-op) abstraction — paper §2.2.
//
// An m-op *implements a set of operators* (its members) and is the unit of
// scheduling and execution. Its semantics are defined by the one-by-one
// execution of its members; optimized m-ops (predicate indexes, shared
// state) must preserve exactly that observable behaviour, and the test suite
// checks them against the reference m-ops.
//
// Port conventions used throughout this library:
//  * Each m-op has a fixed number of input and output ports; the plan wires
//    each port to a channel.
//  * Unless an m-op documents otherwise, member i writes to output port i
//    (one capacity-1 channel per member), or — in channel-output mode — all
//    members share output port 0 and member i corresponds to slot i of the
//    output channel.
#ifndef RUMOR_MOP_MOP_H_
#define RUMOR_MOP_MOP_H_

#include <cstdint>
#include <string>

#include "common/metrics.h"
#include "common/status.h"
#include "stream/channel.h"

namespace rumor {

struct MopState;
struct MopStateBinding;

using MopId = int32_t;
inline constexpr MopId kInvalidMop = -1;

enum class MopType : uint8_t {
  kSelection,
  kProjection,
  kAggregate,
  kJoin,
  kSequence,
  kIterate,
  kPredicateIndex,    // sσ target
  kChannelSelect,     // cσ target
  kChannelProject,    // cπ target
  kSharedAggregate,   // sα target
  kFragmentAggregate, // cα target
  kSharedJoin,        // s⋈ target
  kPrecisionJoin,     // c⋈ target
  kSharedSequence,    // s; target
  kChannelSequence,   // c; target
  kSharedIterate,     // sµ target
  kChannelIterate,    // cµ target
  kZip,               // 1:1 pairing of two streams (multi-aggregate rows)
};

const char* MopTypeName(MopType type);

// Receives tuples emitted by an m-op; implemented by the executor.
class Emitter {
 public:
  virtual ~Emitter() = default;
  virtual void Emit(int output_port, ChannelTuple tuple) = 0;
};

class Mop {
 public:
  Mop(MopType type, int num_inputs, int num_outputs)
      : type_(type), num_inputs_(num_inputs), num_outputs_(num_outputs) {}
  virtual ~Mop() = default;
  Mop(const Mop&) = delete;
  Mop& operator=(const Mop&) = delete;

  MopType type() const { return type_; }
  MopId id() const { return id_; }
  void set_id(MopId id) { id_ = id; }
  int num_inputs() const { return num_inputs_; }
  int num_outputs() const { return num_outputs_; }

  // Number of member operators this m-op implements.
  virtual int num_members() const = 0;
  // Definition-only signature of member `i` (predicates, windows, maps —
  // not input identity). Two operators are mergeable by a c-rule only if
  // these match.
  virtual uint64_t MemberSignature(int i) const = 0;

  // Processes one tuple arriving on `input_port`.
  virtual void Process(int input_port, const ChannelTuple& tuple,
                       Emitter& out) = 0;

  // Processes a run of consecutive tuples arriving on `input_port`. Must
  // update state and emit exactly as calling Process on each tuple in
  // order would; the default does exactly that. Overrides may amortize
  // per-tuple setup (the batched executor path calls this once per m-op
  // per batch).
  virtual void ProcessBatch(int input_port, const ChannelTuple* tuples,
                            size_t n, Emitter& out) {
    for (size_t i = 0; i < n; ++i) Process(input_port, tuples[i], out);
  }

  // Short display name, e.g. "σ{1,2}" or "µ[3]".
  virtual std::string name() const;

  // Approximate heap bytes of this m-op's *operator state* — buffered window
  // tuples, join/sequence partial matches, aggregation groups, predicate
  // index tables. Stateless m-ops report 0 (the default). Estimates count
  // container footprints (tuple *payload* blocks are accounted by the
  // TupleArena); they are for memory budgeting, not exact accounting.
  virtual int64_t StateBytes() const { return 0; }

  // --- checkpoint/restore ---------------------------------------------------
  // Fills `out` with this m-op's serializable runtime state and returns
  // true. Stateless m-ops return false (the default) and are skipped by the
  // checkpoint. The m-op must be quiescent (no Process in flight).
  virtual bool SaveState(MopState* /*out*/) const { return false; }

  // Loads saved state into this (freshly built, empty) m-op according to
  // `binding` (see mop_state.h). Members without a saved source are left
  // empty. Implemented by exactly the m-ops whose SaveState returns true.
  virtual Status LoadState(const MopState& src, const MopStateBinding& binding);

  // --- lightweight metrics --------------------------------------------------
  // Tuple/batch counters are maintained by the executor (in) and the m-op
  // implementations (out); timing is sampled by the executor. Everything
  // compiles out under -DRUMOR_METRICS=OFF (see common/metrics.h).
  const MopMetrics& metrics() const { return metrics_; }
  MopMetrics& mutable_metrics() { return metrics_; }
  int64_t tuples_in() const { return metrics_.tuples_in; }
  int64_t tuples_out() const { return metrics_.tuples_out; }
  void CountIn(int64_t n = 1) { RUMOR_METRIC(metrics_.tuples_in += n); }
  void CountOut(int64_t n = 1) { RUMOR_METRIC(metrics_.tuples_out += n); }
  void CountBatch() { RUMOR_METRIC(++metrics_.batches); }

 protected:
  void set_num_outputs(int n) { num_outputs_ = n; }
  // For m-ops whose sharing mode changes in place (e.g. a warm isolated
  // aggregate absorbing a second member becomes an sα target).
  void set_type(MopType type) { type_ = type; }

 private:
  MopType type_;
  int num_inputs_;
  int num_outputs_;
  MopId id_ = kInvalidMop;
  MopMetrics metrics_;
};

// How a multi-member m-op exposes its member outputs.
enum class OutputMode : uint8_t {
  kPerMemberPorts,  // member i -> output port i (capacity-1 channels)
  kChannel,         // all members -> port 0; member i -> channel slot i
};

// Emits `tuple` for the member set `members` according to `mode`:
// per-member ports get one singleton channel tuple per set bit; channel mode
// gets a single channel tuple whose membership is `members`.
void EmitForMembers(OutputMode mode, const BitVector& members,
                    const Tuple& tuple, Emitter& out);

}  // namespace rumor

#endif  // RUMOR_MOP_MOP_H_
