// Serializable operator-state records for the checkpoint/restore subsystem.
//
// A MopState is a plain-data image of one stateful m-op's runtime state —
// aggregation window logs + group accumulators, join window buffers,
// sequence/iterate partial-match stores. Stateless m-ops (selections,
// projections, predicate indexes, zips) have nothing to save: their members
// are rebuilt from the query definitions on restore.
//
// The saved plan and the restored plan are generally *different* shared
// plans (restore replays the incremental merge, which applies only the
// state-preserving rule subset), so state never moves m-op-to-m-op by id.
// Instead every *member* gets a structural fingerprint (plan/fingerprint.h)
// and state moves member-to-member: a MopStateBinding tells the restored
// m-op, for each of its members, which saved member slot (in which saved
// record) its state comes from.
#ifndef RUMOR_MOP_MOP_STATE_H_
#define RUMOR_MOP_MOP_STATE_H_

#include <cstdint>
#include <vector>

#include "common/bitvector.h"
#include "common/tuple.h"
#include "common/value.h"

namespace rumor {

// A tuple detached from any TupleArena: timestamp + payload values. At load
// time the values are re-materialized with Tuple::Make on the restoring
// thread (arenas are thread-affine).
struct StateTuple {
  Timestamp ts = 0;
  std::vector<Value> values;
};

// One entry of a SharedAggEngine window log. `membership` is normalized at
// save time: bits of members whose cursor already passed the entry are
// cleared, so each member's cursor is recoverable as its first set bit.
struct AggLogEntry {
  Timestamp ts = 0;
  Value value;       // pre-extracted aggregand
  StateTuple tuple;  // original tuple (group-by key re-derivation)
  BitVector membership;
};

// Accumulators of one (member, group-key) pair. Numerics are saved
// bit-exactly (dsum travels as raw IEEE-754 bits) so restored running sums
// match the uninterrupted run to the last bit; extrema stacks and ordered
// multisets are rebuilt by replaying the log entries at/after the cursor.
struct AggGroupState {
  std::vector<Value> key;
  int64_t count = 0;
  int64_t isum = 0;
  int64_t double_count = 0;
  double dsum = 0;
};

struct AggMemberState {
  int64_t cursor = 0;  // offset into AggEngineState::entries
  std::vector<AggGroupState> groups;
};

// One SharedAggEngine: the shared window log plus per-member state.
// `slots[i]` is the m-op member index engine-member i serves (so an
// isolated AggregateMop's per-member engines and a shared engine serialize
// through the same record).
struct AggEngineState {
  std::vector<int> slots;
  std::vector<AggLogEntry> entries;
  std::vector<AggMemberState> members;
};

// One live slot of a KeyedBuffer (join window side, sequence/iterate
// partial-match store), in timestamp order.
struct BufferSlotState {
  Timestamp ts = 0;
  Value key;
  StateTuple tuple;
  BitVector membership;
};

struct BufferState {
  std::vector<BufferSlotState> slots;
};

// The full saved state of one stateful m-op.
struct MopState {
  enum class Kind : uint8_t {
    kAggregate = 1,
    kJoin = 2,
    kSequence = 3,
    kIterate = 4,
  };
  Kind kind = Kind::kAggregate;
  // Structural fingerprint of each member slot (0 for inactive slots);
  // filled by the snapshot layer from the saved plan.
  std::vector<uint64_t> member_fps;
  std::vector<char> member_active;
  // True when the saved m-op ran its members against shared state (shared
  // aggregate engine, shared join buffers, channel-membership stores).
  bool shared_state = false;
  // Meaningful with shared_state: true when a stored slot belongs to saved
  // member s iff its membership bit s is set (c⋈, c;/cµ channel stores, and
  // s;/sµ whose all-ones memberships filter trivially). False for s⋈, whose
  // single shared buffer belongs to every member wholesale (matches are
  // routed by window age, not membership).
  bool member_filtered = false;

  // kAggregate: one engine per isolated member, or a single shared engine.
  std::vector<AggEngineState> engines;
  // kJoin: per-member (isolated/precision) or single (shared) side buffers.
  std::vector<BufferState> left;
  std::vector<BufferState> right;
  // kSequence / kIterate: partial-match stores, same per-member convention.
  std::vector<BufferState> stores;
};

// Serializes the live slots of a KeyedBuffer in timestamp order;
// `tuple_of(item)` names the Tuple carried by the stored item (a join's
// stored tuple, a sequence instance's start, an iterate instance's concat).
// The stored tuple's own timestamp rides along — for µ instances it differs
// from the slot timestamp (rebinds advance it; the slot keeps the start ts).
template <typename Buffer, typename GetTuple>
BufferState ExtractLiveSlots(const Buffer& buffer, const GetTuple& tuple_of) {
  BufferState out;
  buffer.ForAllLive([&](const auto& slot) {
    BufferSlotState s;
    s.ts = slot.ts;
    s.key = slot.key;
    const auto& t = tuple_of(slot.item);
    s.tuple.ts = t.ts();
    s.tuple.values.assign(t.values().begin(), t.values().end());
    s.membership = slot.item.membership;
    out.slots.push_back(std::move(s));
  });
  return out;
}

inline bool StateSlotHasMember(const BufferSlotState& slot, int member) {
  return member < slot.membership.size() && slot.membership.Test(member);
}

// Tells a restored m-op where each of its members' state lives.
struct MopStateBinding {
  const MopState* src = nullptr;
  // For restored member r: the saved member slot whose state it inherits,
  // or -1 for a member with no saved state (e.g. added after the
  // checkpoint — impossible today, but the contract allows it).
  std::vector<int> saved_slot;
  // Capacity of the channel wired to each input port of the restored m-op;
  // needed to rebuild stored membership vectors of the restored plan.
  std::vector<int> input_capacities;
};

}  // namespace rumor

#endif  // RUMOR_MOP_MOP_STATE_H_
