#include "mop/predicate_index_mop.h"

namespace rumor {

PredicateIndexMop::PredicateIndexMop(std::vector<SelectionDef> members,
                                     OutputMode mode)
    : Mop(MopType::kPredicateIndex, /*num_inputs=*/1,
          /*num_outputs=*/mode == OutputMode::kChannel
              ? 1
              : static_cast<int>(members.size())),
      members_(std::move(members)),
      mode_(mode) {
  RUMOR_CHECK(!members_.empty());
  for (int i = 0; i < static_cast<int>(members_.size()); ++i) {
    IndexMember(i);
  }
}

void PredicateIndexMop::IndexMember(int i) {
  SelectionShape shape = AnalyzeSelection(members_[i].predicate);
  if (!shape.equality.has_value()) {
    sequential_.push_back({i, Program::Compile(members_[i].predicate)});
    return;
  }
  ++num_indexed_;
  AttrIndex* index = nullptr;
  for (AttrIndex& ai : indexes_) {
    if (ai.attr == shape.equality->attr) {
      index = &ai;
      break;
    }
  }
  if (index == nullptr) {
    indexes_.push_back(AttrIndex{shape.equality->attr, {}});
    index = &indexes_.back();
  }
  IndexedMember im;
  im.member = i;
  im.has_residual = shape.residual != nullptr;
  if (im.has_residual) im.residual = Program::Compile(shape.residual);
  index->by_constant[shape.equality->constant].push_back(std::move(im));
}

int PredicateIndexMop::AddMember(SelectionDef def) {
  members_.push_back(std::move(def));
  const int i = num_members() - 1;
  IndexMember(i);
  if (mode_ == OutputMode::kPerMemberPorts) {
    set_num_outputs(num_outputs() + 1);
  }
  return i;
}

void PredicateIndexMop::Process(int input_port, const ChannelTuple& ct,
                                Emitter& out) {
  RUMOR_DCHECK(input_port == 0);
  (void)input_port;
  RUMOR_DCHECK(ct.membership.Test(0)) << "sσ members all read slot 0";
  ExprContext ctx{&ct.tuple, nullptr};
  BitVector matched(num_members());
  for (AttrIndex& index : indexes_) {
    auto it = index.by_constant.find(ct.tuple.at(index.attr));
    if (it == index.by_constant.end()) continue;
    for (IndexedMember& im : it->second) {
      if (!im.has_residual || im.residual.EvalBool(ctx)) {
        matched.Set(im.member);
      }
    }
  }
  for (SequentialMember& sm : sequential_) {
    if (sm.program.EvalBool(ctx)) matched.Set(sm.member);
  }
  EmitForMembers(mode_, matched, ct.tuple, out);
  CountOut(mode_ == OutputMode::kChannel ? (matched.Any() ? 1 : 0)
                                         : matched.Count());
}

}  // namespace rumor
