#include "mop/predicate_index_mop.h"

namespace rumor {

namespace {
bool g_flat_probe_enabled = true;
}  // namespace

void PredicateIndexMop::SetFlatProbeEnabled(bool enabled) {
  g_flat_probe_enabled = enabled;
}

bool PredicateIndexMop::flat_probe_enabled() { return g_flat_probe_enabled; }

PredicateIndexMop::PredicateIndexMop(std::vector<SelectionDef> members,
                                     OutputMode mode)
    : Mop(MopType::kPredicateIndex, /*num_inputs=*/1,
          /*num_outputs=*/mode == OutputMode::kChannel
              ? 1
              : static_cast<int>(members.size())),
      members_(std::move(members)),
      mode_(mode) {
  RUMOR_CHECK(!members_.empty());
  for (int i = 0; i < static_cast<int>(members_.size()); ++i) {
    IndexMember(i);
  }
}

void PredicateIndexMop::IndexMember(int i) {
  SelectionShape shape = AnalyzeSelection(members_[i].predicate);
  if (!shape.equality.has_value()) {
    sequential_.push_back({i, Program::Compile(members_[i].predicate)});
    return;
  }
  ++num_indexed_;
  AttrIndex* index = nullptr;
  for (AttrIndex& ai : indexes_) {
    if (ai.attr == shape.equality->attr) {
      index = &ai;
      break;
    }
  }
  if (index == nullptr) {
    indexes_.push_back(AttrIndex{shape.equality->attr, {},
                                 g_flat_probe_enabled, {}, {}});
    index = &indexes_.back();
  }
  IndexedMember im;
  im.member = i;
  im.has_residual = shape.residual != nullptr;
  if (im.has_residual) im.residual = Program::Compile(shape.residual);
  const Value& constant = shape.equality->constant;
  std::vector<IndexedMember>& bucket = index->by_constant[constant];
  const bool new_bucket = bucket.empty();
  bucket.push_back(std::move(im));
  if (!index->all_int) return;
  if (constant.type() != ValueType::kInt) {
    // A non-int constant can numerically alias an int one (3 vs 3.0); the
    // flat probe cannot see that, so the whole index reverts to the map.
    index->all_int = false;
    index->flat.clear();
    index->buckets.clear();
    return;
  }
  if (new_bucket) {
    index->flat.Insert(constant.AsIntUnchecked(),
                       static_cast<int32_t>(index->buckets.size()));
    index->buckets.push_back(&bucket);
  }
}

int PredicateIndexMop::num_flat_indexes() const {
  int n = 0;
  for (const AttrIndex& ai : indexes_) n += ai.all_int ? 1 : 0;
  return n;
}

int PredicateIndexMop::AddMember(SelectionDef def) {
  members_.push_back(std::move(def));
  const int i = num_members() - 1;
  IndexMember(i);
  if (mode_ == OutputMode::kPerMemberPorts) {
    set_num_outputs(num_outputs() + 1);
  }
  return i;
}

void PredicateIndexMop::MatchTuple(const ChannelTuple& ct) {
  RUMOR_DCHECK(ct.membership.Test(0)) << "sσ members all read slot 0";
  matched_scratch_.AssignZero(num_members());
  const ExprContext ctx{&ct.tuple, nullptr};
  for (const AttrIndex& index : indexes_) {
    const std::vector<IndexedMember>* bucket =
        Probe(index, ct.tuple.at(index.attr));
    if (bucket == nullptr) continue;
    for (const IndexedMember& im : *bucket) {
      if (!im.has_residual || im.residual.EvalBool(ctx)) {
        matched_scratch_.Set(im.member);
      }
    }
  }
}

void PredicateIndexMop::Process(int input_port, const ChannelTuple& ct,
                                Emitter& out) {
  RUMOR_DCHECK(input_port == 0);
  (void)input_port;
  MatchTuple(ct);
  const ExprContext ctx{&ct.tuple, nullptr};
  for (const SequentialMember& sm : sequential_) {
    if (sm.program.EvalBool(ctx)) matched_scratch_.Set(sm.member);
  }
  EmitForMembers(mode_, matched_scratch_, ct.tuple, out);
  CountOut(mode_ == OutputMode::kChannel ? (matched_scratch_.Any() ? 1 : 0)
                                         : matched_scratch_.Count());
}

void PredicateIndexMop::ProcessBatch(int input_port,
                                     const ChannelTuple* tuples, size_t n,
                                     Emitter& out) {
  RUMOR_DCHECK(input_port == 0);
  (void)input_port;
  // Member-major pass over the sequential members (vectorized evaluation);
  // probes and residuals stay tuple-major — residuals must only run on
  // probe-hit tuples, exactly as the scalar path does.
  seq_match_scratch_.resize(sequential_.size());
  for (size_t s = 0; s < sequential_.size(); ++s) {
    sequential_[s].program.EvalBoolBatch(tuples, n, seq_match_scratch_[s]);
  }
  for (size_t j = 0; j < n; ++j) {
    const ChannelTuple& ct = tuples[j];
    MatchTuple(ct);
    for (size_t s = 0; s < sequential_.size(); ++s) {
      if (seq_match_scratch_[s].Test(static_cast<int>(j))) {
        matched_scratch_.Set(sequential_[s].member);
      }
    }
    EmitForMembers(mode_, matched_scratch_, ct.tuple, out);
    CountOut(mode_ == OutputMode::kChannel ? (matched_scratch_.Any() ? 1 : 0)
                                           : matched_scratch_.Count());
  }
}

}  // namespace rumor
