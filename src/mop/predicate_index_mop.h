// PredicateIndexMop — target of rule sσ (paper §2.4): a set of selections
// reading the same stream, evaluated with predicate indexing [Fabret 01,
// CACQ]. Members whose predicate contains an `attr = const` conjunct are
// grouped into per-attribute hash indexes (const -> members); a probe plus a
// per-member residual check replaces evaluating every predicate. Members
// without an indexable equality fall back to sequential evaluation.
//
// Probe fast path: while every constant of an attribute index is an int, the
// index also maintains a flat open-addressing int64 table mapping the
// constant to its member bucket, so the per-tuple probe is a Mix64 + linear
// scan with no Value hashing; non-int probes (and indexes holding any
// non-int constant) fall back to the authoritative unordered_map, whose
// numeric Value equality handles cross-type matches (3 vs 3.0).
//
// This same m-op is what the Cayuga FR and AN indexes translate to in RUMOR
// (paper §4.3).
#ifndef RUMOR_MOP_PREDICATE_INDEX_MOP_H_
#define RUMOR_MOP_PREDICATE_INDEX_MOP_H_

#include <unordered_map>
#include <vector>

#include "common/flat_map.h"
#include "expr/program.h"
#include "expr/shape.h"
#include "mop/selection_mop.h"

namespace rumor {

class PredicateIndexMop : public Mop {
 public:
  // All members read slot 0 of the single input channel.
  PredicateIndexMop(std::vector<SelectionDef> members, OutputMode mode);

  int num_members() const override {
    return static_cast<int>(members_.size());
  }
  uint64_t MemberSignature(int i) const override {
    return members_[i].Signature();
  }
  const SelectionDef& member(int i) const { return members_[i]; }
  OutputMode output_mode() const { return mode_; }

  // Number of members served by hash indexes (observability / tests).
  int num_indexed_members() const { return num_indexed_; }
  // Number of attribute indexes currently served by the flat int probe.
  int num_flat_indexes() const;
  // Probe fast-path efficacy: probes answered by the flat int table vs the
  // unordered_map fallback (compiled out under RUMOR_METRICS=OFF).
  int64_t flat_probes() const { return flat_probes_; }
  int64_t map_probes() const { return map_probes_; }

  // Disables the flat int probe for m-ops constructed afterwards (ablation
  // benchmarks and equivalence tests; production leaves it on).
  static void SetFlatProbeEnabled(bool enabled);
  static bool flat_probe_enabled();

  // Adds a member selection (online query churn: a new query's σ snaps onto
  // the warm index). Selections are stateless, so this is always safe; in
  // per-member-ports mode the output port count grows by one. Returns the
  // new member index.
  int AddMember(SelectionDef def);

  void Process(int input_port, const ChannelTuple& tuple,
               Emitter& out) override;
  void ProcessBatch(int input_port, const ChannelTuple* tuples, size_t n,
                    Emitter& out) override;

  int64_t StateBytes() const override {
    constexpr int64_t kNodeOverhead = 48;  // unordered_map node estimate
    int64_t b = 0;
    for (const auto& index : indexes_) {
      for (const auto& [key, bucket] : index.by_constant) {
        b += kNodeOverhead + static_cast<int64_t>(sizeof(key)) +
             static_cast<int64_t>(bucket.capacity() * sizeof(IndexedMember));
      }
      b += index.flat.ApproxBytes();
      b += static_cast<int64_t>(index.buckets.capacity() *
                                sizeof(index.buckets[0]));
    }
    b += static_cast<int64_t>(sequential_.capacity() *
                              sizeof(SequentialMember));
    return b;
  }

 private:
  // Routes member `i` into the hash indexes or the sequential list.
  void IndexMember(int i);
  struct IndexedMember {
    int member;
    Program residual;   // empty => unconditional on probe hit
    bool has_residual;
  };
  struct AttrIndex {
    int attr;
    std::unordered_map<Value, std::vector<IndexedMember>> by_constant;
    // Flat probe (engaged while all_int): constant -> index into buckets,
    // which points at the by_constant bucket (mapped references are stable).
    bool all_int = true;
    FlatInt64Map flat;
    std::vector<const std::vector<IndexedMember>*> buckets;
  };
  struct SequentialMember {
    int member;
    Program program;  // full predicate
  };

  // Members matching `v` on this index, or null. Defined inline: this is
  // the innermost per-tuple operation of the batch path. Non-static so the
  // probe-efficacy counters can live on the m-op.
  const std::vector<IndexedMember>* Probe(const AttrIndex& index,
                                          const Value& v) {
    if (index.all_int && v.type() == ValueType::kInt) {
      RUMOR_METRIC(++flat_probes_);
      const int32_t bucket = index.flat.Find(v.AsIntUnchecked());
      return bucket >= 0 ? index.buckets[bucket] : nullptr;
    }
    RUMOR_METRIC(++map_probes_);
    auto it = index.by_constant.find(v);
    return it == index.by_constant.end() ? nullptr : &it->second;
  }
  // Sets the matched-member bits for one tuple into matched_scratch_.
  void MatchTuple(const ChannelTuple& ct);

  std::vector<SelectionDef> members_;
  std::vector<AttrIndex> indexes_;
  std::vector<SequentialMember> sequential_;
  int num_indexed_ = 0;
  OutputMode mode_;
  int64_t flat_probes_ = 0;
  int64_t map_probes_ = 0;

  // Recycled per-tuple/batch scratch (never shrinks; allocation-free in
  // steady state).
  BitVector matched_scratch_;
  std::vector<BitVector> seq_match_scratch_;
};

}  // namespace rumor

#endif  // RUMOR_MOP_PREDICATE_INDEX_MOP_H_
