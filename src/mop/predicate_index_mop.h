// PredicateIndexMop — target of rule sσ (paper §2.4): a set of selections
// reading the same stream, evaluated with predicate indexing [Fabret 01,
// CACQ]. Members whose predicate contains an `attr = const` conjunct are
// grouped into per-attribute hash indexes (const -> members); a probe plus a
// per-member residual check replaces evaluating every predicate. Members
// without an indexable equality fall back to sequential evaluation.
//
// This same m-op is what the Cayuga FR and AN indexes translate to in RUMOR
// (paper §4.3).
#ifndef RUMOR_MOP_PREDICATE_INDEX_MOP_H_
#define RUMOR_MOP_PREDICATE_INDEX_MOP_H_

#include <unordered_map>
#include <vector>

#include "expr/program.h"
#include "expr/shape.h"
#include "mop/selection_mop.h"

namespace rumor {

class PredicateIndexMop : public Mop {
 public:
  // All members read slot 0 of the single input channel.
  PredicateIndexMop(std::vector<SelectionDef> members, OutputMode mode);

  int num_members() const override {
    return static_cast<int>(members_.size());
  }
  uint64_t MemberSignature(int i) const override {
    return members_[i].Signature();
  }
  const SelectionDef& member(int i) const { return members_[i]; }
  OutputMode output_mode() const { return mode_; }

  // Number of members served by hash indexes (observability / tests).
  int num_indexed_members() const { return num_indexed_; }

  // Adds a member selection (online query churn: a new query's σ snaps onto
  // the warm index). Selections are stateless, so this is always safe; in
  // per-member-ports mode the output port count grows by one. Returns the
  // new member index.
  int AddMember(SelectionDef def);

  void Process(int input_port, const ChannelTuple& tuple,
               Emitter& out) override;

 private:
  // Routes member `i` into the hash indexes or the sequential list.
  void IndexMember(int i);
  struct IndexedMember {
    int member;
    Program residual;   // empty => unconditional on probe hit
    bool has_residual;
  };
  struct AttrIndex {
    int attr;
    std::unordered_map<Value, std::vector<IndexedMember>> by_constant;
  };
  struct SequentialMember {
    int member;
    Program program;  // full predicate
  };

  std::vector<SelectionDef> members_;
  std::vector<AttrIndex> indexes_;
  std::vector<SequentialMember> sequential_;
  int num_indexed_ = 0;
  OutputMode mode_;
};

}  // namespace rumor

#endif  // RUMOR_MOP_PREDICATE_INDEX_MOP_H_
