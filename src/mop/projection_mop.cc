#include "mop/projection_mop.h"

namespace rumor {

ProjectionMop::ProjectionMop(std::vector<Member> members, OutputMode mode)
    : Mop(MopType::kProjection, /*num_inputs=*/1,
          /*num_outputs=*/mode == OutputMode::kChannel
              ? 1
              : static_cast<int>(members.size())),
      members_(std::move(members)),
      mode_(mode) {
  RUMOR_CHECK(!members_.empty());
  // Channel-mode output requires identical maps (otherwise member outputs
  // differ and cannot share one channel tuple).
  if (mode_ == OutputMode::kChannel) {
    for (const Member& m : members_) {
      RUMOR_CHECK(m.def.map.Equals(members_[0].def.map))
          << "channel-mode projection requires identical maps";
    }
  }
}

void ProjectionMop::Process(int input_port, const ChannelTuple& ct,
                            Emitter& out) {
  RUMOR_DCHECK(input_port == 0);
  (void)input_port;
  ExprContext ctx{&ct.tuple, nullptr};
  if (mode_ == OutputMode::kChannel) {
    // Identical maps: apply once.
    BitVector members(num_members());
    for (int i = 0; i < num_members(); ++i) {
      if (ct.membership.Test(members_[i].input_slot)) members.Set(i);
    }
    if (members.None()) return;
    Tuple result = members_[0].def.map.Apply(ctx, ct.tuple.ts());
    out.Emit(0, ChannelTuple{std::move(result), std::move(members)});
    CountOut();
    return;
  }
  for (int i = 0; i < num_members(); ++i) {
    if (!ct.membership.Test(members_[i].input_slot)) continue;
    Tuple result = members_[i].def.map.Apply(ctx, ct.tuple.ts());
    out.Emit(i, ChannelTuple{std::move(result), BitVector::Singleton(0, 1)});
    CountOut();
  }
}

ChannelProjectMop::ChannelProjectMop(ProjectionDef def, int num_members,
                                     OutputMode mode)
    : Mop(MopType::kChannelProject, /*num_inputs=*/1,
          /*num_outputs=*/mode == OutputMode::kChannel ? 1 : num_members),
      def_(std::move(def)),
      num_members_(num_members),
      mode_(mode) {
  RUMOR_CHECK(num_members_ >= 1);
}

void ChannelProjectMop::Process(int input_port, const ChannelTuple& ct,
                                Emitter& out) {
  RUMOR_DCHECK(input_port == 0);
  (void)input_port;
  RUMOR_DCHECK(ct.membership.size() == num_members_);
  ExprContext ctx{&ct.tuple, nullptr};
  Tuple result = def_.map.Apply(ctx, ct.tuple.ts());
  EmitForMembers(mode_, ct.membership, result, out);
  CountOut(mode_ == OutputMode::kChannel ? 1 : ct.membership.Count());
}

}  // namespace rumor
