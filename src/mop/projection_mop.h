// Projection m-ops.
//
//  * ProjectionMop — reference: applies each member's schema map
//    independently.
//  * ChannelProjectMop — the paper's π{1..n} example (§3.1): n projections
//    with the same map over streams encoded in one channel; the map is
//    applied once and the membership component passes through unchanged.
#ifndef RUMOR_MOP_PROJECTION_MOP_H_
#define RUMOR_MOP_PROJECTION_MOP_H_

#include <vector>

#include "expr/schema_map.h"
#include "mop/mop.h"

namespace rumor {

struct ProjectionDef {
  SchemaMap map;

  uint64_t Signature() const { return map.Signature(); }
};

class ProjectionMop : public Mop {
 public:
  struct Member {
    int input_slot = 0;
    ProjectionDef def;
  };

  ProjectionMop(std::vector<Member> members, OutputMode mode);

  int num_members() const override {
    return static_cast<int>(members_.size());
  }
  uint64_t MemberSignature(int i) const override {
    return members_[i].def.Signature();
  }
  const Member& member(int i) const { return members_[i]; }

  void Process(int input_port, const ChannelTuple& tuple,
               Emitter& out) override;

 private:
  std::vector<Member> members_;
  OutputMode mode_;
};

class ChannelProjectMop : public Mop {
 public:
  ChannelProjectMop(ProjectionDef def, int num_members, OutputMode mode);

  int num_members() const override { return num_members_; }
  uint64_t MemberSignature(int) const override { return def_.Signature(); }
  const ProjectionDef& def() const { return def_; }

  void Process(int input_port, const ChannelTuple& tuple,
               Emitter& out) override;

 private:
  ProjectionDef def_;
  int num_members_;
  OutputMode mode_;
};

}  // namespace rumor

#endif  // RUMOR_MOP_PROJECTION_MOP_H_
