#include "mop/selection_mop.h"

namespace rumor {

SelectionMop::SelectionMop(std::vector<Member> members, OutputMode mode)
    : Mop(MopType::kSelection, /*num_inputs=*/1,
          /*num_outputs=*/mode == OutputMode::kChannel
              ? 1
              : static_cast<int>(members.size())),
      members_(std::move(members)),
      mode_(mode) {
  RUMOR_CHECK(!members_.empty());
  programs_.reserve(members_.size());
  for (const Member& m : members_) {
    programs_.push_back(Program::Compile(m.def.predicate));
  }
}

void SelectionMop::Process(int input_port, const ChannelTuple& ct,
                           Emitter& out) {
  RUMOR_DCHECK(input_port == 0);
  (void)input_port;
  ExprContext ctx{&ct.tuple, nullptr};
  BitVector& matched = matched_scratch_;
  matched.AssignZero(num_members());
  for (int i = 0; i < num_members(); ++i) {
    if (!ct.membership.Test(members_[i].input_slot)) continue;
    if (programs_[i].EvalBool(ctx)) matched.Set(i);
  }
  EmitForMembers(mode_, matched, ct.tuple, out);
  CountOut(mode_ == OutputMode::kChannel ? (matched.Any() ? 1 : 0)
                                         : matched.Count());
}

void SelectionMop::ProcessBatch(int input_port, const ChannelTuple* tuples,
                                size_t n, Emitter& out) {
  RUMOR_DCHECK(input_port == 0);
  (void)input_port;
  // Member-major: each program sweeps the whole batch (vectorized/typed
  // evaluation, membership-gated per tuple exactly like the scalar path),
  // then tuples emit in order with their member sets reassembled.
  const int nm = num_members();
  member_match_scratch_.resize(nm);
  for (int i = 0; i < nm; ++i) {
    programs_[i].EvalBoolBatchGated(tuples, n, members_[i].input_slot,
                                    member_match_scratch_[i]);
  }
  for (size_t j = 0; j < n; ++j) {
    BitVector& matched = matched_scratch_;
    matched.AssignZero(nm);
    for (int i = 0; i < nm; ++i) {
      if (member_match_scratch_[i].Test(static_cast<int>(j))) matched.Set(i);
    }
    EmitForMembers(mode_, matched, tuples[j].tuple, out);
    CountOut(mode_ == OutputMode::kChannel ? (matched.Any() ? 1 : 0)
                                           : matched.Count());
  }
}

ChannelSelectMop::ChannelSelectMop(SelectionDef def, int num_members,
                                   OutputMode mode)
    : Mop(MopType::kChannelSelect, /*num_inputs=*/1,
          /*num_outputs=*/mode == OutputMode::kChannel ? 1 : num_members),
      def_(std::move(def)),
      num_members_(num_members),
      program_(Program::Compile(def_.predicate)),
      mode_(mode) {
  RUMOR_CHECK(num_members_ >= 1);
}

void ChannelSelectMop::Process(int input_port, const ChannelTuple& ct,
                               Emitter& out) {
  RUMOR_DCHECK(input_port == 0);
  (void)input_port;
  RUMOR_DCHECK(ct.membership.size() == num_members_);
  ExprContext ctx{&ct.tuple, nullptr};
  // Same definition for every member: evaluate once, pass membership
  // through.
  if (!program_.EvalBool(ctx)) return;
  EmitForMembers(mode_, ct.membership, ct.tuple, out);
  CountOut(mode_ == OutputMode::kChannel ? 1 : ct.membership.Count());
}

void ChannelSelectMop::ProcessBatch(int input_port, const ChannelTuple* tuples,
                                    size_t n, Emitter& out) {
  RUMOR_DCHECK(input_port == 0);
  (void)input_port;
  program_.EvalBoolBatch(tuples, n, match_scratch_);
  for (size_t j = 0; j < n; ++j) {
    if (!match_scratch_.Test(static_cast<int>(j))) continue;
    RUMOR_DCHECK(tuples[j].membership.size() == num_members_);
    EmitForMembers(mode_, tuples[j].membership, tuples[j].tuple, out);
    CountOut(mode_ == OutputMode::kChannel ? 1
                                           : tuples[j].membership.Count());
  }
}

}  // namespace rumor
