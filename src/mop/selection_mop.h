// Selection m-ops.
//
//  * SelectionMop — the reference m-op: implements its member selections
//    one-by-one (paper §2.2 semantics). Also the compile output for a single
//    logical σ.
//  * ChannelSelectMop — target of rule cσ: same-definition selections whose
//    inputs are encoded in one channel; the predicate is evaluated once per
//    channel tuple and the membership component is passed through.
//
// (The predicate-index target of rule sσ lives in predicate_index_mop.h.)
#ifndef RUMOR_MOP_SELECTION_MOP_H_
#define RUMOR_MOP_SELECTION_MOP_H_

#include <vector>

#include "expr/program.h"
#include "mop/mop.h"

namespace rumor {

// Definition of one selection operator.
struct SelectionDef {
  ExprPtr predicate;  // null = pass-through

  uint64_t Signature() const { return PredicateSignature(predicate); }
};

class SelectionMop : public Mop {
 public:
  struct Member {
    int input_slot = 0;  // slot of the input channel this member reads
    SelectionDef def;
  };

  SelectionMop(std::vector<Member> members, OutputMode mode);

  int num_members() const override {
    return static_cast<int>(members_.size());
  }
  uint64_t MemberSignature(int i) const override {
    return members_[i].def.Signature();
  }
  const Member& member(int i) const { return members_[i]; }

  void Process(int input_port, const ChannelTuple& tuple,
               Emitter& out) override;
  void ProcessBatch(int input_port, const ChannelTuple* tuples, size_t n,
                    Emitter& out) override;

 private:
  std::vector<Member> members_;
  std::vector<Program> programs_;
  OutputMode mode_;
  // Recycled scratch: per-member batch match masks + the per-tuple member
  // set (allocation-free in steady state).
  BitVector matched_scratch_;
  std::vector<BitVector> member_match_scratch_;
};

class ChannelSelectMop : public Mop {
 public:
  // `num_members` members share `def`; member i reads input slot i and (in
  // channel mode) writes output slot i.
  ChannelSelectMop(SelectionDef def, int num_members, OutputMode mode);

  int num_members() const override { return num_members_; }
  uint64_t MemberSignature(int) const override { return def_.Signature(); }
  const SelectionDef& def() const { return def_; }

  void Process(int input_port, const ChannelTuple& tuple,
               Emitter& out) override;
  void ProcessBatch(int input_port, const ChannelTuple* tuples, size_t n,
                    Emitter& out) override;

 private:
  SelectionDef def_;
  int num_members_;
  Program program_;
  OutputMode mode_;
  BitVector match_scratch_;
};

}  // namespace rumor

#endif  // RUMOR_MOP_SELECTION_MOP_H_
