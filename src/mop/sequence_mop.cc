#include "mop/sequence_mop.h"

#include "mop/mop_state.h"

namespace rumor {

MopType SequenceMop::TypeFor(Sharing sharing) {
  switch (sharing) {
    case Sharing::kIsolated: return MopType::kSequence;
    case Sharing::kShared: return MopType::kSharedSequence;
    case Sharing::kChannel: return MopType::kChannelSequence;
  }
  return MopType::kSequence;
}

SequenceMop::SequenceMop(std::vector<Member> members, Sharing sharing,
                         OutputMode mode)
    : Mop(TypeFor(sharing), /*num_inputs=*/2,
          /*num_outputs=*/mode == OutputMode::kChannel
              ? 1
              : static_cast<int>(members.size())),
      members_(std::move(members)),
      sharing_(sharing),
      mode_(mode) {
  RUMOR_CHECK(!members_.empty());
  const Member& first = members_[0];
  if (sharing_ == Sharing::kIsolated) {
    for (const Member& m : members_) {
      programs_.push_back(Program::Compile(m.def.predicate));
      shapes_.push_back(AnalyzeJoin(m.def.predicate));
      stores_.push_back(
          std::make_unique<Store>(!shapes_.back().equi.empty()));
    }
    indexed_ = !shapes_[0].equi.empty();
    return;
  }
  for (int i = 0; i < num_members(); ++i) {
    const Member& m = members_[i];
    RUMOR_CHECK(m.def.Signature() == first.def.Signature())
        << "shared ; members must have identical definitions";
    RUMOR_CHECK(m.right_slot == first.right_slot)
        << "shared ; members must read the same right stream";
    if (sharing_ == Sharing::kShared) {
      RUMOR_CHECK(m.left_slot == first.left_slot)
          << "s; members must read the same left stream";
    } else {
      RUMOR_CHECK(m.left_slot == i)
          << "c; member " << i << " must read left channel slot " << i;
    }
  }
  programs_.push_back(Program::Compile(first.def.predicate));
  shapes_.push_back(AnalyzeJoin(first.def.predicate));
  indexed_ = !shapes_[0].equi.empty();
  stores_.push_back(std::make_unique<Store>(indexed_));
}

size_t SequenceMop::instance_count() const {
  size_t n = 0;
  for (const auto& s : stores_) n += s->live_size();
  return n;
}

bool SequenceMop::SaveState(MopState* out) const {
  out->kind = MopState::Kind::kSequence;
  out->shared_state = sharing_ != Sharing::kIsolated;
  // s; stores all-ones memberships and c; channel memberships — in both,
  // bit s selects saved member s's instances.
  out->member_filtered = out->shared_state;
  out->member_active.assign(num_members(), 1);
  out->stores.clear();
  for (const auto& store : stores_) {
    out->stores.push_back(ExtractLiveSlots(
        *store, [](const Instance& inst) -> const Tuple& {
          return inst.start;
        }));
  }
  return true;
}

Status SequenceMop::LoadState(const MopState& src,
                              const MopStateBinding& binding) {
  if (src.kind != MopState::Kind::kSequence) {
    return Status::Internal("sequence m-op handed non-sequence state");
  }
  if (sharing_ != Sharing::kIsolated) {
    return Status::Unimplemented(
        "restored plans build isolated sequences only (s;/c; are batch "
        "rules)");
  }
  if (binding.saved_slot.size() != static_cast<size_t>(num_members())) {
    return Status::Internal("sequence state binding size mismatch");
  }
  for (int r = 0; r < num_members(); ++r) {
    const int s = binding.saved_slot[r];
    if (s < 0) continue;
    const bool filter = src.shared_state && src.member_filtered;
    const int store_idx = src.shared_state ? 0 : s;
    if (store_idx >= static_cast<int>(src.stores.size())) {
      return Status::InvalidArgument(
          "snapshot sequence state lacks the matched member's store");
    }
    for (const BufferSlotState& slot : src.stores[store_idx].slots) {
      if (filter && !StateSlotHasMember(slot, s)) continue;
      stores_[r]->Add(
          Instance{Tuple::Make(slot.tuple.values, slot.tuple.ts),
                   BitVector::Singleton(0, 1)},
          slot.key, slot.ts);
    }
  }
  return Status::OK();
}

void SequenceMop::Process(int input_port, const ChannelTuple& ct,
                          Emitter& out) {
  if (input_port == 0) {
    ProcessLeft(ct, out);
  } else {
    RUMOR_DCHECK(input_port == 1);
    ProcessRight(ct, out);
  }
}

void SequenceMop::ProcessLeft(const ChannelTuple& ct, Emitter& out) {
  (void)out;
  const Tuple& t = ct.tuple;
  if (sharing_ == Sharing::kIsolated) {
    for (int i = 0; i < num_members(); ++i) {
      if (!ct.membership.Test(members_[i].left_slot)) continue;
      Value key;
      if (!shapes_[i].equi.empty()) {
        key = t.at(shapes_[i].equi[0].left_attr);
      }
      stores_[i]->Add(Instance{t, BitVector::Singleton(0, 1)}, key, t.ts());
    }
    return;
  }
  Value key;
  if (indexed_) key = t.at(shapes_[0].equi[0].left_attr);
  BitVector membership =
      sharing_ == Sharing::kShared
          ? (ct.membership.Test(members_[0].left_slot)
                 ? BitVector::AllOnes(num_members())
                 : BitVector(num_members()))
          : ct.membership;  // kChannel: member i <-> slot i
  if (membership.None()) return;
  stores_[0]->Add(Instance{t, std::move(membership)}, key, t.ts());
}

void SequenceMop::ProcessRight(const ChannelTuple& ct, Emitter& out) {
  const Tuple& r = ct.tuple;
  auto run = [&](int store_idx, int program_idx, const Member& m) {
    Store& store = *stores_[store_idx];
    const SequenceDef& def = m.def;
    if (def.window > 0) store.ExpireBefore(r.ts() - def.window);
    Value key;
    const Value* key_ptr = nullptr;
    const JoinShape& shape = shapes_[program_idx];
    if (!shape.equi.empty()) {
      key = r.at(shape.equi[0].right_attr);
      key_ptr = &key;
    }
    store.ForCandidates(key_ptr, [&](int64_t abs, auto& slot) {
      const Instance& inst = slot.item;
      // A left tuple can only be followed by a strictly later right tuple.
      if (inst.start.ts() >= r.ts()) return;
      ExprContext ctx{&inst.start, &r};
      if (!programs_[program_idx].EvalBool(ctx)) return;
      Tuple result = ConcatTuples(inst.start, r, r.ts());
      if (sharing_ == Sharing::kIsolated) {
        // Member index == store index in isolated mode.
        EmitForMembers(mode_, BitVector::Singleton(store_idx, num_members()),
                       result, out);
        CountOut();
      } else if (sharing_ == Sharing::kShared) {
        // Multiplex to every member.
        EmitForMembers(mode_, BitVector::AllOnes(num_members()), result,
                       out);
        CountOut(mode_ == OutputMode::kChannel ? 1 : num_members());
      } else {  // kChannel: the instance's membership says which queries
        EmitForMembers(mode_, inst.membership, result, out);
        CountOut(mode_ == OutputMode::kChannel ? 1
                                               : inst.membership.Count());
      }
      // Consume-on-match.
      store.Kill(abs);
    });
  };

  if (sharing_ == Sharing::kIsolated) {
    for (int i = 0; i < num_members(); ++i) {
      if (!ct.membership.Test(members_[i].right_slot)) continue;
      run(i, i, members_[i]);
    }
    return;
  }
  if (!ct.membership.Test(members_[0].right_slot)) return;
  run(0, 0, members_[0]);
}

}  // namespace rumor
