// Cayuga sequence (;) m-ops — paper §4.2/§4.4.
//
// Semantics of one ; member: every left tuple is stored as an *instance*.
// An incoming right tuple r matches instance l iff l.ts < r.ts,
// r.ts - l.ts <= window (when window > 0), and predicate(l, r) holds; each
// match emits concat(l, r) with ts = r.ts and CONSUMES the instance (paper
// §5.2: "when a tuple in the operator state is matched ... that tuple in
// the state is deleted"). Instances expire once they can no longer match.
//
// Sharing modes:
//  * kIsolated — reference: per-member instance stores.
//  * kShared   — target of rule s; (common subexpression elimination ≡
//    Cayuga prefix state merging): identical members reading the same
//    streams share one instance store; matches are multiplexed to all
//    member outputs.
//  * kChannel  — target of rule c;: identical members whose left inputs are
//    encoded in one channel (member i = slot i) and whose right input is the
//    same stream; instances carry the channel membership and one evaluation
//    serves all members (the strategy of Fig. 6(c), outside the Cayuga
//    automaton model).
//
// An `l.attr = r.attr` conjunct in the predicate, when present, hash-indexes
// the instance store — the RUMOR translation of Cayuga's Active Instance
// (AI) index.
#ifndef RUMOR_MOP_SEQUENCE_MOP_H_
#define RUMOR_MOP_SEQUENCE_MOP_H_

#include <memory>
#include <vector>

#include "expr/program.h"
#include "expr/shape.h"
#include "mop/mop.h"
#include "mop/window.h"

namespace rumor {

struct SequenceDef {
  ExprPtr predicate;
  int64_t window = 0;  // 0 = unbounded

  uint64_t Signature() const {
    uint64_t h = Mix64(PredicateSignature(predicate));
    h = HashCombine(h, static_cast<uint64_t>(window));
    return h;
  }
};

class SequenceMop : public Mop {
 public:
  enum class Sharing : uint8_t { kIsolated, kShared, kChannel };

  struct Member {
    int left_slot = 0;
    int right_slot = 0;
    SequenceDef def;
  };

  // Input port 0 = left (instance-creating) channel, port 1 = right channel.
  SequenceMop(std::vector<Member> members, Sharing sharing, OutputMode mode);

  int num_members() const override {
    return static_cast<int>(members_.size());
  }
  uint64_t MemberSignature(int i) const override {
    return members_[i].def.Signature();
  }
  const Member& member(int i) const { return members_[i]; }
  Sharing sharing() const { return sharing_; }
  bool indexed() const { return indexed_; }
  // Live instances (for tests; isolated mode sums per-member stores).
  size_t instance_count() const;

  void Process(int input_port, const ChannelTuple& tuple,
               Emitter& out) override;

  bool SaveState(MopState* out) const override;
  Status LoadState(const MopState& src,
                   const MopStateBinding& binding) override;

  int64_t StateBytes() const override {
    int64_t b = 0;
    for (const auto& store : stores_) {
      if (store != nullptr) b += store->ApproxBytes();
    }
    return b;
  }

 private:
  struct Instance {
    Tuple start;
    BitVector membership;  // over members (kChannel); over {0} otherwise
  };
  using Store = KeyedBuffer<Instance>;

  static MopType TypeFor(Sharing sharing);
  void ProcessLeft(const ChannelTuple& ct, Emitter& out);
  void ProcessRight(const ChannelTuple& ct, Emitter& out);

  std::vector<Member> members_;
  Sharing sharing_;
  OutputMode mode_;
  std::vector<Program> programs_;  // per member (shared modes use [0])
  std::vector<JoinShape> shapes_;
  bool indexed_ = false;
  std::vector<std::unique_ptr<Store>> stores_;  // per member or [0] shared
};

}  // namespace rumor

#endif  // RUMOR_MOP_SEQUENCE_MOP_H_
