#include "mop/window.h"

namespace rumor {

uint64_t AggMemberSpec::Signature() const {
  uint64_t h = Mix64(static_cast<uint64_t>(fn));
  h = HashCombine(h, static_cast<uint64_t>(attr));
  for (int g : group_by) h = HashCombine(h, static_cast<uint64_t>(g));
  h = HashCombine(h, static_cast<uint64_t>(window));
  return h;
}

namespace {
MinMaxImpl g_default_min_max_impl = MinMaxImpl::kTwoStacks;
}  // namespace

void SharedAggEngine::SetDefaultMinMaxImpl(MinMaxImpl impl) {
  g_default_min_max_impl = impl;
}

MinMaxImpl SharedAggEngine::default_min_max_impl() {
  return g_default_min_max_impl;
}

SharedAggEngine::SharedAggEngine(std::vector<AggMemberSpec> members)
    : members_(std::move(members)),
      states_(members_.size()),
      active_(members_.size(), 1),
      impl_(g_default_min_max_impl) {
  RUMOR_CHECK(!members_.empty());
  for (const AggMemberSpec& m : members_) {
    RUMOR_CHECK(m.fn == members_[0].fn && m.attr == members_[0].attr)
        << "shared aggregation requires identical fn and attribute";
    RUMOR_CHECK(m.window > 0) << "aggregate window must be positive";
    max_window_ = std::max(max_window_, m.window);
    if (m.fn == AggFn::kMin || m.fn == AggFn::kMax) need_ordered_ = true;
  }
  is_min_ = members_[0].fn == AggFn::kMin;
}

void SharedAggEngine::Apply(int member, const Entry& e, int sign) {
  const AggMemberSpec& spec = members_[member];
  GroupState& g =
      states_[member].groups[GroupKeyOf(e.tuple, spec.group_by)];
  g.count += sign;
  if (spec.fn != AggFn::kCount) {
    if (e.value.type() == ValueType::kInt) {
      g.isum += sign * e.value.AsInt();
    } else {
      g.dsum += sign * e.value.ToNumeric();
      g.double_count += sign;
      // Drop the accumulated floating-point residue once no double entry is
      // left in the window, so the sum reverts to the exact integer form
      // instead of drifting (and staying double) forever.
      if (g.double_count == 0) g.dsum = 0.0;
    }
    if (need_ordered_) {
      // Per (member, group), entries enter and leave in timestamp order
      // (insertions append to the shared log; the expiry cursor walks it
      // front to back) — a FIFO discipline, which is what lets the
      // two-stacks scheme replace the ordered multiset.
      if (impl_ == MinMaxImpl::kTwoStacks) {
        if (sign > 0) {
          g.extrema.Push(e.value, is_min_);
        } else {
          g.extrema.PopFront(e.value, is_min_);
        }
      } else {
        if (sign > 0) {
          g.ordered.insert(e.value);
        } else {
          auto it = g.ordered.find(e.value);
          RUMOR_DCHECK(it != g.ordered.end());
          if (it != g.ordered.end()) g.ordered.erase(it);
        }
      }
    }
  }
}

Value SharedAggEngine::Extract(const GroupState& g) const {
  switch (members_[0].fn) {
    case AggFn::kCount:
      return Value(g.count);
    case AggFn::kSum:
      if (g.double_count > 0) return Value(g.dsum + g.isum);
      return Value(g.isum);
    case AggFn::kAvg:
      if (g.count == 0) return Value();
      return Value((g.dsum + static_cast<double>(g.isum)) /
                   static_cast<double>(g.count));
    case AggFn::kMin:
    case AggFn::kMax:
      if (impl_ == MinMaxImpl::kTwoStacks) {
        if (g.extrema.empty()) return Value();
        return g.extrema.Best(is_min_);
      }
      if (g.ordered.empty()) return Value();
      return is_min_ ? *g.ordered.begin() : *g.ordered.rbegin();
  }
  return Value();
}

void SharedAggEngine::Process(const Tuple& t, const BitVector& membership,
                              const std::function<void(int, Tuple)>& emit) {
  const Timestamp now = t.ts();

  Entry entry;
  entry.ts = now;
  entry.value =
      members_[0].attr >= 0 ? t.at(members_[0].attr) : Value();
  entry.tuple = t;
  entry.membership = membership;
  entries_.push_back(entry);

  for (int m = 0; m < num_members(); ++m) {
    MemberState& st = states_[m];
    if (!active_[m]) {
      // Deactivated members hold no state and must not pin the shared log.
      st.cursor = base_ + static_cast<int64_t>(entries_.size());
      continue;
    }
    const int64_t member_window = members_[m].window;
    // Expire entries that left this member's window: ts <= now - window.
    while (st.cursor < base_ + static_cast<int64_t>(entries_.size())) {
      const Entry& e = entries_[st.cursor - base_];
      if (e.ts > now - member_window) break;
      if (EntryHasMember(e, m)) {
        Apply(m, e, -1);
        // Drop groups whose window emptied (bounds state by the number of
        // groups *live in the window*, not ever seen).
        ValueVec key = GroupKeyOf(e.tuple, members_[m].group_by);
        auto it = st.groups.find(key);
        if (it != st.groups.end() && it->second.count == 0) {
          st.groups.erase(it);
        }
      }
      ++st.cursor;
    }
    if (!membership.Test(m)) continue;
    // Add the new entry and emit the updated aggregate of its group.
    Apply(m, entries_.back(), +1);
    const AggMemberSpec& spec = members_[m];
    ValueVec key = GroupKeyOf(t, spec.group_by);
    const GroupState& g = st.groups[key];
    std::vector<Value> out = key.values;
    out.push_back(Extract(g));
    emit(m, Tuple::Make(std::move(out), now));
  }

  // Entries no member can still need are dropped from the shared log.
  int64_t min_cursor = base_ + static_cast<int64_t>(entries_.size());
  for (const MemberState& st : states_) {
    min_cursor = std::min(min_cursor, st.cursor);
  }
  while (base_ < min_cursor && !entries_.empty()) {
    entries_.pop_front();
    ++base_;
  }
}

int SharedAggEngine::Backfill(int m) {
  MemberState& st = states_[m];
  st.cursor = base_ + static_cast<int64_t>(entries_.size());
  if (entries_.empty()) return 0;

  // Backfill: retained entries inside the member's window (relative to the
  // newest logged timestamp) are applied in log order — the same FIFO
  // discipline live processing follows, so two-stacks extrema stay valid.
  // The entries' membership vectors are widened to include the member,
  // which is what lets the normal expiry path retract them later.
  const Timestamp last_ts = entries_.back().ts;
  int backfilled = 0;
  for (size_t i = 0; i < entries_.size(); ++i) {
    Entry& e = entries_[i];
    if (e.ts <= last_ts - members_[m].window) continue;
    if (backfilled == 0) st.cursor = base_ + static_cast<int64_t>(i);
    if (e.membership.size() < num_members()) {
      e.membership.Resize(num_members());
    }
    e.membership.Set(m);
    Apply(m, e, +1);
    ++backfilled;
  }
  return backfilled;
}

int SharedAggEngine::AddMember(const AggMemberSpec& spec) {
  RUMOR_CHECK(spec.fn == members_[0].fn && spec.attr == members_[0].attr)
      << "shared aggregation requires identical fn and attribute";
  RUMOR_CHECK(spec.window > 0) << "aggregate window must be positive";
  members_.push_back(spec);
  states_.emplace_back();
  active_.push_back(1);
  max_window_ = std::max(max_window_, spec.window);
  return Backfill(num_members() - 1);
}

void SharedAggEngine::DeactivateMember(int member) {
  RUMOR_DCHECK(member >= 0 && member < num_members());
  active_[member] = 0;
  states_[member].groups.clear();
  states_[member].cursor = base_ + static_cast<int64_t>(entries_.size());
}

int SharedAggEngine::FindInactiveMember() const {
  for (int m = 0; m < num_members(); ++m) {
    if (!active_[m]) return m;
  }
  return -1;
}

int SharedAggEngine::ReuseMember(int member, const AggMemberSpec& spec) {
  RUMOR_CHECK(member >= 0 && member < num_members());
  RUMOR_CHECK(!active_[member]) << "slot is still in use";
  RUMOR_CHECK(spec.fn == members_[0].fn && spec.attr == members_[0].attr)
      << "shared aggregation requires identical fn and attribute";
  RUMOR_CHECK(spec.window > 0) << "aggregate window must be positive";
  members_[member] = spec;
  active_[member] = 1;
  max_window_ = std::max(max_window_, spec.window);
  RUMOR_DCHECK(states_[member].groups.empty());
  return Backfill(member);
}

void SharedAggEngine::ExtractState(AggEngineState* out) const {
  out->entries.clear();
  out->members.assign(members_.size(), AggMemberState{});

  for (size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    const int64_t abs = base_ + static_cast<int64_t>(i);
    BitVector live(num_members());
    for (int m = 0; m < num_members(); ++m) {
      if (active_[m] && abs >= states_[m].cursor && EntryHasMember(e, m)) {
        live.Set(m);
      }
    }
    if (live.None()) continue;  // fully expired; nothing left to retract
    AggLogEntry saved;
    saved.ts = e.ts;
    saved.value = e.value;
    saved.tuple.ts = e.tuple.ts();
    saved.tuple.values.assign(e.tuple.values().begin(),
                              e.tuple.values().end());
    saved.membership = std::move(live);
    out->entries.push_back(std::move(saved));
  }

  for (int m = 0; m < num_members(); ++m) {
    AggMemberState& member = out->members[m];
    // The cursor is derivable (first set bit); stored for readability only.
    member.cursor = static_cast<int64_t>(out->entries.size());
    for (size_t i = 0; i < out->entries.size(); ++i) {
      if (out->entries[i].membership.Test(m)) {
        member.cursor = static_cast<int64_t>(i);
        break;
      }
    }
    if (!active_[m]) continue;
    for (const auto& [key, g] : states_[m].groups) {
      AggGroupState saved;
      saved.key = key.values;
      saved.count = g.count;
      saved.isum = g.isum;
      saved.double_count = g.double_count;
      saved.dsum = g.dsum;
      member.groups.push_back(std::move(saved));
    }
  }
}

Status SharedAggEngine::LoadState(const AggEngineState& state,
                                  const std::vector<int>& src_members) {
  if (!entries_.empty()) {
    return Status::Internal("aggregate state restore needs an empty engine");
  }
  if (src_members.size() != static_cast<size_t>(num_members())) {
    return Status::Internal("aggregate member mapping size mismatch");
  }

  // Re-log the saved entries that at least one restored member still needs.
  for (const AggLogEntry& saved : state.entries) {
    BitVector membership(num_members());
    for (int r = 0; r < num_members(); ++r) {
      const int s = src_members[r];
      if (s >= 0 && s < saved.membership.size() && saved.membership.Test(s)) {
        membership.Set(r);
      }
    }
    if (membership.None()) continue;
    Entry e;
    e.ts = saved.ts;
    e.value = saved.value;
    e.tuple = Tuple::Make(saved.tuple.values, saved.tuple.ts);
    e.membership = std::move(membership);
    entries_.push_back(std::move(e));
  }

  for (int r = 0; r < num_members(); ++r) {
    MemberState& st = states_[r];
    st.cursor = base_ + static_cast<int64_t>(entries_.size());
    const int s = src_members[r];
    if (!active_[r] || s < 0) continue;
    if (s >= static_cast<int>(state.members.size())) {
      return Status::Internal("aggregate member mapping out of range");
    }
    // Replay the member's live entries in log (timestamp) order. This
    // rebuilds the extrema stacks / ordered multisets under the same FIFO
    // discipline live processing follows, and recomputes the group
    // numerics — which are then replaced by the saved bit-exact values so
    // restored running sums match the uninterrupted run to the last bit.
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      if (!e.membership.Test(r)) continue;
      if (st.cursor > base_ + static_cast<int64_t>(i)) {
        st.cursor = base_ + static_cast<int64_t>(i);
      }
      Apply(r, e, +1);
    }
    const std::vector<AggGroupState>& saved_groups = state.members[s].groups;
    if (st.groups.size() != saved_groups.size()) {
      return Status::InvalidArgument(
          "snapshot aggregate state inconsistent: replayed group count "
          "does not match the saved accumulators");
    }
    for (const AggGroupState& g : saved_groups) {
      auto it = st.groups.find(ValueVec{g.key});
      if (it == st.groups.end()) {
        return Status::InvalidArgument(
            "snapshot aggregate state inconsistent: saved group key has no "
            "live entries in the saved log");
      }
      if (it->second.count != g.count) {
        return Status::InvalidArgument(
            "snapshot aggregate state inconsistent: saved group count does "
            "not match the saved log");
      }
      it->second.count = g.count;
      it->second.isum = g.isum;
      it->second.dsum = g.dsum;
      it->second.double_count = g.double_count;
    }
  }
  return Status::OK();
}

int64_t SharedAggEngine::ApproxBytes() const {
  // Hash/tree node bookkeeping estimate (pointers, hash, allocator rounding).
  constexpr int64_t kNodeOverhead = 48;
  int64_t b = static_cast<int64_t>(entries_.size()) * sizeof(Entry);
  for (const MemberState& state : states_) {
    for (const auto& [key, group] : state.groups) {
      b += kNodeOverhead + static_cast<int64_t>(sizeof(key)) +
           static_cast<int64_t>(key.values.capacity() * sizeof(Value)) +
           static_cast<int64_t>(sizeof(group));
      // Two-stacks items live in two vectors; multiset values in tree nodes.
      b += static_cast<int64_t>(group.extrema.size()) * 2 *
           static_cast<int64_t>(sizeof(Value));
      b += static_cast<int64_t>(group.ordered.size()) *
           (static_cast<int64_t>(sizeof(Value)) + kNodeOverhead);
    }
  }
  return b;
}

}  // namespace rumor
