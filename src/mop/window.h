// Shared sliding-window state engines used by the m-op implementations:
//
//  * ValueVec / group-key hashing for group-by aggregates.
//  * KeyedBuffer<T>: an append-only, timestamp-ordered buffer with absolute
//    indexing, optional hash index on a key value (the AI-index equivalent),
//    in-place kill (consume-on-match), and front expiry. Backs join sides
//    and ;/µ instance stores.
//  * SharedAggEngine: the two-level shared aggregation state of [Zhang 05] /
//    [Krishnamurthy 06]: one shared entry log, per-member expiry cursors
//    (members may have different windows), per-(member, group) running
//    aggregates, and fragment awareness via entry memberships (an entry
//    contributes to member i iff its membership bit i is set).
#ifndef RUMOR_MOP_WINDOW_H_
#define RUMOR_MOP_WINDOW_H_

#include <deque>
#include <functional>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/bitvector.h"
#include "common/status.h"
#include "common/tuple.h"
#include "mop/mop_state.h"
#include "query/query.h"

namespace rumor {

// --- group keys -------------------------------------------------------------

struct ValueVec {
  std::vector<Value> values;

  bool operator==(const ValueVec& other) const {
    return values == other.values;
  }
};

struct ValueVecHash {
  size_t operator()(const ValueVec& v) const {
    uint64_t h = Mix64(v.values.size());
    for (const Value& x : v.values) h = HashCombine(h, x.Hash());
    return h;
  }
};

// Extracts the group-by key of `t`.
inline ValueVec GroupKeyOf(const Tuple& t, const std::vector<int>& group_by) {
  ValueVec key;
  key.values.reserve(group_by.size());
  for (int g : group_by) key.values.push_back(t.at(g));
  return key;
}

// --- keyed buffer -------------------------------------------------------------

// Entries must be added in non-decreasing timestamp order. When `indexed` is
// true, lookups by key touch only the matching hash bucket; expired bucket
// slots are pruned lazily during lookups.
template <typename T>
class KeyedBuffer {
 public:
  explicit KeyedBuffer(bool indexed) : indexed_(indexed) {}

  struct Slot {
    T item;
    Value key;
    Timestamp ts;
    bool alive = true;
  };

  int64_t Add(T item, Value key, Timestamp ts) {
    int64_t abs = base_ + static_cast<int64_t>(slots_.size());
    slots_.push_back(Slot{std::move(item), key, ts, true});
    if (indexed_) index_[slots_.back().key].push_back(abs);
    ++live_;
    return abs;
  }

  // Drops entries with ts < min_ts from the front (they can never match
  // again). Dead (consumed) entries at the front are dropped too.
  void ExpireBefore(Timestamp min_ts) {
    while (!slots_.empty() &&
           (slots_.front().ts < min_ts || !slots_.front().alive)) {
      if (slots_.front().alive) --live_;
      slots_.pop_front();
      ++base_;
    }
  }

  // Marks the entry at absolute index `abs` dead.
  void Kill(int64_t abs) {
    int64_t rel = abs - base_;
    RUMOR_DCHECK(rel >= 0 && rel < static_cast<int64_t>(slots_.size()));
    if (slots_[rel].alive) --live_;
    slots_[rel].alive = false;
  }

  // Visits live slots (optionally only those whose key equals *key when the
  // buffer is indexed). fn(abs_index, Slot&) may mutate the slot's item or
  // kill it via alive=false.
  template <typename Fn>
  void ForCandidates(const Value* key, Fn&& fn) {
    if (indexed_ && key != nullptr) {
      auto it = index_.find(*key);
      if (it == index_.end()) return;
      std::vector<int64_t>& bucket = it->second;
      size_t w = 0;
      for (size_t r = 0; r < bucket.size(); ++r) {
        int64_t abs = bucket[r];
        int64_t rel = abs - base_;
        if (rel < 0) continue;  // expired; prune
        Slot& slot = slots_[rel];
        if (!slot.alive) continue;  // consumed; prune
        bucket[w++] = abs;
        fn(abs, slot);
      }
      bucket.resize(w);
      if (bucket.empty()) index_.erase(it);
      return;
    }
    for (size_t i = 0; i < slots_.size(); ++i) {
      Slot& slot = slots_[i];
      if (slot.alive) fn(base_ + static_cast<int64_t>(i), slot);
    }
  }

  // Visits every live slot in insertion (timestamp) order: fn(const Slot&).
  // Used by checkpointing; consumed and front-expired slots are skipped.
  template <typename Fn>
  void ForAllLive(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.alive) fn(slot);
    }
  }

  // Retained slots (including dead ones not yet dropped from the front).
  size_t size() const { return slots_.size(); }
  // Live (not consumed, not expired-from-front) entries.
  size_t live_size() const { return static_cast<size_t>(live_); }
  bool indexed() const { return indexed_; }

  // Approximate heap bytes of the retained slots and the hash index (tuple
  // payload blocks of stored items are accounted by the TupleArena).
  int64_t ApproxBytes() const {
    int64_t b = static_cast<int64_t>(slots_.size()) * sizeof(Slot);
    for (const auto& [key, bucket] : index_) {
      b += static_cast<int64_t>(sizeof(key)) + kNodeOverhead +
           static_cast<int64_t>(bucket.capacity()) * sizeof(int64_t);
    }
    return b;
  }

 private:
  // Assumed per-node bookkeeping of a hash-map entry (bucket pointer, hash,
  // allocator rounding) for the ApproxBytes estimate.
  static constexpr int64_t kNodeOverhead = 48;

  bool indexed_;
  std::deque<Slot> slots_;
  int64_t base_ = 0;
  int64_t live_ = 0;
  std::unordered_map<Value, std::vector<int64_t>> index_;
};

// --- two-stacks window extrema ----------------------------------------------

// Incremental MIN/MAX over a FIFO window, the two-stacks scheme of
// HammerSlide [Theodorakis 18] / SlideSide [Theodorakis 20]: values enter at
// the back and leave at the front in insertion order; each stack element
// caches the extremum of everything beneath it, so Push, PopFront, and Best
// are amortized O(1) with no per-element allocation (vs O(log n) node
// allocations for an ordered multiset, or O(window) recompute).
//
// The comparison direction is passed per call (the owning engine's aggregate
// function is fixed), which keeps this default-constructible inside
// hash-map-stored group states.
class TwoStacksExtrema {
 public:
  void Push(const Value& v, bool min) {
    back_.push_back(Item{v, back_.empty() ? v : Pick(v, back_.back().best,
                                                     min)});
  }

  // Removes the oldest value; `v` must equal it (FIFO discipline check).
  void PopFront(const Value& v, bool min) {
    if (front_.empty()) Flip(min);
    RUMOR_DCHECK(!front_.empty());
    RUMOR_DCHECK(front_.back().value == v) << "two-stacks eviction order";
    (void)v;
    front_.pop_back();
  }

  bool empty() const { return front_.empty() && back_.empty(); }
  size_t size() const { return front_.size() + back_.size(); }

  // Extremum of the whole window; CHECK-fails when empty.
  Value Best(bool min) const {
    RUMOR_DCHECK(!empty());
    if (front_.empty()) return back_.back().best;
    if (back_.empty()) return front_.back().best;
    return Pick(front_.back().best, back_.back().best, min);
  }

 private:
  struct Item {
    Value value;
    Value best;  // extremum of this item and everything beneath it
  };

  static const Value& Pick(const Value& a, const Value& b, bool min) {
    return (min ? a < b : b < a) ? a : b;
  }

  // Moves the back stack onto the front stack (reversing order) and rebuilds
  // the cached extrema; each element is flipped at most once per lifetime.
  void Flip(bool min) {
    while (!back_.empty()) {
      Value v = std::move(back_.back().value);
      back_.pop_back();
      front_.push_back(Item{v, front_.empty() ? v : Pick(v, front_.back().best,
                                                         min)});
    }
  }

  std::vector<Item> front_;  // leaves from the top (oldest at the top)
  std::vector<Item> back_;   // enters at the top (newest at the top)
};

// MIN/MAX maintenance implementation used by new SharedAggEngine instances;
// kOrderedSet is the legacy std::multiset path, kept for ablation benchmarks
// and cross-checking tests.
enum class MinMaxImpl : uint8_t { kTwoStacks, kOrderedSet };

// --- shared aggregation -------------------------------------------------------

// Per-member aggregate specification. All members of one engine must share
// the aggregate function and input attribute; group-by and window may
// differ (rule sα), and entries may apply to member subsets (rule cα).
struct AggMemberSpec {
  AggFn fn = AggFn::kCount;
  int attr = -1;  // -1 for COUNT
  std::vector<int> group_by;
  int64_t window = 0;

  uint64_t Signature() const;
};

class SharedAggEngine {
 public:
  explicit SharedAggEngine(std::vector<AggMemberSpec> members);

  // Process-wide default MIN/MAX implementation, captured by each engine at
  // construction (ablation benchmarks and cross-checking tests flip it;
  // production code leaves the kTwoStacks default).
  static void SetDefaultMinMaxImpl(MinMaxImpl impl);
  static MinMaxImpl default_min_max_impl();
  MinMaxImpl min_max_impl() const { return impl_; }

  // Processes tuple `t` on behalf of the members in `membership` (size =
  // #members). For each such member, updates its state and calls
  // emit(member, output) with output = (group values..., aggregate).
  // Window semantics: at emission time ts, member m aggregates entries with
  // entry.ts in (ts - window, ts].
  void Process(const Tuple& t, const BitVector& membership,
               const std::function<void(int, Tuple)>& emit);

  int num_members() const { return static_cast<int>(members_.size()); }
  // Number of entries currently retained in the shared log.
  size_t log_size() const { return entries_.size(); }
  // Number of live group states for `member` (memory observability).
  size_t group_count(int member) const {
    return states_[member].groups.size();
  }
  // Approximate heap bytes of the shared log and every member's group
  // states (MIN/MAX stacks and ordered sets included).
  int64_t ApproxBytes() const;

  // --- dynamic membership (online query churn) -------------------------------
  // Adds a member sharing this engine's fn/attr (group-by and window may
  // differ). The caller guarantees the new member reads the same stream as
  // the existing members (kShared / single-member-isolated discipline, where
  // every log entry applies to every member). The member's state is
  // backfilled from the retained log — entries within its window are applied
  // as if the member had been present when they arrived — so it starts warm
  // up to the log's retention horizon (max existing window). Returns the
  // number of backfilled entries.
  int AddMember(const AggMemberSpec& spec);

  // Deactivates a member (its query was removed): clears its group states,
  // parks its expiry cursor, and skips it on future input. The member index
  // stays valid so other members' indices do not shift, and the slot can be
  // reused by a later ReuseMember — add/remove churn does not grow the
  // member set without bound.
  void DeactivateMember(int member);
  bool member_active(int member) const { return active_[member] != 0; }
  // Index of a deactivated member slot, or -1.
  int FindInactiveMember() const;
  // Re-arms the deactivated slot `member` with a (possibly different) spec
  // under the same fn/attr discipline as AddMember, backfilling its state
  // from the retained log. Returns the number of backfilled entries.
  int ReuseMember(int member, const AggMemberSpec& spec);

  // --- checkpoint/restore ---------------------------------------------------
  // Serializes the retained log and per-member group accumulators into
  // `out` (slots are left for the caller). Entry memberships are
  // *normalized*: bits of members whose expiry cursor already passed an
  // entry are cleared, so each member's cursor is recoverable as the index
  // of its first set bit — which also makes per-shard logs mergeable by a
  // plain timestamp merge. Group numerics are saved bit-exactly.
  void ExtractState(AggEngineState* out) const;

  // Loads `state` into this freshly constructed (empty) engine.
  // `src_members[r]` names the saved engine-member index whose state
  // restored member r inherits (-1 = start empty). Entries are re-logged in
  // saved order; extrema stacks / ordered multisets are rebuilt by
  // replaying the log (same FIFO discipline as live processing) while the
  // saved accumulator numerics are adopted verbatim, with the replayed
  // per-group counts cross-checked against the saved ones.
  Status LoadState(const AggEngineState& state,
                   const std::vector<int>& src_members);

 private:
  struct Entry {
    Timestamp ts;
    Value value;  // aggregated attribute (null for COUNT)
    Tuple tuple;  // for group-key extraction on expiry
    BitVector membership;
  };

  struct GroupState {
    int64_t count = 0;
    int64_t isum = 0;
    double dsum = 0.0;
    int64_t double_count = 0;
    // MIN/MAX state — exactly one engaged, per the engine's min_max_impl().
    TwoStacksExtrema extrema;
    std::multiset<Value> ordered;
  };

  struct MemberState {
    int64_t cursor = 0;  // absolute index of first non-expired entry
    std::unordered_map<ValueVec, GroupState, ValueVecHash> groups;
  };

  void Apply(int member, const Entry& e, int sign);
  Value Extract(const GroupState& g) const;
  // Applies the retained in-window log entries to the (empty) state of
  // member `m` and positions its cursor; shared by AddMember/ReuseMember.
  int Backfill(int m);

  // Entries logged before a member joined carry a narrower membership
  // vector; such entries never belong to the late member.
  static bool EntryHasMember(const Entry& e, int member) {
    return member < e.membership.size() && e.membership.Test(member);
  }

  std::vector<AggMemberSpec> members_;
  std::vector<MemberState> states_;
  std::vector<char> active_;  // parallel to members_; 0 = deactivated
  std::deque<Entry> entries_;
  int64_t base_ = 0;
  int64_t max_window_ = 0;
  bool need_ordered_ = false;  // MIN/MAX
  bool is_min_ = false;        // kMin vs kMax (meaningful when need_ordered_)
  MinMaxImpl impl_ = MinMaxImpl::kTwoStacks;
};

}  // namespace rumor

#endif  // RUMOR_MOP_WINDOW_H_
