#include "mop/zip_mop.h"

#include "common/hash.h"

namespace rumor {

ZipMop::ZipMop(int left_width, int right_width)
    : Mop(MopType::kZip, /*num_inputs=*/2, /*num_outputs=*/1),
      left_width_(left_width),
      right_width_(right_width) {}

uint64_t ZipMop::MemberSignature(int i) const {
  RUMOR_DCHECK(i == 0);
  (void)i;
  uint64_t h = Mix64(static_cast<uint64_t>(MopType::kZip));
  h = HashCombine(h, static_cast<uint64_t>(left_width_));
  return HashCombine(h, static_cast<uint64_t>(right_width_));
}

void ZipMop::Process(int input_port, const ChannelTuple& ct, Emitter& out) {
  RUMOR_DCHECK(input_port == 0 || input_port == 1);
  RUMOR_DCHECK(ct.membership.Test(0)) << "zip inputs are capacity-1 channels";
  pending_[input_port].push_back(ct.tuple);
  while (!pending_[0].empty() && !pending_[1].empty()) {
    const Tuple& l = pending_[0].front();
    const Tuple& r = pending_[1].front();
    std::vector<Value> values;
    values.reserve(left_width_ + right_width_);
    for (int i = 0; i < l.size(); ++i) values.push_back(l.at(i));
    for (int i = 0; i < r.size(); ++i) values.push_back(r.at(i));
    Timestamp ts = std::max(l.ts(), r.ts());
    pending_[0].pop_front();
    pending_[1].pop_front();
    out.Emit(0, ChannelTuple{Tuple::Make(std::move(values), ts),
                             BitVector::Singleton(0, 1)});
    CountOut();
  }
}

}  // namespace rumor
