// ZipMop — pairs the k-th tuple of its left input with the k-th tuple of
// its right input and emits the concatenation (timestamp = the later of the
// two, which for its uses is always the shared input timestamp).
//
// This is the glue behind multi-aggregate SELECTs: every aggregate m-op
// emits exactly one output per input tuple of the affected group, and all
// aggregates of one SELECT read the same input, so zipping their output
// streams in arrival order reconstitutes one row per input tuple carrying
// every aggregate column. Per-port buffering keeps the pairing correct under
// any executor interleaving of the two branches.
#ifndef RUMOR_MOP_ZIP_MOP_H_
#define RUMOR_MOP_ZIP_MOP_H_

#include <deque>

#include "mop/mop.h"

namespace rumor {

class ZipMop : public Mop {
 public:
  // Widths of the left/right input schemas (the output is their concat).
  ZipMop(int left_width, int right_width);

  int num_members() const override { return 1; }
  uint64_t MemberSignature(int i) const override;

  void Process(int input_port, const ChannelTuple& tuple,
               Emitter& out) override;

  // Tuples buffered on one side awaiting their counterpart (zero between
  // fully propagated pushes).
  size_t pending() const { return pending_[0].size() + pending_[1].size(); }

 private:
  int left_width_;
  int right_width_;
  std::deque<Tuple> pending_[2];
};

}  // namespace rumor

#endif  // RUMOR_MOP_ZIP_MOP_H_
