#include "plan/compile.h"

#include "common/str_util.h"
#include "mop/aggregate_mop.h"
#include "mop/iterate_mop.h"
#include "mop/join_mop.h"
#include "mop/projection_mop.h"
#include "mop/selection_mop.h"
#include "mop/sequence_mop.h"
#include "mop/zip_mop.h"

namespace rumor {

namespace {

class Compiler {
 public:
  Compiler(Plan* plan, const std::string& query_name)
      : plan_(plan), query_name_(query_name) {}

  // Returns the capacity-1 channel carrying the node's output.
  Result<ChannelId> Lower(const QueryNodePtr& node) {
    switch (node->op()) {
      case QueryOp::kSource:
        return LowerSource(*node);
      case QueryOp::kSelect:
        return LowerUnary(node, [&](const QueryNode& n) {
          return std::make_unique<SelectionMop>(
              std::vector<SelectionMop::Member>{{0, {n.predicate()}}},
              OutputMode::kPerMemberPorts);
        });
      case QueryOp::kProject:
        return LowerUnary(node, [&](const QueryNode& n) {
          return std::make_unique<ProjectionMop>(
              std::vector<ProjectionMop::Member>{{0, {n.map()}}},
              OutputMode::kPerMemberPorts);
        });
      case QueryOp::kAggregate:
        return LowerUnary(node, [&](const QueryNode& n) {
          AggMemberSpec spec{n.agg_fn(), n.agg_attr(), n.group_by(),
                             n.window()};
          return std::make_unique<AggregateMop>(
              std::vector<AggregateMop::Member>{{0, spec}},
              AggregateMop::Sharing::kIsolated, OutputMode::kPerMemberPorts);
        });
      case QueryOp::kJoin:
        return LowerBinary(node, [&](const QueryNode& n) {
          JoinDef def{n.predicate(), n.window(), n.right_window()};
          return std::make_unique<JoinMop>(
              std::vector<JoinMop::Member>{{0, 0, def}},
              JoinMop::Sharing::kIsolated, OutputMode::kPerMemberPorts);
        });
      case QueryOp::kSequence:
        return LowerBinary(node, [&](const QueryNode& n) {
          SequenceDef def{n.predicate(), n.window()};
          return std::make_unique<SequenceMop>(
              std::vector<SequenceMop::Member>{{0, 0, def}},
              SequenceMop::Sharing::kIsolated, OutputMode::kPerMemberPorts);
        });
      case QueryOp::kIterate:
        return LowerBinary(node, [&](const QueryNode& n) {
          IterateDef def{n.match_predicate(), n.rebind_predicate(),
                         n.window(), n.child(0)->output_schema().size(),
                         n.child(1)->output_schema().size()};
          return std::make_unique<IterateMop>(
              std::vector<IterateMop::Member>{{0, 0, def}},
              IterateMop::Sharing::kIsolated, OutputMode::kPerMemberPorts);
        });
      case QueryOp::kZip:
        return LowerBinary(node, [&](const QueryNode& n) {
          return std::make_unique<ZipMop>(
              n.child(0)->output_schema().size(),
              n.child(1)->output_schema().size());
        });
    }
    return Status::Internal("unknown query node");
  }

 private:
  Result<ChannelId> LowerSource(const QueryNode& node) {
    StreamId stream;
    if (auto existing = plan_->streams().FindSource(node.source_name())) {
      stream = *existing;
      if (!plan_->streams().SchemaOf(stream).CompatibleWith(
              node.output_schema())) {
        return Status::InvalidArgument(
            StrCat("source '", node.source_name(),
                   "' redeclared with a different schema"));
      }
    } else {
      stream = plan_->streams().AddSource(
          node.source_name(), node.output_schema(), node.sharable_label());
    }
    return plan_->SourceChannelOf(stream);
  }

  template <typename MakeMop>
  Result<ChannelId> LowerUnary(const QueryNodePtr& node, MakeMop&& make) {
    auto in = Lower(node->child(0));
    if (!in.ok()) return in;
    MopId mop = plan_->AddMop(make(*node));
    plan_->BindInput(mop, 0, in.value());
    ChannelId out = plan_->AddDerivedChannel(DerivedName(*node),
                                             node->output_schema());
    plan_->BindOutput(mop, 0, out);
    return out;
  }

  template <typename MakeMop>
  Result<ChannelId> LowerBinary(const QueryNodePtr& node, MakeMop&& make) {
    auto left = Lower(node->child(0));
    if (!left.ok()) return left;
    auto right = Lower(node->child(1));
    if (!right.ok()) return right;
    MopId mop = plan_->AddMop(make(*node));
    plan_->BindInput(mop, 0, left.value());
    plan_->BindInput(mop, 1, right.value());
    ChannelId out = plan_->AddDerivedChannel(DerivedName(*node),
                                             node->output_schema());
    plan_->BindOutput(mop, 0, out);
    return out;
  }

  std::string DerivedName(const QueryNode& node) {
    return StrCat(query_name_, ".", QueryOpName(node.op()), ".",
                  counter_++);
  }

  Plan* plan_;
  const std::string& query_name_;
  int counter_ = 0;
};

}  // namespace

Result<CompiledQuery> CompileQuery(const Query& query, Plan* plan) {
  RUMOR_CHECK(query.root != nullptr);
  Compiler compiler(plan, query.name);
  auto channel = compiler.Lower(query.root);
  if (!channel.ok()) return channel.status();
  // The root channel is capacity-1; its stream is the query's output.
  const ChannelDef& def = plan->channel(channel.value());
  RUMOR_CHECK(def.capacity() == 1);
  StreamId out = def.stream_at(0);
  plan->MarkOutput(out, query.name);
  return CompiledQuery{query.name, out};
}

Result<std::vector<CompiledQuery>> CompileQueries(
    const std::vector<Query>& queries, Plan* plan) {
  std::vector<CompiledQuery> out;
  out.reserve(queries.size());
  for (const Query& q : queries) {
    auto compiled = CompileQuery(q, plan);
    if (!compiled.ok()) return compiled.status();
    out.push_back(std::move(compiled).value());
  }
  return out;
}

}  // namespace rumor
