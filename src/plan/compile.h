// Lowers logical queries to an *unoptimized* plan: one single-member
// reference m-op per logical operator, one capacity-1 channel per operator
// output. Source nodes with the same name share one source stream. The rule
// engine (rules/rule_engine.h) then rewrites the plan to share work.
#ifndef RUMOR_PLAN_COMPILE_H_
#define RUMOR_PLAN_COMPILE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "plan/plan.h"
#include "query/query.h"

namespace rumor {

struct CompiledQuery {
  std::string name;
  StreamId output_stream = kInvalidStream;
};

// Compiles `queries` into `plan` (which may already hold compiled queries).
// Each query's root output stream is registered via Plan::MarkOutput under
// the query's name.
Result<std::vector<CompiledQuery>> CompileQueries(
    const std::vector<Query>& queries, Plan* plan);

// Single-query convenience.
Result<CompiledQuery> CompileQuery(const Query& query, Plan* plan);

}  // namespace rumor

#endif  // RUMOR_PLAN_COMPILE_H_
