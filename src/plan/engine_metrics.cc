#include "plan/engine_metrics.h"

#include <cstdio>
#include <sstream>

#include "common/json_writer.h"
#include "common/tuple.h"
#include "expr/program.h"
#include "mop/predicate_index_mop.h"

namespace rumor {

DataPlaneCounters DataPlaneCounters::Capture() {
  DataPlaneCounters c;
  const ProgramCounters& pc = Program::counters();
  c.program_fused = pc.fused;
  c.program_typed = pc.typed;
  c.program_generic = pc.generic;
  c.program_typed_fallbacks = pc.typed_fallbacks;
  const TupleArena* arena = TupleArena::Default();
  c.arena_requests = arena->requests();
  c.arena_heap_allocations = arena->allocations();
  c.arena_pooled = arena->pooled();
  c.arena_outstanding = arena->outstanding();
  c.arena_bytes_outstanding = arena->bytes_outstanding();
  c.arena_bytes_pooled = arena->bytes_pooled();
  return c;
}

DataPlaneCounters& DataPlaneCounters::operator+=(const DataPlaneCounters& o) {
  program_fused += o.program_fused;
  program_typed += o.program_typed;
  program_generic += o.program_generic;
  program_typed_fallbacks += o.program_typed_fallbacks;
  arena_requests += o.arena_requests;
  arena_heap_allocations += o.arena_heap_allocations;
  arena_pooled += o.arena_pooled;
  arena_outstanding += o.arena_outstanding;
  arena_bytes_outstanding += o.arena_bytes_outstanding;
  arena_bytes_pooled += o.arena_bytes_pooled;
  return *this;
}

void AccumulateShardPlan(EngineMetrics* em, const Plan& shard_plan) {
  for (EngineMetrics::MopRow& row : em->mops) {
    if (!shard_plan.IsLive(row.id)) continue;
    const Mop& mop = shard_plan.mop(row.id);
    const MopMetrics& m = mop.metrics();
    row.m.tuples_in += m.tuples_in;
    row.m.tuples_out += m.tuples_out;
    row.m.batches += m.batches;
    row.m.sampled_evals += m.sampled_evals;
    row.m.sampled_tuples += m.sampled_tuples;
    row.m.eval_ns += m.eval_ns;
    row.m.eval_hist.Merge(m.eval_hist);
    const int64_t state = mop.StateBytes();
    row.state_bytes += state;
    em->mop_state_bytes += state;
    if (mop.type() == MopType::kPredicateIndex) {
      const auto& index = static_cast<const PredicateIndexMop&>(mop);
      em->flat_probes += index.flat_probes();
      em->map_probes += index.map_probes();
    }
  }
}

void SetDataPlaneCounters(EngineMetrics* em, const DataPlaneCounters& t) {
  em->program_fused = t.program_fused;
  em->program_typed = t.program_typed;
  em->program_generic = t.program_generic;
  em->program_typed_fallbacks = t.program_typed_fallbacks;
  em->arena_requests = t.arena_requests;
  em->arena_heap_allocations = t.arena_heap_allocations;
  em->arena_pooled = t.arena_pooled;
  em->arena_outstanding = t.arena_outstanding;
  em->arena_bytes_outstanding = t.arena_bytes_outstanding;
  em->arena_bytes_pooled = t.arena_bytes_pooled;
}

EngineMetrics CollectEngineMetrics(const Plan& plan,
                                   const OptimizeStats& optimize,
                                   int64_t deliveries) {
  EngineMetrics em;
  em.optimize = optimize;
  em.deliveries = deliveries;
  em.queries = static_cast<int>(plan.outputs().size());

  for (ChannelId c = 0; c < plan.num_channels(); ++c) {
    if (plan.channel_dead(c)) continue;
    if (plan.ProducerOf(c).has_value() || !plan.ConsumersOf(c).empty()) {
      ++em.wired_channels;
    }
  }

  const std::vector<int> refs = plan.QueryRefCounts();
  for (MopId id : plan.LiveMops()) {
    const Mop& mop = plan.mop(id);
    EngineMetrics::MopRow row;
    row.id = id;
    row.name = mop.name();
    row.type = MopTypeName(mop.type());
    row.members = mop.num_members();
    row.query_refs = refs[id];
    row.state_bytes = mop.StateBytes();
    row.m = mop.metrics();
    em.mop_state_bytes += row.state_bytes;
    em.mops.push_back(std::move(row));

    ++em.live_mops;
    em.total_members += mop.num_members();
    if (refs[id] > 1) {
      ++em.shared_mops;
    } else {
      ++em.private_mops;
    }
    if (mop.type() == MopType::kPredicateIndex) {
      const auto& index = static_cast<const PredicateIndexMop&>(mop);
      em.flat_probes += index.flat_probes();
      em.map_probes += index.map_probes();
    }
  }
  em.mops_per_query =
      em.queries > 0 ? static_cast<double>(em.live_mops) / em.queries : 0.0;
  // Sync the OptimizeStats sharing snapshot from this walk — the engine
  // deliberately does not refresh it on the latency-critical live add/remove
  // path, so the copy carried in stats may be stale.
  em.optimize.queries = em.queries;
  em.optimize.live_mops = em.live_mops;
  em.optimize.total_members = em.total_members;
  em.optimize.shared_mops = em.shared_mops;

  SetDataPlaneCounters(&em, DataPlaneCounters::Capture());
  return em;
}

std::string EngineMetrics::ToString() const {
  std::ostringstream os;
  char buf[160];
  os << "engine: " << queries << " queries, " << live_mops << " m-ops ("
     << shared_mops << " shared, " << private_mops << " private), "
     << total_members << " members, " << wired_channels << " wired channels";
  std::snprintf(buf, sizeof(buf), ", %.2f m-ops/query", mops_per_query);
  os << buf << ", " << deliveries << " deliveries";
  if (!metrics_compiled) os << " [metrics compiled out]";
  os << "\n" << optimize.ToString() << "\n";
  std::snprintf(buf, sizeof(buf),
                "fast paths: vectorized_share=%.3f (fused=%lld typed=%lld "
                "generic=%lld fallbacks=%lld)",
                vectorized_share(), static_cast<long long>(program_fused),
                static_cast<long long>(program_typed),
                static_cast<long long>(program_generic),
                static_cast<long long>(program_typed_fallbacks));
  os << buf << "\n";
  std::snprintf(buf, sizeof(buf),
                "  index probes: flat=%lld map=%lld (flat_share=%.3f)",
                static_cast<long long>(flat_probes),
                static_cast<long long>(map_probes), flat_probe_share());
  os << buf << "\n";
  std::snprintf(buf, sizeof(buf),
                "  tuple arena: requests=%lld heap=%lld recycle_hit=%.3f "
                "pooled=%lld outstanding=%lld",
                static_cast<long long>(arena_requests),
                static_cast<long long>(arena_heap_allocations),
                arena_recycle_hit_rate(), static_cast<long long>(arena_pooled),
                static_cast<long long>(arena_outstanding));
  os << buf << "\n";
  if (latency.count() > 0) {
    os << "latency (ingress->sink, sampled): " << latency.Summary() << "\n";
  }
  std::snprintf(buf, sizeof(buf),
                "memory: arena_bytes=%lld (pooled=%lld) mop_state_bytes=%lld",
                static_cast<long long>(arena_bytes_outstanding),
                static_cast<long long>(arena_bytes_pooled),
                static_cast<long long>(mop_state_bytes));
  os << buf << "\n";
  if (share_index.present) {
    std::snprintf(buf, sizeof(buf),
                  "  share index: exact=%lld member=%lld index_targets=%lld "
                  "sel_singles=%lld agg_targets=%lld bytes=%lld",
                  static_cast<long long>(share_index.exact_entries),
                  static_cast<long long>(share_index.member_entries),
                  static_cast<long long>(share_index.index_target_entries),
                  static_cast<long long>(share_index.sel_single_entries),
                  static_cast<long long>(share_index.agg_target_entries),
                  static_cast<long long>(share_index.approx_bytes));
    os << buf << "\n";
  }
  if (shards > 1) {
    os << "sharded over " << shards << " workers:\n";
    for (const ShardRow& s : shard_rows) {
      std::snprintf(buf, sizeof(buf),
                    "  shard %-3d deliveries=%-12lld evals=%lld "
                    "arena_requests=%lld",
                    s.shard, static_cast<long long>(s.deliveries),
                    static_cast<long long>(s.counters.program_fused +
                                           s.counters.program_typed +
                                           s.counters.program_generic),
                    static_cast<long long>(s.counters.arena_requests));
      os << buf << "\n";
      std::snprintf(
          buf, sizeof(buf),
          "            in_hwm=%llu out_hwm=%llu push_stall_ns=%lld "
          "worker_stall_ns=%lld merge_lag_hwm=%llu",
          static_cast<unsigned long long>(s.in_depth_hwm),
          static_cast<unsigned long long>(s.out_depth_hwm),
          static_cast<long long>(s.push_stall_ns),
          static_cast<long long>(s.worker_stall_ns),
          static_cast<unsigned long long>(s.merge_lag_hwm));
      os << buf << "\n";
    }
  }
  for (const MopRow& row : mops) {
    std::snprintf(buf, sizeof(buf),
                  "  %-18s members=%-5d queries=%-5d in=%-10lld out=%-10lld "
                  "sel=%.4f batches=%lld",
                  row.name.c_str(), row.members, row.query_refs,
                  static_cast<long long>(row.m.tuples_in),
                  static_cast<long long>(row.m.tuples_out),
                  row.m.selectivity(),
                  static_cast<long long>(row.m.batches));
    os << buf;
    if (row.m.sampled_tuples > 0) {
      std::snprintf(buf, sizeof(buf), " ns/tuple=%.1f", row.m.ns_per_tuple());
      os << buf;
    }
    if (row.m.eval_hist.count() > 0) {
      std::snprintf(buf, sizeof(buf), " eval_p99=%lld",
                    static_cast<long long>(row.m.eval_hist.p99()));
      os << buf;
    }
    if (row.state_bytes > 0) {
      std::snprintf(buf, sizeof(buf), " state_bytes=%lld",
                    static_cast<long long>(row.state_bytes));
      os << buf;
    }
    os << "\n";
  }
  for (const QueryRow& q : query_rows) {
    os << "  query " << q.name << ": outputs=" << q.outputs << "\n";
  }
  return os.str();
}

std::string EngineMetrics::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("engine")
      .BeginObject()
      .KV("metrics_compiled", metrics_compiled)
      .KV("queries", queries)
      .KV("live_mops", live_mops)
      .KV("shared_mops", shared_mops)
      .KV("private_mops", private_mops)
      .KV("total_members", total_members)
      .KV("wired_channels", wired_channels)
      .KV("mops_per_query", mops_per_query)
      .KV("deliveries", deliveries)
      .KV("shards", shards)
      .EndObject();
  w.Key("optimize")
      .BeginObject()
      .KV("cse_merges", optimize.cse_merges)
      .KV("predicate_index_merges", optimize.predicate_index_merges)
      .KV("shared_aggregate_merges", optimize.shared_aggregate_merges)
      .KV("shared_join_merges", optimize.shared_join_merges)
      .KV("channel_merges", optimize.channel_merges)
      .KV("dynamic_adds", optimize.dynamic_adds)
      .KV("dynamic_removes", optimize.dynamic_removes)
      .KV("incremental_cse_merges", optimize.incremental_cse_merges)
      .KV("incremental_attach_merges", optimize.incremental_attach_merges)
      .KV("incremental_rule_merges", optimize.incremental_rule_merges)
      .KV("pruned_mops", optimize.pruned_mops)
      .KV("pruned_members", optimize.pruned_members)
      .EndObject();
  w.Key("fast_paths")
      .BeginObject()
      .Key("program")
      .BeginObject()
      .KV("fused", program_fused)
      .KV("typed", program_typed)
      .KV("generic", program_generic)
      .KV("typed_fallbacks", program_typed_fallbacks)
      .KV("vectorized_share", vectorized_share())
      .EndObject()
      .Key("predicate_index")
      .BeginObject()
      .KV("flat_probes", flat_probes)
      .KV("map_probes", map_probes)
      .KV("flat_share", flat_probe_share())
      .EndObject()
      .Key("tuple_arena")
      .BeginObject()
      .KV("requests", arena_requests)
      .KV("heap_allocations", arena_heap_allocations)
      .KV("recycle_hit_rate", arena_recycle_hit_rate())
      .KV("pooled", arena_pooled)
      .KV("outstanding", arena_outstanding)
      .EndObject()
      .EndObject();
  w.Key("latency")
      .BeginObject()
      .KV("count", latency.count())
      .KV("mean_ns", latency.mean())
      .KV("min_ns", latency.min())
      .KV("p50_ns", latency.p50())
      .KV("p90_ns", latency.p90())
      .KV("p99_ns", latency.p99())
      .KV("p999_ns", latency.p999())
      .KV("max_ns", latency.max())
      .EndObject();
  w.Key("memory")
      .BeginObject()
      .KV("arena_bytes_outstanding", arena_bytes_outstanding)
      .KV("arena_bytes_pooled", arena_bytes_pooled)
      .KV("mop_state_bytes", mop_state_bytes)
      .Key("share_index")
      .BeginObject()
      .KV("present", share_index.present)
      .KV("exact_entries", share_index.exact_entries)
      .KV("member_entries", share_index.member_entries)
      .KV("index_target_entries", share_index.index_target_entries)
      .KV("sel_single_entries", share_index.sel_single_entries)
      .KV("agg_target_entries", share_index.agg_target_entries)
      .KV("posting_entries", share_index.posting_entries)
      .KV("approx_bytes", share_index.approx_bytes)
      .EndObject()
      .EndObject();
  w.Key("shard_rows").BeginArray();
  for (const ShardRow& s : shard_rows) {
    w.BeginObject()
        .KV("shard", s.shard)
        .KV("deliveries", s.deliveries)
        .KV("program_fused", s.counters.program_fused)
        .KV("program_typed", s.counters.program_typed)
        .KV("program_generic", s.counters.program_generic)
        .KV("program_typed_fallbacks", s.counters.program_typed_fallbacks)
        .KV("arena_requests", s.counters.arena_requests)
        .KV("arena_heap_allocations", s.counters.arena_heap_allocations)
        .KV("arena_pooled", s.counters.arena_pooled)
        .KV("arena_outstanding", s.counters.arena_outstanding)
        .KV("arena_bytes_outstanding", s.counters.arena_bytes_outstanding)
        .KV("arena_bytes_pooled", s.counters.arena_bytes_pooled)
        .KV("in_depth_hwm", static_cast<int64_t>(s.in_depth_hwm))
        .KV("out_depth_hwm", static_cast<int64_t>(s.out_depth_hwm))
        .KV("push_stall_ns", s.push_stall_ns)
        .KV("worker_stall_ns", s.worker_stall_ns)
        .KV("merge_lag_hwm", static_cast<int64_t>(s.merge_lag_hwm))
        .EndObject();
  }
  w.EndArray();
  w.Key("mops").BeginArray();
  for (const MopRow& row : mops) {
    w.BeginObject()
        .KV("id", static_cast<int64_t>(row.id))
        .KV("name", row.name)
        .KV("type", row.type)
        .KV("members", row.members)
        .KV("query_refs", row.query_refs)
        .KV("tuples_in", row.m.tuples_in)
        .KV("tuples_out", row.m.tuples_out)
        .KV("selectivity", row.m.selectivity())
        .KV("batches", row.m.batches)
        .KV("sampled_evals", row.m.sampled_evals)
        .KV("sampled_tuples", row.m.sampled_tuples)
        .KV("eval_ns", row.m.eval_ns)
        .KV("ns_per_tuple", row.m.ns_per_tuple())
        .KV("eval_p50_ns", row.m.eval_hist.p50())
        .KV("eval_p99_ns", row.m.eval_hist.p99())
        .KV("state_bytes", row.state_bytes)
        .EndObject();
  }
  w.EndArray();
  w.Key("queries").BeginArray();
  for (const QueryRow& q : query_rows) {
    w.BeginObject().KV("name", q.name).KV("outputs", q.outputs).EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

}  // namespace rumor
