// EngineMetrics — one self-contained snapshot of everything the runtime
// knows about a (possibly running) shared plan: sharing quality (the
// paper's m-ops-per-query argument), per-m-op tuple counters and sampled
// costs, and the fast-path efficacy counters of the data plane (vectorized
// predicate evaluation, flat index probes, tuple-arena recycling).
//
// Collected by StreamEngine::CollectMetrics() (or CollectEngineMetrics for
// raw Plan/Executor users); serializes to human text (ToString) and JSON
// (ToJson, via common/json_writer — schema documented in the README's
// Observability section).
#ifndef RUMOR_PLAN_ENGINE_METRICS_H_
#define RUMOR_PLAN_ENGINE_METRICS_H_

#include <string>
#include <vector>

#include "common/metrics.h"
#include "plan/plan.h"
#include "rules/rule_engine.h"

namespace rumor {

// Snapshot of one thread's data-plane fast-path counters: the thread_local
// ProgramCounters plus the thread's TupleArena stats. Workers of a sharded
// run capture this before publishing batch completion, so CollectMetrics can
// aggregate across threads instead of silently reporting only the calling
// thread's counters.
struct DataPlaneCounters {
  int64_t program_fused = 0;
  int64_t program_typed = 0;
  int64_t program_generic = 0;
  int64_t program_typed_fallbacks = 0;
  int64_t arena_requests = 0;
  int64_t arena_heap_allocations = 0;
  int64_t arena_pooled = 0;
  int64_t arena_outstanding = 0;
  int64_t arena_bytes_outstanding = 0;
  int64_t arena_bytes_pooled = 0;

  // Counters of the calling thread.
  static DataPlaneCounters Capture();
  DataPlaneCounters& operator+=(const DataPlaneCounters& o);
};

struct EngineMetrics {
  // True when the library was compiled with the metrics layer (the
  // RUMOR_METRICS CMake toggle); counters are all zero otherwise.
  bool metrics_compiled = RUMOR_METRICS_ENABLED != 0;

  // --- plan shape / sharing quality ---------------------------------------
  int queries = 0;
  int live_mops = 0;
  int wired_channels = 0;
  int shared_mops = 0;   // reached by > 1 query
  int private_mops = 0;  // reached by <= 1 query
  int total_members = 0;
  double mops_per_query = 0.0;
  int64_t deliveries = 0;  // executor scheduling work so far

  // Merge history (static Start() pass + dynamic churn).
  OptimizeStats optimize;

  // --- per-m-op runtime rows ----------------------------------------------
  struct MopRow {
    MopId id = kInvalidMop;
    std::string name;
    const char* type = "";
    int members = 0;
    int query_refs = 0;  // queries whose output depends on this m-op
    int64_t state_bytes = 0;  // Mop::StateBytes (summed across shards)
    MopMetrics m;
  };
  std::vector<MopRow> mops;

  // --- per-query rows (filled by StreamEngine; empty for raw plans) --------
  struct QueryRow {
    std::string name;
    int64_t outputs = 0;  // results delivered so far
  };
  std::vector<QueryRow> query_rows;

  // --- end-to-end latency ---------------------------------------------------
  // Sampled ingress->sink latency distribution: single-threaded runs record
  // push-call to output-delivery inside the executor; sharded ordered runs
  // record push-call to ordered-merge delivery on the control thread. Empty
  // under -DRUMOR_METRICS=OFF or when nothing was sampled yet.
  LatencyHistogram latency;

  // --- sharded execution (filled when the engine runs >1 shard) ------------
  int shards = 1;
  struct ShardRow {
    int shard = 0;
    int64_t deliveries = 0;  // that shard executor's scheduling work
    DataPlaneCounters counters;
    // Backpressure gauges (zero under -DRUMOR_METRICS=OFF).
    uint64_t in_depth_hwm = 0;    // input-ring occupancy high-watermark
    uint64_t out_depth_hwm = 0;   // output-ring occupancy high-watermark
    int64_t push_stall_ns = 0;    // control thread stalled acquiring shells
    int64_t worker_stall_ns = 0;  // worker parked waiting for the merge
    uint64_t merge_lag_hwm = 0;   // max epochs completed ahead of the merge
  };
  std::vector<ShardRow> shard_rows;

  // --- memory ---------------------------------------------------------------
  // Byte gauges (zero under -DRUMOR_METRICS=OFF except share_index, which is
  // a container-walk estimate and always available).
  int64_t arena_bytes_outstanding = 0;  // live tuple payload blocks
  int64_t arena_bytes_pooled = 0;       // recycled blocks held for reuse
  int64_t mop_state_bytes = 0;          // sum of MopRow::state_bytes
  struct ShareIndexStats {
    bool present = false;  // engine keeps a ShareIndex (indexed merge path)
    int64_t exact_entries = 0;
    int64_t member_entries = 0;
    int64_t index_target_entries = 0;
    int64_t sel_single_entries = 0;
    int64_t agg_target_entries = 0;
    int64_t posting_entries = 0;
    int64_t approx_bytes = 0;
  };
  ShareIndexStats share_index;

  // --- fast-path efficacy ---------------------------------------------------
  // Predicate evaluation on this thread (fused/typed vs generic).
  int64_t program_fused = 0;
  int64_t program_typed = 0;
  int64_t program_generic = 0;
  int64_t program_typed_fallbacks = 0;
  // Predicate-index probes, summed over the plan's sσ m-ops.
  int64_t flat_probes = 0;
  int64_t map_probes = 0;
  // This thread's tuple arena.
  int64_t arena_requests = 0;
  int64_t arena_heap_allocations = 0;
  int64_t arena_pooled = 0;
  int64_t arena_outstanding = 0;

  double vectorized_share() const {
    const int64_t t = program_fused + program_typed + program_generic;
    return t > 0
               ? static_cast<double>(program_fused + program_typed) / t
               : 0.0;
  }
  double flat_probe_share() const {
    const int64_t t = flat_probes + map_probes;
    return t > 0 ? static_cast<double>(flat_probes) / t : 0.0;
  }
  double arena_recycle_hit_rate() const {
    return arena_requests > 0
               ? static_cast<double>(arena_requests - arena_heap_allocations) /
                     arena_requests
               : 0.0;
  }

  // Human-readable report (sections mirror the JSON schema).
  std::string ToString() const;
  // The full snapshot as a JSON document (valid per JsonLint).
  std::string ToJson() const;
};

// Builds the snapshot from a plan: shape, sharing quality, per-m-op rows,
// probe counters, plus the calling thread's program/arena counters.
// `deliveries` is Executor::deliveries() (0 if not running). query_rows is
// left empty — only the engine knows query names and delivered counts.
EngineMetrics CollectEngineMetrics(const Plan& plan,
                                   const OptimizeStats& optimize,
                                   int64_t deliveries);

// Folds one shard replica's plan into a snapshot built from shard 0's plan:
// per-m-op rows are summed by m-op id (replicas compile identically, so ids
// line up) and predicate-index probe counters accumulate. The caller must
// only invoke this while the replica's worker is quiesced.
void AccumulateShardPlan(EngineMetrics* em, const Plan& shard_plan);

// Replaces the snapshot's thread-scoped fast-path counters with `totals`
// (the sum over every participating thread).
void SetDataPlaneCounters(EngineMetrics* em, const DataPlaneCounters& totals);

}  // namespace rumor

#endif  // RUMOR_PLAN_ENGINE_METRICS_H_
