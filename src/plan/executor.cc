#include "plan/executor.h"

#include <chrono>
#include <deque>

namespace rumor {

#if RUMOR_METRICS_ENABLED
namespace {
int64_t MonotonicNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace
#endif

// Adapter handing an m-op's emissions back to the executor with the emitting
// m-op's identity attached. Emissions are staged in emit_scratch_ and pushed
// onto the work stack in reverse once the m-op returns, so the first
// emission's whole subtree runs before the second emission — the same order
// the former recursive dispatch produced.
class Executor::PortEmitter : public Emitter {
 public:
  PortEmitter(Executor* executor, MopId mop)
      : executor_(executor),
        out_channels_(executor->plan_->output_channels(mop).data()) {}

  void Emit(int output_port, ChannelTuple tuple) override {
    // Output wiring is frozen while a push is in flight, so the channel
    // table is resolved once per m-op visit, not per emission.
    ChannelId channel = out_channels_[output_port];
    RUMOR_DCHECK(channel != kInvalidChannel);
    if (executor_->TryDeliverLeaf(channel, tuple)) return;
    executor_->emit_scratch_.push_back(
        Task{Task::kChannel, channel, ChannelEnd{}, std::move(tuple)});
  }

  // Moves the staged emissions onto the work stack (reversed, so LIFO pop
  // order equals emission order).
  void Flush() {
    std::vector<Task>& stack = executor_->stack_;
    std::vector<Task>& scratch = executor_->emit_scratch_;
    for (size_t i = scratch.size(); i > 0; --i) {
      stack.push_back(std::move(scratch[i - 1]));
    }
    scratch.clear();
  }

 private:
  Executor* executor_;
  const ChannelId* out_channels_;
};

// Collects a whole batch's emissions into the executor's per-channel batch
// buffers (which retain capacity across batches — the steady state of the
// batched path allocates nothing beyond tuple payloads). Channels receiving
// their first tuple are recorded in touched_channels_ so RunBatch knows
// what to propagate next.
class Executor::BatchEmitter : public Emitter {
 public:
  BatchEmitter(Executor* executor, MopId mop)
      : executor_(executor),
        out_channels_(executor->plan_->output_channels(mop).data()) {}

  void Emit(int output_port, ChannelTuple tuple) override {
    ChannelId channel = out_channels_[output_port];
    RUMOR_DCHECK(channel != kInvalidChannel);
    if (executor_->TryDeliverLeaf(channel, tuple)) return;
    std::vector<ChannelTuple>& buffer = executor_->channel_buffers_[channel];
    if (buffer.empty()) executor_->touched_channels_.push_back(channel);
    buffer.push_back(std::move(tuple));
  }

 private:
  Executor* executor_;
  const ChannelId* out_channels_;
};

Executor::Executor(Plan* plan, OutputSink* sink)
    : plan_(plan), sink_(sink) {}

void Executor::Prepare() {
  plan_->Validate();
  BuildRouting();
  prepared_ = true;
}

void Executor::Refresh() {
  RUMOR_CHECK(prepared_) << "call Prepare() first";
  RUMOR_CHECK(!busy()) << "cannot refresh routing mid-push";
  RUMOR_DCHECK(stack_.empty() && deferred_.empty());
#ifndef NDEBUG
  // Debug builds re-validate the mutated plan on every refresh; release
  // builds rely on the add/remove paths having validated their rewrites.
  plan_->Validate();
#endif
  // Between pushes every batch buffer is drained, so re-deriving routing
  // state loses no in-flight work. The fast path patches only the channels
  // the plan's mutation log names since our cursor; a compacted log or a
  // bulk event (rollback) falls back to the full rebuild.
  std::vector<PlanEvent> events;
  bool reachable = plan_->ReadEventsSince(plan_cursor_, &events);
  if (!reachable) {
    BuildRouting();
    return;
  }
  for (const PlanEvent& e : events) {
    if (e.kind == PlanEvent::kBulk) {
      BuildRouting();
      return;
    }
  }
  ApplyPlanDelta(events);
  plan_cursor_ = plan_->mutation_seq();
}

void Executor::ApplyPlanDelta(const std::vector<PlanEvent>& events) {
  if (events.empty()) return;
  int num_channels = plan_->num_channels();
  if (static_cast<int>(routes_.size()) < num_channels) {
    routes_.resize(num_channels);
    batch_safe_.resize(num_channels, 0);
    batch_safe_epoch_.resize(num_channels, 0);
  }
  if (static_cast<int>(channel_buffers_.size()) < num_channels) {
    channel_buffers_.resize(num_channels);
  }
  if (static_cast<StreamId>(source_route_.size()) < plan_->streams().size()) {
    source_route_.resize(plan_->streams().size(), kInvalidChannel);
  }
  // Any rewiring can change reachability; invalidate all cached batch
  // safety in O(1) and recompute lazily.
  ++batch_epoch_;
  // Channels whose consumer lists changed, and streams whose output marks
  // changed (their channels' output slots need recomputing).
  std::vector<ChannelId> dirty_channels;
  std::vector<StreamId> dirty_streams;
  for (const PlanEvent& e : events) {
    switch (e.kind) {
      case PlanEvent::kInputBound:
        if (e.b >= 0) dirty_channels.push_back(e.b);
        if (e.c >= 0) dirty_channels.push_back(e.c);
        break;
      case PlanEvent::kChannelKilled:
        routes_[e.a] = Route{};  // tombstone: routes stay empty
        break;
      case PlanEvent::kSourceBound:
        source_route_[e.a] = e.b;
        break;
      case PlanEvent::kOutputMarked:
      case PlanEvent::kOutputUnmarked:
        dirty_streams.push_back(e.a);
        break;
      case PlanEvent::kOutputRemapped:
        dirty_streams.push_back(e.a);
        dirty_streams.push_back(e.b);
        break;
      case PlanEvent::kMopAdded:     // bindings arrive as their own events
      case PlanEvent::kMopRemoved:   // ditto (unbinds precede it)
      case PlanEvent::kMopGrew:      // producer-side only
      case PlanEvent::kMopMutated:   // member specs only, wiring untouched
      case PlanEvent::kOutputBound:  // producer-side only
      case PlanEvent::kChannelAdded: // fresh channel: default route is right
        break;
      case PlanEvent::kBulk:
        RUMOR_CHECK(false) << "bulk events take the full-rebuild path";
    }
  }
  for (ChannelId c : dirty_channels) {
    // ConsumersOf sorts by (mop, port) — the exact order the one-pass
    // BuildRouting produces — so a patched table matches a fresh build.
    routes_[c].consumers = plan_->ConsumersOf(c);
  }
  for (StreamId s : dirty_streams) {
    for (ChannelId c : plan_->ChannelsOfStream(s)) {
      const ChannelDef& def = plan_->channel(c);
      auto& slots = routes_[c].output_slots;
      slots.clear();
      for (int slot = 0; slot < def.capacity(); ++slot) {
        if (plan_->OutputMarksOn(def.stream_at(slot)) > 0) {
          slots.push_back({slot, def.stream_at(slot)});
        }
      }
    }
  }
}

void Executor::BuildRouting() {
  routes_.assign(plan_->num_channels(), Route{});
  // One pass over the m-ops (not ConsumersOf per channel, which is
  // quadratic on merged plans and painful on every live add).
  for (int m = 0; m < plan_->num_mops(); ++m) {
    if (!plan_->IsLive(m)) continue;
    const std::vector<ChannelId>& ins = plan_->input_channels(m);
    for (int p = 0; p < static_cast<int>(ins.size()); ++p) {
      if (ins[p] != kInvalidChannel) {
        routes_[ins[p]].consumers.push_back({m, p});
      }
    }
  }
  // Streams marked as query outputs, deduplicated (several queries may
  // share one output stream after CSE; each stream tuple is delivered once
  // per stream — the sink maps streams back to queries).
  std::vector<char> is_output(plan_->streams().size(), 0);
  for (const Plan::OutputDef& out : plan_->outputs()) {
    is_output[out.stream] = 1;
  }
  for (ChannelId c = 0; c < plan_->num_channels(); ++c) {
    if (plan_->channel_dead(c)) continue;  // tombstone: routes stay empty
    const ChannelDef& def = plan_->channel(c);
    for (int slot = 0; slot < def.capacity(); ++slot) {
      if (is_output[def.stream_at(slot)]) {
        routes_[c].output_slots.push_back({slot, def.stream_at(slot)});
      }
    }
  }
  source_route_.assign(plan_->streams().size(), kInvalidChannel);
  for (StreamId s = 0; s < plan_->streams().size(); ++s) {
    if (auto c = plan_->FindSourceChannel(s)) source_route_[s] = *c;
  }
  ++batch_epoch_;  // invalidates all cached batch safety
  batch_safe_.assign(plan_->num_channels(), 0);
  batch_safe_epoch_.assign(plan_->num_channels(), 0);
  // Grow-only so surviving channels keep their warmed buffer capacity.
  if (static_cast<int>(channel_buffers_.size()) < plan_->num_channels()) {
    channel_buffers_.resize(plan_->num_channels());
  }
  plan_cursor_ = plan_->mutation_seq();
}

bool Executor::BatchSafe(ChannelId channel) {
  RUMOR_DCHECK(prepared_) << "call Prepare() first";
  RUMOR_DCHECK(channel >= 0 && channel < plan_->num_channels());
  if (batch_safe_epoch_[channel] == batch_epoch_) {
    return batch_safe_[channel] != 0;
  }
  // BFS over the consumer graph, counting distinct reachable input ports
  // per m-op (dense MopId-indexed scratch; -1 = not yet reached). Two
  // reachable ports on one m-op means a batch would deliver all of one port
  // before the other, diverging from per-tuple order.
  std::vector<bool> seen_channel(plan_->num_channels(), false);
  std::vector<int32_t> first_port(plan_->num_mops(), -1);
  std::deque<ChannelId> queue{channel};
  seen_channel[channel] = true;
  bool safe = true;
  while (!queue.empty() && safe) {
    ChannelId c = queue.front();
    queue.pop_front();
    for (const ChannelEnd& end : routes_[c].consumers) {
      if (first_port[end.mop] >= 0) {
        if (first_port[end.mop] != end.port) {
          safe = false;
          break;
        }
        continue;  // mop already expanded via this port
      }
      first_port[end.mop] = end.port;
      for (ChannelId out : plan_->output_channels(end.mop)) {
        if (out != kInvalidChannel && !seen_channel[out]) {
          seen_channel[out] = true;
          queue.push_back(out);
        }
      }
    }
  }
  batch_safe_[channel] = safe ? 1 : 0;
  batch_safe_epoch_[channel] = batch_epoch_;
  return safe;
}

// Stamps the ingress clock for every sample_every_n-th top-level push; while
// the stamp is live, DeliverOutputs records end-to-end latency per output.
// Re-entrant pushes (sink handlers mid-drain/mid-batch) never stamp, so the
// outer push's stamp survives; their deferred tuples are measured against
// the outer ingress, which is when they actually entered the engine.
bool Executor::MaybeStampIngress() {
#if RUMOR_METRICS_ENABLED
  if (busy() || metrics_options_.sample_every_n <= 0) return false;
  if (--latency_countdown_ > 0) return false;
  latency_countdown_ = metrics_options_.sample_every_n;
  ingress_t0_ = MonotonicNs();
  return true;
#else
  return false;
#endif
}

void Executor::PushChannel(ChannelId channel, const ChannelTuple& tuple) {
  RUMOR_DCHECK(prepared_) << "call Prepare() first";
  RUMOR_DCHECK(channel >= 0 && channel < plan_->num_channels());
  const bool stamped = MaybeStampIngress();
  Dispatch(channel, tuple);
  if (stamped) ingress_t0_ = -1;
}

void Executor::PushSource(StreamId stream, const Tuple& tuple) {
  RUMOR_DCHECK(prepared_) << "call Prepare() first";
  ChannelId channel = source_route_[stream];
  RUMOR_CHECK(channel != kInvalidChannel)
      << "stream " << stream << " is not a wired source";
  const bool stamped = MaybeStampIngress();
  Dispatch(channel, ChannelTuple{tuple, BitVector::Singleton(0, 1)});
  if (stamped) ingress_t0_ = -1;
}

void Executor::PushSourceBatch(StreamId stream,
                               std::span<const Tuple> tuples) {
  RUMOR_DCHECK(prepared_) << "call Prepare() first";
  if (tuples.empty()) return;
  ChannelId channel = source_route_[stream];
  RUMOR_CHECK(channel != kInvalidChannel)
      << "stream " << stream << " is not a wired source";
  // Re-entrant batch pushes (from a sink handler mid-drain or mid-batch)
  // take the per-tuple path, whose deferral keeps timestamp order intact.
  if (tuples.size() == 1 || in_run_batch_ || draining_ ||
      !BatchSafe(channel)) {
    for (const Tuple& t : tuples) PushSource(stream, t);
    return;
  }
  const bool stamped = MaybeStampIngress();
  std::vector<ChannelTuple>& root = channel_buffers_[channel];
  root.reserve(tuples.size());
  for (const Tuple& t : tuples) {
    root.push_back(ChannelTuple{t, BitVector::Singleton(0, 1)});
  }
  RunBatch(channel);
  if (stamped) ingress_t0_ = -1;
}

void Executor::PushChannelBatch(ChannelId channel,
                                std::span<const ChannelTuple> tuples) {
  RUMOR_DCHECK(prepared_) << "call Prepare() first";
  RUMOR_DCHECK(channel >= 0 && channel < plan_->num_channels());
  if (tuples.empty()) return;
  if (tuples.size() == 1 || in_run_batch_ || draining_ ||
      !BatchSafe(channel)) {
    for (const ChannelTuple& t : tuples) PushChannel(channel, t);
    return;
  }
  const bool stamped = MaybeStampIngress();
  std::vector<ChannelTuple>& root = channel_buffers_[channel];
  root.assign(tuples.begin(), tuples.end());
  RunBatch(channel);
  if (stamped) ingress_t0_ = -1;
}

void Executor::DeliverOutputs(const Route& route, const ChannelTuple& tuple) {
  if (sink_ == nullptr) return;
#if RUMOR_METRICS_ENABLED
  if (ingress_t0_ >= 0) {
    // A latency-sampled push is in flight: count what this call delivers
    // and record one latency sample per output (one clock read per call).
    int64_t delivered = 0;
    for (const auto& [slot, stream] : route.output_slots) {
      if (tuple.membership.Test(slot)) {
        sink_->OnOutput(stream, tuple.tuple);
        ++delivered;
      }
    }
    if (delivered > 0) {
      output_latency_.Record(MonotonicNs() - ingress_t0_, delivered);
    }
    return;
  }
#endif
  for (const auto& [slot, stream] : route.output_slots) {
    if (tuple.membership.Test(slot)) sink_->OnOutput(stream, tuple.tuple);
  }
}

void Executor::Dispatch(ChannelId channel, ChannelTuple tuple) {
  // A sink handler may push back into the executor mid-drain or mid-batch.
  // Such re-entrant tuples carry later timestamps than work still in
  // flight, so running them immediately would corrupt window state; they
  // are deferred (in submission order) until the current cascade — the
  // in-flight tuple's full propagation, or the whole batch — completes.
  if (in_run_batch_ || draining_) {
    deferred_.push_back(Task{Task::kChannel, channel, ChannelEnd{},
                             std::move(tuple)});
    return;
  }
  stack_.push_back(Task{Task::kChannel, channel, ChannelEnd{},
                        std::move(tuple)});
  Drain();
}

void Executor::Drain() {
  draining_ = true;
  while (!stack_.empty() || !deferred_.empty()) {
    if (stack_.empty()) {
      // Reversed onto the LIFO stack so deferred tuples pop FIFO, each
      // subtree completing before the next deferred tuple starts.
      for (size_t i = deferred_.size(); i > 0; --i) {
        stack_.push_back(std::move(deferred_[i - 1]));
      }
      deferred_.clear();
    }
    Task task = std::move(stack_.back());
    stack_.pop_back();
    if (task.kind == Task::kChannel) {
      const Route& route = routes_[task.channel];
      DeliverOutputs(route, task.tuple);
      // Reverse order: LIFO pop then visits consumers first-to-last, each
      // consumer's emissions fully propagating before the next consumer.
      for (size_t i = route.consumers.size(); i > 0; --i) {
        stack_.push_back(Task{Task::kDeliver, kInvalidChannel,
                              route.consumers[i - 1],
                              i == 1 ? std::move(task.tuple) : task.tuple});
      }
    } else {
      ++deliveries_;
      Mop& mop = plan_->mop(task.end.mop);
      mop.CountIn();
      PortEmitter emitter(this, task.end.mop);
#if RUMOR_METRICS_ENABLED
      if (metrics_options_.sample_every_n > 0 && --metrics_countdown_ <= 0) {
        metrics_countdown_ = metrics_options_.sample_every_n;
        const int64_t t0 = MonotonicNs();
        mop.Process(task.end.port, task.tuple, emitter);
        const int64_t dt = MonotonicNs() - t0;
        MopMetrics& m = mop.mutable_metrics();
        m.eval_ns += dt;
        m.eval_hist.Record(dt);
        ++m.sampled_evals;
        ++m.sampled_tuples;
      } else {
        mop.Process(task.end.port, task.tuple, emitter);
      }
#else
      mop.Process(task.end.port, task.tuple, emitter);
#endif
      emitter.Flush();
    }
  }
  draining_ = false;
}

void Executor::RunBatch(ChannelId root) {
  // Each channel has a single producer, and on a batch-safe subgraph every
  // m-op is reached through exactly one input port — so each channel's
  // complete batch is available the moment its producer has run, and a
  // simple stack visits every channel exactly once, in topological order.
  // Callers stage the root batch in channel_buffers_[root].
  in_run_batch_ = true;
  batch_stack_.push_back(root);
  while (!batch_stack_.empty()) {
    ChannelId channel = batch_stack_.back();
    batch_stack_.pop_back();
    // Stable while consumers run: the consumer graph is acyclic and every
    // channel is visited once, so emissions never target `buffer`.
    std::vector<ChannelTuple>& buffer = channel_buffers_[channel];
    const Route& route = routes_[channel];
    if (!route.output_slots.empty()) {
      for (const ChannelTuple& t : buffer) DeliverOutputs(route, t);
    }
    for (const ChannelEnd& end : route.consumers) {
      const int64_t n = static_cast<int64_t>(buffer.size());
      deliveries_ += n;
      Mop& mop = plan_->mop(end.mop);
      mop.CountIn(n);
      mop.CountBatch();
      BatchEmitter emitter(this, end.mop);
#if RUMOR_METRICS_ENABLED
      if (metrics_options_.sample_every_n > 0 && --metrics_countdown_ <= 0) {
        metrics_countdown_ = metrics_options_.sample_every_n;
        const int64_t t0 = MonotonicNs();
        mop.ProcessBatch(end.port, buffer.data(), buffer.size(), emitter);
        const int64_t dt = MonotonicNs() - t0;
        MopMetrics& m = mop.mutable_metrics();
        m.eval_ns += dt;
        m.eval_hist.Record(dt);
        ++m.sampled_evals;
        m.sampled_tuples += n;
      } else {
        mop.ProcessBatch(end.port, buffer.data(), buffer.size(), emitter);
      }
#else
      mop.ProcessBatch(end.port, buffer.data(), buffer.size(), emitter);
#endif
      while (!touched_channels_.empty()) {
        batch_stack_.push_back(touched_channels_.back());
        touched_channels_.pop_back();
      }
    }
    buffer.clear();  // keeps capacity for the next batch
  }
  in_run_batch_ = false;
  // Tuples a sink handler pushed mid-batch were deferred; run them now.
  // (RunBatch never executes under an active Drain — batch pushes arriving
  // mid-drain fall back to the per-tuple path, which defers.)
  if (!deferred_.empty()) Drain();
}

}  // namespace rumor
