#include "plan/executor.h"

namespace rumor {

// Adapter handing an m-op's emissions back to the executor with the emitting
// m-op's identity attached.
class Executor::PortEmitter : public Emitter {
 public:
  PortEmitter(Executor* executor, MopId mop)
      : executor_(executor), mop_(mop) {}

  void Emit(int output_port, ChannelTuple tuple) override {
    ChannelId channel = executor_->plan_->output_channel(mop_, output_port);
    RUMOR_DCHECK(channel != kInvalidChannel);
    executor_->Dispatch(channel, tuple);
  }

 private:
  Executor* executor_;
  MopId mop_;
};

Executor::Executor(Plan* plan, OutputSink* sink)
    : plan_(plan), sink_(sink) {}

void Executor::Prepare() {
  plan_->Validate();
  routes_.assign(plan_->num_channels(), Route{});
  for (ChannelId c = 0; c < plan_->num_channels(); ++c) {
    routes_[c].consumers = plan_->ConsumersOf(c);
    const ChannelDef& def = plan_->channel(c);
    for (const Plan::OutputDef& out : plan_->outputs()) {
      if (auto slot = def.SlotOf(out.stream)) {
        // Several queries may share one output stream after CSE; deliver
        // each stream tuple once (consumers map query -> stream).
        bool seen = false;
        for (const auto& [s, stream] : routes_[c].output_slots) {
          seen |= s == *slot && stream == out.stream;
        }
        if (!seen) routes_[c].output_slots.push_back({*slot, out.stream});
      }
    }
  }
  source_route_.assign(plan_->streams().size(), kInvalidChannel);
  for (StreamId s = 0; s < plan_->streams().size(); ++s) {
    if (auto c = plan_->FindSourceChannel(s)) source_route_[s] = *c;
  }
  prepared_ = true;
}

void Executor::PushChannel(ChannelId channel, const ChannelTuple& tuple) {
  RUMOR_DCHECK(prepared_) << "call Prepare() first";
  RUMOR_DCHECK(channel >= 0 && channel < plan_->num_channels());
  Dispatch(channel, tuple);
}

void Executor::PushSource(StreamId stream, const Tuple& tuple) {
  RUMOR_DCHECK(prepared_) << "call Prepare() first";
  ChannelId channel = source_route_[stream];
  RUMOR_CHECK(channel != kInvalidChannel)
      << "stream " << stream << " is not a wired source";
  Dispatch(channel, ChannelTuple{tuple, BitVector::Singleton(0, 1)});
}

void Executor::Dispatch(ChannelId channel, const ChannelTuple& tuple) {
  const Route& route = routes_[channel];
  if (sink_ != nullptr) {
    for (const auto& [slot, stream] : route.output_slots) {
      if (tuple.membership.Test(slot)) sink_->OnOutput(stream, tuple.tuple);
    }
  }
  for (const ChannelEnd& end : route.consumers) {
    ++deliveries_;
    Mop& mop = plan_->mop(end.mop);
    mop.CountIn();
    PortEmitter emitter(this, end.mop);
    mop.Process(end.port, tuple, emitter);
  }
}

}  // namespace rumor
