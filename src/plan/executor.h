// Push-based executor. Source tuples are pushed in timestamp order; emitted
// channel tuples propagate through the (acyclic) consumer graph in
// depth-first order, driven by an explicit work stack (no recursion, so
// arbitrarily deep merged-plan chains cannot overflow the call stack).
// Streams marked as query outputs are delivered to an OutputSink.
//
// Two data-movement modes:
//  * event-at-a-time — PushSource / PushChannel, one tuple per call;
//  * batched — PushSourceBatch / PushChannelBatch, a run of consecutive
//    same-origin tuples per call. The batch traverses each m-op once via
//    per-channel batch buffers (Mop::ProcessBatch), amortizing routing and
//    dispatch overhead. Batching is applied only when it provably preserves
//    per-tuple semantics (see BatchSafe below); otherwise the batch call
//    transparently falls back to the per-tuple path. Either way, every
//    m-op sees the same delivery sequence and every output stream receives
//    the same tuples in the same order as per-tuple pushes; only the
//    *interleaving across different output streams* may differ (a batch
//    delivers a channel's outputs before downstream channels').
//
// Output channels with no consumers (typical query outputs) are delivered
// to the sink directly at emission time in both modes. Per-output-stream
// delivery order is always the emission order; the interleaving *across*
// output streams is unspecified (leaf outputs arrive before sibling
// emissions' downstream outputs).
#ifndef RUMOR_PLAN_EXECUTOR_H_
#define RUMOR_PLAN_EXECUTOR_H_

#include <span>
#include <vector>

#include "plan/plan.h"

namespace rumor {

// Receives query output tuples.
class OutputSink {
 public:
  virtual ~OutputSink() = default;
  virtual void OnOutput(StreamId stream, const Tuple& tuple) = 0;
};

// Counts outputs per stream (cheap; benchmarks). StreamIds are small and
// contiguous, so counters live in a dense vector; growth is geometric (a
// one-at-a-time resize would re-touch the whole array on every new stream).
class CountingSink : public OutputSink {
 public:
  void OnOutput(StreamId stream, const Tuple&) override {
    ++total_;
    if (stream >= static_cast<StreamId>(per_stream_.size())) Grow(stream);
    ++per_stream_[stream];
  }
  // Pre-sizes the counter array (benchmarks call this with the plan's
  // stream count so the measured loop never grows it).
  void Reserve(StreamId num_streams) {
    if (num_streams > static_cast<StreamId>(per_stream_.size())) {
      per_stream_.resize(num_streams, 0);
    }
  }
  int64_t total() const { return total_; }
  int64_t ForStream(StreamId s) const {
    return s < static_cast<StreamId>(per_stream_.size()) ? per_stream_[s] : 0;
  }

 private:
  void Grow(StreamId stream) {
    size_t size = per_stream_.empty() ? 16 : per_stream_.size();
    while (size <= static_cast<size_t>(stream)) size *= 2;
    per_stream_.resize(size, 0);
  }

  int64_t total_ = 0;
  std::vector<int64_t> per_stream_;
};

// Stores outputs per stream (tests / examples); dense StreamId-indexed.
class CollectingSink : public OutputSink {
 public:
  void OnOutput(StreamId stream, const Tuple& tuple) override {
    if (stream >= static_cast<StreamId>(tuples_.size())) {
      tuples_.resize(stream + 1);
    }
    tuples_[stream].push_back(tuple);
  }
  const std::vector<Tuple>& ForStream(StreamId s) const {
    static const std::vector<Tuple> kEmpty;
    return s >= 0 && s < static_cast<StreamId>(tuples_.size()) ? tuples_[s]
                                                               : kEmpty;
  }
  int64_t total() const {
    int64_t n = 0;
    for (const std::vector<Tuple>& v : tuples_) n += v.size();
    return n;
  }

 private:
  std::vector<std::vector<Tuple>> tuples_;
};

class Executor {
 public:
  // The plan must stay alive and unmodified while the executor runs.
  Executor(Plan* plan, OutputSink* sink);

  // Builds routing tables; validates the plan. Call once before pushing.
  void Prepare();

  // Re-syncs the routing tables after the plan changed underneath a running
  // executor (online query churn: AddQuery/RemoveQuery after Start). Patches
  // only the channels the plan's mutation log names since the last sync —
  // O(delta), not O(plan) — falling back to a full rebuild when the log was
  // compacted past our cursor or recorded a bulk change (rollback). Keeps
  // everything a sync does not invalidate: delivery counters, per-channel
  // batch buffers (and their warmed capacity) for channels that survive,
  // and m-op state (owned by the plan). Must not be called from inside a
  // push (CHECK-fails if busy()).
  void Refresh();

  // True while a push is propagating (an output handler is running). Plan
  // mutations are illegal in this window.
  bool busy() const { return draining_ || in_run_batch_; }

  // Pushes one tuple of a *source stream*; timestamps must be
  // non-decreasing per call sequence.
  void PushSource(StreamId stream, const Tuple& tuple);

  // Pushes a channel tuple into a producer-less channel (source-group
  // channels; paper §5.2 Workload 3 feeds channel C directly).
  void PushChannel(ChannelId channel, const ChannelTuple& tuple);

  // Pushes a run of consecutive tuples of one source stream. Semantically
  // equivalent to calling PushSource for each tuple in order — the tuples
  // must be consecutive in the global event order (no events of other
  // sources in between) and have non-decreasing timestamps.
  void PushSourceBatch(StreamId stream, std::span<const Tuple> tuples);

  // Batched variant of PushChannel under the same contract.
  void PushChannelBatch(ChannelId channel,
                        std::span<const ChannelTuple> tuples);

  // True if batches rooted at `channel` take the per-channel batch-buffer
  // path. A root is batch-safe iff no m-op has two or more *input ports*
  // reachable from it: for such m-ops a batch would reorder deliveries
  // across ports (all of port A before port B) relative to the per-tuple
  // interleaving, which can change stateful results. Single-input chains —
  // selections, projections, aggregations — are always safe.
  bool BatchSafe(ChannelId channel);

  // Tuples delivered to m-op inputs so far (scheduling work measure).
  int64_t deliveries() const { return deliveries_; }

  // Adjusts the metrics sampling knob (common/metrics.h); takes effect on
  // the next push. No-op when metrics are compiled out.
  void SetMetricsOptions(const MetricsOptions& options) {
    metrics_options_ = options;
    metrics_countdown_ = options.sample_every_n;
    latency_countdown_ = options.sample_every_n;
  }
  const MetricsOptions& metrics_options() const { return metrics_options_; }

  // End-to-end ingress→sink latency distribution: every sample_every_n-th
  // push call stamps the clock at entry, and each query output it produces
  // records (now - stamp). Covers the full propagation through the merged
  // plan, both per-tuple and batched. Empty when metrics are compiled out.
  const LatencyHistogram& output_latency() const { return output_latency_; }
  LatencyHistogram* mutable_output_latency() { return &output_latency_; }

 private:
  struct Route {
    std::vector<ChannelEnd> consumers;
    // Output slots: (channel slot, stream id) of streams marked as outputs.
    std::vector<std::pair<int, StreamId>> output_slots;
  };

  // One unit of event-at-a-time work, emulating the former recursion
  // exactly: a kChannel task fans a tuple out to the sink and its channel's
  // consumers; a kDeliver task runs one m-op on it and stages the
  // emissions. LIFO order reproduces depth-first traversal.
  struct Task {
    enum Kind : uint8_t { kChannel, kDeliver } kind;
    ChannelId channel;  // kChannel: target channel; kDeliver: unused
    ChannelEnd end;     // kDeliver: target (mop, port)
    ChannelTuple tuple;
  };

  class PortEmitter;
  class BatchEmitter;

  // Derives routes_/source_route_/batch_safe_ from the current plan (one
  // pass over the m-ops; Prepare and the Refresh fallback).
  void BuildRouting();
  // Patches the routing tables from a batch of plan mutation events
  // (Refresh fast path). The caller has checked the batch contains no kBulk.
  void ApplyPlanDelta(const std::vector<PlanEvent>& events);

  // Pushes a kChannel task and, unless a drain is already running higher up
  // the call stack, drains the work stack.
  void Dispatch(ChannelId channel, ChannelTuple tuple);
  void Drain();

  // Per-channel batch-buffer propagation; the caller stages the root batch
  // in channel_buffers_[root] (root must be batch-safe).
  void RunBatch(ChannelId root);
  void DeliverOutputs(const Route& route, const ChannelTuple& tuple);
  // Leaf shortcut shared by both emitters: a channel with no consumers only
  // feeds the sink, so deliver immediately instead of staging a task/batch.
  // Returns true when the emission was fully handled.
  bool TryDeliverLeaf(ChannelId channel, const ChannelTuple& tuple) {
    const Route& route = routes_[channel];
    if (!route.consumers.empty()) return false;
    DeliverOutputs(route, tuple);
    return true;
  }

  Plan* plan_;
  OutputSink* sink_;
  bool prepared_ = false;
  std::vector<Route> routes_;            // by channel id
  std::vector<ChannelId> source_route_;  // by stream id (source streams)
  // Lazily computed batch safety, invalidated wholesale by bumping
  // batch_epoch_ (an O(channels) reset per Refresh would dominate live
  // adds on large plans). An entry is valid iff its epoch matches.
  std::vector<int8_t> batch_safe_;          // by channel id
  std::vector<uint64_t> batch_safe_epoch_;  // by channel id
  uint64_t batch_epoch_ = 0;
  // Position in the plan's mutation log up to which routes_ is current.
  uint64_t plan_cursor_ = 0;
  int64_t deliveries_ = 0;

  // Sampled m-op timing: every sample_every_n-th invocation (per-tuple
  // delivery or ProcessBatch call) is wall-clock timed into the m-op's
  // MopMetrics; the only per-invocation cost is one countdown decrement.
  MetricsOptions metrics_options_;
  int metrics_countdown_ = MetricsOptions{}.sample_every_n;

  // Sampled ingress→sink latency: stamps every sample_every_n-th top-level
  // push (re-entrant pushes never stamp — the outer stamp stays valid).
  // While ingress_t0_ >= 0, DeliverOutputs records into output_latency_.
  bool MaybeStampIngress();
  LatencyHistogram output_latency_;
  int64_t ingress_t0_ = -1;
  int latency_countdown_ = MetricsOptions{}.sample_every_n;

  // Event-at-a-time work stack (member, so buffers are reused across
  // pushes). `draining_` guards against re-entrant drains.
  std::vector<Task> stack_;
  std::vector<Task> emit_scratch_;  // one m-op's staged emissions
  bool draining_ = false;

  // Batched-path state, all capacity-retaining across batches. A channel's
  // buffer holds its current batch from the moment its producer emits until
  // its own RunBatch visit completes. `in_run_batch_` routes re-entrant
  // batch pushes (e.g. from a sink handler) to the per-tuple path.
  std::vector<std::vector<ChannelTuple>> channel_buffers_;
  std::vector<ChannelId> touched_channels_;
  std::vector<ChannelId> batch_stack_;
  std::vector<Task> deferred_;  // re-entrant pushes arriving mid-batch
  bool in_run_batch_ = false;
};

}  // namespace rumor

#endif  // RUMOR_PLAN_EXECUTOR_H_
