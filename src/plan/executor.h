// Push-based, event-at-a-time executor. Source tuples are pushed in
// timestamp order; emitted channel tuples propagate depth-first through the
// (acyclic) consumer graph. Streams marked as query outputs are delivered to
// an OutputSink.
#ifndef RUMOR_PLAN_EXECUTOR_H_
#define RUMOR_PLAN_EXECUTOR_H_

#include <unordered_map>
#include <vector>

#include "plan/plan.h"

namespace rumor {

// Receives query output tuples.
class OutputSink {
 public:
  virtual ~OutputSink() = default;
  virtual void OnOutput(StreamId stream, const Tuple& tuple) = 0;
};

// Counts outputs per stream (cheap; benchmarks).
class CountingSink : public OutputSink {
 public:
  void OnOutput(StreamId stream, const Tuple&) override {
    ++total_;
    if (stream >= static_cast<StreamId>(per_stream_.size())) {
      per_stream_.resize(stream + 1, 0);
    }
    ++per_stream_[stream];
  }
  int64_t total() const { return total_; }
  int64_t ForStream(StreamId s) const {
    return s < static_cast<StreamId>(per_stream_.size()) ? per_stream_[s] : 0;
  }

 private:
  int64_t total_ = 0;
  std::vector<int64_t> per_stream_;
};

// Stores outputs per stream (tests / examples).
class CollectingSink : public OutputSink {
 public:
  void OnOutput(StreamId stream, const Tuple& tuple) override {
    tuples_[stream].push_back(tuple);
  }
  const std::vector<Tuple>& ForStream(StreamId s) const {
    static const std::vector<Tuple> kEmpty;
    auto it = tuples_.find(s);
    return it == tuples_.end() ? kEmpty : it->second;
  }
  int64_t total() const {
    int64_t n = 0;
    for (const auto& [s, v] : tuples_) n += v.size();
    return n;
  }

 private:
  std::unordered_map<StreamId, std::vector<Tuple>> tuples_;
};

class Executor {
 public:
  // The plan must stay alive and unmodified while the executor runs.
  Executor(Plan* plan, OutputSink* sink);

  // Builds routing tables; validates the plan. Call once before pushing.
  void Prepare();

  // Pushes one tuple of a *source stream*; timestamps must be
  // non-decreasing per call sequence.
  void PushSource(StreamId stream, const Tuple& tuple);

  // Pushes a channel tuple into a producer-less channel (source-group
  // channels; paper §5.2 Workload 3 feeds channel C directly).
  void PushChannel(ChannelId channel, const ChannelTuple& tuple);

  // Tuples delivered to m-op inputs so far (scheduling work measure).
  int64_t deliveries() const { return deliveries_; }

 private:
  struct Route {
    std::vector<ChannelEnd> consumers;
    // Output slots: (channel slot, stream id) of streams marked as outputs.
    std::vector<std::pair<int, StreamId>> output_slots;
  };

  class PortEmitter;

  void Dispatch(ChannelId channel, const ChannelTuple& tuple);

  Plan* plan_;
  OutputSink* sink_;
  bool prepared_ = false;
  std::vector<Route> routes_;            // by channel id
  std::vector<ChannelId> source_route_;  // by stream id (source streams)
  int64_t deliveries_ = 0;
};

}  // namespace rumor

#endif  // RUMOR_PLAN_EXECUTOR_H_
