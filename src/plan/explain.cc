#include "plan/explain.h"

#include <algorithm>
#include <cstdio>

#include "common/str_util.h"
#include <sstream>

namespace rumor {

std::string ExplainPlan(const Plan& plan, const ExplainOptions& options) {
  std::ostringstream os;
  os << SummarizePlan(plan) << "\n";
  for (MopId id : plan.LiveMops()) {
    const Mop& mop = plan.mop(id);
    os << "  " << mop.name();
    os << "  reads[";
    const auto& ins = plan.input_channels(id);
    for (size_t p = 0; p < ins.size(); ++p) {
      if (p) os << ",";
      os << "ch" << ins[p];
    }
    os << "] writes[";
    const auto& outs = plan.output_channels(id);
    for (size_t p = 0; p < outs.size(); ++p) {
      if (p) os << ",";
      os << "ch" << outs[p];
    }
    os << "]";
    if (options.include_counters) {
      os << "  in=" << mop.tuples_in() << " out=" << mop.tuples_out();
    }
    os << "\n";
  }
  if (options.include_channels) {
    for (ChannelId c = 0; c < plan.num_channels(); ++c) {
      const ChannelDef& ch = plan.channel(c);
      // Skip channels that are no longer wired to anything.
      bool wired = plan.ProducerOf(c).has_value() ||
                   !plan.ConsumersOf(c).empty() ||
                   plan.FindSourceChannel(ch.stream_at(0)) == c;
      if (!wired) continue;
      os << "  ch" << c << " capacity=" << ch.capacity() << " streams{";
      for (int i = 0; i < ch.capacity(); ++i) {
        if (i) os << ",";
        os << plan.streams().Get(ch.stream_at(i)).name;
      }
      os << "}\n";
    }
  }
  if (options.include_outputs) {
    for (const Plan::OutputDef& def : plan.outputs()) {
      os << "  output " << def.query_name << " <- "
         << plan.streams().Get(def.stream).name << "\n";
    }
  }
  return os.str();
}

std::string ExplainAnalyze(const Plan& plan,
                           const ExplainAnalyzeOptions& options) {
  std::ostringstream os;
  os << SummarizePlan(plan) << "\n";
  const std::vector<int> refs = plan.QueryRefCounts();
  char buf[128];
  for (MopId id : plan.LiveMops()) {
    const Mop& mop = plan.mop(id);
    os << "  " << mop.name();
    os << "  reads[";
    const auto& ins = plan.input_channels(id);
    for (size_t p = 0; p < ins.size(); ++p) {
      if (p) os << ",";
      os << "ch" << ins[p];
    }
    os << "] writes[";
    const auto& outs = plan.output_channels(id);
    for (size_t p = 0; p < outs.size(); ++p) {
      if (p) os << ",";
      os << "ch" << outs[p];
    }
    os << "]  queries=" << refs[id] << " members=" << mop.num_members()
       << "\n";
    const MopMetrics& m = mop.metrics();
    os << "      in=" << m.tuples_in << " out=" << m.tuples_out;
    std::snprintf(buf, sizeof(buf), " sel=%.4f", m.selectivity());
    os << buf << " batches=" << m.batches;
    if (options.include_timing && m.sampled_tuples > 0) {
      std::snprintf(buf, sizeof(buf), " ns/tuple≈%.1f (%lld sampled)",
                    m.ns_per_tuple(),
                    static_cast<long long>(m.sampled_tuples));
      os << buf;
    }
    if (options.include_timing && m.eval_hist.count() > 0) {
      std::snprintf(buf, sizeof(buf), " eval p50=%lldns p99=%lldns",
                    static_cast<long long>(m.eval_hist.p50()),
                    static_cast<long long>(m.eval_hist.p99()));
      os << buf;
    }
    const int64_t state = mop.StateBytes();
    if (state > 0) os << " state≈" << state << "B";
    os << "\n";
  }
  if (options.include_outputs) {
    for (const Plan::OutputDef& def : plan.outputs()) {
      os << "  output " << def.query_name << " <- "
         << plan.streams().Get(def.stream).name << "\n";
    }
  }
  return os.str();
}

std::string PlanToDot(const Plan& plan) {
  std::ostringstream os;
  os << "digraph plan {\n  rankdir=LR;\n  node [shape=box];\n";
  // Source channels as entry points.
  for (StreamId s : plan.streams().Sources()) {
    if (auto c = plan.FindSourceChannel(s)) {
      os << "  src" << s << " [label=\"" << plan.streams().Get(s).name
         << "\" shape=ellipse];\n";
      for (const ChannelEnd& end : plan.ConsumersOf(*c)) {
        os << "  src" << s << " -> mop" << end.mop << " [label=\"p"
           << end.port << "\"];\n";
      }
    }
  }
  for (MopId id : plan.LiveMops()) {
    os << "  mop" << id << " [label=\"" << plan.mop(id).name() << "\"];\n";
    const auto& outs = plan.output_channels(id);
    for (size_t p = 0; p < outs.size(); ++p) {
      const ChannelDef& ch = plan.channel(outs[p]);
      std::string label = ch.capacity() > 1
                              ? StrCat("ch", outs[p], " cap=", ch.capacity())
                              : StrCat("ch", outs[p]);
      bool has_consumer = false;
      for (const ChannelEnd& end : plan.ConsumersOf(outs[p])) {
        has_consumer = true;
        os << "  mop" << id << " -> mop" << end.mop << " [label=\"" << label
           << "\"];\n";
      }
      if (!has_consumer) {
        // Terminal channel: draw the query outputs it carries.
        for (const Plan::OutputDef& def : plan.outputs()) {
          if (ch.SlotOf(def.stream).has_value()) {
            os << "  out_" << def.query_name
               << " [shape=ellipse style=dashed label=\"" << def.query_name
               << "\"];\n";
            os << "  mop" << id << " -> out_" << def.query_name
               << " [label=\"" << label << "\"];\n";
          }
        }
      }
    }
  }
  os << "}\n";
  return os.str();
}

std::string SummarizePlan(const Plan& plan) {
  int max_capacity = 0;
  int wired_channels = 0;
  for (ChannelId c = 0; c < plan.num_channels(); ++c) {
    if (plan.ProducerOf(c).has_value() || !plan.ConsumersOf(c).empty()) {
      ++wired_channels;
      max_capacity = std::max(max_capacity, plan.channel(c).capacity());
    }
  }
  std::ostringstream os;
  os << "plan: " << plan.LiveMops().size() << " m-ops, " << wired_channels
     << " wired channels (max capacity " << max_capacity << "), "
     << plan.outputs().size() << " query outputs";
  return os.str();
}

}  // namespace rumor
