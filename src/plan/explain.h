// Plan explainer: human-readable report of an (optionally executed) plan —
// per m-op type, member count, wiring, and runtime counters. The stream
// equivalent of EXPLAIN ANALYZE; examples and the benchmark harness use it
// to show what the optimizer did.
#ifndef RUMOR_PLAN_EXPLAIN_H_
#define RUMOR_PLAN_EXPLAIN_H_

#include <string>

#include "plan/plan.h"

namespace rumor {

struct ExplainOptions {
  bool include_channels = true;
  bool include_counters = true;  // tuples in/out per m-op (after a run)
  bool include_outputs = true;
};

// Renders the plan. Counters are the Mop::tuples_in/out() values and are
// zero before execution.
std::string ExplainPlan(const Plan& plan,
                        const ExplainOptions& options = ExplainOptions());

struct ExplainAnalyzeOptions {
  bool include_timing = true;   // sampled ns/tuple where available
  bool include_outputs = true;  // query output lines
};

// EXPLAIN ANALYZE: the plan tree annotated with live runtime metrics — per
// m-op member count, query reach (shared vs private), tuples in/out,
// selectivity, batch count, and (sampled) per-tuple cost. On a merged
// N-query plan this is the view that shows exactly where events die:
//
//   σ-index#2[100]  reads[ch0] writes[ch1]  queries=100 members=100
//       in=300000 out=11930 sel=0.0398 batches=4688 ns/tuple≈210.4
//
// Counters are zero before execution (and when compiled with
// RUMOR_METRICS=OFF).
std::string ExplainAnalyze(
    const Plan& plan,
    const ExplainAnalyzeOptions& options = ExplainAnalyzeOptions());

// One-line summary: "#m-ops, #channels (max capacity), #queries".
std::string SummarizePlan(const Plan& plan);

// Graphviz DOT rendering of the plan (m-ops as nodes, channels as edges;
// multi-stream channels annotated with their capacity). Pipe into
// `dot -Tsvg` to visualise what the optimizer built.
std::string PlanToDot(const Plan& plan);

}  // namespace rumor

#endif  // RUMOR_PLAN_EXPLAIN_H_
