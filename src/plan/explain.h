// Plan explainer: human-readable report of an (optionally executed) plan —
// per m-op type, member count, wiring, and runtime counters. The stream
// equivalent of EXPLAIN ANALYZE; examples and the benchmark harness use it
// to show what the optimizer did.
#ifndef RUMOR_PLAN_EXPLAIN_H_
#define RUMOR_PLAN_EXPLAIN_H_

#include <string>

#include "plan/plan.h"

namespace rumor {

struct ExplainOptions {
  bool include_channels = true;
  bool include_counters = true;  // tuples in/out per m-op (after a run)
  bool include_outputs = true;
};

// Renders the plan. Counters are the Mop::tuples_in/out() values and are
// zero before execution.
std::string ExplainPlan(const Plan& plan,
                        const ExplainOptions& options = ExplainOptions());

// One-line summary: "#m-ops, #channels (max capacity), #queries".
std::string SummarizePlan(const Plan& plan);

// Graphviz DOT rendering of the plan (m-ops as nodes, channels as edges;
// multi-stream channels annotated with their capacity). Pipe into
// `dot -Tsvg` to visualise what the optimizer built.
std::string PlanToDot(const Plan& plan);

}  // namespace rumor

#endif  // RUMOR_PLAN_EXPLAIN_H_
