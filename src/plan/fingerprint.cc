#include "plan/fingerprint.h"

#include <unordered_map>

#include "common/hash.h"
#include "common/str_util.h"
#include "mop/aggregate_mop.h"
#include "mop/iterate_mop.h"
#include "mop/join_mop.h"
#include "mop/predicate_index_mop.h"
#include "mop/projection_mop.h"
#include "mop/selection_mop.h"
#include "mop/sequence_mop.h"
#include "mop/zip_mop.h"

namespace rumor {

namespace {

// Sharing-independent operator class of an m-op type.
enum class KindClass : uint64_t {
  kSelection = 0xA11CE001,
  kProjection = 0xA11CE002,
  kAggregate = 0xA11CE003,
  kJoin = 0xA11CE004,
  kSequence = 0xA11CE005,
  kIterate = 0xA11CE006,
  kZip = 0xA11CE007,
};

KindClass ClassOf(MopType type) {
  switch (type) {
    case MopType::kSelection:
    case MopType::kPredicateIndex:
    case MopType::kChannelSelect:
      return KindClass::kSelection;
    case MopType::kProjection:
    case MopType::kChannelProject:
      return KindClass::kProjection;
    case MopType::kAggregate:
    case MopType::kSharedAggregate:
    case MopType::kFragmentAggregate:
      return KindClass::kAggregate;
    case MopType::kJoin:
    case MopType::kSharedJoin:
    case MopType::kPrecisionJoin:
      return KindClass::kJoin;
    case MopType::kSequence:
    case MopType::kSharedSequence:
    case MopType::kChannelSequence:
      return KindClass::kSequence;
    case MopType::kIterate:
    case MopType::kSharedIterate:
    case MopType::kChannelIterate:
      return KindClass::kIterate;
    case MopType::kZip:
      return KindClass::kZip;
  }
  return KindClass::kSelection;
}

// The input channel slot member `i` reads on each input port. Container
// m-ops (predicate index, channel variants) encode the member-slot mapping
// in their type; the reference m-ops record it per member.
struct MemberInputs {
  // Parallel arrays: port p reads slot slots[p] of input channel p.
  std::vector<int> ports;
  std::vector<int> slots;
};

MemberInputs InputsOf(const Mop& m, int i) {
  switch (m.type()) {
    case MopType::kSelection:
      return {{0}, {static_cast<const SelectionMop&>(m).member(i).input_slot}};
    case MopType::kChannelSelect:
      return {{0}, {i}};
    case MopType::kPredicateIndex:
      return {{0}, {0}};
    case MopType::kProjection:
      return {{0},
              {static_cast<const ProjectionMop&>(m).member(i).input_slot}};
    case MopType::kChannelProject:
      return {{0}, {i}};
    case MopType::kAggregate:
    case MopType::kSharedAggregate:
    case MopType::kFragmentAggregate:
      return {{0}, {static_cast<const AggregateMop&>(m).member(i).input_slot}};
    case MopType::kJoin:
    case MopType::kSharedJoin:
    case MopType::kPrecisionJoin: {
      const auto& member = static_cast<const JoinMop&>(m).member(i);
      return {{0, 1}, {member.left_slot, member.right_slot}};
    }
    case MopType::kSequence:
    case MopType::kSharedSequence:
    case MopType::kChannelSequence: {
      const auto& member = static_cast<const SequenceMop&>(m).member(i);
      return {{0, 1}, {member.left_slot, member.right_slot}};
    }
    case MopType::kIterate:
    case MopType::kSharedIterate:
    case MopType::kChannelIterate: {
      const auto& member = static_cast<const IterateMop&>(m).member(i);
      return {{0, 1}, {member.left_slot, member.right_slot}};
    }
    case MopType::kZip:
      return {{0, 1}, {0, 0}};
  }
  return {{}, {}};
}

bool MemberActive(const Mop& m, int i) {
  switch (m.type()) {
    case MopType::kAggregate:
    case MopType::kSharedAggregate:
    case MopType::kFragmentAggregate:
      return static_cast<const AggregateMop&>(m).member_active(i);
    default:
      return true;
  }
}

class FingerprintBuilder {
 public:
  explicit FingerprintBuilder(const Plan& plan) : plan_(plan) {}

  Result<PlanFingerprints> Build() {
    PlanFingerprints out;
    out.members.resize(plan_.num_mops());
    for (MopId id : plan_.LiveMops()) {
      const Mop& m = plan_.mop(id);
      out.members[id].resize(m.num_members(), 0);
      for (int i = 0; i < m.num_members(); ++i) {
        if (!MemberActive(m, i)) continue;
        uint64_t fp = 0;
        RUMOR_RETURN_IF_ERROR(MemberFp(id, i, &fp));
        out.members[id][i] = fp;
      }
    }
    return out;
  }

 private:
  Status MemberFp(MopId id, int i, uint64_t* out) {
    const Mop& m = plan_.mop(id);
    uint64_t h = Mix64(static_cast<uint64_t>(ClassOf(m.type())));
    h = HashCombine(h, m.MemberSignature(i));
    const MemberInputs inputs = InputsOf(m, i);
    for (size_t k = 0; k < inputs.ports.size(); ++k) {
      const ChannelId ch = plan_.input_channel(id, inputs.ports[k]);
      if (ch < 0) {
        return Status::Internal(
            StrCat("m-op ", m.name(), " has an unbound input port ",
                   inputs.ports[k]));
      }
      const StreamId stream = plan_.channel(ch).stream_at(inputs.slots[k]);
      uint64_t sfp = 0;
      RUMOR_RETURN_IF_ERROR(StreamFp(stream, &sfp));
      h = HashCombine(h, sfp);
    }
    *out = h == 0 ? 1 : h;  // 0 is reserved for "inactive slot"
    return Status::OK();
  }

  Status StreamFp(StreamId stream, uint64_t* out) {
    auto it = stream_fp_.find(stream);
    if (it != stream_fp_.end()) {
      if (it->second == kInProgress) {
        return Status::Internal("plan contains a channel cycle");
      }
      *out = it->second;
      return Status::OK();
    }
    const StreamDef& def = plan_.streams().Get(stream);
    uint64_t fp = 0;
    if (def.is_source) {
      fp = HashCombine(Mix64(0x5EC0DE), HashBytes(def.name));
      if (fp == 0 || fp == kInProgress) fp = 1;
      stream_fp_[stream] = fp;
      *out = fp;
      return Status::OK();
    }
    stream_fp_[stream] = kInProgress;
    // Find the producing (m-op, member) of the derived stream: the channel
    // carrying it with a producer end. Member resolution follows the port
    // conventions of mop.h — channel-output m-ops (one output port, wide
    // channel) map member i to slot i; per-member-ports m-ops map member i
    // to port i.
    MopId producer = kInvalidMop;
    int member = -1;
    for (ChannelId ch : plan_.ChannelsOfStream(stream)) {
      std::optional<ChannelEnd> end = plan_.ProducerOf(ch);
      if (!end.has_value()) continue;
      const ChannelDef& channel = plan_.channel(ch);
      std::optional<int> slot = channel.SlotOf(stream);
      if (!slot.has_value()) continue;
      producer = end->mop;
      const Mop& p = plan_.mop(producer);
      member = (p.num_outputs() == 1 && channel.capacity() > 1) ? *slot
                                                                : end->port;
      break;
    }
    if (producer == kInvalidMop) {
      return Status::Internal(
          StrCat("derived stream '", def.name, "' has no producer"));
    }
    RUMOR_RETURN_IF_ERROR(MemberFp(producer, member, &fp));
    stream_fp_[stream] = fp;
    *out = fp;
    return Status::OK();
  }

  static constexpr uint64_t kInProgress = ~0ull;

  const Plan& plan_;
  std::unordered_map<StreamId, uint64_t> stream_fp_;
};

}  // namespace

Result<PlanFingerprints> ComputeMemberFingerprints(const Plan& plan) {
  return FingerprintBuilder(plan).Build();
}

}  // namespace rumor
