// Structural member fingerprints for checkpoint/restore.
//
// A checkpoint saves operator state per *member* (one logical operator
// inside an m-op); a restored engine rebuilds its plan by re-parsing the
// saved query texts and replaying the incremental merge, which generally
// yields a differently-shaped shared plan (the incremental path applies
// only the state-preserving rule subset). M-op ids therefore do not line up
// — state is matched by a structural fingerprint instead:
//
//   MemberFp = H(kind-class, MemberSignature, input-stream fps...)
//   StreamFp(source)  = H("src", stream name)
//   StreamFp(derived) = MemberFp of the member producing it
//
// The kind-class collapses the sharing variants of one logical operator
// (σ ≡ sσ ≡ cσ, α ≡ sα ≡ cα, ⋈ ≡ s⋈ ≡ c⋈, ...), so a member keeps its
// fingerprint no matter which m-rules packaged it — exactly the property
// that lets a member saved inside a c⋈ land in a restored isolated ⋈.
#ifndef RUMOR_PLAN_FINGERPRINT_H_
#define RUMOR_PLAN_FINGERPRINT_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "plan/plan.h"

namespace rumor {

struct PlanFingerprints {
  // Indexed by MopId; inner vector by member index. 0 marks an inactive
  // member slot (deactivated aggregate member). Dead m-op ids hold empty
  // vectors.
  std::vector<std::vector<uint64_t>> members;
};

// Computes the fingerprint of every member of every live m-op. Fails only
// on a malformed plan (a derived stream with no producer).
Result<PlanFingerprints> ComputeMemberFingerprints(const Plan& plan);

}  // namespace rumor

#endif  // RUMOR_PLAN_FINGERPRINT_H_
