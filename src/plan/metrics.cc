#include "plan/metrics.h"

#include <sstream>

namespace rumor {

std::string ThroughputResult::ToString() const {
  std::ostringstream os;
  os << events << " events in " << seconds << "s ("
     << static_cast<int64_t>(EventsPerSecond()) << " ev/s), " << outputs
     << " outputs (" << static_cast<int64_t>(OutputsPerSecond()) << " out/s)";
  return os.str();
}

}  // namespace rumor
