// Measurement helpers: wall-clock stopwatch and throughput accounting used
// by the benchmark harness (paper §5 reports events/second).
#ifndef RUMOR_PLAN_METRICS_H_
#define RUMOR_PLAN_METRICS_H_

#include <chrono>
#include <cstdint>
#include <string>

namespace rumor {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}
  void Restart() { start_ = Clock::now(); }
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

struct ThroughputResult {
  int64_t events = 0;
  int64_t outputs = 0;
  double seconds = 0.0;

  // Both rates guard seconds == 0 the same way (a run too fast to time
  // reports 0 rather than inf); benches format through these instead of
  // dividing locally.
  double EventsPerSecond() const { return Rate(events); }
  double OutputsPerSecond() const { return Rate(outputs); }
  std::string ToString() const;

 private:
  double Rate(int64_t n) const {
    return seconds > 0 ? static_cast<double>(n) / seconds : 0.0;
  }
};

}  // namespace rumor

#endif  // RUMOR_PLAN_METRICS_H_
