#include "plan/plan.h"

#include <sstream>

#include "common/str_util.h"

namespace rumor {

ChannelId Plan::AddChannel(std::vector<StreamId> streams, Schema schema) {
  RUMOR_CHECK(!streams.empty());
  for (StreamId s : streams) {
    RUMOR_CHECK(streams_.SchemaOf(s).CompatibleWith(schema))
        << "channel streams must be union-compatible";
  }
  ChannelId id = static_cast<ChannelId>(channels_.size());
  channels_.emplace_back(id, std::move(streams), std::move(schema));
  return id;
}

ChannelId Plan::SourceChannelOf(StreamId stream) {
  if (auto existing = FindSourceChannel(stream)) return *existing;
  RUMOR_CHECK(streams_.Get(stream).is_source);
  ChannelId id = AddChannel({stream}, streams_.SchemaOf(stream));
  source_channels_.push_back({stream, id});
  return id;
}

std::optional<ChannelId> Plan::FindSourceChannel(StreamId stream) const {
  for (const auto& [s, c] : source_channels_) {
    if (s == stream) return c;
  }
  return std::nullopt;
}

ChannelId Plan::AddDerivedChannel(const std::string& name, Schema schema) {
  StreamId s = streams_.AddDerived(
      name.empty() ? StrCat("d", derived_counter_++) : name, schema);
  return AddChannel({s}, streams_.SchemaOf(s));
}

MopId Plan::AddMop(std::unique_ptr<Mop> mop) {
  RUMOR_CHECK(mop != nullptr);
  MopId id = static_cast<MopId>(mops_.size());
  mop->set_id(id);
  mop_inputs_.push_back(
      std::vector<ChannelId>(mop->num_inputs(), kInvalidChannel));
  mop_outputs_.push_back(
      std::vector<ChannelId>(mop->num_outputs(), kInvalidChannel));
  mops_.push_back(std::move(mop));
  return id;
}

void Plan::RemoveMop(MopId id) {
  RUMOR_CHECK(IsLive(id));
  mops_[id].reset();
  mop_inputs_[id].clear();
  mop_outputs_[id].clear();
}

std::vector<MopId> Plan::LiveMops() const {
  std::vector<MopId> out;
  for (int i = 0; i < num_mops(); ++i) {
    if (mops_[i] != nullptr) out.push_back(i);
  }
  return out;
}

void Plan::BindInput(MopId mop, int port, ChannelId channel) {
  RUMOR_CHECK(IsLive(mop));
  RUMOR_CHECK(port >= 0 && port < static_cast<int>(mop_inputs_[mop].size()));
  RUMOR_CHECK(channel >= 0 && channel < num_channels());
  mop_inputs_[mop][port] = channel;
}

void Plan::BindOutput(MopId mop, int port, ChannelId channel) {
  RUMOR_CHECK(IsLive(mop));
  RUMOR_CHECK(port >= 0 &&
              port < static_cast<int>(mop_outputs_[mop].size()));
  RUMOR_CHECK(channel >= 0 && channel < num_channels());
  mop_outputs_[mop][port] = channel;
}

ChannelId Plan::input_channel(MopId mop, int port) const {
  RUMOR_DCHECK(IsLive(mop));
  return mop_inputs_[mop][port];
}

ChannelId Plan::output_channel(MopId mop, int port) const {
  RUMOR_DCHECK(IsLive(mop));
  return mop_outputs_[mop][port];
}

std::vector<ChannelEnd> Plan::ConsumersOf(ChannelId channel) const {
  std::vector<ChannelEnd> out;
  for (int m = 0; m < num_mops(); ++m) {
    if (mops_[m] == nullptr) continue;
    for (int p = 0; p < static_cast<int>(mop_inputs_[m].size()); ++p) {
      if (mop_inputs_[m][p] == channel) out.push_back({m, p});
    }
  }
  return out;
}

std::optional<ChannelEnd> Plan::ProducerOf(ChannelId channel) const {
  for (int m = 0; m < num_mops(); ++m) {
    if (mops_[m] == nullptr) continue;
    for (int p = 0; p < static_cast<int>(mop_outputs_[m].size()); ++p) {
      if (mop_outputs_[m][p] == channel) return ChannelEnd{m, p};
    }
  }
  return std::nullopt;
}

void Plan::MarkOutput(StreamId stream, std::string query_name) {
  outputs_.push_back({stream, std::move(query_name)});
}

std::optional<StreamId> Plan::OutputStreamOf(
    const std::string& query_name) const {
  for (const OutputDef& def : outputs_) {
    if (def.query_name == query_name) return def.stream;
  }
  return std::nullopt;
}

void Plan::MoveConsumers(ChannelId from, ChannelId to) {
  for (int m = 0; m < num_mops(); ++m) {
    if (mops_[m] == nullptr) continue;
    for (int p = 0; p < static_cast<int>(mop_inputs_[m].size()); ++p) {
      if (mop_inputs_[m][p] == from) mop_inputs_[m][p] = to;
    }
  }
}

void Plan::RemapOutput(StreamId from, StreamId to) {
  for (OutputDef& def : outputs_) {
    if (def.stream == from) def.stream = to;
  }
}

std::vector<ChannelId> Plan::SourceGroupChannels() const {
  std::vector<ChannelId> out;
  for (ChannelId c = 0; c < num_channels(); ++c) {
    if (channels_[c].capacity() <= 1) continue;
    if (ProducerOf(c).has_value()) continue;
    bool all_sources = true;
    for (StreamId s : channels_[c].streams()) {
      all_sources &= streams_.Get(s).is_source;
    }
    if (all_sources) out.push_back(c);
  }
  return out;
}

void Plan::Validate() const {
  for (int m = 0; m < num_mops(); ++m) {
    if (mops_[m] == nullptr) continue;
    for (size_t p = 0; p < mop_inputs_[m].size(); ++p) {
      RUMOR_CHECK(mop_inputs_[m][p] != kInvalidChannel)
          << mops_[m]->name() << " input port " << p << " unbound";
    }
    for (size_t p = 0; p < mop_outputs_[m].size(); ++p) {
      RUMOR_CHECK(mop_outputs_[m][p] != kInvalidChannel)
          << mops_[m]->name() << " output port " << p << " unbound";
    }
  }
  // Each channel has at most one producer port.
  std::vector<int> producers(channels_.size(), 0);
  for (int m = 0; m < num_mops(); ++m) {
    if (mops_[m] == nullptr) continue;
    for (ChannelId c : mop_outputs_[m]) ++producers[c];
  }
  for (size_t c = 0; c < channels_.size(); ++c) {
    RUMOR_CHECK(producers[c] <= 1)
        << "channel " << c << " has " << producers[c] << " producers";
  }
  // Acyclicity via DFS over mop -> consumer edges.
  enum { kWhite, kGrey, kBlack };
  std::vector<int> color(num_mops(), kWhite);
  std::vector<std::vector<MopId>> succ(num_mops());
  for (int m = 0; m < num_mops(); ++m) {
    if (mops_[m] == nullptr) continue;
    for (ChannelId c : mop_outputs_[m]) {
      for (const ChannelEnd& end : ConsumersOf(c)) succ[m].push_back(end.mop);
    }
  }
  // Iterative DFS.
  for (int root = 0; root < num_mops(); ++root) {
    if (mops_[root] == nullptr || color[root] != kWhite) continue;
    std::vector<std::pair<MopId, size_t>> stack = {{root, 0}};
    color[root] = kGrey;
    while (!stack.empty()) {
      auto& [node, idx] = stack.back();
      if (idx < succ[node].size()) {
        MopId next = succ[node][idx++];
        RUMOR_CHECK(color[next] != kGrey) << "plan contains a cycle";
        if (color[next] == kWhite) {
          color[next] = kGrey;
          stack.push_back({next, 0});
        }
      } else {
        color[node] = kBlack;
        stack.pop_back();
      }
    }
  }
}

std::string Plan::ToString() const {
  std::ostringstream os;
  os << "Plan{\n";
  for (int m = 0; m < num_mops(); ++m) {
    if (mops_[m] == nullptr) continue;
    os << "  " << mops_[m]->name() << " in=[";
    for (size_t p = 0; p < mop_inputs_[m].size(); ++p) {
      if (p) os << ",";
      os << mop_inputs_[m][p];
    }
    os << "] out=[";
    for (size_t p = 0; p < mop_outputs_[m].size(); ++p) {
      if (p) os << ",";
      os << mop_outputs_[m][p];
    }
    os << "]\n";
  }
  for (const ChannelDef& c : channels_) {
    os << "  " << c.ToString() << "\n";
  }
  for (const OutputDef& o : outputs_) {
    os << "  output " << o.query_name << " <- stream " << o.stream << "\n";
  }
  os << "}";
  return os.str();
}

}  // namespace rumor
