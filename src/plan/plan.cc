#include "plan/plan.h"

#include <sstream>

#include "common/str_util.h"

namespace rumor {

ChannelId Plan::AddChannel(std::vector<StreamId> streams, Schema schema) {
  RUMOR_CHECK(!streams.empty());
  for (StreamId s : streams) {
    RUMOR_CHECK(streams_.SchemaOf(s).CompatibleWith(schema))
        << "channel streams must be union-compatible";
  }
  ChannelId id = static_cast<ChannelId>(channels_.size());
  channels_.emplace_back(id, std::move(streams), std::move(schema));
  channel_dead_.push_back(0);
  return id;
}

bool Plan::ChannelPinned(ChannelId id) const {
  // Source channels are fed by Executor::PushSource.
  for (const auto& [s, c] : source_channels_) {
    if (c == id) return true;
  }
  // Source-group channels are fed by Executor::PushChannel.
  if (channels_[id].capacity() > 1) {
    bool all_sources = true;
    for (StreamId s : channels_[id].streams()) {
      all_sources &= streams_.Get(s).is_source;
    }
    if (all_sources) return true;
  }
  return false;
}

bool Plan::MaybeKillChannel(ChannelId id) {
  if (channel_dead_[id]) return false;
  if (ChannelPinned(id)) return false;
  if (ProducerOf(id).has_value()) return false;
  if (!ConsumersOf(id).empty()) return false;
  for (const OutputDef& def : outputs_) {
    if (channels_[id].SlotOf(def.stream).has_value()) return false;
  }
  channel_dead_[id] = 1;
  return true;
}

int Plan::GcOrphanChannels() {
  int collected = 0;
  for (ChannelId c = 0; c < num_channels(); ++c) {
    if (MaybeKillChannel(c)) ++collected;
  }
  return collected;
}

ChannelId Plan::SourceChannelOf(StreamId stream) {
  if (auto existing = FindSourceChannel(stream)) return *existing;
  RUMOR_CHECK(streams_.Get(stream).is_source);
  ChannelId id = AddChannel({stream}, streams_.SchemaOf(stream));
  source_channels_.push_back({stream, id});
  return id;
}

std::optional<ChannelId> Plan::FindSourceChannel(StreamId stream) const {
  for (const auto& [s, c] : source_channels_) {
    if (s == stream) return c;
  }
  return std::nullopt;
}

ChannelId Plan::AddDerivedChannel(const std::string& name, Schema schema) {
  StreamId s = streams_.AddDerived(
      name.empty() ? StrCat("d", derived_counter_++) : name, schema);
  return AddChannel({s}, streams_.SchemaOf(s));
}

MopId Plan::AddMop(std::unique_ptr<Mop> mop) {
  RUMOR_CHECK(mop != nullptr);
  MopId id = static_cast<MopId>(mops_.size());
  mop->set_id(id);
  mop_inputs_.push_back(
      std::vector<ChannelId>(mop->num_inputs(), kInvalidChannel));
  mop_outputs_.push_back(
      std::vector<ChannelId>(mop->num_outputs(), kInvalidChannel));
  mops_.push_back(std::move(mop));
  return id;
}

void Plan::RemoveMop(MopId id) {
  RUMOR_CHECK(IsLive(id));
  std::vector<ChannelId> touched = mop_inputs_[id];
  touched.insert(touched.end(), mop_outputs_[id].begin(),
                 mop_outputs_[id].end());
  mops_[id].reset();
  mop_inputs_[id].clear();
  mop_outputs_[id].clear();
  // Collect channels this removal orphaned. Rules that reuse a removed
  // m-op's channels bind the replacement first, so those still have a
  // producer or consumers here and survive.
  for (ChannelId c : touched) {
    if (c != kInvalidChannel) MaybeKillChannel(c);
  }
}

std::vector<MopId> Plan::LiveMops() const {
  std::vector<MopId> out;
  for (int i = 0; i < num_mops(); ++i) {
    if (mops_[i] != nullptr) out.push_back(i);
  }
  return out;
}

void Plan::BindInput(MopId mop, int port, ChannelId channel) {
  RUMOR_CHECK(IsLive(mop));
  RUMOR_CHECK(port >= 0 && port < static_cast<int>(mop_inputs_[mop].size()));
  RUMOR_CHECK(channel >= 0 && channel < num_channels());
  mop_inputs_[mop][port] = channel;
}

void Plan::BindOutput(MopId mop, int port, ChannelId channel) {
  RUMOR_CHECK(IsLive(mop));
  RUMOR_CHECK(port >= 0 &&
              port < static_cast<int>(mop_outputs_[mop].size()));
  RUMOR_CHECK(channel >= 0 && channel < num_channels());
  mop_outputs_[mop][port] = channel;
}

int Plan::AddMopOutputPort(MopId mop, ChannelId channel) {
  RUMOR_CHECK(IsLive(mop));
  RUMOR_CHECK(channel >= 0 && channel < num_channels());
  RUMOR_CHECK(!channel_dead_[channel]);
  mop_outputs_[mop].push_back(channel);
  RUMOR_CHECK(static_cast<int>(mop_outputs_[mop].size()) ==
              mops_[mop]->num_outputs())
      << "grow the m-op's port count (AddMember) before binding it";
  return static_cast<int>(mop_outputs_[mop].size()) - 1;
}

ChannelId Plan::input_channel(MopId mop, int port) const {
  RUMOR_DCHECK(IsLive(mop));
  return mop_inputs_[mop][port];
}

ChannelId Plan::output_channel(MopId mop, int port) const {
  RUMOR_DCHECK(IsLive(mop));
  return mop_outputs_[mop][port];
}

std::vector<ChannelEnd> Plan::ConsumersOf(ChannelId channel) const {
  std::vector<ChannelEnd> out;
  for (int m = 0; m < num_mops(); ++m) {
    if (mops_[m] == nullptr) continue;
    for (int p = 0; p < static_cast<int>(mop_inputs_[m].size()); ++p) {
      if (mop_inputs_[m][p] == channel) out.push_back({m, p});
    }
  }
  return out;
}

std::optional<ChannelEnd> Plan::ProducerOf(ChannelId channel) const {
  for (int m = 0; m < num_mops(); ++m) {
    if (mops_[m] == nullptr) continue;
    for (int p = 0; p < static_cast<int>(mop_outputs_[m].size()); ++p) {
      if (mop_outputs_[m][p] == channel) return ChannelEnd{m, p};
    }
  }
  return std::nullopt;
}

void Plan::MarkOutput(StreamId stream, std::string query_name) {
  outputs_.push_back({stream, std::move(query_name)});
}

bool Plan::UnmarkOutput(const std::string& query_name) {
  for (auto it = outputs_.begin(); it != outputs_.end(); ++it) {
    if (it->query_name == query_name) {
      outputs_.erase(it);
      return true;
    }
  }
  return false;
}

Plan::Marker Plan::Mark() const {
  Marker m;
  m.num_mops = num_mops();
  m.num_channels = num_channels();
  m.num_streams = streams_.size();
  m.num_outputs = static_cast<int>(outputs_.size());
  m.num_source_channels = static_cast<int>(source_channels_.size());
  m.derived_counter = derived_counter_;
  return m;
}

void Plan::RollbackTo(const Marker& marker) {
  RUMOR_CHECK(marker.num_mops <= num_mops());
  RUMOR_CHECK(marker.num_channels <= num_channels());
  mops_.resize(marker.num_mops);
  mop_inputs_.resize(marker.num_mops);
  mop_outputs_.resize(marker.num_mops);
  channels_.resize(marker.num_channels);
  channel_dead_.resize(marker.num_channels);
  streams_.TruncateTo(marker.num_streams);
  outputs_.resize(marker.num_outputs);
  source_channels_.resize(marker.num_source_channels);
  derived_counter_ = marker.derived_counter;
}

std::vector<int> Plan::QueryRefCounts() const {
  std::vector<int> refs(num_mops(), 0);
  for (const OutputDef& def : outputs_) {
    // Reverse reachability from every channel carrying this query's output
    // stream: producer m-ops, then their inputs' producers, transitively.
    std::vector<char> mop_seen(num_mops(), 0);
    std::vector<char> chan_seen(num_channels(), 0);
    std::vector<ChannelId> worklist;
    for (ChannelId c = 0; c < num_channels(); ++c) {
      if (channel_dead_[c]) continue;
      if (channels_[c].SlotOf(def.stream).has_value()) {
        chan_seen[c] = 1;
        worklist.push_back(c);
      }
    }
    while (!worklist.empty()) {
      ChannelId c = worklist.back();
      worklist.pop_back();
      std::optional<ChannelEnd> producer = ProducerOf(c);
      if (!producer.has_value() || mop_seen[producer->mop]) continue;
      mop_seen[producer->mop] = 1;
      for (ChannelId in : mop_inputs_[producer->mop]) {
        if (in != kInvalidChannel && !chan_seen[in]) {
          chan_seen[in] = 1;
          worklist.push_back(in);
        }
      }
    }
    for (int m = 0; m < num_mops(); ++m) refs[m] += mop_seen[m];
  }
  return refs;
}

std::optional<StreamId> Plan::OutputStreamOf(
    const std::string& query_name) const {
  for (const OutputDef& def : outputs_) {
    if (def.query_name == query_name) return def.stream;
  }
  return std::nullopt;
}

void Plan::MoveConsumers(ChannelId from, ChannelId to) {
  for (int m = 0; m < num_mops(); ++m) {
    if (mops_[m] == nullptr) continue;
    for (int p = 0; p < static_cast<int>(mop_inputs_[m].size()); ++p) {
      if (mop_inputs_[m][p] == from) mop_inputs_[m][p] = to;
    }
  }
}

void Plan::RemapOutput(StreamId from, StreamId to) {
  for (OutputDef& def : outputs_) {
    if (def.stream == from) def.stream = to;
  }
}

std::vector<ChannelId> Plan::SourceGroupChannels() const {
  std::vector<ChannelId> out;
  for (ChannelId c = 0; c < num_channels(); ++c) {
    if (channels_[c].capacity() <= 1) continue;
    if (ProducerOf(c).has_value()) continue;
    bool all_sources = true;
    for (StreamId s : channels_[c].streams()) {
      all_sources &= streams_.Get(s).is_source;
    }
    if (all_sources) out.push_back(c);
  }
  return out;
}

void Plan::Validate() const {
  for (int m = 0; m < num_mops(); ++m) {
    if (mops_[m] == nullptr) continue;
    RUMOR_CHECK(static_cast<int>(mop_inputs_[m].size()) ==
                mops_[m]->num_inputs())
        << mops_[m]->name() << " input port count drifted";
    RUMOR_CHECK(static_cast<int>(mop_outputs_[m].size()) ==
                mops_[m]->num_outputs())
        << mops_[m]->name() << " output port count drifted";
    for (size_t p = 0; p < mop_inputs_[m].size(); ++p) {
      ChannelId c = mop_inputs_[m][p];
      RUMOR_CHECK(c != kInvalidChannel)
          << mops_[m]->name() << " input port " << p << " unbound";
      RUMOR_CHECK(c >= 0 && c < num_channels())
          << mops_[m]->name() << " input port " << p << " out of range";
      RUMOR_CHECK(!channel_dead_[c])
          << mops_[m]->name() << " reads dead channel " << c;
    }
    for (size_t p = 0; p < mop_outputs_[m].size(); ++p) {
      ChannelId c = mop_outputs_[m][p];
      RUMOR_CHECK(c != kInvalidChannel)
          << mops_[m]->name() << " output port " << p << " unbound";
      RUMOR_CHECK(c >= 0 && c < num_channels())
          << mops_[m]->name() << " output port " << p << " out of range";
      RUMOR_CHECK(!channel_dead_[c])
          << mops_[m]->name() << " writes dead channel " << c;
    }
  }
  // Every query output stream must still be carried by some live channel.
  for (const OutputDef& def : outputs_) {
    bool carried = false;
    for (ChannelId c = 0; c < num_channels() && !carried; ++c) {
      carried = !channel_dead_[c] && channels_[c].SlotOf(def.stream).has_value();
    }
    RUMOR_CHECK(carried) << "output stream of query '" << def.query_name
                         << "' is not carried by any live channel";
  }
  // Each channel has at most one producer port, and dead channels are fully
  // unwired (the port checks above already reject live m-ops bound to them).
  std::vector<int> producers(channels_.size(), 0);
  for (int m = 0; m < num_mops(); ++m) {
    if (mops_[m] == nullptr) continue;
    for (ChannelId c : mop_outputs_[m]) ++producers[c];
  }
  for (size_t c = 0; c < channels_.size(); ++c) {
    RUMOR_CHECK(producers[c] <= 1)
        << "channel " << c << " has " << producers[c] << " producers";
    RUMOR_CHECK(!channel_dead_[c] || producers[c] == 0)
        << "dead channel " << c << " has a producer";
  }
  // Acyclicity via DFS over mop -> consumer edges. Consumer lists are built
  // in one pass over the m-ops (ConsumersOf per channel is quadratic).
  enum { kWhite, kGrey, kBlack };
  std::vector<int> color(num_mops(), kWhite);
  std::vector<std::vector<MopId>> consumers_by_channel(channels_.size());
  for (int m = 0; m < num_mops(); ++m) {
    if (mops_[m] == nullptr) continue;
    for (ChannelId c : mop_inputs_[m]) consumers_by_channel[c].push_back(m);
  }
  std::vector<std::vector<MopId>> succ(num_mops());
  for (int m = 0; m < num_mops(); ++m) {
    if (mops_[m] == nullptr) continue;
    for (ChannelId c : mop_outputs_[m]) {
      for (MopId consumer : consumers_by_channel[c]) {
        succ[m].push_back(consumer);
      }
    }
  }
  // Iterative DFS.
  for (int root = 0; root < num_mops(); ++root) {
    if (mops_[root] == nullptr || color[root] != kWhite) continue;
    std::vector<std::pair<MopId, size_t>> stack = {{root, 0}};
    color[root] = kGrey;
    while (!stack.empty()) {
      auto& [node, idx] = stack.back();
      if (idx < succ[node].size()) {
        MopId next = succ[node][idx++];
        RUMOR_CHECK(color[next] != kGrey) << "plan contains a cycle";
        if (color[next] == kWhite) {
          color[next] = kGrey;
          stack.push_back({next, 0});
        }
      } else {
        color[node] = kBlack;
        stack.pop_back();
      }
    }
  }
}

std::string Plan::ToString() const {
  std::ostringstream os;
  os << "Plan{\n";
  for (int m = 0; m < num_mops(); ++m) {
    if (mops_[m] == nullptr) continue;
    os << "  " << mops_[m]->name() << " in=[";
    for (size_t p = 0; p < mop_inputs_[m].size(); ++p) {
      if (p) os << ",";
      os << mop_inputs_[m][p];
    }
    os << "] out=[";
    for (size_t p = 0; p < mop_outputs_[m].size(); ++p) {
      if (p) os << ",";
      os << mop_outputs_[m][p];
    }
    os << "]\n";
  }
  for (const ChannelDef& c : channels_) {
    os << "  " << c.ToString() << "\n";
  }
  for (const OutputDef& o : outputs_) {
    os << "  output " << o.query_name << " <- stream " << o.stream << "\n";
  }
  os << "}";
  return os.str();
}

}  // namespace rumor
