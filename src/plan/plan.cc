#include "plan/plan.h"

#include <algorithm>
#include <sstream>

#include "common/str_util.h"

namespace rumor {
namespace {

// Bounded mutation-log depth. Live AddQuery/RemoveQuery produce a handful of
// events each, so consumers that sync per call stay far inside the window;
// a batch Optimize over a huge plan can overflow it, in which case the
// consumer falls back to one full rebuild (same cost as one plan scan).
constexpr size_t kEventLogCap = 1 << 16;

}  // namespace

void Plan::Emit(PlanEvent::Kind kind, int32_t a, int32_t b, int32_t c) {
  if (events_.size() >= kEventLogCap) events_.pop_front();
  events_.push_back(PlanEvent{kind, a, b, c});
  ++event_seq_;
}

bool Plan::ReadEventsSince(uint64_t cursor,
                           std::vector<PlanEvent>* out) const {
  RUMOR_CHECK(cursor <= event_seq_);
  uint64_t base = event_seq_ - events_.size();
  if (cursor < base) return false;  // compacted past the cursor
  for (size_t i = cursor - base; i < events_.size(); ++i) {
    out->push_back(events_[i]);
  }
  return true;
}

ChannelId Plan::AddChannel(std::vector<StreamId> streams, Schema schema) {
  RUMOR_CHECK(!streams.empty());
  for (StreamId s : streams) {
    RUMOR_CHECK(streams_.SchemaOf(s).CompatibleWith(schema))
        << "channel streams must be union-compatible";
  }
  ChannelId id = static_cast<ChannelId>(channels_.size());
  // Source-group channels (capacity > 1, all-source) are fed directly via
  // Executor::PushChannel and must never be collected.
  bool pinned = streams.size() > 1;
  for (StreamId s : streams) pinned &= streams_.Get(s).is_source;
  for (StreamId s : streams) {
    if (s >= static_cast<StreamId>(stream_channels_.size())) {
      stream_channels_.resize(s + 1);
    }
    stream_channels_[s].push_back(id);
  }
  channels_.emplace_back(id, std::move(streams), std::move(schema));
  channel_dead_.push_back(0);
  channel_pinned_.push_back(pinned ? 1 : 0);
  channel_consumers_.emplace_back();
  channel_producer_.push_back(ChannelEnd{});
  Emit(PlanEvent::kChannelAdded, id);
  return id;
}

bool Plan::MaybeKillChannel(ChannelId id) {
  if (channel_dead_[id]) return false;
  if (ChannelPinned(id)) return false;
  if (channel_producer_[id].mop != kInvalidMop) return false;
  if (!channel_consumers_[id].empty()) return false;
  for (StreamId s : channels_[id].streams()) {
    if (OutputMarksOn(s) > 0) return false;
  }
  channel_dead_[id] = 1;
  Emit(PlanEvent::kChannelKilled, id);
  return true;
}

int Plan::GcOrphanChannels() {
  int collected = 0;
  for (ChannelId c = 0; c < num_channels(); ++c) {
    if (MaybeKillChannel(c)) ++collected;
  }
  return collected;
}

ChannelId Plan::SourceChannelOf(StreamId stream) {
  if (auto existing = FindSourceChannel(stream)) return *existing;
  RUMOR_CHECK(streams_.Get(stream).is_source);
  ChannelId id = AddChannel({stream}, streams_.SchemaOf(stream));
  channel_pinned_[id] = 1;  // fed by Executor::PushSource
  source_channels_.push_back({stream, id});
  Emit(PlanEvent::kSourceBound, stream, id);
  return id;
}

std::optional<ChannelId> Plan::FindSourceChannel(StreamId stream) const {
  for (const auto& [s, c] : source_channels_) {
    if (s == stream) return c;
  }
  return std::nullopt;
}

ChannelId Plan::AddDerivedChannel(const std::string& name, Schema schema) {
  StreamId s = streams_.AddDerived(
      name.empty() ? StrCat("d", derived_counter_++) : name, schema);
  return AddChannel({s}, streams_.SchemaOf(s));
}

std::vector<ChannelId> Plan::ChannelsOfStream(StreamId stream) const {
  std::vector<ChannelId> out;
  if (stream < 0 || stream >= static_cast<StreamId>(stream_channels_.size())) {
    return out;
  }
  for (ChannelId c : stream_channels_[stream]) {
    if (!channel_dead_[c]) out.push_back(c);
  }
  return out;
}

MopId Plan::AddMop(std::unique_ptr<Mop> mop) {
  RUMOR_CHECK(mop != nullptr);
  MopId id = static_cast<MopId>(mops_.size());
  mop->set_id(id);
  mop_inputs_.push_back(
      std::vector<ChannelId>(mop->num_inputs(), kInvalidChannel));
  mop_outputs_.push_back(
      std::vector<ChannelId>(mop->num_outputs(), kInvalidChannel));
  mops_.push_back(std::move(mop));
  Emit(PlanEvent::kMopAdded, id);
  return id;
}

void Plan::RemoveMop(MopId id) {
  RUMOR_CHECK(IsLive(id));
  std::vector<ChannelId> touched = mop_inputs_[id];
  touched.insert(touched.end(), mop_outputs_[id].begin(),
                 mop_outputs_[id].end());
  for (int p = 0; p < static_cast<int>(mop_inputs_[id].size()); ++p) {
    ChannelId c = mop_inputs_[id][p];
    if (c == kInvalidChannel) continue;
    EraseConsumer(c, id, p);
    Emit(PlanEvent::kInputBound, id, kInvalidChannel, c);
  }
  for (int p = 0; p < static_cast<int>(mop_outputs_[id].size()); ++p) {
    ChannelId c = mop_outputs_[id][p];
    if (c == kInvalidChannel) continue;
    // Rules that reuse a removed m-op's channel bind the replacement's
    // output first, so the producer slot may already belong to it.
    if (channel_producer_[c].mop == id) channel_producer_[c] = ChannelEnd{};
    Emit(PlanEvent::kOutputBound, id, kInvalidChannel, c);
  }
  mops_[id].reset();
  mop_inputs_[id].clear();
  mop_outputs_[id].clear();
  Emit(PlanEvent::kMopRemoved, id);
  // Collect channels this removal orphaned. Rules that reuse a removed
  // m-op's channels bind the replacement first, so those still have a
  // producer or consumers here and survive.
  for (ChannelId c : touched) {
    if (c != kInvalidChannel) MaybeKillChannel(c);
  }
}

std::vector<MopId> Plan::LiveMops() const {
  std::vector<MopId> out;
  for (int i = 0; i < num_mops(); ++i) {
    if (mops_[i] != nullptr) out.push_back(i);
  }
  return out;
}

void Plan::EraseConsumer(ChannelId channel, MopId mop, int port) {
  auto& list = channel_consumers_[channel];
  for (size_t i = 0; i < list.size(); ++i) {
    if (list[i].mop == mop && list[i].port == port) {
      list[i] = list.back();
      list.pop_back();
      return;
    }
  }
  RUMOR_CHECK(false) << "consumer (" << mop << "," << port
                     << ") missing from channel " << channel;
}

void Plan::BindInput(MopId mop, int port, ChannelId channel) {
  RUMOR_CHECK(IsLive(mop));
  RUMOR_CHECK(port >= 0 && port < static_cast<int>(mop_inputs_[mop].size()));
  RUMOR_CHECK(channel >= 0 && channel < num_channels());
  ChannelId old = mop_inputs_[mop][port];
  if (old == channel) return;
  if (old != kInvalidChannel) EraseConsumer(old, mop, port);
  mop_inputs_[mop][port] = channel;
  channel_consumers_[channel].push_back({mop, port});
  Emit(PlanEvent::kInputBound, mop, channel, old);
}

void Plan::BindOutput(MopId mop, int port, ChannelId channel) {
  RUMOR_CHECK(IsLive(mop));
  RUMOR_CHECK(port >= 0 &&
              port < static_cast<int>(mop_outputs_[mop].size()));
  RUMOR_CHECK(channel >= 0 && channel < num_channels());
  ChannelId old = mop_outputs_[mop][port];
  if (old == channel) return;
  if (old != kInvalidChannel && channel_producer_[old].mop == mop &&
      channel_producer_[old].port == port) {
    channel_producer_[old] = ChannelEnd{};
  }
  mop_outputs_[mop][port] = channel;
  channel_producer_[channel] = ChannelEnd{mop, port};
  Emit(PlanEvent::kOutputBound, mop, channel, old);
}

int Plan::AddMopOutputPort(MopId mop, ChannelId channel) {
  RUMOR_CHECK(IsLive(mop));
  RUMOR_CHECK(channel >= 0 && channel < num_channels());
  RUMOR_CHECK(!channel_dead_[channel]);
  mop_outputs_[mop].push_back(channel);
  RUMOR_CHECK(static_cast<int>(mop_outputs_[mop].size()) ==
              mops_[mop]->num_outputs())
      << "grow the m-op's port count (AddMember) before binding it";
  int port = static_cast<int>(mop_outputs_[mop].size()) - 1;
  channel_producer_[channel] = ChannelEnd{mop, port};
  Emit(PlanEvent::kMopGrew, mop, channel);
  return port;
}

void Plan::NotifyMopMutated(MopId mop) {
  RUMOR_CHECK(IsLive(mop));
  Emit(PlanEvent::kMopMutated, mop);
}

ChannelId Plan::input_channel(MopId mop, int port) const {
  RUMOR_DCHECK(IsLive(mop));
  return mop_inputs_[mop][port];
}

ChannelId Plan::output_channel(MopId mop, int port) const {
  RUMOR_DCHECK(IsLive(mop));
  return mop_outputs_[mop][port];
}

std::vector<ChannelEnd> Plan::ConsumersOf(ChannelId channel) const {
  std::vector<ChannelEnd> out = channel_consumers_[channel];
  std::sort(out.begin(), out.end(), [](const ChannelEnd& a,
                                       const ChannelEnd& b) {
    return a.mop != b.mop ? a.mop < b.mop : a.port < b.port;
  });
  return out;
}

std::optional<ChannelEnd> Plan::ProducerOf(ChannelId channel) const {
  if (channel_producer_[channel].mop == kInvalidMop) return std::nullopt;
  return channel_producer_[channel];
}

void Plan::MarkOutput(StreamId stream, std::string query_name) {
  int idx = static_cast<int>(outputs_.size());
  if (!output_tables_dirty_) {
    output_index_by_name_.emplace(query_name, idx);
    output_indices_by_stream_[stream].push_back(idx);
  }
  ++output_mark_counts_[stream];
  outputs_.push_back({stream, std::move(query_name)});
  Emit(PlanEvent::kOutputMarked, stream);
}

bool Plan::UnmarkOutput(const std::string& query_name) {
  for (auto it = outputs_.begin(); it != outputs_.end(); ++it) {
    if (it->query_name == query_name) {
      StreamId stream = it->stream;
      auto count = output_mark_counts_.find(stream);
      RUMOR_CHECK(count != output_mark_counts_.end() && count->second > 0);
      if (--count->second == 0) output_mark_counts_.erase(count);
      outputs_.erase(it);  // shifts later indices
      output_tables_dirty_ = true;
      Emit(PlanEvent::kOutputUnmarked, stream);
      return true;
    }
  }
  return false;
}

void Plan::EnsureOutputTables() const {
  if (!output_tables_dirty_) return;
  output_index_by_name_.clear();
  output_indices_by_stream_.clear();
  for (int i = 0; i < static_cast<int>(outputs_.size()); ++i) {
    // emplace keeps the first mark per name, matching the old linear scan.
    output_index_by_name_.emplace(outputs_[i].query_name, i);
    output_indices_by_stream_[outputs_[i].stream].push_back(i);
  }
  output_tables_dirty_ = false;
}

std::optional<StreamId> Plan::OutputStreamOf(
    const std::string& query_name) const {
  EnsureOutputTables();
  auto it = output_index_by_name_.find(query_name);
  if (it == output_index_by_name_.end()) return std::nullopt;
  return outputs_[it->second].stream;
}

int Plan::OutputMarksOn(StreamId stream) const {
  auto it = output_mark_counts_.find(stream);
  return it == output_mark_counts_.end() ? 0 : it->second;
}

void Plan::RemapOutput(StreamId from, StreamId to) {
  if (from == to) return;
  EnsureOutputTables();
  auto it = output_indices_by_stream_.find(from);
  if (it == output_indices_by_stream_.end()) return;
  std::vector<int> moved = std::move(it->second);
  output_indices_by_stream_.erase(it);
  for (int idx : moved) {
    outputs_[idx].stream = to;
    auto count = output_mark_counts_.find(from);
    RUMOR_CHECK(count != output_mark_counts_.end() && count->second > 0);
    if (--count->second == 0) output_mark_counts_.erase(count);
    ++output_mark_counts_[to];
  }
  auto& dst = output_indices_by_stream_[to];
  dst.insert(dst.end(), moved.begin(), moved.end());
  Emit(PlanEvent::kOutputRemapped, from, to);
}

Plan::Marker Plan::Mark() const {
  Marker m;
  m.num_mops = num_mops();
  m.num_channels = num_channels();
  m.num_streams = streams_.size();
  m.num_outputs = static_cast<int>(outputs_.size());
  m.num_source_channels = static_cast<int>(source_channels_.size());
  m.derived_counter = derived_counter_;
  return m;
}

void Plan::RollbackTo(const Marker& marker) {
  RUMOR_CHECK(marker.num_mops <= num_mops());
  RUMOR_CHECK(marker.num_channels <= num_channels());
  mops_.resize(marker.num_mops);
  mop_inputs_.resize(marker.num_mops);
  mop_outputs_.resize(marker.num_mops);
  channels_.resize(marker.num_channels);
  channel_dead_.resize(marker.num_channels);
  streams_.TruncateTo(marker.num_streams);
  outputs_.resize(marker.num_outputs);
  source_channels_.resize(marker.num_source_channels);
  derived_counter_ = marker.derived_counter;
  RebuildDerivedState();
  Emit(PlanEvent::kBulk, -1);
}

void Plan::RebuildDerivedState() {
  channel_pinned_.assign(channels_.size(), 0);
  channel_consumers_.assign(channels_.size(), {});
  channel_producer_.assign(channels_.size(), ChannelEnd{});
  stream_channels_.assign(streams_.size(), {});
  for (ChannelId c = 0; c < num_channels(); ++c) {
    bool pinned = channels_[c].capacity() > 1;
    for (StreamId s : channels_[c].streams()) {
      pinned &= streams_.Get(s).is_source;
      stream_channels_[s].push_back(c);
    }
    channel_pinned_[c] = pinned ? 1 : 0;
  }
  for (const auto& [s, c] : source_channels_) channel_pinned_[c] = 1;
  for (int m = 0; m < num_mops(); ++m) {
    if (mops_[m] == nullptr) continue;
    for (int p = 0; p < static_cast<int>(mop_inputs_[m].size()); ++p) {
      ChannelId c = mop_inputs_[m][p];
      if (c != kInvalidChannel) channel_consumers_[c].push_back({m, p});
    }
    for (int p = 0; p < static_cast<int>(mop_outputs_[m].size()); ++p) {
      ChannelId c = mop_outputs_[m][p];
      if (c != kInvalidChannel) channel_producer_[c] = ChannelEnd{m, p};
    }
  }
  output_mark_counts_.clear();
  for (const OutputDef& def : outputs_) ++output_mark_counts_[def.stream];
  output_tables_dirty_ = true;
}

std::vector<int> Plan::QueryRefCounts() const {
  std::vector<int> refs(num_mops(), 0);
  // Reverse reachability once per *distinct output stream* (after CSE,
  // thousands of duplicate queries share one stream — their reach sets are
  // identical, so each reached m-op just earns the stream's mark count).
  // Stamped visitation reuses the two marker arrays across walks, so the
  // total cost is O(plan + sum of reachable subgraphs), not the former
  // O(outputs x plan) that made CollectMetrics minutes-long at 100k+
  // standing queries.
  std::vector<uint32_t> mop_stamp(num_mops(), 0);
  std::vector<uint32_t> chan_stamp(num_channels(), 0);
  uint32_t stamp = 0;
  std::vector<ChannelId> worklist;
  for (const auto& [stream, marks] : output_mark_counts_) {
    ++stamp;
    worklist.clear();
    for (ChannelId c : ChannelsOfStream(stream)) {
      chan_stamp[c] = stamp;
      worklist.push_back(c);
    }
    while (!worklist.empty()) {
      ChannelId c = worklist.back();
      worklist.pop_back();
      const ChannelEnd& producer = channel_producer_[c];
      if (producer.mop == kInvalidMop || mop_stamp[producer.mop] == stamp) {
        continue;
      }
      mop_stamp[producer.mop] = stamp;
      refs[producer.mop] += marks;
      for (ChannelId in : mop_inputs_[producer.mop]) {
        if (in != kInvalidChannel && chan_stamp[in] != stamp) {
          chan_stamp[in] = stamp;
          worklist.push_back(in);
        }
      }
    }
  }
  return refs;
}

Plan::OutputReach Plan::ComputeOutputReach() const {
  // Per-entity label: -1 = reached by no output, -2 = by two or more
  // distinct outputs, otherwise the single output-def index reaching it.
  constexpr int32_t kNone = -1;
  constexpr int32_t kMulti = -2;
  auto merge = [](int32_t into, int32_t from) {
    if (from == kNone || into == from) return into;
    return into == kNone ? from : kMulti;
  };
  std::vector<int32_t> chan_label(num_channels(), kNone);
  std::vector<int32_t> mop_label(num_mops(), kNone);
  for (int i = 0; i < static_cast<int>(outputs_.size()); ++i) {
    for (ChannelId c : ChannelsOfStream(outputs_[i].stream)) {
      chan_label[c] = merge(chan_label[c], i);
    }
  }
  // Post-order over mop -> consumer edges puts every m-op after all its
  // downstream consumers, so one sweep propagates labels from each m-op's
  // output channels into its input channels.
  std::vector<MopId> order;
  order.reserve(mops_.size());
  std::vector<char> color(num_mops(), 0);  // 0 white, 1 on stack, 2 done
  for (int root = 0; root < num_mops(); ++root) {
    if (mops_[root] == nullptr || color[root] != 0) continue;
    std::vector<std::pair<MopId, size_t>> stack = {{root, 0}};
    color[root] = 1;
    while (!stack.empty()) {
      auto& [node, idx] = stack.back();
      bool descended = false;
      while (idx < mop_outputs_[node].size()) {
        ChannelId c = mop_outputs_[node][idx++];
        if (c == kInvalidChannel) continue;
        for (const ChannelEnd& end : channel_consumers_[c]) {
          if (color[end.mop] == 0) {
            color[end.mop] = 1;
            stack.push_back({end.mop, 0});
            descended = true;
            break;
          }
        }
        if (descended) break;
      }
      if (!descended && idx >= mop_outputs_[node].size()) {
        color[node] = 2;
        order.push_back(node);
        stack.pop_back();
      }
    }
  }
  for (MopId m : order) {
    int32_t label = kNone;
    for (ChannelId c : mop_outputs_[m]) {
      if (c != kInvalidChannel) label = merge(label, chan_label[c]);
    }
    mop_label[m] = label;
    if (label == kNone) continue;
    for (ChannelId c : mop_inputs_[m]) {
      if (c != kInvalidChannel) chan_label[c] = merge(chan_label[c], label);
    }
  }
  OutputReach reach;
  auto saturate = [](int32_t label) -> uint8_t {
    return label == kNone ? 0 : (label == kMulti ? 2 : 1);
  };
  reach.mops.resize(mop_label.size());
  reach.channels.resize(chan_label.size());
  for (size_t i = 0; i < mop_label.size(); ++i) {
    reach.mops[i] = saturate(mop_label[i]);
  }
  for (size_t i = 0; i < chan_label.size(); ++i) {
    reach.channels[i] = saturate(chan_label[i]);
  }
  return reach;
}

void Plan::MoveConsumers(ChannelId from, ChannelId to) {
  if (from == to) return;
  std::vector<ChannelEnd> moved;
  moved.swap(channel_consumers_[from]);
  for (const ChannelEnd& end : moved) {
    mop_inputs_[end.mop][end.port] = to;
    channel_consumers_[to].push_back(end);
    Emit(PlanEvent::kInputBound, end.mop, to, from);
  }
}

std::vector<ChannelId> Plan::SourceGroupChannels() const {
  std::vector<ChannelId> out;
  for (ChannelId c = 0; c < num_channels(); ++c) {
    if (channels_[c].capacity() <= 1) continue;
    if (channel_producer_[c].mop != kInvalidMop) continue;
    bool all_sources = true;
    for (StreamId s : channels_[c].streams()) {
      all_sources &= streams_.Get(s).is_source;
    }
    if (all_sources) out.push_back(c);
  }
  return out;
}

void Plan::Validate() const {
  for (int m = 0; m < num_mops(); ++m) {
    if (mops_[m] == nullptr) continue;
    RUMOR_CHECK(static_cast<int>(mop_inputs_[m].size()) ==
                mops_[m]->num_inputs())
        << mops_[m]->name() << " input port count drifted";
    RUMOR_CHECK(static_cast<int>(mop_outputs_[m].size()) ==
                mops_[m]->num_outputs())
        << mops_[m]->name() << " output port count drifted";
    for (size_t p = 0; p < mop_inputs_[m].size(); ++p) {
      ChannelId c = mop_inputs_[m][p];
      RUMOR_CHECK(c != kInvalidChannel)
          << mops_[m]->name() << " input port " << p << " unbound";
      RUMOR_CHECK(c >= 0 && c < num_channels())
          << mops_[m]->name() << " input port " << p << " out of range";
      RUMOR_CHECK(!channel_dead_[c])
          << mops_[m]->name() << " reads dead channel " << c;
    }
    for (size_t p = 0; p < mop_outputs_[m].size(); ++p) {
      ChannelId c = mop_outputs_[m][p];
      RUMOR_CHECK(c != kInvalidChannel)
          << mops_[m]->name() << " output port " << p << " unbound";
      RUMOR_CHECK(c >= 0 && c < num_channels())
          << mops_[m]->name() << " output port " << p << " out of range";
      RUMOR_CHECK(!channel_dead_[c])
          << mops_[m]->name() << " writes dead channel " << c;
    }
  }
  // Every query output stream must still be carried by some live channel.
  for (const OutputDef& def : outputs_) {
    bool carried = false;
    for (ChannelId c : ChannelsOfStream(def.stream)) {
      carried |= !channel_dead_[c];
    }
    RUMOR_CHECK(carried) << "output stream of query '" << def.query_name
                         << "' is not carried by any live channel";
  }
  // Mark counts agree with outputs_.
  {
    std::unordered_map<StreamId, int> expect;
    for (const OutputDef& def : outputs_) ++expect[def.stream];
    RUMOR_CHECK(expect.size() == output_mark_counts_.size())
        << "output mark count table drifted";
    for (const auto& [s, n] : expect) {
      RUMOR_CHECK(OutputMarksOn(s) == n)
          << "output mark count drifted for stream " << s;
    }
  }
  // Each channel has at most one producer port, dead channels are fully
  // unwired, and the incrementally maintained adjacency matches a fresh
  // scan of the port bindings.
  std::vector<int> producers(channels_.size(), 0);
  std::vector<std::vector<ChannelEnd>> expect_consumers(channels_.size());
  for (int m = 0; m < num_mops(); ++m) {
    if (mops_[m] == nullptr) continue;
    for (ChannelId c : mop_outputs_[m]) ++producers[c];
    for (int p = 0; p < static_cast<int>(mop_inputs_[m].size()); ++p) {
      expect_consumers[mop_inputs_[m][p]].push_back({m, p});
    }
  }
  for (size_t c = 0; c < channels_.size(); ++c) {
    RUMOR_CHECK(producers[c] <= 1)
        << "channel " << c << " has " << producers[c] << " producers";
  }
  for (int m = 0; m < num_mops(); ++m) {
    if (mops_[m] == nullptr) continue;
    for (int p = 0; p < static_cast<int>(mop_outputs_[m].size()); ++p) {
      ChannelId c = mop_outputs_[m][p];
      RUMOR_CHECK(channel_producer_[c].mop == m &&
                  channel_producer_[c].port == p)
          << "producer adjacency drifted for channel " << c;
    }
  }
  auto end_less = [](const ChannelEnd& a, const ChannelEnd& b) {
    return a.mop != b.mop ? a.mop < b.mop : a.port < b.port;
  };
  for (size_t c = 0; c < channels_.size(); ++c) {
    RUMOR_CHECK(!channel_dead_[c] || producers[c] == 0)
        << "dead channel " << c << " has a producer";
    RUMOR_CHECK(producers[c] > 0 || channel_producer_[c].mop == kInvalidMop)
        << "stale producer adjacency for channel " << c;
    std::vector<ChannelEnd> got = channel_consumers_[c];
    std::sort(got.begin(), got.end(), end_less);
    std::sort(expect_consumers[c].begin(), expect_consumers[c].end(),
              end_less);
    RUMOR_CHECK(got.size() == expect_consumers[c].size())
        << "consumer adjacency drifted for channel " << c;
    for (size_t i = 0; i < got.size(); ++i) {
      RUMOR_CHECK(got[i].mop == expect_consumers[c][i].mop &&
                  got[i].port == expect_consumers[c][i].port)
          << "consumer adjacency drifted for channel " << c;
    }
  }
  // Acyclicity via DFS over mop -> consumer edges.
  enum { kWhite, kGrey, kBlack };
  std::vector<int> color(num_mops(), kWhite);
  for (int root = 0; root < num_mops(); ++root) {
    if (mops_[root] == nullptr || color[root] != kWhite) continue;
    std::vector<std::pair<MopId, size_t>> stack = {{root, 0}};
    color[root] = kGrey;
    while (!stack.empty()) {
      auto& [node, idx] = stack.back();
      // Flatten (output port, consumer) into one successor index.
      MopId next = kInvalidMop;
      size_t skipped = 0;
      for (ChannelId c : mop_outputs_[node]) {
        const auto& ends = channel_consumers_[c];
        if (idx - skipped < ends.size()) {
          next = ends[idx - skipped].mop;
          break;
        }
        skipped += ends.size();
      }
      if (next != kInvalidMop) {
        ++idx;
        RUMOR_CHECK(color[next] != kGrey) << "plan contains a cycle";
        if (color[next] == kWhite) {
          color[next] = kGrey;
          stack.push_back({next, 0});
        }
      } else {
        color[node] = kBlack;
        stack.pop_back();
      }
    }
  }
}

std::string Plan::ToString() const {
  std::ostringstream os;
  os << "Plan{\n";
  for (int m = 0; m < num_mops(); ++m) {
    if (mops_[m] == nullptr) continue;
    os << "  " << mops_[m]->name() << " in=[";
    for (size_t p = 0; p < mop_inputs_[m].size(); ++p) {
      if (p) os << ",";
      os << mop_inputs_[m][p];
    }
    os << "] out=[";
    for (size_t p = 0; p < mop_outputs_[m].size(); ++p) {
      if (p) os << ",";
      os << mop_outputs_[m][p];
    }
    os << "]\n";
  }
  for (const ChannelDef& c : channels_) {
    os << "  " << c.ToString() << "\n";
  }
  for (const OutputDef& o : outputs_) {
    os << "  output " << o.query_name << " <- stream " << o.stream << "\n";
  }
  os << "}";
  return os.str();
}

}  // namespace rumor
