// Plan: a DAG of m-ops wired by channels (paper §2.1-§2.2: "a query plan …
// implements all the currently active logical queries").
//
// Structure:
//  * streams — logical stream definitions (StreamRegistry);
//  * channels — each carries >= 1 streams; a plain stream is a capacity-1
//    channel;
//  * m-ops — nodes; each input/output *port* of an m-op binds to a channel;
//  * source channels — capacity-1 channels with no producer m-op, fed by the
//    executor;
//  * outputs — streams marked as query results (the paper names a query's
//    output stream after the query).
//
// M-rules rewrite the plan by replacing a set of m-ops with a target m-op
// and rebinding the affected channel edges (paper §2.3); RemoveMop /
// AddMop / Bind* are the primitives they use.
#ifndef RUMOR_PLAN_PLAN_H_
#define RUMOR_PLAN_PLAN_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mop/mop.h"
#include "stream/channel.h"
#include "stream/stream.h"

namespace rumor {

// A (mop, port) endpoint of a channel edge.
struct ChannelEnd {
  MopId mop = kInvalidMop;
  int port = -1;
};

class Plan {
 public:
  Plan() = default;
  Plan(const Plan&) = delete;
  Plan& operator=(const Plan&) = delete;

  StreamRegistry& streams() { return streams_; }
  const StreamRegistry& streams() const { return streams_; }

  // --- channels -------------------------------------------------------------
  ChannelId AddChannel(std::vector<StreamId> streams, Schema schema);
  const ChannelDef& channel(ChannelId id) const {
    RUMOR_DCHECK(id >= 0 && id < num_channels());
    return channels_[id];
  }
  int num_channels() const { return static_cast<int>(channels_.size()); }
  // A channel is dead once nothing produces, consumes, or feeds it; dead
  // channels are tombstones (ids stay dense) that the executor skips.
  bool channel_dead(ChannelId id) const {
    RUMOR_DCHECK(id >= 0 && id < num_channels());
    return channel_dead_[id];
  }
  // Marks every orphaned channel dead (see channel_dead); returns the number
  // of channels newly collected. RemoveMop collects its own former channels;
  // this sweep catches the rest after bulk teardown.
  int GcOrphanChannels();
  // The capacity-1 channel of a source stream (created on first use).
  ChannelId SourceChannelOf(StreamId stream);
  std::optional<ChannelId> FindSourceChannel(StreamId stream) const;

  // Convenience: derived stream + capacity-1 channel in one step.
  ChannelId AddDerivedChannel(const std::string& name, Schema schema);

  // --- m-ops ----------------------------------------------------------------
  MopId AddMop(std::unique_ptr<Mop> mop);
  // Tombstones the m-op, clears its bindings, and garbage-collects channels
  // the removal orphaned (no producer, no consumers, no output stream, not
  // externally fed) so later passes cannot trip on dangling subscriptions.
  void RemoveMop(MopId id);
  bool IsLive(MopId id) const {
    return id >= 0 && id < num_mops() && mops_[id] != nullptr;
  }
  Mop& mop(MopId id) {
    RUMOR_DCHECK(IsLive(id));
    return *mops_[id];
  }
  const Mop& mop(MopId id) const {
    RUMOR_DCHECK(IsLive(id));
    return *mops_[id];
  }
  int num_mops() const { return static_cast<int>(mops_.size()); }
  // Ids of all live m-ops.
  std::vector<MopId> LiveMops() const;

  // --- wiring ---------------------------------------------------------------
  void BindInput(MopId mop, int port, ChannelId channel);
  void BindOutput(MopId mop, int port, ChannelId channel);
  // Binds a freshly grown output port of `mop` (the m-op must already report
  // the larger num_outputs(), e.g. after AddMember on a warm shared m-op);
  // returns the new port index.
  int AddMopOutputPort(MopId mop, ChannelId channel);
  ChannelId input_channel(MopId mop, int port) const;
  ChannelId output_channel(MopId mop, int port) const;
  const std::vector<ChannelId>& input_channels(MopId mop) const {
    return mop_inputs_[mop];
  }
  const std::vector<ChannelId>& output_channels(MopId mop) const {
    return mop_outputs_[mop];
  }

  // Consumers of a channel (derived; O(#mops)).
  std::vector<ChannelEnd> ConsumersOf(ChannelId channel) const;
  // Producer of a channel, or nullopt for source channels.
  std::optional<ChannelEnd> ProducerOf(ChannelId channel) const;

  // Rebinds every input port reading `from` to read `to` (rule rewiring).
  void MoveConsumers(ChannelId from, ChannelId to);
  // Re-points query-output marks from one stream to another (CSE dedup).
  void RemapOutput(StreamId from, StreamId to);
  // Producer-less channels of capacity > 1 encoding only source streams
  // (created by the channel rule over sharable sources; fed directly via
  // Executor::PushChannel).
  std::vector<ChannelId> SourceGroupChannels() const;

  // --- outputs ---------------------------------------------------------------
  struct OutputDef {
    StreamId stream;
    std::string query_name;
  };
  void MarkOutput(StreamId stream, std::string query_name);
  const std::vector<OutputDef>& outputs() const { return outputs_; }
  // Removes the output mark of `query_name`; returns false if absent. Other
  // queries sharing the same stream keep their marks.
  bool UnmarkOutput(const std::string& query_name);
  // Current output stream of a query (CSE may remap streams after
  // compilation, so use this rather than a compile-time CompiledQuery).
  std::optional<StreamId> OutputStreamOf(const std::string& query_name) const;

  // --- dynamic-plan support ---------------------------------------------------
  // Size snapshot for transactional growth: Mark() before compiling a new
  // query into a live plan, RollbackTo() if compilation fails midway so no
  // half-lowered m-ops/channels/streams leak into the running engine.
  struct Marker {
    int num_mops = 0;
    int num_channels = 0;
    int num_streams = 0;
    int num_outputs = 0;
    int num_source_channels = 0;
    int derived_counter = 0;
  };
  Marker Mark() const;
  // Undoes every AddMop/AddChannel/AddDerivedChannel/MarkOutput since
  // `marker`. Only valid while nothing created before the marker was rebound
  // to entities created after it (true for a failed CompileQuery).
  void RollbackTo(const Marker& marker);

  // Per-m-op count of queries whose output transitively depends on the m-op
  // (reverse reachability from output streams). A count of zero means no
  // surviving query reaches the m-op — the reference counts that drive
  // RemoveQuery unsharing; also useful observability for live plans.
  std::vector<int> QueryRefCounts() const;

  // --- diagnostics -----------------------------------------------------------
  // Internal consistency: ports fully bound, schemas compatible along
  // edges, DAG (no cycles). CHECK-fails with a message on violation.
  void Validate() const;
  std::string ToString() const;

 private:
  // True if the channel is externally fed or otherwise must never be
  // collected (source channels, source-group channels).
  bool ChannelPinned(ChannelId id) const;
  // Marks `id` dead if orphaned; returns true if it was collected.
  bool MaybeKillChannel(ChannelId id);

  StreamRegistry streams_;
  std::vector<ChannelDef> channels_;
  std::vector<char> channel_dead_;  // parallel to channels_
  std::vector<std::unique_ptr<Mop>> mops_;
  std::vector<std::vector<ChannelId>> mop_inputs_;
  std::vector<std::vector<ChannelId>> mop_outputs_;
  std::vector<std::pair<StreamId, ChannelId>> source_channels_;
  std::vector<OutputDef> outputs_;
  int derived_counter_ = 0;
};

}  // namespace rumor

#endif  // RUMOR_PLAN_PLAN_H_
