// Plan: a DAG of m-ops wired by channels (paper §2.1-§2.2: "a query plan …
// implements all the currently active logical queries").
//
// Structure:
//  * streams — logical stream definitions (StreamRegistry);
//  * channels — each carries >= 1 streams; a plain stream is a capacity-1
//    channel;
//  * m-ops — nodes; each input/output *port* of an m-op binds to a channel;
//  * source channels — capacity-1 channels with no producer m-op, fed by the
//    executor;
//  * outputs — streams marked as query results (the paper names a query's
//    output stream after the query).
//
// M-rules rewrite the plan by replacing a set of m-ops with a target m-op
// and rebinding the affected channel edges (paper §2.3); RemoveMop /
// AddMop / Bind* are the primitives they use.
//
// Scale contract (the "millions of standing queries" work): every mutation
// primitive maintains reverse adjacency (channel -> consumers / producer)
// and per-stream lookup tables incrementally, so the structural queries the
// optimizer and executor issue per live AddQuery/RemoveQuery are O(degree),
// not O(plan). Mutations additionally publish PlanEvents into a bounded log
// so derived structures (the optimizer's ShareIndex, the executor's routing
// tables) can stay synchronized without rescanning the plan.
#ifndef RUMOR_PLAN_PLAN_H_
#define RUMOR_PLAN_PLAN_H_

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "mop/mop.h"
#include "stream/channel.h"
#include "stream/stream.h"

namespace rumor {

// A (mop, port) endpoint of a channel edge.
struct ChannelEnd {
  MopId mop = kInvalidMop;
  int port = -1;
};

// One plan mutation, published by the Plan primitives into a bounded log.
// Consumers (ShareIndex, Executor::Refresh) hold a cursor into the log and
// patch themselves from the delta instead of rescanning the plan; a kBulk
// event (or a cursor that fell off the log) forces a full rebuild.
struct PlanEvent {
  enum Kind : uint8_t {
    kBulk,            // wholesale change (rollback): consumers must rebuild
    kMopAdded,        // a = mop
    kMopRemoved,      // a = mop (already torn down when observed)
    kMopGrew,         // a = mop, b = channel bound to the new output port
    kInputBound,      // a = mop, b = new channel or -1, c = old channel or -1
    kOutputBound,     // a = mop, b = new channel or -1, c = old channel or -1
    kChannelAdded,    // a = channel
    kChannelKilled,   // a = channel
    kSourceBound,     // a = stream, b = its new source channel
    kOutputMarked,    // a = stream
    kOutputUnmarked,  // a = stream
    kOutputRemapped,  // a = from stream, b = to stream
    kMopMutated,      // a = mop — in-place member redefinition, no rewiring
  };
  Kind kind;
  int32_t a = -1;
  int32_t b = -1;
  int32_t c = -1;
};

class Plan {
 public:
  Plan() = default;
  Plan(const Plan&) = delete;
  Plan& operator=(const Plan&) = delete;

  StreamRegistry& streams() { return streams_; }
  const StreamRegistry& streams() const { return streams_; }

  // --- channels -------------------------------------------------------------
  ChannelId AddChannel(std::vector<StreamId> streams, Schema schema);
  const ChannelDef& channel(ChannelId id) const {
    RUMOR_DCHECK(id >= 0 && id < num_channels());
    return channels_[id];
  }
  int num_channels() const { return static_cast<int>(channels_.size()); }
  // A channel is dead once nothing produces, consumes, or feeds it; dead
  // channels are tombstones (ids stay dense) that the executor skips.
  bool channel_dead(ChannelId id) const {
    RUMOR_DCHECK(id >= 0 && id < num_channels());
    return channel_dead_[id];
  }
  // Marks every orphaned channel dead (see channel_dead); returns the number
  // of channels newly collected. RemoveMop collects its own former channels;
  // this sweep catches the rest after bulk teardown.
  int GcOrphanChannels();
  // The capacity-1 channel of a source stream (created on first use).
  ChannelId SourceChannelOf(StreamId stream);
  std::optional<ChannelId> FindSourceChannel(StreamId stream) const;

  // Convenience: derived stream + capacity-1 channel in one step.
  ChannelId AddDerivedChannel(const std::string& name, Schema schema);

  // Live channels carrying `stream` (append-only per channel; dead channels
  // are filtered out). O(#channels carrying the stream).
  std::vector<ChannelId> ChannelsOfStream(StreamId stream) const;

  // --- m-ops ----------------------------------------------------------------
  MopId AddMop(std::unique_ptr<Mop> mop);
  // Tombstones the m-op, clears its bindings, and garbage-collects channels
  // the removal orphaned (no producer, no consumers, no output stream, not
  // externally fed) so later passes cannot trip on dangling subscriptions.
  void RemoveMop(MopId id);
  bool IsLive(MopId id) const {
    return id >= 0 && id < num_mops() && mops_[id] != nullptr;
  }
  Mop& mop(MopId id) {
    RUMOR_DCHECK(IsLive(id));
    return *mops_[id];
  }
  const Mop& mop(MopId id) const {
    RUMOR_DCHECK(IsLive(id));
    return *mops_[id];
  }
  int num_mops() const { return static_cast<int>(mops_.size()); }
  // Ids of all live m-ops.
  std::vector<MopId> LiveMops() const;

  // --- wiring ---------------------------------------------------------------
  void BindInput(MopId mop, int port, ChannelId channel);
  void BindOutput(MopId mop, int port, ChannelId channel);
  // Binds a freshly grown output port of `mop` (the m-op must already report
  // the larger num_outputs(), e.g. after AddMember on a warm shared m-op);
  // returns the new port index.
  int AddMopOutputPort(MopId mop, ChannelId channel);
  // Publishes that `mop` redefined one of its members in place (e.g. a
  // shared aggregate reusing a deactivated slot for a new spec). Wiring is
  // untouched, but member signatures may have changed, so signature-keyed
  // consumers of the event log must re-derive the m-op.
  void NotifyMopMutated(MopId mop);
  ChannelId input_channel(MopId mop, int port) const;
  ChannelId output_channel(MopId mop, int port) const;
  const std::vector<ChannelId>& input_channels(MopId mop) const {
    return mop_inputs_[mop];
  }
  const std::vector<ChannelId>& output_channels(MopId mop) const {
    return mop_outputs_[mop];
  }

  // Consumers of a channel, sorted by (mop, port). O(degree) — the reverse
  // adjacency is maintained incrementally by the wiring primitives.
  std::vector<ChannelEnd> ConsumersOf(ChannelId channel) const;
  // Producer of a channel, or nullopt for source channels. O(1).
  std::optional<ChannelEnd> ProducerOf(ChannelId channel) const;

  // Rebinds every input port reading `from` to read `to` (rule rewiring).
  // O(#consumers of `from`).
  void MoveConsumers(ChannelId from, ChannelId to);
  // Re-points query-output marks from one stream to another (CSE dedup).
  // O(#marks on `from`) while no UnmarkOutput intervened (amortized by a
  // lazily rebuilt stream -> marks table otherwise).
  void RemapOutput(StreamId from, StreamId to);
  // Producer-less channels of capacity > 1 encoding only source streams
  // (created by the channel rule over sharable sources; fed directly via
  // Executor::PushChannel).
  std::vector<ChannelId> SourceGroupChannels() const;

  // --- outputs ---------------------------------------------------------------
  struct OutputDef {
    StreamId stream;
    std::string query_name;
  };
  void MarkOutput(StreamId stream, std::string query_name);
  const std::vector<OutputDef>& outputs() const { return outputs_; }
  // Removes the output mark of `query_name`; returns false if absent. Other
  // queries sharing the same stream keep their marks.
  bool UnmarkOutput(const std::string& query_name);
  // Current output stream of a query (CSE may remap streams after
  // compilation, so use this rather than a compile-time CompiledQuery).
  // Amortized O(1) via the lazily rebuilt name -> mark table.
  std::optional<StreamId> OutputStreamOf(const std::string& query_name) const;
  // Number of output marks on `stream`. O(1).
  int OutputMarksOn(StreamId stream) const;

  // --- dynamic-plan support ---------------------------------------------------
  // Size snapshot for transactional growth: Mark() before compiling a new
  // query into a live plan, RollbackTo() if compilation fails midway so no
  // half-lowered m-ops/channels/streams leak into the running engine.
  struct Marker {
    int num_mops = 0;
    int num_channels = 0;
    int num_streams = 0;
    int num_outputs = 0;
    int num_source_channels = 0;
    int derived_counter = 0;
  };
  Marker Mark() const;
  // Undoes every AddMop/AddChannel/AddDerivedChannel/MarkOutput since
  // `marker`. Only valid while nothing created before the marker was rebound
  // to entities created after it (true for a failed CompileQuery). Publishes
  // a kBulk event (derived structures rebuild).
  void RollbackTo(const Marker& marker);

  // Per-m-op count of queries whose output transitively depends on the m-op
  // (reverse reachability from output streams). O(outputs × cone); prefer
  // ComputeOutputReach for the scale paths that only need none/one/shared.
  std::vector<int> QueryRefCounts() const;

  // How many *distinct* query outputs reach each m-op / channel, saturated
  // at 2: 0 = unreachable from any surviving output (prunable), 1 = serves
  // exactly one query, 2 = shared by two or more. One O(plan + outputs)
  // backward pass over the DAG — this is what RemoveQuery unsharing and the
  // sharing-quality snapshot use instead of the per-query refcount walk.
  struct OutputReach {
    std::vector<uint8_t> mops;      // by MopId
    std::vector<uint8_t> channels;  // by ChannelId
  };
  OutputReach ComputeOutputReach() const;

  // --- mutation log -----------------------------------------------------------
  // Total mutations published so far; a consumer stores this as its cursor.
  uint64_t mutation_seq() const { return event_seq_; }
  // Appends the events in (cursor, mutation_seq()] to *out. Returns false
  // if the log has been compacted past `cursor` — the consumer must rebuild
  // from the plan wholesale and reset its cursor to mutation_seq().
  bool ReadEventsSince(uint64_t cursor, std::vector<PlanEvent>* out) const;

  // --- diagnostics -----------------------------------------------------------
  // Internal consistency: ports fully bound, schemas compatible along
  // edges, DAG (no cycles), adjacency tables in sync. CHECK-fails with a
  // message on violation.
  void Validate() const;
  std::string ToString() const;

 private:
  // True if the channel is externally fed or otherwise must never be
  // collected (source channels, source-group channels). O(1).
  bool ChannelPinned(ChannelId id) const { return channel_pinned_[id]; }
  // Marks `id` dead if orphaned; returns true if it was collected.
  bool MaybeKillChannel(ChannelId id);
  void Emit(PlanEvent::Kind kind, int32_t a, int32_t b = -1, int32_t c = -1);
  // Drops (mop, port) from `channel`'s consumer list.
  void EraseConsumer(ChannelId channel, MopId mop, int port);
  // Recomputes adjacency, pinned flags, stream tables and mark counts from
  // the primary representation (RollbackTo).
  void RebuildDerivedState();
  // Lazily rebuilds the output-mark lookup tables (invalidated by
  // UnmarkOutput, which shifts mark indices).
  void EnsureOutputTables() const;

  StreamRegistry streams_;
  std::vector<ChannelDef> channels_;
  std::vector<char> channel_dead_;    // parallel to channels_
  std::vector<char> channel_pinned_;  // parallel to channels_
  std::vector<std::unique_ptr<Mop>> mops_;
  std::vector<std::vector<ChannelId>> mop_inputs_;
  std::vector<std::vector<ChannelId>> mop_outputs_;
  // Reverse adjacency, maintained by every wiring primitive.
  std::vector<std::vector<ChannelEnd>> channel_consumers_;  // by channel
  std::vector<ChannelEnd> channel_producer_;                // by channel
  // Channels carrying each stream (append-only; never shrinks except on
  // rollback). Seeds reachability walks without scanning all channels.
  std::vector<std::vector<ChannelId>> stream_channels_;  // by stream id
  std::vector<std::pair<StreamId, ChannelId>> source_channels_;
  std::vector<OutputDef> outputs_;
  // Output-mark count per stream (exact, eagerly maintained — the O(1)
  // "does any query read this stream" test).
  std::unordered_map<StreamId, int> output_mark_counts_;
  // Lazily rebuilt lookup into outputs_ (indices shift on UnmarkOutput).
  mutable bool output_tables_dirty_ = false;
  mutable std::unordered_map<std::string, int> output_index_by_name_;
  mutable std::unordered_map<StreamId, std::vector<int>> output_indices_by_stream_;
  int derived_counter_ = 0;

  // Bounded mutation log.
  std::deque<PlanEvent> events_;
  uint64_t event_seq_ = 0;
};

}  // namespace rumor

#endif  // RUMOR_PLAN_PLAN_H_
