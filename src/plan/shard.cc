#include "plan/shard.h"

#include <algorithm>
#include <optional>
#include <sstream>

#include "expr/shape.h"
#include "mop/aggregate_mop.h"
#include "mop/join_mop.h"
#include "mop/projection_mop.h"
#include "mop/sequence_mop.h"

namespace rumor {

namespace {

// A key requirement: tuples of `source` must be partitioned by `attr`.
struct KeyReq {
  StreamId source;
  int attr;
};

// One stateful member's routing demand: either every (source, attr) key
// requirement in `keys` holds simultaneously, or the member is unkeyable and
// all of `pinned` must run on one shard. Sources across both lists form one
// co-location component.
struct Constraint {
  std::vector<KeyReq> keys;
  std::vector<StreamId> pinned;
};

// For per-member-port m-ops the producing member is the output port; in
// channel-output mode all members share port 0 and — by the c-rule merge
// conditions — the same definition, so member 0 stands in for all.
int ProducingMember(const Mop& mop, int port) {
  return mop.num_outputs() == mop.num_members() ? port : 0;
}

// Traces "attribute `attr` of tuples on channel `c`" backward to source
// attributes. Appends one KeyReq per source stream that can originate the
// attribute; returns false when the attribute is computed (not a plain
// column reference somewhere along the chain) or the walk hits an operator
// without positional provenance (µ instances, aggregate columns).
bool TraceAttr(const Plan& plan, ChannelId c, int attr,
               std::vector<KeyReq>* out, int depth) {
  if (depth > plan.num_mops() + 1) return false;  // defensive (plans are DAGs)
  if (attr < 0 || attr >= plan.channel(c).schema().size()) return false;
  std::optional<ChannelEnd> prod = plan.ProducerOf(c);
  if (!prod.has_value()) {
    // Source channel or source-group channel: the requirement lands on every
    // encoded source stream.
    for (StreamId s : plan.channel(c).streams()) {
      if (!plan.streams().Get(s).is_source) return false;
      out->push_back(KeyReq{s, attr});
    }
    return true;
  }
  const Mop& mop = plan.mop(prod->mop);
  switch (mop.type()) {
    case MopType::kSelection:
    case MopType::kChannelSelect:
    case MopType::kPredicateIndex:
      // Filters pass the payload through unchanged.
      return TraceAttr(plan, plan.input_channel(prod->mop, 0), attr, out,
                       depth + 1);
    case MopType::kProjection:
    case MopType::kChannelProject: {
      const SchemaMap& map =
          mop.type() == MopType::kProjection
              ? static_cast<const ProjectionMop&>(mop)
                    .member(ProducingMember(mop, prod->port))
                    .def.map
              : static_cast<const ChannelProjectMop&>(mop).def().map;
      if (attr >= map.size()) return false;
      const ExprPtr& e = map.exprs()[attr];
      if (e == nullptr || e->kind() != ExprKind::kAttr ||
          e->side() != Side::kLeft) {
        return false;  // computed or renamed-from-right column
      }
      return TraceAttr(plan, plan.input_channel(prod->mop, 0),
                       e->attr_index(), out, depth + 1);
    }
    case MopType::kAggregate:
    case MopType::kSharedAggregate:
    case MopType::kFragmentAggregate: {
      // Output row = (group values..., aggregate): the first |group_by|
      // columns are the member's group-by inputs, the rest are computed.
      const auto& agg = static_cast<const AggregateMop&>(mop);
      const AggMemberSpec& spec =
          agg.member(ProducingMember(mop, prod->port)).spec;
      if (attr >= static_cast<int>(spec.group_by.size())) return false;
      return TraceAttr(plan, plan.input_channel(prod->mop, 0),
                       spec.group_by[attr], out, depth + 1);
    }
    case MopType::kJoin:
    case MopType::kSharedJoin:
    case MopType::kPrecisionJoin:
    case MopType::kSequence:
    case MopType::kSharedSequence:
    case MopType::kChannelSequence:
    case MopType::kZip: {
      // Output = concat(left payload, right payload).
      const ChannelId left = plan.input_channel(prod->mop, 0);
      const ChannelId right = plan.input_channel(prod->mop, 1);
      const int left_width = plan.channel(left).schema().size();
      if (attr < left_width) {
        return TraceAttr(plan, left, attr, out, depth + 1);
      }
      return TraceAttr(plan, right, attr - left_width, out, depth + 1);
    }
    case MopType::kIterate:
    case MopType::kSharedIterate:
    case MopType::kChannelIterate:
      // µ instances are rebind-mapped accumulations; no positional
      // provenance.
      return false;
  }
  return false;
}

// All source streams transitively feeding channel `c`.
void SourcesOf(const Plan& plan, ChannelId c, std::vector<StreamId>* out,
               int depth) {
  if (depth > plan.num_mops() + 1) return;
  std::optional<ChannelEnd> prod = plan.ProducerOf(c);
  if (!prod.has_value()) {
    for (StreamId s : plan.channel(c).streams()) {
      if (plan.streams().Get(s).is_source) out->push_back(s);
    }
    return;
  }
  for (ChannelId in : plan.input_channels(prod->mop)) {
    SourcesOf(plan, in, out, depth + 1);
  }
}

Constraint PinAll(const Plan& plan, MopId mop) {
  Constraint c;
  for (ChannelId in : plan.input_channels(mop)) {
    SourcesOf(plan, in, &c.pinned, 0);
  }
  return c;
}

// Key the member on (channel, attr); falls back to pinning the m-op's
// sources when the attribute cannot be traced to source columns.
Constraint KeyOrPin(const Plan& plan, MopId mop,
                    std::initializer_list<std::pair<ChannelId, int>> keys) {
  Constraint c;
  for (const auto& [channel, attr] : keys) {
    if (!TraceAttr(plan, channel, attr, &c.keys, 0)) {
      return PinAll(plan, mop);
    }
  }
  return c;
}

struct UnionFind {
  std::vector<int> parent;
  explicit UnionFind(int n) : parent(n) {
    for (int i = 0; i < n; ++i) parent[i] = i;
  }
  int Find(int x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  }
  void Union(int a, int b) { parent[Find(a)] = Find(b); }
};

}  // namespace

ShardPlan AnalyzeSharding(const Plan& plan, int num_shards) {
  RUMOR_CHECK(num_shards >= 1);
  ShardPlan sp;
  sp.num_shards = num_shards;
  sp.routes.assign(plan.streams().size(), StreamRoute{});

  // Pass 1: one constraint per stateful m-op member.
  std::vector<Constraint> constraints;
  for (MopId id : plan.LiveMops()) {
    const Mop& mop = plan.mop(id);
    switch (mop.type()) {
      case MopType::kSelection:
      case MopType::kChannelSelect:
      case MopType::kPredicateIndex:
      case MopType::kProjection:
      case MopType::kChannelProject:
        break;  // stateless: replicated, no constraint
      case MopType::kAggregate:
      case MopType::kSharedAggregate:
      case MopType::kFragmentAggregate: {
        const auto& agg = static_cast<const AggregateMop&>(mop);
        const ChannelId in = plan.input_channel(id, 0);
        for (int i = 0; i < agg.num_members(); ++i) {
          if (!agg.member_active(i)) continue;
          const AggMemberSpec& spec = agg.member(i).spec;
          constraints.push_back(
              spec.group_by.empty()
                  ? PinAll(plan, id)
                  : KeyOrPin(plan, id, {{in, spec.group_by[0]}}));
        }
        break;
      }
      case MopType::kJoin:
      case MopType::kSharedJoin:
      case MopType::kPrecisionJoin: {
        const auto& join = static_cast<const JoinMop&>(mop);
        const ChannelId left = plan.input_channel(id, 0);
        const ChannelId right = plan.input_channel(id, 1);
        for (int i = 0; i < join.num_members(); ++i) {
          const JoinShape shape = AnalyzeJoin(join.member(i).def.predicate);
          constraints.push_back(
              shape.equi.empty()
                  ? PinAll(plan, id)
                  : KeyOrPin(plan, id,
                             {{left, shape.equi[0].left_attr},
                              {right, shape.equi[0].right_attr}}));
        }
        break;
      }
      case MopType::kSequence:
      case MopType::kSharedSequence:
      case MopType::kChannelSequence: {
        // Consume-on-match only ever consumes instances that *matched*, and
        // matching implies equality on the equi-key — so key-partitioned
        // sequence state is exact, same as joins.
        const auto& seq = static_cast<const SequenceMop&>(mop);
        const ChannelId left = plan.input_channel(id, 0);
        const ChannelId right = plan.input_channel(id, 1);
        for (int i = 0; i < seq.num_members(); ++i) {
          const JoinShape shape = AnalyzeJoin(seq.member(i).def.predicate);
          constraints.push_back(
              shape.equi.empty()
                  ? PinAll(plan, id)
                  : KeyOrPin(plan, id,
                             {{left, shape.equi[0].left_attr},
                              {right, shape.equi[0].right_attr}}));
        }
        break;
      }
      case MopType::kIterate:
      case MopType::kSharedIterate:
      case MopType::kChannelIterate:
        // µ rebind state accumulates across all instances; unkeyable.
        constraints.push_back(PinAll(plan, id));
        break;
      case MopType::kZip:
        // Zip pairs by global arrival rank, which survives partitioning only
        // when both branches provably see position-identical subsequences —
        // pin instead of proving it.
        constraints.push_back(PinAll(plan, id));
        break;
    }
  }

  // Pass 2: co-location components.
  UnionFind uf(plan.streams().size());
  for (const Constraint& c : constraints) {
    StreamId first = kInvalidStream;
    for (const KeyReq& k : c.keys) {
      if (first == kInvalidStream) first = k.source;
      uf.Union(first, k.source);
    }
    for (StreamId s : c.pinned) {
      if (first == kInvalidStream) first = s;
      uf.Union(first, s);
    }
  }

  // Pass 3: per-source key attribute; conflicts or unkeyed members pin the
  // whole component.
  std::vector<int> key_attr(plan.streams().size(), -1);
  std::vector<char> component_pinned(plan.streams().size(), 0);
  for (const Constraint& c : constraints) {
    for (StreamId s : c.pinned) component_pinned[uf.Find(s)] = 1;
    for (const KeyReq& k : c.keys) {
      if (key_attr[k.source] == -1) {
        key_attr[k.source] = k.attr;
      } else if (key_attr[k.source] != k.attr) {
        component_pinned[uf.Find(k.source)] = 1;
      }
    }
  }

  // Pass 4: routes. Pinned components are spread round-robin over shards in
  // component order (deterministic: components are ordered by their
  // smallest source id).
  std::vector<int> component_shard(plan.streams().size(), -1);
  int next_pin = 0;
  for (StreamId s : plan.streams().Sources()) {
    const int root = uf.Find(s);
    if (component_pinned[root]) {
      if (component_shard[root] == -1) {
        component_shard[root] = next_pin++ % num_shards;
        ++sp.pinned_components;
      }
      sp.routes[s] = StreamRoute{RouteMode::kPinned, -1,
                                 component_shard[root]};
      ++sp.pinned_sources;
    } else if (key_attr[s] != -1) {
      sp.routes[s] = StreamRoute{RouteMode::kKey, key_attr[s], 0};
      ++sp.keyed_sources;
    }  // else: default kAny
  }
  return sp;
}

std::string ShardPlan::ToString(const Plan& plan) const {
  std::ostringstream os;
  os << "sharding over " << num_shards << " shard(s): " << keyed_sources
     << " keyed, " << pinned_sources << " pinned (" << pinned_components
     << " component(s))\n";
  for (StreamId s : plan.streams().Sources()) {
    const StreamRoute& r = routes[s];
    os << "  " << plan.streams().Get(s).name << ": ";
    switch (r.mode) {
      case RouteMode::kAny:
        os << "any (round-robin)";
        break;
      case RouteMode::kKey:
        os << "hash(attr " << r.key_attr << ")";
        break;
      case RouteMode::kPinned:
        os << "pinned -> shard " << r.pinned_shard;
        break;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace rumor
