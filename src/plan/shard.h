// Shard analysis: how to split a shared plan's *input streams* across N
// identical plan replicas so that per-shard execution is equivalent to
// single-threaded execution.
//
// Stateless m-ops (σ/sσ/π and their channel forms) are pure per-tuple
// functions — replicating them per shard is always correct, any tuple may go
// to any shard. Stateful m-ops (join/sequence/aggregate windows) constrain
// routing: two tuples that can interact through shared state must land on
// the same shard. AnalyzeSharding derives, per source stream, one of:
//
//  * kAny    — no stateful constraint reaches the stream; tuples are
//              round-robined (deterministically) across shards.
//  * kKey    — every stateful constraint is satisfied by hash-partitioning
//              on one attribute (an aggregate's leading group-by column, a
//              join/sequence equi-key) traced back through the stateless
//              prefix to this source attribute. Tuples with equal key values
//              — the only ones that can interact — hash to the same shard.
//  * kPinned — some constraint is unkeyed (aggregate without GROUP BY, a
//              cross join, µ/zip state) or two constraints demand different
//              keys of the same source. The degenerate form of
//              "replicate-and-filter": the whole co-location component runs
//              on one shard (literally replicating the stateful work on all
//              shards would duplicate both state and outputs). Different
//              pinned components still spread across shards.
//
// Constraints compose through a union-find over sources: all sources
// feeding one stateful m-op member form one co-location component (a join's
// two sides must agree shard-wise per key value, and pinning is only correct
// component-wide), and attribute provenance is traced backward through
// stateless operators — including through keyed joins/aggregates, so an
// aggregate over a join output keyed on the join key stays partitionable.
#ifndef RUMOR_PLAN_SHARD_H_
#define RUMOR_PLAN_SHARD_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/value.h"
#include "plan/plan.h"

namespace rumor {

enum class RouteMode : uint8_t { kAny, kKey, kPinned };

struct StreamRoute {
  RouteMode mode = RouteMode::kAny;
  int key_attr = -1;     // kKey: attribute hashed to pick the shard
  int pinned_shard = 0;  // kPinned: fixed shard of the component
};

// Per-source routing decisions for one (plan, num_shards) pair.
struct ShardPlan {
  int num_shards = 1;
  // Dense by StreamId; entries of non-source streams are defaulted (kAny)
  // and never consulted.
  std::vector<StreamRoute> routes;
  int keyed_sources = 0;
  int pinned_sources = 0;
  int pinned_components = 0;

  std::string ToString(const Plan& plan) const;
};

// Derives the routing table from the plan's stateful m-ops (see file
// comment). Deterministic: the same plan and shard count always produce the
// same table. `num_shards` must be >= 1.
ShardPlan AnalyzeSharding(const Plan& plan, int num_shards);

// Picks the shard of one tuple. `rr` is the caller-owned round-robin cursor
// of this stream (advanced for kAny routes). Value::Hash is consistent with
// operator== across numeric representations, so a join's two sides agree on
// the shard of equal key values even when one side carries ints and the
// other doubles.
inline int ShardOfTuple(const StreamRoute& r, std::span<const Value> values,
                        uint64_t* rr, int num_shards) {
  switch (r.mode) {
    case RouteMode::kKey:
      return static_cast<int>(values[r.key_attr].Hash() %
                              static_cast<uint64_t>(num_shards));
    case RouteMode::kPinned:
      return r.pinned_shard;
    case RouteMode::kAny:
      break;
  }
  return static_cast<int>((*rr)++ % static_cast<uint64_t>(num_shards));
}

}  // namespace rumor

#endif  // RUMOR_PLAN_SHARD_H_
