#include "plan/sharded_executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <thread>

#include "common/failpoint.h"
#include "common/trace.h"
#include "common/tuple.h"
#include "plan/spsc_queue.h"

namespace rumor {

namespace {
// Ordered-mode output blocks are flushed to the merge at this many entries,
// bounding both block latency and the size of a decoded burst.
constexpr size_t kMaxBlockEntries = 256;

#if RUMOR_METRICS_ENABLED
int64_t MonotonicNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
#endif
}  // namespace

// One routed batch travelling control -> worker. Data batches carry a run of
// same-stream tuples flattened into (ts, end-offset, values) arrays — entry
// i's values are values[offsets[i-1] .. offsets[i]) with offsets[-1] = 0.
// Command batches carry a borrowed pointer to the ShardCommand (valid until
// the matching cmds_done increment). Shells are preallocated and recycled
// through the in_free ring, so vectors keep their warmed capacity.
struct ShardedExecutor::InBatch {
  enum class Kind : uint8_t { kData, kCommand };
  Kind kind = Kind::kData;
  uint64_t epoch = 0;
  StreamId stream = kInvalidStream;
  std::vector<Timestamp> ts;
  std::vector<uint32_t> offsets;
  std::vector<Value> values;
  const ShardCommand* cmd = nullptr;

  void Clear() {
    ts.clear();
    offsets.clear();
    values.clear();
    cmd = nullptr;
  }
};

// One run of encoded outputs travelling worker -> control (ordered mode).
// Same flat layout as InBatch, plus a per-entry stream id (one block mixes
// output streams of different widths).
struct ShardedExecutor::OutBlock {
  uint64_t epoch = 0;
  std::vector<StreamId> streams;
  std::vector<Timestamp> ts;
  std::vector<uint32_t> offsets;
  std::vector<Value> values;

  void Clear() {
    streams.clear();
    ts.clear();
    offsets.clear();
    values.clear();
  }
};

struct ShardedExecutor::Shard {
  explicit Shard(const Options& o)
      : in(o.in_ring),
        in_free(o.in_ring),
        out(o.out_ring),
        out_free(o.out_ring) {}

  // Rings. `in`/`out_free` are produced by the control thread; `in_free`/
  // `out` by the worker. The total shell count of each ring pair equals the
  // ring capacity, so a push by whoever holds a shell can never fail.
  SpscQueue<InBatch*> in;
  SpscQueue<InBatch*> in_free;
  SpscQueue<OutBlock*> out;       // ordered mode only
  SpscQueue<OutBlock*> out_free;  // ordered mode only
  std::vector<std::unique_ptr<InBatch>> in_shells;
  std::vector<std::unique_ptr<OutBlock>> out_shells;

  // Worker -> control publications. The release store to `completed` (resp.
  // `cmds_done`, `ready`) is the fence making the plain fields below it
  // visible to a control-thread acquire load.
  alignas(64) std::atomic<uint64_t> completed{0};
  DataPlaneCounters counters;  // published by completed
  int64_t deliveries = 0;      // published by completed
  alignas(64) std::atomic<uint64_t> cmds_done{0};
  Status mutate_status;  // published by cmds_done
  alignas(64) std::atomic<int> ready{0};
  Status ready_status;          // published by ready
  OptimizeStats optimize_stats;  // published by ready

  // Worker-owned; control may read only while the shard is quiesced.
  std::unique_ptr<Plan> plan;
  std::unique_ptr<Executor> executor;

  // Control-thread-only state.
  uint64_t last_sent = 0;            // highest epoch routed to this shard
  InBatch* staging = nullptr;        // batch being filled for this shard
  std::vector<InBatch*> stash;       // local free shells
  std::deque<OutBlock*> pending;     // popped blocks not yet merge-ready
  int64_t in_stall_ns = 0;           // time spent in AcquireShell's slow loop
  uint64_t merge_lag_hwm = 0;        // max epochs completed ahead of merge

  std::thread thread;
};

// Worker-side OutputSink for ordered mode: encodes emissions into OutBlocks
// and ships full blocks to the control thread. Blocking on an empty
// out_free ring is the back-pressure path — the control thread recycles
// shells as it merges, including incrementally mid-epoch, so this wait
// always terminates.
class ShardedExecutor::BlockSink : public OutputSink {
 public:
  BlockSink(SpscQueue<OutBlock*>* out, SpscQueue<OutBlock*>* out_free)
      : out_(out), out_free_(out_free) {}

  void SetEpoch(uint64_t epoch) { epoch_ = epoch; }

  void OnOutput(StreamId stream, const Tuple& tuple) override {
    if (cur_ == nullptr) cur_ = Acquire();
    cur_->streams.push_back(stream);
    cur_->ts.push_back(tuple.ts());
    std::span<const Value> v = tuple.values();
    cur_->values.insert(cur_->values.end(), v.begin(), v.end());
    cur_->offsets.push_back(static_cast<uint32_t>(cur_->values.size()));
    if (cur_->streams.size() >= kMaxBlockEntries) FlushBlock();
  }

  // Ships the partial block (end of epoch).
  void FlushBlock() {
    if (cur_ == nullptr) return;
    if (cur_->streams.empty()) return;  // keep the shell for the next epoch
    cur_->epoch = epoch_;
    RUMOR_CHECK(out_->TryPush(cur_));  // shells == capacity: cannot fail
    cur_ = nullptr;
  }

 private:
  OutBlock* Acquire() {
    OutBlock* b = nullptr;
    while (!out_free_->TryPop(&b)) out_free_->WaitNotEmpty();
    b->Clear();
    return b;
  }

  SpscQueue<OutBlock*>* out_;
  SpscQueue<OutBlock*>* out_free_;
  OutBlock* cur_ = nullptr;
  uint64_t epoch_ = 0;
};

ShardedExecutor::ShardedExecutor(Options options, PlanFactory factory,
                                 OutputSink* sink)
    : options_(options), factory_(std::move(factory)), merge_sink_(sink) {
  RUMOR_CHECK(merge_sink_ != nullptr);
}

ShardedExecutor::ShardedExecutor(Options options, PlanFactory factory,
                                 ShardedSink* lanes)
    : options_(options), factory_(std::move(factory)), lanes_(lanes) {
  RUMOR_CHECK(lanes_ != nullptr);
}

ShardedExecutor::~ShardedExecutor() { Stop(); }

Status ShardedExecutor::Prepare() {
  RUMOR_CHECK(!prepared_) << "Prepare called twice";
  RUMOR_CHECK_GE(options_.num_shards, 1);
  prepared_ = true;

  shards_.reserve(options_.num_shards);
  for (int s = 0; s < options_.num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(options_));
    Shard& sh = *shards_.back();
    for (size_t i = 0; i < sh.in.capacity(); ++i) {
      sh.in_shells.push_back(std::make_unique<InBatch>());
      sh.stash.push_back(sh.in_shells.back().get());
    }
    if (merge_sink_ != nullptr) {
      for (size_t i = 0; i < sh.out.capacity(); ++i) {
        sh.out_shells.push_back(std::make_unique<OutBlock>());
        RUMOR_CHECK(sh.out_free.TryPush(sh.out_shells.back().get()));
      }
    }
  }
  for (int s = 0; s < options_.num_shards; ++s) {
    shards_[s]->thread = std::thread(&ShardedExecutor::WorkerMain, this, s);
  }

  Status result;
  for (const auto& shp : shards_) {
    int r = shp->ready.load(std::memory_order_acquire);
    while (r == 0) {
      shp->ready.wait(r, std::memory_order_acquire);
      r = shp->ready.load(std::memory_order_acquire);
    }
    if (result.ok() && !shp->ready_status.ok()) result = shp->ready_status;
  }
  if (!result.ok()) {
    Stop();
    return result;
  }
  RefreshSharding();
  return Status::OK();
}

void ShardedExecutor::WorkerMain(int s) {
  Shard& sh = *shards_[s];
  sh.plan = std::make_unique<Plan>();
  Status built = factory_(sh.plan.get(), &sh.optimize_stats);

  std::unique_ptr<BlockSink> block_sink;
  OutputSink* sink = nullptr;
  if (lanes_ != nullptr) {
    sink = lanes_->Lane(s);
  } else {
    block_sink = std::make_unique<BlockSink>(&sh.out, &sh.out_free);
    sink = block_sink.get();
  }
  if (built.ok()) {
    sh.executor = std::make_unique<Executor>(sh.plan.get(), sink);
    sh.executor->SetMetricsOptions(options_.metrics);
    sh.executor->Prepare();
  }
  sh.ready_status = built;
  sh.ready.store(1, std::memory_order_release);
  sh.ready.notify_all();
  if (!built.ok()) {
    sh.executor.reset();
    sh.plan.reset();
    return;
  }

  std::vector<Tuple> scratch;
  for (;;) {
    InBatch* b = nullptr;
    if (!sh.in.TryPop(&b)) {
      if (sh.in.closed()) {
        if (!sh.in.TryPop(&b)) break;  // closed and drained
      } else {
        sh.in.WaitNotEmpty();
        continue;
      }
    }
    if (b->kind == InBatch::Kind::kCommand) {
      sh.mutate_status = (*b->cmd)(s, *sh.plan, *sh.executor);
      b->Clear();
      RUMOR_CHECK(sh.in_free.TryPush(b));
      sh.cmds_done.fetch_add(1, std::memory_order_release);
      sh.cmds_done.notify_all();
      continue;
    }

    const uint64_t epoch = b->epoch;
    const StreamId stream = b->stream;
    // Rematerialize this shard's slice of the epoch on the worker's arena.
    scratch.clear();
    uint32_t start = 0;
    for (size_t i = 0; i < b->ts.size(); ++i) {
      const uint32_t end = b->offsets[i];
      scratch.push_back(
          Tuple::Make(b->values.data() + start, end - start, b->ts[i]));
      start = end;
    }
    if (block_sink != nullptr) block_sink->SetEpoch(epoch);
    sh.executor->PushSourceBatch(stream, scratch);
    scratch.clear();  // release the shells' arena tuples on this thread
    if (block_sink != nullptr) block_sink->FlushBlock();
    b->Clear();
    RUMOR_CHECK(sh.in_free.TryPush(b));
    // Publish the epoch: counters/deliveries first, then the release store
    // they ride on.
    sh.counters = DataPlaneCounters::Capture();
    sh.deliveries = sh.executor->deliveries();
    sh.completed.store(epoch, std::memory_order_release);
    sh.completed.notify_all();
  }

  // Replica state (windows, partial matches) holds tuples of this worker's
  // arena — tear it down here, never on the control thread.
  sh.executor.reset();
  sh.plan.reset();
}

ShardedExecutor::InBatch* ShardedExecutor::AcquireShell(Shard& sh) {
  if (!sh.stash.empty()) {
    InBatch* b = sh.stash.back();
    sh.stash.pop_back();
    return b;
  }
  InBatch* b = nullptr;
  // Failpoint: pretend the free ring was momentarily empty, forcing the
  // slow drain/park backpressure path below even when shells are available.
  if (!RUMOR_FAILPOINT("spsc/acquire-stall") && sh.in_free.TryPop(&b)) {
    return b;
  }
#if RUMOR_METRICS_ENABLED
  const int64_t t0 = MonotonicNs();
#endif
  while (!sh.in_free.TryPop(&b)) {
    if (merge_sink_ != nullptr) {
      // The worker may itself be waiting for the ordered merge to recycle
      // out-shells — never park without draining.
      DrainDeliveries();
      std::this_thread::yield();
    } else {
      sh.in_free.WaitNotEmpty();
    }
  }
#if RUMOR_METRICS_ENABLED
  sh.in_stall_ns += MonotonicNs() - t0;
#endif
  return b;
}

void ShardedExecutor::PushSource(StreamId stream, const Tuple& tuple) {
  PushSourceBatch(stream, std::span<const Tuple>(&tuple, 1));
}

void ShardedExecutor::PushSourceBatch(StreamId stream,
                                      std::span<const Tuple> tuples) {
  RUMOR_CHECK(prepared_ && !stopped_);
  RUMOR_CHECK(!delivering_)
      << "re-entrant push from an output handler is not supported when "
         "sharded";
  if (tuples.empty()) return;
  const StreamRoute route =
      static_cast<size_t>(stream) < sharding_.routes.size()
          ? sharding_.routes[stream]
          : StreamRoute{};
  if (static_cast<size_t>(stream) >= rr_.size()) rr_.resize(stream + 1, 0);

  const uint64_t epoch = next_epoch_++;
#if RUMOR_METRICS_ENABLED
  // Stamp every Nth epoch; the ordered merge records the latency when its
  // cursor passes the stamped epoch (lanes mode has no merge to finish, so
  // no stamp).
  if (merge_sink_ != nullptr && options_.metrics.sample_every_n > 0 &&
      --latency_countdown_ <= 0) {
    latency_countdown_ = options_.metrics.sample_every_n;
    pending_latency_.emplace_back(epoch, MonotonicNs());
  }
#endif
  const int n = options_.num_shards;
  for (const Tuple& t : tuples) {
    const int s = ShardOfTuple(route, t.values(), &rr_[stream], n);
    Shard& sh = *shards_[s];
    InBatch* b = sh.staging;
    if (b == nullptr) {
      b = AcquireShell(sh);
      b->Clear();
      b->kind = InBatch::Kind::kData;
      b->epoch = epoch;
      b->stream = stream;
      sh.staging = b;
    }
    b->ts.push_back(t.ts());
    std::span<const Value> v = t.values();
    b->values.insert(b->values.end(), v.begin(), v.end());
    b->offsets.push_back(static_cast<uint32_t>(b->values.size()));
  }
  for (int s = 0; s < n; ++s) {
    Shard& sh = *shards_[s];
    if (sh.staging == nullptr) continue;
    RUMOR_CHECK(sh.in.TryPush(sh.staging));  // holder of a shell never fails
    sh.staging = nullptr;
    sh.last_sent = epoch;
  }
  if (merge_sink_ != nullptr) DrainDeliveries();
}

void ShardedExecutor::DrainDeliveries() {
  while (next_deliver_epoch_ < next_epoch_) {
    const uint64_t e = next_deliver_epoch_;
    Shard& sh = *shards_[deliver_shard_];
    // Observe completion BEFORE popping: `completed` is release-stored after
    // the epoch's last out-push, so seeing it done guarantees the pops below
    // see every block of the epoch.
    const uint64_t completed = sh.completed.load(std::memory_order_acquire);
#if RUMOR_METRICS_ENABLED
    // Merge lag: epochs this shard finished that the ordered merge has not
    // delivered yet (the merge is the bottleneck when this grows).
    if (completed >= next_deliver_epoch_) {
      const uint64_t lag = completed - (next_deliver_epoch_ - 1);
      if (lag > sh.merge_lag_hwm) sh.merge_lag_hwm = lag;
    }
#endif
    const bool done = completed >= std::min(e, sh.last_sent);
    OutBlock* popped = nullptr;
    while (sh.out.TryPop(&popped)) sh.pending.push_back(popped);
    // Deliver everything merge-ready — including blocks of a still-running
    // epoch (incremental delivery keeps recycling shells, so a worker parked
    // on out_free always gets unblocked by this loop).
    while (!sh.pending.empty() && sh.pending.front()->epoch <= e) {
      OutBlock* b = sh.pending.front();
      sh.pending.pop_front();
      DeliverBlock(*b);
      b->Clear();
      RUMOR_CHECK(sh.out_free.TryPush(b));
    }
    if (!done) return;  // cursor shard still mid-epoch; retry later
    if (++deliver_shard_ == options_.num_shards) {
      deliver_shard_ = 0;
      ++next_deliver_epoch_;
#if RUMOR_METRICS_ENABLED
      while (!pending_latency_.empty() &&
             pending_latency_.front().first < next_deliver_epoch_) {
        merge_latency_.Record(MonotonicNs() - pending_latency_.front().second);
        pending_latency_.pop_front();
      }
#endif
    }
  }
}

void ShardedExecutor::DeliverBlock(const OutBlock& block) {
  delivering_ = true;
  uint32_t start = 0;
  for (size_t i = 0; i < block.streams.size(); ++i) {
    const uint32_t end = block.offsets[i];
    // Decoded on the control thread's arena; released before the next row.
    const Tuple t =
        Tuple::Make(block.values.data() + start, end - start, block.ts[i]);
    merge_sink_->OnOutput(block.streams[i], t);
    start = end;
  }
  delivering_ = false;
}

void ShardedExecutor::Flush() {
  if (!prepared_ || stopped_ || shards_.empty()) return;
  RUMOR_TRACE_SPAN("ShardedExecutor::Flush");
  if (merge_sink_ != nullptr) {
    int idle_passes = 0;
    while (next_deliver_epoch_ < next_epoch_) {
      const uint64_t before = next_deliver_epoch_;
      const int shard_before = deliver_shard_;
      DrainDeliveries();
      if (next_deliver_epoch_ != before || deliver_shard_ != shard_before) {
        idle_passes = 0;
        continue;
      }
      // No cursor progress: the cursor shard is computing. Yield first (on
      // an oversubscribed machine that *is* how the worker runs), then back
      // off to a micro-sleep. A hard wait on `completed` would deadlock when
      // the worker is itself parked on out_free.
      if (++idle_passes < 64) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
  } else {
    for (const auto& shp : shards_) {
      uint64_t c = shp->completed.load(std::memory_order_acquire);
      while (c < shp->last_sent) {
        shp->completed.wait(c, std::memory_order_acquire);
        c = shp->completed.load(std::memory_order_acquire);
      }
    }
  }
}

Status ShardedExecutor::MutateShards(const ShardCommand& fn) {
  RUMOR_TRACE_SPAN("ShardedExecutor::MutateShards");
  RUMOR_CHECK(prepared_ && !stopped_);
  RUMOR_CHECK(!delivering_) << "cannot mutate the plan from an output handler";
  Flush();
  const int n = options_.num_shards;
  std::vector<uint64_t> target(n);
  for (int s = 0; s < n; ++s) {
    Shard& sh = *shards_[s];
    target[s] = sh.cmds_done.load(std::memory_order_relaxed) + 1;
    InBatch* b = AcquireShell(sh);
    b->Clear();
    b->kind = InBatch::Kind::kCommand;
    b->cmd = &fn;
    RUMOR_CHECK(sh.in.TryPush(b));
  }
  Status result;
  for (int s = 0; s < n; ++s) {
    Shard& sh = *shards_[s];
    uint64_t c = sh.cmds_done.load(std::memory_order_acquire);
    while (c < target[s]) {
      sh.cmds_done.wait(c, std::memory_order_acquire);
      c = sh.cmds_done.load(std::memory_order_acquire);
    }
    if (result.ok() && !sh.mutate_status.ok()) result = sh.mutate_status;
  }
  // The mutation may have added/removed streams and stateful operators.
  RefreshSharding();
  return result;
}

void ShardedExecutor::Stop() {
  if (stopped_) return;
  if (!shards_.empty()) Flush();
  stopped_ = true;
  for (const auto& shp : shards_) shp->in.Close();
  for (const auto& shp : shards_) {
    if (shp->thread.joinable()) shp->thread.join();
  }
}

void ShardedExecutor::RefreshSharding() {
  sharding_ = AnalyzeSharding(*shards_[0]->plan, options_.num_shards);
  rr_.assign(sharding_.routes.size(), 0);
}

const Plan& ShardedExecutor::plan(int shard) const {
  return *shards_[shard]->plan;
}

int64_t ShardedExecutor::deliveries(int shard) const {
  return shards_[shard]->deliveries;
}

DataPlaneCounters ShardedExecutor::counters(int shard) const {
  return shards_[shard]->counters;
}

const OptimizeStats& ShardedExecutor::optimize_stats() const {
  return shards_[0]->optimize_stats;
}

std::vector<EngineMetrics::ShardRow> ShardedExecutor::ShardRows() {
  Flush();
  std::vector<EngineMetrics::ShardRow> rows;
  rows.reserve(shards_.size());
  for (int s = 0; s < options_.num_shards; ++s) {
    Shard& sh = *shards_[s];
    EngineMetrics::ShardRow row{s, sh.deliveries, sh.counters};
    row.in_depth_hwm = sh.in.depth_hwm();
    row.out_depth_hwm = sh.out.depth_hwm();
    row.push_stall_ns = sh.in_stall_ns;
    row.worker_stall_ns = sh.out_free.consumer_wait_ns();
    row.merge_lag_hwm = sh.merge_lag_hwm;
    rows.push_back(row);
  }
  return rows;
}

}  // namespace rumor
