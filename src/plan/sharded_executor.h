// ShardedExecutor — partition-parallel execution of the shared plan.
//
// N worker threads each own one *identical replica* of the plan (compiled
// deterministically by a PlanFactory, so m-op/channel/stream ids line up
// across replicas) plus their own Executor, EvalScratch and TupleArena. The
// control thread routes source tuples to shards per the ShardPlan derived
// by AnalyzeSharding (plan/shard.h): stateless prefixes are replicated,
// stateful operator state is partitioned by key hash, unkeyable components
// are pinned to one shard. Tuples never cross threads — batches travel as
// flat trivially-copyable Value arrays over bounded SPSC rings
// (plan/spsc_queue.h) and are rematerialized on the receiving thread's
// arena.
//
// Two output modes:
//
//  * ordered (OutputSink ctor) — workers encode outputs into flat blocks;
//    the control thread decodes and merges them into the caller's ordinary
//    single-threaded sink in a deterministic order: epoch-major (an epoch is
//    one PushSource/PushSourceBatch call), shard-minor, per-shard emission
//    order. For tuples on a key-partitioned route this reproduces the exact
//    single-threaded per-key output order; the interleaving across shards
//    within one epoch is the one documented relaxation. No mutex anywhere on
//    the hot path.
//  * lanes (ShardedSink ctor) — shard s delivers straight into
//    lanes->Lane(s) on its worker thread (benchmarks: per-shard counting
//    with a final merge, zero cross-thread tuple traffic).
//
// Backpressure: every queue is bounded. A full in-ring makes the control
// thread drain pending deliveries (ordered mode) or park on the ring (lanes
// mode) until the worker catches up; a worker that outruns the merge parks
// on the out-shell ring until the control thread recycles shells. The
// ordered merge delivers a shard's blocks *incrementally* while that shard
// is still mid-epoch, so a worker can never deadlock against the in-order
// merge cursor.
//
// Query churn on a running sharded engine uses MutateShards: the executor
// quiesces (Flush), sends one command through each in-ring, and the command
// runs ON the worker thread — so every plan mutation that allocates or
// releases tuples (incremental merge backfill, pruning) happens on the
// thread owning the arena those tuples live in. Commands must not emit
// outputs.
#ifndef RUMOR_PLAN_SHARDED_EXECUTOR_H_
#define RUMOR_PLAN_SHARDED_EXECUTOR_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "plan/engine_metrics.h"
#include "plan/executor.h"
#include "plan/shard.h"

namespace rumor {

// Compiles one plan replica. Must be deterministic — every invocation (they
// run concurrently, one per worker) must produce structurally identical
// plans with identical ids — and must not touch shared mutable state.
using PlanFactory = std::function<Status(Plan* plan, OptimizeStats* stats)>;

// Per-shard output sinks for lanes mode. Lane(s) is only ever called from
// shard s's worker thread; implementations need no locking as long as lanes
// don't share mutable state (keep them cache-line separated).
class ShardedSink {
 public:
  virtual ~ShardedSink() = default;
  virtual OutputSink* Lane(int shard) = 0;
};

// Shard-aware CountingSink: one counter lane per worker, summed on demand.
// All lanes are pre-sized at construction (`reserve_streams`) because
// CountingSink::Grow while a worker runs would race with the reader —
// growing lanes mid-flight is only safe from the owning worker itself.
class ShardedCountingSink : public ShardedSink {
 public:
  explicit ShardedCountingSink(int num_shards, StreamId reserve_streams = 0)
      : cells_(num_shards) {
    for (Cell& c : cells_) c.sink.Reserve(reserve_streams);
  }
  OutputSink* Lane(int shard) override { return &cells_[shard].sink; }

  // Merged views; callers must quiesce (ShardedExecutor::Flush) first.
  int64_t total() const {
    int64_t t = 0;
    for (const Cell& c : cells_) t += c.sink.total();
    return t;
  }
  int64_t ForStream(StreamId s) const {
    int64_t t = 0;
    for (const Cell& c : cells_) t += c.sink.ForStream(s);
    return t;
  }

 private:
  struct alignas(64) Cell {
    CountingSink sink;
  };
  std::vector<Cell> cells_;
};

// Shard-aware CollectingSink. Lanes store flat value rows, NOT Tuples: a
// collected Tuple would pin the worker's arena payload and then be released
// on whatever thread reads the collection — flat rows are plain data and
// thread-agnostic.
class ShardedCollectingSink : public ShardedSink {
 public:
  struct Row {
    StreamId stream = kInvalidStream;
    Timestamp ts = 0;
    std::vector<Value> values;
  };

  explicit ShardedCollectingSink(int num_shards) : cells_(num_shards) {}
  OutputSink* Lane(int shard) override { return &cells_[shard].sink; }

  // Rows of one stream, lanes concatenated in shard order; quiesce first.
  std::vector<Row> RowsForStream(StreamId s) const {
    std::vector<Row> out;
    for (const Cell& c : cells_) {
      for (const Row& r : c.sink.rows) {
        if (r.stream == s) out.push_back(r);
      }
    }
    return out;
  }
  int64_t total() const {
    int64_t t = 0;
    for (const Cell& c : cells_) t += static_cast<int64_t>(c.sink.rows.size());
    return t;
  }

 private:
  struct LaneSink : OutputSink {
    std::vector<Row> rows;
    void OnOutput(StreamId stream, const Tuple& tuple) override {
      std::span<const Value> v = tuple.values();
      rows.push_back(Row{stream, tuple.ts(),
                         std::vector<Value>(v.begin(), v.end())});
    }
  };
  struct alignas(64) Cell {
    LaneSink sink;
  };
  std::vector<Cell> cells_;
};

class ShardedExecutor {
 public:
  struct Options {
    int num_shards = 2;
    // Ring depths (rounded up to powers of two). in_ring bounds how many
    // epochs may be in flight per shard before the pusher blocks; out_ring
    // bounds encoded output blocks awaiting the ordered merge.
    size_t in_ring = 8;
    size_t out_ring = 16;
    MetricsOptions metrics;
  };

  // Runs on a worker thread against that worker's plan replica; see
  // MutateShards.
  using ShardCommand =
      std::function<Status(int shard, Plan& plan, Executor& executor)>;

  // Ordered mode: all shard outputs merge into `sink` on the pushing thread.
  ShardedExecutor(Options options, PlanFactory factory, OutputSink* sink);
  // Lanes mode: shard s delivers to lanes->Lane(s) on its worker thread.
  ShardedExecutor(Options options, PlanFactory factory, ShardedSink* lanes);
  ~ShardedExecutor();
  ShardedExecutor(const ShardedExecutor&) = delete;
  ShardedExecutor& operator=(const ShardedExecutor&) = delete;

  // Spawns the workers; each builds its replica (factory) and its Executor
  // in parallel. Returns the first replica's compile error, if any. Call
  // once before pushing.
  Status Prepare();

  // Routes one epoch of tuples to the shards. Same contract as
  // Executor::PushSource/PushSourceBatch (single pushing thread, timestamps
  // non-decreasing). Ordered mode additionally delivers any merge-ready
  // outputs to the sink before returning. Must not be called re-entrantly
  // from an output handler.
  void PushSource(StreamId stream, const Tuple& tuple);
  void PushSourceBatch(StreamId stream, std::span<const Tuple> tuples);

  // Blocks until every pushed epoch is fully processed (and, in ordered
  // mode, every output delivered to the sink). After Flush the workers are
  // quiescent: plan(s), deliveries(s) and counters(s) are safe to read.
  void Flush();

  // Quiesce-merge-resume: flushes, then runs `fn` once per shard ON that
  // shard's worker thread (concurrently across shards; fn must be safe to
  // run N times against distinct replicas and must not emit outputs).
  // Returns the first non-OK status. Re-derives the routing table from the
  // mutated plan before resuming.
  Status MutateShards(const ShardCommand& fn);

  // Flushes, closes the rings and joins the workers (idempotent; the dtor
  // calls it). Workers destroy their executor and plan replica on their own
  // thread — replica state holds tuples of the worker's arena.
  void Stop();

  // True while the ordered merge is inside the caller's sink (plan
  // mutations and re-entrant pushes are illegal in this window).
  bool busy() const { return delivering_; }

  int num_shards() const { return options_.num_shards; }
  const ShardPlan& sharding() const { return sharding_; }

  // Quiesced access (after Flush / Prepare / MutateShards) — shard s's plan
  // replica and its last published execution counters.
  const Plan& plan(int shard = 0) const;
  int64_t deliveries(int shard) const;
  DataPlaneCounters counters(int shard) const;
  const OptimizeStats& optimize_stats() const;

  // Per-shard metric rows (flushes first).
  std::vector<EngineMetrics::ShardRow> ShardRows();

  // Sampled end-to-end latency of ordered-mode epochs: PushSource[Batch]
  // call to the ordered merge finishing that epoch's delivery. Empty in
  // lanes mode and under -DRUMOR_METRICS=OFF.
  const LatencyHistogram& merge_latency() const { return merge_latency_; }

 private:
  struct InBatch;
  struct OutBlock;
  struct Shard;
  class BlockSink;

  void WorkerMain(int s);
  InBatch* AcquireShell(Shard& sh);
  // Advances the ordered-merge cursor as far as currently possible without
  // blocking; delivers and recycles ready blocks.
  void DrainDeliveries();
  void DeliverBlock(const OutBlock& block);
  void RefreshSharding();

  Options options_;
  PlanFactory factory_;
  OutputSink* merge_sink_ = nullptr;  // ordered mode
  ShardedSink* lanes_ = nullptr;      // lanes mode
  std::vector<std::unique_ptr<Shard>> shards_;

  ShardPlan sharding_;
  std::vector<uint64_t> rr_;  // per-stream round-robin cursors (kAny routes)

  // Epochs start at 1 so "completed == 0" means "nothing yet".
  uint64_t next_epoch_ = 1;
  // Ordered-merge delivery cursor: the first not-yet-fully-delivered epoch
  // and the shard within it whose outputs are next in merge order.
  uint64_t next_deliver_epoch_ = 1;
  int deliver_shard_ = 0;

  bool prepared_ = false;
  bool stopped_ = false;
  bool delivering_ = false;

  // Ordered-mode latency sampling (control-thread-only): epochs stamped at
  // push time, recorded when the merge cursor passes them.
  LatencyHistogram merge_latency_;
  std::deque<std::pair<uint64_t, int64_t>> pending_latency_;  // (epoch, t0)
  int latency_countdown_ = 1;  // sample the first epoch, then every Nth
};

}  // namespace rumor

#endif  // RUMOR_PLAN_SHARDED_EXECUTOR_H_
