// SpscQueue<T>: a bounded single-producer/single-consumer ring carrying
// batches between the ingress router (control thread) and a shard worker.
//
// TryPush/TryPop are lock-free: one relaxed load of the own index, one
// acquire load of the other side's index only when the cached copy says the
// ring might be full/empty, one release store to publish. The release store
// on push / acquire load on pop is also the memory fence the sharded
// executor relies on to hand plain (non-atomic) data — batch shells, plan
// mutations, counter snapshots — across the thread boundary.
//
// WaitNotEmpty/WaitNotFull park the calling thread on the counterpart index
// via C++20 atomic wait/notify (futex, not a spin) — mandatory on machines
// with fewer cores than threads, where spinning would starve the thread
// being waited on.
//
// Close() may be called by the *producer only*; it sets a flag bit on the
// tail counter so parked consumers observe a value change and wake. The
// consumer drains remaining items normally after close.
#ifndef RUMOR_PLAN_SPSC_QUEUE_H_
#define RUMOR_PLAN_SPSC_QUEUE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"

namespace rumor {

template <typename T>
class SpscQueue {
 public:
  // Capacity is rounded up to a power of two; the ring holds up to that many
  // items.
  explicit SpscQueue(size_t min_capacity) {
    size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }
  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  size_t capacity() const { return mask_ + 1; }

  // Producer. Returns false when the ring is full (item not consumed).
  bool TryPush(T v) {
    const uint64_t t = tail_.v.load(std::memory_order_relaxed);
    const uint64_t ti = t & kIndexMask;
    if (ti - head_cache_ > mask_) {  // full relative to the cached head
      head_cache_ = head_.v.load(std::memory_order_acquire);
      if (ti - head_cache_ > mask_) return false;
    }
    slots_[ti & mask_] = std::move(v);
#if RUMOR_METRICS_ENABLED
    // Depth relative to the cached head — an upper bound on the true depth
    // (the cache only lags), never above capacity.
    const uint64_t depth = ti - head_cache_ + 1;
    if (depth > depth_hwm_.load(std::memory_order_relaxed)) {
      depth_hwm_.store(depth, std::memory_order_relaxed);
    }
#endif
    tail_.v.store(t + 1, std::memory_order_release);
    tail_.v.notify_one();
    return true;
  }

  // Consumer. Returns false when the ring is empty.
  bool TryPop(T* out) {
    const uint64_t h = head_.v.load(std::memory_order_relaxed);
    if (h == tail_cache_) {
      tail_cache_ = tail_.v.load(std::memory_order_acquire) & kIndexMask;
      if (h == tail_cache_) return false;
    }
    *out = std::move(slots_[h & mask_]);
    head_.v.store(h + 1, std::memory_order_release);
    head_.v.notify_one();
    return true;
  }

  // Consumer: parks until an item is pushed or the queue is closed. May
  // return spuriously; callers loop on TryPop.
  void WaitNotEmpty() {
    const uint64_t t = tail_.v.load(std::memory_order_acquire);
    if ((t & kClosedBit) != 0) return;
    if ((t & kIndexMask) != head_.v.load(std::memory_order_relaxed)) return;
#if RUMOR_METRICS_ENABLED
    const auto t0 = std::chrono::steady_clock::now();
    tail_.v.wait(t, std::memory_order_acquire);
    consumer_wait_ns_.fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count(),
        std::memory_order_relaxed);
#else
    tail_.v.wait(t, std::memory_order_acquire);
#endif
  }

  // Producer: parks until the consumer pops. May return spuriously; callers
  // loop on TryPush.
  void WaitNotFull() {
    const uint64_t h = head_.v.load(std::memory_order_acquire);
    const uint64_t ti = tail_.v.load(std::memory_order_relaxed) & kIndexMask;
    if (ti - h <= mask_) return;
#if RUMOR_METRICS_ENABLED
    const auto t0 = std::chrono::steady_clock::now();
    head_.v.wait(h, std::memory_order_acquire);
    producer_wait_ns_.fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count(),
        std::memory_order_relaxed);
#else
    head_.v.wait(h, std::memory_order_acquire);
#endif
  }

  // Producer only: marks the queue closed and wakes a parked consumer. Items
  // already in the ring stay poppable.
  void Close() {
    tail_.v.fetch_or(kClosedBit, std::memory_order_release);
    tail_.v.notify_all();
  }
  bool closed() const {
    return (tail_.v.load(std::memory_order_acquire) & kClosedBit) != 0;
  }

  // Racy size estimate (diagnostics only).
  size_t SizeApprox() const {
    const uint64_t t = tail_.v.load(std::memory_order_acquire) & kIndexMask;
    const uint64_t h = head_.v.load(std::memory_order_acquire);
    return static_cast<size_t>(t - h);
  }

  // --- backpressure gauges (zero under -DRUMOR_METRICS=OFF) -----------------
  // Highest occupancy ever observed at push time; relaxed atomics so either
  // thread may read without racing the owner's updates.
  uint64_t depth_hwm() const {
    return depth_hwm_.load(std::memory_order_relaxed);
  }
  // Total ns the producer spent parked in WaitNotFull.
  int64_t producer_wait_ns() const {
    return producer_wait_ns_.load(std::memory_order_relaxed);
  }
  // Total ns the consumer spent parked in WaitNotEmpty.
  int64_t consumer_wait_ns() const {
    return consumer_wait_ns_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr uint64_t kClosedBit = uint64_t{1} << 63;
  static constexpr uint64_t kIndexMask = kClosedBit - 1;

  // Counters monotonically increase (indices are taken modulo the ring
  // size); each lives on its own cache line together with the opposite
  // side's cached copy, so steady-state push/pop never false-share.
  struct alignas(64) ProducerSide {
    std::atomic<uint64_t> v{0};
  };
  struct alignas(64) ConsumerSide {
    std::atomic<uint64_t> v{0};
  };

  std::vector<T> slots_;
  size_t mask_ = 0;
  ProducerSide tail_;            // next slot to write (+ closed flag bit)
  uint64_t head_cache_ = 0;      // producer's cached head index (same line)
  ConsumerSide head_;            // next slot to read
  uint64_t tail_cache_ = 0;      // consumer's cached tail index (same line)
  std::atomic<uint64_t> depth_hwm_{0};
  std::atomic<int64_t> producer_wait_ns_{0};
  std::atomic<int64_t> consumer_wait_ns_{0};
};

}  // namespace rumor

#endif  // RUMOR_PLAN_SPSC_QUEUE_H_
