#include "plan/state_snapshot.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <utility>

#include "common/snapshot_io.h"
#include "common/str_util.h"
#include "plan/fingerprint.h"

namespace rumor {

namespace {

// --- MopState wire encoding ---------------------------------------------------

void WriteBitVector(SnapshotWriter& w, const BitVector& bv) {
  w.U32(static_cast<uint32_t>(bv.size()));
  w.U32(static_cast<uint32_t>(bv.Count()));
  bv.ForEach([&](int i) { w.U32(static_cast<uint32_t>(i)); });
}

Status ReadBitVector(SnapshotReader& r, BitVector* out) {
  uint32_t size = 0, count = 0;
  RUMOR_RETURN_IF_ERROR(r.U32(&size));
  RUMOR_RETURN_IF_ERROR(r.U32(&count));
  if (count > size) {
    return Status::InvalidArgument("bit vector has more set bits than bits");
  }
  BitVector bv(static_cast<int>(size));
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t index = 0;
    RUMOR_RETURN_IF_ERROR(r.U32(&index));
    if (index >= size) {
      return Status::InvalidArgument("bit vector index out of range");
    }
    bv.Set(static_cast<int>(index));
  }
  *out = std::move(bv);
  return Status::OK();
}

void WriteStateTuple(SnapshotWriter& w, const StateTuple& t) {
  w.I64(t.ts);
  w.U32(static_cast<uint32_t>(t.values.size()));
  for (const Value& v : t.values) w.WriteValue(v);
}

Status ReadStateTuple(SnapshotReader& r, StateTuple* out) {
  RUMOR_RETURN_IF_ERROR(r.I64(&out->ts));
  uint32_t n = 0;
  RUMOR_RETURN_IF_ERROR(r.U32(&n));
  out->values.clear();
  for (uint32_t i = 0; i < n; ++i) {
    Value v;
    RUMOR_RETURN_IF_ERROR(r.ReadValue(&v));
    out->values.push_back(std::move(v));
  }
  return Status::OK();
}

void WriteBufferState(SnapshotWriter& w, const BufferState& b) {
  w.U32(static_cast<uint32_t>(b.slots.size()));
  for (const BufferSlotState& s : b.slots) {
    w.I64(s.ts);
    w.WriteValue(s.key);
    WriteStateTuple(w, s.tuple);
    WriteBitVector(w, s.membership);
  }
}

Status ReadBufferState(SnapshotReader& r, BufferState* out) {
  uint32_t n = 0;
  RUMOR_RETURN_IF_ERROR(r.U32(&n));
  out->slots.clear();
  for (uint32_t i = 0; i < n; ++i) {
    BufferSlotState s;
    RUMOR_RETURN_IF_ERROR(r.I64(&s.ts));
    RUMOR_RETURN_IF_ERROR(r.ReadValue(&s.key));
    RUMOR_RETURN_IF_ERROR(ReadStateTuple(r, &s.tuple));
    RUMOR_RETURN_IF_ERROR(ReadBitVector(r, &s.membership));
    out->slots.push_back(std::move(s));
  }
  return Status::OK();
}

void WriteEngineState(SnapshotWriter& w, const AggEngineState& e) {
  w.U32(static_cast<uint32_t>(e.slots.size()));
  for (int s : e.slots) w.U32(static_cast<uint32_t>(s));
  w.U32(static_cast<uint32_t>(e.entries.size()));
  for (const AggLogEntry& entry : e.entries) {
    w.I64(entry.ts);
    w.WriteValue(entry.value);
    WriteStateTuple(w, entry.tuple);
    WriteBitVector(w, entry.membership);
  }
  w.U32(static_cast<uint32_t>(e.members.size()));
  for (const AggMemberState& m : e.members) {
    w.I64(m.cursor);
    w.U32(static_cast<uint32_t>(m.groups.size()));
    for (const AggGroupState& g : m.groups) {
      w.U32(static_cast<uint32_t>(g.key.size()));
      for (const Value& v : g.key) w.WriteValue(v);
      w.I64(g.count);
      w.I64(g.isum);
      w.I64(g.double_count);
      w.F64(g.dsum);
    }
  }
}

Status ReadEngineState(SnapshotReader& r, AggEngineState* out) {
  uint32_t n = 0;
  RUMOR_RETURN_IF_ERROR(r.U32(&n));
  out->slots.clear();
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t slot = 0;
    RUMOR_RETURN_IF_ERROR(r.U32(&slot));
    out->slots.push_back(static_cast<int>(slot));
  }
  RUMOR_RETURN_IF_ERROR(r.U32(&n));
  out->entries.clear();
  for (uint32_t i = 0; i < n; ++i) {
    AggLogEntry entry;
    RUMOR_RETURN_IF_ERROR(r.I64(&entry.ts));
    RUMOR_RETURN_IF_ERROR(r.ReadValue(&entry.value));
    RUMOR_RETURN_IF_ERROR(ReadStateTuple(r, &entry.tuple));
    RUMOR_RETURN_IF_ERROR(ReadBitVector(r, &entry.membership));
    out->entries.push_back(std::move(entry));
  }
  RUMOR_RETURN_IF_ERROR(r.U32(&n));
  out->members.clear();
  for (uint32_t i = 0; i < n; ++i) {
    AggMemberState m;
    RUMOR_RETURN_IF_ERROR(r.I64(&m.cursor));
    uint32_t groups = 0;
    RUMOR_RETURN_IF_ERROR(r.U32(&groups));
    for (uint32_t g = 0; g < groups; ++g) {
      AggGroupState group;
      uint32_t key_size = 0;
      RUMOR_RETURN_IF_ERROR(r.U32(&key_size));
      for (uint32_t k = 0; k < key_size; ++k) {
        Value v;
        RUMOR_RETURN_IF_ERROR(r.ReadValue(&v));
        group.key.push_back(std::move(v));
      }
      RUMOR_RETURN_IF_ERROR(r.I64(&group.count));
      RUMOR_RETURN_IF_ERROR(r.I64(&group.isum));
      RUMOR_RETURN_IF_ERROR(r.I64(&group.double_count));
      RUMOR_RETURN_IF_ERROR(r.F64(&group.dsum));
      m.groups.push_back(std::move(group));
    }
    out->members.push_back(std::move(m));
  }
  return Status::OK();
}

void WriteMopState(SnapshotWriter& w, const MopState& ms) {
  w.U8(static_cast<uint8_t>(ms.kind));
  w.U32(static_cast<uint32_t>(ms.member_fps.size()));
  for (uint64_t fp : ms.member_fps) w.U64(fp);
  for (char a : ms.member_active) w.U8(static_cast<uint8_t>(a));
  w.U8(ms.shared_state ? 1 : 0);
  w.U8(ms.member_filtered ? 1 : 0);
  w.U32(static_cast<uint32_t>(ms.engines.size()));
  for (const AggEngineState& e : ms.engines) WriteEngineState(w, e);
  w.U32(static_cast<uint32_t>(ms.left.size()));
  for (const BufferState& b : ms.left) WriteBufferState(w, b);
  w.U32(static_cast<uint32_t>(ms.right.size()));
  for (const BufferState& b : ms.right) WriteBufferState(w, b);
  w.U32(static_cast<uint32_t>(ms.stores.size()));
  for (const BufferState& b : ms.stores) WriteBufferState(w, b);
}

Status ReadMopState(SnapshotReader& r, MopState* out) {
  uint8_t kind = 0;
  RUMOR_RETURN_IF_ERROR(r.U8(&kind));
  if (kind < 1 || kind > 4) {
    return Status::InvalidArgument(
        StrCat("unknown m-op state kind ", static_cast<int>(kind)));
  }
  out->kind = static_cast<MopState::Kind>(kind);
  uint32_t members = 0;
  RUMOR_RETURN_IF_ERROR(r.U32(&members));
  out->member_fps.clear();
  out->member_active.clear();
  for (uint32_t i = 0; i < members; ++i) {
    uint64_t fp = 0;
    RUMOR_RETURN_IF_ERROR(r.U64(&fp));
    out->member_fps.push_back(fp);
  }
  for (uint32_t i = 0; i < members; ++i) {
    uint8_t a = 0;
    RUMOR_RETURN_IF_ERROR(r.U8(&a));
    out->member_active.push_back(static_cast<char>(a));
  }
  uint8_t flag = 0;
  RUMOR_RETURN_IF_ERROR(r.U8(&flag));
  out->shared_state = flag != 0;
  RUMOR_RETURN_IF_ERROR(r.U8(&flag));
  out->member_filtered = flag != 0;
  uint32_t n = 0;
  RUMOR_RETURN_IF_ERROR(r.U32(&n));
  out->engines.clear();
  for (uint32_t i = 0; i < n; ++i) {
    AggEngineState e;
    RUMOR_RETURN_IF_ERROR(ReadEngineState(r, &e));
    out->engines.push_back(std::move(e));
  }
  for (auto* buffers : {&out->left, &out->right, &out->stores}) {
    RUMOR_RETURN_IF_ERROR(r.U32(&n));
    buffers->clear();
    for (uint32_t i = 0; i < n; ++i) {
      BufferState b;
      RUMOR_RETURN_IF_ERROR(ReadBufferState(r, &b));
      buffers->push_back(std::move(b));
    }
  }
  return Status::OK();
}

// --- shard merging ------------------------------------------------------------

// Timestamp-merge of per-shard slot lists. Each input is already sorted;
// stable sort of the concatenation keeps lower shards first on equal
// timestamps and preserves in-shard order — the deterministic merge order
// restore depends on.
std::vector<BufferSlotState> MergeSlots(
    std::vector<std::vector<BufferSlotState>> per_shard) {
  std::vector<BufferSlotState> all;
  for (auto& shard : per_shard) {
    for (auto& slot : shard) all.push_back(std::move(slot));
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const BufferSlotState& a, const BufferSlotState& b) {
                     return a.ts < b.ts;
                   });
  return all;
}

Status MergeEngines(std::vector<const AggEngineState*> shards,
                    AggEngineState* out) {
  const AggEngineState& first = *shards[0];
  for (const AggEngineState* e : shards) {
    if (e->slots != first.slots ||
        e->members.size() != first.members.size()) {
      return Status::InvalidArgument(
          "shard state images disagree on aggregate engine layout");
    }
  }
  out->slots = first.slots;
  // Entries: concatenate in shard order, stable-sort by timestamp.
  for (const AggEngineState* e : shards) {
    for (const AggLogEntry& entry : e->entries) {
      out->entries.push_back(entry);
    }
  }
  std::stable_sort(out->entries.begin(), out->entries.end(),
                   [](const AggLogEntry& a, const AggLogEntry& b) {
                     return a.ts < b.ts;
                   });
  // Members: union the group tables. Shards partition state by key, so a
  // key normally lives on exactly one shard; accumulators are summed if one
  // ever appears on several (sums and counts are additive).
  out->members.resize(first.members.size());
  for (size_t m = 0; m < first.members.size(); ++m) {
    AggMemberState& merged = out->members[m];
    merged.cursor = 0;  // re-derived from membership bits at load time
    for (const AggEngineState* e : shards) {
      for (const AggGroupState& g : e->members[m].groups) {
        AggGroupState* found = nullptr;
        for (AggGroupState& have : merged.groups) {
          if (have.key == g.key) {
            found = &have;
            break;
          }
        }
        if (found == nullptr) {
          merged.groups.push_back(g);
        } else {
          found->count += g.count;
          found->isum += g.isum;
          found->double_count += g.double_count;
          found->dsum += g.dsum;
        }
      }
    }
  }
  return Status::OK();
}

// Which restored members draw from which saved (record, slot): equal
// fingerprints queue up in occurrence order; a queue that runs dry re-uses
// its first match (equal fingerprints imply identical state, so a CSE'd
// restored member and a duplicated saved member are both fine).
struct FpSources {
  std::deque<std::pair<int, int>> pending;  // (record index, member slot)
  std::pair<int, int> first{-1, -1};
  bool consumed = false;
};

}  // namespace

Result<std::string> SavePlanState(const Plan& plan) {
  Result<PlanFingerprints> fps_or = ComputeMemberFingerprints(plan);
  if (!fps_or.ok()) return fps_or.status();
  const PlanFingerprints& fps = fps_or.value();
  std::vector<MopState> records;
  for (MopId id : plan.LiveMops()) {
    MopState ms;
    if (!plan.mop(id).SaveState(&ms)) continue;
    ms.member_fps = fps.members[id];
    if (ms.member_fps.size() != ms.member_active.size()) {
      return Status::Internal(
          StrCat("m-op ", plan.mop(id).name(),
                 " saved a member count that disagrees with the plan"));
    }
    records.push_back(std::move(ms));
  }
  SnapshotWriter w;
  w.U32(static_cast<uint32_t>(records.size()));
  for (const MopState& ms : records) WriteMopState(w, ms);
  return w.Take();
}

Status ParsePlanState(std::string_view payload, std::vector<MopState>* out) {
  SnapshotReader r(payload);
  uint32_t count = 0;
  RUMOR_RETURN_IF_ERROR(r.U32(&count));
  std::vector<MopState> records;
  for (uint32_t i = 0; i < count; ++i) {
    MopState ms;
    RUMOR_RETURN_IF_ERROR(ReadMopState(r, &ms));
    records.push_back(std::move(ms));
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after m-op state records");
  }
  *out = std::move(records);
  return Status::OK();
}

Result<std::vector<MopState>> MergeShardStates(
    std::vector<std::vector<MopState>> shards) {
  if (shards.empty()) return std::vector<MopState>{};
  if (shards.size() == 1) return std::move(shards[0]);
  const size_t num_records = shards[0].size();
  for (const auto& shard : shards) {
    if (shard.size() != num_records) {
      return Status::InvalidArgument(
          "shard state images have different record counts");
    }
  }
  std::vector<MopState> merged;
  for (size_t k = 0; k < num_records; ++k) {
    const MopState& first = shards[0][k];
    for (const auto& shard : shards) {
      const MopState& ms = shard[k];
      if (ms.kind != first.kind || ms.member_fps != first.member_fps ||
          ms.member_active != first.member_active ||
          ms.shared_state != first.shared_state ||
          ms.member_filtered != first.member_filtered ||
          ms.engines.size() != first.engines.size() ||
          ms.left.size() != first.left.size() ||
          ms.right.size() != first.right.size() ||
          ms.stores.size() != first.stores.size()) {
        return Status::InvalidArgument(
            StrCat("shard state images disagree on record ", k));
      }
    }
    MopState out;
    out.kind = first.kind;
    out.member_fps = first.member_fps;
    out.member_active = first.member_active;
    out.shared_state = first.shared_state;
    out.member_filtered = first.member_filtered;
    for (size_t e = 0; e < first.engines.size(); ++e) {
      std::vector<const AggEngineState*> sources;
      for (const auto& shard : shards) sources.push_back(&shard[k].engines[e]);
      AggEngineState merged_engine;
      RUMOR_RETURN_IF_ERROR(MergeEngines(sources, &merged_engine));
      out.engines.push_back(std::move(merged_engine));
    }
    auto merge_buffers = [&](std::vector<BufferState> MopState::* field) {
      std::vector<BufferState> result;
      const size_t count = (first.*field).size();
      for (size_t b = 0; b < count; ++b) {
        std::vector<std::vector<BufferSlotState>> per_shard;
        for (auto& shard : shards) {
          per_shard.push_back(std::move((shard[k].*field)[b].slots));
        }
        BufferState bs;
        bs.slots = MergeSlots(std::move(per_shard));
        result.push_back(std::move(bs));
      }
      return result;
    };
    out.left = merge_buffers(&MopState::left);
    out.right = merge_buffers(&MopState::right);
    out.stores = merge_buffers(&MopState::stores);
    merged.push_back(std::move(out));
  }
  return merged;
}

Status LoadPlanState(Plan& plan, const std::vector<MopState>& saved) {
  Result<PlanFingerprints> fps_or = ComputeMemberFingerprints(plan);
  if (!fps_or.ok()) return fps_or.status();
  const PlanFingerprints& fps = fps_or.value();

  std::unordered_map<uint64_t, FpSources> sources;
  for (size_t rec = 0; rec < saved.size(); ++rec) {
    const MopState& ms = saved[rec];
    for (size_t s = 0; s < ms.member_fps.size(); ++s) {
      if (ms.member_fps[s] == 0) continue;  // inactive slot
      FpSources& fs = sources[ms.member_fps[s]];
      const auto entry = std::make_pair(static_cast<int>(rec),
                                        static_cast<int>(s));
      if (fs.first.first < 0) fs.first = entry;
      fs.pending.push_back(entry);
    }
  }

  // Resolve every restored stateful member to a saved source and apply the
  // bindings. Nothing is loaded until the whole match is validated, so a
  // mismatched snapshot leaves the plan untouched.
  struct PendingLoad {
    MopId id = kInvalidMop;
    MopStateBinding binding;
  };
  std::vector<PendingLoad> loads;
  for (MopId id : plan.LiveMops()) {
    Mop& m = plan.mop(id);
    MopState probe;
    if (!m.SaveState(&probe)) continue;  // stateless m-op
    PendingLoad load;
    load.id = id;
    load.binding.saved_slot.assign(m.num_members(), -1);
    int record = -1;
    for (int r = 0; r < m.num_members(); ++r) {
      const uint64_t fp = fps.members[id][r];
      if (fp == 0) continue;
      auto it = sources.find(fp);
      if (it == sources.end()) {
        return Status::InvalidArgument(
            StrCat("restored member ", r, " of m-op ", m.name(),
                   " has no saved state in the snapshot (snapshot/plan "
                   "mismatch)"));
      }
      FpSources& fs = it->second;
      std::pair<int, int> src = fs.first;
      if (!fs.pending.empty()) {
        src = fs.pending.front();
        fs.pending.pop_front();
      }
      fs.consumed = true;
      if (saved[src.first].kind != probe.kind) {
        return Status::InvalidArgument(
            StrCat("saved state kind mismatch for m-op ", m.name()));
      }
      if (record >= 0 && src.first != record) {
        return Status::Unimplemented(
            StrCat("members of restored m-op ", m.name(),
                   " draw state from several saved m-ops"));
      }
      record = src.first;
      load.binding.saved_slot[r] = src.second;
    }
    if (record < 0) continue;  // no active members (cannot happen today)
    load.binding.src = &saved[record];
    for (int p = 0; p < m.num_inputs(); ++p) {
      const ChannelId ch = plan.input_channel(id, p);
      load.binding.input_capacities.push_back(
          ch >= 0 ? plan.channel(ch).capacity() : 0);
    }
    loads.push_back(std::move(load));
  }

  // Every saved fingerprint must have fed at least one restored member —
  // otherwise part of the checkpointed state would silently vanish.
  for (const auto& [fp, fs] : sources) {
    if (!fs.consumed) {
      return Status::InvalidArgument(
          StrCat("saved state of m-op record ", fs.first.first, " member ",
                 fs.first.second,
                 " matches no member of the restored plan"));
    }
  }

  for (PendingLoad& load : loads) {
    RUMOR_RETURN_IF_ERROR(
        plan.mop(load.id).LoadState(*load.binding.src, load.binding));
  }
  return Status::OK();
}

}  // namespace rumor
