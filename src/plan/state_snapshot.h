// Plan-level operator-state snapshots (the kState section of an engine
// checkpoint, see common/snapshot_io.h).
//
// Save side: walk the live m-ops of one plan (one shard replica), collect
// each stateful m-op's MopState tagged with the structural fingerprints of
// its members (plan/fingerprint.h), and serialize the records into one
// section payload.
//
// Restore side: the restored engine re-parses the saved query texts and
// replays the incremental merge, producing a generally different shared
// plan. LoadPlanState matches saved members to restored members by
// fingerprint (FIFO in occurrence order among equal fingerprints — equal
// fingerprints imply identical state content, so ties are interchangeable)
// and applies Mop::LoadState with the resulting bindings. A sharded
// checkpoint is first collapsed by MergeShardStates into one logical image;
// restore onto n shards loads the full image into every replica and lets
// each shard's partitioned routing shed the keys it does not own.
#ifndef RUMOR_PLAN_STATE_SNAPSHOT_H_
#define RUMOR_PLAN_STATE_SNAPSHOT_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "mop/mop_state.h"
#include "plan/plan.h"

namespace rumor {

// Serializes the operator state of every stateful live m-op of `plan` into
// a kState section payload. The plan must be quiescent.
Result<std::string> SavePlanState(const Plan& plan);

// Decodes a kState payload produced by SavePlanState. Any truncation or
// malformed field yields an error and `out` is left untouched.
Status ParsePlanState(std::string_view payload, std::vector<MopState>* out);

// Merges the per-shard state images of one checkpoint (identical plan
// replicas, key-partitioned state) into a single logical image: window logs
// and buffers are timestamp-merged (shard index breaks ties), aggregation
// groups are unioned (accumulators of a key present on several shards are
// summed). Fails if the images disagree structurally.
Result<std::vector<MopState>> MergeShardStates(
    std::vector<std::vector<MopState>> shards);

// Applies a saved state image onto a freshly rebuilt (empty) plan. Fails —
// without touching any state — if the match is inconsistent: a restored
// stateful member with no saved source, saved state no restored member
// consumes, or mismatched operator kinds.
Status LoadPlanState(Plan& plan, const std::vector<MopState>& saved);

}  // namespace rumor

#endif  // RUMOR_PLAN_STATE_SNAPSHOT_H_
