#include "query/builder.h"

#include "expr/parser_expr.h"

namespace rumor {

QueryBuilder QueryBuilder::FromSource(std::string name, Schema schema,
                                      int sharable_label) {
  return QueryBuilder(
      QueryNode::Source(std::move(name), std::move(schema), sharable_label));
}

QueryBuilder QueryBuilder::FromNode(QueryNodePtr node) {
  RUMOR_CHECK(node != nullptr);
  return QueryBuilder(std::move(node));
}

std::string QueryBuilder::SideAlias() const {
  if (node_->op() == QueryOp::kSource) return node_->source_name();
  return "";
}

ExprPtr QueryBuilder::ParseUnary(const std::string& text) const {
  ExprParseContext ctx;
  ctx.bindings.push_back({"", Side::kLeft, &schema(), 0});
  std::string alias = SideAlias();
  if (!alias.empty()) {
    ctx.bindings.push_back({alias, Side::kLeft, &schema(), 0});
  }
  auto e = ParseExpr(text, ctx);
  RUMOR_CHECK(e.ok()) << "bad predicate '" << text
                      << "': " << e.status().ToString();
  return e.value();
}

ExprPtr QueryBuilder::ParseBinary(const std::string& text,
                                  const QueryBuilder& right,
                                  bool iterate) const {
  ExprParseContext ctx;
  const Schema& ls = schema();
  const Schema& rs = right.schema();
  ctx.bindings.push_back({"left", Side::kLeft, &ls, 0});
  ctx.bindings.push_back({"l", Side::kLeft, &ls, 0});
  std::string la = SideAlias();
  if (!la.empty()) ctx.bindings.push_back({la, Side::kLeft, &ls, 0});
  if (iterate) {
    // `last` = instance last-part, at offset |left schema| on the left side.
    ctx.bindings.push_back({"last", Side::kLeft, &rs, ls.size()});
  }
  ctx.bindings.push_back({"right", Side::kRight, &rs, 0});
  ctx.bindings.push_back({"r", Side::kRight, &rs, 0});
  std::string ra = right.SideAlias();
  if (!ra.empty()) ctx.bindings.push_back({ra, Side::kRight, &rs, 0});
  auto e = ParseExpr(text, ctx);
  RUMOR_CHECK(e.ok()) << "bad predicate '" << text
                      << "': " << e.status().ToString();
  return e.value();
}

QueryBuilder QueryBuilder::Select(ExprPtr predicate) const {
  return QueryBuilder(QueryNode::Select(node_, std::move(predicate)));
}

QueryBuilder QueryBuilder::Select(const std::string& text) const {
  return Select(ParseUnary(text));
}

QueryBuilder QueryBuilder::Project(SchemaMap map) const {
  return QueryBuilder(QueryNode::Project(node_, std::move(map)));
}

QueryBuilder QueryBuilder::Project(
    const std::vector<std::string>& attrs) const {
  std::vector<int> indexes;
  for (const std::string& a : attrs) {
    auto idx = schema().IndexOf(a);
    RUMOR_CHECK(idx.has_value()) << "unknown attribute '" << a << "'";
    indexes.push_back(*idx);
  }
  return Project(SchemaMap::Project(schema(), indexes));
}

QueryBuilder QueryBuilder::Aggregate(AggFn fn, const std::string& agg_attr,
                                     const std::vector<std::string>& group_by,
                                     int64_t window) const {
  int attr = -1;
  if (fn != AggFn::kCount) {
    auto idx = schema().IndexOf(agg_attr);
    RUMOR_CHECK(idx.has_value()) << "unknown attribute '" << agg_attr << "'";
    attr = *idx;
  }
  std::vector<int> groups;
  for (const std::string& g : group_by) {
    auto idx = schema().IndexOf(g);
    RUMOR_CHECK(idx.has_value()) << "unknown group-by attribute '" << g
                                 << "'";
    groups.push_back(*idx);
  }
  return QueryBuilder(
      QueryNode::Aggregate(node_, fn, attr, std::move(groups), window));
}

QueryBuilder QueryBuilder::Count(const std::vector<std::string>& group_by,
                                 int64_t window) const {
  return Aggregate(AggFn::kCount, "", group_by, window);
}

QueryBuilder QueryBuilder::Join(const QueryBuilder& right, ExprPtr predicate,
                                int64_t left_window,
                                int64_t right_window) const {
  return QueryBuilder(QueryNode::Join(node_, right.node_, std::move(predicate),
                                      left_window, right_window));
}

QueryBuilder QueryBuilder::Join(const QueryBuilder& right,
                                const std::string& text, int64_t left_window,
                                int64_t right_window) const {
  return Join(right, ParseBinary(text, right, /*iterate=*/false), left_window,
              right_window);
}

QueryBuilder QueryBuilder::Sequence(const QueryBuilder& right,
                                    ExprPtr predicate, int64_t window) const {
  return QueryBuilder(
      QueryNode::Sequence(node_, right.node_, std::move(predicate), window));
}

QueryBuilder QueryBuilder::Sequence(const QueryBuilder& right,
                                    const std::string& text,
                                    int64_t window) const {
  return Sequence(right, ParseBinary(text, right, /*iterate=*/false), window);
}

QueryBuilder QueryBuilder::Iterate(const QueryBuilder& right,
                                   ExprPtr predicate, int64_t window) const {
  return QueryBuilder(
      QueryNode::Iterate(node_, right.node_, std::move(predicate), window));
}

QueryBuilder QueryBuilder::Iterate(const QueryBuilder& right,
                                   const std::string& text,
                                   int64_t window) const {
  return Iterate(right, ParseBinary(text, right, /*iterate=*/true), window);
}

}  // namespace rumor
