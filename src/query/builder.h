// Fluent builder for logical queries. Text predicates are parsed against the
// current node's schema (plus `last` for Iterate; see query.h conventions):
//
//   Query q = QueryBuilder::FromSource("CPU", schema)
//                 .Aggregate(AggFn::kAvg, "load", {"pid"}, 5)
//                 .Select("avg_load < 20")
//                 .Build("Q1");
#ifndef RUMOR_QUERY_BUILDER_H_
#define RUMOR_QUERY_BUILDER_H_

#include <string>
#include <vector>

#include "query/query.h"

namespace rumor {

class QueryBuilder {
 public:
  // Starts from a named source stream.
  static QueryBuilder FromSource(std::string name, Schema schema,
                                 int sharable_label = -1);
  // Starts from an existing logical subtree.
  static QueryBuilder FromNode(QueryNodePtr node);

  const QueryNodePtr& node() const { return node_; }
  const Schema& schema() const { return node_->output_schema(); }

  // --- unary operators -----------------------------------------------------
  QueryBuilder Select(ExprPtr predicate) const;
  // Bare attribute names resolve against the current schema; the current
  // source name (if the node is a source) is usable as a qualifier.
  QueryBuilder Select(const std::string& predicate_text) const;
  QueryBuilder Project(SchemaMap map) const;
  // Projection by attribute names.
  QueryBuilder Project(const std::vector<std::string>& attrs) const;
  QueryBuilder Aggregate(AggFn fn, const std::string& agg_attr,
                         const std::vector<std::string>& group_by,
                         int64_t window) const;
  // COUNT(*) convenience.
  QueryBuilder Count(const std::vector<std::string>& group_by,
                     int64_t window) const;

  // --- binary operators ----------------------------------------------------
  // For text predicates the aliases are: "left"/"l" (or the left source
  // name) and "right"/"r" (or the right source name); Iterate additionally
  // binds "last" to the instance's last-part.
  QueryBuilder Join(const QueryBuilder& right, ExprPtr predicate,
                    int64_t left_window, int64_t right_window) const;
  QueryBuilder Join(const QueryBuilder& right,
                    const std::string& predicate_text, int64_t left_window,
                    int64_t right_window) const;
  QueryBuilder Sequence(const QueryBuilder& right, ExprPtr predicate,
                        int64_t window) const;
  QueryBuilder Sequence(const QueryBuilder& right,
                        const std::string& predicate_text,
                        int64_t window) const;
  QueryBuilder Iterate(const QueryBuilder& right, ExprPtr predicate,
                       int64_t window) const;
  QueryBuilder Iterate(const QueryBuilder& right,
                       const std::string& predicate_text,
                       int64_t window) const;

  Query Build(std::string name) const { return Query{std::move(name), node_}; }

 private:
  explicit QueryBuilder(QueryNodePtr node) : node_(std::move(node)) {}

  // Parses text with this builder's unary context / a binary context.
  ExprPtr ParseUnary(const std::string& text) const;
  ExprPtr ParseBinary(const std::string& text, const QueryBuilder& right,
                      bool iterate) const;
  // Alias for the node when used as a side of a binary op.
  std::string SideAlias() const;

  QueryNodePtr node_;
};

}  // namespace rumor

#endif  // RUMOR_QUERY_BUILDER_H_
