#include "query/parser.h"

#include <optional>

#include "common/str_util.h"
#include "expr/parser_expr.h"

namespace rumor {

void Catalog::AddSource(const std::string& name, Schema schema,
                        int sharable_label) {
  by_name_[ToLower(name)].push_back(
      QueryNode::Source(name, std::move(schema), sharable_label));
}

void Catalog::AddQuery(const Query& query) {
  by_name_[ToLower(query.name)].push_back(query.root);
}

bool Catalog::Remove(const std::string& name) {
  return by_name_.erase(ToLower(name)) > 0;
}

QueryNodePtr Catalog::Resolve(const std::string& name) const {
  auto it = by_name_.find(ToLower(name));
  // Later definitions shadow earlier ones.
  return it == by_name_.end() ? nullptr : it->second.back();
}

namespace {

const char* kKeywords[] = {"select", "from",    "where", "group", "by",
                           "join",   "seq",     "iterate", "on",  "within",
                           "range",  "as",      "and",   "or",    "not"};

bool IsReserved(const std::string& ident) {
  std::string low = ToLower(ident);
  for (const char* kw : kKeywords) {
    if (low == kw) return true;
  }
  return false;
}

std::optional<AggFn> AggFnFromName(const std::string& name) {
  std::string low = ToLower(name);
  if (low == "count") return AggFn::kCount;
  if (low == "sum") return AggFn::kSum;
  if (low == "avg") return AggFn::kAvg;
  if (low == "min") return AggFn::kMin;
  if (low == "max") return AggFn::kMax;
  return std::nullopt;
}

// One FROM term: a logical subtree + alias + optional window.
struct Term {
  QueryNodePtr node;
  std::string alias;
  int64_t window = 0;
  bool has_window = false;
};

struct SelItem {
  std::string attr;          // qualified spelling, e.g. "a0" or "l.a0"
  std::optional<AggFn> agg;  // set for AGGFN(attr)
};

class QueryParser {
 public:
  QueryParser(const std::vector<Token>& tokens, size_t* pos,
              const Catalog& catalog)
      : tokens_(tokens), pos_(pos), catalog_(catalog) {}

  Result<Query> ParseStatement(int index) {
    std::string name;
    // Optional `name ':'` prefix.
    if (Peek().kind == TokenKind::kIdent && !IsReserved(Peek().text) &&
        PeekAt(1).kind == TokenKind::kSymbol && PeekAt(1).text == ":") {
      name = Peek().text;
      Advance();
      Advance();
    } else {
      name = "Q" + std::to_string(index);
    }
    auto node = ParseQueryBody();
    if (!node.ok()) return node.status();
    return Query{name, node.value()};
  }

  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }
  bool AtSemicolon() const { return IsSym(Peek(), ";"); }
  void SkipSemicolons() {
    while (AtSemicolon()) Advance();
  }

 private:
  static bool IsSym(const Token& t, const char* s) {
    return t.kind == TokenKind::kSymbol && t.text == s;
  }
  static bool IsKw(const Token& t, const char* kw) {
    return t.kind == TokenKind::kIdent && ToLower(t.text) == kw;
  }

  const Token& Peek() const { return tokens_[*pos_]; }
  const Token& PeekAt(size_t k) const {
    size_t i = *pos_ + k;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() { ++*pos_; }

  Status Error(const std::string& msg) const {
    return Status::InvalidArgument(StrCat(msg, " at offset ", Peek().position,
                                          " (near '", Peek().text, "')"));
  }

  Status Expect(const char* sym) {
    if (!IsSym(Peek(), sym)) return Error(StrCat("expected '", sym, "'"));
    Advance();
    return Status::OK();
  }
  Status ExpectKw(const char* kw) {
    if (!IsKw(Peek(), kw)) return Error(StrCat("expected ", kw));
    Advance();
    return Status::OK();
  }

  // query := SELECT sel_list FROM from_expr [WHERE expr] [GROUP BY list]
  Result<QueryNodePtr> ParseQueryBody() {
    RUMOR_RETURN_IF_ERROR(ExpectKw("select"));
    // Selection list.
    std::vector<SelItem> items;
    bool star = false;
    if (IsSym(Peek(), "*")) {
      star = true;
      Advance();
    } else {
      while (true) {
        auto item = ParseSelItem();
        if (!item.ok()) return item.status();
        items.push_back(item.value());
        if (!IsSym(Peek(), ",")) break;
        Advance();
      }
    }
    RUMOR_RETURN_IF_ERROR(ExpectKw("from"));
    auto from = ParseFromExpr();
    if (!from.ok()) return from.status();
    FromResult fr = from.value();

    QueryNodePtr node = fr.node;

    // WHERE over the FROM result.
    if (IsKw(Peek(), "where")) {
      Advance();
      auto pred = ParsePredicate(fr.where_ctx);
      if (!pred.ok()) return pred.status();
      node = QueryNode::Select(node, pred.value());
    }

    // GROUP BY.
    std::vector<std::string> group_names;
    if (IsKw(Peek(), "group")) {
      Advance();
      RUMOR_RETURN_IF_ERROR(ExpectKw("by"));
      while (true) {
        auto ident = ParseQualifiedIdent();
        if (!ident.ok()) return ident.status();
        group_names.push_back(ident.value());
        if (!IsSym(Peek(), ",")) break;
        Advance();
      }
    }

    // Assemble aggregation / projection from the select list.
    int agg_count = 0;
    for (const SelItem& it : items) {
      if (it.agg.has_value()) ++agg_count;
    }
    if (agg_count >= 1) {
      std::vector<const SelItem*> agg_items;
      std::vector<std::string> out_groups;
      for (const SelItem& it : items) {
        if (it.agg.has_value()) {
          agg_items.push_back(&it);
        } else {
          out_groups.push_back(it.attr);
        }
      }
      // Plain select-list attributes are implicit group-by attributes.
      for (const std::string& g : out_groups) {
        bool present = false;
        for (const std::string& existing : group_names) {
          present |= ToLower(existing) == ToLower(g);
        }
        if (!present) group_names.push_back(g);
      }
      if (!fr.has_window) {
        return Error("aggregate query requires [RANGE n] on its input");
      }
      const Schema& in = node->output_schema();
      std::vector<int> groups;
      for (const std::string& g : group_names) {
        auto idx = LookupAttr(in, g);
        if (!idx.ok()) return idx.status();
        groups.push_back(idx.value());
      }
      // One aggregate node per AGGFN item, all over the same input, window
      // and group-by; each emits (group attrs..., result).
      std::vector<QueryNodePtr> aggs;
      for (const SelItem* it : agg_items) {
        int agg_attr = -1;
        if (*it->agg != AggFn::kCount) {
          auto idx = LookupAttr(in, it->attr);
          if (!idx.ok()) return idx.status();
          agg_attr = idx.value();
        }
        aggs.push_back(
            QueryNode::Aggregate(node, *it->agg, agg_attr, groups,
                                 fr.window));
      }
      if (aggs.size() == 1) return aggs[0];
      // >= 2 aggregates: every aggregate emits exactly one row per input
      // tuple, so zipping their outputs in arrival order reassembles one
      // row carrying all aggregate columns; a final projection keeps the
      // group attributes once plus each aggregate value (select-list
      // order). The per-aggregate subplans stay separate single-aggregate
      // operators, so the sα/cα sharing rules apply to them individually.
      QueryNodePtr zipped = aggs[0];
      std::vector<int> value_offsets;
      int width = aggs[0]->output_schema().size();
      value_offsets.push_back(width - 1);
      for (size_t i = 1; i < aggs.size(); ++i) {
        zipped = QueryNode::Zip(zipped, aggs[i]);
        width += aggs[i]->output_schema().size();
        value_offsets.push_back(width - 1);
      }
      SchemaMap map;
      for (size_t k = 0; k < groups.size(); ++k) {
        map.Add(in.attribute(groups[k]).name,
                Expr::Attr(Side::kLeft, static_cast<int>(k)));
      }
      for (size_t j = 0; j < aggs.size(); ++j) {
        const Schema& as = aggs[j]->output_schema();
        map.Add(as.attribute(as.size() - 1).name,
                Expr::Attr(Side::kLeft, value_offsets[j]));
      }
      return QueryNode::Project(zipped, std::move(map));
    }

    if (!group_names.empty()) {
      return Error("GROUP BY requires an aggregate in the select list");
    }
    if (!star) {
      const Schema& in = node->output_schema();
      std::vector<int> indexes;
      for (const SelItem& it : items) {
        auto idx = LookupAttr(in, it.attr);
        if (!idx.ok()) return idx.status();
        indexes.push_back(idx.value());
      }
      node = QueryNode::Project(node, SchemaMap::Project(in, indexes));
    }
    return node;
  }

  Result<SelItem> ParseSelItem() {
    if (Peek().kind != TokenKind::kIdent) return Error("expected attribute");
    std::string first = Peek().text;
    // AGGFN '(' (ident | '*') ')'
    if (auto fn = AggFnFromName(first);
        fn.has_value() && IsSym(PeekAt(1), "(")) {
      Advance();
      Advance();
      SelItem item;
      item.agg = fn;
      if (IsSym(Peek(), "*")) {
        if (*fn != AggFn::kCount) return Error("only COUNT(*) is allowed");
        Advance();
      } else {
        auto ident = ParseQualifiedIdent();
        if (!ident.ok()) return ident.status();
        item.attr = ident.value();
      }
      RUMOR_RETURN_IF_ERROR(Expect(")"));
      return item;
    }
    auto ident = ParseQualifiedIdent();
    if (!ident.ok()) return ident.status();
    SelItem item;
    item.attr = ident.value();
    return item;
  }

  // ident ['.' ident] — returned as the joined spelling.
  Result<std::string> ParseQualifiedIdent() {
    if (Peek().kind != TokenKind::kIdent) return Error("expected identifier");
    std::string name = Peek().text;
    Advance();
    if (IsSym(Peek(), ".")) {
      Advance();
      if (Peek().kind != TokenKind::kIdent) {
        return Error("expected identifier after '.'");
      }
      name += "." + Peek().text;
      Advance();
    }
    return name;
  }

  // Attribute lookup allowing both plain and qualified spellings against the
  // (possibly concatenated) schema, where concat schemas name attributes
  // "l.x" / "r.x" / "last.x".
  Result<int> LookupAttr(const Schema& schema, const std::string& name) {
    if (auto idx = schema.IndexOf(name)) return *idx;
    // Try the unqualified tail (e.g. "E.pid" -> "pid").
    auto dot = name.find('.');
    if (dot != std::string::npos) {
      std::string tail = name.substr(dot + 1);
      if (auto idx = schema.IndexOf(tail)) return *idx;
      // Qualified by side: l./r./last. prefixes in concat schemas.
      for (const char* prefix : {"l.", "r.", "last."}) {
        if (auto idx = schema.IndexOf(prefix + tail)) return *idx;
      }
    } else {
      for (const char* prefix : {"l.", "r.", "last."}) {
        if (auto idx = schema.IndexOf(prefix + name)) return *idx;
      }
    }
    return Status::NotFound(StrCat("unknown attribute '", name, "'"));
  }

  struct FromResult {
    QueryNodePtr node;
    ExprParseContext where_ctx;  // bindings valid for the WHERE clause
    int64_t window = 0;          // single-term window (for aggregates)
    bool has_window = false;
    // Keep binding schemas alive (where_ctx stores raw pointers).
    std::vector<std::shared_ptr<Schema>> owned_schemas;
  };

  Result<FromResult> ParseFromExpr() {
    auto left = ParseTerm();
    if (!left.ok()) return left.status();
    Term lt = left.value();

    enum class Comb { kNone, kJoin, kSeq, kIterate };
    Comb comb = Comb::kNone;
    if (IsKw(Peek(), "join")) {
      comb = Comb::kJoin;
    } else if (IsKw(Peek(), "seq")) {
      comb = Comb::kSeq;
    } else if (IsKw(Peek(), "iterate")) {
      comb = Comb::kIterate;
    }

    if (comb == Comb::kNone) {
      FromResult fr;
      fr.node = lt.node;
      fr.window = lt.window;
      fr.has_window = lt.has_window;
      auto schema = std::make_shared<Schema>(lt.node->output_schema());
      fr.owned_schemas.push_back(schema);
      fr.where_ctx.bindings.push_back({"", Side::kLeft, schema.get(), 0});
      if (!lt.alias.empty()) {
        fr.where_ctx.bindings.push_back(
            {lt.alias, Side::kLeft, schema.get(), 0});
      }
      return fr;
    }
    Advance();  // consume combinator keyword

    auto right = ParseTerm();
    if (!right.ok()) return right.status();
    Term rt = right.value();

    RUMOR_RETURN_IF_ERROR(ExpectKw("on"));

    // ON-predicate context: left/right sides with aliases; `last` for
    // ITERATE.
    auto ls = std::make_shared<Schema>(lt.node->output_schema());
    auto rs = std::make_shared<Schema>(rt.node->output_schema());
    ExprParseContext on_ctx;
    on_ctx.bindings.push_back({"left", Side::kLeft, ls.get(), 0});
    if (!lt.alias.empty()) {
      on_ctx.bindings.push_back({lt.alias, Side::kLeft, ls.get(), 0});
    }
    if (comb == Comb::kIterate) {
      on_ctx.bindings.push_back({"last", Side::kLeft, rs.get(), ls->size()});
    }
    on_ctx.bindings.push_back({"right", Side::kRight, rs.get(), 0});
    if (!rt.alias.empty()) {
      on_ctx.bindings.push_back({rt.alias, Side::kRight, rs.get(), 0});
    }
    // Bare-name fallback: left first, then right.
    on_ctx.bindings.push_back({"", Side::kLeft, ls.get(), 0});
    on_ctx.bindings.push_back({"", Side::kRight, rs.get(), 0});

    auto pred = ParsePredicate(on_ctx);
    if (!pred.ok()) return pred.status();

    int64_t within = 0;
    if (IsKw(Peek(), "within")) {
      Advance();
      if (Peek().kind != TokenKind::kInt) return Error("expected integer");
      within = Peek().int_value;
      Advance();
    }

    FromResult fr;
    fr.owned_schemas = {ls, rs};
    switch (comb) {
      case Comb::kJoin: {
        if (!lt.has_window || !rt.has_window) {
          return Error("JOIN requires [RANGE n] on both inputs");
        }
        fr.node = QueryNode::Join(lt.node, rt.node, pred.value(), lt.window,
                                  rt.window);
        break;
      }
      case Comb::kSeq:
        fr.node =
            QueryNode::Sequence(lt.node, rt.node, pred.value(), within);
        break;
      case Comb::kIterate:
        fr.node = QueryNode::Iterate(lt.node, rt.node, pred.value(), within);
        break;
      default:
        return Error("internal: bad combinator");
    }

    // WHERE context over the concatenated output schema: qualified aliases
    // address the two parts by offset.
    auto out = std::make_shared<Schema>(fr.node->output_schema());
    fr.owned_schemas.push_back(out);
    fr.where_ctx.bindings.push_back({"", Side::kLeft, out.get(), 0});
    if (!lt.alias.empty()) {
      fr.where_ctx.bindings.push_back({lt.alias, Side::kLeft, ls.get(), 0});
    }
    if (!rt.alias.empty()) {
      fr.where_ctx.bindings.push_back(
          {rt.alias, Side::kLeft, rs.get(), ls->size()});
    }
    if (comb == Comb::kIterate) {
      fr.where_ctx.bindings.push_back(
          {"last", Side::kLeft, rs.get(), ls->size()});
    }
    return fr;
  }

  Result<Term> ParseTerm() {
    Term term;
    if (IsSym(Peek(), "(")) {
      Advance();
      auto sub = ParseQueryBody();
      if (!sub.ok()) return sub.status();
      RUMOR_RETURN_IF_ERROR(Expect(")"));
      term.node = sub.value();
    } else {
      if (Peek().kind != TokenKind::kIdent) {
        return Error("expected stream name");
      }
      std::string name = Peek().text;
      Advance();
      term.node = catalog_.Resolve(name);
      if (term.node == nullptr) {
        return Status::NotFound(StrCat("unknown stream or query '", name,
                                       "'"));
      }
      term.alias = name;
    }
    // Optional window: '[' RANGE n ']'.
    if (IsSym(Peek(), "[")) {
      Advance();
      RUMOR_RETURN_IF_ERROR(ExpectKw("range"));
      if (Peek().kind != TokenKind::kInt) return Error("expected integer");
      term.window = Peek().int_value;
      term.has_window = true;
      Advance();
      RUMOR_RETURN_IF_ERROR(Expect("]"));
    }
    // Optional alias.
    if (IsKw(Peek(), "as")) {
      Advance();
      if (Peek().kind != TokenKind::kIdent) return Error("expected alias");
      term.alias = Peek().text;
      Advance();
    }
    return term;
  }

  Result<ExprPtr> ParsePredicate(const ExprParseContext& ctx) {
    return ParseExprTokens(tokens_, pos_, ctx);
  }

  const std::vector<Token>& tokens_;
  size_t* pos_;
  const Catalog& catalog_;
};

}  // namespace

Result<Query> ParseQuery(const std::string& text, const Catalog& catalog) {
  auto tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  size_t pos = 0;
  QueryParser parser(tokens.value(), &pos, catalog);
  auto q = parser.ParseStatement(0);
  if (!q.ok()) return q;
  parser.SkipSemicolons();
  if (!parser.AtEnd()) {
    return Status::InvalidArgument("trailing input after query");
  }
  return q;
}

Result<std::vector<Query>> ParseScript(const std::string& text,
                                       const Catalog& catalog) {
  return ParseScript(text, catalog, nullptr);
}

Result<std::vector<Query>> ParseScript(
    const std::string& text, const Catalog& catalog,
    std::vector<std::string>* statement_texts) {
  auto tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  const std::vector<Token>& toks = tokens.value();
  size_t pos = 0;
  Catalog working = catalog;  // copies entries; later queries see earlier ones
  std::vector<Query> out;
  QueryParser parser(toks, &pos, working);
  parser.SkipSemicolons();
  while (!parser.AtEnd()) {
    // Body start: past the optional `name ':'` prefix (mirrors
    // ParseStatement), so the recorded text re-parses with ParseQuery.
    size_t body_tok = pos;
    if (toks[pos].kind == TokenKind::kIdent && !IsReserved(toks[pos].text) &&
        pos + 1 < toks.size() && toks[pos + 1].kind == TokenKind::kSymbol &&
        toks[pos + 1].text == ":") {
      body_tok = pos + 2;
    }
    auto q = parser.ParseStatement(static_cast<int>(out.size()) + 1);
    if (!q.ok()) return q.status();
    if (statement_texts != nullptr) {
      // `pos` now sits on the ';' (or the end token, whose position is
      // text.size()), which bounds this statement's source span.
      const size_t begin = body_tok < toks.size()
                               ? static_cast<size_t>(toks[body_tok].position)
                               : text.size();
      const size_t end = static_cast<size_t>(toks[pos].position);
      statement_texts->push_back(Trim(text.substr(begin, end - begin)));
    }
    working.AddQuery(q.value());
    out.push_back(std::move(q).value());
    if (!parser.AtSemicolon() && !parser.AtEnd()) {
      return Status::InvalidArgument("expected ';' between queries");
    }
    parser.SkipSemicolons();
  }
  return out;
}

}  // namespace rumor
