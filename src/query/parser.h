// RQL — the small textual query language of this library. It covers the
// CQL-style, event-pattern, and hybrid queries of the paper:
//
//   -- relational, with sliding window + group-by
//   SMOOTHED: SELECT pid, AVG(load) FROM CPU [RANGE 5] GROUP BY pid;
//
//   -- window join
//   J: SELECT * FROM S [RANGE 100] JOIN T [RANGE 100] ON S.a0 = T.a0;
//
//   -- event pattern (Cayuga ; and µ), with duration bound
//   P: SELECT * FROM S SEQ T ON S.a0 = 3 AND T.a0 = 5 WITHIN 100;
//   M: SELECT * FROM S ITERATE T ON S.a0 = T.a0 AND T.a1 > last.a1
//      WITHIN 100;
//
//   -- hybrid: subqueries and references to previously defined queries
//   Q1: SELECT * FROM (SELECT * FROM SMOOTHED WHERE avg_load < 20) AS B
//       ITERATE SMOOTHED AS E ON B.pid = E.pid AND E.avg_load > last.avg_load
//       WITHIN 60 WHERE last.avg_load > 10;
//
// Grammar (keywords case-insensitive):
//   script    := stmt (';' stmt)* [';']
//   stmt      := [name ':'] query
//   query     := SELECT sel_list FROM from_expr [WHERE expr]
//                [GROUP BY ident_list]
//   sel_list  := '*' | sel_item (',' sel_item)*
//   sel_item  := ident | AGGFN '(' (ident|'*') ')'
//   from_expr := term
//              | term JOIN term ON expr
//              | term (SEQ | ITERATE) term ON expr [WITHIN int]
//   term      := ident ['[' RANGE int ']'] [AS ident]
//              | '(' query ')' [AS ident]
//
// `ident` in FROM resolves to a catalog source stream or a previously
// defined query of the same script (logical inlining; the optimizer then
// re-shares the copies via m-rules).
#ifndef RUMOR_QUERY_PARSER_H_
#define RUMOR_QUERY_PARSER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "query/query.h"

namespace rumor {

// Known source streams (and, during script parsing, named queries).
class Catalog {
 public:
  void AddSource(const std::string& name, Schema schema,
                 int sharable_label = -1);
  void AddQuery(const Query& query);
  // Drops every entry registered under `name` (a removed query may no
  // longer be referenced by later queries); returns false if none existed.
  bool Remove(const std::string& name);

  // Subtree for `name`: a fresh Source node for sources, the defining
  // subtree for named queries; nullptr if unknown.
  QueryNodePtr Resolve(const std::string& name) const;

 private:
  // Lowercase name -> definitions in registration order; the latest (back)
  // shadows earlier ones. Hash lookup keeps per-query resolution O(1) at
  // 10^5..10^6 registered queries (a linear entry scan here was quadratic
  // over a large AddQuery workload).
  std::unordered_map<std::string, std::vector<QueryNodePtr>> by_name_;
};

// Parses one query (no name prefix, no trailing ';').
Result<Query> ParseQuery(const std::string& text, const Catalog& catalog);

// Parses a ';'-separated script of (optionally named) queries. Later
// statements may reference earlier ones by name. Unnamed queries are named
// Q<k> by position.
Result<std::vector<Query>> ParseScript(const std::string& text,
                                       const Catalog& catalog);

// As above, and additionally reports each statement's source text with any
// `name ':'` prefix stripped — re-parseable later with ParseQuery. Engine
// checkpoints persist these texts to rebuild the query set on restore.
Result<std::vector<Query>> ParseScript(
    const std::string& text, const Catalog& catalog,
    std::vector<std::string>* statement_texts);

}  // namespace rumor

#endif  // RUMOR_QUERY_PARSER_H_
