#include "query/query.h"

#include <sstream>

#include "common/hash.h"
#include "common/str_util.h"
#include "expr/shape.h"

namespace rumor {

const char* QueryOpName(QueryOp op) {
  switch (op) {
    case QueryOp::kSource: return "Source";
    case QueryOp::kSelect: return "Select";
    case QueryOp::kProject: return "Project";
    case QueryOp::kAggregate: return "Aggregate";
    case QueryOp::kJoin: return "Join";
    case QueryOp::kSequence: return "Sequence";
    case QueryOp::kIterate: return "Iterate";
    case QueryOp::kZip: return "Zip";
  }
  return "?";
}

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kCount: return "COUNT";
    case AggFn::kSum: return "SUM";
    case AggFn::kAvg: return "AVG";
    case AggFn::kMin: return "MIN";
    case AggFn::kMax: return "MAX";
  }
  return "?";
}

ValueType AggResultType(AggFn fn, ValueType input) {
  switch (fn) {
    case AggFn::kCount: return ValueType::kInt;
    case AggFn::kSum: return input == ValueType::kInt ? ValueType::kInt
                                                      : ValueType::kDouble;
    case AggFn::kAvg: return ValueType::kDouble;
    case AggFn::kMin:
    case AggFn::kMax: return input;
  }
  return ValueType::kNull;
}

namespace {

#define RUMOR_NEW_NODE() std::shared_ptr<QueryNode>(new QueryNode())

uint64_t CombineChildSignatures(uint64_t h,
                                const std::vector<QueryNodePtr>& children) {
  for (const QueryNodePtr& c : children) h = HashCombine(h, c->Signature());
  return h;
}

}  // namespace

void SplitIteratePredicate(const ExprPtr& predicate, int start_size,
                           ExprPtr* match, ExprPtr* rebind) {
  std::vector<ExprPtr> conjuncts;
  FlattenConjuncts(predicate, &conjuncts);
  std::vector<ExprPtr> match_terms, rebind_terms;
  // A conjunct referencing a left attribute at index >= start_size touches
  // the instance's last-part => rebind conjunct.
  for (const ExprPtr& c : conjuncts) {
    bool touches_last = false;
    std::vector<const Expr*> stack = {c.get()};
    while (!stack.empty()) {
      const Expr* e = stack.back();
      stack.pop_back();
      if (e->kind() == ExprKind::kAttr && e->side() == Side::kLeft &&
          e->attr_index() >= start_size) {
        touches_last = true;
        break;
      }
      for (int i = 0; i < e->num_children(); ++i) {
        stack.push_back(e->child(i).get());
      }
    }
    (touches_last ? rebind_terms : match_terms).push_back(c);
  }
  *match = Expr::AndAll(match_terms);
  *rebind = Expr::AndAll(rebind_terms);
}

QueryNodePtr QueryNode::Source(std::string name, Schema schema,
                               int sharable_label) {
  auto n = RUMOR_NEW_NODE();
  n->op_ = QueryOp::kSource;
  n->source_name_ = std::move(name);
  n->output_schema_ = std::move(schema);
  n->sharable_label_ = sharable_label;
  n->signature_ = HashCombine(Mix64(static_cast<uint64_t>(n->op_)),
                              HashBytes(n->source_name_));
  return n;
}

QueryNodePtr QueryNode::Select(QueryNodePtr child, ExprPtr predicate) {
  auto n = RUMOR_NEW_NODE();
  n->op_ = QueryOp::kSelect;
  n->output_schema_ = child->output_schema();
  n->predicate_ = std::move(predicate);
  n->children_ = {std::move(child)};
  n->signature_ =
      CombineChildSignatures(HashCombine(Mix64(static_cast<uint64_t>(n->op_)),
                                         PredicateSignature(n->predicate_)),
                             n->children_);
  return n;
}

QueryNodePtr QueryNode::Project(QueryNodePtr child, SchemaMap map) {
  auto n = RUMOR_NEW_NODE();
  n->op_ = QueryOp::kProject;
  n->output_schema_ = map.OutputSchema(child->output_schema());
  n->map_ = std::move(map);
  n->children_ = {std::move(child)};
  n->signature_ = CombineChildSignatures(
      HashCombine(Mix64(static_cast<uint64_t>(n->op_)), n->map_.Signature()),
      n->children_);
  return n;
}

QueryNodePtr QueryNode::Aggregate(QueryNodePtr child, AggFn fn, int agg_attr,
                                  std::vector<int> group_by, int64_t window) {
  auto n = RUMOR_NEW_NODE();
  n->op_ = QueryOp::kAggregate;
  const Schema& in = child->output_schema();
  RUMOR_CHECK(fn == AggFn::kCount || (agg_attr >= 0 && agg_attr < in.size()))
      << "bad aggregate attribute " << agg_attr;
  std::vector<Attribute> attrs;
  for (int g : group_by) {
    RUMOR_CHECK(g >= 0 && g < in.size()) << "bad group-by attribute " << g;
    attrs.push_back(in.attribute(g));
  }
  std::string result_name =
      fn == AggFn::kCount
          ? "count"
          : ToLower(AggFnName(fn)) + "_" + in.attribute(agg_attr).name;
  ValueType in_type =
      fn == AggFn::kCount ? ValueType::kInt : in.attribute(agg_attr).type;
  attrs.push_back({result_name, AggResultType(fn, in_type)});
  n->output_schema_ = Schema(std::move(attrs));
  n->agg_fn_ = fn;
  n->agg_attr_ = fn == AggFn::kCount ? -1 : agg_attr;
  n->group_by_ = std::move(group_by);
  n->window_ = window;
  n->children_ = {std::move(child)};
  uint64_t h = Mix64(static_cast<uint64_t>(n->op_));
  h = HashCombine(h, static_cast<uint64_t>(fn));
  h = HashCombine(h, static_cast<uint64_t>(n->agg_attr_));
  for (int g : n->group_by_) h = HashCombine(h, static_cast<uint64_t>(g));
  h = HashCombine(h, static_cast<uint64_t>(window));
  n->signature_ = CombineChildSignatures(h, n->children_);
  return n;
}

QueryNodePtr QueryNode::Join(QueryNodePtr left, QueryNodePtr right,
                             ExprPtr predicate, int64_t left_window,
                             int64_t right_window) {
  auto n = RUMOR_NEW_NODE();
  n->op_ = QueryOp::kJoin;
  n->output_schema_ =
      Schema::Concat(left->output_schema(), right->output_schema());
  n->predicate_ = std::move(predicate);
  n->window_ = left_window;
  n->right_window_ = right_window;
  n->children_ = {std::move(left), std::move(right)};
  uint64_t h = Mix64(static_cast<uint64_t>(n->op_));
  h = HashCombine(h, PredicateSignature(n->predicate_));
  h = HashCombine(h, static_cast<uint64_t>(left_window));
  h = HashCombine(h, static_cast<uint64_t>(right_window));
  n->signature_ = CombineChildSignatures(h, n->children_);
  return n;
}

QueryNodePtr QueryNode::Sequence(QueryNodePtr left, QueryNodePtr right,
                                 ExprPtr predicate, int64_t window) {
  auto n = RUMOR_NEW_NODE();
  n->op_ = QueryOp::kSequence;
  n->output_schema_ =
      Schema::Concat(left->output_schema(), right->output_schema());
  n->predicate_ = std::move(predicate);
  n->window_ = window;
  n->children_ = {std::move(left), std::move(right)};
  uint64_t h = Mix64(static_cast<uint64_t>(n->op_));
  h = HashCombine(h, PredicateSignature(n->predicate_));
  h = HashCombine(h, static_cast<uint64_t>(window));
  n->signature_ = CombineChildSignatures(h, n->children_);
  return n;
}

QueryNodePtr QueryNode::Iterate(QueryNodePtr left, QueryNodePtr right,
                                ExprPtr predicate, int64_t window) {
  ExprPtr match, rebind;
  SplitIteratePredicate(predicate, left->output_schema().size(), &match,
                        &rebind);
  return IterateSplit(std::move(left), std::move(right), std::move(match),
                      std::move(rebind), window);
}

QueryNodePtr QueryNode::IterateSplit(QueryNodePtr left, QueryNodePtr right,
                                     ExprPtr match, ExprPtr rebind,
                                     int64_t window) {
  auto n = RUMOR_NEW_NODE();
  n->op_ = QueryOp::kIterate;
  n->output_schema_ = Schema::Concat(left->output_schema(),
                                     right->output_schema(), "l.", "last.");
  n->match_predicate_ = std::move(match);
  n->rebind_predicate_ = std::move(rebind);
  n->predicate_ = Expr::AndAll({n->match_predicate_, n->rebind_predicate_});
  n->window_ = window;
  n->children_ = {std::move(left), std::move(right)};
  uint64_t h = Mix64(static_cast<uint64_t>(n->op_));
  h = HashCombine(h, PredicateSignature(n->match_predicate_));
  h = HashCombine(h, PredicateSignature(n->rebind_predicate_));
  h = HashCombine(h, static_cast<uint64_t>(window));
  n->signature_ = CombineChildSignatures(h, n->children_);
  return n;
}

QueryNodePtr QueryNode::Zip(QueryNodePtr left, QueryNodePtr right) {
  auto n = RUMOR_NEW_NODE();
  n->op_ = QueryOp::kZip;
  n->output_schema_ =
      Schema::Concat(left->output_schema(), right->output_schema());
  n->children_ = {std::move(left), std::move(right)};
  n->signature_ = CombineChildSignatures(
      Mix64(static_cast<uint64_t>(n->op_)), n->children_);
  return n;
}

namespace {

void Render(const QueryNode& n, int indent, std::ostringstream& os) {
  os << std::string(indent * 2, ' ') << QueryOpName(n.op());
  switch (n.op()) {
    case QueryOp::kSource:
      os << "(" << n.source_name() << ")";
      break;
    case QueryOp::kSelect:
      os << "[" << (n.predicate() ? n.predicate()->ToString() : "true")
         << "]";
      break;
    case QueryOp::kProject:
      os << n.map().ToString();
      break;
    case QueryOp::kAggregate:
      os << "[" << AggFnName(n.agg_fn());
      if (n.agg_attr() >= 0) os << "(#" << n.agg_attr() << ")";
      os << " window=" << n.window() << " group_by={";
      for (size_t i = 0; i < n.group_by().size(); ++i) {
        if (i) os << ",";
        os << n.group_by()[i];
      }
      os << "}]";
      break;
    case QueryOp::kJoin:
      os << "[" << (n.predicate() ? n.predicate()->ToString() : "true")
         << " w=(" << n.window() << "," << n.right_window() << ")]";
      break;
    case QueryOp::kSequence:
    case QueryOp::kIterate:
      os << "[" << (n.predicate() ? n.predicate()->ToString() : "true")
         << " within=" << n.window() << "]";
      break;
    case QueryOp::kZip:
      break;
  }
  os << "\n";
  for (int i = 0; i < n.num_children(); ++i) {
    Render(*n.child(i), indent + 1, os);
  }
}

}  // namespace

std::string QueryNode::ToString() const {
  std::ostringstream os;
  Render(*this, 0, os);
  return os.str();
}

}  // namespace rumor
