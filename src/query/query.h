// Logical query algebra. A Query is a tree of QueryNodes:
//
//   Source     — a named input stream
//   Select     — σ predicate filter
//   Project    — π schema map (rename / project / computed attributes)
//   Aggregate  — sliding-window aggregate with optional group-by
//   Join       — sliding-window join
//   Sequence   — Cayuga ; : left event followed by a matching right event
//   Iterate    — Cayuga µ : left event followed by an unbounded run of
//                matching right events (e.g. monotonic sequences)
//
// Queries are what users express (via the builder or the RQL parser); the
// plan compiler (plan/compile.h) lowers each node to an m-op, and the rule
// engine then merges m-ops across queries.
//
// Pattern-operator predicate conventions (paper §4.2):
//  * Sequence: predicate context is (left = stored left tuple, right =
//    incoming right event); `window` bounds right.ts - left.ts.
//  * Iterate: the *instance* is the concatenation (start ⊕ last). Both the
//    match predicate (which conjuncts reference only the start part) and the
//    rebind predicate (conjuncts referencing the `last` part at offset
//    |start schema|) are expressed over (left = instance, right = event).
//    On a matching event the instance's last-part is replaced by the event
//    and the updated concatenation is emitted; a matching event that fails
//    the rebind predicate kills the instance (run broken); a non-matching
//    event leaves it untouched.
#ifndef RUMOR_QUERY_QUERY_H_
#define RUMOR_QUERY_QUERY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "expr/expr.h"
#include "expr/schema_map.h"

namespace rumor {

enum class QueryOp : uint8_t {
  kSource,
  kSelect,
  kProject,
  kAggregate,
  kJoin,
  kSequence,
  kIterate,
  kZip,
};

const char* QueryOpName(QueryOp op);

enum class AggFn : uint8_t { kCount, kSum, kAvg, kMin, kMax };

const char* AggFnName(AggFn fn);

// Result type of an aggregate over an input attribute type.
ValueType AggResultType(AggFn fn, ValueType input);

class QueryNode;
using QueryNodePtr = std::shared_ptr<const QueryNode>;

class QueryNode {
 public:
  // --- factories -----------------------------------------------------------
  static QueryNodePtr Source(std::string name, Schema schema,
                             int sharable_label = -1);
  static QueryNodePtr Select(QueryNodePtr child, ExprPtr predicate);
  static QueryNodePtr Project(QueryNodePtr child, SchemaMap map);
  // `agg_attr` is ignored (-1) for kCount. Emits (group attrs..., result)
  // per input tuple of the affected group.
  static QueryNodePtr Aggregate(QueryNodePtr child, AggFn fn, int agg_attr,
                                std::vector<int> group_by, int64_t window);
  static QueryNodePtr Join(QueryNodePtr left, QueryNodePtr right,
                           ExprPtr predicate, int64_t left_window,
                           int64_t right_window);
  static QueryNodePtr Sequence(QueryNodePtr left, QueryNodePtr right,
                               ExprPtr predicate, int64_t window);
  // `predicate` combines match and rebind conjuncts; they are split by
  // whether they reference the instance's last-part (see header comment).
  static QueryNodePtr Iterate(QueryNodePtr left, QueryNodePtr right,
                              ExprPtr predicate, int64_t window);
  // Iterate with pre-split match/rebind predicates (used by the Cayuga
  // automaton translator, whose edges carry them separately).
  static QueryNodePtr IterateSplit(QueryNodePtr left, QueryNodePtr right,
                                   ExprPtr match, ExprPtr rebind,
                                   int64_t window);
  // 1:1 pairing of two streams that emit in lockstep (each input tuple of
  // the common ancestor yields exactly one tuple on each side); the output
  // is the concatenation. The parser builds multi-aggregate SELECTs with it.
  static QueryNodePtr Zip(QueryNodePtr left, QueryNodePtr right);

  // --- accessors -----------------------------------------------------------
  QueryOp op() const { return op_; }
  const Schema& output_schema() const { return output_schema_; }
  int num_children() const { return static_cast<int>(children_.size()); }
  const QueryNodePtr& child(int i) const { return children_[i]; }

  const std::string& source_name() const { return source_name_; }
  int sharable_label() const { return sharable_label_; }
  const ExprPtr& predicate() const { return predicate_; }
  const SchemaMap& map() const { return map_; }
  AggFn agg_fn() const { return agg_fn_; }
  int agg_attr() const { return agg_attr_; }
  const std::vector<int>& group_by() const { return group_by_; }
  int64_t window() const { return window_; }
  int64_t right_window() const { return right_window_; }
  // Iterate only: predicate split into match / rebind parts.
  const ExprPtr& match_predicate() const { return match_predicate_; }
  const ExprPtr& rebind_predicate() const { return rebind_predicate_; }

  // Structural signature over the whole subtree (definition + children).
  uint64_t Signature() const { return signature_; }
  std::string ToString() const;  // multi-line tree rendering

 private:
  QueryNode() = default;

  QueryOp op_ = QueryOp::kSource;
  Schema output_schema_;
  std::vector<QueryNodePtr> children_;
  uint64_t signature_ = 0;

  std::string source_name_;
  int sharable_label_ = -1;
  ExprPtr predicate_;
  SchemaMap map_;
  AggFn agg_fn_ = AggFn::kCount;
  int agg_attr_ = -1;
  std::vector<int> group_by_;
  int64_t window_ = 0;
  int64_t right_window_ = 0;
  ExprPtr match_predicate_;
  ExprPtr rebind_predicate_;
};

// A named logical query; the plan compiler gives each query one output
// stream named after it (the paper's convention: "we use the query name to
// denote its output stream name").
struct Query {
  std::string name;
  QueryNodePtr root;
};

// Splits an Iterate predicate into (match, rebind) conjunct groups: a
// conjunct referencing a left attribute with index >= start_size touches the
// instance's last-part and is a rebind conjunct. Exposed for tests.
void SplitIteratePredicate(const ExprPtr& predicate, int start_size,
                           ExprPtr* match, ExprPtr* rebind);

}  // namespace rumor

#endif  // RUMOR_QUERY_QUERY_H_
