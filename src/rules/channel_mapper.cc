// ChannelRule — the c-family of m-rules (cσ, cπ, cα, c⋈, c;, cµ; paper §3.3
// and §4.4) together with the stream-to-channel mapping decision of §3.2.
//
// Channel-based MQO sharing criteria (§3.2): streams S1..Sn are mapped to
// one channel only if
//   (a) they belong to the same ~ equivalence class (SharableAnalysis),
//   (b) they are produced by the same m-op (or are sources explicitly
//       labeled sharable — the Workload-3 setting where the generator feeds
//       the channel directly), and
//   (c) their consumers have identical definitions.
//
// When the criteria hold, the rule (i) re-emits the producer in channel
// output mode — one channel tuple with a membership component instead of n
// per-port tuples, (ii) creates the channel encoding S1..Sn, and (iii)
// merges the n consumers into the channel-sharing target m-op of their type
// (ChannelSelectMop, ChannelProjectMop, fragment AggregateMop, precision
// JoinMop, channel SequenceMop/IterateMop). Consumer output channels are
// preserved, so the rule composes: the merged consumer becomes a candidate
// producer for the next application (the Fig. 6(c) chain sσ → cµ → cσ).
#include <unordered_map>

#include "mop/aggregate_mop.h"
#include "mop/iterate_mop.h"
#include "mop/join_mop.h"
#include "mop/projection_mop.h"
#include "mop/selection_mop.h"
#include "mop/sequence_mop.h"
#include "rules/rule.h"

namespace rumor {

namespace {

// A validated candidate group: n sharable streams (with their capacity-1
// channels) from one producer, and the n same-definition consumers.
struct Candidate {
  std::vector<ChannelId> stream_channels;  // capacity-1, in slot order
  std::vector<StreamId> streams;
  std::vector<MopId> consumers;  // consumer i reads stream i on port 0
  MopType consumer_type;
  // Sequence/Iterate: the common right input channel.
  ChannelId common_right = kInvalidChannel;
  // Join: right-side group (aligned with left slots).
  std::vector<ChannelId> right_channels;
  MopId right_producer = kInvalidMop;
};

// Checks consumers of the given capacity-1 channels: exactly one consumer
// per channel, reading on port 0, all single-member with one output port and
// identical definitions. Fills consumer fields of `cand`.
bool ValidateConsumers(const Plan& plan, Candidate* cand) {
  cand->consumers.clear();
  for (ChannelId c : cand->stream_channels) {
    auto ends = plan.ConsumersOf(c);
    if (ends.size() != 1 || ends[0].port != 0) return false;
    cand->consumers.push_back(ends[0].mop);
  }
  // Consumers must be distinct m-ops.
  for (size_t i = 0; i < cand->consumers.size(); ++i) {
    for (size_t j = i + 1; j < cand->consumers.size(); ++j) {
      if (cand->consumers[i] == cand->consumers[j]) return false;
    }
  }
  const Mop& first = plan.mop(cand->consumers[0]);
  if (first.num_members() != 1 || first.num_outputs() != 1) return false;
  cand->consumer_type = first.type();
  switch (cand->consumer_type) {
    case MopType::kSelection:
    case MopType::kProjection:
    case MopType::kAggregate:
    case MopType::kJoin:
    case MopType::kSequence:
    case MopType::kIterate:
      break;
    default:
      return false;  // only compile-shaped reference consumers are merged
  }
  for (MopId id : cand->consumers) {
    const Mop& m = plan.mop(id);
    if (m.type() != cand->consumer_type || m.num_members() != 1 ||
        m.num_outputs() != 1) {
      return false;
    }
    if (m.MemberSignature(0) != first.MemberSignature(0)) return false;
  }
  // Binary consumers: criterion on the second input.
  if (cand->consumer_type == MopType::kSequence ||
      cand->consumer_type == MopType::kIterate) {
    cand->common_right = plan.input_channel(cand->consumers[0], 1);
    for (MopId id : cand->consumers) {
      if (plan.input_channel(id, 1) != cand->common_right) return false;
    }
  } else if (cand->consumer_type == MopType::kJoin) {
    // Precision sharing: the right inputs must be the aligned outputs of a
    // single second producer over sharable streams.
    cand->right_channels.clear();
    for (MopId id : cand->consumers) {
      cand->right_channels.push_back(plan.input_channel(id, 1));
    }
    std::optional<ChannelEnd> producer =
        plan.ProducerOf(cand->right_channels[0]);
    if (!producer.has_value()) return false;
    MopId p2 = producer->mop;
    cand->right_producer = p2;
    if (plan.mop(p2).num_outputs() !=
        static_cast<int>(cand->right_channels.size())) {
      return false;
    }
    for (size_t i = 0; i < cand->right_channels.size(); ++i) {
      if (plan.output_channel(p2, static_cast<int>(i)) !=
          cand->right_channels[i]) {
        return false;
      }
      if (plan.channel(cand->right_channels[i]).capacity() != 1)
        return false;
      auto ends = plan.ConsumersOf(cand->right_channels[i]);
      if (ends.size() != 1 || ends[0].mop != cand->consumers[i] ||
          ends[0].port != 1) {
        return false;
      }
    }
  }
  return true;
}

// Builds the merged channel-sharing consumer m-op.
std::unique_ptr<Mop> MakeChannelConsumer(const Plan& plan,
                                         const Candidate& cand) {
  const int n = static_cast<int>(cand.consumers.size());
  switch (cand.consumer_type) {
    case MopType::kSelection: {
      const auto& c0 =
          static_cast<const SelectionMop&>(plan.mop(cand.consumers[0]));
      return std::make_unique<ChannelSelectMop>(c0.member(0).def, n,
                                                OutputMode::kPerMemberPorts);
    }
    case MopType::kProjection: {
      const auto& c0 =
          static_cast<const ProjectionMop&>(plan.mop(cand.consumers[0]));
      return std::make_unique<ChannelProjectMop>(
          c0.member(0).def, n, OutputMode::kPerMemberPorts);
    }
    case MopType::kAggregate: {
      std::vector<AggregateMop::Member> members;
      for (int i = 0; i < n; ++i) {
        const auto& ci =
            static_cast<const AggregateMop&>(plan.mop(cand.consumers[i]));
        members.push_back({i, ci.member(0).spec});
      }
      return std::make_unique<AggregateMop>(std::move(members),
                                            AggregateMop::Sharing::kFragment,
                                            OutputMode::kPerMemberPorts);
    }
    case MopType::kJoin: {
      std::vector<JoinMop::Member> members;
      for (int i = 0; i < n; ++i) {
        const auto& ci =
            static_cast<const JoinMop&>(plan.mop(cand.consumers[i]));
        members.push_back({i, i, ci.member(0).def});
      }
      return std::make_unique<JoinMop>(std::move(members),
                                       JoinMop::Sharing::kPrecision,
                                       OutputMode::kPerMemberPorts);
    }
    case MopType::kSequence: {
      std::vector<SequenceMop::Member> members;
      for (int i = 0; i < n; ++i) {
        const auto& ci =
            static_cast<const SequenceMop&>(plan.mop(cand.consumers[i]));
        members.push_back({i, 0, ci.member(0).def});
      }
      return std::make_unique<SequenceMop>(std::move(members),
                                           SequenceMop::Sharing::kChannel,
                                           OutputMode::kPerMemberPorts);
    }
    case MopType::kIterate: {
      std::vector<IterateMop::Member> members;
      for (int i = 0; i < n; ++i) {
        const auto& ci =
            static_cast<const IterateMop&>(plan.mop(cand.consumers[i]));
        members.push_back({i, 0, ci.member(0).def});
      }
      return std::make_unique<IterateMop>(std::move(members),
                                          IterateMop::Sharing::kChannel,
                                          OutputMode::kPerMemberPorts);
    }
    default:
      RUMOR_CHECK(false) << "unexpected consumer type";
      return nullptr;
  }
}

// Applies one validated candidate. `producer` is kInvalidMop for
// source-group candidates.
void ApplyCandidate(Plan* plan, const Candidate& cand, MopId producer) {
  const int n = static_cast<int>(cand.streams.size());
  // (ii) the channel encoding S1..Sn.
  ChannelId ch = plan->AddChannel(
      cand.streams, plan->streams().SchemaOf(cand.streams[0]));

  // (i) producer switches to channel-output mode.
  if (producer != kInvalidMop) {
    std::unique_ptr<Mop> clone =
        CloneWithOutputMode(plan->mop(producer), OutputMode::kChannel);
    std::vector<ChannelId> inputs = plan->input_channels(producer);
    MopId new_producer = plan->AddMop(std::move(clone));
    for (size_t p = 0; p < inputs.size(); ++p) {
      plan->BindInput(new_producer, static_cast<int>(p), inputs[p]);
    }
    plan->BindOutput(new_producer, 0, ch);
    plan->RemoveMop(producer);
  }

  // Right-side channel for precision joins.
  ChannelId right_ch = kInvalidChannel;
  if (cand.consumer_type == MopType::kJoin) {
    std::vector<StreamId> right_streams;
    for (ChannelId c : cand.right_channels) {
      right_streams.push_back(plan->channel(c).stream_at(0));
    }
    right_ch = plan->AddChannel(
        right_streams, plan->streams().SchemaOf(right_streams[0]));
    std::unique_ptr<Mop> clone = CloneWithOutputMode(
        plan->mop(cand.right_producer), OutputMode::kChannel);
    std::vector<ChannelId> inputs =
        plan->input_channels(cand.right_producer);
    MopId new_p2 = plan->AddMop(std::move(clone));
    for (size_t p = 0; p < inputs.size(); ++p) {
      plan->BindInput(new_p2, static_cast<int>(p), inputs[p]);
    }
    plan->BindOutput(new_p2, 0, right_ch);
    plan->RemoveMop(cand.right_producer);
  }

  // (iii) the merged consumer.
  std::unique_ptr<Mop> target = MakeChannelConsumer(*plan, cand);
  std::vector<ChannelId> outputs;
  for (MopId id : cand.consumers) {
    outputs.push_back(plan->output_channel(id, 0));
  }
  MopId merged = plan->AddMop(std::move(target));
  plan->BindInput(merged, 0, ch);
  if (cand.consumer_type == MopType::kSequence ||
      cand.consumer_type == MopType::kIterate) {
    plan->BindInput(merged, 1, cand.common_right);
  } else if (cand.consumer_type == MopType::kJoin) {
    plan->BindInput(merged, 1, right_ch);
  }
  for (int i = 0; i < n; ++i) plan->BindOutput(merged, i, outputs[i]);
  for (MopId id : cand.consumers) plan->RemoveMop(id);
}

// Scans for a producer-group candidate: a live m-op with n >= 2 per-member
// output ports over sharable streams whose consumers qualify. Returns true
// after applying one rewrite.
bool TryProducerGroups(Plan* plan, const SharableAnalysis& sharable) {
  for (MopId p : plan->LiveMops()) {
    const Mop& mop = plan->mop(p);
    if (mop.num_outputs() < 2) continue;
    Candidate cand;
    bool ok = true;
    for (int i = 0; i < mop.num_outputs() && ok; ++i) {
      ChannelId c = plan->output_channel(p, i);
      if (plan->channel(c).capacity() != 1) {
        ok = false;
        break;
      }
      cand.stream_channels.push_back(c);
      cand.streams.push_back(plan->channel(c).stream_at(0));
    }
    if (!ok) continue;
    if (!sharable.AllSharable(cand.streams)) continue;  // criterion (a)
    // Criterion (b) holds: one producer. Criterion (c):
    if (!ValidateConsumers(*plan, &cand)) continue;
    // Joins: left and right producers must differ (self-alignment of one
    // producer's ports on both sides is not supported).
    if (cand.consumer_type == MopType::kJoin && cand.right_producer == p) {
      continue;
    }
    ApplyCandidate(plan, cand, p);
    return true;
  }
  return false;
}

// Scans for groups of sharable-labeled source streams whose capacity-1
// channels feed qualifying consumers (§5.2 Workload 3: the generator feeds
// the channel directly).
bool TrySourceGroups(Plan* plan, const SharableAnalysis& sharable) {
  std::unordered_map<int, std::vector<StreamId>> by_label;
  for (StreamId s = 0; s < plan->streams().size(); ++s) {
    const StreamDef& def = plan->streams().Get(s);
    if (def.is_source && def.sharable_label >= 0 &&
        plan->FindSourceChannel(s).has_value()) {
      by_label[def.sharable_label].push_back(s);
    }
  }
  for (auto& [label, streams] : by_label) {
    if (streams.size() < 2) continue;
    Candidate cand;
    cand.streams = streams;
    for (StreamId s : streams) {
      cand.stream_channels.push_back(*plan->FindSourceChannel(s));
    }
    if (!sharable.AllSharable(cand.streams)) continue;
    if (!ValidateConsumers(*plan, &cand)) continue;
    if (cand.consumer_type == MopType::kJoin) continue;  // sources only left
    ApplyCandidate(plan, cand, kInvalidMop);
    return true;
  }
  return false;
}

}  // namespace

int ChannelRule::ApplyAll(Plan* plan, const SharableAnalysis* analysis) {
  RUMOR_CHECK(analysis != nullptr)
      << "the channel rule needs the ~ analysis (not applied incrementally)";
  const SharableAnalysis& sharable = *analysis;
  int merges = 0;
  while (TryProducerGroups(plan, sharable) ||
         TrySourceGroups(plan, sharable)) {
    ++merges;
  }
  return merges;
}

}  // namespace rumor
