#include "rules/incremental.h"

#include <memory>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "mop/aggregate_mop.h"
#include "mop/join_mop.h"
#include "mop/predicate_index_mop.h"
#include "mop/selection_mop.h"
#include "rules/rule.h"
#include "rules/sharable.h"

namespace rumor {

namespace {

// Member-level CSE: a single-member m-op identical to a *member* of an
// existing merged m-op on the same input channel(s) is redundant — the
// member's output channel already carries exactly the tuples the newcomer
// would produce. Consumers move onto that (warm) member port and the
// newcomer is removed. This is what makes a re-added query converge onto the
// shared plan a restart would build.
int MemberCse(Plan* plan) {
  int merges = 0;
  std::vector<MopId> live = plan->LiveMops();
  for (MopId id : live) {
    if (!plan->IsLive(id)) continue;
    const Mop& m = plan->mop(id);
    if (m.num_members() != 1 || m.num_outputs() != 1) continue;
    MopType shared_type;
    switch (m.type()) {
      case MopType::kSelection: shared_type = MopType::kPredicateIndex; break;
      case MopType::kAggregate: shared_type = MopType::kSharedAggregate; break;
      case MopType::kJoin: shared_type = MopType::kSharedJoin; break;
      default: continue;
    }
    for (MopId tid : live) {
      if (tid == id || !plan->IsLive(tid)) continue;
      const Mop& t = plan->mop(tid);
      if (t.type() != shared_type || t.num_members() < 2 ||
          t.num_outputs() != t.num_members()) {
        continue;  // only per-member-ports merged targets
      }
      // Same wiring on every input port.
      bool same_inputs = t.num_inputs() == m.num_inputs();
      for (int p = 0; same_inputs && p < m.num_inputs(); ++p) {
        same_inputs = plan->input_channel(tid, p) == plan->input_channel(id, p);
      }
      if (!same_inputs) continue;
      int match = -1;
      for (int i = 0; i < t.num_members() && match < 0; ++i) {
        if (t.MemberSignature(i) != m.MemberSignature(0)) continue;
        switch (shared_type) {
          case MopType::kPredicateIndex:
            if (static_cast<const SelectionMop&>(m).member(0).input_slot == 0) {
              match = i;
            }
            break;
          case MopType::kSharedAggregate: {
            const auto& target = static_cast<const AggregateMop&>(t);
            const auto& fresh = static_cast<const AggregateMop&>(m);
            if (target.member(i).input_slot == fresh.member(0).input_slot &&
                target.member_active(i)) {
              match = i;
            }
            break;
          }
          case MopType::kSharedJoin: {
            const auto& target = static_cast<const JoinMop&>(t);
            const auto& fresh = static_cast<const JoinMop&>(m);
            if (target.member(i).left_slot == fresh.member(0).left_slot &&
                target.member(i).right_slot == fresh.member(0).right_slot) {
              match = i;
            }
            break;
          }
          default:
            break;
        }
      }
      if (match < 0) continue;
      ChannelId fresh_out = plan->output_channel(id, 0);
      ChannelId member_out = plan->output_channel(tid, match);
      StreamId fresh_stream = plan->channel(fresh_out).stream_at(0);
      StreamId member_stream = plan->channel(member_out).stream_at(0);
      plan->MoveConsumers(fresh_out, member_out);
      plan->RemapOutput(fresh_stream, member_stream);
      plan->RemoveMop(id);
      ++merges;
      break;
    }
  }
  return merges;
}

// sσ attach: single-member selections whose input stream already carries a
// warm predicate index join it as new members (stateless, so nothing to
// preserve beyond wiring). Keeps the invariant that no single-member
// selection coexists with an index on the same channel.
int AttachSelections(Plan* plan) {
  std::unordered_map<ChannelId, MopId> index_by_input;
  for (MopId id : plan->LiveMops()) {
    const Mop& m = plan->mop(id);
    if (m.type() != MopType::kPredicateIndex) continue;
    const auto& index = static_cast<const PredicateIndexMop&>(m);
    if (index.output_mode() != OutputMode::kPerMemberPorts) continue;
    index_by_input.emplace(plan->input_channel(id, 0), id);
  }
  if (index_by_input.empty()) return 0;
  int attached = 0;
  for (MopId id : plan->LiveMops()) {
    const Mop& m = plan->mop(id);
    if (m.type() != MopType::kSelection || m.num_members() != 1 ||
        m.num_outputs() != 1) {
      continue;
    }
    const auto& sel = static_cast<const SelectionMop&>(m);
    if (sel.member(0).input_slot != 0) continue;
    auto it = index_by_input.find(plan->input_channel(id, 0));
    if (it == index_by_input.end() || it->second == id) continue;
    ChannelId out = plan->output_channel(id, 0);
    auto& index = static_cast<PredicateIndexMop&>(plan->mop(it->second));
    index.AddMember(sel.member(0).def);
    plan->AddMopOutputPort(it->second, out);
    plan->RemoveMop(id);
    ++attached;
  }
  return attached;
}

// sα attach: a lone isolated aggregate joins a warm shared-aggregation
// target (or another lone aggregate, converting it in place) on the same
// input channel with the same fn/attr. The joining member's state is
// backfilled from the target's retained entry log.
int AttachAggregates(Plan* plan) {
  auto key_of = [plan](MopId id, const AggregateMop& agg) {
    uint64_t key = Mix64(static_cast<uint64_t>(plan->input_channel(id, 0)));
    key = HashCombine(key, static_cast<uint64_t>(agg.member(0).spec.fn));
    key = HashCombine(key, static_cast<uint64_t>(agg.member(0).spec.attr));
    key = HashCombine(key,
                      static_cast<uint64_t>(agg.member(0).input_slot));
    return key;
  };
  // Oldest candidate target per key (oldest = warmest).
  std::unordered_map<uint64_t, MopId> target_by_key;
  for (MopId id : plan->LiveMops()) {
    const Mop& m = plan->mop(id);
    if (m.type() != MopType::kAggregate &&
        m.type() != MopType::kSharedAggregate) {
      continue;
    }
    const auto& agg = static_cast<const AggregateMop&>(m);
    if (agg.output_mode() != OutputMode::kPerMemberPorts) continue;
    if (agg.sharing() == AggregateMop::Sharing::kIsolated &&
        agg.num_members() != 1) {
      continue;
    }
    target_by_key.emplace(key_of(id, agg), id);
  }
  int attached = 0;
  for (MopId id : plan->LiveMops()) {
    const Mop& m = plan->mop(id);
    if (m.type() != MopType::kAggregate || m.num_members() != 1 ||
        m.num_outputs() != 1) {
      continue;
    }
    const auto& agg = static_cast<const AggregateMop&>(m);
    if (agg.sharing() != AggregateMop::Sharing::kIsolated) continue;
    auto it = target_by_key.find(key_of(id, agg));
    if (it == target_by_key.end() || it->second == id) continue;
    auto& target = static_cast<AggregateMop&>(plan->mop(it->second));
    if (!target.CanAttach(agg.member(0))) continue;
    ChannelId out = plan->output_channel(id, 0);
    AggregateMop::AttachResult res = target.AttachMember(agg.member(0));
    if (res.reused_slot) {
      // The reactivated slot keeps its port and channel; route the new
      // query's consumers and output mark onto them.
      ChannelId slot_out = plan->output_channel(it->second, res.member);
      StreamId fresh_stream = plan->channel(out).stream_at(0);
      StreamId slot_stream = plan->channel(slot_out).stream_at(0);
      plan->MoveConsumers(out, slot_out);
      plan->RemapOutput(fresh_stream, slot_stream);
    } else {
      plan->AddMopOutputPort(it->second, out);
    }
    plan->RemoveMop(id);
    ++attached;
  }
  return attached;
}

// Channels on the reverse-reachability closure of the surviving query
// outputs (a channel is needed iff it carries an output stream or feeds a
// needed m-op).
std::vector<char> NeededChannels(const Plan& plan) {
  std::vector<char> chan_needed(plan.num_channels(), 0);
  std::vector<char> mop_needed(plan.num_mops(), 0);
  std::vector<ChannelId> worklist;
  for (const Plan::OutputDef& def : plan.outputs()) {
    for (ChannelId c = 0; c < plan.num_channels(); ++c) {
      if (plan.channel_dead(c) || chan_needed[c]) continue;
      if (plan.channel(c).SlotOf(def.stream).has_value()) {
        chan_needed[c] = 1;
        worklist.push_back(c);
      }
    }
  }
  while (!worklist.empty()) {
    ChannelId c = worklist.back();
    worklist.pop_back();
    std::optional<ChannelEnd> producer = plan.ProducerOf(c);
    if (!producer.has_value() || mop_needed[producer->mop]) continue;
    mop_needed[producer->mop] = 1;
    for (ChannelId in : plan.input_channels(producer->mop)) {
      if (in != kInvalidChannel && !chan_needed[in]) {
        chan_needed[in] = 1;
        worklist.push_back(in);
      }
    }
  }
  return chan_needed;
}

}  // namespace

std::string IncrementalMergeStats::ToString() const {
  std::ostringstream os;
  os << "IncrementalMergeStats{cse=" << cse_merges
     << " attach=" << attach_merges << " rules=" << rule_merges << "}";
  return os.str();
}

std::string PruneStats::ToString() const {
  std::ostringstream os;
  os << "PruneStats{mops=" << removed_mops
     << " index_members=" << pruned_index_members
     << " deactivated=" << deactivated_members
     << " channels=" << collected_channels << "}";
  return os.str();
}

IncrementalMergeStats MergeNewQuery(Plan* plan,
                                    const OptimizerOptions& options) {
  IncrementalMergeStats stats;
  // The rules applied here do not consult the ~ analysis (CSE and sσ match
  // on exact channel identity), so no whole-plan recomputation is paid on a
  // live add; rules that do need it (ChannelRule) CHECK against null and
  // are deliberately not applied incrementally.
  const SharableAnalysis* sharable = nullptr;
  // Fixpoint: merging an upstream m-op rewires its consumers onto warm
  // channels, which can expose downstream merges (e.g. a σ snapping onto an
  // index member lets the α above it join the shared engine next round).
  for (int round = 0; round < options.max_rounds; ++round) {
    int round_merges = 0;
    if (options.enable_cse) {
      int n = CseRule().ApplyAll(plan, sharable) + MemberCse(plan);
      stats.cse_merges += n;
      round_merges += n;
    }
    if (options.enable_predicate_index) {
      int attached = AttachSelections(plan);
      int ruled = PredicateIndexRule().ApplyAll(plan, sharable);
      stats.attach_merges += attached;
      stats.rule_merges += ruled;
      round_merges += attached + ruled;
    }
    if (options.enable_shared_aggregate) {
      int attached = AttachAggregates(plan);
      stats.attach_merges += attached;
      round_merges += attached;
    }
    if (round_merges == 0) break;
  }
  return stats;
}

PruneStats PruneUnreachable(Plan* plan) {
  PruneStats stats;
  // Operator-level teardown: reference count zero = no surviving query
  // output depends on the m-op.
  std::vector<int> refs = plan->QueryRefCounts();
  for (MopId id : plan->LiveMops()) {
    if (refs[id] == 0) {
      plan->RemoveMop(id);
      ++stats.removed_mops;
    }
  }

  // Member-level teardown on surviving shared m-ops.
  std::vector<char> needed = NeededChannels(*plan);
  std::vector<MopId> index_rebuilds;
  for (MopId id : plan->LiveMops()) {
    Mop& m = plan->mop(id);
    if (m.type() == MopType::kPredicateIndex) {
      const auto& index = static_cast<const PredicateIndexMop&>(m);
      if (index.output_mode() != OutputMode::kPerMemberPorts) continue;
      bool all_needed = true;
      for (int i = 0; i < index.num_members(); ++i) {
        all_needed &= needed[plan->output_channel(id, i)] != 0;
      }
      if (!all_needed) index_rebuilds.push_back(id);
    } else if (m.type() == MopType::kSharedAggregate ||
               m.type() == MopType::kFragmentAggregate) {
      auto& agg = static_cast<AggregateMop&>(m);
      if (agg.output_mode() != OutputMode::kPerMemberPorts) continue;
      for (int i = 0; i < agg.num_members(); ++i) {
        if (!needed[plan->output_channel(id, i)] && agg.member_active(i)) {
          agg.DeactivateMember(i);
          ++stats.deactivated_members;
        }
      }
    }
  }
  // Predicate indexes are stateless: rebuild them without the members no
  // surviving query reads.
  for (MopId id : index_rebuilds) {
    const auto& index = static_cast<const PredicateIndexMop&>(plan->mop(id));
    std::vector<SelectionDef> defs;
    std::vector<ChannelId> outs;
    for (int i = 0; i < index.num_members(); ++i) {
      ChannelId out = plan->output_channel(id, i);
      if (!needed[out]) {
        ++stats.pruned_index_members;
        continue;
      }
      defs.push_back(index.member(i));
      outs.push_back(out);
    }
    RUMOR_CHECK(!defs.empty()) << "fully unused index should have ref 0";
    ChannelId input = plan->input_channel(id, 0);
    MopId rebuilt = plan->AddMop(std::make_unique<PredicateIndexMop>(
        std::move(defs), OutputMode::kPerMemberPorts));
    plan->BindInput(rebuilt, 0, input);
    for (size_t i = 0; i < outs.size(); ++i) {
      plan->BindOutput(rebuilt, static_cast<int>(i), outs[i]);
    }
    plan->RemoveMop(id);
  }

  stats.collected_channels = plan->GcOrphanChannels();
  return stats;
}

}  // namespace rumor
