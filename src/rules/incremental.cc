#include "rules/incremental.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/trace.h"
#include "mop/aggregate_mop.h"
#include "mop/join_mop.h"
#include "mop/predicate_index_mop.h"
#include "mop/selection_mop.h"
#include "rules/rule.h"
#include "rules/sharable.h"

namespace rumor {

namespace {

// Member-level CSE: a single-member m-op identical to a *member* of an
// existing merged m-op on the same input channel(s) is redundant — the
// member's output channel already carries exactly the tuples the newcomer
// would produce. Consumers move onto that (warm) member port and the
// newcomer is removed. This is what makes a re-added query converge onto the
// shared plan a restart would build.
int MemberCse(Plan* plan) {
  int merges = 0;
  std::vector<MopId> live = plan->LiveMops();
  for (MopId id : live) {
    if (!plan->IsLive(id)) continue;
    const Mop& m = plan->mop(id);
    if (m.num_members() != 1 || m.num_outputs() != 1) continue;
    MopType shared_type;
    switch (m.type()) {
      case MopType::kSelection: shared_type = MopType::kPredicateIndex; break;
      case MopType::kAggregate: shared_type = MopType::kSharedAggregate; break;
      case MopType::kJoin: shared_type = MopType::kSharedJoin; break;
      default: continue;
    }
    for (MopId tid : live) {
      if (tid == id || !plan->IsLive(tid)) continue;
      const Mop& t = plan->mop(tid);
      if (t.type() != shared_type || t.num_members() < 2 ||
          t.num_outputs() != t.num_members()) {
        continue;  // only per-member-ports merged targets
      }
      // Same wiring on every input port.
      bool same_inputs = t.num_inputs() == m.num_inputs();
      for (int p = 0; same_inputs && p < m.num_inputs(); ++p) {
        same_inputs = plan->input_channel(tid, p) == plan->input_channel(id, p);
      }
      if (!same_inputs) continue;
      int match = -1;
      for (int i = 0; i < t.num_members() && match < 0; ++i) {
        if (t.MemberSignature(i) != m.MemberSignature(0)) continue;
        switch (shared_type) {
          case MopType::kPredicateIndex:
            if (static_cast<const SelectionMop&>(m).member(0).input_slot == 0) {
              match = i;
            }
            break;
          case MopType::kSharedAggregate: {
            const auto& target = static_cast<const AggregateMop&>(t);
            const auto& fresh = static_cast<const AggregateMop&>(m);
            if (target.member(i).input_slot == fresh.member(0).input_slot &&
                target.member_active(i)) {
              match = i;
            }
            break;
          }
          case MopType::kSharedJoin: {
            const auto& target = static_cast<const JoinMop&>(t);
            const auto& fresh = static_cast<const JoinMop&>(m);
            if (target.member(i).left_slot == fresh.member(0).left_slot &&
                target.member(i).right_slot == fresh.member(0).right_slot) {
              match = i;
            }
            break;
          }
          default:
            break;
        }
      }
      if (match < 0) continue;
      ChannelId fresh_out = plan->output_channel(id, 0);
      ChannelId member_out = plan->output_channel(tid, match);
      StreamId fresh_stream = plan->channel(fresh_out).stream_at(0);
      StreamId member_stream = plan->channel(member_out).stream_at(0);
      plan->MoveConsumers(fresh_out, member_out);
      plan->RemapOutput(fresh_stream, member_stream);
      plan->RemoveMop(id);
      ++merges;
      break;
    }
  }
  return merges;
}

// sσ attach: single-member selections whose input stream already carries a
// warm predicate index join it as new members (stateless, so nothing to
// preserve beyond wiring). Keeps the invariant that no single-member
// selection coexists with an index on the same channel.
int AttachSelections(Plan* plan) {
  std::unordered_map<ChannelId, MopId> index_by_input;
  for (MopId id : plan->LiveMops()) {
    const Mop& m = plan->mop(id);
    if (m.type() != MopType::kPredicateIndex) continue;
    const auto& index = static_cast<const PredicateIndexMop&>(m);
    if (index.output_mode() != OutputMode::kPerMemberPorts) continue;
    // Two per-member-port indexes can coexist on one channel (e.g. after a
    // sharded re-merge); attach to the *oldest* deterministically instead
    // of whichever the scan happens to see first.
    auto [it, inserted] = index_by_input.emplace(plan->input_channel(id, 0),
                                                 id);
    if (!inserted && id < it->second) it->second = id;
  }
  if (index_by_input.empty()) return 0;
  int attached = 0;
  for (MopId id : plan->LiveMops()) {
    const Mop& m = plan->mop(id);
    if (m.type() != MopType::kSelection || m.num_members() != 1 ||
        m.num_outputs() != 1) {
      continue;
    }
    const auto& sel = static_cast<const SelectionMop&>(m);
    if (sel.member(0).input_slot != 0) continue;
    auto it = index_by_input.find(plan->input_channel(id, 0));
    if (it == index_by_input.end() || it->second == id) continue;
    ChannelId out = plan->output_channel(id, 0);
    auto& index = static_cast<PredicateIndexMop&>(plan->mop(it->second));
    index.AddMember(sel.member(0).def);
    plan->AddMopOutputPort(it->second, out);
    plan->RemoveMop(id);
    ++attached;
  }
  return attached;
}

// sα attach: a lone isolated aggregate joins a warm shared-aggregation
// target (or another lone aggregate, converting it in place) on the same
// input channel with the same fn/attr. The joining member's state is
// backfilled from the target's retained entry log.
int AttachAggregates(Plan* plan) {
  auto key_of = [plan](MopId id, const AggregateMop& agg) {
    uint64_t key = Mix64(static_cast<uint64_t>(plan->input_channel(id, 0)));
    key = HashCombine(key, static_cast<uint64_t>(agg.member(0).spec.fn));
    key = HashCombine(key, static_cast<uint64_t>(agg.member(0).spec.attr));
    key = HashCombine(key,
                      static_cast<uint64_t>(agg.member(0).input_slot));
    return key;
  };
  // Oldest candidate target per key (oldest = warmest).
  std::unordered_map<uint64_t, MopId> target_by_key;
  for (MopId id : plan->LiveMops()) {
    const Mop& m = plan->mop(id);
    if (m.type() != MopType::kAggregate &&
        m.type() != MopType::kSharedAggregate) {
      continue;
    }
    const auto& agg = static_cast<const AggregateMop&>(m);
    if (agg.output_mode() != OutputMode::kPerMemberPorts) continue;
    if (agg.sharing() == AggregateMop::Sharing::kIsolated &&
        agg.num_members() != 1) {
      continue;
    }
    target_by_key.emplace(key_of(id, agg), id);
  }
  int attached = 0;
  for (MopId id : plan->LiveMops()) {
    const Mop& m = plan->mop(id);
    if (m.type() != MopType::kAggregate || m.num_members() != 1 ||
        m.num_outputs() != 1) {
      continue;
    }
    const auto& agg = static_cast<const AggregateMop&>(m);
    if (agg.sharing() != AggregateMop::Sharing::kIsolated) continue;
    auto it = target_by_key.find(key_of(id, agg));
    if (it == target_by_key.end() || it->second == id) continue;
    auto& target = static_cast<AggregateMop&>(plan->mop(it->second));
    if (!target.CanAttach(agg.member(0))) continue;
    ChannelId out = plan->output_channel(id, 0);
    AggregateMop::AttachResult res = target.AttachMember(agg.member(0));
    if (res.reused_slot) {
      // The reactivated slot keeps its port and channel; route the new
      // query's consumers and output mark onto them. The slot's member spec
      // changed in place (no wiring event), so publish the mutation for
      // signature-keyed log consumers.
      plan->NotifyMopMutated(it->second);
      ChannelId slot_out = plan->output_channel(it->second, res.member);
      StreamId fresh_stream = plan->channel(out).stream_at(0);
      StreamId slot_stream = plan->channel(slot_out).stream_at(0);
      plan->MoveConsumers(out, slot_out);
      plan->RemapOutput(fresh_stream, slot_stream);
    } else {
      plan->AddMopOutputPort(it->second, out);
    }
    plan->RemoveMop(id);
    ++attached;
  }
  return attached;
}

}  // namespace

std::string IncrementalMergeStats::ToString() const {
  std::ostringstream os;
  os << "IncrementalMergeStats{cse=" << cse_merges
     << " attach=" << attach_merges << " rules=" << rule_merges << "}";
  return os.str();
}

std::string PruneStats::ToString() const {
  std::ostringstream os;
  os << "PruneStats{mops=" << removed_mops
     << " index_members=" << pruned_index_members
     << " deactivated=" << deactivated_members
     << " channels=" << collected_channels << "}";
  return os.str();
}

IncrementalMergeStats MergeNewQuery(Plan* plan,
                                    const OptimizerOptions& options) {
  RUMOR_TRACE_SPAN("MergeNewQuery");
  IncrementalMergeStats stats;
  // The rules applied here do not consult the ~ analysis (CSE and sσ match
  // on exact channel identity), so no whole-plan recomputation is paid on a
  // live add; rules that do need it (ChannelRule) CHECK against null and
  // are deliberately not applied incrementally.
  const SharableAnalysis* sharable = nullptr;
  // Fixpoint: merging an upstream m-op rewires its consumers onto warm
  // channels, which can expose downstream merges (e.g. a σ snapping onto an
  // index member lets the α above it join the shared engine next round).
  for (int round = 0; round < options.max_rounds; ++round) {
    int round_merges = 0;
    if (options.enable_cse) {
      int n = CseRule().ApplyAll(plan, sharable) + MemberCse(plan);
      stats.cse_merges += n;
      round_merges += n;
    }
    if (options.enable_predicate_index) {
      int attached = AttachSelections(plan);
      int ruled = PredicateIndexRule().ApplyAll(plan, sharable);
      stats.attach_merges += attached;
      stats.rule_merges += ruled;
      round_merges += attached + ruled;
    }
    if (options.enable_shared_aggregate) {
      int attached = AttachAggregates(plan);
      stats.attach_merges += attached;
      round_merges += attached;
    }
    if (round_merges == 0) break;
  }
  return stats;
}

namespace {

// Applies one freshly probed candidate. Each arm performs exactly the plan
// mutation the corresponding scan-based rule performs (CseRule / MemberCse /
// AttachSelections / AttachAggregates / PredicateIndexRule), so the indexed
// path is plan-identical to the oracle. Returns false if the candidate no
// longer applies.
bool ApplyCandidate(Plan* plan, ShareIndex* index,
                    const ShareIndex::Candidate& c,
                    IncrementalMergeStats* stats) {
  switch (c.kind) {
    case ShareIndex::Candidate::kCseExact:
    case ShareIndex::Candidate::kCseMember: {
      ChannelId fresh_out = plan->output_channel(c.fresh, 0);
      int port = c.kind == ShareIndex::Candidate::kCseMember ? c.member : 0;
      ChannelId kept_out = plan->output_channel(c.target, port);
      StreamId fresh_stream = plan->channel(fresh_out).stream_at(0);
      StreamId kept_stream = plan->channel(kept_out).stream_at(0);
      plan->MoveConsumers(fresh_out, kept_out);
      plan->RemapOutput(fresh_stream, kept_stream);
      plan->RemoveMop(c.fresh);
      ++stats->cse_merges;
      return true;
    }
    case ShareIndex::Candidate::kAttachSelection: {
      const auto& sel = static_cast<const SelectionMop&>(plan->mop(c.fresh));
      SelectionDef def = sel.member(0).def;
      ChannelId out = plan->output_channel(c.fresh, 0);
      auto& target = static_cast<PredicateIndexMop&>(plan->mop(c.target));
      target.AddMember(std::move(def));
      plan->AddMopOutputPort(c.target, out);
      plan->RemoveMop(c.fresh);
      ++stats->attach_merges;
      return true;
    }
    case ShareIndex::Candidate::kAttachAggregate: {
      const auto& fresh = static_cast<const AggregateMop&>(plan->mop(c.fresh));
      AggregateMop::Member member = fresh.member(0);
      auto& target = static_cast<AggregateMop&>(plan->mop(c.target));
      if (!target.CanAttach(member)) return false;
      ChannelId out = plan->output_channel(c.fresh, 0);
      AggregateMop::AttachResult res = target.AttachMember(member);
      if (res.reused_slot) {
        // In-place spec change on the reused slot: dirty the target so the
        // index re-derives its member signatures.
        plan->NotifyMopMutated(c.target);
        ChannelId slot_out = plan->output_channel(c.target, res.member);
        StreamId fresh_stream = plan->channel(out).stream_at(0);
        StreamId slot_stream = plan->channel(slot_out).stream_at(0);
        plan->MoveConsumers(out, slot_out);
        plan->RemapOutput(fresh_stream, slot_stream);
      } else {
        plan->AddMopOutputPort(c.target, out);
      }
      plan->RemoveMop(c.fresh);
      ++stats->attach_merges;
      return true;
    }
    case ShareIndex::Candidate::kFormIndex: {
      std::vector<MopId> singles = index->SinglesOn(c.channel);
      if (singles.size() < 2) return false;
      std::vector<SelectionDef> defs;
      std::vector<ChannelId> outs;
      defs.reserve(singles.size());
      for (MopId id : singles) {
        const auto& sel = static_cast<const SelectionMop&>(plan->mop(id));
        defs.push_back(sel.member(0).def);
        outs.push_back(plan->output_channel(id, 0));
      }
      MopId formed = plan->AddMop(std::make_unique<PredicateIndexMop>(
          std::move(defs), OutputMode::kPerMemberPorts));
      plan->BindInput(formed, 0, c.channel);
      for (size_t i = 0; i < outs.size(); ++i) {
        plan->BindOutput(formed, static_cast<int>(i), outs[i]);
      }
      for (MopId id : singles) plan->RemoveMop(id);
      ++stats->rule_merges;
      return true;
    }
    case ShareIndex::Candidate::kNone:
      break;
  }
  return false;
}

}  // namespace

IncrementalMergeStats MergeNewQueryIndexed(Plan* plan, ShareIndex* index,
                                           MopId first_fresh,
                                           const OptimizerOptions& options) {
  RUMOR_TRACE_SPAN("MergeNewQueryIndexed");
  RUMOR_CHECK(index->plan() == plan);
  IncrementalMergeStats stats;
  // One benefit-ordered sub-pass over one group of merge kinds: probe every
  // fresh m-op, sort the candidates greedy best-first by estimated saved
  // work (ties oldest-fresh-first — the order the scan path's LiveMops
  // iteration would apply them), re-probe each against the synced index at
  // apply time (earlier merges in the batch can invalidate or improve it)
  // and apply what the index says *now*.
  std::vector<ShareIndex::Candidate> cands;
  auto run_group = [&](uint32_t mask) {
    index->Sync();
    cands.clear();
    for (MopId id = first_fresh; id < plan->num_mops(); ++id) {
      if (!plan->IsLive(id)) continue;
      ShareIndex::Candidate c = index->Probe(id, mask);
      if (c.kind != ShareIndex::Candidate::kNone) cands.push_back(c);
    }
    std::stable_sort(cands.begin(), cands.end(),
                     [](const ShareIndex::Candidate& a,
                        const ShareIndex::Candidate& b) {
                       if (a.benefit != b.benefit) return a.benefit > b.benefit;
                       return a.fresh < b.fresh;
                     });
    int applied = 0;
    for (const ShareIndex::Candidate& c : cands) {
      index->Sync();
      ShareIndex::Candidate now = index->Probe(c.fresh, mask);
      if (now.kind == ShareIndex::Candidate::kNone) continue;
      if (ApplyCandidate(plan, index, now, &stats)) ++applied;
    }
    return applied;
  };
  // The scan path's round is a sequence of *ordered* phases — exact CSE to
  // fixpoint (CseRule), member CSE in one forward pass (MemberCse), then sσ
  // (AttachSelections + PredicateIndexRule), then sα (AttachAggregates) —
  // and each phase sees the rewires of the phases before it in the same
  // round. Replicating that phase structure (rather than one all-kinds
  // batch per round) is what makes the indexed path plan-identical: e.g.
  // an aggregate whose σ was member-merged onto a warm channel is claimed
  // by the member-CSE cascade or this round's sα phase, exactly as the
  // scan decides it, never by the next round's exact-CSE phase.
  for (int round = 0; round < options.max_rounds; ++round) {
    int applied = 0;
    if (options.enable_cse) {
      // Exact CSE cascades to fixpoint within the phase: merging two
      // duplicates can make their (fresh) parents identical.
      while (int n = run_group(
                 ShareIndex::MaskOf(ShareIndex::Candidate::kCseExact))) {
        applied += n;
      }
      // Member CSE is one forward pass in id order with immediate effect:
      // a σ member-merge rewires its downstream α's input onto the warm
      // channel, and the α can then member-match *later in the same pass*
      // (MemberCse's in-pass cascade).
      for (MopId id = first_fresh; id < plan->num_mops(); ++id) {
        if (!plan->IsLive(id)) continue;
        index->Sync();
        ShareIndex::Candidate c = index->Probe(
            id, ShareIndex::MaskOf(ShareIndex::Candidate::kCseMember));
        if (c.kind == ShareIndex::Candidate::kNone) continue;
        if (ApplyCandidate(plan, index, c, &stats)) ++applied;
      }
    }
    if (options.enable_predicate_index) {
      applied += run_group(
          ShareIndex::MaskOf(ShareIndex::Candidate::kAttachSelection) |
          ShareIndex::MaskOf(ShareIndex::Candidate::kFormIndex));
    }
    if (options.enable_shared_aggregate) {
      applied += run_group(
          ShareIndex::MaskOf(ShareIndex::Candidate::kAttachAggregate));
    }
    if (applied == 0) break;
  }
  index->Sync();
  return stats;
}

PruneStats PruneUnreachable(Plan* plan) {
  PruneStats stats;
  // One backward pass from the surviving query outputs answers both
  // questions below: reach 0 on an m-op = no surviving output depends on it
  // (remove); reach 0 on a channel = no surviving query reads it (its
  // member slot can be dropped). O(plan + outputs) — the former per-query
  // refcount walk plus per-output channel rescan was what made RemoveQuery
  // quadratic on large plans. Removing unreachable m-ops cannot change the
  // reach of anything else, so one snapshot serves both phases.
  const Plan::OutputReach reach = plan->ComputeOutputReach();
  for (MopId id : plan->LiveMops()) {
    if (reach.mops[id] == 0) {
      plan->RemoveMop(id);
      ++stats.removed_mops;
    }
  }

  // Member-level teardown on surviving shared m-ops.
  const std::vector<uint8_t>& needed = reach.channels;
  std::vector<MopId> index_rebuilds;
  for (MopId id : plan->LiveMops()) {
    Mop& m = plan->mop(id);
    if (m.type() == MopType::kPredicateIndex) {
      const auto& index = static_cast<const PredicateIndexMop&>(m);
      if (index.output_mode() != OutputMode::kPerMemberPorts) continue;
      bool all_needed = true;
      for (int i = 0; i < index.num_members(); ++i) {
        all_needed &= needed[plan->output_channel(id, i)] != 0;
      }
      if (!all_needed) index_rebuilds.push_back(id);
    } else if (m.type() == MopType::kSharedAggregate ||
               m.type() == MopType::kFragmentAggregate) {
      auto& agg = static_cast<AggregateMop&>(m);
      if (agg.output_mode() != OutputMode::kPerMemberPorts) continue;
      for (int i = 0; i < agg.num_members(); ++i) {
        if (!needed[plan->output_channel(id, i)] && agg.member_active(i)) {
          agg.DeactivateMember(i);
          ++stats.deactivated_members;
        }
      }
    }
  }
  // Predicate indexes are stateless: rebuild them without the members no
  // surviving query reads.
  for (MopId id : index_rebuilds) {
    const auto& index = static_cast<const PredicateIndexMop&>(plan->mop(id));
    std::vector<SelectionDef> defs;
    std::vector<ChannelId> outs;
    for (int i = 0; i < index.num_members(); ++i) {
      ChannelId out = plan->output_channel(id, i);
      if (!needed[out]) {
        ++stats.pruned_index_members;
        continue;
      }
      defs.push_back(index.member(i));
      outs.push_back(out);
    }
    RUMOR_CHECK(!defs.empty()) << "fully unused index should have ref 0";
    ChannelId input = plan->input_channel(id, 0);
    MopId rebuilt = plan->AddMop(std::make_unique<PredicateIndexMop>(
        std::move(defs), OutputMode::kPerMemberPorts));
    plan->BindInput(rebuilt, 0, input);
    for (size_t i = 0; i < outs.size(); ++i) {
      plan->BindOutput(rebuilt, static_cast<int>(i), outs[i]);
    }
    plan->RemoveMop(id);
  }

  stats.collected_channels = plan->GcOrphanChannels();
  return stats;
}

}  // namespace rumor
