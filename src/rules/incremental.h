// Incremental m-rule application for online query churn (paper §2.3, §7):
// because m-rules are local condition/action pairs, a freshly compiled query
// can be merged into an already-optimized *running* plan without re-searching
// the whole space — and, crucially, without disturbing the state of warm
// shared operators.
//
// MergeNewQuery runs the state-preserving subset of the rule catalogue after
// new m-ops were compiled into a live plan:
//   * CSE — a new m-op identical to an existing one (same definition, same
//     input channels) is absorbed by it; the existing m-op always wins, so
//     the new query inherits its warm state (window contents, join buffers).
//   * sσ attach — a new selection snaps onto an existing predicate-index
//     m-op on the same stream (selections are stateless; always safe).
//   * sσ — leftover single selections form new predicate indexes.
//   * sα attach — a new aggregate joins an existing shared-aggregation
//     engine on the same stream with the same fn/attr (windows and group-bys
//     may differ); its state is backfilled from the engine's retained log,
//     so it starts warm up to the log's retention horizon.
//
// The c-family rules are *not* applied incrementally: they rebuild producers
// in channel-output mode, which would discard warm operator state. The s⋈
// rule is likewise skipped live (merging would re-create join state). New
// queries that would only share through those rules run unshared — correct,
// just less shared than a restart would be.
//
// Two drivers implement the merge:
//   * MergeNewQueryIndexed — the production path. Probes the persistent
//     ShareIndex for each fresh m-op (O(1) hash lookups instead of plan
//     scans) and applies the resulting candidates greedily in cost-benefit
//     order (largest estimated saved work first; the benefit tiers encode
//     rule precedence, so the greedy order refines — never contradicts —
//     the fixed rule order). This is what makes AddQuery flat-latency out
//     to 10^5..10^6 standing queries.
//   * MergeNewQuery — the original scan-based path, kept as the oracle:
//     the churn equivalence fuzz asserts both paths produce byte-identical
//     plans and outputs on the same add/remove sequences.
//
// PruneUnreachable implements the removal half: one backward output-reach
// pass (Plan::ComputeOutputReach) drives teardown of exactly the operators
// no surviving query reaches, stateless shared m-ops drop the members only
// removed queries used, shared aggregation engines deactivate theirs, and
// orphaned channels are garbage-collected.
#ifndef RUMOR_RULES_INCREMENTAL_H_
#define RUMOR_RULES_INCREMENTAL_H_

#include <string>

#include "plan/plan.h"
#include "rules/rule_engine.h"
#include "rules/share_index.h"

namespace rumor {

struct IncrementalMergeStats {
  int cse_merges = 0;     // new m-ops absorbed by identical warm m-ops
  int attach_merges = 0;  // members attached to warm sσ/sα targets
  int rule_merges = 0;    // stateless rule merges among leftover m-ops

  int total() const { return cse_merges + attach_merges + rule_merges; }
  std::string ToString() const;
};

// Merges newly compiled m-ops into the live plan (see file comment). Safe to
// run on a plan whose m-ops hold runtime state; existing operators keep
// their state and their output wiring.
//
// Scan-based reference implementation: rediscovers share points by scanning
// all live m-ops (O(plan) per call). Kept as the oracle for the indexed
// path; production callers use MergeNewQueryIndexed.
IncrementalMergeStats MergeNewQuery(Plan* plan,
                                    const OptimizerOptions& options);

// Index-driven merge of the fresh m-ops (live ids >= first_fresh, i.e. the
// plan's num_mops() recorded before the new query compiled) into the live
// plan. Per round: syncs the index, probes every fresh m-op (O(1) each),
// sorts the candidates by descending benefit (ties: lowest fresh id first)
// and applies them greedily, re-probing each at apply time so earlier
// merges in the batch invalidate or improve later ones. Rounds repeat while
// merges cascade (a merged σ exposes the α above it), up to
// options.max_rounds. Produces the same plans as MergeNewQuery (fuzz-
// verified) at O(fresh) cost per add instead of O(plan).
IncrementalMergeStats MergeNewQueryIndexed(Plan* plan, ShareIndex* index,
                                           MopId first_fresh,
                                           const OptimizerOptions& options);

struct PruneStats {
  int removed_mops = 0;          // m-ops no surviving query reaches
  int pruned_index_members = 0;  // members dropped from stateless sσ targets
  int deactivated_members = 0;   // shared-aggregate members deactivated
  int collected_channels = 0;    // channels garbage-collected

  std::string ToString() const;
};

// Tears down everything no surviving query output reaches. Call after
// Plan::UnmarkOutput removed a query's output mark.
PruneStats PruneUnreachable(Plan* plan);

}  // namespace rumor

#endif  // RUMOR_RULES_INCREMENTAL_H_
