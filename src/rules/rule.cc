#include "rules/rule.h"

#include <unordered_map>

#include "common/hash.h"
#include "mop/aggregate_mop.h"
#include "mop/iterate_mop.h"
#include "mop/join_mop.h"
#include "mop/predicate_index_mop.h"
#include "mop/projection_mop.h"
#include "mop/selection_mop.h"
#include "mop/sequence_mop.h"

namespace rumor {

std::unique_ptr<Mop> CloneWithOutputMode(const Mop& mop, OutputMode mode) {
  switch (mop.type()) {
    case MopType::kSelection: {
      const auto& m = static_cast<const SelectionMop&>(mop);
      std::vector<SelectionMop::Member> members;
      for (int i = 0; i < m.num_members(); ++i) members.push_back(m.member(i));
      return std::make_unique<SelectionMop>(std::move(members), mode);
    }
    case MopType::kPredicateIndex: {
      const auto& m = static_cast<const PredicateIndexMop&>(mop);
      std::vector<SelectionDef> members;
      for (int i = 0; i < m.num_members(); ++i) members.push_back(m.member(i));
      return std::make_unique<PredicateIndexMop>(std::move(members), mode);
    }
    case MopType::kChannelSelect: {
      const auto& m = static_cast<const ChannelSelectMop&>(mop);
      return std::make_unique<ChannelSelectMop>(m.def(), m.num_members(),
                                                mode);
    }
    case MopType::kProjection: {
      const auto& m = static_cast<const ProjectionMop&>(mop);
      std::vector<ProjectionMop::Member> members;
      for (int i = 0; i < m.num_members(); ++i) members.push_back(m.member(i));
      return std::make_unique<ProjectionMop>(std::move(members), mode);
    }
    case MopType::kChannelProject: {
      const auto& m = static_cast<const ChannelProjectMop&>(mop);
      return std::make_unique<ChannelProjectMop>(m.def(), m.num_members(),
                                                 mode);
    }
    case MopType::kAggregate:
    case MopType::kSharedAggregate:
    case MopType::kFragmentAggregate: {
      const auto& m = static_cast<const AggregateMop&>(mop);
      std::vector<AggregateMop::Member> members;
      for (int i = 0; i < m.num_members(); ++i) members.push_back(m.member(i));
      return std::make_unique<AggregateMop>(std::move(members), m.sharing(),
                                            mode);
    }
    case MopType::kJoin:
    case MopType::kSharedJoin:
    case MopType::kPrecisionJoin: {
      const auto& m = static_cast<const JoinMop&>(mop);
      std::vector<JoinMop::Member> members;
      for (int i = 0; i < m.num_members(); ++i) members.push_back(m.member(i));
      return std::make_unique<JoinMop>(std::move(members), m.sharing(), mode);
    }
    case MopType::kSequence:
    case MopType::kSharedSequence:
    case MopType::kChannelSequence: {
      const auto& m = static_cast<const SequenceMop&>(mop);
      std::vector<SequenceMop::Member> members;
      for (int i = 0; i < m.num_members(); ++i) members.push_back(m.member(i));
      return std::make_unique<SequenceMop>(std::move(members), m.sharing(),
                                           mode);
    }
    case MopType::kZip:
      // Zips have a single output port and thus never become channel-rule
      // producers; fall through to the unsupported check.
      break;
    case MopType::kIterate:
    case MopType::kSharedIterate:
    case MopType::kChannelIterate: {
      const auto& m = static_cast<const IterateMop&>(mop);
      std::vector<IterateMop::Member> members;
      for (int i = 0; i < m.num_members(); ++i) members.push_back(m.member(i));
      return std::make_unique<IterateMop>(std::move(members), m.sharing(),
                                          mode);
    }
  }
  RUMOR_CHECK(false) << "unsupported mop type for clone";
  return nullptr;
}

// CSE: merge single-member m-ops with identical definitions reading the
// exact same input channels — the plan-level form of Cayuga prefix state
// merging (rules s; and sµ in Table 1; §4.3 of the paper shows the
// correspondence). The kept m-op's output channel absorbs the duplicates'
// consumers; duplicate output streams are remapped for query-output marks.
int CseRule::ApplyAll(Plan* plan, const SharableAnalysis*) {
  int merges = 0;
  bool progress = true;
  // Deduping can make parents identical; iterate to the fixpoint (this is
  // the inductive prefix merge of Fig. 7/8).
  while (progress) {
    progress = false;
    std::unordered_map<uint64_t, std::vector<MopId>> groups;
    for (MopId id : plan->LiveMops()) {
      const Mop& m = plan->mop(id);
      if (m.num_members() != 1 || m.num_outputs() != 1) continue;
      uint64_t key = Mix64(static_cast<uint64_t>(m.type()));
      key = HashCombine(key, m.MemberSignature(0));
      for (ChannelId c : plan->input_channels(id)) {
        key = HashCombine(key, static_cast<uint64_t>(c));
      }
      groups[key].push_back(id);
    }
    for (auto& [key, ids] : groups) {
      if (ids.size() < 2) continue;
      MopId kept = ids[0];
      ChannelId kept_out = plan->output_channel(kept, 0);
      StreamId kept_stream = plan->channel(kept_out).stream_at(0);
      for (size_t i = 1; i < ids.size(); ++i) {
        ChannelId dup_out = plan->output_channel(ids[i], 0);
        StreamId dup_stream = plan->channel(dup_out).stream_at(0);
        plan->MoveConsumers(dup_out, kept_out);
        plan->RemapOutput(dup_stream, kept_stream);
        plan->RemoveMop(ids[i]);
        ++merges;
      }
      progress = true;
    }
  }
  return merges;
}

}  // namespace rumor
