// M-rules (paper §2.3): a transformation rule on plans of m-ops. Each rule
// is a (condition, action) pair — the condition identifies a set of m-ops
// with a sharing opportunity, the action replaces that set with a single
// target m-op, rebinding channel edges.
//
// The rules implemented here are the Table-1 catalogue:
//   CseRule             — common subexpression elimination; subsumes s; and
//                         sµ (≡ Cayuga prefix state merging, §4.3) and exact
//                         duplicates of every other operator type.
//   PredicateIndexRule  — sσ: selections on one stream -> predicate index
//                         (the Cayuga FR/AN index translation).
//   SharedAggregateRule — sα: same-stream aggregates, shared state.
//   SharedJoinRule      — s⋈: same-stream joins, different windows.
//   ChannelRule         — the c-family (cσ, cπ, cα, c⋈, c;, cµ): maps
//                         sharable streams from one producer onto a channel
//                         and merges the same-definition consumers
//                         (channel_mapper.cc enforces the §3.2 criteria).
#ifndef RUMOR_RULES_RULE_H_
#define RUMOR_RULES_RULE_H_

#include <memory>
#include <string>

#include "plan/plan.h"
#include "rules/sharable.h"

namespace rumor {

class MRule {
 public:
  virtual ~MRule() = default;
  virtual std::string name() const = 0;
  // One full pass: evaluates the condition over the current plan (all
  // candidate groups) and applies the action to each qualifying group.
  // Returns the number of merges performed. `sharable` may be null for
  // rules that do not consult the ~ relation (they match on exact channel
  // identity); rules that need it must CHECK it is present.
  virtual int ApplyAll(Plan* plan, const SharableAnalysis* sharable) = 0;
};

class CseRule : public MRule {
 public:
  std::string name() const override { return "cse(s;/sµ)"; }
  int ApplyAll(Plan* plan, const SharableAnalysis* sharable) override;
};

class PredicateIndexRule : public MRule {
 public:
  std::string name() const override { return "sσ"; }
  int ApplyAll(Plan* plan, const SharableAnalysis* sharable) override;
};

class SharedAggregateRule : public MRule {
 public:
  std::string name() const override { return "sα"; }
  int ApplyAll(Plan* plan, const SharableAnalysis* sharable) override;
};

class SharedJoinRule : public MRule {
 public:
  std::string name() const override { return "s⋈"; }
  int ApplyAll(Plan* plan, const SharableAnalysis* sharable) override;
};

class ChannelRule : public MRule {
 public:
  std::string name() const override { return "cτ(channels)"; }
  int ApplyAll(Plan* plan, const SharableAnalysis* sharable) override;
};

// Rebuilds an (un-executed) m-op with a different output mode; used when the
// channel rule turns a producer's per-member output ports into one channel
// port. Supports every merged m-op type.
std::unique_ptr<Mop> CloneWithOutputMode(const Mop& mop, OutputMode mode);

}  // namespace rumor

#endif  // RUMOR_RULES_RULE_H_
