#include "rules/rule_engine.h"

#include <cstdio>
#include <sstream>

#include "common/trace.h"
#include "rules/incremental.h"
#include "rules/share_index.h"

namespace rumor {

std::string OptimizeStats::ToString() const {
  std::ostringstream os;
  os << "OptimizeStats{cse=" << cse_merges
     << " sσ=" << predicate_index_merges
     << " sα=" << shared_aggregate_merges << " s⋈=" << shared_join_merges
     << " c*=" << channel_merges << " rounds=" << rounds;
  if (dynamic_adds > 0 || dynamic_removes > 0) {
    os << " adds=" << dynamic_adds << " removes=" << dynamic_removes
       << " inc_cse=" << incremental_cse_merges
       << " inc_attach=" << incremental_attach_merges
       << " inc_rules=" << incremental_rule_merges
       << " pruned_mops=" << pruned_mops
       << " pruned_members=" << pruned_members;
  }
  if (queries > 0) {
    os << " | sharing: " << queries << " queries -> " << live_mops
       << " m-ops (" << total_members << " members, " << shared_mops
       << " shared)";
    char buf[64];
    std::snprintf(buf, sizeof(buf), ", %.2f m-ops/query", mops_per_query());
    os << buf;
  }
  os << "}";
  return os.str();
}

std::vector<int> RuleEngine::Run(Plan* plan, const SharableAnalysis& sharable,
                                 int max_rounds) {
  std::vector<int> merges(rules_.size(), 0);
  for (int round = 0; round < max_rounds; ++round) {
    int round_merges = 0;
    for (size_t i = 0; i < rules_.size(); ++i) {
      int n = rules_[i]->ApplyAll(plan, &sharable);
      merges[i] += n;
      round_merges += n;
#ifndef NDEBUG
      // Every rule application must leave the plan consistent (fully bound
      // ports, single producers, acyclic, no dead-channel wiring).
      if (n > 0) plan->Validate();
#endif
    }
    if (round_merges == 0) break;
  }
  return merges;
}

OptimizeStats Optimize(Plan* plan, const OptimizerOptions& options,
                       ShareIndex* index) {
  RUMOR_TRACE_SPAN("Optimize");
  OptimizeStats stats;
  if (index != nullptr && options.use_share_index) {
    // Seeded pass: resolve CSE and sσ through the index up front. sα/s⋈
    // and the c-family stay with their scan rules (their batch plan shapes
    // depend on whole-group decisions the per-m-op probe does not make).
    OptimizerOptions seeded = options;
    seeded.enable_shared_aggregate = false;
    IncrementalMergeStats pre = MergeNewQueryIndexed(plan, index, 0, seeded);
    stats.cse_merges += pre.cse_merges;
    stats.predicate_index_merges += pre.attach_merges + pre.rule_merges;
  }
  SharableAnalysis sharable(*plan);

  RuleEngine engine;
  // Registration order = priority order.
  std::vector<int> which;  // maps engine slot -> stats slot
  if (options.enable_cse) {
    engine.AddRule(std::make_unique<CseRule>());
    which.push_back(0);
  }
  auto add_channels = [&] {
    if (options.enable_channels) {
      engine.AddRule(std::make_unique<ChannelRule>());
      which.push_back(4);
    }
  };
  if (options.channel_rules_first) add_channels();
  if (options.enable_predicate_index) {
    engine.AddRule(std::make_unique<PredicateIndexRule>());
    which.push_back(1);
  }
  if (options.enable_shared_aggregate) {
    engine.AddRule(std::make_unique<SharedAggregateRule>());
    which.push_back(2);
  }
  if (options.enable_shared_join) {
    engine.AddRule(std::make_unique<SharedJoinRule>());
    which.push_back(3);
  }
  if (!options.channel_rules_first) add_channels();

  std::vector<int> merges = engine.Run(plan, sharable, options.max_rounds);

  for (size_t i = 0; i < merges.size(); ++i) {
    switch (which[i]) {
      case 0: stats.cse_merges += merges[i]; break;
      case 1: stats.predicate_index_merges += merges[i]; break;
      case 2: stats.shared_aggregate_merges += merges[i]; break;
      case 3: stats.shared_join_merges += merges[i]; break;
      case 4: stats.channel_merges += merges[i]; break;
    }
  }
  stats.rounds = options.max_rounds;
  FillSharingQuality(*plan, &stats);
  plan->Validate();
  if (index != nullptr) index->Sync();
  return stats;
}

void FillSharingQuality(const Plan& plan, OptimizeStats* stats) {
  stats->queries = static_cast<int>(plan.outputs().size());
  stats->live_mops = 0;
  stats->total_members = 0;
  stats->shared_mops = 0;
  // One backward pass; saturated-at-2 reach is exactly the shared/unshared
  // distinction this snapshot needs (the per-query refcount walk it
  // replaces was O(outputs × cone) — quadratic at 10^5 queries).
  const Plan::OutputReach reach = plan.ComputeOutputReach();
  for (MopId id : plan.LiveMops()) {
    ++stats->live_mops;
    stats->total_members += plan.mop(id).num_members();
    if (reach.mops[id] >= 2) ++stats->shared_mops;
  }
}

}  // namespace rumor
