// RuleEngine: priority-ordered, fixpoint application of m-rules (paper §2.3
// and §7: rule priorities establish the application order; no cost model —
// the paper defers cost-based MQO to future work).
//
// Default priority order (matches the derivation of §4.4):
//   1. CSE (s;/sµ + exact duplicates of every operator type),
//   2. same-stream rules (sσ, sα, s⋈),
//   3. channel mapping + channel rules (cσ, cπ, cα, c⋈, c;, cµ).
#ifndef RUMOR_RULES_RULE_ENGINE_H_
#define RUMOR_RULES_RULE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "rules/rule.h"

namespace rumor {

class ShareIndex;

struct OptimizerOptions {
  bool enable_cse = true;
  bool enable_predicate_index = true;  // sσ
  bool enable_shared_aggregate = true;  // sα
  bool enable_shared_join = true;       // s⋈
  bool enable_channels = true;          // the c-family
  // Paper §3.3: several m-rules can be applicable to the same operators
  // (the shaded region X of Fig. 2/3), and different application orders can
  // yield different plans. This flag flips the channel rules ahead of the
  // same-stream rules; plans may differ, query outputs must not (tested).
  bool channel_rules_first = false;
  // Resolve CSE and sσ share points through the persistent ShareIndex
  // (near-O(1) probes per m-op) instead of whole-plan rule scans, both in
  // the batch Optimize seeded pass and in live AddQuery merging. The
  // scan-based path stays available as the correctness oracle.
  bool use_share_index = true;
  int max_rounds = 8;
};

struct OptimizeStats {
  int cse_merges = 0;
  int predicate_index_merges = 0;
  int shared_aggregate_merges = 0;
  int shared_join_merges = 0;
  int channel_merges = 0;
  int rounds = 0;

  // --- online query churn (after Start) --------------------------------------
  // Queries added to / removed from the running engine.
  int dynamic_adds = 0;
  int dynamic_removes = 0;
  // Merges performed by the incremental passes during live adds: new m-ops
  // absorbed by identical warm m-ops or existing shared members (CSE),
  // members attached to warm sσ/sα targets, and stateless rule merges among
  // the leftovers.
  int incremental_cse_merges = 0;
  int incremental_attach_merges = 0;
  int incremental_rule_merges = 0;
  // Teardown work performed by RemoveQuery unsharing.
  int pruned_mops = 0;
  int pruned_members = 0;

  // --- sharing quality (ROADMAP: "report sharing quality in OptimizeStats") --
  // Snapshot of the current plan, filled by Optimize(). NOT refreshed by
  // live add/remove (the refcount walk would tax the latency-critical add
  // path); StreamEngine::CollectMetrics() recomputes it on demand.
  int queries = 0;       // query outputs the plan serves
  int live_mops = 0;     // m-ops actually scheduled
  int total_members = 0; // member operators those m-ops implement
  int shared_mops = 0;   // m-ops reached by more than one query

  // The paper's fig9/fig10 argument in one number: how many m-ops each
  // query costs after merging (1.0/N best case for N identical queries).
  double mops_per_query() const {
    return queries > 0 ? static_cast<double>(live_mops) / queries : 0.0;
  }
  // Operator-collapse factor: members implemented per scheduled m-op.
  double members_per_mop() const {
    return live_mops > 0 ? static_cast<double>(total_members) / live_mops
                         : 0.0;
  }

  // Merges performed at Start() (the static optimization pass).
  int total() const {
    return cse_merges + predicate_index_merges + shared_aggregate_merges +
           shared_join_merges + channel_merges;
  }
  // Merges performed by live adds after Start().
  int incremental_total() const {
    return incremental_cse_merges + incremental_attach_merges +
           incremental_rule_merges;
  }
  std::string ToString() const;
};

// Extensible engine: rules run in registration order each round, until a
// round performs no merge (or max_rounds).
class RuleEngine {
 public:
  void AddRule(std::unique_ptr<MRule> rule) {
    rules_.push_back(std::move(rule));
  }
  int num_rules() const { return static_cast<int>(rules_.size()); }
  // Returns per-rule merge counts, in registration order.
  std::vector<int> Run(Plan* plan, const SharableAnalysis& sharable,
                       int max_rounds);

 private:
  std::vector<std::unique_ptr<MRule>> rules_;
};

// Computes SharableAnalysis on `plan`, registers the Table-1 rules enabled
// in `options`, and runs the engine to a fixpoint. With a non-null `index`
// (and options.use_share_index), a seeded pass first resolves all CSE and
// sσ share points through the index — O(live) hash probes instead of
// repeated whole-plan scans — so startup compilation of very large query
// populations stops being quadratic; the scan rules then only handle what
// the index does not cover (sα, s⋈, the c-family) plus any opportunities
// those rules expose. The index is synced before returning.
OptimizeStats Optimize(Plan* plan, const OptimizerOptions& options = {},
                       ShareIndex* index = nullptr);

// Recomputes the sharing-quality snapshot fields of `stats` from the current
// plan (queries, live m-ops, members, shared m-ops). Optimize() calls this;
// CollectEngineMetrics performs the same sync for a running engine.
void FillSharingQuality(const Plan& plan, OptimizeStats* stats);

}  // namespace rumor

#endif  // RUMOR_RULES_RULE_ENGINE_H_
