#include <unordered_map>

#include "common/hash.h"
#include "mop/aggregate_mop.h"
#include "rules/rule.h"

namespace rumor {

// sα (paper Table 1, [Zhang 05]): aggregation operators reading the same
// stream with the same aggregate function and attribute — but possibly
// different group-by specifications and window lengths — share one entry
// log with per-member cursors. Members keep their original output channels.
int SharedAggregateRule::ApplyAll(Plan* plan, const SharableAnalysis*) {
  std::unordered_map<uint64_t, std::vector<MopId>> groups;
  for (MopId id : plan->LiveMops()) {
    const Mop& m = plan->mop(id);
    if (m.type() != MopType::kAggregate || m.num_members() != 1 ||
        m.num_outputs() != 1) {
      continue;
    }
    const auto& agg = static_cast<const AggregateMop&>(m);
    const AggMemberSpec& spec = agg.member(0).spec;
    uint64_t key =
        Mix64(static_cast<uint64_t>(plan->input_channel(id, 0)));
    key = HashCombine(key, static_cast<uint64_t>(spec.fn));
    key = HashCombine(key, static_cast<uint64_t>(spec.attr));
    key = HashCombine(key, static_cast<uint64_t>(agg.member(0).input_slot));
    groups[key].push_back(id);
  }
  int merges = 0;
  for (auto& [key, ids] : groups) {
    if (ids.size() < 2) continue;
    std::vector<AggregateMop::Member> members;
    std::vector<ChannelId> outputs;
    for (MopId id : ids) {
      const auto& agg = static_cast<const AggregateMop&>(plan->mop(id));
      members.push_back(agg.member(0));
      outputs.push_back(plan->output_channel(id, 0));
    }
    ChannelId input = plan->input_channel(ids[0], 0);
    MopId target = plan->AddMop(std::make_unique<AggregateMop>(
        std::move(members), AggregateMop::Sharing::kShared,
        OutputMode::kPerMemberPorts));
    plan->BindInput(target, 0, input);
    for (size_t i = 0; i < outputs.size(); ++i) {
      plan->BindOutput(target, static_cast<int>(i), outputs[i]);
    }
    for (MopId id : ids) plan->RemoveMop(id);
    ++merges;
  }
  return merges;
}

}  // namespace rumor
