#include <unordered_map>

#include "common/hash.h"
#include "mop/join_mop.h"
#include "rules/rule.h"

namespace rumor {

// s⋈ (paper Table 1, [Hammad 03]): join operators reading the same two
// streams with the same join predicate but potentially different window
// lengths share one join state; matches are routed per member by window
// coverage. Members keep their original output channels.
int SharedJoinRule::ApplyAll(Plan* plan, const SharableAnalysis*) {
  std::unordered_map<uint64_t, std::vector<MopId>> groups;
  for (MopId id : plan->LiveMops()) {
    const Mop& m = plan->mop(id);
    if (m.type() != MopType::kJoin || m.num_members() != 1 ||
        m.num_outputs() != 1) {
      continue;
    }
    const auto& join = static_cast<const JoinMop&>(m);
    const JoinMop::Member& member = join.member(0);
    uint64_t key = Mix64(static_cast<uint64_t>(plan->input_channel(id, 0)));
    key = HashCombine(key, static_cast<uint64_t>(plan->input_channel(id, 1)));
    key = HashCombine(key, member.def.PredicateOnlySignature());
    key = HashCombine(key, static_cast<uint64_t>(member.left_slot));
    key = HashCombine(key, static_cast<uint64_t>(member.right_slot));
    groups[key].push_back(id);
  }
  int merges = 0;
  for (auto& [key, ids] : groups) {
    if (ids.size() < 2) continue;
    std::vector<JoinMop::Member> members;
    std::vector<ChannelId> outputs;
    for (MopId id : ids) {
      const auto& join = static_cast<const JoinMop&>(plan->mop(id));
      members.push_back(join.member(0));
      outputs.push_back(plan->output_channel(id, 0));
    }
    ChannelId left = plan->input_channel(ids[0], 0);
    ChannelId right = plan->input_channel(ids[0], 1);
    MopId target = plan->AddMop(std::make_unique<JoinMop>(
        std::move(members), JoinMop::Sharing::kShared,
        OutputMode::kPerMemberPorts));
    plan->BindInput(target, 0, left);
    plan->BindInput(target, 1, right);
    for (size_t i = 0; i < outputs.size(); ++i) {
      plan->BindOutput(target, static_cast<int>(i), outputs[i]);
    }
    for (MopId id : ids) plan->RemoveMop(id);
    ++merges;
  }
  return merges;
}

}  // namespace rumor
