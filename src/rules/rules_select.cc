#include <unordered_map>

#include "mop/predicate_index_mop.h"
#include "mop/selection_mop.h"
#include "rules/rule.h"

namespace rumor {

// sσ (paper §2.4, Table 1): a set of selection operators reading the same
// stream is replaced by one predicate-index m-op. Applies to *all*
// selections on the stream — indexable equality predicates go into hash
// indexes, the rest are evaluated sequentially inside the target m-op (the
// paper's §5.3 workload relies on this for non-indexable starting
// conditions). Each member keeps its original output channel, so consumers
// are untouched.
int PredicateIndexRule::ApplyAll(Plan* plan, const SharableAnalysis*) {
  std::unordered_map<ChannelId, std::vector<MopId>> by_input;
  for (MopId id : plan->LiveMops()) {
    const Mop& m = plan->mop(id);
    if (m.type() != MopType::kSelection || m.num_members() != 1 ||
        m.num_outputs() != 1) {
      continue;
    }
    const auto& sel = static_cast<const SelectionMop&>(m);
    if (sel.member(0).input_slot != 0) continue;
    by_input[plan->input_channel(id, 0)].push_back(id);
  }
  int merges = 0;
  for (auto& [input, ids] : by_input) {
    if (ids.size() < 2) continue;
    std::vector<SelectionDef> defs;
    std::vector<ChannelId> outputs;
    defs.reserve(ids.size());
    for (MopId id : ids) {
      const auto& sel = static_cast<const SelectionMop&>(plan->mop(id));
      defs.push_back(sel.member(0).def);
      outputs.push_back(plan->output_channel(id, 0));
    }
    MopId target = plan->AddMop(std::make_unique<PredicateIndexMop>(
        std::move(defs), OutputMode::kPerMemberPorts));
    plan->BindInput(target, 0, input);
    for (size_t i = 0; i < outputs.size(); ++i) {
      plan->BindOutput(target, static_cast<int>(i), outputs[i]);
    }
    for (MopId id : ids) plan->RemoveMop(id);
    ++merges;
  }
  return merges;
}

}  // namespace rumor
