#include "rules/sharable.h"

#include "common/hash.h"

namespace rumor {

namespace {

// Domain tags keep source / operator signatures from colliding.
constexpr uint64_t kTagLabeledSource = 0x517a;
constexpr uint64_t kTagUniqueSource = 0x9b3f;
constexpr uint64_t kTagOperator = 0x2ee1;

}  // namespace

SharableAnalysis::SharableAnalysis(const Plan& plan)
    : signatures_(plan.streams().size(), 0),
      computing_(plan.streams().size(), false),
      producer_mop_(plan.num_channels(), kInvalidMop),
      channel_of_(plan.streams().size(), kInvalidChannel) {
  for (int m = 0; m < plan.num_mops(); ++m) {
    if (!plan.IsLive(m)) continue;
    for (ChannelId c : plan.output_channels(m)) {
      if (c != kInvalidChannel) producer_mop_[c] = m;
    }
  }
  for (ChannelId c = 0; c < plan.num_channels(); ++c) {
    if (plan.channel(c).capacity() != 1 || producer_mop_[c] == kInvalidMop) {
      continue;
    }
    StreamId s = plan.channel(c).stream_at(0);
    if (channel_of_[s] == kInvalidChannel) channel_of_[s] = c;
  }
  for (StreamId s = 0; s < plan.streams().size(); ++s) {
    Compute(plan, s);
  }
}

bool SharableAnalysis::AllSharable(
    const std::vector<StreamId>& streams) const {
  for (size_t i = 1; i < streams.size(); ++i) {
    if (!Sharable(streams[0], streams[i])) return false;
  }
  return true;
}

uint64_t SharableAnalysis::Compute(const Plan& plan, StreamId stream) {
  if (signatures_[stream] != 0) return signatures_[stream];
  RUMOR_CHECK(!computing_[stream]) << "cycle in stream derivation";
  computing_[stream] = true;

  const StreamDef& def = plan.streams().Get(stream);
  uint64_t sig;
  if (def.is_source) {
    // Base case 2: sources with the same non-negative label are sharable;
    // unlabeled sources are sharable only with themselves (base case 1).
    sig = def.sharable_label >= 0
              ? HashCombine(Mix64(kTagLabeledSource),
                            static_cast<uint64_t>(def.sharable_label))
              : HashCombine(Mix64(kTagUniqueSource),
                            static_cast<uint64_t>(stream));
  } else {
    // The producing m-op. Derived streams in a compiled plan live in
    // exactly one capacity-1 channel with one producer (precomputed).
    ChannelId channel = channel_of_[stream];
    MopId producer = channel == kInvalidChannel ? kInvalidMop
                                                : producer_mop_[channel];
    if (producer == kInvalidMop) {
      // Unconnected derived stream: unique signature.
      sig = HashCombine(Mix64(kTagUniqueSource),
                        static_cast<uint64_t>(stream) ^ 0xdead);
    } else {
      const Mop& mop = plan.mop(producer);
      // Selection transparency: σ(T) ~ T.
      if (mop.type() == MopType::kSelection ||
          mop.type() == MopType::kPredicateIndex ||
          mop.type() == MopType::kChannelSelect) {
        ChannelId in = plan.input_channel(producer, 0);
        // In a compiled plan selection inputs are capacity-1.
        sig = Compute(plan, plan.channel(in).stream_at(0));
      } else {
        uint64_t h = Mix64(kTagOperator);
        h = HashCombine(h, static_cast<uint64_t>(mop.type()));
        h = HashCombine(h, mop.MemberSignature(0));
        for (int p = 0; p < mop.num_inputs(); ++p) {
          ChannelId in = plan.input_channel(producer, p);
          h = HashCombine(h, Compute(plan, plan.channel(in).stream_at(0)));
        }
        sig = h;
      }
    }
  }
  if (sig == 0) sig = 1;  // reserve 0 for "unset"
  computing_[stream] = false;
  signatures_[stream] = sig;
  return sig;
}

}  // namespace rumor
