// SharableAnalysis — the ~ equivalence relation on streams (paper §3.2).
//
// S1 ~ S2 is the least equivalence relation closed under:
//   base 1:  S ~ S;
//   base 2:  sources labeled sharable (same non-negative sharable_label);
//   unary:   o(T1) ~ o(T2)        if o1 = o2 (same definition) and T1 ~ T2;
//   binary:  o(T1,U1) ~ o(T2,U2)  likewise on both inputs;
//   select:  σ(T) ~ T             (selections are transparent).
//
// Implemented with structural signatures: the signature of a stream strips
// selection operators and hashes (operator type, operator definition, input
// signatures); equal signature <=> sharable. Reflexivity, symmetry and
// transitivity hold by construction of the equality relation on signatures.
//
// The analysis is computed once on the freshly compiled plan (single-member
// reference m-ops); streams are never destroyed by rewrites, so signatures
// stay valid while rules transform the plan.
#ifndef RUMOR_RULES_SHARABLE_H_
#define RUMOR_RULES_SHARABLE_H_

#include <vector>

#include "plan/plan.h"

namespace rumor {

class SharableAnalysis {
 public:
  // `plan` must be a compiled, not-yet-optimized plan.
  explicit SharableAnalysis(const Plan& plan);

  // Structural signature of a stream; equal signatures <=> sharable.
  uint64_t SignatureOf(StreamId stream) const {
    RUMOR_DCHECK(stream >= 0 &&
                 stream < static_cast<StreamId>(signatures_.size()));
    return signatures_[stream];
  }

  bool Sharable(StreamId a, StreamId b) const {
    return SignatureOf(a) == SignatureOf(b);
  }

  // True if every stream in the list is pairwise sharable.
  bool AllSharable(const std::vector<StreamId>& streams) const;

 private:
  uint64_t Compute(const Plan& plan, StreamId stream);

  std::vector<uint64_t> signatures_;  // by stream id; 0 = not yet computed
  std::vector<bool> computing_;       // cycle guard (plans are DAGs)
  // Construction-time lookup tables (one pass over the plan instead of a
  // channel scan per stream): producing m-op by channel, and the first
  // produced capacity-1 channel carrying each stream.
  std::vector<MopId> producer_mop_;        // by channel id; kInvalidMop
  std::vector<ChannelId> channel_of_;      // by stream id; kInvalidChannel
};

}  // namespace rumor

#endif  // RUMOR_RULES_SHARABLE_H_
