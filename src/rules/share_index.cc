#include "rules/share_index.h"

#include <algorithm>
#include <sstream>
#include <type_traits>

#include "common/hash.h"
#include "mop/aggregate_mop.h"
#include "mop/join_mop.h"
#include "mop/predicate_index_mop.h"
#include "mop/selection_mop.h"

namespace rumor {
namespace {

// Benefit tiers follow rule precedence (see header); the traffic bonus is
// bounded below the tier gap so greedy order never crosses precedence.
constexpr double kBenefitCseExact = 4000.0;
constexpr double kBenefitCseMember = 3000.0;
constexpr double kBenefitAttachSelection = 2000.0;
constexpr double kBenefitAttachAggregate = 1500.0;
constexpr double kBenefitFormIndex = 1000.0;

double BenefitOf(double base, const Mop* target) {
  double traffic = target == nullptr
                       ? 0.0
                       : static_cast<double>(target->tuples_in());
  return base + 99.0 * traffic / (traffic + 1024.0);
}

// Bit-identical to CseRule's group key (rules/rule.cc) — probes against this
// table reproduce the scan-based rule's grouping exactly, hash collisions
// and all.
uint64_t ExactKey(const Plan& plan, MopId id, const Mop& m) {
  uint64_t key = Mix64(static_cast<uint64_t>(m.type()));
  key = HashCombine(key, m.MemberSignature(0));
  for (ChannelId c : plan.input_channels(id)) {
    key = HashCombine(key, static_cast<uint64_t>(c));
  }
  return key;
}

uint64_t MemberKey(MopType shared_type, uint64_t signature,
                   const std::vector<ChannelId>& inputs) {
  uint64_t key = Mix64(0x6d656d6265726373ull ^
                       static_cast<uint64_t>(shared_type));
  key = HashCombine(key, signature);
  for (ChannelId c : inputs) {
    key = HashCombine(key, static_cast<uint64_t>(c));
  }
  return key;
}

// Bit-identical to AttachAggregates' target key (the scan path) so target
// selection matches it exactly.
uint64_t AggKey(const Plan& plan, MopId id, const AggregateMop& agg) {
  uint64_t key = Mix64(static_cast<uint64_t>(plan.input_channel(id, 0)));
  key = HashCombine(key, static_cast<uint64_t>(agg.member(0).spec.fn));
  key = HashCombine(key, static_cast<uint64_t>(agg.member(0).spec.attr));
  key = HashCombine(key, static_cast<uint64_t>(agg.member(0).input_slot));
  return key;
}

// The per-member-port merged target type a single-member m-op can join.
bool SharedTypeFor(MopType type, MopType* shared) {
  switch (type) {
    case MopType::kSelection: *shared = MopType::kPredicateIndex; return true;
    case MopType::kAggregate: *shared = MopType::kSharedAggregate; return true;
    case MopType::kJoin: *shared = MopType::kSharedJoin; return true;
    default: return false;
  }
}

bool IsMemberTargetType(MopType type) {
  return type == MopType::kPredicateIndex ||
         type == MopType::kSharedAggregate || type == MopType::kSharedJoin;
}

}  // namespace

ShareIndex::ShareIndex(Plan* plan) : plan_(plan) {
  cursor_ = plan_->mutation_seq();
  Rebuild();
}

void ShareIndex::Sync() {
  std::vector<PlanEvent> events;
  if (!plan_->ReadEventsSince(cursor_, &events)) {
    cursor_ = plan_->mutation_seq();
    Rebuild();
    return;
  }
  cursor_ = plan_->mutation_seq();
  if (events.empty()) return;
  for (const PlanEvent& e : events) {
    if (e.kind == PlanEvent::kBulk) {
      Rebuild();
      return;
    }
  }
  // Classify per m-op: a target that only *grew* (kMopGrew — a new member
  // port bound by an attach) takes an append-only path that indexes just
  // the new members, keeping each attach O(1) instead of O(members). That
  // distinction is what keeps per-add latency flat as a popular σ-index or
  // sα target accumulates thousands of members. Any other event on the
  // m-op (rebinds, removal, in-place mutation) forces the full reindex.
  struct DirtyMop {
    MopId id;
    int grew = 0;
    bool other = false;
  };
  std::vector<DirtyMop> dirty;
  auto dirty_of = [&dirty](MopId id) -> DirtyMop& {
    for (DirtyMop& d : dirty) {
      if (d.id == id) return d;
    }
    dirty.push_back({id, 0, false});
    return dirty.back();
  };
  for (const PlanEvent& e : events) {
    switch (e.kind) {
      case PlanEvent::kMopGrew:
        ++dirty_of(e.a).grew;
        break;
      case PlanEvent::kMopAdded:
      case PlanEvent::kMopRemoved:
      case PlanEvent::kMopMutated:
      case PlanEvent::kInputBound:
      case PlanEvent::kOutputBound:
        dirty_of(e.a).other = true;
        break;
      default:
        break;  // channel/output-mark events do not change index content
    }
  }
  std::sort(dirty.begin(), dirty.end(),
            [](const DirtyMop& a, const DirtyMop& b) { return a.id < b.id; });
  for (const DirtyMop& d : dirty) {
    if (d.other || !GrowMop(d.id, d.grew)) ReindexMop(d.id);
  }
}

// Append-only maintenance for a per-member-port target whose only change
// since the last Sync is `grew` new member ports: index members
// [old_count, num_members) and leave every existing entry in place. Returns
// false (no state touched) when the precondition cannot be proven, in which
// case the caller falls back to the full reindex:
//  * the m-op must already be indexed (its pre-growth entries are valid);
//  * it must have had >= 2 indexed members — growing past a single-member
//    m-op retracts exact_/sel_singles_ entries, which append-only cannot do;
//  * the member count must equal old + grew with every port bound (growth
//    and nothing else happened).
bool ShareIndex::GrowMop(MopId id, int grew) {
  if (grew <= 0 || !plan_->IsLive(id)) return false;
  auto it = postings_.find(id);
  if (it == postings_.end()) return false;
  const Mop& m = plan_->mop(id);
  if (!IsMemberTargetType(m.type())) return false;
  // Member postings cover exactly members [0, k) (IndexMop posts them
  // contiguously, growth appends contiguously), so the highest member index
  // near the tail gives the count — counting them all would re-introduce the
  // O(members)-per-attach cost this path exists to avoid.
  int old_members = 0;
  for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
    if (rit->table == Posting::kMember) {
      old_members = rit->member + 1;
      break;
    }
  }
  if (old_members < 2) return false;
  if (m.num_members() != old_members + grew) return false;
  if (m.num_outputs() != m.num_members() ||
      static_cast<int>(plan_->output_channels(id).size()) != m.num_outputs()) {
    return false;
  }
  for (int i = old_members; i < m.num_members(); ++i) {
    if (plan_->output_channel(id, i) == kInvalidChannel) return false;
  }
  for (int i = old_members; i < m.num_members(); ++i) {
    uint64_t key =
        MemberKey(m.type(), m.MemberSignature(i), plan_->input_channels(id));
    member_[key].push_back({id, i});
    it->second.push_back({Posting::kMember, key, i});
  }
  return true;
}

void ShareIndex::Rebuild() {
  exact_.clear();
  member_.clear();
  index_targets_.clear();
  sel_singles_.clear();
  agg_targets_.clear();
  postings_.clear();
  for (MopId id : plan_->LiveMops()) IndexMop(id);
}

void ShareIndex::ReindexMop(MopId id) {
  UnindexMop(id);
  IndexMop(id);
}

void ShareIndex::UnindexMop(MopId id) {
  auto it = postings_.find(id);
  if (it == postings_.end()) return;
  auto erase_id = [id](auto& table, uint64_t key) {
    auto bucket = table.find(key);
    RUMOR_CHECK(bucket != table.end());
    auto& v = bucket->second;
    for (size_t i = 0; i < v.size(); ++i) {
      if (v[i] == id) {
        v[i] = v.back();
        v.pop_back();
        if (v.empty()) table.erase(bucket);
        return;
      }
    }
    RUMOR_CHECK(false) << "share-index posting out of sync for m-op " << id;
  };
  for (const Posting& p : it->second) {
    switch (p.table) {
      case Posting::kExact:
        erase_id(exact_, p.key);
        break;
      case Posting::kMember: {
        auto bucket = member_.find(p.key);
        RUMOR_CHECK(bucket != member_.end());
        auto& v = bucket->second;
        bool found = false;
        for (size_t i = 0; i < v.size() && !found; ++i) {
          if (v[i].mop == id && v[i].member == p.member) {
            v[i] = v.back();
            v.pop_back();
            found = true;
          }
        }
        RUMOR_CHECK(found) << "member posting out of sync for m-op " << id;
        if (v.empty()) member_.erase(bucket);
        break;
      }
      case Posting::kIndexTarget:
        erase_id(index_targets_, static_cast<ChannelId>(p.key));
        break;
      case Posting::kSelSingle:
        erase_id(sel_singles_, static_cast<ChannelId>(p.key));
        break;
      case Posting::kAggTarget:
        erase_id(agg_targets_, p.key);
        break;
    }
  }
  postings_.erase(it);
}

void ShareIndex::IndexMop(MopId id) {
  if (!plan_->IsLive(id)) return;
  const Mop& m = plan_->mop(id);
  // Only fully wired m-ops are indexed; a partially compiled one is
  // re-indexed when its remaining bind events arrive.
  for (ChannelId c : plan_->input_channels(id)) {
    if (c == kInvalidChannel) return;
  }
  if (static_cast<int>(plan_->output_channels(id).size()) !=
      m.num_outputs()) {
    return;
  }
  for (ChannelId c : plan_->output_channels(id)) {
    if (c == kInvalidChannel) return;
  }
  std::vector<Posting> posts;
  if (m.num_members() == 1 && m.num_outputs() == 1) {
    uint64_t key = ExactKey(*plan_, id, m);
    exact_[key].push_back(id);
    posts.push_back({Posting::kExact, key, -1});
  }
  if (IsMemberTargetType(m.type())) {
    for (int i = 0; i < m.num_members(); ++i) {
      uint64_t key =
          MemberKey(m.type(), m.MemberSignature(i), plan_->input_channels(id));
      member_[key].push_back({id, i});
      posts.push_back({Posting::kMember, key, i});
    }
  }
  if (m.type() == MopType::kPredicateIndex) {
    const auto& index = static_cast<const PredicateIndexMop&>(m);
    if (index.output_mode() == OutputMode::kPerMemberPorts) {
      ChannelId in = plan_->input_channel(id, 0);
      index_targets_[in].push_back(id);
      posts.push_back(
          {Posting::kIndexTarget, static_cast<uint64_t>(in), -1});
    }
  }
  if (m.type() == MopType::kSelection && m.num_members() == 1 &&
      m.num_outputs() == 1) {
    const auto& sel = static_cast<const SelectionMop&>(m);
    if (sel.member(0).input_slot == 0) {
      ChannelId in = plan_->input_channel(id, 0);
      sel_singles_[in].push_back(id);
      posts.push_back({Posting::kSelSingle, static_cast<uint64_t>(in), -1});
    }
  }
  if (m.type() == MopType::kAggregate ||
      m.type() == MopType::kSharedAggregate) {
    const auto& agg = static_cast<const AggregateMop&>(m);
    bool qualifies = agg.output_mode() == OutputMode::kPerMemberPorts &&
                     !(agg.sharing() == AggregateMop::Sharing::kIsolated &&
                       agg.num_members() != 1);
    if (qualifies) {
      uint64_t key = AggKey(*plan_, id, agg);
      agg_targets_[key].push_back(id);
      posts.push_back({Posting::kAggTarget, key, -1});
    }
  }
  if (!posts.empty()) postings_[id] = std::move(posts);
}

ShareIndex::Candidate ShareIndex::Probe(MopId fresh,
                                        uint32_t kind_mask) const {
  Candidate none;
  if (!plan_->IsLive(fresh)) return none;
  const Mop& m = plan_->mop(fresh);
  if (m.num_members() != 1 || m.num_outputs() != 1) return none;
  const std::vector<ChannelId>& ins = plan_->input_channels(fresh);
  for (ChannelId c : ins) {
    if (c == kInvalidChannel) return none;
  }
  if (plan_->output_channels(fresh).empty() ||
      plan_->output_channel(fresh, 0) == kInvalidChannel) {
    return none;
  }

  // 1. Exact CSE. The kept m-op is always the lowest id of the duplicate
  // group (the warm twin), exactly as CseRule resolves it — so only targets
  // older than the fresh m-op qualify.
  if (kind_mask & MaskOf(Candidate::kCseExact)) {
    auto bucket = exact_.find(ExactKey(*plan_, fresh, m));
    if (bucket != exact_.end()) {
      MopId best = kInvalidMop;
      for (MopId id : bucket->second) {
        if (id != fresh && id < fresh && (best == kInvalidMop || id < best)) {
          best = id;
        }
      }
      if (best != kInvalidMop) {
        Candidate c;
        c.kind = Candidate::kCseExact;
        c.fresh = fresh;
        c.target = best;
        c.benefit = BenefitOf(kBenefitCseExact, &plan_->mop(best));
        return c;
      }
    }
  }

  // 2. Member-level CSE onto a warm merged target (same conditions as the
  // scan-based MemberCse, resolved to the lowest (target, member) pair —
  // the first match a LiveMops-ascending scan would find).
  MopType shared_type;
  if ((kind_mask & MaskOf(Candidate::kCseMember)) &&
      SharedTypeFor(m.type(), &shared_type)) {
    auto bucket =
        member_.find(MemberKey(shared_type, m.MemberSignature(0), ins));
    if (bucket != member_.end()) {
      MopId best = kInvalidMop;
      int best_member = -1;
      for (const MemberRef& ref : bucket->second) {
        if (ref.mop == fresh || !plan_->IsLive(ref.mop)) continue;
        if (best != kInvalidMop &&
            (ref.mop > best || (ref.mop == best && ref.member > best_member))) {
          continue;
        }
        const Mop& t = plan_->mop(ref.mop);
        if (t.type() != shared_type || t.num_members() < 2 ||
            t.num_outputs() != t.num_members()) {
          continue;
        }
        bool same_inputs = t.num_inputs() == m.num_inputs();
        for (int p = 0; same_inputs && p < m.num_inputs(); ++p) {
          same_inputs =
              plan_->input_channel(ref.mop, p) == plan_->input_channel(fresh, p);
        }
        if (!same_inputs) continue;
        if (t.MemberSignature(ref.member) != m.MemberSignature(0)) continue;
        bool match = false;
        switch (shared_type) {
          case MopType::kPredicateIndex:
            match = static_cast<const SelectionMop&>(m).member(0).input_slot ==
                    0;
            break;
          case MopType::kSharedAggregate: {
            const auto& target = static_cast<const AggregateMop&>(t);
            const auto& sel = static_cast<const AggregateMop&>(m);
            match = target.member(ref.member).input_slot ==
                        sel.member(0).input_slot &&
                    target.member_active(ref.member);
            break;
          }
          case MopType::kSharedJoin: {
            const auto& target = static_cast<const JoinMop&>(t);
            const auto& sel = static_cast<const JoinMop&>(m);
            match = target.member(ref.member).left_slot ==
                        sel.member(0).left_slot &&
                    target.member(ref.member).right_slot ==
                        sel.member(0).right_slot;
            break;
          }
          default:
            break;
        }
        if (!match) continue;
        best = ref.mop;
        best_member = ref.member;
      }
      if (best != kInvalidMop) {
        Candidate c;
        c.kind = Candidate::kCseMember;
        c.fresh = fresh;
        c.target = best;
        c.member = best_member;
        c.benefit = BenefitOf(kBenefitCseMember, &plan_->mop(best));
        return c;
      }
    }
  }

  // 3. sσ: attach to the oldest per-member-port predicate index on the
  // input channel, or — with no index but ≥2 single selections — form one.
  if (m.type() == MopType::kSelection &&
      static_cast<const SelectionMop&>(m).member(0).input_slot == 0) {
    ChannelId in = ins[0];
    auto targets = index_targets_.find(in);
    if ((kind_mask & MaskOf(Candidate::kAttachSelection)) &&
        targets != index_targets_.end() && !targets->second.empty()) {
      MopId best = kInvalidMop;
      for (MopId id : targets->second) {
        if (plan_->IsLive(id) && (best == kInvalidMop || id < best)) best = id;
      }
      if (best != kInvalidMop) {
        Candidate c;
        c.kind = Candidate::kAttachSelection;
        c.fresh = fresh;
        c.target = best;
        c.benefit = BenefitOf(kBenefitAttachSelection, &plan_->mop(best));
        return c;
      }
    }
    auto singles = sel_singles_.find(in);
    if ((kind_mask & MaskOf(Candidate::kFormIndex)) &&
        singles != sel_singles_.end() && singles->second.size() >= 2) {
      Candidate c;
      c.kind = Candidate::kFormIndex;
      c.fresh = fresh;
      c.channel = in;
      c.benefit = BenefitOf(kBenefitFormIndex, nullptr);
      return c;
    }
  }

  // 4. sα: attach to the oldest shared-aggregation target with the same
  // (channel, fn, attr, slot) key. Only older targets qualify (the scan
  // path's oldest-target map resolves fresh-vs-fresh pairs the same way),
  // and — exactly like the scan path — if the chosen target cannot absorb
  // the member, no other target is tried.
  if ((kind_mask & MaskOf(Candidate::kAttachAggregate)) &&
      m.type() == MopType::kAggregate) {
    const auto& agg = static_cast<const AggregateMop&>(m);
    if (agg.sharing() == AggregateMop::Sharing::kIsolated) {
      auto bucket = agg_targets_.find(AggKey(*plan_, fresh, agg));
      if (bucket != agg_targets_.end()) {
        MopId best = kInvalidMop;
        for (MopId id : bucket->second) {
          if (id != fresh && id < fresh && plan_->IsLive(id) &&
              (best == kInvalidMop || id < best)) {
            best = id;
          }
        }
        if (best != kInvalidMop) {
          const auto& target = static_cast<const AggregateMop&>(
              plan_->mop(best));
          if (target.CanAttach(agg.member(0))) {
            Candidate c;
            c.kind = Candidate::kAttachAggregate;
            c.fresh = fresh;
            c.target = best;
            c.benefit = BenefitOf(kBenefitAttachAggregate, &plan_->mop(best));
            return c;
          }
        }
      }
    }
  }
  return none;
}

std::vector<MopId> ShareIndex::SinglesOn(ChannelId channel) const {
  std::vector<MopId> out;
  auto it = sel_singles_.find(channel);
  if (it == sel_singles_.end()) return out;
  for (MopId id : it->second) {
    if (plan_->IsLive(id)) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string ShareIndex::DebugDump() const {
  std::vector<std::string> lines;
  auto dump_ids = [&lines](const char* tag, auto key,
                           std::vector<MopId> ids) {
    std::sort(ids.begin(), ids.end());
    std::ostringstream os;
    os << tag << " " << key << " ->";
    for (MopId id : ids) os << " " << id;
    lines.push_back(os.str());
  };
  for (const auto& [key, ids] : exact_) dump_ids("exact", key, ids);
  for (const auto& [key, ids] : index_targets_) {
    dump_ids("index_target", key, ids);
  }
  for (const auto& [key, ids] : sel_singles_) dump_ids("sel_single", key, ids);
  for (const auto& [key, ids] : agg_targets_) dump_ids("agg_target", key, ids);
  for (const auto& [key, refs] : member_) {
    std::vector<std::pair<MopId, int>> entries;
    for (const MemberRef& ref : refs) entries.push_back({ref.mop, ref.member});
    std::sort(entries.begin(), entries.end());
    std::ostringstream os;
    os << "member " << key << " ->";
    for (const auto& [mop, idx] : entries) {
      os << " (" << mop << "," << idx << ")";
    }
    lines.push_back(os.str());
  }
  std::sort(lines.begin(), lines.end());
  std::ostringstream os;
  for (const std::string& line : lines) os << line << "\n";
  return os.str();
}

ShareIndex::Stats ShareIndex::GetStats() const {
  // Hash-node bookkeeping estimate (pointers, hash, allocator rounding).
  constexpr int64_t kNodeOverhead = 48;
  Stats s;
  auto table = [&s](const auto& map, int64_t* entries) {
    for (const auto& [key, bucket] : map) {
      *entries += static_cast<int64_t>(bucket.size());
      s.approx_bytes +=
          kNodeOverhead + static_cast<int64_t>(sizeof(key)) +
          static_cast<int64_t>(bucket.capacity() *
                               sizeof(typename std::decay_t<
                                      decltype(bucket)>::value_type));
    }
  };
  table(exact_, &s.exact_entries);
  table(member_, &s.member_entries);
  table(index_targets_, &s.index_target_entries);
  table(sel_singles_, &s.sel_single_entries);
  table(agg_targets_, &s.agg_target_entries);
  table(postings_, &s.posting_entries);
  return s;
}

}  // namespace rumor
