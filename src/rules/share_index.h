// ShareIndex — persistent index over the plan's share points, the scale
// backbone of dynamic MQO (ROADMAP: "millions of users = millions of
// subscriptions"). Instead of rediscovering merge opportunities by scanning
// all live m-ops on every AddQuery (O(plan) per add, O(N²) over a workload),
// the index keeps hash tables from merge-relevant fingerprints to candidate
// share points and is maintained *incrementally* from the plan's mutation
// log, so each fresh m-op resolves its best merge with O(1) probes:
//
//   exact     (m-op type, input channels, member signature) -> single-member
//             m-ops — CSE duplicates (rule s;/sµ and exact duplicates of
//             every type). The key is bit-identical to CseRule's group key,
//             so probe results match the scan-based rule exactly.
//   member    (shared type, input channels, member signature) -> members of
//             per-member-port merged targets — member-level CSE (a new σ/α/⋈
//             identical to a warm member reuses its output port).
//   σ-target  input channel -> per-member-port predicate indexes (sσ attach
//             targets; the probe picks the oldest = lowest MopId).
//   σ-single  input channel -> single-member slot-0 selections (sσ formation
//             candidates: two or more singles on one channel form an index).
//   α-target  (input channel, fn, attr, input slot) -> shared-aggregation
//             attach targets (warm sα engines and lone isolated aggregates).
//
// Consistency contract: call Sync() after the plan may have mutated and
// before probing. Sync consumes the plan's event log from the index's
// cursor (O(delta)); if the log was compacted past the cursor or recorded a
// bulk change (rollback), it falls back to one full rebuild (O(plan) — the
// cost a single scan-based merge used to pay on *every* add).
//
// Probe() returns at most one candidate per fresh m-op, the best merge by
// rule precedence (CSE > member CSE > attach > formation — the same
// precedence the scan-based MergeNewQuery encodes by phase order), with an
// estimated benefit for the greedy cost-ordered driver (rules/incremental).
#ifndef RUMOR_RULES_SHARE_INDEX_H_
#define RUMOR_RULES_SHARE_INDEX_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "plan/plan.h"

namespace rumor {

class ShareIndex {
 public:
  // Builds the index from the plan's current state and anchors the cursor
  // at its current mutation sequence. The plan must outlive the index.
  explicit ShareIndex(Plan* plan);

  // Brings the index up to date with the plan (see file comment). Cheap
  // when nothing changed.
  void Sync();

  // One merge opportunity for a fresh m-op.
  struct Candidate {
    enum Kind : uint8_t {
      kNone,
      kCseExact,         // fresh duplicates `target` wholesale
      kCseMember,        // fresh duplicates member `member` of `target`
      kAttachSelection,  // fresh σ joins predicate index `target`
      kAttachAggregate,  // fresh α joins shared-agg target `target`
      kFormIndex,        // ≥2 single σ on `channel` form a new index
    };
    Kind kind = kNone;
    MopId fresh = kInvalidMop;
    MopId target = kInvalidMop;           // not set for kFormIndex
    int member = -1;                      // kCseMember only
    ChannelId channel = kInvalidChannel;  // kFormIndex only
    // Estimated saved work: a base tier per merge kind (how much structure
    // and state the merge shares) plus a bounded bonus for warmer targets
    // (observed input traffic — merging onto hot operators first saves the
    // most evaluation work). Tier gaps exceed the bonus range, so greedy
    // best-first order never reorders across rule precedence.
    double benefit = 0.0;
  };

  // Best merge for `fresh` under the current index state, or kind == kNone.
  // `fresh` must be live. O(1) expected (hash probes over small buckets).
  // `kind_mask` (bits of MaskOf) restricts which merge kinds are considered:
  // the driver replicates the scan path's phase order by probing one kind
  // group at a time, so e.g. an aggregate that became an exact duplicate
  // only after its σ was rewired mid-round attaches to the shared engine
  // (what the scan's same-round AttachAggregates phase does) instead of
  // being exact-CSE'd a round later.
  static constexpr uint32_t MaskOf(Candidate::Kind kind) {
    return 1u << kind;
  }
  static constexpr uint32_t kAllKinds = ~0u;
  Candidate Probe(MopId fresh, uint32_t kind_mask = kAllKinds) const;

  // Live single-member slot-0 selections reading `channel`, sorted by MopId
  // ascending (formation order — matches PredicateIndexRule's group order).
  std::vector<MopId> SinglesOn(ChannelId channel) const;

  // Canonical text form of the whole index (sorted, bucket order
  // independent): the churn stress compares this against a from-scratch
  // rebuild after every phase.
  std::string DebugDump() const;

  // Size statistics: entries per table plus the approximate heap bytes of
  // all tables (container footprint estimate, for memory budgeting).
  struct Stats {
    int64_t exact_entries = 0;
    int64_t member_entries = 0;
    int64_t index_target_entries = 0;
    int64_t sel_single_entries = 0;
    int64_t agg_target_entries = 0;
    int64_t posting_entries = 0;
    int64_t approx_bytes = 0;
  };
  Stats GetStats() const;
  // Approximate heap bytes of the index tables (GetStats().approx_bytes).
  int64_t ApproxBytes() const { return GetStats().approx_bytes; }

  const Plan* plan() const { return plan_; }

 private:
  struct MemberRef {
    MopId mop;
    int member;
  };
  struct Posting {
    enum Table : uint8_t {
      kExact,
      kMember,
      kIndexTarget,
      kSelSingle,
      kAggTarget,
    };
    Table table;
    uint64_t key;  // hash key, or the channel id for the channel tables
    int member;    // kMember postings only
  };

  void Rebuild();
  // Removes, then (if the m-op is live and fully wired) re-adds all of one
  // m-op's table entries.
  void ReindexMop(MopId id);
  void UnindexMop(MopId id);
  void IndexMop(MopId id);
  // Appends just the entries for `grew` freshly bound member ports of an
  // already-indexed growing target; returns false (caller must ReindexMop)
  // when the growth-only precondition cannot be proven.
  bool GrowMop(MopId id, int grew);

  Plan* plan_;
  uint64_t cursor_ = 0;

  std::unordered_map<uint64_t, std::vector<MopId>> exact_;
  std::unordered_map<uint64_t, std::vector<MemberRef>> member_;
  std::unordered_map<ChannelId, std::vector<MopId>> index_targets_;
  std::unordered_map<ChannelId, std::vector<MopId>> sel_singles_;
  std::unordered_map<uint64_t, std::vector<MopId>> agg_targets_;
  // Reverse map for removal: which entries each m-op contributed (the m-op
  // itself is already gone when a removal event is observed).
  std::unordered_map<MopId, std::vector<Posting>> postings_;
};

}  // namespace rumor

#endif  // RUMOR_RULES_SHARE_INDEX_H_
