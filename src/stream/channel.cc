#include "stream/channel.h"

#include <sstream>

namespace rumor {

std::vector<std::pair<StreamId, Tuple>> ChannelDef::Decode(
    const ChannelTuple& ct) const {
  std::vector<std::pair<StreamId, Tuple>> out;
  ct.membership.ForEach(
      [&](int slot) { out.emplace_back(streams_[slot], ct.tuple); });
  return out;
}

std::string ChannelDef::ToString() const {
  std::ostringstream os;
  os << "channel#" << id_ << "[";
  for (int i = 0; i < capacity(); ++i) {
    if (i > 0) os << ",";
    os << streams_[i];
  }
  os << "]";
  return os.str();
}

}  // namespace rumor
