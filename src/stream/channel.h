// Channels (paper §3.1): a channel encodes a set of union-compatible streams
// as their union, where every tuple carries a *membership component* — a bit
// vector naming the encoded streams the tuple belongs to. Channels replace
// streams as the inputs/outputs of m-ops; a plain stream is the special case
// of a capacity-1 channel.
#ifndef RUMOR_STREAM_CHANNEL_H_
#define RUMOR_STREAM_CHANNEL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bitvector.h"
#include "common/tuple.h"
#include "stream/stream.h"

namespace rumor {

using ChannelId = int32_t;
inline constexpr ChannelId kInvalidChannel = -1;

// A tuple travelling on a channel: shared payload + membership over the
// channel's stream slots. For capacity-1 channels the membership is the
// single set bit {0}.
struct ChannelTuple {
  Tuple tuple;
  BitVector membership;

  std::string ToString() const {
    return tuple.ToString() + membership.ToString();
  }
};

// Static description of a channel: the ordered list of encoded streams.
// Slot i of the membership bit vector refers to streams()[i].
class ChannelDef {
 public:
  ChannelDef() = default;
  ChannelDef(ChannelId id, std::vector<StreamId> streams, Schema schema)
      : id_(id), streams_(std::move(streams)), schema_(std::move(schema)) {
    RUMOR_CHECK(!streams_.empty()) << "channel must encode >= 1 stream";
  }

  ChannelId id() const { return id_; }
  // Channel capacity = number of encoded streams (paper §5.2, Workload 3).
  int capacity() const { return static_cast<int>(streams_.size()); }
  const std::vector<StreamId>& streams() const { return streams_; }
  StreamId stream_at(int slot) const {
    RUMOR_DCHECK(slot >= 0 && slot < capacity());
    return streams_[slot];
  }
  const Schema& schema() const { return schema_; }

  // Slot of `stream` in this channel, or nullopt.
  std::optional<int> SlotOf(StreamId stream) const {
    for (int i = 0; i < capacity(); ++i) {
      if (streams_[i] == stream) return i;
    }
    return std::nullopt;
  }

  // Encoding helpers -------------------------------------------------------
  // Tuple belonging to every encoded stream.
  ChannelTuple MakeBroadcast(Tuple t) const {
    return ChannelTuple{std::move(t), BitVector::AllOnes(capacity())};
  }
  // Tuple belonging to a single slot.
  ChannelTuple MakeSingleton(Tuple t, int slot) const {
    return ChannelTuple{std::move(t), BitVector::Singleton(slot, capacity())};
  }
  // Tuple with explicit membership (CHECKs the size matches).
  ChannelTuple MakeTuple(Tuple t, BitVector membership) const {
    RUMOR_CHECK(membership.size() == capacity());
    return ChannelTuple{std::move(t), std::move(membership)};
  }

  // Decoding: the per-stream view of a channel tuple — tuples of the streams
  // the channel tuple belongs to (paper's decoding step). Mostly used by
  // tests and reference m-ops; optimized m-ops work on memberships directly.
  std::vector<std::pair<StreamId, Tuple>> Decode(const ChannelTuple& ct) const;

  std::string ToString() const;

 private:
  ChannelId id_ = kInvalidChannel;
  std::vector<StreamId> streams_;
  Schema schema_;
};

}  // namespace rumor

#endif  // RUMOR_STREAM_CHANNEL_H_
