#include "stream/stream.h"

namespace rumor {

StreamId StreamRegistry::AddSource(const std::string& name, Schema schema,
                                   int sharable_label) {
  RUMOR_CHECK(!FindSource(name).has_value())
      << "duplicate source stream '" << name << "'";
  StreamDef def;
  def.id = static_cast<StreamId>(streams_.size());
  def.name = name;
  def.schema = std::move(schema);
  def.is_source = true;
  def.sharable_label = sharable_label;
  source_index_.emplace(def.name, def.id);
  streams_.push_back(std::move(def));
  return streams_.back().id;
}

StreamId StreamRegistry::AddDerived(const std::string& name, Schema schema) {
  StreamDef def;
  def.id = static_cast<StreamId>(streams_.size());
  def.name = name;
  def.schema = std::move(schema);
  def.is_source = false;
  streams_.push_back(std::move(def));
  return streams_.back().id;
}

std::optional<StreamId> StreamRegistry::FindSource(
    const std::string& name) const {
  auto it = source_index_.find(name);
  if (it == source_index_.end()) return std::nullopt;
  return it->second;
}

std::vector<StreamId> StreamRegistry::Sources() const {
  std::vector<StreamId> out;
  for (const StreamDef& def : streams_) {
    if (def.is_source) out.push_back(def.id);
  }
  return out;
}

}  // namespace rumor
