// Stream definitions. A *stream* is a logical, schema-typed sequence of
// timestamped tuples. Source streams enter the system from outside; derived
// streams are produced by operators. Channels (channel.h) generalize streams
// and are what m-ops actually read and write at runtime; a plain stream is
// carried by a capacity-1 channel.
//
// Source streams carry an optional `sharable_label`: sources with the same
// non-negative label are declared sharable (paper §3.2, base case 2), the
// seed of the ~ equivalence relation.
#ifndef RUMOR_STREAM_STREAM_H_
#define RUMOR_STREAM_STREAM_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/schema.h"
#include "common/status.h"

namespace rumor {

using StreamId = int32_t;
inline constexpr StreamId kInvalidStream = -1;

struct StreamDef {
  StreamId id = kInvalidStream;
  std::string name;
  Schema schema;
  bool is_source = false;
  // Sources only: same non-negative label <=> declared sharable.
  int sharable_label = -1;
};

// Owns all stream definitions of a plan. StreamIds are dense indexes.
class StreamRegistry {
 public:
  StreamRegistry() = default;

  // Registers a source stream; names must be unique among sources.
  StreamId AddSource(const std::string& name, Schema schema,
                     int sharable_label = -1);

  // Registers a derived (operator-produced) stream.
  StreamId AddDerived(const std::string& name, Schema schema);

  int size() const { return static_cast<int>(streams_.size()); }
  const StreamDef& Get(StreamId id) const {
    RUMOR_DCHECK(id >= 0 && id < size()) << "bad stream id " << id;
    return streams_[id];
  }
  const Schema& SchemaOf(StreamId id) const { return Get(id).schema; }

  // Source stream by name. O(1) — compilation resolves every source
  // reference of every added query through this.
  std::optional<StreamId> FindSource(const std::string& name) const;

  // Drops every stream registered after the first `n` (rollback of a failed
  // live-plan compilation; ids are dense, so only a suffix can go).
  void TruncateTo(int n) {
    RUMOR_CHECK(n >= 0 && n <= size());
    for (int i = n; i < size(); ++i) {
      if (streams_[i].is_source) source_index_.erase(streams_[i].name);
    }
    streams_.resize(n);
  }

  // All source stream ids.
  std::vector<StreamId> Sources() const;
  // Count of source streams, O(1) (cheap change detection for caches keyed
  // on the source set, e.g. the engine's source-name table).
  int num_sources() const { return static_cast<int>(source_index_.size()); }

 private:
  std::vector<StreamDef> streams_;
  std::unordered_map<std::string, StreamId> source_index_;  // by name
};

}  // namespace rumor

#endif  // RUMOR_STREAM_STREAM_H_
