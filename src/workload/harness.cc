#include "workload/harness.h"

namespace rumor {

namespace {

// Shared measurement scaffolding: compile + optimize, then push events
// [0, warmup) untimed and [warmup, n) timed via `push_range(exec, streams,
// from, to)` — the one thing the per-tuple and batched runners differ in.
template <typename PushRange>
RumorRun MeasureRumor(const std::vector<Query>& queries,
                      const OptimizerOptions& options,
                      const std::vector<Event>& events, int64_t warmup,
                      const std::vector<std::string>& stream_names,
                      const PushRange& push_range) {
  RumorRun run;
  Plan plan;
  auto compiled = CompileQueries(queries, &plan);
  RUMOR_CHECK(compiled.ok()) << compiled.status().ToString();
  run.optimize_stats = Optimize(&plan, options);
  run.live_mops = static_cast<int>(plan.LiveMops().size());

  CountingSink sink;
  sink.Reserve(static_cast<StreamId>(plan.streams().size()));
  Executor exec(&plan, &sink);
  exec.Prepare();
  std::vector<StreamId> streams;
  for (const std::string& name : stream_names) {
    auto id = plan.streams().FindSource(name);
    RUMOR_CHECK(id.has_value()) << "unknown source " << name;
    streams.push_back(*id);
  }

  const int64_t n = static_cast<int64_t>(events.size());
  const int64_t measured_from = std::min(warmup, n);
  push_range(exec, streams, int64_t{0}, measured_from);
  const int64_t outputs_before = sink.total();
  Stopwatch timer;
  push_range(exec, streams, measured_from, n);
  run.result.seconds = timer.ElapsedSeconds();
  run.result.events = n - measured_from;
  run.result.outputs = sink.total() - outputs_before;
  return run;
}

}  // namespace

RumorRun RunRumor(const std::vector<Query>& queries,
                  const OptimizerOptions& options,
                  const std::vector<Event>& events, int64_t warmup,
                  const std::vector<std::string>& stream_names) {
  return MeasureRumor(
      queries, options, events, warmup, stream_names,
      [&](Executor& exec, const std::vector<StreamId>& streams, int64_t from,
          int64_t to) {
        for (int64_t i = from; i < to; ++i) {
          exec.PushSource(streams[events[i].stream], events[i].tuple);
        }
      });
}

RumorRun RunRumorBatched(const std::vector<Query>& queries,
                         const OptimizerOptions& options,
                         const std::vector<Event>& events, int64_t warmup,
                         int64_t batch_size,
                         const std::vector<std::string>& stream_names) {
  RUMOR_CHECK(batch_size > 0);
  std::vector<Tuple> batch;
  batch.reserve(batch_size);
  // Pushes maximal same-stream runs of <= batch_size tuples.
  return MeasureRumor(
      queries, options, events, warmup, stream_names,
      [&](Executor& exec, const std::vector<StreamId>& streams, int64_t from,
          int64_t to) {
        int64_t i = from;
        while (i < to) {
          const int stream = events[i].stream;
          batch.clear();
          while (i < to && events[i].stream == stream &&
                 static_cast<int64_t>(batch.size()) < batch_size) {
            batch.push_back(events[i].tuple);
            ++i;
          }
          exec.PushSourceBatch(streams[stream], batch);
        }
      });
}

RumorRun RunRumorSharded(const std::vector<Query>& queries,
                         const OptimizerOptions& options,
                         const std::vector<Event>& events, int64_t warmup,
                         int64_t batch_size, int num_shards,
                         const std::vector<std::string>& stream_names) {
  RUMOR_CHECK(batch_size > 0);
  RUMOR_CHECK(num_shards >= 1);
  RumorRun run;
  auto factory = [&queries, &options](Plan* plan,
                                      OptimizeStats* stats) -> Status {
    auto compiled = CompileQueries(queries, plan);
    if (!compiled.ok()) return compiled.status();
    *stats = Optimize(plan, options);
    return Status::OK();
  };
  // Scratch replica for the stream count: the counting lanes must be fully
  // pre-sized before workers run (growing them mid-flight would race).
  Plan scratch;
  OptimizeStats scratch_stats;
  RUMOR_CHECK(factory(&scratch, &scratch_stats).ok());
  ShardedCountingSink sink(num_shards,
                           static_cast<StreamId>(scratch.streams().size()));

  ShardedExecutor::Options ex_options;
  ex_options.num_shards = num_shards;
  ShardedExecutor exec(ex_options, factory, &sink);
  RUMOR_CHECK(exec.Prepare().ok());
  run.optimize_stats = exec.optimize_stats();
  run.live_mops = static_cast<int>(exec.plan(0).LiveMops().size());
  std::vector<StreamId> streams;
  for (const std::string& name : stream_names) {
    auto id = exec.plan(0).streams().FindSource(name);
    RUMOR_CHECK(id.has_value()) << "unknown source " << name;
    streams.push_back(*id);
  }

  std::vector<Tuple> batch;
  batch.reserve(batch_size);
  auto push_range = [&](int64_t from, int64_t to) {
    int64_t i = from;
    while (i < to) {
      const int stream = events[i].stream;
      batch.clear();
      while (i < to && events[i].stream == stream &&
             static_cast<int64_t>(batch.size()) < batch_size) {
        batch.push_back(events[i].tuple);
        ++i;
      }
      exec.PushSourceBatch(streams[stream], batch);
    }
  };

  const int64_t n = static_cast<int64_t>(events.size());
  const int64_t measured_from = std::min(warmup, n);
  push_range(0, measured_from);
  exec.Flush();
  const int64_t outputs_before = sink.total();
  Stopwatch timer;
  push_range(measured_from, n);
  exec.Flush();  // drain in-flight epochs inside the timed region
  run.result.seconds = timer.ElapsedSeconds();
  run.result.events = n - measured_from;
  run.result.outputs = sink.total() - outputs_before;
  exec.Stop();
  return run;
}

CayugaRun RunCayuga(const std::vector<CayugaAutomaton>& automata,
                    const CayugaEngine::Options& options,
                    const std::vector<Event>& events, int64_t warmup,
                    const std::vector<std::string>& stream_names) {
  CayugaRun run;
  CayugaEngine engine(options);
  for (const CayugaAutomaton& a : automata) engine.AddAutomaton(a);
  run.num_nodes = engine.num_nodes();
  int64_t outputs = 0;
  engine.SetOutputHandler([&](int, const Tuple&) { ++outputs; });

  int64_t i = 0;
  const int64_t n = static_cast<int64_t>(events.size());
  for (; i < warmup && i < n; ++i) {
    engine.OnEvent(stream_names[events[i].stream], events[i].tuple);
  }
  const int64_t outputs_before = outputs;
  Stopwatch timer;
  for (; i < n; ++i) {
    engine.OnEvent(stream_names[events[i].stream], events[i].tuple);
  }
  run.result.seconds = timer.ElapsedSeconds();
  run.result.events = n - warmup;
  run.result.outputs = outputs - outputs_before;
  return run;
}

}  // namespace rumor
