#include "workload/harness.h"

namespace rumor {

RumorRun RunRumor(const std::vector<Query>& queries,
                  const OptimizerOptions& options,
                  const std::vector<Event>& events, int64_t warmup,
                  const std::vector<std::string>& stream_names) {
  RumorRun run;
  Plan plan;
  auto compiled = CompileQueries(queries, &plan);
  RUMOR_CHECK(compiled.ok()) << compiled.status().ToString();
  run.optimize_stats = Optimize(&plan, options);
  run.live_mops = static_cast<int>(plan.LiveMops().size());

  CountingSink sink;
  Executor exec(&plan, &sink);
  exec.Prepare();
  std::vector<StreamId> streams;
  for (const std::string& name : stream_names) {
    auto id = plan.streams().FindSource(name);
    RUMOR_CHECK(id.has_value()) << "unknown source " << name;
    streams.push_back(*id);
  }

  int64_t i = 0;
  const int64_t n = static_cast<int64_t>(events.size());
  for (; i < warmup && i < n; ++i) {
    exec.PushSource(streams[events[i].stream], events[i].tuple);
  }
  const int64_t outputs_before = sink.total();
  Stopwatch timer;
  for (; i < n; ++i) {
    exec.PushSource(streams[events[i].stream], events[i].tuple);
  }
  run.result.seconds = timer.ElapsedSeconds();
  run.result.events = n - warmup;
  run.result.outputs = sink.total() - outputs_before;
  return run;
}

CayugaRun RunCayuga(const std::vector<CayugaAutomaton>& automata,
                    const CayugaEngine::Options& options,
                    const std::vector<Event>& events, int64_t warmup,
                    const std::vector<std::string>& stream_names) {
  CayugaRun run;
  CayugaEngine engine(options);
  for (const CayugaAutomaton& a : automata) engine.AddAutomaton(a);
  run.num_nodes = engine.num_nodes();
  int64_t outputs = 0;
  engine.SetOutputHandler([&](int, const Tuple&) { ++outputs; });

  int64_t i = 0;
  const int64_t n = static_cast<int64_t>(events.size());
  for (; i < warmup && i < n; ++i) {
    engine.OnEvent(stream_names[events[i].stream], events[i].tuple);
  }
  const int64_t outputs_before = outputs;
  Stopwatch timer;
  for (; i < n; ++i) {
    engine.OnEvent(stream_names[events[i].stream], events[i].tuple);
  }
  run.result.seconds = timer.ElapsedSeconds();
  run.result.events = n - warmup;
  run.result.outputs = outputs - outputs_before;
  return run;
}

}  // namespace rumor
