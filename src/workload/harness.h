// Measurement harness shared by the figure benchmarks: builds both engines
// from one workload, warms them up, and measures steady-state throughput
// (events/second), mirroring the paper's §5 methodology (warm-up iterations
// before measuring; averaged repetitions live in the bench binaries).
#ifndef RUMOR_WORKLOAD_HARNESS_H_
#define RUMOR_WORKLOAD_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "cayuga/engine.h"
#include "plan/compile.h"
#include "plan/executor.h"
#include "plan/metrics.h"
#include "plan/sharded_executor.h"
#include "rules/rule_engine.h"
#include "workload/synthetic.h"

namespace rumor {

// Runs a compiled+optimized RUMOR plan over interleaved S/T events.
// `warmup` events are processed untimed, the rest timed.
struct RumorRun {
  OptimizeStats optimize_stats;
  ThroughputResult result;
  int live_mops = 0;
};
RumorRun RunRumor(const std::vector<Query>& queries,
                  const OptimizerOptions& options,
                  const std::vector<Event>& events, int64_t warmup,
                  const std::vector<std::string>& stream_names = {"S", "T"});

// Batched variant: groups the event feed into maximal runs of consecutive
// same-stream events (capped at `batch_size` tuples) and pushes each run via
// Executor::PushSourceBatch. Semantically identical to RunRumor — run
// boundaries preserve the global event order, and the executor falls back
// to per-tuple dispatch where batching is unsafe. Note that a strictly
// alternating S/T feed degenerates to runs of 1; batching pays off on feeds
// with same-source bursts (or single-source workloads).
RumorRun RunRumorBatched(
    const std::vector<Query>& queries, const OptimizerOptions& options,
    const std::vector<Event>& events, int64_t warmup, int64_t batch_size,
    const std::vector<std::string>& stream_names = {"S", "T"});

// Partition-parallel variant: the same batched feed pushed through a
// ShardedExecutor with `num_shards` workers (plan/sharded_executor.h) in
// lanes mode — outputs are counted per shard with no cross-thread traffic,
// mirroring what a scale-out deployment measures. The timed region includes
// the final Flush(), so reported throughput covers full processing, not
// just enqueueing. num_shards == 1 measures the sharded machinery's
// single-worker overhead (ring hops + rematerialization) against RunRumor.
RumorRun RunRumorSharded(
    const std::vector<Query>& queries, const OptimizerOptions& options,
    const std::vector<Event>& events, int64_t warmup, int64_t batch_size,
    int num_shards, const std::vector<std::string>& stream_names = {"S", "T"});

// Runs the Cayuga baseline over the same events.
struct CayugaRun {
  ThroughputResult result;
  int num_nodes = 0;
};
CayugaRun RunCayuga(const std::vector<CayugaAutomaton>& automata,
                    const CayugaEngine::Options& options,
                    const std::vector<Event>& events, int64_t warmup,
                    const std::vector<std::string>& stream_names = {"S",
                                                                    "T"});

}  // namespace rumor

#endif  // RUMOR_WORKLOAD_HARNESS_H_
