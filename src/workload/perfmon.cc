#include "workload/perfmon.h"

#include <algorithm>

#include "common/str_util.h"

namespace rumor {

Schema PerfmonSchema() {
  return Schema({{"pid", ValueType::kInt}, {"load", ValueType::kInt}});
}

std::vector<Tuple> GeneratePerfmonTrace(const PerfmonParams& params) {
  Rng rng(params.seed);
  struct ProcState {
    double load = 10.0;
    int64_t ramp_left = 0;
  };
  std::vector<ProcState> procs(params.num_processes);
  for (ProcState& p : procs) p.load = 5.0 + rng.UniformDouble() * 20.0;

  std::vector<Tuple> trace;
  trace.reserve(params.duration_seconds * params.num_processes);
  for (int64_t sec = 0; sec < params.duration_seconds; ++sec) {
    for (int pid = 0; pid < params.num_processes; ++pid) {
      ProcState& p = procs[pid];
      if (p.ramp_left > 0) {
        // Monotonic CPU ramp: the episodes the hybrid queries detect.
        p.load = std::min(100.0, p.load + 2.0 + rng.UniformDouble() * 3.0);
        --p.ramp_left;
      } else {
        if (rng.Bernoulli(params.ramp_start_probability)) {
          p.ramp_left = params.ramp_length;
        }
        // Mean-reverting noise around a baseline of ~15%.
        p.load += (15.0 - p.load) * 0.1 + (rng.UniformDouble() - 0.5) * 8.0;
        p.load = std::clamp(p.load, 0.0, 100.0);
      }
      trace.push_back(Tuple::Make(
          {Value(static_cast<int64_t>(pid)),
           Value(static_cast<int64_t>(p.load))},
          sec));
    }
  }
  return trace;
}

Query MakeHybridQuery(int query_index, double sel, int64_t smooth_window) {
  Schema cpu = PerfmonSchema();
  QueryNodePtr src = QueryNode::Source("CPU", cpu);
  // SMOOTHED: per-pid sliding average of the load.
  QueryNodePtr smoothed = QueryNode::Aggregate(
      src, AggFn::kAvg, /*agg_attr=*/1, /*group_by=*/{0}, smooth_window);
  // smoothed schema: (pid:int, avg_load:double).

  // Starting condition θs_i: deterministic, per-query, selectivity `sel`,
  // intentionally not hash-indexable (arithmetic over pid and ts).
  const int64_t threshold = static_cast<int64_t>(sel * 100.0);
  ExprPtr mix = Expr::Arith(
      ArithOp::kMod,
      Expr::Arith(
          ArithOp::kAdd,
          Expr::Arith(ArithOp::kAdd,
                      Expr::Arith(ArithOp::kMul, Expr::Attr(Side::kLeft, 0),
                                  Expr::ConstInt(31)),
                      Expr::Arith(ArithOp::kMod, Expr::Ts(Side::kLeft),
                                  Expr::ConstInt(97))),
          Expr::ConstInt(query_index * 17)),
      Expr::ConstInt(100));
  ExprPtr theta_s = Expr::Cmp(CmpOp::kLt, mix, Expr::ConstInt(threshold));
  QueryNodePtr start = QueryNode::Select(smoothed, theta_s);

  // µ: same pid, monotonically increasing smoothed load, 60 s bound.
  ExprPtr match = Expr::Cmp(CmpOp::kEq, Expr::Attr(Side::kLeft, 0),
                            Expr::Attr(Side::kRight, 0));
  ExprPtr rebind = Expr::Cmp(CmpOp::kGt, Expr::Attr(Side::kRight, 1),
                             Expr::Attr(Side::kLeft, 2 + 1));
  QueryNodePtr mu =
      QueryNode::IterateSplit(start, smoothed, match, rebind, 60);

  // Stop condition (paper §5.3: load > 10, low selectivity on purpose).
  QueryNodePtr stop = QueryNode::Select(
      mu, Expr::Cmp(CmpOp::kGt, Expr::Attr(Side::kLeft, 3),
                    Expr::ConstInt(10)));
  return Query{StrCat("H", query_index), stop};
}

}  // namespace rumor
