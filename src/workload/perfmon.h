// Synthetic performance-counter traces — the substitute for the paper's
// proprietary Windows Vista Performance Monitor datasets (§5.3: D1 = 104
// long-running processes sampled at 1 Hz for 24 h; D2 = 28 processes).
//
// The generator reproduces the properties Fig. 11 depends on: one
// (pid, load) tuple per process per second; mostly mean-reverting noisy
// load; occasional *monotonic ramp* episodes (the CPU-ramp patterns the
// hybrid queries hunt for). Absolute load values are percentages [0, 100].
//
// It also builds the §5.3 hybrid query workload (modified Query 2):
//   SMOOTHED = SELECT pid, AVG(load) FROM CPU [RANGE 60] GROUP BY pid
//   Qi       = start condition θsi with selectivity `sel` (non-indexable)
//              ITERATE: monotonically increasing avg load per pid
//              stop condition: last.avg_load > 10
#ifndef RUMOR_WORKLOAD_PERFMON_H_
#define RUMOR_WORKLOAD_PERFMON_H_

#include <vector>

#include "common/rng.h"
#include "common/schema.h"
#include "common/tuple.h"
#include "query/query.h"

namespace rumor {

struct PerfmonParams {
  int num_processes = 104;  // D1; use 28 for the D2 variant
  int64_t duration_seconds = 600;
  double ramp_start_probability = 0.01;  // per process-second
  int64_t ramp_length = 20;              // seconds of monotonic increase
  uint64_t seed = 7;
};

// CPU stream schema: (pid:int, load:int), ts in seconds.
Schema PerfmonSchema();

// The full trace in timestamp order (num_processes tuples per second).
std::vector<Tuple> GeneratePerfmonTrace(const PerfmonParams& params);

// One hybrid query (modified paper Query 2). `query_index` de-correlates
// the starting conditions across queries; `sel` in [0,1] is their
// selectivity; they are intentionally *not* hash-indexable:
//   θs_i = (avg_load * 97 + i * 13) % 100 < floor(sel * 100)
// The µ stage matches per-pid monotonically increasing smoothed loads; the
// stop condition keeps runs whose last smoothed load exceeds 10.
Query MakeHybridQuery(int query_index, double sel, int64_t smooth_window);

}  // namespace rumor

#endif  // RUMOR_WORKLOAD_PERFMON_H_
