#include "workload/synthetic.h"

namespace rumor {

std::vector<Event> GenerateInterleaved(const SyntheticParams& params,
                                       int64_t count, Timestamp first_ts,
                                       Rng& rng) {
  std::vector<Event> events;
  events.reserve(count);
  for (int64_t i = 0; i < count; ++i) {
    std::vector<int64_t> values;
    values.reserve(params.num_attributes);
    for (int k = 0; k < params.num_attributes; ++k) {
      values.push_back(rng.UniformInt(0, params.constant_domain - 1));
    }
    Timestamp ts = first_ts + i;
    events.push_back(
        {static_cast<int>(ts % 2), Tuple::MakeInts(values, ts)});
  }
  return events;
}

}  // namespace rumor
