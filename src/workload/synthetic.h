// The synthetic benchmark of paper §5.1 / Table 3: two interleaved streams S
// and T with a 10-int-attribute schema; attribute values uniform in
// [0, constant_domain); tuples have consecutive timestamps starting at 0
// (even ts -> S, odd ts -> T); query constants and window lengths are drawn
// Zipf(zipf_parameter) over their domains, favouring large values.
#ifndef RUMOR_WORKLOAD_SYNTHETIC_H_
#define RUMOR_WORKLOAD_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/schema.h"
#include "common/tuple.h"

namespace rumor {

// Table 3 defaults.
struct SyntheticParams {
  int num_queries = 1000;
  int num_attributes = 10;
  int64_t constant_domain = 1000;
  int64_t window_domain = 1000;
  double zipf_parameter = 1.5;
  int64_t num_tuples = 100000;  // total events (>= 100k in the paper)
  uint64_t seed = 42;

  Schema MakeSchema() const { return Schema::MakeInts(num_attributes); }
};

// One benchmark event: stream index (0 = S, 1 = T) + tuple.
struct Event {
  int stream;
  Tuple tuple;
};

// Generates `count` interleaved S/T events with consecutive timestamps
// starting at `first_ts`.
std::vector<Event> GenerateInterleaved(const SyntheticParams& params,
                                       int64_t count, Timestamp first_ts,
                                       Rng& rng);

// Samples query parameters; construct once per workload (the Zipf tables
// cost O(domain) to build).
class QueryParamSampler {
 public:
  explicit QueryParamSampler(const SyntheticParams& params)
      : constant_zipf_(params.constant_domain, params.zipf_parameter),
        window_zipf_(params.window_domain, params.zipf_parameter) {}

  // Query constant in [0, constant_domain), biased large.
  int64_t Constant(Rng& rng) const { return constant_zipf_.Sample(rng) - 1; }
  // Window length in [1, window_domain], biased large.
  int64_t Window(Rng& rng) const { return window_zipf_.Sample(rng); }

 private:
  ZipfGenerator constant_zipf_;
  ZipfGenerator window_zipf_;
};

}  // namespace rumor

#endif  // RUMOR_WORKLOAD_SYNTHETIC_H_
