#include "workload/workloads.h"

#include "common/str_util.h"

namespace rumor {

namespace {

ExprPtr LeftEq(int attr, int64_t c) {
  return Expr::Cmp(CmpOp::kEq, Expr::Attr(Side::kLeft, attr),
                   Expr::ConstInt(c));
}
ExprPtr RightEq(int attr, int64_t c) {
  return Expr::Cmp(CmpOp::kEq, Expr::Attr(Side::kRight, attr),
                   Expr::ConstInt(c));
}
ExprPtr Equi(int la, int ra) {
  return Expr::Cmp(CmpOp::kEq, Expr::Attr(Side::kLeft, la),
                   Expr::Attr(Side::kRight, ra));
}
// rebind: event.a1 > last.a1; in the (entry ⊕ last) concat space the last
// part starts at `left_size`.
ExprPtr MonotonicRebind(int left_size) {
  return Expr::Cmp(CmpOp::kGt, Expr::Attr(Side::kRight, 1),
                   Expr::Attr(Side::kLeft, left_size + 1));
}

}  // namespace

std::vector<W1Spec> DrawW1Specs(const SyntheticParams& params, Rng& rng) {
  QueryParamSampler sampler(params);
  std::vector<W1Spec> specs;
  specs.reserve(params.num_queries);
  for (int i = 0; i < params.num_queries; ++i) {
    specs.push_back(
        {sampler.Constant(rng), sampler.Constant(rng), sampler.Window(rng)});
  }
  return specs;
}

CayugaAutomaton MakeW1Automaton(const std::string& name, const W1Spec& spec,
                                const Schema& schema) {
  CayugaAutomaton a(name, "S", schema, LeftEq(0, spec.c1));
  a.AddStage({CayugaStateKind::kSequence, "T", RightEq(0, spec.c3), nullptr,
              spec.window},
             schema);
  return a;
}

Query MakeW1Query(const std::string& name, const W1Spec& spec,
                  const Schema& schema) {
  // θ3 hoisted to a selection on T (AN-index equivalent; see header).
  QueryNodePtr s = QueryNode::Select(QueryNode::Source("S", schema),
                                     LeftEq(0, spec.c1));
  QueryNodePtr t = QueryNode::Select(QueryNode::Source("T", schema),
                                     LeftEq(0, spec.c3));
  return Query{name, QueryNode::Sequence(s, t, nullptr, spec.window)};
}

std::vector<W2Spec> DrawW2Specs(const SyntheticParams& params, bool iterate,
                                Rng& rng) {
  QueryParamSampler sampler(params);
  std::vector<W2Spec> specs;
  specs.reserve(params.num_queries);
  for (int i = 0; i < params.num_queries; ++i) {
    specs.push_back({sampler.Window(rng), iterate});
  }
  return specs;
}

CayugaAutomaton MakeW2Automaton(const std::string& name, const W2Spec& spec,
                                const Schema& schema) {
  CayugaAutomaton a(name, "S", schema, nullptr);
  if (spec.iterate) {
    a.AddStage({CayugaStateKind::kIterate, "T", Equi(0, 0),
                MonotonicRebind(schema.size()), spec.window},
               schema);
  } else {
    a.AddStage({CayugaStateKind::kSequence, "T", Equi(0, 0), nullptr,
                spec.window},
               schema);
  }
  return a;
}

Query MakeW2Query(const std::string& name, const W2Spec& spec,
                  const Schema& schema) {
  QueryNodePtr s = QueryNode::Source("S", schema);
  QueryNodePtr t = QueryNode::Source("T", schema);
  if (spec.iterate) {
    return Query{name,
                 QueryNode::IterateSplit(s, t, Equi(0, 0),
                                         MonotonicRebind(schema.size()),
                                         spec.window)};
  }
  return Query{name, QueryNode::Sequence(s, t, Equi(0, 0), spec.window)};
}

Query MakeW3Query(const std::string& name, int source_index, int64_t window,
                  const Schema& schema) {
  QueryNodePtr s = QueryNode::Source(StrCat("S", source_index), schema,
                                     /*sharable_label=*/0);
  QueryNodePtr t = QueryNode::Source("T", schema);
  return Query{name, QueryNode::Sequence(s, t, Equi(0, 0), window)};
}

}  // namespace rumor
