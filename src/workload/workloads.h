// Query-workload generators for the paper's evaluation (§5.2, §5.3). Each
// generator produces the *same* logical queries in both representations:
// Cayuga automata (for the baseline engine) and RUMOR logical queries (for
// compile + optimize), drawn from one specification.
//
// Workload 1:  σ(S.a0 = c1)(S)  ;[w]  σ(T.a0 = c3)(T)
//   (exercises FR + AN indexes / rule sσ; constants and windows Zipf-drawn).
//   On the RUMOR side the event-only predicate θ3 is hoisted to a selection
//   on T — the plan-level equivalent of the AN index (§4.3); hoisting an
//   event-only conjunct out of ; preserves semantics exactly.
// Workload 2:  S  ;[w, S.a0 = T.a0]  T          (AI index / hashed ; state)
// Workload 2µ: S  µ[w, S.a0 = T.a0, T.a1 > last.a1]  T
// Workload 3:  Si ;[w, Si.a0 = T.a0] T  for sharable sources S1..Sk
//   (channel capacity k; identical definitions so rule c; applies).
#ifndef RUMOR_WORKLOAD_WORKLOADS_H_
#define RUMOR_WORKLOAD_WORKLOADS_H_

#include <string>
#include <vector>

#include "cayuga/automaton.h"
#include "query/query.h"
#include "workload/synthetic.h"

namespace rumor {

struct W1Spec {
  int64_t c1 = 0;
  int64_t c3 = 0;
  int64_t window = 1;
};

// Draws `params.num_queries` Workload-1 specs.
std::vector<W1Spec> DrawW1Specs(const SyntheticParams& params, Rng& rng);

CayugaAutomaton MakeW1Automaton(const std::string& name, const W1Spec& spec,
                                const Schema& schema);
Query MakeW1Query(const std::string& name, const W1Spec& spec,
                  const Schema& schema);

struct W2Spec {
  int64_t window = 1;
  bool iterate = false;  // false: ; template, true: µ template
};

std::vector<W2Spec> DrawW2Specs(const SyntheticParams& params, bool iterate,
                                Rng& rng);

CayugaAutomaton MakeW2Automaton(const std::string& name, const W2Spec& spec,
                                const Schema& schema);
Query MakeW2Query(const std::string& name, const W2Spec& spec,
                  const Schema& schema);

// Workload 3: query i reads source S<i % capacity> (sharable label 0) and
// the common stream T; all definitions identical so the channel rule fires.
Query MakeW3Query(const std::string& name, int source_index, int64_t window,
                  const Schema& schema);

}  // namespace rumor

#endif  // RUMOR_WORKLOAD_WORKLOADS_H_
