#include "mop/aggregate_mop.h"

#include <gtest/gtest.h>

#include <map>

#include "mop_test_util.h"

namespace rumor {
namespace {

using Sharing = AggregateMop::Sharing;

AggregateMop::Member M(AggFn fn, int attr, std::vector<int> groups,
                       int64_t window, int slot = 0) {
  return {slot, AggMemberSpec{fn, attr, std::move(groups), window}};
}

// Brute-force oracle: aggregate over all pushed tuples with ts in
// (t - window, t] and matching group, per the documented contract.
class Oracle {
 public:
  Oracle(AggFn fn, int attr, std::vector<int> groups, int64_t window)
      : fn_(fn), attr_(attr), groups_(std::move(groups)), window_(window) {}

  Tuple Push(const Tuple& t) {
    history_.push_back(t);
    Timestamp now = t.ts();
    ValueVec key = GroupKeyOf(t, groups_);
    int64_t count = 0, isum = 0;
    double dsum = 0;
    Value min_v, max_v;
    bool first = true;
    for (const Tuple& h : history_) {
      if (h.ts() <= now - window_ || h.ts() > now) continue;
      if (!(GroupKeyOf(h, groups_) == key)) continue;
      ++count;
      if (attr_ >= 0) {
        const Value& v = h.at(attr_);
        if (v.type() == ValueType::kInt) {
          isum += v.AsInt();
        } else {
          dsum += v.ToNumeric();
        }
        if (first || v < min_v) min_v = v;
        if (first || v > max_v) max_v = v;
        first = false;
      }
    }
    Value result;
    switch (fn_) {
      case AggFn::kCount: result = Value(count); break;
      case AggFn::kSum: result = Value(isum); break;
      case AggFn::kAvg:
        result = Value((dsum + static_cast<double>(isum)) /
                       static_cast<double>(count));
        break;
      case AggFn::kMin: result = min_v; break;
      case AggFn::kMax: result = max_v; break;
    }
    std::vector<Value> out = key.values;
    out.push_back(result);
    return Tuple::Make(std::move(out), now);
  }

 private:
  AggFn fn_;
  int attr_;
  std::vector<int> groups_;
  int64_t window_;
  std::vector<Tuple> history_;
};

TEST(AggregateMopTest, CountNoGroup) {
  AggregateMop mop({M(AggFn::kCount, -1, {}, 10)}, Sharing::kIsolated,
                   OutputMode::kPerMemberPorts);
  CollectingEmitter out(1);
  mop.Process(0, Plain(Tuple::MakeInts({1}, 1)), out);
  mop.Process(0, Plain(Tuple::MakeInts({2}, 2)), out);
  mop.Process(0, Plain(Tuple::MakeInts({3}, 15)), out);  // first two expired
  ASSERT_EQ(out.port(0).size(), 3u);
  EXPECT_EQ(out.port(0)[0].tuple.at(0).AsInt(), 1);
  EXPECT_EQ(out.port(0)[1].tuple.at(0).AsInt(), 2);
  EXPECT_EQ(out.port(0)[2].tuple.at(0).AsInt(), 1);
}

TEST(AggregateMopTest, SumWithGroupBy) {
  AggregateMop mop({M(AggFn::kSum, 1, {0}, 100)}, Sharing::kIsolated,
                   OutputMode::kPerMemberPorts);
  CollectingEmitter out(1);
  mop.Process(0, Plain(Tuple::MakeInts({7, 10}, 1)), out);
  mop.Process(0, Plain(Tuple::MakeInts({8, 5}, 2)), out);
  mop.Process(0, Plain(Tuple::MakeInts({7, 3}, 3)), out);
  ASSERT_EQ(out.port(0).size(), 3u);
  // (group, sum)
  EXPECT_EQ(out.port(0)[0].tuple.at(1).AsInt(), 10);
  EXPECT_EQ(out.port(0)[1].tuple.at(1).AsInt(), 5);
  EXPECT_EQ(out.port(0)[2].tuple.at(1).AsInt(), 13);
}

TEST(AggregateMopTest, AvgSlidesOut) {
  AggregateMop mop({M(AggFn::kAvg, 0, {}, 2)}, Sharing::kIsolated,
                   OutputMode::kPerMemberPorts);
  CollectingEmitter out(1);
  mop.Process(0, Plain(Tuple::MakeInts({4}, 1)), out);
  mop.Process(0, Plain(Tuple::MakeInts({8}, 2)), out);
  mop.Process(0, Plain(Tuple::MakeInts({1}, 3)), out);  // window (1,3]: {8,1}
  ASSERT_EQ(out.port(0).size(), 3u);
  EXPECT_DOUBLE_EQ(out.port(0)[0].tuple.at(0).AsDouble(), 4.0);
  EXPECT_DOUBLE_EQ(out.port(0)[1].tuple.at(0).AsDouble(), 6.0);
  EXPECT_DOUBLE_EQ(out.port(0)[2].tuple.at(0).AsDouble(), 4.5);
}

TEST(AggregateMopTest, MinMaxWithExpiry) {
  AggregateMop mop(
      {M(AggFn::kMin, 0, {}, 5), M(AggFn::kMax, 0, {}, 5)},
      Sharing::kIsolated, OutputMode::kPerMemberPorts);
  CollectingEmitter out(2);
  mop.Process(0, Plain(Tuple::MakeInts({3}, 1)), out);
  mop.Process(0, Plain(Tuple::MakeInts({9}, 2)), out);
  mop.Process(0, Plain(Tuple::MakeInts({5}, 7)), out);  // {9 (ts2)? no: 2<=7-5 expired} -> {5}
  ASSERT_EQ(out.port(0).size(), 3u);
  EXPECT_EQ(out.port(0)[2].tuple.at(0).AsInt(), 5);
  EXPECT_EQ(out.port(1)[1].tuple.at(0).AsInt(), 9);
}

// Property: every aggregate function matches the brute-force oracle.
class AggregateOracleTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, AggFn>> {};

TEST_P(AggregateOracleTest, MatchesBruteForce) {
  auto [seed, fn] = GetParam();
  Rng rng(seed);
  const int attr = fn == AggFn::kCount ? -1 : 1;
  std::vector<int> groups = {0};
  const int64_t window = 1 + rng.UniformInt(1, 20);

  AggregateMop mop({M(fn, attr, groups, window)}, Sharing::kIsolated,
                   OutputMode::kPerMemberPorts);
  Oracle oracle(fn, attr, groups, window);
  CollectingEmitter out(1);
  Timestamp ts = 0;
  std::vector<Tuple> expected;
  for (int i = 0; i < 200; ++i) {
    ts += rng.UniformInt(0, 3);
    Tuple t = RandomTuple(rng, 3, 4, ts);
    expected.push_back(oracle.Push(t));
    mop.Process(0, Plain(t), out);
  }
  ASSERT_EQ(out.port(0).size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_TRUE(out.port(0)[i].tuple.ContentEquals(expected[i]))
        << "i=" << i << " got " << out.port(0)[i].tuple.ToString()
        << " want " << expected[i].ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AggregateOracleTest,
    ::testing::Combine(::testing::Range<uint64_t>(0, 6),
                       ::testing::Values(AggFn::kCount, AggFn::kSum,
                                         AggFn::kAvg, AggFn::kMin,
                                         AggFn::kMax)));

// Property: shared aggregation (sα) ≡ isolated members, with different
// group-bys and windows.
class SharedAggPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SharedAggPropertyTest, SharedMatchesIsolated) {
  Rng rng(GetParam());
  const int num_members = 1 + static_cast<int>(rng.UniformInt(1, 6));
  AggFn fn = static_cast<AggFn>(rng.UniformInt(0, 4));
  int attr = fn == AggFn::kCount ? -1 : 2;

  std::vector<AggregateMop::Member> members;
  for (int i = 0; i < num_members; ++i) {
    std::vector<int> groups;
    if (rng.Bernoulli(0.7)) groups.push_back(static_cast<int>(rng.UniformInt(0, 1)));
    if (rng.Bernoulli(0.3)) groups.push_back(static_cast<int>(rng.UniformInt(0, 2)));
    members.push_back(M(fn, attr, groups, 1 + rng.UniformInt(1, 30)));
  }
  AggregateMop shared(members, Sharing::kShared, OutputMode::kPerMemberPorts);
  AggregateMop isolated(members, Sharing::kIsolated,
                        OutputMode::kPerMemberPorts);
  CollectingEmitter s_out(num_members), i_out(num_members);
  Timestamp ts = 0;
  for (int i = 0; i < 300; ++i) {
    ts += rng.UniformInt(0, 2);
    Tuple t = RandomTuple(rng, 4, 3, ts);
    shared.Process(0, Plain(t), s_out);
    isolated.Process(0, Plain(t), i_out);
  }
  for (int m = 0; m < num_members; ++m) {
    // Order is deterministic for aggregates: compare sequences exactly.
    ASSERT_EQ(s_out.port(m).size(), i_out.port(m).size()) << "member " << m;
    for (size_t k = 0; k < s_out.port(m).size(); ++k) {
      EXPECT_TRUE(
          s_out.port(m)[k].tuple.ContentEquals(i_out.port(m)[k].tuple))
          << "member " << m << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SharedAggPropertyTest,
                         ::testing::Range<uint64_t>(0, 12));

// Property: fragment aggregation (cα) over a channel ≡ isolated members
// reading their slots.
class FragmentAggPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FragmentAggPropertyTest, FragmentMatchesIsolated) {
  Rng rng(GetParam());
  const int capacity = 1 + static_cast<int>(rng.UniformInt(1, 6));
  AggFn fn = static_cast<AggFn>(rng.UniformInt(0, 4));
  int attr = fn == AggFn::kCount ? -1 : 1;
  AggMemberSpec spec{fn, attr, {0}, 1 + rng.UniformInt(1, 20)};

  std::vector<AggregateMop::Member> members;
  for (int i = 0; i < capacity; ++i) members.push_back({i, spec});
  AggregateMop fragment(members, Sharing::kFragment,
                        OutputMode::kPerMemberPorts);
  AggregateMop isolated(members, Sharing::kIsolated,
                        OutputMode::kPerMemberPorts);
  CollectingEmitter f_out(capacity), i_out(capacity);
  Timestamp ts = 0;
  for (int i = 0; i < 300; ++i) {
    ts += rng.UniformInt(0, 2);
    ChannelTuple ct{RandomTuple(rng, 3, 3, ts),
                    RandomMembership(rng, capacity)};
    fragment.Process(0, ct, f_out);
    isolated.Process(0, ct, i_out);
  }
  for (int m = 0; m < capacity; ++m) {
    ASSERT_EQ(f_out.port(m).size(), i_out.port(m).size()) << "member " << m;
    for (size_t k = 0; k < f_out.port(m).size(); ++k) {
      EXPECT_TRUE(
          f_out.port(m)[k].tuple.ContentEquals(i_out.port(m)[k].tuple))
          << "member " << m << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FragmentAggPropertyTest,
                         ::testing::Range<uint64_t>(0, 12));

// Regression: a SUM window that has seen double entries must revert to the
// integer representation once every double entry has expired — the double
// tag (and any floating-point residue in the double accumulator) must not
// outlive the entries that caused it.
TEST(AggregateMopTest, SumRevertsToIntegerAfterDoublesExpire) {
  AggregateMop mop({M(AggFn::kSum, 0, {}, 3)}, Sharing::kIsolated,
                   OutputMode::kPerMemberPorts);
  CollectingEmitter out(1);
  mop.Process(0, Plain(Tuple::MakeInts({5}, 1)), out);
  mop.Process(0, Plain(Tuple::Make({Value(2.5)}, 2)), out);
  // Window (0,3]: {5, 2.5} -> double sum while the double entry is live.
  ASSERT_EQ(out.port(0).size(), 2u);
  EXPECT_EQ(out.port(0)[1].tuple.at(0).type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(out.port(0)[1].tuple.at(0).AsDouble(), 7.5);
  // ts 6: both earlier entries expired; only the new int is in-window.
  mop.Process(0, Plain(Tuple::MakeInts({4}, 6)), out);
  ASSERT_EQ(out.port(0).size(), 3u);
  EXPECT_EQ(out.port(0)[2].tuple.at(0).type(), ValueType::kInt);
  EXPECT_EQ(out.port(0)[2].tuple.at(0).AsInt(), 4);
}

// Regression: floating-point residue from expired double entries must not
// contaminate later double sums (0.1 + 0.2 expiring leaves ~4e-17 in a
// naive accumulator, turning a later exact 0.3 into 0.30000000000000004).
TEST(AggregateMopTest, SumDoubleResidueDoesNotLeak) {
  AggregateMop mop({M(AggFn::kSum, 0, {}, 2)}, Sharing::kIsolated,
                   OutputMode::kPerMemberPorts);
  CollectingEmitter out(1);
  mop.Process(0, Plain(Tuple::Make({Value(0.1)}, 1)), out);
  mop.Process(0, Plain(Tuple::Make({Value(0.2)}, 2)), out);
  // ts 10: both expired. ts 11: a fresh double window holding only 0.3.
  mop.Process(0, Plain(Tuple::MakeInts({0}, 10)), out);
  mop.Process(0, Plain(Tuple::Make({Value(0.3)}, 11)), out);
  ASSERT_EQ(out.port(0).size(), 4u);
  EXPECT_EQ(out.port(0)[3].tuple.at(0).AsDouble(), 0.3);
}

// Unit coverage for the two-stacks extrema structure itself (FIFO windows
// with arbitrary push/pop interleavings, both orderings).
TEST(TwoStacksExtremaTest, MatchesNaiveWindowExtrema) {
  for (bool min : {true, false}) {
    Rng rng(min ? 11 : 12);
    TwoStacksExtrema extrema;
    std::vector<int64_t> window;
    for (int step = 0; step < 2000; ++step) {
      if (window.empty() || rng.UniformInt(0, 2) != 0) {
        int64_t v = rng.UniformInt(0, 50);
        extrema.Push(Value(v), min);
        window.push_back(v);
      } else {
        extrema.PopFront(Value(window.front()), min);
        window.erase(window.begin());
      }
      ASSERT_EQ(extrema.size(), window.size());
      if (!window.empty()) {
        int64_t expected = min ? *std::min_element(window.begin(), window.end())
                               : *std::max_element(window.begin(), window.end());
        ASSERT_EQ(extrema.Best(min).AsInt(), expected) << "step " << step;
      }
    }
  }
}

}  // namespace
}  // namespace rumor
