// Batched execution must be observably identical to event-at-a-time
// execution: for every workload, pushing the feed through PushSourceBatch
// (grouped into maximal same-stream runs) must produce byte-identical
// per-query sink output and the same number of m-op deliveries as pushing
// tuple by tuple. Also cross-checks the two MIN/MAX aggregation
// implementations (two-stacks vs legacy ordered multiset) against each
// other under both dispatch modes.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "mop/window.h"
#include "plan/compile.h"
#include "plan/executor.h"
#include "query/builder.h"
#include "rules/rule_engine.h"
#include "workload/perfmon.h"
#include "workload/workloads.h"

namespace rumor {
namespace {

struct RunResult {
  // query name -> rendered output tuples, in delivery order.
  std::map<std::string, std::vector<std::string>> outputs;
  int64_t deliveries = 0;
};

// Runs `queries` over `events`; batch_size 0 = event-at-a-time reference.
RunResult RunWorkload(const std::vector<Query>& queries,
              const std::vector<Event>& events,
              const std::vector<std::string>& stream_names,
              int64_t batch_size) {
  Plan plan;
  auto compiled = CompileQueries(queries, &plan);
  RUMOR_CHECK(compiled.ok()) << compiled.status().ToString();
  Optimize(&plan);
  CollectingSink sink;
  Executor exec(&plan, &sink);
  exec.Prepare();
  std::vector<StreamId> streams;
  for (const std::string& name : stream_names) {
    streams.push_back(*plan.streams().FindSource(name));
  }

  if (batch_size == 0) {
    for (const Event& e : events) {
      exec.PushSource(streams[e.stream], e.tuple);
    }
  } else {
    std::vector<Tuple> batch;
    size_t i = 0;
    while (i < events.size()) {
      const int stream = events[i].stream;
      batch.clear();
      while (i < events.size() && events[i].stream == stream &&
             static_cast<int64_t>(batch.size()) < batch_size) {
        batch.push_back(events[i].tuple);
        ++i;
      }
      exec.PushSourceBatch(streams[stream], batch);
    }
  }

  RunResult result;
  result.deliveries = exec.deliveries();
  for (const Query& q : queries) {
    auto stream = plan.OutputStreamOf(q.name);
    RUMOR_CHECK(stream.has_value());
    std::vector<std::string>& rendered = result.outputs[q.name];
    for (const Tuple& t : sink.ForStream(*stream)) {
      rendered.push_back(t.ToString());
    }
  }
  return result;
}

void ExpectBatchEquivalence(const std::vector<Query>& queries,
                            const std::vector<Event>& events,
                            const std::vector<std::string>& stream_names) {
  RunResult reference = RunWorkload(queries, events, stream_names, 0);
  int64_t total = 0;
  for (const auto& [name, tuples] : reference.outputs) {
    total += tuples.size();
  }
  EXPECT_GT(total, 0) << "workload produced no output; vacuous comparison";
  for (int64_t batch_size : {1, 7, 64, 100000}) {
    RunResult batched = RunWorkload(queries, events, stream_names, batch_size);
    EXPECT_EQ(batched.outputs, reference.outputs)
        << "batch_size=" << batch_size;
    EXPECT_EQ(batched.deliveries, reference.deliveries)
        << "batch_size=" << batch_size;
  }
}

// Interleaved S/T feed with same-stream bursts so batches exercise runs of
// length > 1 (the strictly alternating generator feed would degenerate to
// single-tuple batches).
std::vector<Event> BurstyFeed(const SyntheticParams& params, int64_t count,
                              int64_t burst, Rng& rng) {
  std::vector<Event> events =
      GenerateInterleaved(params, count, 0, rng);
  for (int64_t i = 0; i < count; ++i) {
    events[i].stream = static_cast<int>((i / burst) % 2);
  }
  return events;
}

TEST(BatchEquivalenceTest, W1SelectionSequence) {
  SyntheticParams params;
  params.num_queries = 8;
  params.constant_domain = 4;
  Rng rng(3);
  auto specs = DrawW1Specs(params, rng);
  Schema schema = params.MakeSchema();
  std::vector<Query> queries;
  for (size_t i = 0; i < specs.size(); ++i) {
    specs[i].c1 %= 4;
    specs[i].c3 %= 4;
    queries.push_back(MakeW1Query("Q" + std::to_string(i), specs[i], schema));
  }
  Rng feed(99);
  ExpectBatchEquivalence(queries, BurstyFeed(params, 600, 5, feed),
                         {"S", "T"});
}

TEST(BatchEquivalenceTest, W2SequenceAndIterate) {
  SyntheticParams params;
  params.num_queries = 5;
  params.constant_domain = 4;
  for (bool iterate : {false, true}) {
    Rng rng(4);
    auto specs = DrawW2Specs(params, iterate, rng);
    Schema schema = params.MakeSchema();
    std::vector<Query> queries;
    for (size_t i = 0; i < specs.size(); ++i) {
      queries.push_back(
          MakeW2Query("Q" + std::to_string(i), specs[i], schema));
    }
    Rng feed(98);
    ExpectBatchEquivalence(queries, BurstyFeed(params, 400, 3, feed),
                           {"S", "T"});
  }
}

TEST(BatchEquivalenceTest, HybridPerfmonQueries) {
  PerfmonParams params;
  params.num_processes = 8;
  params.duration_seconds = 120;
  auto trace = GeneratePerfmonTrace(params);
  std::vector<Event> events;
  for (const Tuple& t : trace) events.push_back(Event{0, t});
  std::vector<Query> queries;
  for (int i = 0; i < 4; ++i) {
    queries.push_back(MakeHybridQuery(i, /*sel=*/0.8, /*smooth_window=*/10));
  }
  ExpectBatchEquivalence(queries, events, {"CPU"});
}

TEST(BatchEquivalenceTest, SharedMinMaxAggregationAcrossImplementations) {
  // N MIN + N MAX queries with distinct windows over one source; rule sα
  // merges each function group into one shared engine. Compares every
  // (dispatch mode, MIN/MAX implementation) combination.
  PerfmonParams params;
  params.num_processes = 6;
  params.duration_seconds = 200;
  auto trace = GeneratePerfmonTrace(params);
  std::vector<Event> events;
  for (const Tuple& t : trace) events.push_back(Event{0, t});

  std::vector<Query> queries;
  Schema schema = PerfmonSchema();
  for (int i = 0; i < 4; ++i) {
    queries.push_back(QueryBuilder::FromSource("CPU", schema)
                          .Aggregate(AggFn::kMin, "load", {"pid"}, 10 + 13 * i)
                          .Build("MIN" + std::to_string(i)));
    queries.push_back(QueryBuilder::FromSource("CPU", schema)
                          .Aggregate(AggFn::kMax, "load", {"pid"}, 7 + 11 * i)
                          .Build("MAX" + std::to_string(i)));
  }

  SharedAggEngine::SetDefaultMinMaxImpl(MinMaxImpl::kOrderedSet);
  RunResult ordered_reference = RunWorkload(queries, events, {"CPU"}, 0);
  SharedAggEngine::SetDefaultMinMaxImpl(MinMaxImpl::kTwoStacks);
  ExpectBatchEquivalence(queries, events, {"CPU"});
  RunResult two_stacks = RunWorkload(queries, events, {"CPU"}, 0);
  EXPECT_EQ(two_stacks.outputs, ordered_reference.outputs)
      << "two-stacks vs ordered-set MIN/MAX maintenance diverged";
}

// A sink handler may push back into the executor from inside a batch; the
// nested tuples must be deferred until the batch's own tuples have reached
// their consumers (running them mid-batch would deliver a later timestamp
// ahead of buffered earlier ones). With independent sources, both dispatch
// modes must agree on every query's output.
TEST(BatchEquivalenceTest, ReentrantSinkPushIsDeferred) {
  Schema schema = Schema::MakeInts(2);
  Query qa = QueryBuilder::FromSource("A", schema)
                 .Aggregate(AggFn::kMin, "a1", {}, 10)
                 .Build("QA");
  Query qb = QueryBuilder::FromSource("B", schema)
                 .Count({}, 5)
                 .Build("QB");

  class FeedbackSink : public CollectingSink {
   public:
    Executor* exec = nullptr;
    StreamId b_stream = -1;
    StreamId a_out = -1;
    void OnOutput(StreamId stream, const Tuple& t) override {
      CollectingSink::OnOutput(stream, t);
      if (stream == a_out && pushed_ < 50) {
        ++pushed_;
        exec->PushSource(b_stream, Tuple::MakeInts({9, pushed_}, t.ts()));
      }
    }

   private:
    int pushed_ = 0;
  };

  auto run = [&](int64_t batch_size) {
    Plan plan;
    auto compiled = CompileQueries({qa, qb}, &plan);
    RUMOR_CHECK(compiled.ok()) << compiled.status().ToString();
    Optimize(&plan);
    FeedbackSink sink;
    Executor exec(&plan, &sink);
    exec.Prepare();
    sink.exec = &exec;
    sink.b_stream = *plan.streams().FindSource("B");
    sink.a_out = *plan.OutputStreamOf("QA");
    StreamId a = *plan.streams().FindSource("A");
    std::vector<Tuple> feed;
    Rng rng(17);
    for (int ts = 0; ts < 100; ++ts) {
      feed.push_back(Tuple::MakeInts({ts, rng.UniformInt(0, 99)}, ts));
    }
    if (batch_size == 0) {
      for (const Tuple& t : feed) exec.PushSource(a, t);
    } else {
      exec.PushSourceBatch(a, feed);
    }
    auto render = [&](const char* q) {
      std::vector<std::string> out;
      for (const Tuple& t : sink.ForStream(*plan.OutputStreamOf(q))) {
        out.push_back(t.ToString());
      }
      return out;
    };
    return std::make_pair(render("QA"), render("QB"));
  };

  auto reference = run(0);
  auto batched = run(64);
  EXPECT_EQ(batched.first, reference.first);
  EXPECT_EQ(batched.second, reference.second);
  EXPECT_EQ(reference.second.size(), 50u);
}

TEST(BatchEquivalenceTest, W3ChannelBatches) {
  // Workload 3 feeds a source-group channel directly; PushChannelBatch must
  // match per-tuple PushChannel. The plan joins the channel against T, so
  // the channel root is batch-unsafe and exercises the fallback.
  const int n = 6;
  Schema schema = SyntheticParams().MakeSchema();
  std::vector<Query> queries;
  for (int i = 0; i < n; ++i) {
    queries.push_back(MakeW3Query("Q" + std::to_string(i), i, 50, schema));
  }
  auto run = [&](bool batched) {
    Plan plan;
    auto compiled = CompileQueries(queries, &plan);
    RUMOR_CHECK(compiled.ok());
    OptimizerOptions opts;
    opts.enable_channels = true;
    Optimize(&plan, opts);
    CollectingSink sink;
    Executor exec(&plan, &sink);
    exec.Prepare();
    auto groups = plan.SourceGroupChannels();
    RUMOR_CHECK(groups.size() == 1);
    StreamId t_stream = *plan.streams().FindSource("T");
    Rng rng(5);
    std::vector<ChannelTuple> pending;
    for (int r = 0; r < 200; ++r) {
      Tuple s = Tuple::MakeInts({rng.UniformInt(0, 3), 0}, 2 * r);
      ChannelTuple ct{s, BitVector::AllOnes(n)};
      if (batched) {
        pending.push_back(ct);
      } else {
        exec.PushChannel(groups[0], ct);
      }
      if (r % 8 == 7) {
        if (batched) {
          exec.PushChannelBatch(groups[0], pending);
          pending.clear();
        }
        Tuple t = Tuple::MakeInts({rng.UniformInt(0, 3), 0}, 2 * r + 1);
        exec.PushSource(t_stream, t);
      }
    }
    exec.PushChannelBatch(groups[0], pending);
    std::map<std::string, std::vector<std::string>> outputs;
    for (const Query& q : queries) {
      for (const Tuple& t : sink.ForStream(*plan.OutputStreamOf(q.name))) {
        outputs[q.name].push_back(t.ToString());
      }
    }
    return std::make_pair(outputs, exec.deliveries());
  };
  auto per_tuple = run(false);
  auto batched = run(true);
  EXPECT_EQ(batched.first, per_tuple.first);
  EXPECT_EQ(batched.second, per_tuple.second);
  int64_t total = 0;
  for (const auto& [name, tuples] : per_tuple.first) total += tuples.size();
  EXPECT_GT(total, 0);
}

}  // namespace
}  // namespace rumor
