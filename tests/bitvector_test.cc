#include "common/bitvector.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace rumor {
namespace {

TEST(BitVectorTest, EmptyIsNone) {
  BitVector bv(100);
  EXPECT_TRUE(bv.None());
  EXPECT_FALSE(bv.Any());
  EXPECT_EQ(bv.Count(), 0);
}

TEST(BitVectorTest, SetTestReset) {
  BitVector bv(130);
  bv.Set(0);
  bv.Set(64);
  bv.Set(129);
  EXPECT_TRUE(bv.Test(0));
  EXPECT_TRUE(bv.Test(64));
  EXPECT_TRUE(bv.Test(129));
  EXPECT_FALSE(bv.Test(1));
  EXPECT_EQ(bv.Count(), 3);
  bv.Reset(64);
  EXPECT_FALSE(bv.Test(64));
  EXPECT_EQ(bv.Count(), 2);
}

TEST(BitVectorTest, Singleton) {
  BitVector bv = BitVector::Singleton(7, 32);
  EXPECT_EQ(bv.Count(), 1);
  EXPECT_TRUE(bv.Test(7));
}

TEST(BitVectorTest, AllOnesPaddingIsClean) {
  BitVector bv = BitVector::AllOnes(70);
  EXPECT_EQ(bv.Count(), 70);
  EXPECT_EQ(bv.ToIndexes().size(), 70u);
}

TEST(BitVectorTest, AndOrSubtract) {
  BitVector a(10), b(10);
  a.Set(1);
  a.Set(3);
  b.Set(3);
  b.Set(5);
  BitVector u = a | b;
  EXPECT_EQ(u.ToIndexes(), (std::vector<int>{1, 3, 5}));
  BitVector i = a & b;
  EXPECT_EQ(i.ToIndexes(), (std::vector<int>{3}));
  BitVector d = a;
  d.Subtract(b);
  EXPECT_EQ(d.ToIndexes(), (std::vector<int>{1}));
}

TEST(BitVectorTest, ContainsAndIntersects) {
  BitVector a(10), b(10), c(10);
  a.Set(1);
  a.Set(2);
  b.Set(1);
  c.Set(3);
  EXPECT_TRUE(a.Contains(b));
  EXPECT_FALSE(b.Contains(a));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
}

TEST(BitVectorTest, EqualityAndHash) {
  BitVector a(65), b(65);
  a.Set(64);
  b.Set(64);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  b.Set(0);
  EXPECT_NE(a, b);
}

TEST(BitVectorTest, ForEachAscending) {
  BitVector a(200);
  std::vector<int> expected = {0, 63, 64, 127, 128, 199};
  for (int i : expected) a.Set(i);
  EXPECT_EQ(a.ToIndexes(), expected);
}

TEST(BitVectorTest, ToStringFormat) {
  BitVector a(8);
  a.Set(0);
  a.Set(3);
  EXPECT_EQ(a.ToString(), "{0,3}");
}

TEST(BitVectorTest, ShrinkThenGrowDropsBits) {
  // Bits dropped by a shrink must not resurrect on a later re-grow, across
  // every storage transition (heap->inline, inline->inline, heap->heap).
  for (int initial : {300, 200, 128, 90}) {
    for (int small : {150, 65, 40, 10}) {
      if (small >= initial) continue;
      BitVector bv(initial);
      bv.Set(small);  // first index dropped by the shrink
      bv.Set(initial - 1);
      bv.Set(small - 1);
      bv.Resize(small);
      EXPECT_TRUE(bv.Test(small - 1));
      bv.Resize(initial);
      EXPECT_FALSE(bv.Test(small))
          << "phantom bit after " << initial << "->" << small << " resize";
      EXPECT_FALSE(bv.Test(initial - 1)) << initial << "->" << small;
      EXPECT_EQ(bv.Count(), 1) << initial << "->" << small;
    }
  }
}

TEST(BitVectorTest, AssignZeroReusesAndClears) {
  BitVector bv(100);
  bv.Set(3);
  bv.Set(99);
  bv.AssignZero(80);
  EXPECT_EQ(bv.size(), 80);
  EXPECT_TRUE(bv.None());
  bv.AssignZero(200);
  EXPECT_EQ(bv.size(), 200);
  EXPECT_TRUE(bv.None());
  bv.Set(199);
  bv.AssignZero(100);
  EXPECT_TRUE(bv.None());
}

// Property sweep: boolean algebra laws on random vectors.
class BitVectorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BitVectorPropertyTest, AlgebraLaws) {
  Rng rng(GetParam());
  const int size = 1 + static_cast<int>(rng.UniformInt(1, 300));
  auto random_bv = [&]() {
    BitVector bv(size);
    for (int i = 0; i < size; ++i) {
      if (rng.Bernoulli(0.3)) bv.Set(i);
    }
    return bv;
  };
  BitVector a = random_bv(), b = random_bv(), c = random_bv();
  // Commutativity.
  EXPECT_EQ(a | b, b | a);
  EXPECT_EQ(a & b, b & a);
  // Associativity.
  EXPECT_EQ((a | b) | c, a | (b | c));
  EXPECT_EQ((a & b) & c, a & (b & c));
  // Distributivity.
  EXPECT_EQ(a & (b | c), (a & b) | (a & c));
  // Absorption.
  EXPECT_EQ(a | (a & b), a);
  EXPECT_EQ(a & (a | b), a);
  // Count under disjoint union: |a| + |b| = |a&b| + |a|b|.
  EXPECT_EQ(a.Count() + b.Count(), (a & b).Count() + (a | b).Count());
  // Contains/Intersects consistency.
  EXPECT_TRUE((a | b).Contains(a));
  if ((a & b).Any()) {
    EXPECT_TRUE(a.Intersects(b));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitVectorPropertyTest,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace rumor
