#include "cayuga/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "cayuga/translator.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "plan/compile.h"
#include "plan/executor.h"
#include "rules/rule_engine.h"

namespace rumor {
namespace {

Schema TenInts() { return Schema::MakeInts(10); }

Tuple T10(std::vector<int64_t> firsts, Timestamp ts) {
  firsts.resize(10, 0);
  return Tuple::MakeInts(firsts, ts);
}

ExprPtr LeftEq(int attr, int64_t c) {
  return Expr::Cmp(CmpOp::kEq, Expr::Attr(Side::kLeft, attr),
                   Expr::ConstInt(c));
}
ExprPtr RightEq(int attr, int64_t c) {
  return Expr::Cmp(CmpOp::kEq, Expr::Attr(Side::kRight, attr),
                   Expr::ConstInt(c));
}
ExprPtr Equi(int la, int ra) {
  return Expr::Cmp(CmpOp::kEq, Expr::Attr(Side::kLeft, la),
                   Expr::Attr(Side::kRight, ra));
}

// Workload-1 template automaton: σ(S.a0=c1) ; (T.a0=c3, window w).
CayugaAutomaton W1Automaton(const std::string& name, int64_t c1, int64_t c3,
                            int64_t w) {
  CayugaAutomaton a(name, "S", TenInts(), LeftEq(0, c1));
  a.AddStage({CayugaStateKind::kSequence, "T", RightEq(0, c3), nullptr, w},
             TenInts());
  return a;
}

// Workload-2 µ template: S µ(S.a0=T.a0, T.a1>last.a1, window w) T.
CayugaAutomaton W2MuAutomaton(const std::string& name, int64_t w) {
  CayugaAutomaton a(name, "S", TenInts(), nullptr);
  // In the instance concat space, last.a1 is left attr 10 + 1.
  ExprPtr rebind = Expr::Cmp(CmpOp::kGt, Expr::Attr(Side::kRight, 1),
                             Expr::Attr(Side::kLeft, 11));
  a.AddStage({CayugaStateKind::kIterate, "T", Equi(0, 0), rebind, w},
             TenInts());
  return a;
}

TEST(CayugaEngineTest, BasicSequenceMatch) {
  CayugaEngine engine;
  engine.AddAutomaton(W1Automaton("Q0", 1, 2, 100));
  std::vector<std::pair<int, Tuple>> outputs;
  engine.SetOutputHandler(
      [&](int q, const Tuple& t) { outputs.push_back({q, t}); });
  engine.OnEvent("S", T10({1}, 0));
  engine.OnEvent("T", T10({2}, 1));
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(outputs[0].first, 0);
  EXPECT_EQ(outputs[0].second.size(), 20);
  EXPECT_EQ(outputs[0].second.ts(), 1);
}

TEST(CayugaEngineTest, ConsumeOnMatch) {
  CayugaEngine engine;
  engine.AddAutomaton(W1Automaton("Q0", 1, 2, 100));
  int outputs = 0;
  engine.SetOutputHandler([&](int, const Tuple&) { ++outputs; });
  engine.OnEvent("S", T10({1}, 0));
  engine.OnEvent("T", T10({2}, 1));
  engine.OnEvent("T", T10({2}, 2));
  EXPECT_EQ(outputs, 1);
  EXPECT_EQ(engine.live_instances(), 0u);
}

TEST(CayugaEngineTest, WindowExpiry) {
  CayugaEngine engine;
  engine.AddAutomaton(W1Automaton("Q0", 1, 2, 5));
  int outputs = 0;
  engine.SetOutputHandler([&](int, const Tuple&) { ++outputs; });
  engine.OnEvent("S", T10({1}, 0));
  engine.OnEvent("T", T10({2}, 10));
  EXPECT_EQ(outputs, 0);
}

TEST(CayugaEngineTest, MuMonotonicRun) {
  CayugaEngine engine;
  engine.AddAutomaton(W2MuAutomaton("Q0", 100));
  std::vector<Tuple> outputs;
  engine.SetOutputHandler(
      [&](int, const Tuple& t) { outputs.push_back(t); });
  engine.OnEvent("S", T10({7, 10}, 0));
  engine.OnEvent("T", T10({7, 12}, 1));
  engine.OnEvent("T", T10({7, 15}, 2));
  engine.OnEvent("T", T10({7, 3}, 3));   // run broken
  engine.OnEvent("T", T10({7, 99}, 4));  // dead
  ASSERT_EQ(outputs.size(), 2u);
  EXPECT_EQ(outputs[1].at(11).AsInt(), 15);
}

TEST(CayugaEngineTest, PrefixMergingSharesIdenticalAutomata) {
  CayugaEngine engine;
  engine.AddAutomaton(W1Automaton("Q0", 1, 2, 100));
  engine.AddAutomaton(W1Automaton("Q1", 1, 2, 100));  // identical
  engine.AddAutomaton(W1Automaton("Q2", 1, 3, 100));  // differs
  EXPECT_EQ(engine.num_nodes(), 2);
  EXPECT_EQ(engine.num_start_edges(), 2);
  std::map<int, int> outputs;
  engine.SetOutputHandler([&](int q, const Tuple&) { ++outputs[q]; });
  engine.OnEvent("S", T10({1}, 0));
  engine.OnEvent("T", T10({2}, 1));
  EXPECT_EQ(outputs[0], 1);
  EXPECT_EQ(outputs[1], 1);  // shared final state fires both queries
  EXPECT_EQ(outputs.count(2), 0u);
}

TEST(CayugaEngineTest, MergingDisabledDuplicatesNodes) {
  CayugaEngine::Options opts;
  opts.merge_prefixes = false;
  CayugaEngine engine(opts);
  engine.AddAutomaton(W1Automaton("Q0", 1, 2, 100));
  engine.AddAutomaton(W1Automaton("Q1", 1, 2, 100));
  EXPECT_EQ(engine.num_nodes(), 2);
  EXPECT_EQ(engine.num_start_edges(), 2);
}

TEST(CayugaEngineTest, DifferentStartPredicatesNeverShareState) {
  // Example-3 caveat: same µ definition, different starting conditions —
  // instances must not leak across queries.
  CayugaEngine engine;
  engine.AddAutomaton(W1Automaton("Q0", 1, 5, 100));
  engine.AddAutomaton(W1Automaton("Q1", 2, 5, 100));
  std::map<int, int> outputs;
  engine.SetOutputHandler([&](int q, const Tuple&) { ++outputs[q]; });
  engine.OnEvent("S", T10({1}, 0));  // starts Q0 only
  engine.OnEvent("T", T10({5}, 1));
  EXPECT_EQ(outputs[0], 1);
  EXPECT_EQ(outputs.count(1), 0u);
}

// Index ablations must not change results.
class CayugaIndexAblationTest
    : public ::testing::TestWithParam<std::tuple<bool, bool, bool>> {};

TEST_P(CayugaIndexAblationTest, SameOutputsWithAndWithoutIndexes) {
  auto [fr, an, ai] = GetParam();
  CayugaEngine::Options opts;
  opts.fr_index = fr;
  opts.an_index = an;
  opts.ai_index = ai;
  CayugaEngine with_opts(opts);
  CayugaEngine baseline(CayugaEngine::Options{false, false, false, true});

  Rng rng(42);
  for (int i = 0; i < 20; ++i) {
    auto a = W1Automaton(StrCat("Q", i), rng.UniformInt(0, 3),
                         rng.UniformInt(0, 3), 10 * (1 + rng.UniformInt(0, 2)));
    with_opts.AddAutomaton(a);
    baseline.AddAutomaton(a);
  }
  std::vector<std::string> got, want;
  with_opts.SetOutputHandler([&](int q, const Tuple& t) {
    got.push_back(StrCat(q, ":", t.ToString()));
  });
  baseline.SetOutputHandler([&](int q, const Tuple& t) {
    want.push_back(StrCat(q, ":", t.ToString()));
  });
  for (int i = 0; i < 400; ++i) {
    Tuple t = T10({rng.UniformInt(0, 3), rng.UniformInt(0, 3)}, i);
    const char* stream = i % 2 == 0 ? "S" : "T";
    with_opts.OnEvent(stream, t);
    baseline.OnEvent(stream, t);
  }
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

INSTANTIATE_TEST_SUITE_P(Ablation, CayugaIndexAblationTest,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool(),
                                            ::testing::Bool()));

// --- translator --------------------------------------------------------------

TEST(TranslatorTest, SequenceShape) {
  Query q = TranslateAutomaton(W1Automaton("Q0", 1, 2, 100));
  // Source(S) -> Select -> Sequence with Source(T).
  EXPECT_EQ(q.root->op(), QueryOp::kSequence);
  EXPECT_EQ(q.root->child(0)->op(), QueryOp::kSelect);
  EXPECT_EQ(q.root->child(0)->child(0)->op(), QueryOp::kSource);
  EXPECT_EQ(q.root->child(1)->op(), QueryOp::kSource);
  EXPECT_EQ(q.root->window(), 100);
}

TEST(TranslatorTest, IterateShape) {
  Query q = TranslateAutomaton(W2MuAutomaton("Q0", 50));
  EXPECT_EQ(q.root->op(), QueryOp::kIterate);
  EXPECT_NE(q.root->match_predicate(), nullptr);
  EXPECT_NE(q.root->rebind_predicate(), nullptr);
}

// The §4.3 claim, tested: the Cayuga engine and the translated + optimized
// RUMOR plan produce identical outputs.
class EngineEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineEquivalenceTest, CayugaMatchesTranslatedPlan) {
  Rng rng(GetParam());
  std::vector<CayugaAutomaton> automata;
  const int n = 2 + static_cast<int>(rng.UniformInt(0, 10));
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.5)) {
      automata.push_back(W1Automaton(StrCat("Q", i), rng.UniformInt(0, 3),
                                     rng.UniformInt(0, 3),
                                     10 * (1 + rng.UniformInt(0, 2))));
    } else {
      automata.push_back(
          W2MuAutomaton(StrCat("Q", i), 10 * (1 + rng.UniformInt(0, 2))));
    }
  }

  // Cayuga side.
  CayugaEngine engine;
  std::map<std::string, std::vector<std::string>> cayuga_out;
  std::vector<std::string> names;
  for (const auto& a : automata) {
    engine.AddAutomaton(a);
    names.push_back(a.name());
  }
  engine.SetOutputHandler([&](int q, const Tuple& t) {
    cayuga_out[names[q]].push_back(t.ToString());
  });

  // RUMOR side: translate, compile, optimize.
  Plan plan;
  std::vector<Query> queries;
  for (const auto& a : automata) queries.push_back(TranslateAutomaton(a));
  auto compiled = CompileQueries(queries, &plan);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  Optimize(&plan);
  CollectingSink sink;
  Executor exec(&plan, &sink);
  exec.Prepare();
  StreamId s = *plan.streams().FindSource("S");
  StreamId t = *plan.streams().FindSource("T");

  Rng feed(GetParam() ^ 0xfeed);
  for (int i = 0; i < 500; ++i) {
    Tuple tup = T10({feed.UniformInt(0, 3), feed.UniformInt(0, 3)}, i);
    if (i % 2 == 0) {
      engine.OnEvent("S", tup);
      exec.PushSource(s, tup);
    } else {
      engine.OnEvent("T", tup);
      exec.PushSource(t, tup);
    }
  }

  for (const CompiledQuery& cq : compiled.value()) {
    std::vector<std::string> rumor_out;
    // CSE may have remapped the query's output stream.
    StreamId out = *plan.OutputStreamOf(cq.name);
    for (const Tuple& tup : sink.ForStream(out)) {
      rumor_out.push_back(tup.ToString());
    }
    std::sort(rumor_out.begin(), rumor_out.end());
    std::vector<std::string>& expected = cayuga_out[cq.name];
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(rumor_out, expected) << "query " << cq.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineEquivalenceTest,
                         ::testing::Range<uint64_t>(0, 12));

}  // namespace
}  // namespace rumor
