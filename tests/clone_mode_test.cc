// CloneWithOutputMode round-trips: for every m-op type the channel rule can
// rebuild, the clone in channel-output mode must produce per-slot streams
// identical to the original's per-member ports.
#include <gtest/gtest.h>

#include "mop/aggregate_mop.h"
#include "mop/iterate_mop.h"
#include "mop/join_mop.h"
#include "mop/predicate_index_mop.h"
#include "mop/projection_mop.h"
#include "mop/selection_mop.h"
#include "mop/sequence_mop.h"
#include "mop_test_util.h"
#include "rules/rule.h"

namespace rumor {
namespace {

ExprPtr EqConst(int attr, int64_t c) {
  return Expr::Cmp(CmpOp::kEq, Expr::Attr(Side::kLeft, attr),
                   Expr::ConstInt(c));
}
ExprPtr Equi(int la, int ra) {
  return Expr::Cmp(CmpOp::kEq, Expr::Attr(Side::kLeft, la),
                   Expr::Attr(Side::kRight, ra));
}

// Feeds the same random events into `original` (per-member ports) and its
// channel-mode clone; compares decoded outputs.
void ExpectCloneEquivalent(Mop& original, Mop& clone, int num_members,
                           int num_input_ports, uint64_t seed) {
  ASSERT_EQ(clone.num_outputs(), 1);
  CollectingEmitter orig_out(num_members), clone_out(1);
  Rng rng(seed);
  Timestamp ts = 0;
  for (int i = 0; i < 200; ++i) {
    ts += 1;
    Tuple t = RandomTuple(rng, 4, 4, ts);
    int port = num_input_ports == 1
                   ? 0
                   : static_cast<int>(rng.UniformInt(0, num_input_ports - 1));
    ChannelTuple ct = Plain(t);
    original.Process(port, ct, orig_out);
    clone.Process(port, ct, clone_out);
  }
  auto decoded = clone_out.DecodePort0(num_members);
  for (int m = 0; m < num_members; ++m) {
    ExpectSameTuples(decoded[m], orig_out.PortTuples(m),
                     "member " + std::to_string(m));
  }
}

TEST(CloneModeTest, PredicateIndex) {
  std::vector<SelectionDef> defs = {{EqConst(0, 1)}, {EqConst(0, 2)},
                                    {EqConst(1, 3)}};
  PredicateIndexMop original(defs, OutputMode::kPerMemberPorts);
  auto clone = CloneWithOutputMode(original, OutputMode::kChannel);
  ASSERT_EQ(clone->type(), MopType::kPredicateIndex);
  ExpectCloneEquivalent(original, *clone, 3, 1, 11);
}

TEST(CloneModeTest, Selection) {
  std::vector<SelectionMop::Member> members = {{0, {EqConst(0, 1)}},
                                               {0, {EqConst(1, 2)}}};
  SelectionMop original(members, OutputMode::kPerMemberPorts);
  auto clone = CloneWithOutputMode(original, OutputMode::kChannel);
  ExpectCloneEquivalent(original, *clone, 2, 1, 12);
}

TEST(CloneModeTest, ChannelSelect) {
  ChannelSelectMop original({EqConst(0, 1)}, 1, OutputMode::kPerMemberPorts);
  auto clone = CloneWithOutputMode(original, OutputMode::kChannel);
  ExpectCloneEquivalent(original, *clone, 1, 1, 13);
}

TEST(CloneModeTest, SharedSequence) {
  SequenceDef def{Equi(0, 0), 20};
  std::vector<SequenceMop::Member> members(3, {0, 0, def});
  SequenceMop original(members, SequenceMop::Sharing::kShared,
                       OutputMode::kPerMemberPorts);
  auto clone = CloneWithOutputMode(original, OutputMode::kChannel);
  ASSERT_EQ(clone->type(), MopType::kSharedSequence);
  ExpectCloneEquivalent(original, *clone, 3, 2, 14);
}

TEST(CloneModeTest, SharedIterate) {
  IterateDef def{Equi(0, 0),
                 Expr::Cmp(CmpOp::kGt, Expr::Attr(Side::kRight, 1),
                           Expr::Attr(Side::kLeft, 5)),
                 20, 4, 4};
  std::vector<IterateMop::Member> members(2, {0, 0, def});
  IterateMop original(members, IterateMop::Sharing::kShared,
                      OutputMode::kPerMemberPorts);
  auto clone = CloneWithOutputMode(original, OutputMode::kChannel);
  ExpectCloneEquivalent(original, *clone, 2, 2, 15);
}

TEST(CloneModeTest, SharedJoin) {
  JoinDef def{Equi(0, 0), 15, 15};
  std::vector<JoinMop::Member> members = {{0, 0, def}, {0, 0, def}};
  JoinMop original(members, JoinMop::Sharing::kShared,
                   OutputMode::kPerMemberPorts);
  auto clone = CloneWithOutputMode(original, OutputMode::kChannel);
  ExpectCloneEquivalent(original, *clone, 2, 2, 16);
}

TEST(CloneModeTest, Projection) {
  SchemaMap map = SchemaMap::Project(Schema::MakeInts(4), {1, 0});
  std::vector<ProjectionMop::Member> members = {{0, {map}}, {0, {map}}};
  ProjectionMop original(members, OutputMode::kPerMemberPorts);
  auto clone = CloneWithOutputMode(original, OutputMode::kChannel);
  ExpectCloneEquivalent(original, *clone, 2, 1, 17);
}

TEST(CloneModeTest, AggregateIsolated) {
  AggMemberSpec spec{AggFn::kSum, 1, {0}, 10};
  std::vector<AggregateMop::Member> members = {{0, spec}, {0, spec}};
  AggregateMop original(members, AggregateMop::Sharing::kIsolated,
                        OutputMode::kPerMemberPorts);
  auto clone = CloneWithOutputMode(original, OutputMode::kChannel);
  ExpectCloneEquivalent(original, *clone, 2, 1, 18);
}

}  // namespace
}  // namespace rumor
