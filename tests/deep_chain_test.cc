// Regression guard for the iterative executor dispatch: a merged plan can be
// an arbitrarily deep chain of m-ops, and pushing a tuple through it must
// not consume stack proportional to the chain depth (the former recursive
// depth-first dispatch overflowed the call stack on plans like this one).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "mop/selection_mop.h"
#include "plan/executor.h"

namespace rumor {
namespace {

constexpr int kDepth = 10000;

// Source -> kDepth chained pass-through selections -> output.
struct DeepChain {
  Plan plan;
  StreamId source;
  StreamId output;

  explicit DeepChain(int depth) {
    Schema schema = Schema::MakeInts(2);
    source = plan.streams().AddSource("S", schema);
    ChannelId prev = plan.SourceChannelOf(source);
    for (int i = 0; i < depth; ++i) {
      MopId m = plan.AddMop(std::make_unique<SelectionMop>(
          std::vector<SelectionMop::Member>{{0, SelectionDef{nullptr}}},
          OutputMode::kPerMemberPorts));
      ChannelId out = plan.AddDerivedChannel("d" + std::to_string(i), schema);
      plan.BindInput(m, 0, prev);
      plan.BindOutput(m, 0, out);
      prev = out;
    }
    output = plan.channel(prev).stream_at(0);
    plan.MarkOutput(output, "Q");
  }
};

TEST(DeepChainTest, EventAtATimeSurvivesTenThousandChainedSelections) {
  DeepChain chain(kDepth);
  CollectingSink sink;
  Executor exec(&chain.plan, &sink);
  exec.Prepare();
  for (int ts = 0; ts < 5; ++ts) {
    exec.PushSource(chain.source, Tuple::MakeInts({ts, 7}, ts));
  }
  ASSERT_EQ(sink.ForStream(chain.output).size(), 5u);
  for (int ts = 0; ts < 5; ++ts) {
    EXPECT_EQ(sink.ForStream(chain.output)[ts].at(0).AsInt(), ts);
    EXPECT_EQ(sink.ForStream(chain.output)[ts].ts(), ts);
  }
  EXPECT_EQ(exec.deliveries(), 5 * static_cast<int64_t>(kDepth));
}

TEST(DeepChainTest, BatchedPathSurvivesTenThousandChainedSelections) {
  DeepChain chain(kDepth);
  CollectingSink sink;
  Executor exec(&chain.plan, &sink);
  exec.Prepare();
  EXPECT_TRUE(exec.BatchSafe(chain.plan.SourceChannelOf(chain.source)));
  std::vector<Tuple> batch;
  for (int ts = 0; ts < 64; ++ts) {
    batch.push_back(Tuple::MakeInts({ts, 7}, ts));
  }
  exec.PushSourceBatch(chain.source, batch);
  ASSERT_EQ(sink.ForStream(chain.output).size(), 64u);
  EXPECT_EQ(exec.deliveries(), 64 * static_cast<int64_t>(kDepth));
}

}  // namespace
}  // namespace rumor
