// Churn equivalence fuzz (acceptance criterion of the dynamic-MQO work):
// after a random interleaving of AddQuery / RemoveQuery / Push, the churned
// engine must behave exactly like a fresh engine started with the surviving
// query set. Window state depends on history a late-added query may not have
// seen, so the comparison is made after a window-clearing timestamp gap: both
// engines then observe identical in-window histories, and their per-query
// output sequences over a shared evaluation stream must match byte for byte.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/stream_engine.h"
#include "common/rng.h"

namespace rumor {
namespace {

// All windows <= kMaxWindow so a gap of kMaxWindow+1 clears every state.
constexpr int64_t kMaxWindow = 32;

Schema CpuSchema() {
  return Schema({{"pid", ValueType::kInt}, {"load", ValueType::kInt}});
}

// A small pool of query shapes exercising CSE, sσ, sα (incl. attach paths)
// and multi-aggregate zips.
std::string MakeRql(Rng& rng) {
  switch (rng.UniformInt(0, 6)) {
    case 0:
      return "SELECT * FROM CPU WHERE pid = " +
             std::to_string(rng.UniformInt(0, 3));
    case 1:
      return "SELECT * FROM CPU WHERE load > " +
             std::to_string(rng.UniformInt(10, 90));
    case 2:
      return "SELECT pid, AVG(load) FROM CPU [RANGE " +
             std::to_string(rng.UniformInt(4, kMaxWindow)) +
             "] GROUP BY pid";
    case 3:
      return "SELECT pid, MIN(load) FROM CPU [RANGE " +
             std::to_string(rng.UniformInt(4, kMaxWindow)) +
             "] GROUP BY pid";
    case 4:
      return "SELECT COUNT(*) FROM CPU [RANGE " +
             std::to_string(rng.UniformInt(4, kMaxWindow)) + "]";
    case 5:
      return "SELECT pid, SUM(load), MAX(load) FROM CPU [RANGE " +
             std::to_string(rng.UniformInt(4, kMaxWindow)) +
             "] GROUP BY pid";
    default:
      return "SELECT * FROM CPU";
  }
}

using Outputs = std::map<std::string, std::vector<std::string>>;

// The full churn fuzz, parameterized by shard count. With shard_count > 1
// the churned engine runs partition-parallel and every AddQuery/RemoveQuery
// exercises the quiesce-merge-resume path on live workers; the reference
// stays single-threaded. Per-tuple pushes are one-tuple epochs, so the
// ordered merge reproduces the single-threaded output sequence exactly and
// the byte-for-byte comparison below is still valid.
void RunRandomChurn(int shard_count) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 0x9e3779b97f4a7c15ull + 1);
    StreamEngine churned;
    ASSERT_TRUE(churned.RegisterSource("CPU", CpuSchema()).ok());
    ASSERT_TRUE(churned.SetShardCount(shard_count).ok());

    int name_counter = 0;
    std::vector<std::pair<std::string, std::string>> active;  // name -> rql
    auto fresh_query = [&] {
      std::string name = "q" + std::to_string(name_counter++);
      std::string rql = MakeRql(rng);
      active.push_back({name, rql});
      return std::pair<std::string, std::string>{name, rql};
    };
    for (int i = 0; i < 2; ++i) {
      auto [name, rql] = fresh_query();
      ASSERT_TRUE(churned.AddQueryText(rql, name).ok());
    }
    ASSERT_TRUE(churned.Start().ok());

    // Random interleaving of pushes, adds, and removes.
    int64_t ts = 0;
    for (int step = 0; step < 60; ++step) {
      int64_t r = rng.UniformInt(0, 9);
      if (r < 6) {
        int n = static_cast<int>(rng.UniformInt(1, 4));
        for (int i = 0; i < n; ++i) {
          ASSERT_TRUE(churned
                          .Push("CPU", Tuple::MakeInts(
                                           {rng.UniformInt(0, 3),
                                            rng.UniformInt(0, 100)},
                                           ++ts))
                          .ok());
        }
      } else if (r < 8 || active.size() <= 1) {
        auto [name, rql] = fresh_query();
        ASSERT_TRUE(churned.AddQueryText(rql, name).ok()) << rql;
      } else {
        size_t victim = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(active.size()) - 1));
        ASSERT_TRUE(churned.RemoveQuery(active[victim].first).ok());
        active.erase(active.begin() + victim);
      }
    }

    // Reference: a fresh engine over exactly the surviving query set.
    StreamEngine reference;
    ASSERT_TRUE(reference.RegisterSource("CPU", CpuSchema()).ok());
    for (const auto& [name, rql] : active) {
      ASSERT_TRUE(reference.AddQueryText(rql, name).ok());
    }
    ASSERT_TRUE(reference.Start().ok());

    // Window-clearing gap, then a shared evaluation stream into both.
    ts += kMaxWindow + 1;
    Outputs churned_rows, reference_rows;
    bool record = false;
    churned.SetOutputHandler([&](const std::string& q, const Tuple& t) {
      if (record) {
        churned_rows[q].push_back(t.ToString() + "@" + std::to_string(t.ts()));
      }
    });
    reference.SetOutputHandler([&](const std::string& q, const Tuple& t) {
      if (record) {
        reference_rows[q].push_back(t.ToString() + "@" +
                                    std::to_string(t.ts()));
      }
    });
    // The gap tuple itself flushes pre-churn state out of every window; both
    // engines see it, so both hold identical state when recording starts.
    Tuple gap = Tuple::MakeInts({0, 50}, ts);
    ASSERT_TRUE(churned.Push("CPU", gap).ok());
    ASSERT_TRUE(reference.Push("CPU", gap).ok());
    churned.Flush();  // gap outputs must land before recording starts
    record = true;
    for (int i = 0; i < 40; ++i) {
      Tuple t = Tuple::MakeInts(
          {rng.UniformInt(0, 3), rng.UniformInt(0, 100)}, ++ts);
      ASSERT_TRUE(churned.Push("CPU", t).ok());
      ASSERT_TRUE(reference.Push("CPU", t).ok());
    }
    churned.Flush();

    ASSERT_FALSE(active.empty());
    for (const auto& [name, rql] : active) {
      EXPECT_EQ(churned_rows[name], reference_rows[name])
          << "seed " << seed << " shards " << shard_count << " query " << name
          << ": " << rql;
    }
  }
}

TEST(DynamicChurnTest, RandomChurnMatchesFreshEngine) { RunRandomChurn(1); }

TEST(DynamicChurnTest, ChurnWhileShardedMatchesFreshEngine) {
  RunRandomChurn(3);
}

// The indexed merge path (ShareIndex-driven, the production default) against
// the scan-based oracle (use_share_index = false): same random add/remove/
// push interleaving into both engines, every output recorded from the first
// tuple — merging through the index must be invisible, down to byte-equal
// result sequences and byte-equal final plans.
TEST(DynamicChurnTest, IndexedMergingMatchesScanOracle) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 0x9e3779b97f4a7c15ull + 2);
    OptimizerOptions scan_options;
    scan_options.use_share_index = false;
    StreamEngine indexed;
    StreamEngine scan(scan_options);
    Outputs indexed_rows, scan_rows;
    for (StreamEngine* e : {&indexed, &scan}) {
      ASSERT_TRUE(e->RegisterSource("CPU", CpuSchema()).ok());
    }
    indexed.SetOutputHandler([&](const std::string& q, const Tuple& t) {
      indexed_rows[q].push_back(t.ToString() + "@" + std::to_string(t.ts()));
    });
    scan.SetOutputHandler([&](const std::string& q, const Tuple& t) {
      scan_rows[q].push_back(t.ToString() + "@" + std::to_string(t.ts()));
    });

    int name_counter = 0;
    std::vector<std::string> active;
    for (int i = 0; i < 2; ++i) {
      std::string name = "q" + std::to_string(name_counter++);
      std::string rql = MakeRql(rng);
      active.push_back(name);
      ASSERT_TRUE(indexed.AddQueryText(rql, name).ok());
      ASSERT_TRUE(scan.AddQueryText(rql, name).ok());
    }
    ASSERT_TRUE(indexed.Start().ok());
    ASSERT_TRUE(scan.Start().ok());
    ASSERT_NE(indexed.share_index_for_testing(), nullptr);
    ASSERT_EQ(scan.share_index_for_testing(), nullptr);

    int64_t ts = 0;
    for (int step = 0; step < 80; ++step) {
      int64_t r = rng.UniformInt(0, 9);
      if (r < 6) {
        int n = static_cast<int>(rng.UniformInt(1, 4));
        for (int i = 0; i < n; ++i) {
          Tuple t = Tuple::MakeInts(
              {rng.UniformInt(0, 3), rng.UniformInt(0, 100)}, ++ts);
          ASSERT_TRUE(indexed.Push("CPU", t).ok());
          ASSERT_TRUE(scan.Push("CPU", t).ok());
        }
      } else if (r < 8 || active.size() <= 1) {
        std::string name = "q" + std::to_string(name_counter++);
        std::string rql = MakeRql(rng);
        active.push_back(name);
        ASSERT_TRUE(indexed.AddQueryText(rql, name).ok()) << rql;
        ASSERT_TRUE(scan.AddQueryText(rql, name).ok()) << rql;
      } else {
        size_t victim = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(active.size()) - 1));
        ASSERT_TRUE(indexed.RemoveQuery(active[victim]).ok());
        ASSERT_TRUE(scan.RemoveQuery(active[victim]).ok());
        active.erase(active.begin() + victim);
      }
    }

    EXPECT_EQ(indexed_rows, scan_rows) << "seed " << seed;
    // Plan identity, not just output equality: the index resolved every
    // merge to the exact target the scan would have chosen.
    EXPECT_EQ(indexed.Explain(), scan.Explain()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace rumor
